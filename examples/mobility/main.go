// Mobility: drive the full online LiBRA controller (Algorithm 1) over a live
// simulated link while the client walks away from the AP, and compare
// against the COTS heuristic on the same walk — the §3 motivation scenario
// ending with the §7 fix.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/cots"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/mac"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
)

// walk displaces the Rx 0.35 m/s away from the Tx, facing it, re-tracing
// every 10 frames.
func walk(l *channel.Link, start geom.Vec, frame int) {
	if frame%10 != 0 {
		return
	}
	dir := start.Sub(l.Tx.Pos).Norm()
	d := 0.35 * float64(frame) * phy.FrameDuration
	p := start.Add(dir.Scale(d))
	if !l.Env.Contains(p) {
		return
	}
	l.MoveRx(p)
	l.RotateRx(geom.Deg(l.Tx.Pos.Sub(p).Angle()))
}

func main() {
	log.SetFlags(0)
	const frames = 3000 // 30 s of X60 frames

	fmt.Println("training LiBRA's classifier...")
	camp := dataset.GenerateMain(42)
	clf, err := core.TrainDefaultClassifier(camp, 1)
	if err != nil {
		log.Fatal(err)
	}

	build := func(seed int64) (*channel.Link, geom.Vec) {
		e := env.WideCorridor()
		tx := phased.NewArray(geom.V(0.5, 3.1), 0, seed)
		start := geom.V(4, 3.1)
		rx := phased.NewArray(start, 180, seed+5)
		return channel.NewLink(e, tx, rx), start
	}

	// LiBRA drives the link.
	link, start := build(21)
	st := mac.NewStation(link, rand.New(rand.NewSource(22)))
	ctrl := core.NewController(st, clf, core.DefaultConfig())
	ctrl.Bootstrap()
	var libraBits float64
	for i := 0; i < frames; i++ {
		walk(link, start, i)
		libraBits += ctrl.Step().DeliveredBits
	}
	fmt.Printf("LiBRA:          %7.0f Mbps avg | decisions %v | BA runs %d, RA runs %d, mean recovery %v\n",
		libraBits/(frames*phy.FrameDuration)/1e6, ctrl.Decisions, ctrl.BARuns, ctrl.RARuns,
		ctrl.MeanRecoveryDelay().Round(time.Microsecond))

	// COTS heuristic on the same walk.
	link2, start2 := build(21)
	dev := cots.NewDevice(link2, cots.APProfile(), rand.New(rand.NewSource(22)))
	dur := time.Duration(float64(frames) * phy.FrameDuration * float64(time.Second))
	res := dev.Run(dur, cots.WalkAway(link2, start2, 0.35), true, 0)
	fmt.Printf("COTS heuristic: %7.0f Mbps avg | %d BA triggers over %d sectors\n",
		res.ThroughputBps/1e6, res.BATriggers, len(res.SectorsUsed))
}
