// Quickstart: build a 60 GHz link in a corridor, train LiBRA's classifier,
// impair the link three different ways, and ask LiBRA which adaptation
// mechanism to trigger.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
)

func main() {
	log.SetFlags(0)

	// 1. Train LiBRA's 3-class random forest on the measurement campaign.
	fmt.Println("generating the training campaign and fitting the classifier...")
	camp := dataset.GenerateMain(42)
	clf, err := core.TrainDefaultClassifier(camp, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build a link: AP at one end of a corridor, client 8 m away.
	e := env.MediumCorridor()
	tx := phased.NewArray(geom.V(0.5, 1.6), 0, 7)
	rx := phased.NewArray(geom.V(8.5, 1.6), 180, 8)
	link := channel.NewLink(e, tx, rx)

	txBeam, rxBeam, snr := link.BestPair()
	mcs, th := phy.BestMCS(snr)
	initMeas := link.Measure(txBeam, rxBeam)
	fmt.Printf("link up: beams (%d,%d), SNR %.1f dB, %v, %.0f Mbps\n\n",
		txBeam, rxBeam, snr, mcs, th/1e6)

	rng := rand.New(rand.NewSource(9))
	ask := func(name string) {
		m := link.Measure(txBeam, rxBeam)
		f := dataset.Featurize(initMeas, m, mcs, rng)
		action := clf.Classify(f[:])
		fmt.Printf("%-28s SNR %6.1f dB  ->  LiBRA says: %v\n", name, m.SNRdB, action)
	}

	// 3a. The client walks backward, still facing the AP: beams stay
	// aligned, so lowering the MCS should suffice (RA).
	link.MoveRx(geom.V(10.5, 1.6))
	ask("client walks backward:")
	link.MoveRx(geom.V(8.5, 1.6))

	// 3b. The client turns away 60 degrees: only re-beaming helps (BA).
	link.RotateRx(180 + 60)
	ask("client rotates 60 deg:")
	link.RotateRx(180)

	// 3c. Nothing changed: no adaptation needed (NA).
	ask("nothing changed:")
}
