// VR streaming: the §8.4 case study as a runnable program — stream a 30 s
// 8K 60 FPS scene over a 60 GHz link while the player walks around, under
// each adaptation policy, and compare stall behaviour.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/sim"
	"github.com/libra-wlan/libra/internal/trace"
	"github.com/libra-wlan/libra/internal/vr"
)

func main() {
	log.SetFlags(0)
	fmt.Println("training LiBRA's classifier and building mobility traces...")
	camp := dataset.GenerateMain(42)
	clf, err := core.TrainDefaultClassifier(camp, 1)
	if err != nil {
		log.Fatal(err)
	}
	pools := trace.NewPools(77)
	rng := rand.New(rand.NewSource(78))
	scene := vr.VikingVillage(30*time.Second, 79)
	fmt.Printf("scene: %d frames, %.2f GB total, %.0f Mbps average demand\n\n",
		len(scene.Sizes), scene.TotalBytes()/1e9, scene.TotalBytes()*8/30/1e6)

	const runs = 12
	timelines := make([]*trace.Timeline, runs)
	for i := range timelines {
		timelines[i] = pools.RandomTimelineDur(trace.Motion, rng, scene.Duration()+time.Second)
	}

	for _, ba := range []time.Duration{500 * time.Microsecond, 250 * time.Millisecond} {
		p := sim.Params{BAOverhead: ba, FAT: 2 * time.Millisecond}
		fmt.Printf("BA overhead %v, FAT 2ms:\n", ba)
		for _, pol := range []sim.Policy{sim.BAFirst, sim.RAFirst, sim.LiBRA, sim.OracleData, sim.OracleDelay} {
			var stalls, stallMs float64
			for _, tl := range timelines {
				out := sim.RunTimeline(tl, p, pol, clf)
				res := vr.Play(scene, vr.Scale(out.Rate, vr.COTSScale), 100*time.Millisecond)
				stalls += float64(res.Stalls) / runs
				stallMs += float64(res.AvgStall()) / float64(time.Millisecond) / runs
			}
			fmt.Printf("  %-13s avg stall %6.1f ms, avg stalls %6.1f\n", pol, stallMs, stalls)
		}
		fmt.Println()
	}
}
