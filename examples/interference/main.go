// Interference: a dense-deployment scenario — a hidden 60 GHz terminal near
// the AP degrades the victim link at three calibrated levels; the example
// shows what each PHY metric sees, what the ground truth prefers, and what
// LiBRA decides (§6.1.3).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
)

func main() {
	log.SetFlags(0)
	fmt.Println("training LiBRA's classifier...")
	camp := dataset.GenerateMain(42)
	clf, err := core.TrainDefaultClassifier(camp, 1)
	if err != nil {
		log.Fatal(err)
	}

	e := env.Lobby()
	tx := phased.NewArray(geom.V(2, 4), 0, 31)
	rx := phased.NewArray(geom.V(8, 4), 180, 32)
	link := channel.NewLink(e, tx, rx)
	txBeam, rxBeam, snr := link.BestPair()
	mcs, th := phy.BestMCS(snr)
	init := link.Measure(txBeam, rxBeam)
	fmt.Printf("victim link: SNR %.1f dB, %v, %.0f Mbps\n\n", snr, mcs, th/1e6)

	// A hidden terminal 1.5 m from the AP, slightly off the LOS.
	hidden := geom.V(3.5, 4.4)
	rng := rand.New(rand.NewSource(33))

	fmt.Printf("%-8s %-10s %-12s %-12s %-10s %-10s\n",
		"level", "EIRP(dBm)", "noise rise", "tput drop", "truth", "LiBRA")
	for _, level := range []struct {
		name string
		eirp float64
	}{{"low", -14}, {"medium", -6}, {"high", 4}} {
		link.SetInterferers([]channel.Interferer{{Pos: hidden, EIRPdBm: level.eirp, DutyCycle: 0.9}})
		m := link.Measure(txBeam, rxBeam)
		_, thRA := phy.BestMCSBelow(m.SNRdB, mcs)
		_, _, bestSNR := link.BestPair()
		_, thBA := phy.BestMCSBelow(bestSNR, mcs)
		truth := dataset.ActBA
		if thRA >= thBA*0.9 {
			truth = dataset.ActRA
		}
		f := dataset.Featurize(init, m, mcs, rng)
		fmt.Printf("%-8s %-10.0f %-12s %-12s %-10v %-10v\n",
			level.name, level.eirp,
			fmt.Sprintf("%.1f dB", m.NoiseDBm-init.NoiseDBm),
			fmt.Sprintf("%.0f%%", (1-thRA/th)*100),
			truth, clf.Classify(f[:]))
	}
	link.SetInterferers(nil)
}
