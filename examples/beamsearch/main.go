// Beamsearch: compare the beam-training algorithms the evaluation builds on
// — exhaustive O(N^2), the 802.11ad O(N) sweep, COTS Tx-only training,
// two-level hierarchical search, and cheap local tracking — on quality
// (SNR found) and cost (probes / airtime), in three channel conditions.
// It also prints the standard-model overheads behind the paper's §8.1
// parameters (0.5 ms, 5 ms, 150 ms, 250 ms).
package main

import (
	"fmt"

	"github.com/libra-wlan/libra/internal/ad"
	"github.com/libra-wlan/libra/internal/adapt"
	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
)

func main() {
	e := env.Lobby()
	tx := phased.NewArray(geom.V(2, 4), 0, 51)
	rx := phased.NewArray(geom.V(9, 4), 180, 52)
	link := channel.NewLink(e, tx, rx)
	exTx, exRx, _ := link.BestPair()

	algos := []adapt.BeamAdapter{
		adapt.ExhaustiveSLS{},
		adapt.StandardSLS{},
		adapt.TxOnlySLS{},
		adapt.HierarchicalSLS{},
		adapt.LocalSearchBA{StartTx: exTx, StartRx: exRx},
	}

	scenarios := []struct {
		name  string
		setup func()
		reset func()
	}{
		{"clear LOS", func() {}, func() {}},
		{
			"blocked LOS",
			func() {
				mid := tx.Pos.Add(rx.Pos.Sub(tx.Pos).Scale(0.5))
				link.SetBlockers([]channel.Blocker{channel.DefaultBlocker(mid)})
			},
			func() { link.SetBlockers(nil) },
		},
		{
			"rotated 45 deg",
			func() { link.RotateRx(180 + 45) },
			func() { link.RotateRx(180) },
		},
	}

	for _, sc := range scenarios {
		sc.setup()
		_, _, truth := link.BestPair()
		fmt.Printf("%s (true best %.1f dB):\n", sc.name, truth)
		for _, a := range algos {
			res := a.Adapt(link)
			fmt.Printf("  %-16s snr %6.1f dB  loss %5.1f dB  probes %4d  airtime %8v\n",
				a.Name(), res.SNRdB, truth-res.SNRdB, res.Probes, res.Overhead)
		}
		sc.reset()
		fmt.Println()
	}

	fmt.Println("standard 802.11ad overhead models behind the §8.1 grid:")
	fmt.Printf("  O(N) SLS @30° beams: %8v  (paper uses 0.5 ms)\n", ad.SLSOverhead(30).Round(10000))
	fmt.Printf("  O(N) SLS @ 3° beams: %8v  (paper uses 5 ms)\n", ad.SLSOverhead(3).Round(10000))
	fmt.Printf("  O(N²)     @ 9° beams: %8v  (paper uses 150 ms)\n", ad.ExhaustiveOverhead(9))
	fmt.Printf("  O(N²)     @ 7° beams: %8v  (paper uses 250 ms)\n", ad.ExhaustiveOverhead(7))
}
