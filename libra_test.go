package libra

import (
	"math/rand"
	"testing"
	"time"
)

// TestPublicAPIEndToEnd exercises the exported surface exactly as the README
// quickstart does: build a link, train LiBRA, break the link, decide, and
// drive the online controller.
func TestPublicAPIEndToEnd(t *testing.T) {
	camp := GenerateTestDataset(3) // smaller campaign keeps the test fast
	clf, err := TrainClassifier(camp, 1)
	if err != nil {
		t.Fatal(err)
	}

	e := MediumCorridor()
	tx := NewArray(V(0.5, 1.6), 0, 7)
	rx := NewArray(V(8.5, 1.6), 180, 8)
	link := NewLink(e, tx, rx)
	if _, _, snr := link.BestPair(); snr < 5 {
		t.Fatalf("link SNR = %v", snr)
	}

	st := NewStation(link, rand.New(rand.NewSource(9)))
	ctrl := NewController(st, clf, DefaultConfig())
	ctrl.Bootstrap()
	bits := ctrl.Run(100)
	if bits <= 0 {
		t.Fatal("controller delivered nothing")
	}

	// Policy simulation over the campaign's entries.
	p := Params{BAOverhead: 5 * time.Millisecond, FAT: 2 * time.Millisecond, FlowDur: time.Second}
	var libra, oracle float64
	for _, entry := range camp.Entries {
		if entry.Label == ActNA {
			continue
		}
		libra += RunEntry(entry, p, PolicyLiBRA, clf).Bytes
		oracle += RunEntry(entry, p, PolicyOracleData, nil).Bytes
	}
	if libra <= 0 || oracle < libra {
		t.Fatalf("bytes: libra=%v oracle=%v", libra, oracle)
	}
	if ratio := libra / oracle; ratio < 0.8 {
		t.Errorf("LiBRA delivered only %.0f%% of oracle bytes", ratio*100)
	}
}

// TestPublicTimelineAndVR exercises the multi-impairment and VR surfaces.
func TestPublicTimelineAndVR(t *testing.T) {
	camp := GenerateTestDataset(4)
	clf, err := TrainClassifier(camp, 1)
	if err != nil {
		t.Fatal(err)
	}
	pools := NewScenarioPools(11)
	rng := rand.New(rand.NewSource(12))
	tl := pools.RandomTimeline(0 /* Motion */, rng)
	p := Params{BAOverhead: 5 * time.Millisecond, FAT: 2 * time.Millisecond}
	res := RunTimeline(tl, p, PolicyLiBRA, clf)
	if res.Bytes <= 0 {
		t.Fatal("timeline delivered nothing")
	}
	scene := VikingVillage(2*time.Second, 5)
	play := PlayVR(scene, res.Rate, 100*time.Millisecond)
	if play.Stalls < 0 {
		t.Fatal("negative stalls")
	}
}
