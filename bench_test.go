// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablation benches for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN / BenchmarkFigureN regenerates the corresponding
// result from scratch inputs held in a shared suite; per-op time is the cost
// of reproducing that artifact.
package libra

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/experiments"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/ml"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/sim"
	"github.com/libra-wlan/libra/internal/trace"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite = experiments.NewSuite(42)
		// Warm the caches so individual benchmarks measure their own work.
		benchSuite.Main()
		benchSuite.Test()
		if _, err := benchSuite.Classifier(); err != nil {
			panic(err)
		}
		benchSuite.Pools()
	})
	return benchSuite
}

// ---- Motivation (Figs 1-3) ----

func BenchmarkFigure1(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if r := experiments.Figure1(s); r.WithBA <= 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if r := experiments.Figure2(s); r.WithBA <= 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if r := experiments.Figure3(s); r.WithBA <= 0 {
			b.Fatal("empty result")
		}
	}
}

// ---- Datasets (Tables 1-2) ----

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := dataset.GenerateMain(42)
		if c.Len() != 1336 {
			b.Fatalf("entries = %d", c.Len())
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := dataset.GenerateTest(43)
		if c.Len() != 456 {
			b.Fatalf("entries = %d", c.Len())
		}
	}
}

// BenchmarkCampaignColumnar measures campaign generation through the columnar
// sample store end to end: feature extraction lands in SoA column blocks, the
// per-worker stores are spliced without transposing, and the Entry view is
// materialized once from a single slab at merge.
func BenchmarkCampaignColumnar(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := dataset.GenerateMain(42)
		cols := c.Columns()
		if cols == nil || cols.Len() != c.Len() {
			b.Fatal("missing columnar view")
		}
	}
}

// BenchmarkSweepFused measures the fused 25x25 sector sweep: each iteration
// moves the receiver (forcing a geometry and gain-table rebuild, like a
// displacement step) and then finds the best beam pair through the blocked
// matrix kernel.
func BenchmarkSweepFused(b *testing.B) {
	e := env.Lobby()
	tx := phased.NewArray(geom.V(2, 6), 0, 7)
	rx := phased.NewArray(geom.V(15, 5), 90, 108)
	l := channel.NewLink(e, tx, rx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.MoveRx(geom.V(15, 5+float64(i%5)*0.05))
		if _, _, snr := l.BestPair(); math.IsNaN(snr) {
			b.Fatal("bad sweep")
		}
	}
}

// ---- PHY metric CDFs (Figs 4-9) ----

func benchMetricFigure(b *testing.B, f func(*experiments.Suite) *experiments.Figure) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fig := f(s); len(fig.Panels) != 4 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFigure4(b *testing.B) { benchMetricFigure(b, experiments.Figure4) }
func BenchmarkFigure5(b *testing.B) { benchMetricFigure(b, experiments.Figure5) }
func BenchmarkFigure6(b *testing.B) { benchMetricFigure(b, experiments.Figure6) }
func BenchmarkFigure7(b *testing.B) { benchMetricFigure(b, experiments.Figure7) }
func BenchmarkFigure8(b *testing.B) { benchMetricFigure(b, experiments.Figure8) }
func BenchmarkFigure9(b *testing.B) { benchMetricFigure(b, experiments.Figure9) }

// ---- ML study (§6.2, Table 3) ----

func BenchmarkCrossValidation(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CrossValidation(s, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransferAccuracy(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TransferAccuracy(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThreeClass(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ThreeClass(s); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Trace-driven evaluation (Figs 10-13, Table 4) ----

func BenchmarkFigure10(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure12(s, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure13(s, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(s, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Hot-path microbenchmarks ----

func BenchmarkSectorSweep(b *testing.B) {
	s := suite(b)
	pools := s.Pools()
	rng := rand.New(rand.NewSource(1))
	tl := pools.RandomTimeline(trace.Motion, rng)
	snap := tl.Segments[0].Snap
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sw := snap.Sweep(); len(sw) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

func BenchmarkClassifierInference(b *testing.B) {
	s := suite(b)
	clf, err := s.Classifier()
	if err != nil {
		b.Fatal(err)
	}
	e := s.TestEntries()[0]
	f := e.FeatureSlice()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.Classify(f)
	}
}

// BenchmarkForestFit measures forest training on the main campaign's feature
// matrix — the presorted split-finding hot path.
func BenchmarkForestFit(b *testing.B) {
	s := suite(b)
	train := s.Main().ToML(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := &ml.RandomForest{NumTrees: 60, MaxDepth: 10, Seed: 3}
		if err := rf.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatch measures flattened batch inference over the whole
// test campaign with a reused output buffer (zero per-sample allocation).
func BenchmarkPredictBatch(b *testing.B) {
	s := suite(b)
	train := s.Main().ToML(true)
	test := s.Test().ToML(true)
	rf := &ml.RandomForest{NumTrees: 60, MaxDepth: 10, Seed: 3}
	if err := rf.Fit(train); err != nil {
		b.Fatal(err)
	}
	out := make([]int, 0, test.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = rf.PredictBatch(test.X, out)
	}
	if len(out) != test.Len() {
		b.Fatal("bad batch output")
	}
}

func BenchmarkPolicyEntry(b *testing.B) {
	s := suite(b)
	clf, _ := s.Classifier()
	entries := s.TestEntries()
	p := sim.Params{BAOverhead: 5 * time.Millisecond, FAT: 2 * time.Millisecond, FlowDur: time.Second}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunEntry(entries[i%len(entries)], p, sim.LiBRA, clf)
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationClassifier compares the accuracy of the four model
// families as LiBRA's decision core (reported via b.ReportMetric).
func BenchmarkAblationClassifier(b *testing.B) {
	s := suite(b)
	train := s.Main().ToML(true)
	test := s.Test().ToML(true)
	for name, factory := range experiments.ModelFactories(1) {
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				m := factory()
				if err := m.Fit(train); err != nil {
					b.Fatal(err)
				}
				acc = ml.Accuracy(test.Y, ml.PredictAll(m, test))
			}
			b.ReportMetric(acc*100, "acc%")
		})
	}
}

// BenchmarkAblationMissingACK compares LiBRA with and without the §7
// missing-ACK rule (without it, a missing ACK always triggers RA first).
func BenchmarkAblationMissingACK(b *testing.B) {
	s := suite(b)
	clf, _ := s.Classifier()
	entries := s.TestEntries()
	p := sim.Params{BAOverhead: 5 * time.Millisecond, FAT: 2 * time.Millisecond, FlowDur: time.Second}
	run := func(b *testing.B, pol sim.Policy) {
		var bytes float64
		for i := 0; i < b.N; i++ {
			bytes = 0
			for _, e := range entries {
				bytes += sim.RunEntry(e, p, pol, clf).Bytes
			}
		}
		b.ReportMetric(bytes/1e9, "GB")
	}
	b.Run("with-rule", func(b *testing.B) { run(b, sim.LiBRA) })
	b.Run("ra-always", func(b *testing.B) { run(b, sim.RAFirst) })
}

// BenchmarkAblationProbing compares the adaptive probe interval
// T = T0*min(2^k, 25) against a fixed interval on the online controller.
func BenchmarkAblationProbing(b *testing.B) {
	for _, k := range []int{0, 3, 10} {
		b.Run(backoffName(k), func(b *testing.B) {
			var total int
			for i := 0; i < b.N; i++ {
				total = core.ProbeBackoff(5, k)
			}
			b.ReportMetric(float64(total), "frames")
		})
	}
}

func backoffName(k int) string {
	switch k {
	case 0:
		return "fresh"
	case 3:
		return "backoff-3"
	default:
		return "saturated"
	}
}

// BenchmarkAblationWindow compares 2 s vs 40 ms observation windows via the
// three-class transfer accuracy (the §7 trade-off).
func BenchmarkAblationWindow(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ThreeClass(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThreeClass compares the native 3-class model against the
// 2-class model on transfer accuracy.
func BenchmarkAblationThreeClass(b *testing.B) {
	s := suite(b)
	cases := []struct {
		name  string
		three bool
	}{{"two-class", false}, {"three-class", true}}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			train := s.Main().ToML(c.three)
			test := s.Test().ToML(c.three)
			var acc float64
			for i := 0; i < b.N; i++ {
				rf := &ml.RandomForest{NumTrees: 60, MaxDepth: 10, Seed: 3}
				if err := rf.Fit(train); err != nil {
					b.Fatal(err)
				}
				acc = ml.Accuracy(test.Y, ml.PredictAll(rf, test))
			}
			b.ReportMetric(acc*100, "acc%")
		})
	}
}

// BenchmarkAblationRxInitiated quantifies §7's Tx- vs Rx-initiated design
// choice: the Rx-initiated variant never hits the missing-ACK blind spot but
// pays a signaling exchange on every adaptation.
func BenchmarkAblationRxInitiated(b *testing.B) {
	s := suite(b)
	clf, _ := s.Classifier()
	entries := s.TestEntries()
	p := sim.Params{BAOverhead: 5 * time.Millisecond, FAT: 2 * time.Millisecond, FlowDur: time.Second}
	b.Run("tx-initiated", func(b *testing.B) {
		var delay time.Duration
		for i := 0; i < b.N; i++ {
			delay = 0
			for _, e := range entries {
				delay += sim.RunEntry(e, p, sim.LiBRA, clf).RecoveryDelay
			}
		}
		b.ReportMetric(float64(delay/time.Duration(len(entries)))/1e6, "ms/break")
	})
	b.Run("rx-initiated", func(b *testing.B) {
		var delay time.Duration
		for i := 0; i < b.N; i++ {
			delay = 0
			for _, e := range entries {
				delay += sim.RunEntryRxInitiated(e, p, clf).RecoveryDelay
			}
		}
		b.ReportMetric(float64(delay/time.Duration(len(entries)))/1e6, "ms/break")
	})
}

// BenchmarkAblationGBT adds gradient-boosted trees to the classifier
// comparison (a model family the paper did not try).
func BenchmarkAblationGBT(b *testing.B) {
	s := suite(b)
	train := s.Main().ToML(true)
	test := s.Test().ToML(true)
	var acc float64
	for i := 0; i < b.N; i++ {
		g := &ml.GradientBoosting{Trees: 80, Depth: 4}
		if err := g.Fit(train); err != nil {
			b.Fatal(err)
		}
		acc = ml.Accuracy(test.Y, ml.PredictAll(g, test))
	}
	b.ReportMetric(acc*100, "acc%")
}
