// Command libra-serve is the online inference service (§7 deployment
// story): it loads a classifier persisted by libra-train -o and answers
// per-link adaptation queries over HTTP/JSON, coalescing concurrent
// requests into the forest's batch path, hot-swapping models atomically via
// POST /models, and shedding overload with 429. See DESIGN.md §9.
//
// Usage:
//
//	libra-serve [-addr :8060] [-binary-addr :8061] [-model FILE]
//	            [-model-format float64|quant32] [-shards N]
//	            [-max-batch N] [-max-linger D] [-queue-depth N] [-timeout D]
//	            [-audit-out FILE] [-audit-sample N]
//	            [-drift-profile FILE] [-drift-window N]
//
// The decide plane is sharded: -shards coalescers behind a consistent-hash
// router keyed on link ID, all sharing one registry (a hot-swap reaches
// every shard atomically). -binary-addr additionally serves the pipelined
// binary decide protocol (DESIGN.md §9) on the same shards; HTTP stays up
// as the control plane. -model-format quant32 compiles loaded forests to
// the quantized flat representation.
//
// -audit-out streams every served decision (1-in-N sampled by
// -audit-sample, deterministically on request identity) into a checksummed
// LDL1 audit log (DESIGN.md §8); ground truth posted to /v1/feedback or the
// binary feedback frame lands in the same stream. -drift-profile attaches a
// live drift monitor fed from the audit drain: per-feature PSI/KS and
// action-shift gauges against the training reference profile emitted by
// libra-train -profile-out, windowed every -drift-window decisions.
//
// Without -model the server starts not-ready (/readyz 503) and waits for
// the first POST /models. SIGINT/SIGTERM drain gracefully: the listeners
// stop, in-flight decisions complete, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/obs/decisionlog"
	"github.com/libra-wlan/libra/internal/obs/drift"
	"github.com/libra-wlan/libra/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-serve: ")
	addr := flag.String("addr", ":8060", "HTTP listen address")
	binaryAddr := flag.String("binary-addr", "", "binary decide protocol listen address (empty disables)")
	model := flag.String("model", "", "libra-model artifact to serve at startup (libra-train -o)")
	modelFormat := flag.String("model-format", serve.FormatFloat64,
		"serving representation for loaded models: float64 or quant32")
	shards := flag.Int("shards", 1, "coalescer shards behind the consistent-hash router")
	maxBatch := flag.Int("max-batch", 64, "largest coalesced model invocation (1 disables coalescing)")
	maxLinger := flag.Duration("max-linger", 200*time.Microsecond,
		"how long the first request of a batch waits for company")
	queueDepth := flag.Int("queue-depth", 1024, "admission queue bound; beyond it requests shed with 429")
	timeout := flag.Duration("timeout", 2*time.Second, "default per-request deadline")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget on SIGINT/SIGTERM")
	auditOut := flag.String("audit-out", "", "write the per-decision LDL1 audit log to this file")
	auditSample := flag.Uint64("audit-sample", 1, "deterministic 1-in-N audit sampling divisor (1 keeps every decision)")
	driftProfile := flag.String("drift-profile", "", "training reference profile (libra-train -profile-out) for live drift monitoring; requires -audit-out")
	driftWindow := flag.Int("drift-window", 1024, "decision records per drift window")
	oc := obs.RegisterCLI(flag.CommandLine)
	flag.Parse()
	if err := oc.Start(); err != nil {
		log.Fatal(err)
	}

	reg := serve.NewRegistry()
	if err := reg.SetFormat(*modelFormat); err != nil {
		log.Fatal(err)
	}
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatal(err)
		}
		m, err := reg.Load(*model, f)
		f.Close()
		if err != nil {
			log.Fatalf("loading %s: %v", *model, err)
		}
		log.Printf("serving model #%d (%s) from %s", m.ID, m.Name, m.Source)
	} else {
		log.Printf("no -model: starting not-ready, waiting for POST /models")
	}

	s := serve.New(reg, serve.Config{
		Coalescer: serve.CoalescerConfig{
			MaxBatch:   *maxBatch,
			MaxLinger:  *maxLinger,
			QueueDepth: *queueDepth,
		},
		Shards:         *shards,
		DefaultTimeout: *timeout,
	})

	var auditLog *decisionlog.Log
	if *auditOut != "" {
		var onRecord func(*decisionlog.Record)
		if *driftProfile != "" {
			prof, err := drift.LoadFile(*driftProfile)
			if err != nil {
				log.Fatalf("loading %s: %v", *driftProfile, err)
			}
			mon, err := drift.NewMonitor(drift.Config{Profile: prof, WindowRecords: *driftWindow})
			if err != nil {
				log.Fatal(err)
			}
			onRecord = mon.Observe
			log.Printf("drift monitor armed against profile %q (window %d)", prof.Name, *driftWindow)
		}
		f, err := os.Create(*auditOut)
		if err != nil {
			log.Fatal(err)
		}
		auditLog, err = decisionlog.New(f, decisionlog.Config{
			NFeat:    dataset.NumFeatures,
			Rings:    *shards,
			Sample:   *auditSample,
			OnRecord: onRecord,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		s.Router().SetAudit(auditLog)
		log.Printf("audit stream on %s (1-in-%d sampling, %d rings)", *auditOut, max(*auditSample, 1), *shards)
	} else if *driftProfile != "" {
		log.Fatal("-drift-profile requires -audit-out (the monitor taps the audit drain)")
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	var binSrv *serve.BinaryServer
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d shards)", *addr, *shards)
		errc <- httpSrv.ListenAndServe()
	}()
	if *binaryAddr != "" {
		ln, err := net.Listen("tcp", *binaryAddr)
		if err != nil {
			log.Fatal(err)
		}
		binSrv = serve.NewBinaryServer(s.Router(), 0)
		go func() {
			log.Printf("binary protocol on %s", *binaryAddr)
			if err := binSrv.Serve(ln); err != nil {
				log.Printf("binary listener: %v", err)
			}
		}()
	}

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight handlers finish (their
	// queued decisions are answered by the coalescer), then stop the
	// dispatcher.
	log.Printf("signal received, draining (budget %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if binSrv != nil {
		binSrv.Close()
	}
	s.Close()
	// The audit log closes only after every producer (HTTP handlers, binary
	// connections, the coalescer shards) has drained: Close flushes the rings,
	// writes the footer checksums, and seals the file.
	if auditLog != nil {
		if err := auditLog.Close(); err != nil {
			log.Printf("audit log: %v", err)
		} else if d := auditLog.Drops(); d > 0 {
			log.Printf("audit log sealed with %d ring drops", d)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("listener: %v", err)
	}
	if err := oc.Stop(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
