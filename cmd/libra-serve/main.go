// Command libra-serve is the online inference service (§7 deployment
// story): it loads a classifier persisted by libra-train -o and answers
// per-link adaptation queries over HTTP/JSON, coalescing concurrent
// requests into the forest's batch path, hot-swapping models atomically via
// POST /models, and shedding overload with 429. See DESIGN.md §9.
//
// Usage:
//
//	libra-serve [-addr :8060] [-model FILE] [-max-batch N] [-max-linger D]
//	            [-queue-depth N] [-timeout D]
//
// Without -model the server starts not-ready (/readyz 503) and waits for
// the first POST /models. SIGINT/SIGTERM drain gracefully: the listener
// stops, in-flight decisions complete, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-serve: ")
	addr := flag.String("addr", ":8060", "HTTP listen address")
	model := flag.String("model", "", "libra-model artifact to serve at startup (libra-train -o)")
	maxBatch := flag.Int("max-batch", 64, "largest coalesced model invocation (1 disables coalescing)")
	maxLinger := flag.Duration("max-linger", 200*time.Microsecond,
		"how long the first request of a batch waits for company")
	queueDepth := flag.Int("queue-depth", 1024, "admission queue bound; beyond it requests shed with 429")
	timeout := flag.Duration("timeout", 2*time.Second, "default per-request deadline")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget on SIGINT/SIGTERM")
	oc := obs.RegisterCLI(flag.CommandLine)
	flag.Parse()
	if err := oc.Start(); err != nil {
		log.Fatal(err)
	}

	reg := serve.NewRegistry()
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatal(err)
		}
		m, err := reg.Load(*model, f)
		f.Close()
		if err != nil {
			log.Fatalf("loading %s: %v", *model, err)
		}
		log.Printf("serving model #%d (%s) from %s", m.ID, m.Name, m.Source)
	} else {
		log.Printf("no -model: starting not-ready, waiting for POST /models")
	}

	s := serve.New(reg, serve.Config{
		Coalescer: serve.CoalescerConfig{
			MaxBatch:   *maxBatch,
			MaxLinger:  *maxLinger,
			QueueDepth: *queueDepth,
		},
		DefaultTimeout: *timeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight handlers finish (their
	// queued decisions are answered by the coalescer), then stop the
	// dispatcher.
	log.Printf("signal received, draining (budget %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	s.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("listener: %v", err)
	}
	if err := oc.Stop(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
