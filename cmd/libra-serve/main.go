// Command libra-serve is the online inference service (§7 deployment
// story): it loads a classifier persisted by libra-train -o and answers
// per-link adaptation queries over HTTP/JSON, coalescing concurrent
// requests into the forest's batch path, hot-swapping models atomically via
// POST /models, and shedding overload with 429. See DESIGN.md §9.
//
// Usage:
//
//	libra-serve [-addr :8060] [-binary-addr :8061] [-model FILE]
//	            [-model-format float64|quant32] [-shards N]
//	            [-max-batch N] [-max-linger D] [-queue-depth N] [-timeout D]
//
// The decide plane is sharded: -shards coalescers behind a consistent-hash
// router keyed on link ID, all sharing one registry (a hot-swap reaches
// every shard atomically). -binary-addr additionally serves the pipelined
// binary decide protocol (DESIGN.md §9) on the same shards; HTTP stays up
// as the control plane. -model-format quant32 compiles loaded forests to
// the quantized flat representation.
//
// Without -model the server starts not-ready (/readyz 503) and waits for
// the first POST /models. SIGINT/SIGTERM drain gracefully: the listeners
// stop, in-flight decisions complete, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-serve: ")
	addr := flag.String("addr", ":8060", "HTTP listen address")
	binaryAddr := flag.String("binary-addr", "", "binary decide protocol listen address (empty disables)")
	model := flag.String("model", "", "libra-model artifact to serve at startup (libra-train -o)")
	modelFormat := flag.String("model-format", serve.FormatFloat64,
		"serving representation for loaded models: float64 or quant32")
	shards := flag.Int("shards", 1, "coalescer shards behind the consistent-hash router")
	maxBatch := flag.Int("max-batch", 64, "largest coalesced model invocation (1 disables coalescing)")
	maxLinger := flag.Duration("max-linger", 200*time.Microsecond,
		"how long the first request of a batch waits for company")
	queueDepth := flag.Int("queue-depth", 1024, "admission queue bound; beyond it requests shed with 429")
	timeout := flag.Duration("timeout", 2*time.Second, "default per-request deadline")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget on SIGINT/SIGTERM")
	oc := obs.RegisterCLI(flag.CommandLine)
	flag.Parse()
	if err := oc.Start(); err != nil {
		log.Fatal(err)
	}

	reg := serve.NewRegistry()
	if err := reg.SetFormat(*modelFormat); err != nil {
		log.Fatal(err)
	}
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatal(err)
		}
		m, err := reg.Load(*model, f)
		f.Close()
		if err != nil {
			log.Fatalf("loading %s: %v", *model, err)
		}
		log.Printf("serving model #%d (%s) from %s", m.ID, m.Name, m.Source)
	} else {
		log.Printf("no -model: starting not-ready, waiting for POST /models")
	}

	s := serve.New(reg, serve.Config{
		Coalescer: serve.CoalescerConfig{
			MaxBatch:   *maxBatch,
			MaxLinger:  *maxLinger,
			QueueDepth: *queueDepth,
		},
		Shards:         *shards,
		DefaultTimeout: *timeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	var binSrv *serve.BinaryServer
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d shards)", *addr, *shards)
		errc <- httpSrv.ListenAndServe()
	}()
	if *binaryAddr != "" {
		ln, err := net.Listen("tcp", *binaryAddr)
		if err != nil {
			log.Fatal(err)
		}
		binSrv = serve.NewBinaryServer(s.Router(), 0)
		go func() {
			log.Printf("binary protocol on %s", *binaryAddr)
			if err := binSrv.Serve(ln); err != nil {
				log.Printf("binary listener: %v", err)
			}
		}()
	}

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight handlers finish (their
	// queued decisions are answered by the coalescer), then stop the
	// dispatcher.
	log.Printf("signal received, draining (budget %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if binSrv != nil {
		binSrv.Close()
	}
	s.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("listener: %v", err)
	}
	if err := oc.Stop(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
