// Command libra-train runs the §6.2 machine-learning study: 5-fold
// stratified cross-validation of the four model families on the main
// dataset, the transfer test on the two unseen buildings, the Gini feature
// importances (Table 3), and the 3-class model LiBRA ships with (§7).
//
// Usage:
//
//	libra-train [-seed N] [-reps N] [-o FILE] [-fit-only] [-trees N]
//	            [-depth N] [-metrics-out FILE] [-trace-out FILE]
//	            [-cpuprofile FILE] [-memprofile FILE] [-pprof ADDR]
//
// -o writes the trained 3-class model in the versioned libra-model format
// that libra-serve -model consumes. -fit-only skips the study and only
// trains and writes the model — the fast path for producing a serving
// artifact. -trees/-depth size the saved forest (the study always uses the
// paper's 80x12 configuration).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/experiments"
	"github.com/libra-wlan/libra/internal/ml"
	"github.com/libra-wlan/libra/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-train: ")
	seed := flag.Int64("seed", 42, "suite random seed")
	reps := flag.Int("reps", 10, "cross-validation repetitions (paper: 500)")
	out := flag.String("o", "", "write the trained 3-class model (libra-model format) to this file")
	save := flag.String("save", "", "alias for -o (kept for compatibility)")
	fitOnly := flag.Bool("fit-only", false, "skip the CV study; only train and write the model (requires -o)")
	trees := flag.Int("trees", 80, "forest size of the saved model")
	depth := flag.Int("depth", 12, "maximum tree depth of the saved model")
	oc := obs.RegisterCLI(flag.CommandLine)
	flag.Parse()
	if *out == "" {
		*out = *save
	}
	if *fitOnly && *out == "" {
		log.Fatal("-fit-only needs -o FILE to write the model to")
	}
	if err := oc.Start(); err != nil {
		log.Fatal(err)
	}

	s := experiments.NewSuite(*seed)
	if !*fitOnly {
		cv, err := experiments.CrossValidation(s, *reps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(cv)
		tr, err := experiments.TransferAccuracy(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tr)
		t3, err := experiments.Table3(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t3)
		tc, err := experiments.ThreeClass(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tc)
		cr, err := experiments.ConfusionReport(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(cr)
	}

	if *out != "" {
		clf, err := trainModel(s, *seed, *trees, *depth)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := core.SaveClassifier(clf, f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained 3-class model (%d trees, depth %d) written to %s\n",
			*trees, *depth, *out)
	}
	if err := oc.Stop(); err != nil {
		log.Fatal(err)
	}
}

// trainModel fits the shipped 3-class forest. The default 80x12 shape goes
// through the suite's shared classifier (identical to what the study
// evaluates); custom shapes train directly on the main campaign with the
// same seed derivation.
func trainModel(s *experiments.Suite, seed int64, trees, depth int) (*core.MLClassifier, error) {
	if trees == 80 && depth == 12 {
		return s.Classifier()
	}
	rf := &ml.RandomForest{NumTrees: trees, MaxDepth: depth, Seed: seed + 2}
	if err := rf.Fit(s.Main().ToML(true)); err != nil {
		return nil, err
	}
	return &core.MLClassifier{Model: rf}, nil
}
