// Command libra-train runs the §6.2 machine-learning study: 5-fold
// stratified cross-validation of the four model families on the main
// dataset, the transfer test on the two unseen buildings, the Gini feature
// importances (Table 3), and the 3-class model LiBRA ships with (§7).
//
// Usage:
//
//	libra-train [-seed N] [-reps N] [-metrics-out FILE] [-trace-out FILE]
//	            [-cpuprofile FILE] [-memprofile FILE] [-pprof ADDR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/experiments"
	"github.com/libra-wlan/libra/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-train: ")
	seed := flag.Int64("seed", 42, "suite random seed")
	reps := flag.Int("reps", 10, "cross-validation repetitions (paper: 500)")
	save := flag.String("save", "", "write the trained 3-class model to this file")
	oc := obs.RegisterCLI(flag.CommandLine)
	flag.Parse()
	if err := oc.Start(); err != nil {
		log.Fatal(err)
	}

	s := experiments.NewSuite(*seed)
	cv, err := experiments.CrossValidation(s, *reps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cv)
	tr, err := experiments.TransferAccuracy(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr)
	t3, err := experiments.Table3(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t3)
	tc, err := experiments.ThreeClass(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tc)
	cr, err := experiments.ConfusionReport(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cr)

	if *save != "" {
		clf, err := s.Classifier()
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := core.SaveClassifier(clf, f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained 3-class model written to %s\n", *save)
	}
	if err := oc.Stop(); err != nil {
		log.Fatal(err)
	}
}
