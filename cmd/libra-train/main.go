// Command libra-train runs the §6.2 machine-learning study: 5-fold
// stratified cross-validation of the four model families on the main
// dataset, the transfer test on the two unseen buildings, the Gini feature
// importances (Table 3), and the 3-class model LiBRA ships with (§7).
//
// Usage:
//
//	libra-train [-seed N] [-reps N] [-data FILE] [-o FILE] [-fit-only]
//	            [-verify-quant] [-trees N] [-depth N] [-profile-out FILE]
//	            [-profile-bins N] [-metrics-out FILE] [-trace-out FILE]
//	            [-cpuprofile FILE] [-memprofile FILE] [-pprof ADDR]
//
// -data loads the main (training) campaign from a libra-ds v1 (.lds) file
// written by libra-dataset -o, skipping channel-model generation entirely;
// the container's embedded digest is verified on load.
//
// -o writes the trained 3-class model in the versioned libra-model format
// that libra-serve -model consumes. -fit-only skips the study and only
// trains and writes the model — the fast path for producing a serving
// artifact. -trees/-depth size the saved forest (the study always uses the
// paper's 80x12 configuration). -verify-quant compiles the trained forest
// to the quantized serving representation (ml.QuantForest, what libra-serve
// -model-format quant32 deploys) and proves class parity against the float64
// flat arrays on the float32-narrowed test campaign — the same wire-exactness
// gate the shard bench enforces.
//
// -profile-out freezes the training campaign's feature and class
// distributions into a drift reference profile (JSON): equal-frequency bin
// edges and proportions per feature plus the action prior. libra-serve
// -drift-profile and libra-report -profile compare live decision traffic
// against it (DESIGN.md §8).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/experiments"
	"github.com/libra-wlan/libra/internal/ml"
	"github.com/libra-wlan/libra/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-train: ")
	seed := flag.Int64("seed", 42, "suite random seed")
	reps := flag.Int("reps", 10, "cross-validation repetitions (paper: 500)")
	data := flag.String("data", "", "load the main (training) campaign from a libra-ds v1 (.lds) file instead of generating it")
	out := flag.String("o", "", "write the trained 3-class model (libra-model format) to this file")
	save := flag.String("save", "", "alias for -o (kept for compatibility)")
	fitOnly := flag.Bool("fit-only", false, "skip the CV study; only train and write/verify the model (needs -o or -verify-quant)")
	verifyQuant := flag.Bool("verify-quant", false, "quantize the trained forest and report class parity vs the float64 arrays on the test campaign")
	trees := flag.Int("trees", 80, "forest size of the saved model")
	depth := flag.Int("depth", 12, "maximum tree depth of the saved model")
	profileOut := flag.String("profile-out", "", "write the training-distribution drift reference profile (JSON) to this file")
	profileBins := flag.Int("profile-bins", 10, "equal-frequency bins per feature in the drift profile")
	oc := obs.RegisterCLI(flag.CommandLine)
	flag.Parse()
	if *out == "" {
		*out = *save
	}
	if *fitOnly && *out == "" && !*verifyQuant && *profileOut == "" {
		log.Fatal("-fit-only needs -o FILE (or -verify-quant or -profile-out) to have something to do")
	}
	if err := oc.Start(); err != nil {
		log.Fatal(err)
	}

	s := experiments.NewSuite(*seed)
	if *data != "" {
		camp, err := dataset.OpenLDS(*data)
		if err != nil {
			log.Fatal(err)
		}
		s.UseMain(camp)
		log.Printf("training data: %s (%d entries, digest %s)", *data, len(camp.Entries), camp.Digest())
	}
	if !*fitOnly {
		cv, err := experiments.CrossValidation(s, *reps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(cv)
		tr, err := experiments.TransferAccuracy(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tr)
		t3, err := experiments.Table3(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t3)
		tc, err := experiments.ThreeClass(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tc)
		cr, err := experiments.ConfusionReport(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(cr)
	}

	// The drift reference freezes the exact distribution the shipped model is
	// fitted on (the 3-class main-campaign view), so serve-side PSI/KS compare
	// like with like.
	if *profileOut != "" {
		camp := s.Main()
		prof, err := ml.ReferenceProfile(camp.Name, camp.ToML(true), *profileBins)
		if err != nil {
			log.Fatal(err)
		}
		if err := prof.SaveFile(*profileOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("drift reference profile (%d features, %d bins) written to %s\n",
			len(prof.Features), *profileBins, *profileOut)
	}

	if *out != "" || *verifyQuant {
		clf, err := trainModel(s, *seed, *trees, *depth)
		if err != nil {
			log.Fatal(err)
		}
		if *verifyQuant {
			if err := verifyQuantParity(clf, *seed); err != nil {
				log.Fatal(err)
			}
		}
		if *out == "" {
			if err := oc.Stop(); err != nil {
				log.Fatal(err)
			}
			return
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := core.SaveClassifier(clf, f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained 3-class model (%d trees, depth %d) written to %s\n",
			*trees, *depth, *out)
	}
	if err := oc.Stop(); err != nil {
		log.Fatal(err)
	}
}

// trainModel fits the shipped 3-class forest. The default 80x12 shape goes
// through the suite's shared classifier (identical to what the study
// evaluates); custom shapes train directly on the main campaign with the
// same seed derivation.
func trainModel(s *experiments.Suite, seed int64, trees, depth int) (*core.MLClassifier, error) {
	if trees == 80 && depth == 12 {
		return s.Classifier()
	}
	rf := &ml.RandomForest{NumTrees: trees, MaxDepth: depth, Seed: seed + 2}
	if err := rf.Fit(s.Main().ToML(true)); err != nil {
		return nil, err
	}
	return &core.MLClassifier{Model: rf}, nil
}

// verifyQuantParity compiles clf's forest to the quantized serving form and
// demands bit-identical predicted classes on the float32-narrowed test
// campaign — the exactness contract the quant32 serving format ships under.
// Any mismatch is a fatal error: the artifact must not be deployed quantized.
func verifyQuantParity(clf *core.MLClassifier, seed int64) error {
	rf, ok := clf.Model.(*ml.RandomForest)
	if !ok {
		return fmt.Errorf("-verify-quant: model family %s has no quantized form", clf.Name())
	}
	q, err := rf.Quantize()
	if err != nil {
		return err
	}
	camp := dataset.GenerateTest(seed)
	rows := make([][]float64, len(camp.Entries))
	for i := range camp.Entries {
		feats := camp.Entries[i].Features
		x := make([]float64, len(feats))
		for j, v := range feats {
			x[j] = float64(float32(v)) // what the binary wire delivers
		}
		rows[i] = x
	}
	base := rf.PredictBatch(rows, nil)
	got := q.PredictBatch(rows, nil)
	mismatches := 0
	for i := range base {
		if base[i] != got[i] {
			mismatches++
		}
	}
	if mismatches != 0 {
		return fmt.Errorf("-verify-quant: %d of %d rows diverge from the float64 arrays", mismatches, len(base))
	}
	fmt.Printf("quantized forest verified: %d test-campaign rows bit-identical to the float64 arrays (%d nodes, %d trees)\n",
		len(base), q.NumNodes(), q.NumTrees())
	return nil
}
