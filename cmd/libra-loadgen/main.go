// Command libra-loadgen is a deterministic closed-loop load generator for
// the libra-serve decision service. It replays measurement-campaign feature
// vectors (fixed seed, fixed shuffle, per-worker stride) so runs are
// comparable, and reports throughput, latency percentiles, and online
// accuracy against the campaign's ground truth.
//
// Two modes:
//
//	-mode compare   (default) drives the serving engine in-process twice —
//	                once uncoalesced (every request walks the forest alone)
//	                and once through the request coalescer — and reports the
//	                batched-over-direct speedup. This isolates the decision
//	                engine from HTTP stack costs, which on a small host
//	                otherwise dominate and blur the comparison.
//	-mode http      drives a running libra-serve over HTTP (-url), closed
//	                loop with -c workers.
//
// -json writes the results as a machine-readable artifact (the repo commits
// these as BENCH_<date>_serve.json).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/ml"
	"github.com/libra-wlan/libra/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-loadgen: ")
	mode := flag.String("mode", "compare", "compare (in-process engine A/B) or http (drive a running server)")
	url := flag.String("url", "http://127.0.0.1:8060", "server base URL (http mode)")
	conc := flag.Int("c", 64, "closed-loop workers")
	n := flag.Int("n", 100000, "requests per engine run")
	warm := flag.Int("warmup", 5000, "untimed warmup requests per engine run")
	seed := flag.Int64("seed", 42, "campaign + shuffle seed")
	trees := flag.Int("trees", 80, "forest size of the in-process model (compare mode)")
	depth := flag.Int("depth", 12, "tree depth of the in-process model (compare mode)")
	model := flag.String("model", "", "serve this libra-model artifact instead of training in-process (compare mode)")
	maxBatch := flag.Int("max-batch", 64, "coalescer batch bound for the batched run")
	maxLinger := flag.Duration("max-linger", 200*time.Microsecond, "coalescer linger for the batched run")
	jsonOut := flag.String("json", "", "write a JSON results artifact to this file")
	flag.Parse()

	log.Printf("generating test campaign (seed %d)", *seed)
	camp := dataset.GenerateTest(*seed)
	replay := serve.NewReplay(camp, *seed)

	switch *mode {
	case "compare":
		runCompare(replay, *conc, *n, *warm, *seed, *trees, *depth, *model,
			*maxBatch, *maxLinger, *jsonOut)
	case "http":
		runHTTP(*url, replay, *conc, *n, *warm, *jsonOut)
	default:
		log.Fatalf("unknown -mode %q (want compare or http)", *mode)
	}
}

// engineResult is one closed-loop run's report.
type engineResult struct {
	Label       string  `json:"label"`
	MaxBatch    int     `json:"max_batch"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Seconds     float64 `json:"seconds"`
	Throughput  float64 `json:"throughput_rps"`
	P50ms       float64 `json:"p50_ms"`
	P90ms       float64 `json:"p90_ms"`
	P99ms       float64 `json:"p99_ms"`
	Errors      int     `json:"errors"`
	Accuracy    float64 `json:"accuracy"`
}

func (r engineResult) String() string {
	return fmt.Sprintf("%-8s c=%d n=%d  %10.0f req/s  p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  acc %.3f  errors %d",
		r.Label, r.Concurrency, r.Requests, r.Throughput, r.P50ms, r.P90ms, r.P99ms, r.Accuracy, r.Errors)
}

// artifact is the -json output.
type artifact struct {
	Generated string         `json:"generated"`
	GoVersion string         `json:"go_version"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	NumCPU    int            `json:"num_cpu"`
	Seed      int64          `json:"seed"`
	Trees     int            `json:"trees,omitempty"`
	Depth     int            `json:"depth,omitempty"`
	Runs      []engineResult `json:"runs"`
	Speedup   float64        `json:"speedup,omitempty"`
}

func writeArtifact(path string, a artifact) {
	if path == "" {
		return
	}
	a.Generated = time.Now().UTC().Format(time.RFC3339)
	a.GoVersion = runtime.Version()
	a.GOOS = runtime.GOOS
	a.GOARCH = runtime.GOARCH
	a.NumCPU = runtime.NumCPU()
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("results written to %s", path)
}

// runCompare A/B-tests the serving engine: direct per-request inference
// versus the coalescer's batched path, same model, same request stream.
func runCompare(replay *serve.Replay, conc, n, warm int,
	seed int64, trees, depth int, model string, maxBatch int, maxLinger time.Duration,
	jsonOut string) {

	var pred serve.Predictor
	if model != "" {
		f, err := os.Open(model)
		if err != nil {
			log.Fatal(err)
		}
		m, err := serve.NewRegistry().Load(model, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		pred = m.Predictor()
		log.Printf("serving %s from %s", m.Name, model)
	} else {
		// Paper-faithful split: train on the main campaign, serve the test
		// campaign's features — accuracy below is the transfer accuracy.
		log.Printf("training %d-tree depth-%d forest in-process on the main campaign", trees, depth)
		rf := &ml.RandomForest{NumTrees: trees, MaxDepth: depth, Seed: seed}
		if err := rf.Fit(dataset.GenerateMain(seed).ToML(true)); err != nil {
			log.Fatal(err)
		}
		pred = rf
	}

	direct := runEngine("direct", pred, serve.CoalescerConfig{MaxBatch: 1},
		replay, conc, n, warm)
	fmt.Println(direct)
	batched := runEngine("batched", pred,
		serve.CoalescerConfig{MaxBatch: maxBatch, MaxLinger: maxLinger, QueueDepth: 4 * conc},
		replay, conc, n, warm)
	fmt.Println(batched)

	speedup := batched.Throughput / direct.Throughput
	fmt.Printf("speedup: batched is %.2fx direct throughput at concurrency %d\n", speedup, conc)
	writeArtifact(jsonOut, artifact{
		Seed: seed, Trees: trees, Depth: depth,
		Runs:    []engineResult{direct, batched},
		Speedup: speedup,
	})
}

// runEngine drives one coalescer configuration closed-loop and measures it.
func runEngine(label string, pred serve.Predictor, cfg serve.CoalescerConfig,
	replay *serve.Replay, conc, n, warm int) engineResult {

	reg := serve.NewRegistry()
	reg.Install("loadgen", pred)
	co := serve.NewCoalescer(reg, cfg)
	defer co.Close()

	issue := func(total int, lats [][]time.Duration, hits []int) {
		done := make(chan struct{})
		for w := 0; w < conc; w++ {
			go func(w int) {
				defer func() { done <- struct{}{} }()
				ctx := context.Background()
				for i := w; i < total; i += conc {
					t0 := time.Now()
					dec, err := co.Decide(ctx, replay.At(i))
					if err != nil {
						log.Fatalf("%s: decide: %v", label, err)
					}
					if lats != nil {
						lats[w] = append(lats[w], time.Since(t0))
						if dec.Action == replay.LabelAt(i) {
							hits[w]++
						}
					}
				}
			}(w)
		}
		for w := 0; w < conc; w++ {
			<-done
		}
	}

	issue(warm, nil, nil)
	lats := make([][]time.Duration, conc)
	for w := range lats {
		lats[w] = make([]time.Duration, 0, n/conc+1)
	}
	hits := make([]int, conc)
	t0 := time.Now()
	issue(n, lats, hits)
	elapsed := time.Since(t0)

	var all []time.Duration
	correct := 0
	for w := range lats {
		all = append(all, lats[w]...)
		correct += hits[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return engineResult{
		Label:       label,
		MaxBatch:    cfg.MaxBatch,
		Concurrency: conc,
		Requests:    len(all),
		Seconds:     elapsed.Seconds(),
		Throughput:  float64(len(all)) / elapsed.Seconds(),
		P50ms:       pctMs(all, 0.50),
		P90ms:       pctMs(all, 0.90),
		P99ms:       pctMs(all, 0.99),
		Accuracy:    float64(correct) / float64(len(all)),
	}
}

// runHTTP drives a running libra-serve closed-loop over HTTP.
func runHTTP(base string, replay *serve.Replay, conc, n, warm int, jsonOut string) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * conc,
		MaxIdleConnsPerHost: 2 * conc,
	}}
	url := base + "/v1/decide"

	// Pre-encode every distinct request body once.
	bodies := make([][]byte, replay.Len())
	for i := range bodies {
		b := append([]byte(nil), `{"features":[`...)
		for j, v := range replay.At(i) {
			if j > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendFloat(b, v, 'g', -1, 64)
		}
		bodies[i] = append(b, `]}`...)
	}

	issue := func(total int, lats [][]time.Duration, errs, hits []int) {
		done := make(chan struct{})
		for w := 0; w < conc; w++ {
			go func(w int) {
				defer func() { done <- struct{}{} }()
				var dec struct {
					ActionID int `json:"action_id"`
				}
				for i := w; i < total; i += conc {
					t0 := time.Now()
					resp, err := client.Post(url, "application/json",
						bytes.NewReader(bodies[i%len(bodies)]))
					ok := err == nil && resp.StatusCode == http.StatusOK
					correct := false
					if err == nil {
						if ok && json.NewDecoder(resp.Body).Decode(&dec) == nil {
							correct = dec.ActionID == int(replay.LabelAt(i))
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					if lats != nil {
						lats[w] = append(lats[w], time.Since(t0))
						if !ok {
							errs[w]++
						}
						if correct {
							hits[w]++
						}
					}
				}
			}(w)
		}
		for w := 0; w < conc; w++ {
			<-done
		}
	}

	issue(warm, nil, nil, nil)
	lats := make([][]time.Duration, conc)
	for w := range lats {
		lats[w] = make([]time.Duration, 0, n/conc+1)
	}
	errs := make([]int, conc)
	hits := make([]int, conc)
	t0 := time.Now()
	issue(n, lats, errs, hits)
	elapsed := time.Since(t0)

	var all []time.Duration
	nerr, correct := 0, 0
	for w := range lats {
		all = append(all, lats[w]...)
		nerr += errs[w]
		correct += hits[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := engineResult{
		Label:       "http",
		Concurrency: conc,
		Requests:    len(all),
		Seconds:     elapsed.Seconds(),
		Throughput:  float64(len(all)) / elapsed.Seconds(),
		P50ms:       pctMs(all, 0.50),
		P90ms:       pctMs(all, 0.90),
		P99ms:       pctMs(all, 0.99),
		Errors:      nerr,
		Accuracy:    float64(correct) / float64(len(all)),
	}
	fmt.Println(res)
	writeArtifact(jsonOut, artifact{Runs: []engineResult{res}})
}

// pctMs returns the p-th percentile of sorted durations, in milliseconds.
func pctMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}
