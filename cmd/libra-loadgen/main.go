// Command libra-loadgen is a deterministic closed-loop load generator for
// the libra-serve decision service. It replays measurement-campaign feature
// vectors (fixed seed, fixed shuffle, per-worker stride) so runs are
// comparable, and reports throughput, latency percentiles, and online
// accuracy against the campaign's ground truth.
//
// Three modes:
//
//	-mode compare   (default) drives the serving engine in-process twice —
//	                once uncoalesced (every request walks the forest alone)
//	                and once through the request coalescer — and reports the
//	                batched-over-direct speedup. This isolates the decision
//	                engine from HTTP stack costs, which on a small host
//	                otherwise dominate and blur the comparison.
//	-mode http      drives a running libra-serve closed loop with -c
//	                workers: over HTTP/JSON (-url) by default, or over the
//	                pipelined binary decide protocol with -proto binary
//	                (-target host:port, -pipeline in-flight per worker).
//	-mode shard     self-contained fleet bench: trains (or loads) the
//	                forest, verifies the quantized form classifies
//	                bit-identically to the float64 flat arrays on the
//	                campaign replay, stands up -shards coalescer shards
//	                behind the consistent-hash router with a binary
//	                listener, and drives it closed loop. The artifact is
//	                committed as BENCH_<date>_shard.json.
//
// -json writes the results as a machine-readable artifact (the repo commits
// these as BENCH_<date>_serve.json / BENCH_<date>_shard.json).
//
// Request identity is global and worker-count invariant: request g of a run
// carries req_id g and link_id g mod the replay length, whatever -c is.
// With -feedback the generator also reports each request's campaign ground
// truth back to the server — over the binary feedback frame in http mode,
// or straight into the router's join path in shard mode — so a serve-side
// audit stream (libra-serve -audit-out, or shard mode's own -audit-out)
// carries joinable truth records and libra-report can compute
// accuracy-over-window. Shard mode's -audit-out/-audit-sample write the
// fleet's LDL1 decision log in-process; because sampling keys on request
// identity, the log's canonical digest and the drift report derived from it
// are byte-identical across -c (DESIGN.md §8).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/ml"
	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/obs/decisionlog"
	"github.com/libra-wlan/libra/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-loadgen: ")
	mode := flag.String("mode", "compare", "compare (in-process engine A/B), http (drive a running server), or shard (fleet bench)")
	url := flag.String("url", "http://127.0.0.1:8060", "server base URL (http mode, -proto json)")
	proto := flag.String("proto", "json", "http-mode protocol: json or binary")
	target := flag.String("target", "127.0.0.1:8061", "binary-protocol host:port (http mode, -proto binary)")
	pipeline := flag.Int("pipeline", 64, "in-flight requests per worker connection (binary protocol)")
	shards := flag.Int("shards", 2, "coalescer shards behind the router (shard mode)")
	runs := flag.Int("runs", 1, "timed repetitions in shard mode; every run is recorded and the best is the headline (rejects scheduler noise on shared hosts)")
	modelFormat := flag.String("model-format", serve.FormatQuant32, "serving representation in shard mode: float64 or quant32")
	conc := flag.Int("c", 64, "closed-loop workers")
	n := flag.Int("n", 100000, "requests per engine run")
	warm := flag.Int("warmup", 5000, "untimed warmup requests per engine run")
	seed := flag.Int64("seed", 42, "campaign + shuffle seed")
	trees := flag.Int("trees", 80, "forest size of the in-process model (compare mode)")
	depth := flag.Int("depth", 12, "tree depth of the in-process model (compare mode)")
	model := flag.String("model", "", "serve this libra-model artifact instead of training in-process (compare mode)")
	maxBatch := flag.Int("max-batch", 64, "coalescer batch bound for the batched run")
	maxLinger := flag.Duration("max-linger", 200*time.Microsecond, "coalescer linger for the batched run")
	jsonOut := flag.String("json", "", "write a JSON results artifact to this file")
	feedback := flag.Bool("feedback", false, "report campaign ground truth for every request (binary feedback frames in http mode, in-process joins in shard mode)")
	auditOut := flag.String("audit-out", "", "shard mode: write the fleet's per-decision LDL1 audit log to this file")
	auditSample := flag.Uint64("audit-sample", 1, "shard mode: deterministic 1-in-N audit sampling divisor")
	oc := obs.RegisterCLI(flag.CommandLine)
	flag.Parse()
	if err := oc.Start(); err != nil {
		log.Fatal(err)
	}

	log.Printf("generating test campaign (seed %d)", *seed)
	camp := dataset.GenerateTest(*seed)
	replay := serve.NewReplay(camp, *seed)

	switch *mode {
	case "compare":
		runCompare(replay, *conc, *n, *warm, *seed, *trees, *depth, *model,
			*maxBatch, *maxLinger, *jsonOut)
	case "http":
		switch *proto {
		case "json":
			runHTTP(*url, replay, *conc, *n, *warm, *jsonOut)
		case "binary":
			res := driveBinary("binary", *target, replay, newRows32(replay), *conc, *n, *warm, *pipeline, *feedback)
			fmt.Println(res)
			writeArtifact(*jsonOut, artifact{Runs: []engineResult{res}})
		default:
			log.Fatalf("unknown -proto %q (want json or binary)", *proto)
		}
	case "shard":
		runShard(replay, *conc, *n, *warm, *seed, *trees, *depth, *model,
			*maxBatch, *maxLinger, *shards, *pipeline, *modelFormat, *runs, *jsonOut,
			*feedback, *auditOut, *auditSample)
	default:
		log.Fatalf("unknown -mode %q (want compare, http, or shard)", *mode)
	}
	if err := oc.Stop(); err != nil {
		log.Fatal(err)
	}
}

// engineResult is one closed-loop run's report.
type engineResult struct {
	Label       string  `json:"label"`
	MaxBatch    int     `json:"max_batch,omitempty"`
	Proto       string  `json:"proto,omitempty"`
	Pipeline    int     `json:"pipeline,omitempty"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Seconds     float64 `json:"seconds"`
	Throughput  float64 `json:"throughput_rps"`
	P50ms       float64 `json:"p50_ms"`
	P90ms       float64 `json:"p90_ms"`
	P99ms       float64 `json:"p99_ms"`
	Errors      int     `json:"errors"`
	Accuracy    float64 `json:"accuracy"`
}

func (r engineResult) String() string {
	return fmt.Sprintf("%-8s c=%d n=%d  %10.0f req/s  p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  acc %.3f  errors %d",
		r.Label, r.Concurrency, r.Requests, r.Throughput, r.P50ms, r.P90ms, r.P99ms, r.Accuracy, r.Errors)
}

// artifact is the -json output.
type artifact struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	// GitSHA is the commit the numbers were measured at (empty outside a
	// git checkout).
	GitSHA      string `json:"git_sha,omitempty"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	Seed        int64  `json:"seed"`
	Trees       int    `json:"trees,omitempty"`
	Depth       int    `json:"depth,omitempty"`
	Shards      int    `json:"shards,omitempty"`
	ModelFormat string `json:"model_format,omitempty"`
	// QuantParityRows / QuantParityMismatches record the shard-mode check
	// that the quantized forest classifies the campaign replay
	// bit-identically to the float64 flat arrays (on the float32-narrowed
	// features the binary wire carries).
	QuantParityRows       int `json:"quant_parity_rows,omitempty"`
	QuantParityMismatches int `json:"quant_parity_mismatches"`
	// AccuracyFloat64 is the float64 forest's transfer accuracy on the
	// un-narrowed campaign replay — the number the paper reproduction
	// tracks, unchanged by the serving representation.
	AccuracyFloat64 float64        `json:"accuracy_float64,omitempty"`
	BaselineRPS     float64        `json:"baseline_batched_http_rps,omitempty"`
	SpeedupVsBase   float64        `json:"speedup_vs_baseline,omitempty"`
	Runs            []engineResult `json:"runs"`
	Speedup         float64        `json:"speedup,omitempty"`
}

// gitSHA returns the current commit hash, or "" outside a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func writeArtifact(path string, a artifact) {
	if path == "" {
		return
	}
	a.Generated = time.Now().UTC().Format(time.RFC3339)
	a.GoVersion = runtime.Version()
	a.GitSHA = gitSHA()
	a.GOOS = runtime.GOOS
	a.GOARCH = runtime.GOARCH
	a.NumCPU = runtime.NumCPU()
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("results written to %s", path)
}

// runCompare A/B-tests the serving engine: direct per-request inference
// versus the coalescer's batched path, same model, same request stream.
func runCompare(replay *serve.Replay, conc, n, warm int,
	seed int64, trees, depth int, model string, maxBatch int, maxLinger time.Duration,
	jsonOut string) {

	var pred serve.Predictor
	if model != "" {
		f, err := os.Open(model)
		if err != nil {
			log.Fatal(err)
		}
		m, err := serve.NewRegistry().Load(model, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		pred = m.Predictor()
		log.Printf("serving %s from %s", m.Name, model)
	} else {
		// Paper-faithful split: train on the main campaign, serve the test
		// campaign's features — accuracy below is the transfer accuracy.
		log.Printf("training %d-tree depth-%d forest in-process on the main campaign", trees, depth)
		rf := &ml.RandomForest{NumTrees: trees, MaxDepth: depth, Seed: seed}
		if err := rf.Fit(dataset.GenerateMain(seed).ToML(true)); err != nil {
			log.Fatal(err)
		}
		pred = rf
	}

	direct := runEngine("direct", pred, serve.CoalescerConfig{MaxBatch: 1},
		replay, conc, n, warm)
	fmt.Println(direct)
	batched := runEngine("batched", pred,
		serve.CoalescerConfig{MaxBatch: maxBatch, MaxLinger: maxLinger, QueueDepth: 4 * conc},
		replay, conc, n, warm)
	fmt.Println(batched)

	speedup := batched.Throughput / direct.Throughput
	fmt.Printf("speedup: batched is %.2fx direct throughput at concurrency %d\n", speedup, conc)
	writeArtifact(jsonOut, artifact{
		Seed: seed, Trees: trees, Depth: depth,
		Runs:    []engineResult{direct, batched},
		Speedup: speedup,
	})
}

// runEngine drives one coalescer configuration closed-loop and measures it.
func runEngine(label string, pred serve.Predictor, cfg serve.CoalescerConfig,
	replay *serve.Replay, conc, n, warm int) engineResult {

	reg := serve.NewRegistry()
	reg.Install("loadgen", pred)
	co := serve.NewCoalescer(reg, cfg)
	defer co.Close()

	issue := func(total int, lats [][]time.Duration, hits []int) {
		done := make(chan struct{})
		for w := 0; w < conc; w++ {
			go func(w int) {
				defer func() { done <- struct{}{} }()
				ctx := context.Background()
				for i := w; i < total; i += conc {
					t0 := time.Now()
					dec, err := co.Decide(ctx, replay.At(i))
					if err != nil {
						log.Fatalf("%s: decide: %v", label, err)
					}
					if lats != nil {
						lats[w] = append(lats[w], time.Since(t0))
						if dec.Action == replay.LabelAt(i) {
							hits[w]++
						}
					}
					// Yield between requests. In direct mode the model runs
					// inline in this goroutine, and with workers >> cores the
					// scheduler's ~10ms preemption quantum otherwise turns
					// into a convoy: a worker that loses the core mid-request
					// waits for every other worker's full quantum, which
					// showed up as a pathological p99 (1278 ms against a
					// 0.3 ms p50 in BENCH_2026-08-05_serve.json) that no
					// warm-up can fix. Yielding at request boundaries makes
					// the rotation per-request, so closed-loop latency is the
					// honest queue-wait (~concurrency x service time).
					runtime.Gosched()
				}
			}(w)
		}
		for w := 0; w < conc; w++ {
			<-done
		}
	}

	issue(warm, nil, nil)
	lats := make([][]time.Duration, conc)
	for w := range lats {
		lats[w] = make([]time.Duration, 0, n/conc+1)
	}
	hits := make([]int, conc)
	t0 := time.Now()
	issue(n, lats, hits)
	elapsed := time.Since(t0)

	var all []time.Duration
	correct := 0
	for w := range lats {
		all = append(all, lats[w]...)
		correct += hits[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return engineResult{
		Label:       label,
		MaxBatch:    cfg.MaxBatch,
		Concurrency: conc,
		Requests:    len(all),
		Seconds:     elapsed.Seconds(),
		Throughput:  float64(len(all)) / elapsed.Seconds(),
		P50ms:       pctMs(all, 0.50),
		P90ms:       pctMs(all, 0.90),
		P99ms:       pctMs(all, 0.99),
		Accuracy:    float64(correct) / float64(len(all)),
	}
}

// runHTTP drives a running libra-serve closed-loop over HTTP.
func runHTTP(base string, replay *serve.Replay, conc, n, warm int, jsonOut string) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * conc,
		MaxIdleConnsPerHost: 2 * conc,
	}}
	url := base + "/v1/decide"

	// Pre-encode every distinct request body once.
	bodies := make([][]byte, replay.Len())
	for i := range bodies {
		b := append([]byte(nil), `{"features":[`...)
		for j, v := range replay.At(i) {
			if j > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendFloat(b, v, 'g', -1, 64)
		}
		bodies[i] = append(b, `]}`...)
	}

	issue := func(total int, lats [][]time.Duration, errs, hits []int) {
		done := make(chan struct{})
		for w := 0; w < conc; w++ {
			go func(w int) {
				defer func() { done <- struct{}{} }()
				var dec struct {
					ActionID int `json:"action_id"`
				}
				for i := w; i < total; i += conc {
					t0 := time.Now()
					resp, err := client.Post(url, "application/json",
						bytes.NewReader(bodies[i%len(bodies)]))
					ok := err == nil && resp.StatusCode == http.StatusOK
					correct := false
					if err == nil {
						if ok && json.NewDecoder(resp.Body).Decode(&dec) == nil {
							correct = dec.ActionID == int(replay.LabelAt(i))
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					if lats != nil {
						lats[w] = append(lats[w], time.Since(t0))
						if !ok {
							errs[w]++
						}
						if correct {
							hits[w]++
						}
					}
				}
			}(w)
		}
		for w := 0; w < conc; w++ {
			<-done
		}
	}

	issue(warm, nil, nil, nil)
	lats := make([][]time.Duration, conc)
	for w := range lats {
		lats[w] = make([]time.Duration, 0, n/conc+1)
	}
	errs := make([]int, conc)
	hits := make([]int, conc)
	t0 := time.Now()
	issue(n, lats, errs, hits)
	elapsed := time.Since(t0)

	var all []time.Duration
	nerr, correct := 0, 0
	for w := range lats {
		all = append(all, lats[w]...)
		nerr += errs[w]
		correct += hits[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := engineResult{
		Label:       "http",
		Concurrency: conc,
		Requests:    len(all),
		Seconds:     elapsed.Seconds(),
		Throughput:  float64(len(all)) / elapsed.Seconds(),
		P50ms:       pctMs(all, 0.50),
		P90ms:       pctMs(all, 0.90),
		P99ms:       pctMs(all, 0.99),
		Errors:      nerr,
		Accuracy:    float64(correct) / float64(len(all)),
	}
	fmt.Println(res)
	writeArtifact(jsonOut, artifact{Runs: []engineResult{res}})
}

// pctMs returns the p-th percentile of sorted durations, in milliseconds.
func pctMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// newRows32 narrows the replay's feature vectors to the float32 rows the
// binary wire carries.
func newRows32(replay *serve.Replay) [][]float32 {
	rows := make([][]float32, replay.Len())
	for i := range rows {
		x := replay.At(i)
		r := make([]float32, len(x))
		for j, v := range x {
			r[j] = float32(v)
		}
		rows[i] = r
	}
	return rows
}

// driveBinary drives a binary-protocol listener closed loop: conc workers,
// each with its own connection keeping up to pipeline requests in flight,
// responses drained in FIFO order. Latency is measured submit-to-response
// (it includes the worker's own pipeline queueing — the closed-loop view).
//
// Request g of a run carries req_id g globally (worker w issues the
// residue class g ≡ w mod conc), so the set of served request identities —
// and therefore the server's deterministic audit sample — is invariant
// across worker counts. With feedback, each drained response is followed by
// a fire-and-forget ground-truth frame for its request.
func driveBinary(label, addr string, replay *serve.Replay, rows32 [][]float32,
	conc, n, warm, pipeline int, feedback bool) engineResult {

	if pipeline < 1 {
		pipeline = 1
	}
	run := func(total int, lats [][]time.Duration, errs, hits []int) {
		done := make(chan error, conc)
		for w := 0; w < conc; w++ {
			go func(w int) {
				c, err := serve.DialBinary(addr)
				if err != nil {
					done <- err
					return
				}
				defer c.Close()
				myTotal := (total - w + conc - 1) / conc
				if myTotal <= 0 {
					done <- nil
					return
				}
				p := pipeline
				starts := make([]time.Time, p)
				idxs := make([]int, p)
				sent, recvd := 0, 0
				for recvd < myTotal {
					for sent < myTotal && sent-recvd < p {
						g := w + sent*conc
						i := g % len(rows32)
						starts[sent%p] = time.Now()
						idxs[sent%p] = i
						// The replay index doubles as the link ID, spreading
						// links across the ring.
						if err := c.Send(uint64(g), uint64(i), rows32[i], false); err != nil {
							done <- err
							return
						}
						sent++
					}
					if err := c.Flush(); err != nil {
						done <- err
						return
					}
					// Drain half the window (at least one) before topping it
					// up again, so sends stay batched while the pipe is never
					// empty.
					drain := (sent - recvd + 1) / 2
					if drain < 1 {
						drain = 1
					}
					for k := 0; k < drain; k++ {
						resp, err := c.Recv()
						if err != nil {
							done <- fmt.Errorf("%s: recv after %d: %w", label, recvd, err)
							return
						}
						g := w + recvd*conc
						if resp.ReqID != uint64(g) {
							done <- fmt.Errorf("%s: response order broken: got req %d want %d",
								label, resp.ReqID, g)
							return
						}
						idx := idxs[recvd%p]
						if lats != nil {
							lats[w] = append(lats[w], time.Since(starts[recvd%p]))
							if resp.Err != 0 {
								errs[w]++
							} else if int(resp.Action) == int(replay.LabelAt(idx)) {
								hits[w]++
							}
						}
						if feedback && resp.Err == 0 {
							if err := c.SendFeedback(uint64(g), uint64(idx), uint8(replay.LabelAt(idx))); err != nil {
								done <- err
								return
							}
						}
						recvd++
					}
				}
				if feedback {
					// The trailing feedback frames are still in the client
					// buffer; push them before the connection closes.
					if err := c.Flush(); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}(w)
		}
		for w := 0; w < conc; w++ {
			if err := <-done; err != nil {
				log.Fatal(err)
			}
		}
	}

	run(warm, nil, nil, nil)
	lats := make([][]time.Duration, conc)
	for w := range lats {
		lats[w] = make([]time.Duration, 0, n/conc+1)
	}
	errs := make([]int, conc)
	hits := make([]int, conc)
	t0 := time.Now()
	run(n, lats, errs, hits)
	elapsed := time.Since(t0)

	var all []time.Duration
	nerr, correct := 0, 0
	for w := range lats {
		all = append(all, lats[w]...)
		nerr += errs[w]
		correct += hits[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return engineResult{
		Label:       label,
		Proto:       "binary",
		Pipeline:    pipeline,
		Concurrency: conc,
		Requests:    len(all),
		Seconds:     elapsed.Seconds(),
		Throughput:  float64(len(all)) / elapsed.Seconds(),
		P50ms:       pctMs(all, 0.50),
		P90ms:       pctMs(all, 0.90),
		P99ms:       pctMs(all, 0.99),
		Errors:      nerr,
		Accuracy:    float64(correct) / float64(len(all)),
	}
}

// runShard is the self-contained fleet bench: quantized forest, sharded
// router, binary wire, all in one process so the artifact is reproducible
// from a fixed seed. Before timing anything it proves the serving
// representation: the quantized forest must classify the campaign replay
// bit-identically to the float64 flat arrays on the float32-narrowed
// features the wire carries.
func runShard(replay *serve.Replay, conc, n, warm int,
	seed int64, trees, depth int, model string, maxBatch int, maxLinger time.Duration,
	shards, pipeline int, modelFormat string, runs int, jsonOut string,
	feedback bool, auditOut string, auditSample uint64) {

	var rf *ml.RandomForest
	if model != "" {
		if _, err := os.Stat(model); os.IsNotExist(err) {
			// Cache miss: train the canonical bench forest and persist it so
			// repeated bench runs skip the ~minutes of fitting.
			log.Printf("training %d-tree depth-%d forest in-process on the main campaign (caching to %s)", trees, depth, model)
			rf := &ml.RandomForest{NumTrees: trees, MaxDepth: depth, Seed: seed}
			if err := rf.Fit(dataset.GenerateMain(seed).ToML(true)); err != nil {
				log.Fatal(err)
			}
			f, err := os.Create(model)
			if err != nil {
				log.Fatal(err)
			}
			if err := core.SaveClassifier(&core.MLClassifier{Model: rf}, f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		f, err := os.Open(model)
		if err != nil {
			log.Fatal(err)
		}
		m, err := serve.NewRegistry().Load(model, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		var ok bool
		rf, ok = m.Predictor().(*ml.RandomForest)
		if !ok {
			log.Fatalf("%s: shard mode needs a random-forest artifact", model)
		}
		log.Printf("serving %s from %s", m.Name, model)
	} else {
		log.Printf("training %d-tree depth-%d forest in-process on the main campaign", trees, depth)
		rf = &ml.RandomForest{NumTrees: trees, MaxDepth: depth, Seed: seed}
		if err := rf.Fit(dataset.GenerateMain(seed).ToML(true)); err != nil {
			log.Fatal(err)
		}
	}
	quant, err := rf.Quantize()
	if err != nil {
		log.Fatal(err)
	}

	// Parity gate: narrow every replay row to float32 (what the wire
	// carries), widen back, and demand bit-identical classes from both
	// representations. A single mismatch disqualifies the artifact.
	rows32 := newRows32(replay)
	wide := make([][]float64, len(rows32))
	for i, r := range rows32 {
		x := make([]float64, len(r))
		for j, v := range r {
			x[j] = float64(v)
		}
		wide[i] = x
	}
	log.Printf("verifying quantized/float64 class parity on %d replay rows", len(wide))
	base := rf.PredictBatch(wide, nil)
	qgot := quant.PredictBatch(wide, nil)
	mismatches := 0
	for i := range base {
		if base[i] != qgot[i] {
			mismatches++
		}
	}
	if mismatches != 0 {
		log.Fatalf("quantized forest diverges from float64 flat arrays on %d of %d rows", mismatches, len(base))
	}
	log.Printf("parity holds: %d rows bit-identical", len(base))

	// The paper-reproduction number: float64 transfer accuracy on the
	// original (un-narrowed) replay, independent of serving representation.
	f64Classes := rf.PredictBatch(replayRows(replay), nil)
	accF64Hits := 0
	for i, c := range f64Classes {
		if c == int(replay.LabelAt(i)) {
			accF64Hits++
		}
	}
	accFloat64 := float64(accF64Hits) / float64(len(f64Classes))

	reg := serve.NewRegistry()
	switch modelFormat {
	case serve.FormatQuant32:
		reg.Install("loadgen-quant", quant)
	case serve.FormatFloat64:
		reg.Install("loadgen-float64", rf)
	default:
		log.Fatalf("unknown -model-format %q", modelFormat)
	}
	rt := serve.NewRouter(reg, serve.RouterConfig{
		Shards:    shards,
		Coalescer: serve.CoalescerConfig{MaxBatch: maxBatch, MaxLinger: maxLinger, QueueDepth: 4 * conc * pipeline},
	})
	defer rt.Close()

	// The optional audit stream: every sampled decision the fleet serves
	// lands in an LDL1 log whose canonical digest is worker-count invariant
	// (sampling keys on the global request identity, never on scheduling).
	var auditLog *decisionlog.Log
	var auditFile *os.File
	if auditOut != "" {
		f, err := os.Create(auditOut)
		if err != nil {
			log.Fatal(err)
		}
		auditFile = f
		auditLog, err = decisionlog.New(f, decisionlog.Config{
			NFeat:  dataset.NumFeatures,
			Rings:  shards,
			Sample: auditSample,
		})
		if err != nil {
			log.Fatal(err)
		}
		rt.SetAudit(auditLog)
		log.Printf("audit stream on %s (1-in-%d sampling)", auditOut, max(auditSample, 1))
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.NewBinaryServer(rt, 2*pipeline)
	go srv.Serve(ln)
	defer srv.Close()

	// Repeat the timed window and headline the best run: on a shared host
	// a single sample can land on a noisy-neighbor quantum, and the best of
	// K is the closest observable to the machine's actual capacity. Every
	// run is recorded in the artifact.
	if runs < 1 {
		runs = 1
	}
	label := fmt.Sprintf("shard-%d", shards)
	all := make([]engineResult, 0, runs)
	res := engineResult{}
	for r := 0; r < runs; r++ {
		w := warm
		if r > 0 {
			w = 0 // the first run's warmup already primed caches and pools
		}
		got := driveBinary(label, ln.Addr().String(), replay, rows32, conc, n, w, pipeline, false)
		got.MaxBatch = maxBatch
		fmt.Println(got)
		all = append(all, got)
		if got.Throughput > res.Throughput {
			res = got
		}
	}

	// Ground truth goes straight into the router's join path after the drive
	// — one truth per request identity, in request order — rather than over
	// the wire, so the audit stream's truth records never race a shutdown and
	// the log is reproducible byte-for-byte.
	if feedback {
		for g := 0; g < n; g++ {
			idx := g % replay.Len()
			rt.Feedback(uint64(g), uint64(idx), uint8(replay.LabelAt(idx)))
		}
		log.Printf("joined %d ground-truth labels into the audit stream", n)
	}

	// Shard accounting must add up: every admitted request on exactly one
	// shard.
	var admitted uint64
	for _, st := range rt.ShardStats() {
		admitted += st.Requests
	}
	if admitted < uint64(n*runs) {
		log.Fatalf("shards admitted %d requests, expected at least %d", admitted, n*runs)
	}

	// Seal the audit log before reporting: stop the listener and the shards
	// (both idempotent — the deferred Closes become no-ops), then flush.
	if auditLog != nil {
		srv.Close()
		rt.Close()
		if err := auditLog.Close(); err != nil {
			log.Fatal(err)
		}
		if err := auditFile.Close(); err != nil {
			log.Fatal(err)
		}
		if d := auditLog.Drops(); d > 0 {
			log.Printf("audit log sealed with %d ring drops", d)
		}
	}

	// The baseline this bench exists to beat: batched HTTP/JSON from
	// BENCH_2026-08-05_serve.json on the same forest shape and host.
	const baselineRPS = 8440.8
	speedup := res.Throughput / baselineRPS
	fmt.Printf("fleet: %.0f decisions/s over %d shards (%.2fx the %.0f rps batched-HTTP baseline)\n",
		res.Throughput, shards, speedup, baselineRPS)
	writeArtifact(jsonOut, artifact{
		Seed: seed, Trees: trees, Depth: depth,
		Shards:                shards,
		ModelFormat:           modelFormat,
		QuantParityRows:       len(base),
		QuantParityMismatches: mismatches,
		AccuracyFloat64:       accFloat64,
		BaselineRPS:           baselineRPS,
		SpeedupVsBase:         speedup,
		Runs:                  all,
	})
}

// replayRows materializes the replay's float64 rows.
func replayRows(replay *serve.Replay) [][]float64 {
	rows := make([][]float64, replay.Len())
	for i := range rows {
		rows[i] = replay.At(i)
	}
	return rows
}
