// Command libra-lint is the repo's merge-gate multichecker: it runs the
// internal/analysis suite — determinism, dbunits, configmut, floatreduce —
// over the packages matched by its arguments (default ./...) and exits
// non-zero if any invariant is violated.
//
// Usage:
//
//	libra-lint [-list] [packages]
//
// Suppress a single finding with a justified comment on (or immediately
// above) the offending line:
//
//	t0 := time.Now() //lint:ignore determinism wall-clock benchmark label only
//
// or a whole file with //lint:file-ignore <analyzer> <reason>. The reason is
// mandatory; an unexplained suppression is ignored and the finding stands.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/libra-wlan/libra/internal/analysis"
	"github.com/libra-wlan/libra/internal/analysis/configmut"
	"github.com/libra-wlan/libra/internal/analysis/dbunits"
	"github.com/libra-wlan/libra/internal/analysis/determinism"
	"github.com/libra-wlan/libra/internal/analysis/floatreduce"
)

// Analyzers is the full libra-lint suite, in the order findings are
// attributed.
var Analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	dbunits.Analyzer,
	configmut.Analyzer,
	floatreduce.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and their invariants, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: libra-lint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the LiBRA static-analysis suite (default packages: ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analysis.Run(".", patterns, Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "libra-lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s\n", f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "libra-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
