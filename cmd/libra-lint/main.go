// Command libra-lint is the repo's merge-gate multichecker: it runs the
// internal/analysis suite — determinism, noalloc, clocksep, dbunits,
// configmut, floatreduce — over the packages matched by its arguments
// (default ./...) and exits non-zero if any invariant is violated.
//
// Usage:
//
//	libra-lint [-list] [-json | -sarif file] [-baseline file]
//	           [-write-baseline file] [-workers n] [packages]
//
// Packages are analyzed concurrently (-workers, default GOMAXPROCS); output
// is merge-sorted into a total order, so stdout, -json, and -sarif bytes are
// identical for every worker count.
//
// Suppress a single finding with a justified comment on (or immediately
// above) the offending line:
//
//	t0 := time.Now() //lint:ignore determinism wall-clock benchmark label only
//
// or a whole file with //lint:file-ignore <analyzer> <reason>. The reason is
// mandatory; an unexplained suppression is ignored and the finding stands.
// Function-level contracts use doc-comment annotations instead:
// //lint:wallclock <reason> sanctions wall-clock reads (verified — stale
// annotations are reported) and //lint:noalloc puts the function under the
// allocation-free hot-path contract.
//
// A reviewed baseline (-baseline lint.baseline) drops known findings by
// (file, analyzer, message); -write-baseline snapshots the current findings
// for review.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/libra-wlan/libra/internal/analysis"
	"github.com/libra-wlan/libra/internal/analysis/clocksep"
	"github.com/libra-wlan/libra/internal/analysis/configmut"
	"github.com/libra-wlan/libra/internal/analysis/dbunits"
	"github.com/libra-wlan/libra/internal/analysis/determinism"
	"github.com/libra-wlan/libra/internal/analysis/floatreduce"
	"github.com/libra-wlan/libra/internal/analysis/noalloc"
)

// Analyzers is the full libra-lint suite, in the order findings are
// attributed.
var Analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	noalloc.Analyzer,
	clocksep.Analyzer,
	dbunits.Analyzer,
	configmut.Analyzer,
	floatreduce.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and their invariants, then exit")
	jsonOut := flag.Bool("json", false, "write findings to stdout as JSON instead of text")
	sarifOut := flag.String("sarif", "", "also write findings to `file` as SARIF 2.1.0")
	baseline := flag.String("baseline", "", "drop findings recorded in the baseline `file` (missing file = empty baseline)")
	writeBaseline := flag.String("write-baseline", "", "snapshot current findings to the baseline `file` and exit 0")
	workers := flag.Int("workers", 0, "packages analyzed concurrently (0 = GOMAXPROCS); output is identical for any value")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: libra-lint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the LiBRA static-analysis suite (default packages: ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, runErr := analysis.RunN(".", patterns, Analyzers, *workers)
	// runErr may coexist with findings (a contained analyzer panic keeps the
	// other analyzers' results); report everything, then exit 2 on the error.
	base, err := os.Getwd()
	if err != nil {
		base = ""
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err == nil {
			err = analysis.WriteBaseline(f, base, findings)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "libra-lint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "libra-lint: wrote %s\n", *writeBaseline)
		if runErr != nil {
			fmt.Fprintln(os.Stderr, "libra-lint:", runErr)
			os.Exit(2)
		}
		return
	}

	if *baseline != "" {
		b, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "libra-lint:", err)
			os.Exit(2)
		}
		findings = b.Filter(base, findings)
	}

	if *sarifOut != "" {
		f, err := os.Create(*sarifOut)
		if err == nil {
			err = analysis.WriteSARIF(f, base, findings, Analyzers)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "libra-lint:", err)
			os.Exit(2)
		}
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, base, findings); err != nil {
			fmt.Fprintln(os.Stderr, "libra-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s\n", f)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "libra-lint:", runErr)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "libra-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
