// Command libra-eval runs the §8 trace-driven evaluation: the
// single-impairment comparison (Figs 10-11), the multi-impairment scenarios
// (Figs 12-13), and the VR case study (Table 4).
//
// Usage:
//
//	libra-eval [-seed N] [-timelines N] [-skip-single] [-skip-multi] [-skip-vr]
//	           [-metrics-out FILE] [-trace-out FILE]
//	           [-cpuprofile FILE] [-memprofile FILE] [-pprof ADDR]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/libra-wlan/libra/internal/experiments"
	"github.com/libra-wlan/libra/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-eval: ")
	seed := flag.Int64("seed", 42, "suite random seed")
	timelines := flag.Int("timelines", experiments.TimelinesPerKind, "random timelines per scenario kind")
	skipSingle := flag.Bool("skip-single", false, "skip Figs 10-11")
	skipMulti := flag.Bool("skip-multi", false, "skip Figs 12-13")
	skipVR := flag.Bool("skip-vr", false, "skip Table 4")
	oc := obs.RegisterCLI(flag.CommandLine)
	flag.Parse()
	if err := oc.Start(); err != nil {
		log.Fatal(err)
	}

	s := experiments.NewSuite(*seed)
	if !*skipSingle {
		f10, err := experiments.Figure10(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(f10)
		f11, err := experiments.Figure11(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(f11)
	}
	if !*skipMulti {
		f12, err := experiments.Figure12(s, *timelines)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(f12)
		f13, err := experiments.Figure13(s, *timelines)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(f13)
	}
	if !*skipVR {
		t4, err := experiments.Table4(s, *timelines)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t4)
	}
	if err := oc.Stop(); err != nil {
		log.Fatal(err)
	}
}
