// Command libra-sim runs a single custom link-adaptation scenario: place a
// link in one of the paper's environments, apply an impairment, and compare
// what every policy (LiBRA, BA First, RA First, and the two oracles) would
// do — throughput tables, chosen actions, bytes delivered, and recovery
// delay.
//
// Usage:
//
//	libra-sim [-env lobby] [-dist 8] [-impair rotate] [-amount 60]
//	          [-ba 5ms] [-fat 2ms] [-flow 1s] [-seed N] [-workers N]
//	          [-metrics-out FILE] [-trace-out FILE]
//	          [-cpuprofile FILE] [-memprofile FILE] [-pprof ADDR]
//
// With -aps N (N > 0) the command instead runs the deterministic multi-AP
// discrete-event engine: N access points and -stations stations contend for
// TDMA slots, interfere across cells and hand off between APs for -duration
// of simulated time on the -topology floor plan. The run prints per-AP and
// aggregate station summaries plus the scenario digest — a SHA-256 over the
// canonical event trace that is byte-identical for any -workers value:
//
//	libra-sim -aps 4 -stations 64 -duration 500ms -seed 1 [-workers N]
//	          [-topology grid] [-policy ba-first] [-trace-out FILE]
//
// The observability flags are shared by every libra command: -metrics-out
// snapshots the engine metrics on exit, -trace-out records the deterministic
// simulation-time event trace (byte-identical for any -workers value), and
// the profile flags feed go tool pprof.
//
// Impairments: backward (amount = extra meters), rotate (amount = degrees),
// block (amount = lateral offset in meters), interfere (amount = EIRP dBm),
// none.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
	"github.com/libra-wlan/libra/internal/sim"
	"github.com/libra-wlan/libra/internal/sim/engine"
)

// policies maps -policy values to sim policies.
var policies = map[string]sim.Policy{
	"libra":        sim.LiBRA,
	"ba-first":     sim.BAFirst,
	"ra-first":     sim.RAFirst,
	"oracle-data":  sim.OracleData,
	"oracle-delay": sim.OracleDelay,
}

// environments maps -env values to constructors and a default Tx placement.
var environments = map[string]struct {
	build func() *env.Environment
	tx    geom.Vec
}{
	"lobby":      {env.Lobby, geom.V(2, 4)},
	"lab":        {env.Lab, geom.V(5.9, 8.8)},
	"conference": {env.ConferenceRoom, geom.V(0.7, 3.4)},
	"corridor":   {env.MediumCorridor, geom.V(0.5, 1.6)},
	"building1":  {env.Building1, geom.V(0.5, 1.25)},
	"building2":  {env.Building2, geom.V(3, 9)},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-sim: ")
	envName := flag.String("env", "lobby", "environment: lobby, lab, conference, corridor, building1, building2")
	dist := flag.Float64("dist", 8, "initial Tx-Rx distance in meters")
	impair := flag.String("impair", "rotate", "impairment: none, backward, rotate, block, interfere")
	amount := flag.Float64("amount", 60, "impairment magnitude (m, deg, m offset, or dBm)")
	baOverhead := flag.Duration("ba", 5*time.Millisecond, "beam adaptation overhead")
	fat := flag.Duration("fat", 2*time.Millisecond, "frame aggregation time per RA probe")
	flow := flag.Duration("flow", time.Second, "data flow duration")
	seed := flag.Int64("seed", 42, "random seed (codebooks + classifier training)")
	workers := flag.Int("workers", 0, "campaign worker count (0 = all cores; output is identical for any value)")
	aps := flag.Int("aps", 0, "multi-AP engine mode: number of access points (0 = single-link mode)")
	stations := flag.Int("stations", 8, "engine mode: number of stations")
	duration := flag.Duration("duration", 500*time.Millisecond, "engine mode: simulated time span")
	topology := flag.String("topology", "grid", "engine mode: AP layout (grid or line)")
	policy := flag.String("policy", "ba-first", "engine mode: adaptation policy (libra, ba-first, ra-first, oracle-data, oracle-delay)")
	oc := obs.RegisterCLI(flag.CommandLine)
	flag.Parse()
	if err := oc.Start(); err != nil {
		log.Fatal(err)
	}

	if *aps > 0 {
		if err := runEngine(*aps, *stations, *duration, *topology, *policy, *baOverhead, *fat, *seed, *workers); err != nil {
			log.Fatal(err)
		}
		if err := oc.Stop(); err != nil {
			log.Fatal(err)
		}
		return
	}

	spec, ok := environments[*envName]
	if !ok {
		log.Fatalf("unknown environment %q", *envName)
	}
	e := spec.build()

	// Place the Rx dist meters from the Tx toward the environment center.
	center := geom.V(e.Width/2, e.Height/2)
	dir := center.Sub(spec.tx).Norm()
	rxPos := spec.tx.Add(dir.Scale(*dist))
	if !e.Contains(rxPos) {
		log.Fatalf("distance %.1f m leaves the %s bounds (%.1fx%.1f m)", *dist, e.Name, e.Width, e.Height)
	}
	tx := phased.NewArray(spec.tx, geom.Deg(dir.Angle()), *seed)
	rx := phased.NewArray(rxPos, geom.Deg(spec.tx.Sub(rxPos).Angle()), *seed+1)
	link := channel.NewLink(e, tx, rx)

	// Initial state.
	pt, pr, initSNR := link.BestPair()
	initMCS, initTh := phy.BestMCS(initSNR)
	initMeas := link.Measure(pt, pr)
	fmt.Printf("environment %s, Rx at %.1f m: beams (%d,%d), SNR %.1f dB, %v, %.0f Mbps\n",
		e.Name, *dist, pt, pr, initSNR, initMCS, initTh/1e6)

	// Impair.
	switch *impair {
	case "none":
	case "backward":
		p := rxPos.Add(rxPos.Sub(spec.tx).Norm().Scale(*amount))
		if !e.Contains(p) {
			log.Fatalf("backward move leaves the environment")
		}
		link.MoveRx(p)
	case "rotate":
		link.RotateRx(rx.OrientDeg + *amount)
	case "block":
		mid := spec.tx.Add(rxPos.Sub(spec.tx).Scale(0.5))
		lat := rxPos.Sub(spec.tx).Norm()
		mid = mid.Add(geom.V(-lat.Y, lat.X).Scale(*amount))
		link.SetBlockers([]channel.Blocker{channel.DefaultBlocker(mid)})
	case "interfere":
		toTx := spec.tx.Sub(rxPos).Norm()
		place := rxPos.Add(toTx.Scale(0.7 * rxPos.Dist(spec.tx)))
		link.SetInterferers([]channel.Interferer{{Pos: place, EIRPdBm: *amount, DutyCycle: 0.9}})
	default:
		log.Fatalf("unknown impairment %q", *impair)
	}

	// New state.
	after := link.Snapshot()
	snrInit := after.SNRdB(pt, pr)
	bt, br, snrBest := after.BestPair()
	fmt.Printf("after %s(%g): initial pair %.1f dB; best pair (%d,%d) %.1f dB\n\n",
		*impair, *amount, snrInit, bt, br, snrBest)

	entry := &dataset.Entry{InitMCS: initMCS, InitSNRdB: initSNR, InitThBps: initTh,
		NewSNRInitPair: snrInit, NewSNRBestPair: snrBest}
	for m := phy.MinMCS; m <= phy.MaxMCS; m++ {
		entry.InitBeamTh[m] = phy.ExpectedThroughput(m, snrInit)
		entry.BestBeamTh[m] = phy.ExpectedThroughput(m, snrBest)
	}
	entry.Features = dataset.FeaturizeObserved(initMeas, after.Measure(pt, pr), phy.CDR(initMCS, snrInit), initMCS)
	fmt.Printf("features: SNRdiff %.1f dB, ToFdiff %.1f ns, noisediff %.1f dB, PDPsim %.2f, CSIsim %.2f, CDR %.3f, initMCS %v\n\n",
		entry.Features[0], entry.Features[1], entry.Features[2], entry.Features[3],
		entry.Features[4], entry.Features[5], initMCS)

	fmt.Println("training LiBRA's classifier...")
	clf, err := core.TrainDefaultClassifier(dataset.GenerateMainWorkers(*seed, *workers), *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LiBRA's decision: %v\n\n", clf.Classify(entry.FeatureSlice()))

	p := sim.Params{BAOverhead: *baOverhead, FAT: *fat, FlowDur: *flow}
	fmt.Printf("%-13s %-12s %-14s %-10s %s\n", "policy", "bytes (MB)", "recovery", "final MCS", "mechanisms")
	for pi, pol := range []sim.Policy{sim.BAFirst, sim.RAFirst, sim.LiBRA, sim.OracleData, sim.OracleDelay} {
		// One trace stream per policy, keyed by the display-order index so
		// -trace-out bytes never depend on scheduling.
		p.Trace = oc.Tracer().Stream("sim/"+pol.String(), uint64(pi))
		out := sim.RunEntry(entry, p, pol, clf)
		mech := ""
		if out.UsedBA {
			mech += "BA "
		}
		if out.UsedRA {
			mech += "RA"
		}
		fmt.Printf("%-13s %-12.1f %-14v %-10v %s\n",
			pol, out.Bytes/1e6, out.RecoveryDelay.Round(10*time.Microsecond), out.FinalMCS, mech)
	}
	if err := oc.Stop(); err != nil {
		log.Fatal(err)
	}
}

// runEngine drives the multi-AP discrete-event engine and prints per-AP and
// aggregate summaries plus the scenario digest. Everything printed except
// wall time is a pure function of the flags — the worker count changes
// nothing.
func runEngine(aps, stations int, duration time.Duration, topology, policy string, ba, fat time.Duration, seed int64, workers int) error {
	pol, ok := policies[policy]
	if !ok {
		return fmt.Errorf("unknown policy %q", policy)
	}
	spec := engine.Spec{
		APs: aps, Stations: stations,
		Duration: duration,
		Seed:     uint64(seed),
		Topology: topology,
		Params:   sim.Params{BAOverhead: ba, FAT: fat},
		Policy:   pol,
	}
	if pol == sim.LiBRA {
		fmt.Println("training LiBRA's classifier...")
		clf, err := core.TrainDefaultClassifier(dataset.GenerateMainWorkers(seed, workers), seed)
		if err != nil {
			return err
		}
		spec.Classifier = clf
	}

	fmt.Printf("multi-AP engine: %d APs, %d stations, topology %s, %v simulated, seed %d\n",
		aps, stations, topology, duration, seed)
	sc, err := engine.Build(spec)
	if err != nil {
		return err
	}
	res, err := engine.New(sc, workers).Run(context.Background())
	if err != nil {
		return err
	}

	perAP := make([]struct {
		bytes    float64
		breaks   int
		handoffs int
	}, aps)
	for i := range res.Stations {
		st := &res.Stations[i]
		perAP[st.AP].bytes += st.Timeline.Bytes
		perAP[st.AP].breaks += st.Timeline.Breaks
		perAP[st.AP].handoffs += st.Handoffs
	}
	fmt.Printf("\n%-6s %-9s %-12s %-8s %s\n", "AP", "members", "bytes (MB)", "breaks", "handoffs-in")
	for a := 0; a < aps; a++ {
		fmt.Printf("%-6d %-9d %-12.1f %-8d %d\n",
			a, res.APMembers[a], perAP[a].bytes/1e6, perAP[a].breaks, perAP[a].handoffs)
	}
	if stations <= 16 {
		fmt.Printf("\n%-8s %-4s %-12s %-8s %-10s %s\n", "station", "AP", "bytes (MB)", "breaks", "handoffs", "final MCS")
		for i := range res.Stations {
			st := &res.Stations[i]
			fmt.Printf("%-8d %-4d %-12.1f %-8d %-10d %v\n",
				st.Station, st.AP, st.Timeline.Bytes/1e6, st.Timeline.Breaks, st.Handoffs, st.FinalMCS)
		}
	}
	fmt.Printf("\ntotals: %.1f MB delivered, %d breaks, %d handoffs, %d events\n",
		res.Bytes()/1e6, res.Breaks(), res.Handoffs, res.Events)
	fmt.Printf("scenario digest: %s\n", res.Digest)
	return nil
}
