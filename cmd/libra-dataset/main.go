// Command libra-dataset generates the measurement campaigns of §4-§5 and
// prints their summaries (Tables 1 and 2). With -json it writes the full
// entry list to stdout for external analysis, mirroring the public dataset
// release that accompanies the paper. With -o it writes the campaign as a
// streaming libra-ds v1 (.lds) container — the binary column format
// libra-train -data loads back without re-running the channel model.
//
// Usage:
//
//	libra-dataset [-seed N] [-which main|test|both] [-workers N]
//	              [-json] [-digest] [-o FILE] [-metrics-out FILE]
//	              [-trace-out FILE] [-cpuprofile FILE] [-memprofile FILE]
//	              [-pprof ADDR]
//
// -workers sets both the campaign generation and the .lds chunk-encode
// worker counts; the output bytes are identical for every value (the
// determinism contract pinned by the digest and writer tests). -digest
// prints each campaign's content digest, the same hex string embedded in
// the .lds footer and verified on load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/experiments"
	"github.com/libra-wlan/libra/internal/obs"
)

// jsonEntry is the export schema of one dataset entry.
type jsonEntry struct {
	Env        string     `json:"env"`
	Building   string     `json:"building"`
	Impairment string     `json:"impairment"`
	PosID      int        `json:"pos_id"`
	Features   [7]float64 `json:"features"`
	InitMCS    int        `json:"init_mcs"`
	Label      string     `json:"label"`
	ThRAMbps   float64    `json:"th_ra_mbps"`
	ThBAMbps   float64    `json:"th_ba_mbps"`
}

func export(c *dataset.Campaign) error {
	enc := json.NewEncoder(os.Stdout)
	for _, e := range c.Entries {
		je := jsonEntry{
			Env:        e.Env,
			Building:   e.Building,
			Impairment: e.Impairment.String(),
			PosID:      e.PosID,
			Features:   e.Features,
			InitMCS:    int(e.InitMCS),
			Label:      e.Label.String(),
			ThRAMbps:   e.ThRABps / 1e6,
			ThBAMbps:   e.ThBABps / 1e6,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}

// writeLDS streams the campaign into path as a libra-ds v1 container.
func writeLDS(c *dataset.Campaign, path string, workers int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteLDS(f, dataset.DefaultChunkRows, workers); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d entries, %d bytes (digest %s)\n",
		path, len(c.Entries), st.Size(), c.Digest())
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-dataset: ")
	seed := flag.Int64("seed", 42, "campaign random seed")
	which := flag.String("which", "both", "main, test, or both")
	workers := flag.Int("workers", 0, "generation and encode worker count (0 = all cores); output is worker-count independent")
	asJSON := flag.Bool("json", false, "dump entries as JSON lines instead of summaries")
	digest := flag.Bool("digest", false, "print each campaign's content digest instead of summaries")
	out := flag.String("o", "", "write the campaign as a libra-ds v1 (.lds) file (requires -which main or -which test)")
	oc := obs.RegisterCLI(flag.CommandLine)
	flag.Parse()
	if err := oc.Start(); err != nil {
		log.Fatal(err)
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	wantMain := *which == "main" || *which == "both"
	wantTest := *which == "test" || *which == "both"
	if !wantMain && !wantTest {
		log.Fatalf("-which %q: must be main, test, or both", *which)
	}
	if *out != "" && wantMain == wantTest {
		log.Fatal("-o writes one campaign: use -which main or -which test")
	}

	// Generate with the requested worker count and hand the campaigns to the
	// suite, so the table summaries reuse them instead of regenerating.
	s := experiments.NewSuite(*seed)
	if wantMain {
		s.UseMain(dataset.GenerateMainWorkers(*seed, *workers))
	}
	if wantTest {
		s.UseTest(dataset.GenerateTestWorkers(*seed+1, *workers))
	}

	show := func(c *dataset.Campaign, table func(*experiments.Suite) *experiments.Table) {
		switch {
		case *out != "":
			if err := writeLDS(c, *out, *workers); err != nil {
				log.Fatal(err)
			}
		case *digest:
			fmt.Printf("%s %s\n", c.Name, c.Digest())
		case *asJSON:
			if err := export(c); err != nil {
				log.Fatal(err)
			}
		default:
			fmt.Println(table(s))
		}
	}
	if wantMain {
		show(s.Main(), experiments.Table1)
	}
	if wantTest {
		show(s.Test(), experiments.Table2)
	}
	if err := oc.Stop(); err != nil {
		log.Fatal(err)
	}
}
