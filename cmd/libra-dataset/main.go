// Command libra-dataset generates the measurement campaigns of §4-§5 and
// prints their summaries (Tables 1 and 2). With -json it writes the full
// entry list to stdout for external analysis, mirroring the public dataset
// release that accompanies the paper.
//
// Usage:
//
//	libra-dataset [-seed N] [-which main|test|both] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/experiments"
)

// jsonEntry is the export schema of one dataset entry.
type jsonEntry struct {
	Env        string     `json:"env"`
	Building   string     `json:"building"`
	Impairment string     `json:"impairment"`
	PosID      int        `json:"pos_id"`
	Features   [7]float64 `json:"features"`
	InitMCS    int        `json:"init_mcs"`
	Label      string     `json:"label"`
	ThRAMbps   float64    `json:"th_ra_mbps"`
	ThBAMbps   float64    `json:"th_ba_mbps"`
}

func export(c *dataset.Campaign) error {
	enc := json.NewEncoder(os.Stdout)
	for _, e := range c.Entries {
		je := jsonEntry{
			Env:        e.Env,
			Building:   e.Building,
			Impairment: e.Impairment.String(),
			PosID:      e.PosID,
			Features:   e.Features,
			InitMCS:    int(e.InitMCS),
			Label:      e.Label.String(),
			ThRAMbps:   e.ThRABps / 1e6,
			ThBAMbps:   e.ThBABps / 1e6,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-dataset: ")
	seed := flag.Int64("seed", 42, "campaign random seed")
	which := flag.String("which", "both", "main, test, or both")
	asJSON := flag.Bool("json", false, "dump entries as JSON lines instead of summaries")
	flag.Parse()

	s := experiments.NewSuite(*seed)
	if *which == "main" || *which == "both" {
		if *asJSON {
			if err := export(s.Main()); err != nil {
				log.Fatal(err)
			}
		} else {
			fmt.Println(experiments.Table1(s))
		}
	}
	if *which == "test" || *which == "both" {
		if *asJSON {
			if err := export(s.Test()); err != nil {
				log.Fatal(err)
			}
		} else {
			fmt.Println(experiments.Table2(s))
		}
	}
}
