// Command libra-report runs the reproduction's shape checks: every
// qualitative claim of the paper, encoded as an executable assertion against
// this simulator. It exits non-zero if any claim fails, making it suitable
// as a repository-level regression gate.
//
// Usage:
//
//	libra-report [-seed N]
//	libra-report [-trace FILE] [-metrics FILE]
//
// With -trace and/or -metrics, the command instead validates and summarizes
// observability output produced by the other commands' -trace-out and
// -metrics-out flags, exiting non-zero on malformed input — the CI smoke
// check for the obs layer.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/libra-wlan/libra/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-report: ")
	seed := flag.Int64("seed", 42, "suite random seed")
	tracePath := flag.String("trace", "", "validate and summarize a -trace-out file instead of running shape checks")
	metricsPath := flag.String("metrics", "", "validate and summarize a -metrics-out file instead of running shape checks")
	flag.Parse()

	if *tracePath != "" || *metricsPath != "" {
		if *tracePath != "" {
			if err := summarizeTrace(os.Stdout, *tracePath); err != nil {
				log.Fatalf("trace %s: %v", *tracePath, err)
			}
		}
		if *metricsPath != "" {
			if err := summarizeMetrics(os.Stdout, *metricsPath); err != nil {
				log.Fatalf("metrics %s: %v", *metricsPath, err)
			}
		}
		return
	}

	t0 := time.Now()
	s := experiments.NewSuite(*seed)
	table, failures, err := experiments.RunShapeChecks(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)
	fmt.Printf("%d checks, %d failures (%v)\n", len(table.Rows), failures, time.Since(t0).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}
