// Command libra-report runs the reproduction's shape checks: every
// qualitative claim of the paper, encoded as an executable assertion against
// this simulator. It exits non-zero if any claim fails, making it suitable
// as a repository-level regression gate.
//
// Usage:
//
//	libra-report [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/libra-wlan/libra/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-report: ")
	seed := flag.Int64("seed", 42, "suite random seed")
	flag.Parse()

	t0 := time.Now()
	s := experiments.NewSuite(*seed)
	table, failures, err := experiments.RunShapeChecks(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)
	fmt.Printf("%d checks, %d failures (%v)\n", len(table.Rows), failures, time.Since(t0).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}
