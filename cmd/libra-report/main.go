// Command libra-report runs the reproduction's shape checks: every
// qualitative claim of the paper, encoded as an executable assertion against
// this simulator. It exits non-zero if any claim fails, making it suitable
// as a repository-level regression gate.
//
// Usage:
//
//	libra-report [-seed N]
//	libra-report [-trace FILE] [-metrics FILE]
//	libra-report -decisions FILE [-profile FILE] [-window N] [-drift-out FILE]
//
// With -trace and/or -metrics, the command instead validates and summarizes
// observability output produced by the other commands' -trace-out and
// -metrics-out flags, exiting non-zero on malformed input — the CI smoke
// check for the obs layer.
//
// With -decisions, it validates an LDL1 audit log (libra-serve -audit-out /
// libra-loadgen -mode shard -audit-out) — every chunk checksum, the footer
// record count, the fail-closed read path — and summarizes the stream:
// record counts, the worker-count-invariant canonical digest, and per-stage
// latency percentiles. Adding -profile (a libra-train -profile-out
// reference) replays the log through the windowed drift monitor and prints
// per-window PSI/KS/action-shift and joined accuracy. -drift-out writes the
// drift report to a file containing only replay-deterministic bytes (no
// wall-clock latencies), so two runs that served the same sampled decisions
// — at any worker or shard count — produce identical files (the CI cmp
// gate, DESIGN.md §8).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/libra-wlan/libra/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-report: ")
	seed := flag.Int64("seed", 42, "suite random seed")
	tracePath := flag.String("trace", "", "validate and summarize a -trace-out file instead of running shape checks")
	metricsPath := flag.String("metrics", "", "validate and summarize a -metrics-out file instead of running shape checks")
	decisionsPath := flag.String("decisions", "", "validate and summarize an LDL1 audit log instead of running shape checks")
	profilePath := flag.String("profile", "", "drift reference profile (libra-train -profile-out) to replay the audit log against")
	window := flag.Int("window", 1024, "decision records per drift window")
	driftOut := flag.String("drift-out", "", "write the deterministic drift report (requires -profile) to this file")
	flag.Parse()

	if *decisionsPath != "" {
		if err := summarizeDecisions(os.Stdout, *decisionsPath, *profilePath, *window, *driftOut); err != nil {
			log.Fatalf("decisions %s: %v", *decisionsPath, err)
		}
		return
	}
	if *driftOut != "" || *profilePath != "" {
		log.Fatal("-profile/-drift-out need -decisions FILE")
	}

	if *tracePath != "" || *metricsPath != "" {
		if *tracePath != "" {
			if err := summarizeTrace(os.Stdout, *tracePath); err != nil {
				log.Fatalf("trace %s: %v", *tracePath, err)
			}
		}
		if *metricsPath != "" {
			if err := summarizeMetrics(os.Stdout, *metricsPath); err != nil {
				log.Fatalf("metrics %s: %v", *metricsPath, err)
			}
		}
		return
	}

	t0 := time.Now()
	s := experiments.NewSuite(*seed)
	table, failures, err := experiments.RunShapeChecks(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)
	fmt.Printf("%d checks, %d failures (%v)\n", len(table.Rows), failures, time.Since(t0).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}
