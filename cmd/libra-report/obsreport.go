package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// traceEvent mirrors one line of a -trace-out file.
type traceEvent struct {
	Stream string            `json:"stream"`
	ID     uint64            `json:"id"`
	Frame  int64             `json:"frame"`
	Slot   int64             `json:"slot"`
	Cw     int64             `json:"cw"`
	Kind   string            `json:"kind"`
	Attrs  map[string]string `json:"attrs"`
}

// summarizeTrace parses a simulation-time trace, checks the determinism
// contract (streams appear in sorted (stream, id) order), and prints
// per-stream and per-kind event counts.
func summarizeTrace(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var (
		total    int
		kinds    = map[string]int{}
		streams  = map[string]int{}
		lastKey  string
		lastID   uint64
		haveLast bool
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev traceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return fmt.Errorf("line %d: %v", total+1, err)
		}
		if ev.Stream == "" || ev.Kind == "" {
			return fmt.Errorf("line %d: missing stream or kind", total+1)
		}
		if haveLast && (ev.Stream < lastKey || (ev.Stream == lastKey && ev.ID < lastID)) {
			return fmt.Errorf("line %d: stream %q id %d out of order (trace must be sorted by stream, id)",
				total+1, ev.Stream, ev.ID)
		}
		lastKey, lastID, haveLast = ev.Stream, ev.ID, true
		total++
		kinds[ev.Kind]++
		streams[ev.Stream]++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Fprintf(w, "trace %s: %d events, %d streams\n", path, total, len(streams))
	for _, k := range sortedKeys(kinds) {
		fmt.Fprintf(w, "  %-16s %d\n", k, kinds[k])
	}
	return nil
}

// summarizeMetrics parses a metrics snapshot — JSON lines for .json/.jsonl,
// Prometheus text otherwise — and prints the series count per type.
func summarizeMetrics(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	types := map[string]int{}
	jsonLines := strings.HasSuffix(path, ".json") || strings.HasSuffix(path, ".jsonl")
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		n++
		if jsonLines {
			var m struct {
				Name string `json:"name"`
				Type string `json:"type"`
			}
			if err := json.Unmarshal([]byte(line), &m); err != nil {
				return fmt.Errorf("line %d: %v", n, err)
			}
			if m.Name == "" || m.Type == "" {
				return fmt.Errorf("line %d: missing name or type", n)
			}
			types[m.Type]++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE header", n)
			}
			types[parts[3]]++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// A sample line is `name value` with an optional label set.
		if len(strings.Fields(strings.TrimSpace(line))) < 2 {
			return fmt.Errorf("line %d: malformed sample %q", n, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(types) == 0 {
		return fmt.Errorf("no metrics found")
	}
	fmt.Fprintf(w, "metrics %s:", path)
	for _, t := range sortedKeys(types) {
		fmt.Fprintf(w, " %d %s(s)", types[t], t)
	}
	fmt.Fprintln(w)
	return nil
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
