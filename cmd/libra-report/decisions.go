package main

import (
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/libra-wlan/libra/internal/obs/decisionlog"
	"github.com/libra-wlan/libra/internal/obs/drift"
)

// summarizeDecisions validates an LDL1 audit log and prints its stream
// summary: record counts, the canonical digest, and per-stage latency
// percentiles. With a reference profile it additionally replays the log
// through the windowed drift monitor; driftOut then receives the
// replay-deterministic report (canonical digest plus window table, never
// wall-clock latencies) that CI compares byte-for-byte across worker
// counts.
func summarizeDecisions(w io.Writer, path, profilePath string, window int, driftOut string) error {
	if driftOut != "" && profilePath == "" {
		return fmt.Errorf("-drift-out needs -profile")
	}
	data, err := decisionlog.ReadFile(path)
	if err != nil {
		return err
	}
	var decisions, truths uint64
	for i := range data.Records {
		switch data.Records[i].Kind {
		case decisionlog.KindDecision:
			decisions++
		case decisionlog.KindTruth:
			truths++
		}
	}
	digest := decisionlog.CanonicalDigest(data.Records, data.NFeat)
	fmt.Fprintf(w, "audit log %s: %d records (%d decisions, %d truths), %d features, %d producer drops\n",
		path, len(data.Records), decisions, truths, data.NFeat, data.Drops)
	fmt.Fprintf(w, "canonical digest: %s\n", hex.EncodeToString(digest[:]))
	printStageLatencies(w, data.Records)

	if profilePath == "" {
		return nil
	}
	prof, err := drift.LoadFile(profilePath)
	if err != nil {
		return err
	}
	rep, err := drift.Analyze(data.Records, drift.Config{Profile: prof, WindowRecords: window})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ndrift replay vs profile %q (window %d): %d windows, %d tripped\n",
		prof.Name, window, len(rep.Windows), rep.Trips)
	fmt.Fprintf(w, "%-6s %-8s %-10s %-14s %-8s %-8s %-8s %-8s %s\n",
		"window", "records", "psi_max", "feature", "ks_max", "act_tv", "joined", "acc", "tripped")
	for i := range rep.Windows {
		ws := &rep.Windows[i]
		fmt.Fprintf(w, "%-6d %-8d %-10.4f %-14s %-8.4f %-8.4f %-8d %-8.4f %v\n",
			ws.Index, ws.Records, ws.PSIMax, ws.PSIFeature, ws.KSMax, ws.ActionTV,
			ws.Joined, ws.Accuracy(), ws.Tripped)
	}
	if driftOut == "" {
		return nil
	}
	if err := os.WriteFile(driftOut, driftReportBytes(data, digest, rep, window), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "drift report written to %s\n", driftOut)
	return nil
}

// driftReportBytes renders the drift replay as deterministic text: every
// field is a function of the canonical record set and the profile, so two
// logs holding the same sampled decisions serialize identically whatever
// worker, shard, or drain interleaving produced them. Floats print via
// strconv's shortest round-trip form; wall-clock latencies never appear.
func driftReportBytes(data *decisionlog.LogData, digest [32]byte, rep *drift.Report, window int) []byte {
	var b strings.Builder
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(&b, "ldl1-drift-report v1\n")
	fmt.Fprintf(&b, "nfeat %d\n", data.NFeat)
	fmt.Fprintf(&b, "canonical_digest %s\n", hex.EncodeToString(digest[:]))
	fmt.Fprintf(&b, "decisions %d\ntruths %d\nwindow %d\ntrips %d\n", rep.Decisions, rep.Truths, window, rep.Trips)
	for i := range rep.Windows {
		w := &rep.Windows[i]
		fmt.Fprintf(&b, "window %d records %d psi_max %s psi_feature %s ks_max %s action_tv %s joined %d correct %d tripped %v psi",
			w.Index, w.Records, g(w.PSIMax), w.PSIFeature, g(w.KSMax), g(w.ActionTV), w.Joined, w.Correct, w.Tripped)
		for _, p := range w.PSIPerFeature {
			fmt.Fprintf(&b, " %s", g(p))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// printStageLatencies renders per-stage latency percentiles over the log's
// decision records. These columns are wall-clock measurements — the one part
// of the stream that is not replay-deterministic — so they go to stdout only
// and never into -drift-out.
func printStageLatencies(w io.Writer, recs []decisionlog.Record) {
	stages := []struct {
		name string
		get  func(*decisionlog.Record) uint32
	}{
		{"admission", func(r *decisionlog.Record) uint32 { return r.LatAdmissionNs }},
		{"queue", func(r *decisionlog.Record) uint32 { return r.LatQueueNs }},
		{"coalesce", func(r *decisionlog.Record) uint32 { return r.LatCoalesceNs }},
		{"predict", func(r *decisionlog.Record) uint32 { return r.LatPredictNs }},
		{"encode", func(r *decisionlog.Record) uint32 { return r.LatEncodeNs }},
	}
	vals := make([]uint32, 0, len(recs))
	for _, st := range stages {
		vals = vals[:0]
		for i := range recs {
			if recs[i].Kind == decisionlog.KindDecision {
				vals = append(vals, st.get(&recs[i]))
			}
		}
		if len(vals) == 0 {
			continue
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		pct := func(p float64) float64 {
			return float64(vals[int(p*float64(len(vals)-1))]) / 1e6
		}
		fmt.Fprintf(w, "stage %-10s p50 %8.3f ms  p90 %8.3f ms  p99 %8.3f ms\n",
			st.name, pct(0.50), pct(0.90), pct(0.99))
	}
}
