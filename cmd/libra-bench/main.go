// Command libra-bench runs the repository's Benchmark* suite, records the
// results as a dated JSON snapshot (BENCH_<date>.json), and compares them to
// the most recent previous snapshot so performance regressions are caught
// before they land.
//
// Usage:
//
//	libra-bench [-bench 'Table1|Table2'] [-benchtime 1x] [-runs K] [-pkg .]
//	            [-dir .] [-threshold 0.10] [-strict] [-label mylabel]
//
// -runs repeats the go test child K times and keeps, per benchmark, the run
// with the lowest ns/op (best-of-K, the same noise-rejection idiom as
// shard-bench's -runs). On a loaded machine the minimum is a far better
// estimate of the code's cost than any single sample.
//
// Every benchmark line is parsed into its full metric set (ns/op, B/op,
// allocs/op, and any custom b.ReportMetric units such as acc%). For the
// lower-is-better metrics (ns/op, B/op, allocs/op) a relative increase
// beyond -threshold is reported as a regression and, with -strict, makes the
// command exit non-zero. Custom metrics are tracked but not judged, since
// their polarity is benchmark-specific.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/obs"
)

// Snapshot is the on-disk format of a BENCH_<date>.json file.
type Snapshot struct {
	// Date is the collection date (YYYY-MM-DD).
	Date string `json:"date"`
	// GoVersion and GOMAXPROCS record the measurement conditions.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// GitSHA is the commit the numbers were measured at (empty outside a
	// git checkout).
	GitSHA string `json:"git_sha,omitempty"`
	// Workers is the campaign worker count of the obs workload below.
	Workers int `json:"workers,omitempty"`
	// Runs is the best-of-K repetition count the results were selected from
	// (absent or 1: a single run). The key avoids "runs", which the loadgen
	// shard artifacts already use for an array.
	Runs int `json:"best_of,omitempty"`
	// BenchArgs is the go test invocation that produced the numbers.
	BenchArgs string `json:"bench_args"`
	// Results maps benchmark name (without the -N GOMAXPROCS suffix) to
	// its parsed result.
	Results map[string]Result `json:"results"`
	// Obs is an engine metrics snapshot from an in-process fixed-seed test
	// campaign (counters and gauges by name; histograms as _count/_sum),
	// so cache-hit ratios and pool behaviour travel with the numbers.
	Obs map[string]float64 `json:"obs,omitempty"`
}

// Result is one parsed benchmark line.
type Result struct {
	// Iters is the b.N the values were averaged over.
	Iters int `json:"iters"`
	// Metrics maps unit ("ns/op", "B/op", "allocs/op", custom units) to
	// the measured value.
	Metrics map[string]float64 `json:"metrics"`
}

// lowerIsBetter lists the metrics libra-bench judges for regressions.
var lowerIsBetter = []string{"ns/op", "B/op", "allocs/op"}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkTable1-4   5   244814282 ns/op   78117744 B/op   200197 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-bench: ")
	bench := flag.String("bench", ".", "benchmark name pattern (go test -bench)")
	benchTime := flag.String("benchtime", "1x", "per-benchmark time or iteration count (go test -benchtime)")
	runs := flag.Int("runs", 1, "repeat the benchmark child this many times and keep each benchmark's fastest run (best-of-K)")
	pkg := flag.String("pkg", ".", "package pattern holding the benchmarks")
	dir := flag.String("dir", ".", "directory for BENCH_<date>.json snapshots")
	threshold := flag.Float64("threshold", 0.10, "relative increase in a lower-is-better metric that counts as a regression")
	strict := flag.Bool("strict", false, "exit non-zero when a regression is detected")
	label := flag.String("label", "", "optional snapshot filename suffix (BENCH_<date>_<label>.json), for a second snapshot on the same day")
	workers := flag.Int("workers", 0, "worker count for the embedded obs workload (0 = all cores)")
	oc := obs.RegisterCLI(flag.CommandLine)
	flag.Parse()
	if err := oc.Start(); err != nil {
		log.Fatal(err)
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	if *runs < 1 {
		*runs = 1
	}
	args := []string{"test", "-run=^$", "-bench=" + *bench, "-benchmem", "-benchtime=" + *benchTime, *pkg}
	snap := &Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     gitSHA(),
		Workers:    *workers,
		Runs:       *runs,
		BenchArgs:  strings.Join(args, " "),
		Results:    map[string]Result{},
	}
	for r := 1; r <= *runs; r++ {
		log.Printf("running (%d/%d): go %s", r, *runs, strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			os.Stdout.Write(out.Bytes())
			log.Fatalf("go test failed: %v", err)
		}
		parsed := 0
		sc := bufio.NewScanner(&out)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			iters, err := strconv.Atoi(m[2])
			if err != nil {
				continue
			}
			metrics, err := parseMetrics(m[3])
			if err != nil {
				log.Printf("skipping unparseable line %q: %v", line, err)
				continue
			}
			parsed++
			res := Result{Iters: iters, Metrics: metrics}
			if best, ok := snap.Results[m[1]]; !ok || fasterThan(res, best) {
				snap.Results[m[1]] = res
			}
		}
		if parsed == 0 {
			os.Stdout.Write(out.Bytes())
			log.Fatal("no benchmark results parsed")
		}
	}

	snap.Obs = obsWorkload(*workers)

	name := "BENCH_" + snap.Date
	if *label != "" {
		// '_' sorts after '.', so a labeled snapshot supersedes the same
		// day's plain one as the comparison baseline for later runs.
		name += "_" + *label
	}
	outPath := filepath.Join(*dir, name+".json")
	prev, prevPath, err := latestSnapshot(*dir, outPath)
	if err != nil {
		log.Fatalf("reading previous snapshot: %v", err)
	}

	if err := writeSnapshot(outPath, snap); err != nil {
		log.Fatalf("writing %s: %v", outPath, err)
	}
	log.Printf("wrote %s (%d benchmarks)", outPath, len(snap.Results))

	if prev == nil {
		log.Print("no previous snapshot to compare against")
		return
	}
	log.Printf("comparing against %s", prevPath)
	regressions := compare(os.Stdout, prev, snap, *threshold)
	if regressions > 0 {
		log.Printf("%d regression(s) beyond %.0f%%", regressions, *threshold*100)
		if *strict {
			os.Exit(1)
		}
	} else {
		log.Print("no regressions")
	}
	if err := oc.Stop(); err != nil {
		log.Fatal(err)
	}
}

// fasterThan reports whether a beats b for best-of-K selection: strictly
// lower ns/op. A run without ns/op never displaces an earlier one, so the
// whole metric set of one coherent run is kept together.
func fasterThan(a, b Result) bool {
	av, aok := a.Metrics["ns/op"]
	bv, bok := b.Metrics["ns/op"]
	return aok && bok && av < bv
}

// gitSHA returns the current commit hash, or "" outside a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// obsWorkload runs the fixed-seed test campaign in-process and returns the
// resulting engine metrics. The benchmarks themselves run in a go test child
// process, so this is the snapshot's window into cache-hit ratios and pool
// occupancy under a reproducible workload.
func obsWorkload(workers int) map[string]float64 {
	obs.Default.Reset()
	dataset.GenerateTestWorkers(43, workers)
	out := map[string]float64{}
	for _, m := range obs.Default.Snapshot() {
		switch m.Type {
		case "histogram":
			out[m.Name+"_count"] = float64(m.Count)
			out[m.Name+"_sum"] = m.Sum
		default:
			out[m.Name] = m.Value
		}
	}
	return out
}

// parseMetrics splits the tail of a benchmark line into (value, unit) pairs.
func parseMetrics(s string) (map[string]float64, error) {
	fields := strings.Fields(s)
	if len(fields)%2 != 0 {
		return nil, fmt.Errorf("odd field count in %q", s)
	}
	out := make(map[string]float64, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", fields[i], err)
		}
		out[fields[i+1]] = v
	}
	return out, nil
}

// latestSnapshot loads the newest BENCH_*.json in dir other than exclude.
func latestSnapshot(dir, exclude string) (*Snapshot, string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, "", err
	}
	sort.Strings(paths)
	for i := len(paths) - 1; i >= 0; i-- {
		if sameFile(paths[i], exclude) {
			continue
		}
		data, err := os.ReadFile(paths[i])
		if err != nil {
			return nil, "", err
		}
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return nil, "", fmt.Errorf("%s: %v", paths[i], err)
		}
		return &s, paths[i], nil
	}
	return nil, "", nil
}

func sameFile(a, b string) bool {
	return filepath.Clean(a) == filepath.Clean(b)
}

func writeSnapshot(path string, s *Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare prints a per-benchmark delta table and returns the number of
// lower-is-better metrics that regressed beyond threshold.
func compare(w *os.File, prev, cur *Snapshot, threshold float64) int {
	names := make([]string, 0, len(cur.Results))
	for name := range cur.Results {
		if _, ok := prev.Results[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		p, c := prev.Results[name], cur.Results[name]
		units := make([]string, 0, len(c.Metrics))
		for u := range c.Metrics {
			if _, ok := p.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			pv, cv := p.Metrics[u], c.Metrics[u]
			var delta float64
			if pv != 0 {
				delta = (cv - pv) / pv
			}
			tag := ""
			if judged(u) {
				switch {
				case delta > threshold:
					tag = "  REGRESSION"
					regressions++
				case delta < -threshold:
					tag = "  improved"
				}
			}
			fmt.Fprintf(w, "%-32s %12s %14.6g -> %14.6g  %+6.1f%%%s\n",
				name, u, pv, cv, delta*100, tag)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(w, "no overlapping benchmarks between snapshots")
	}
	return regressions
}

func judged(unit string) bool {
	for _, u := range lowerIsBetter {
		if u == unit {
			return true
		}
	}
	return false
}
