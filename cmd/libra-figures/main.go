// Command libra-figures regenerates every table and figure of the paper's
// evaluation in one run. Use -quick for a reduced-cost pass (fewer
// cross-validation repetitions and timelines); the output shape is
// identical.
//
// Usage:
//
//	libra-figures [-seed N] [-quick] [-only fig10,table1,...]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/libra-wlan/libra/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-figures: ")
	seed := flag.Int64("seed", 42, "random seed for the whole suite")
	quick := flag.Bool("quick", false, "reduced repetitions/timelines")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned text")
	outDir := flag.String("out", "", "also write each artifact to <dir>/<key>.txt (or .csv)")
	only := flag.String("only", "", "comma-separated subset (fig1..fig13, table1..table4, cv, transfer, threeclass, futurework, failover, alphasweep)")
	flag.Parse()

	s := experiments.NewSuite(*seed)
	reps, timelines := 20, experiments.TimelinesPerKind
	if *quick {
		reps, timelines = 2, 10
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	sel := func(key string) bool { return len(want) == 0 || want[key] }

	type step struct {
		key string
		run func() (experiments.Result, error)
	}
	steps := []step{
		{"fig1", func() (experiments.Result, error) { return experiments.Figure1(s), nil }},
		{"fig2", func() (experiments.Result, error) { return experiments.Figure2(s), nil }},
		{"fig3", func() (experiments.Result, error) { return experiments.Figure3(s), nil }},
		{"table1", func() (experiments.Result, error) { return experiments.Table1(s), nil }},
		{"table2", func() (experiments.Result, error) { return experiments.Table2(s), nil }},
		{"fig4", func() (experiments.Result, error) { return experiments.Figure4(s), nil }},
		{"fig5", func() (experiments.Result, error) { return experiments.Figure5(s), nil }},
		{"fig6", func() (experiments.Result, error) { return experiments.Figure6(s), nil }},
		{"fig7", func() (experiments.Result, error) { return experiments.Figure7(s), nil }},
		{"fig8", func() (experiments.Result, error) { return experiments.Figure8(s), nil }},
		{"fig9", func() (experiments.Result, error) { return experiments.Figure9(s), nil }},
		{"cv", func() (experiments.Result, error) { return experiments.CrossValidation(s, reps) }},
		{"transfer", func() (experiments.Result, error) { return experiments.TransferAccuracy(s) }},
		{"table3", func() (experiments.Result, error) { return experiments.Table3(s) }},
		{"threeclass", func() (experiments.Result, error) { return experiments.ThreeClass(s) }},
		{"futurework", func() (experiments.Result, error) { return experiments.FutureWork(s, timelines) }},
		{"failover", func() (experiments.Result, error) { return experiments.FailoverComparison(s, timelines/2) }},
		{"alphasweep", func() (experiments.Result, error) { return experiments.AlphaSweep(s, 150*time.Millisecond) }},
		{"fig10", func() (experiments.Result, error) { return experiments.Figure10(s) }},
		{"fig11", func() (experiments.Result, error) { return experiments.Figure11(s) }},
		{"fig12", func() (experiments.Result, error) { return experiments.Figure12(s, timelines) }},
		{"fig13", func() (experiments.Result, error) { return experiments.Figure13(s, timelines) }},
		{"table4", func() (experiments.Result, error) { return experiments.Table4(s, timelines) }},
	}

	failed := false
	for _, st := range steps {
		if !sel(st.key) {
			continue
		}
		t0 := time.Now()
		res, err := st.run()
		if err != nil {
			log.Printf("%s failed: %v", st.key, err)
			failed = true
			continue
		}
		body, ext := res.String(), ".txt"
		if *asCSV {
			body, ext = res.CSV(), ".csv"
			fmt.Printf("# %s\n%s\n", st.key, body)
		} else {
			fmt.Println(body)
			fmt.Printf("(%s completed in %v)\n\n", st.key, time.Since(t0).Round(time.Millisecond))
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*outDir, st.key+ext)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
