// Command libra-figures regenerates every table and figure of the paper's
// evaluation in one run. Use -quick for a reduced-cost pass (fewer
// cross-validation repetitions and timelines); the output shape is
// identical. The command is a shell around experiments.Suite.RunContext, so
// Ctrl-C stops cleanly at the next experiment boundary.
//
// Usage:
//
//	libra-figures [-seed N] [-quick] [-csv] [-out DIR] [-only fig10,table1,...]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/libra-wlan/libra/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libra-figures: ")
	seed := flag.Int64("seed", 42, "random seed for the whole suite")
	quick := flag.Bool("quick", false, "reduced repetitions/timelines")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned text")
	outDir := flag.String("out", "", "also write each artifact to <dir>/<key>.txt (or .csv)")
	only := flag.String("only", "",
		"comma-separated subset ("+strings.Join(experiments.StepKeys(), ",")+")")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := experiments.NewSuite(*seed)
	opt := experiments.RunOptions{Reps: 20}
	if *quick {
		opt.Reps, opt.Timelines = 2, 10
	}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			opt.Only = append(opt.Only, strings.TrimSpace(strings.ToLower(k)))
		}
	}

	t0 := time.Now()
	opt.Emit = func(key string, res experiments.Result) error {
		body, ext := res.String(), ".txt"
		if *asCSV {
			body, ext = res.CSV(), ".csv"
			fmt.Printf("# %s\n%s\n", key, body)
		} else {
			fmt.Println(body)
			fmt.Printf("(%s completed at %v)\n\n", key, time.Since(t0).Round(time.Millisecond))
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*outDir, key+ext)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				return err
			}
		}
		return nil
	}
	if _, err := s.RunContext(ctx, opt); err != nil {
		log.Fatal(err)
	}
}
