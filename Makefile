GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite; the parallel campaign engine, sweep
# fan-out, and cross-validation pool are exercised under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench records a dated BENCH_<date>.json snapshot of the paper-reproduction
# benchmarks and diffs it against the previous snapshot (10% threshold).
bench:
	$(GO) run ./cmd/libra-bench -bench 'Table1|Table2|CrossValidation|ForestFit|PredictBatch|SectorSweep|ClassifierInference|PolicyEntry' -benchtime 1x

# check is the pre-merge gate: static analysis plus the race-enabled suite.
check: vet race
