GO ?= go

.PHONY: build test race vet lint lint-baseline bench check profile serve-bench shard-bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite; the parallel campaign engine, sweep
# fan-out, and cross-validation pool are exercised under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the libra-lint analyzer suite (determinism, noalloc, clocksep,
# dbunits, configmut, floatreduce — see DESIGN.md "Static analysis & enforced
# invariants"). Reviewed findings recorded in lint.baseline are dropped;
# regenerate it with `make lint-baseline` only after review.
lint:
	$(GO) run ./cmd/libra-lint -baseline lint.baseline ./...

# lint-baseline snapshots the current findings into lint.baseline for review.
lint-baseline:
	$(GO) run ./cmd/libra-lint -write-baseline lint.baseline ./...

# bench records a dated BENCH_<date>.json snapshot of the paper-reproduction
# benchmarks and diffs it against the previous snapshot (10% threshold),
# keeping each benchmark's fastest of 3 runs to reject scheduler noise. A
# lint-dirty tree refuses to snapshot: numbers recorded off a tree that
# breaks the determinism contracts are not reproducible evidence.
bench: lint
	$(GO) run ./cmd/libra-bench -bench 'Table1|Table2|CampaignColumnar|SweepFused|CrossValidation|ForestFit|PredictBatch|SectorSweep|ClassifierInference|PolicyEntry' -benchtime 1x -runs 3

# serve-bench records a dated BENCH_<date>_serve.json artifact of the
# decision service A/B (per-request vs coalesced inference, concurrency 64).
# The 2400x20 forest is sized so model compute dominates the L2 cache — the
# regime the coalescer exists for; see DESIGN.md §9.
serve-bench: lint
	$(GO) run ./cmd/libra-loadgen -c 64 -n 40000 -warmup 4000 \
		-trees 2400 -depth 20 -max-linger 100us \
		-json BENCH_$$(date +%F)_serve.json

# shard-bench records a dated BENCH_<date>_shard.json artifact of the
# fleet-scale decide path: a quantized 2400x20 forest behind a 2-shard
# consistent-hash router, driven over the pipelined binary wire protocol.
# The artifact embeds the git SHA, the fixed seed, the quantized/float64
# class-parity result, and the speedup over the batched-HTTP baseline.
# Like bench, a lint-dirty tree refuses to snapshot.
shard-bench: lint
	$(GO) run ./cmd/libra-loadgen -mode shard -c 32 -n 40000 -warmup 4000 \
		-trees 2400 -depth 20 -max-batch 512 -max-linger 100us \
		-shards 2 -pipeline 128 -runs 5 \
		-json BENCH_$$(date +%F)_shard.json

# check is the pre-merge gate: static analysis (vet + libra-lint) plus the
# race-enabled suite.
check: vet lint race

# profile captures CPU and heap profiles of the Table 1 benchmark (the
# campaign engine's hot path) and prints the top consumers of each.
profile:
	$(GO) test -run '^$$' -bench 'Table1' -benchtime 1x \
		-cpuprofile cpu.prof -memprofile mem.prof .
	$(GO) tool pprof -top -nodecount 15 cpu.prof
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_space mem.prof
