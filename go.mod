module github.com/libra-wlan/libra

go 1.22
