package adapt

import (
	"math"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/phased"
)

// HierarchicalSLS is a two-level beam search in the spirit of multi-level
// codebook protocols (Haider & Knightly's MOCA, IEEE 802.11ad's optional
// beam refinement phase): a coarse pass probes every k-th sector with
// quasi-omni reception, then a fine pass refines the Tx and Rx beams inside
// the winning neighborhood. It trades a small SNR loss for an O(N/k + k)
// sweep instead of O(N) or O(N^2).
type HierarchicalSLS struct {
	// CoarseStep is the sector stride of the first pass (default 4).
	CoarseStep int
}

// Name implements BeamAdapter.
func (h HierarchicalSLS) Name() string { return "hierarchical-sls" }

// Adapt implements BeamAdapter.
func (h HierarchicalSLS) Adapt(l *channel.Link) BAResult {
	step := h.CoarseStep
	if step <= 0 {
		step = 4
	}
	probes := 0

	// Coarse Tx pass with quasi-omni reception.
	bestCoarse, bestSNR := 0, math.Inf(-1)
	for t := 0; t < phased.NumBeams; t += step {
		probes++
		if s := l.SNRdB(t, phased.QuasiOmniID); s > bestSNR {
			bestSNR, bestCoarse = s, t
		}
	}
	// Fine Tx pass around the winner.
	lo, hi := bestCoarse-step+1, bestCoarse+step-1
	if lo < 0 {
		lo = 0
	}
	if hi >= phased.NumBeams {
		hi = phased.NumBeams - 1
	}
	bestTx, bestSNR := bestCoarse, math.Inf(-1)
	for t := lo; t <= hi; t++ {
		probes++
		if s := l.SNRdB(t, phased.QuasiOmniID); s > bestSNR {
			bestSNR, bestTx = s, t
		}
	}
	// Rx refinement around the geometric best for the chosen Tx beam.
	bestRx, bestPair := phased.QuasiOmniID, bestSNR
	for r := 0; r < phased.NumBeams; r += step {
		probes++
		if s := l.SNRdB(bestTx, r); s > bestPair {
			bestPair, bestRx = s, r
		}
	}
	if bestRx != phased.QuasiOmniID {
		lo, hi = bestRx-step+1, bestRx+step-1
		if lo < 0 {
			lo = 0
		}
		if hi >= phased.NumBeams {
			hi = phased.NumBeams - 1
		}
		for r := lo; r <= hi; r++ {
			probes++
			if s := l.SNRdB(bestTx, r); s > bestPair {
				bestPair, bestRx = s, r
			}
		}
	}
	return BAResult{
		TxBeam:   bestTx,
		RxBeam:   bestRx,
		SNRdB:    bestPair,
		Overhead: time.Duration(probes) * SSWFrameTime,
		Probes:   probes,
	}
}

// LocalSearchBA refines the current beam pair by probing only the immediate
// neighborhood — the cheap tracking step mobile clients can afford every few
// frames (cf. beam tracking in 802.11ay). It cannot recover from a large
// misalignment (the paper's point about failover sectors failing under
// angular displacement), which the tests verify.
type LocalSearchBA struct {
	// Radius is the neighborhood half-width in sectors (default 2).
	Radius int
	// StartTx, StartRx seed the search (the current beam pair).
	StartTx, StartRx int
}

// Name implements BeamAdapter.
func (s LocalSearchBA) Name() string { return "local-search" }

// Adapt implements BeamAdapter.
func (s LocalSearchBA) Adapt(l *channel.Link) BAResult {
	r := s.Radius
	if r <= 0 {
		r = 2
	}
	clamp := func(b int) int {
		if b < 0 {
			return 0
		}
		if b >= phased.NumBeams {
			return phased.NumBeams - 1
		}
		return b
	}
	bestTx, bestRx := clamp(s.StartTx), clamp(s.StartRx)
	bestSNR := math.Inf(-1)
	probes := 0
	for dt := -r; dt <= r; dt++ {
		for dr := -r; dr <= r; dr++ {
			tb, rb := clamp(s.StartTx+dt), clamp(s.StartRx+dr)
			probes++
			if snr := l.SNRdB(tb, rb); snr > bestSNR {
				bestSNR, bestTx, bestRx = snr, tb, rb
			}
		}
	}
	return BAResult{
		TxBeam:   bestTx,
		RxBeam:   bestRx,
		SNRdB:    bestSNR,
		Overhead: time.Duration(probes) * SSWFrameTime,
		Probes:   probes,
	}
}
