package adapt

import (
	"testing"
	"time"
)

func TestHandoffOverhead(t *testing.T) {
	ba := 5 * time.Millisecond
	if got := HandoffOverhead(ba); got != ba+ReassocOverhead {
		t.Errorf("HandoffOverhead(%v) = %v", ba, got)
	}
	// The handoff must always cost more than the sweep alone — otherwise
	// the engine's stations would prefer handoff over in-cell BA even when
	// the serving AP is fine.
	if HandoffOverhead(ba) <= ba {
		t.Error("handoff not dearer than beam training")
	}
}
