package adapt

import "github.com/libra-wlan/libra/internal/obs"

// Per-algorithm adaptation counters, labeled by the algorithm name so the
// exported series show which mechanism (BA flavor or RA search) actually ran
// and how much training airtime it consumed in probes.
var (
	obsBARuns = map[string]*obs.Counter{
		"exhaustive-sls": obs.NewCounter(`libra_adapt_ba_runs_total{algo="exhaustive-sls"}`, "beam-adaptation runs per algorithm"),
		"standard-sls":   obs.NewCounter(`libra_adapt_ba_runs_total{algo="standard-sls"}`, "beam-adaptation runs per algorithm"),
		"txonly-sls":     obs.NewCounter(`libra_adapt_ba_runs_total{algo="txonly-sls"}`, "beam-adaptation runs per algorithm"),
	}
	obsBAProbes = obs.NewCounter("libra_adapt_ba_probes_total",
		"sector-sweep probe frames across all BA runs")
	obsRARuns = map[string]*obs.Counter{
		"probe-down": obs.NewCounter(`libra_adapt_ra_runs_total{algo="probe-down"}`, "rate-adaptation runs per algorithm"),
		"snr-map":    obs.NewCounter(`libra_adapt_ra_runs_total{algo="snr-map"}`, "rate-adaptation runs per algorithm"),
	}
	obsRAProbes = obs.NewCounter("libra_adapt_ra_probes_total",
		"aggregated probe frames across all RA searches")
)

// countBA records one BA run and its probe volume.
func countBA(name string, probes int) {
	if c, ok := obsBARuns[name]; ok {
		c.Inc()
	}
	obsBAProbes.Add(uint64(probes))
}

// countRA records one RA search and its probe volume.
func countRA(name string, frames int) {
	if c, ok := obsRARuns[name]; ok {
		c.Inc()
	}
	obsRAProbes.Add(uint64(frames))
}
