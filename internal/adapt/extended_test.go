package adapt

import (
	"testing"

	"github.com/libra-wlan/libra/internal/channel"
)

func TestHierarchicalSLSNearOptimal(t *testing.T) {
	l := testLink(6)
	ex := ExhaustiveSLS{}.Adapt(l)
	h := HierarchicalSLS{}.Adapt(l)
	if h.SNRdB < ex.SNRdB-3 {
		t.Errorf("hierarchical %v dB vs exhaustive %v dB", h.SNRdB, ex.SNRdB)
	}
}

func TestHierarchicalSLSCheaperThanStandard(t *testing.T) {
	l := testLink(6)
	st := StandardSLS{}.Adapt(l)
	h := HierarchicalSLS{}.Adapt(l)
	if h.Probes >= st.Probes {
		t.Errorf("hierarchical probes %d >= standard %d", h.Probes, st.Probes)
	}
	if h.Overhead >= st.Overhead {
		t.Errorf("hierarchical overhead %v >= standard %v", h.Overhead, st.Overhead)
	}
}

func TestHierarchicalSLSCustomStep(t *testing.T) {
	l := testLink(6)
	truth := ExhaustiveSLS{}.Adapt(l)
	// Total probes are minimized near stride sqrt(N): both a very coarse
	// and a very fine stride cost more than the default, and all strides
	// stay near the optimum on a clean LOS link.
	def := HierarchicalSLS{}.Adapt(l)
	for _, step := range []int{2, 8} {
		res := HierarchicalSLS{CoarseStep: step}.Adapt(l)
		if res.Probes <= 0 || res.Probes >= 2*phasedBeams() {
			t.Errorf("step %d probes = %d", step, res.Probes)
		}
		if res.Probes < def.Probes {
			t.Errorf("step %d (%d probes) beat the default stride (%d)", step, res.Probes, def.Probes)
		}
		if res.SNRdB < truth.SNRdB-3 {
			t.Errorf("step %d SNR %v far from truth %v", step, res.SNRdB, truth.SNRdB)
		}
	}
}

func phasedBeams() int { return 25 * 25 }

func TestLocalSearchTracksSmallDrift(t *testing.T) {
	l := testLink(8)
	ex := ExhaustiveSLS{}.Adapt(l)
	// Rotate a little: the optimum moves by a beam or two.
	l.RotateRx(180 + 8)
	truth := ExhaustiveSLS{}.Adapt(l)
	ls := LocalSearchBA{StartTx: ex.TxBeam, StartRx: ex.RxBeam}.Adapt(l)
	if ls.SNRdB < truth.SNRdB-1.5 {
		t.Errorf("local search %v dB vs truth %v dB after small drift", ls.SNRdB, truth.SNRdB)
	}
}

func TestLocalSearchFailsOnLargeDisplacement(t *testing.T) {
	// The paper's argument against failover sectors (§8 discussion of
	// MOCA): local tracking cannot recover from large angular displacement.
	l := testLink(8)
	ex := ExhaustiveSLS{}.Adapt(l)
	l.RotateRx(180 + 70)
	truth := ExhaustiveSLS{}.Adapt(l)
	ls := LocalSearchBA{StartTx: ex.TxBeam, StartRx: ex.RxBeam, Radius: 2}.Adapt(l)
	if ls.SNRdB >= truth.SNRdB-3 {
		t.Skip("geometry let local search keep up; scenario-specific")
	}
	// This is the expected outcome: a full sweep is required.
	if ls.Probes >= truth.Probes {
		t.Error("local search probed as much as the full sweep")
	}
}

func TestLocalSearchClampsEdges(t *testing.T) {
	l := testLink(6)
	ls := LocalSearchBA{StartTx: 0, StartRx: 24, Radius: 3}.Adapt(l)
	if ls.TxBeam < 0 || ls.TxBeam > 24 || ls.RxBeam < 0 || ls.RxBeam > 24 {
		t.Errorf("out-of-range beams (%d,%d)", ls.TxBeam, ls.RxBeam)
	}
}

func TestLocalSearchCheap(t *testing.T) {
	l := testLink(6)
	ls := LocalSearchBA{Radius: 2}.Adapt(l)
	if ls.Probes != 25 {
		t.Errorf("probes = %d, want 25 (5x5 neighborhood)", ls.Probes)
	}
	st := StandardSLS{}.Adapt(l)
	if ls.Overhead >= st.Overhead {
		t.Error("local search should be cheaper than a standard sweep")
	}
}

func TestExtendedNames(t *testing.T) {
	if (HierarchicalSLS{}).Name() == "" || (LocalSearchBA{}).Name() == "" {
		t.Error("names empty")
	}
}

func TestHierarchicalOnNLOS(t *testing.T) {
	// With the LOS blocked, the hierarchical search must still land on a
	// usable reflection.
	l := testLink(8)
	mid := l.Tx.Pos.Add(l.Rx.Pos.Sub(l.Tx.Pos).Scale(0.5))
	l.SetBlockers([]channel.Blocker{channel.DefaultBlocker(mid)})
	truth := ExhaustiveSLS{}.Adapt(l)
	h := HierarchicalSLS{}.Adapt(l)
	if h.SNRdB < truth.SNRdB-6 {
		t.Errorf("hierarchical NLOS %v dB vs truth %v dB", h.SNRdB, truth.SNRdB)
	}
}
