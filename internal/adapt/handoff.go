package adapt

import "time"

// AP handoff costs. Re-homing a station onto a different AP is a beam
// adaptation against the new AP's array (the station knows nothing about
// that channel, so it pays a full SLS) plus the 802.11 reassociation
// exchange — authentication, reassociation request/response and the Block
// ACK agreement teardown/re-setup, all at the control PHY rate.

// ReassocOverhead is the airtime of the reassociation signaling exchange.
// Measured 802.11 handoffs spend on the order of a few milliseconds in
// management frames once the target is known; 2 ms is a deliberately
// optimistic (pre-authenticated, no scanning) figure so the engine's handoff
// decisions are dominated by the beam-training term, as they are at 60 GHz.
const ReassocOverhead = 2 * time.Millisecond

// HandoffOverhead returns the total airtime a station loses switching APs:
// one full beam-training run against the new AP plus the reassociation
// exchange.
func HandoffOverhead(baOverhead time.Duration) time.Duration {
	return baOverhead + ReassocOverhead
}
