// Package adapt implements the two 60 GHz link adaptation mechanisms the
// paper studies — beam adaptation (BA) and rate adaptation (RA) — in the
// standard-compliant variants the evaluation uses:
//
//   - ExhaustiveSLS: the naive O(N^2) sweep over all Tx x Rx beam pairs used
//     to establish ground truth (overhead up to hundreds of ms for
//     directional reception, Fig. 11 of Sur et al.).
//   - StandardSLS: the 802.11ad O(N) procedure — each side trains its Tx
//     beam while the other receives quasi-omni, then Rx training follows.
//   - TxOnlySLS: what COTS devices actually do — Tx training only, always
//     receiving quasi-omni, halving the overhead again.
//   - ProbeDownRA: the paper's frame-based RA (§7): start at the current
//     MCS, probe every lower MCS with one aggregated frame until the
//     highest-throughput working MCS is found; trigger BA if none works.
//   - SNRMapRA: the direct SNR->MCS mapping proposed by early 60 GHz work,
//     included as a baseline the paper argues against.
//
// BA algorithms report their training overhead so the simulator can charge
// it against throughput and link recovery delay.
package adapt

import (
	"math"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/mac"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
)

// SSWFrameTime is the airtime of one sector-sweep control frame. 802.11ad
// SSW frames are short control frames at the most robust rate.
const SSWFrameTime = 15 * time.Microsecond

// BAResult is the outcome of one beam-adaptation run.
type BAResult struct {
	// TxBeam, RxBeam are the selected beams (RxBeam may be
	// phased.QuasiOmniID for Tx-only training).
	TxBeam, RxBeam int
	// SNRdB is the SNR measured on the selected configuration.
	SNRdB float64
	// Overhead is the training airtime during which no data flows.
	Overhead time.Duration
	// Probes is the number of sector-sweep measurements taken.
	Probes int
}

// BeamAdapter is a beam-training algorithm.
type BeamAdapter interface {
	// Name identifies the algorithm.
	Name() string
	// Adapt trains beams on the link and returns the selection.
	Adapt(l *channel.Link) BAResult
}

// ExhaustiveSLS tests all Tx x Rx beam pairs: O(N^2) probes.
type ExhaustiveSLS struct{}

// Name implements BeamAdapter.
func (ExhaustiveSLS) Name() string { return "exhaustive-sls" }

// Adapt implements BeamAdapter.
func (ExhaustiveSLS) Adapt(l *channel.Link) BAResult {
	tx, rx, snr := l.BestPair()
	n := phased.NumBeams * phased.NumBeams
	countBA("exhaustive-sls", n)
	return BAResult{
		TxBeam:   tx,
		RxBeam:   rx,
		SNRdB:    snr,
		Overhead: time.Duration(n) * SSWFrameTime,
		Probes:   n,
	}
}

// StandardSLS is the 802.11ad two-phase O(N) procedure: Tx sector sweep with
// quasi-omni reception, then an Rx sweep with the chosen Tx beam.
type StandardSLS struct{}

// Name implements BeamAdapter.
func (StandardSLS) Name() string { return "standard-sls" }

// Adapt implements BeamAdapter.
func (StandardSLS) Adapt(l *channel.Link) BAResult {
	bestTx, _ := l.BestTxQuasiOmni()
	bestRx, bestSNR := 0, math.Inf(-1)
	for r := 0; r < phased.NumBeams; r++ {
		if s := l.SNRdB(bestTx, r); s > bestSNR {
			bestSNR, bestRx = s, r
		}
	}
	n := 2 * phased.NumBeams
	countBA("standard-sls", n)
	return BAResult{
		TxBeam:   bestTx,
		RxBeam:   bestRx,
		SNRdB:    bestSNR,
		Overhead: time.Duration(n) * SSWFrameTime,
		Probes:   n,
	}
}

// TxOnlySLS trains only the Tx beam and keeps quasi-omni reception, as COTS
// 802.11ad devices do.
type TxOnlySLS struct{}

// Name implements BeamAdapter.
func (TxOnlySLS) Name() string { return "txonly-sls" }

// Adapt implements BeamAdapter.
func (TxOnlySLS) Adapt(l *channel.Link) BAResult {
	bestTx, snr := l.BestTxQuasiOmni()
	countBA("txonly-sls", phased.NumBeams)
	return BAResult{
		TxBeam:   bestTx,
		RxBeam:   phased.QuasiOmniID,
		SNRdB:    snr,
		Overhead: time.Duration(phased.NumBeams) * SSWFrameTime,
		Probes:   phased.NumBeams,
	}
}

// RAResult is the outcome of one rate-adaptation run.
type RAResult struct {
	// MCS is the selected scheme.
	MCS phy.MCS
	// ThroughputBps is the throughput measured at the selection.
	ThroughputBps float64
	// FramesProbed is how many aggregated frames the search consumed (the
	// search overhead is FramesProbed x frame aggregation time).
	FramesProbed int
	// Working reports whether a working MCS was found at all. When false
	// the caller must trigger BA and retry (§7).
	Working bool
	// DeliveredBits counts payload bits delivered by probe frames: RA
	// probes are data frames, so throughput during RA is suboptimal but
	// not zero (§5.2).
	DeliveredBits float64
}

// RateAdapter is a rate-search algorithm run on a station after a link
// impairment.
type RateAdapter interface {
	// Name identifies the algorithm.
	Name() string
	// Adapt searches for the best working MCS at or below start, probing
	// via the station, and leaves the station configured at the result.
	Adapt(s *mac.Station, start phy.MCS) RAResult
}

// ProbeDownRA is the paper's frame-based downward rate search: send one
// aggregated frame at each MCS from start downward; keep the
// highest-throughput working MCS found.
type ProbeDownRA struct{}

// Name implements RateAdapter.
func (ProbeDownRA) Name() string { return "probe-down" }

// Adapt implements RateAdapter.
func (ProbeDownRA) Adapt(s *mac.Station, start phy.MCS) RAResult {
	if start > phy.MaxMCS {
		start = phy.MaxMCS
	}
	if start < phy.MinMCS {
		start = phy.MinMCS
	}
	res := RAResult{MCS: start}
	bestTh := 0.0
	bestMCS := phy.MCS(-1)
	for m := start; m >= phy.MinMCS; m-- {
		rec := s.ProbeMCS(m)
		res.FramesProbed++
		res.DeliveredBits += rec.DeliveredBits
		th := rec.ThroughputBps()
		if phy.IsWorking(rec.CDR, th) && th > bestTh {
			bestTh = th
			bestMCS = m
		}
		// Once a working MCS is found, going further down only reduces
		// the PHY rate; the waterfall CDR curves make a lower MCS beat a
		// working higher one only marginally, but the paper's algorithm
		// continues "until it finds the highest-throughput working MCS",
		// so stop when throughput starts decreasing.
		if bestMCS >= 0 && th < bestTh {
			break
		}
	}
	if bestMCS < 0 {
		res.Working = false
		res.MCS = phy.MinMCS
		s.MCS = phy.MinMCS
		countRA("probe-down", res.FramesProbed)
		return res
	}
	res.Working = true
	res.MCS = bestMCS
	res.ThroughputBps = bestTh
	s.MCS = bestMCS
	countRA("probe-down", res.FramesProbed)
	return res
}

// SNRMapRA selects the MCS by direct SNR thresholding, the baseline approach
// from early 60 GHz studies. It probes once to read the SNR off the ACK and
// once more at the mapped MCS.
type SNRMapRA struct {
	// MarginDB backs the selection off the 50%-CDR point to reach the
	// high-CDR plateau (default 3 dB when zero).
	MarginDB float64
}

// Name implements RateAdapter.
func (SNRMapRA) Name() string { return "snr-map" }

// Adapt implements RateAdapter.
func (r SNRMapRA) Adapt(s *mac.Station, start phy.MCS) RAResult {
	margin := r.MarginDB
	if margin == 0 {
		margin = 3
	}
	probe := s.ProbeMCS(phy.MinMCS)
	res := RAResult{FramesProbed: 1, DeliveredBits: probe.DeliveredBits}
	if !probe.ACKed {
		res.Working = false
		res.MCS = phy.MinMCS
		s.MCS = phy.MinMCS
		countRA("snr-map", res.FramesProbed)
		return res
	}
	chosen := phy.MinMCS
	for m := phy.MinMCS; m <= start && m <= phy.MaxMCS; m++ {
		if probe.SNRdB >= m.SNRReqDB()+margin {
			chosen = m
		}
	}
	rec := s.ProbeMCS(chosen)
	res.FramesProbed++
	res.DeliveredBits += rec.DeliveredBits
	res.MCS = chosen
	res.ThroughputBps = rec.ThroughputBps()
	res.Working = phy.IsWorking(rec.CDR, res.ThroughputBps)
	s.MCS = chosen
	countRA("snr-map", res.FramesProbed)
	return res
}
