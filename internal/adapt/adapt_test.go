package adapt

import (
	"math/rand"
	"testing"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/mac"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
)

func testLink(d float64) *channel.Link {
	e := env.MediumCorridor()
	tx := phased.NewArray(geom.V(0.5, 1.6), 0, 11)
	rx := phased.NewArray(geom.V(0.5+d, 1.6), 180, 12)
	return channel.NewLink(e, tx, rx)
}

func TestExhaustiveSLSFindsBest(t *testing.T) {
	l := testLink(6)
	res := ExhaustiveSLS{}.Adapt(l)
	tb, rb, snr := l.BestPair()
	if res.TxBeam != tb || res.RxBeam != rb || res.SNRdB != snr {
		t.Errorf("exhaustive = (%d,%d,%v), truth = (%d,%d,%v)",
			res.TxBeam, res.RxBeam, res.SNRdB, tb, rb, snr)
	}
	if res.Probes != phased.NumBeams*phased.NumBeams {
		t.Errorf("probes = %d", res.Probes)
	}
}

func TestStandardSLSNearOptimal(t *testing.T) {
	l := testLink(6)
	ex := ExhaustiveSLS{}.Adapt(l)
	st := StandardSLS{}.Adapt(l)
	// The O(N) procedure may miss the joint optimum but must come within a
	// few dB on a clean LOS link.
	if st.SNRdB < ex.SNRdB-3 {
		t.Errorf("standard SLS %v dB vs exhaustive %v dB", st.SNRdB, ex.SNRdB)
	}
	if st.Probes != 2*phased.NumBeams {
		t.Errorf("probes = %d", st.Probes)
	}
}

func TestTxOnlySLS(t *testing.T) {
	l := testLink(6)
	res := TxOnlySLS{}.Adapt(l)
	if res.RxBeam != phased.QuasiOmniID {
		t.Errorf("rx beam = %d, want quasi-omni", res.RxBeam)
	}
	if res.Probes != phased.NumBeams {
		t.Errorf("probes = %d", res.Probes)
	}
	wantTx, _ := l.BestTxQuasiOmni()
	if res.TxBeam != wantTx {
		t.Errorf("tx beam = %d, want %d", res.TxBeam, wantTx)
	}
}

func TestOverheadOrdering(t *testing.T) {
	l := testLink(6)
	ex := ExhaustiveSLS{}.Adapt(l)
	st := StandardSLS{}.Adapt(l)
	tx := TxOnlySLS{}.Adapt(l)
	if !(tx.Overhead < st.Overhead && st.Overhead < ex.Overhead) {
		t.Errorf("overhead ordering broken: %v %v %v", tx.Overhead, st.Overhead, ex.Overhead)
	}
}

func TestNames(t *testing.T) {
	if (ExhaustiveSLS{}).Name() == "" || (StandardSLS{}).Name() == "" || (TxOnlySLS{}).Name() == "" {
		t.Error("BA names empty")
	}
	if (ProbeDownRA{}).Name() == "" || (SNRMapRA{}).Name() == "" {
		t.Error("RA names empty")
	}
}

func stationOn(l *channel.Link, seed int64) *mac.Station {
	s := mac.NewStation(l, rand.New(rand.NewSource(seed)))
	tb, rb, snr := l.BestPair()
	s.TxBeam, s.RxBeam = tb, rb
	s.MCS, _ = phy.BestMCS(snr)
	return s
}

func TestProbeDownFindsWorking(t *testing.T) {
	l := testLink(6)
	s := stationOn(l, 1)
	res := ProbeDownRA{}.Adapt(s, phy.MaxMCS)
	if !res.Working {
		t.Fatal("no working MCS on a healthy 6 m link")
	}
	if s.MCS != res.MCS {
		t.Error("station not left at the selected MCS")
	}
	if res.FramesProbed <= 0 {
		t.Error("no probes counted")
	}
	if res.ThroughputBps < phy.WorkingMinThroughputBps {
		t.Errorf("selected throughput %v below working threshold", res.ThroughputBps)
	}
}

func TestProbeDownDeadLink(t *testing.T) {
	l := testLink(6)
	l.ImplLossDB = 90
	l.Invalidate()
	s := stationOn(l, 2)
	res := ProbeDownRA{}.Adapt(s, phy.MaxMCS)
	if res.Working {
		t.Fatal("working MCS reported on a dead link")
	}
	if s.MCS != phy.MinMCS {
		t.Errorf("station MCS = %v after failure", s.MCS)
	}
	// It probed the whole ladder.
	if res.FramesProbed != phy.NumMCS {
		t.Errorf("probes = %d, want %d", res.FramesProbed, phy.NumMCS)
	}
}

func TestProbeDownClampsStart(t *testing.T) {
	l := testLink(6)
	s := stationOn(l, 3)
	res := ProbeDownRA{}.Adapt(s, phy.MCS(99))
	if !res.Working {
		t.Error("clamped start failed")
	}
	res = ProbeDownRA{}.Adapt(s, phy.MCS(-5))
	if res.FramesProbed < 1 {
		t.Error("clamped negative start did not probe")
	}
}

func TestProbeDownDeliversBytesDuringSearch(t *testing.T) {
	// RA probes are data frames: throughput during RA is not zero (§5.2).
	l := testLink(6)
	s := stationOn(l, 4)
	res := ProbeDownRA{}.Adapt(s, s.MCS)
	if res.DeliveredBits <= 0 {
		t.Error("probe frames delivered nothing on a live link")
	}
}

func TestSNRMapSelectsReasonable(t *testing.T) {
	l := testLink(6)
	s := stationOn(l, 5)
	res := SNRMapRA{}.Adapt(s, phy.MaxMCS)
	if !res.Working {
		t.Fatal("SNR map failed on a healthy link")
	}
	// The mapped MCS must be supported by the actual SNR.
	snr := l.SNRdB(s.TxBeam, s.RxBeam)
	if res.MCS.SNRReqDB() > snr {
		t.Errorf("mapped %v requires %v dB but link has %v", res.MCS, res.MCS.SNRReqDB(), snr)
	}
}

func TestSNRMapDeadLink(t *testing.T) {
	l := testLink(6)
	l.ImplLossDB = 90
	l.Invalidate()
	s := stationOn(l, 6)
	res := SNRMapRA{}.Adapt(s, phy.MaxMCS)
	if res.Working {
		t.Error("SNR map claimed working on a dead link")
	}
}

func TestSNRMapRespectsStartCap(t *testing.T) {
	l := testLink(3) // strong link
	s := stationOn(l, 7)
	res := SNRMapRA{}.Adapt(s, phy.MCS(2))
	if res.MCS > 2 {
		t.Errorf("SNR map exceeded the start cap: %v", res.MCS)
	}
}

func TestBAThenRAWorkflow(t *testing.T) {
	// The §5.2 compound: after losing alignment, BA restores the beams and
	// RA finds a working rate.
	l := testLink(8)
	s := stationOn(l, 8)
	l.RotateRx(180 + 55) // misalign
	res := ProbeDownRA{}.Adapt(s, s.MCS)
	if res.Working {
		t.Skip("link survived rotation; geometry-specific")
	}
	ba := StandardSLS{}.Adapt(l)
	s.TxBeam, s.RxBeam = ba.TxBeam, ba.RxBeam
	res2 := ProbeDownRA{}.Adapt(s, phy.MaxMCS)
	if !res2.Working {
		t.Error("BA followed by RA failed to restore the link")
	}
}
