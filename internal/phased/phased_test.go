package phased

import (
	"math"
	"testing"

	"github.com/libra-wlan/libra/internal/geom"
)

func newTestArray() *Array {
	return NewArray(geom.V(0, 0), 0, 1)
}

func TestCodebookValidates(t *testing.T) {
	a := newTestArray()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCodebookStructure(t *testing.T) {
	a := newTestArray()
	if len(a.Beams) != NumBeams {
		t.Fatalf("beams = %d", len(a.Beams))
	}
	for i, b := range a.Beams {
		want := MinSteerDeg + BeamSpacingDeg*float64(i)
		if math.Abs(b.BoresightDeg-want) > 1e-9 {
			t.Errorf("beam %d boresight %v, want %v", i, b.BoresightDeg, want)
		}
	}
	// Boresights span the documented range.
	if a.Beams[0].BoresightDeg != MinSteerDeg || a.Beams[NumBeams-1].BoresightDeg != MaxSteerDeg {
		t.Error("codebook span wrong")
	}
}

func TestMainLobePeakAndWidth(t *testing.T) {
	a := newTestArray()
	for _, b := range a.Beams {
		peak := b.GainDBi(b.BoresightDeg)
		if math.Abs(peak-b.PeakGainDBi) > 1e-9 {
			t.Errorf("beam %d peak %v, want %v", b.ID, peak, b.PeakGainDBi)
		}
		// At +/- half the 3 dB beamwidth the gain is exactly 3 dB down
		// (unless a side lobe dominates there, which must not happen at
		// half beamwidth).
		for _, sgn := range []float64{-1, 1} {
			g := b.GainDBi(b.BoresightDeg + sgn*b.Beamwidth3dBDeg/2)
			if g > peak-3+1e-6 && math.Abs(g-(peak-3)) > 1e-6 {
				t.Errorf("beam %d gain at half width = %v, want <= %v", b.ID, g, peak-3)
			}
		}
	}
}

func TestSideLobesBelowMain(t *testing.T) {
	a := newTestArray()
	for _, b := range a.Beams {
		peak := b.GainDBi(b.BoresightDeg)
		// Sample the whole pattern: nothing exceeds the main peak.
		for deg := -180.0; deg <= 180; deg += 1 {
			if g := b.GainDBi(deg); g > peak+1e-9 {
				t.Fatalf("beam %d gain %v at %v exceeds peak %v", b.ID, g, deg, peak)
			}
		}
	}
}

func TestSideLobesExist(t *testing.T) {
	// The paper stresses that beams feature large side lobes; verify that
	// far off boresight the pattern rises above the floor somewhere.
	a := newTestArray()
	found := 0
	for _, b := range a.Beams {
		for deg := -180.0; deg <= 180; deg += 1 {
			if math.Abs(deg-b.BoresightDeg) < b.Beamwidth3dBDeg*1.5 {
				continue
			}
			if b.GainDBi(deg) > b.FloorDBi+3 {
				found++
				break
			}
		}
	}
	if found < NumBeams/2 {
		t.Errorf("only %d beams have visible side lobes", found)
	}
}

func TestGainFloor(t *testing.T) {
	a := newTestArray()
	for _, b := range a.Beams {
		for deg := -180.0; deg <= 180; deg += 0.5 {
			if g := b.GainDBi(deg); g < b.FloorDBi-1e-9 {
				t.Fatalf("beam %d below floor at %v: %v", b.ID, deg, g)
			}
		}
	}
}

func TestArrayGainOrientation(t *testing.T) {
	// Rotating the array must rotate the pattern with it.
	a := NewArray(geom.V(0, 0), 0, 2)
	b := NewArray(geom.V(0, 0), 90, 2)
	dirA := geom.FromAngle(0)
	dirB := geom.FromAngle(geom.Rad(90))
	for beam := 0; beam < NumBeams; beam++ {
		ga := a.GainDBi(beam, dirA)
		gb := b.GainDBi(beam, dirB)
		if math.Abs(ga-gb) > 1e-9 {
			t.Fatalf("beam %d: rotated gain %v != %v", beam, gb, ga)
		}
	}
}

func TestQuasiOmni(t *testing.T) {
	a := newTestArray()
	for deg := -180.0; deg <= 180; deg += 7 {
		g := a.GainDBi(QuasiOmniID, geom.FromAngle(geom.Rad(deg)))
		if g != a.QuasiOmniGainDBi {
			t.Fatalf("quasi-omni gain at %v = %v", deg, g)
		}
	}
}

func TestInvalidBeam(t *testing.T) {
	a := newTestArray()
	if g := a.GainDBi(99, geom.V(1, 0)); !math.IsInf(g, -1) {
		t.Errorf("invalid beam gain = %v", g)
	}
}

func TestBestBeamToward(t *testing.T) {
	a := newTestArray()
	// A target straight ahead (0 deg local) should pick the middle beam.
	best := a.BestBeamToward(geom.V(10, 0))
	if got := a.Beams[best].BoresightDeg; math.Abs(got) > BeamSpacingDeg/2 {
		t.Errorf("best beam boresight %v for straight ahead", got)
	}
	// A target at +45 deg should pick a beam near 45.
	best = a.BestBeamToward(geom.V(10, 10))
	if got := a.Beams[best].BoresightDeg; math.Abs(got-45) > BeamSpacingDeg/2 {
		t.Errorf("best beam boresight %v for 45 deg", got)
	}
}

func TestBestBeamHasHighestGain(t *testing.T) {
	a := newTestArray()
	for deg := -55.0; deg <= 55; deg += 11 {
		target := geom.FromAngle(geom.Rad(deg)).Scale(10)
		best := a.BestBeamToward(target)
		gBest := a.GainTowardDBi(best, target)
		// The geometrically nearest beam is within 1.5 dB of the true max
		// (side lobes of another beam may slightly exceed it).
		for bm := 0; bm < NumBeams; bm++ {
			if g := a.GainTowardDBi(bm, target); g > gBest+1.5 {
				t.Fatalf("beam %d gain %v beats nearest beam %d (%v) at %v deg", bm, g, best, gBest, deg)
			}
		}
	}
}

func TestCodebookDeterminism(t *testing.T) {
	a := NewArray(geom.V(0, 0), 0, 42)
	b := NewArray(geom.V(5, 5), 90, 42)
	for i := range a.Beams {
		for deg := -90.0; deg <= 90; deg += 13 {
			if a.Beams[i].GainDBi(deg) != b.Beams[i].GainDBi(deg) {
				t.Fatal("same seed produced different codebooks")
			}
		}
	}
	c := NewArray(geom.V(0, 0), 0, 43)
	same := true
	for i := range a.Beams {
		for deg := -90.0; deg <= 90; deg += 13 {
			if a.Beams[i].GainDBi(deg) != c.Beams[i].GainDBi(deg) {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical codebooks")
	}
}

func TestBeamwidthScanBroadening(t *testing.T) {
	a := newTestArray()
	center := a.Beams[NumBeams/2]
	edge := a.Beams[0]
	if edge.Beamwidth3dBDeg <= center.Beamwidth3dBDeg {
		t.Errorf("edge beamwidth %v not broader than broadside %v",
			edge.Beamwidth3dBDeg, center.Beamwidth3dBDeg)
	}
	if edge.PeakGainDBi >= center.PeakGainDBi {
		t.Errorf("edge peak %v not below broadside %v (scan loss)",
			edge.PeakGainDBi, center.PeakGainDBi)
	}
}
