// Package phased models the user-configurable phased antenna arrays of the
// X60 testbed (SiBeam 24-element module, 12 Tx + 12 Rx elements). The
// reference codebook defines 25 beam patterns whose main lobes are spaced
// roughly 5 degrees apart, spanning about 120 degrees in azimuth (-60 to +60
// degrees), with 3 dB beamwidths between 25 and 35 degrees. Like the patterns
// measured on COTS 60 GHz hardware, each beam features large side lobes in
// addition to the central main lobe; the side lobes are what occasionally
// make an indirect reflected path outperform the direct one (paper §3,
// Fig. 3c).
package phased

import (
	"fmt"
	"math"

	"github.com/libra-wlan/libra/internal/geom"
)

// Codebook parameters mirroring the SiBeam reference codebook (paper §4.1).
const (
	// NumBeams is the number of steerable beam patterns per array.
	NumBeams = 25
	// BeamSpacingDeg is the main-lobe spacing between adjacent beams.
	BeamSpacingDeg = 5.0
	// MinSteerDeg and MaxSteerDeg bound the azimuth span of the codebook.
	MinSteerDeg = -60.0
	MaxSteerDeg = 60.0
	// QuasiOmniID is the pseudo-beam index representing quasi-omni
	// reception/transmission (used by 802.11ad-style sector sweeps).
	QuasiOmniID = -1
)

// sideLobe describes one discrete side lobe of a beam pattern.
type sideLobe struct {
	offsetDeg float64 // angular offset of the lobe peak from boresight
	levelDB   float64 // lobe peak gain relative to main-lobe peak (negative)
	widthDeg  float64 // 3 dB width of the lobe
}

// Beam is a single entry in the codebook: a main lobe plus a deterministic
// set of imperfect side lobes.
type Beam struct {
	// ID is the beam (sector) index in [0, NumBeams).
	ID int
	// BoresightDeg is the steering angle of the main lobe, relative to the
	// array's mechanical orientation.
	BoresightDeg float64
	// Beamwidth3dBDeg is the 3 dB width of the main lobe.
	Beamwidth3dBDeg float64
	// PeakGainDBi is the boresight gain.
	PeakGainDBi float64
	// FloorDBi is the gain floor outside all lobes (back/ambient radiation).
	FloorDBi float64

	lobes []sideLobe
}

// GainDBi returns the beam gain in dBi toward a direction offset by thetaDeg
// degrees from the array's mechanical boresight (i.e. in array-local
// coordinates). The pattern is the max over the main lobe, the side lobes,
// and the floor.
func (b *Beam) GainDBi(thetaDeg float64) float64 {
	g := lobeGain(thetaDeg, b.BoresightDeg, b.PeakGainDBi, b.Beamwidth3dBDeg)
	for _, sl := range b.lobes {
		lg := lobeGain(thetaDeg, b.BoresightDeg+sl.offsetDeg, b.PeakGainDBi+sl.levelDB, sl.widthDeg)
		if lg > g {
			g = lg
		}
	}
	if g < b.FloorDBi {
		g = b.FloorDBi
	}
	return g
}

// lobeGain evaluates a parabolic (in dB) lobe: peak - 12*(delta/width)^2,
// the standard 3GPP-style antenna pattern approximation. The quadratic gives
// exactly -3 dB at delta = width/2.
func lobeGain(thetaDeg, centerDeg, peakDB, width3dBDeg float64) float64 {
	d := angDiffDeg(thetaDeg, centerDeg)
	return peakDB - 12*(d/width3dBDeg)*(d/width3dBDeg)
}

// angDiffDeg returns the absolute angular difference in degrees, wrapped to
// [0, 180].
func angDiffDeg(a, b float64) float64 {
	d := a - b
	// Reduce into (-360, 360) without math.Mod: angles here are sums of an
	// atan2 result, a mechanical orientation, and a lobe offset, so |d| is
	// almost always < 720, where a single +-360 step equals Mod exactly
	// (Sterbenz: the operands are within a factor of two).
	if d >= 360 || d <= -360 {
		if d >= 720 || d <= -720 {
			d = math.Mod(d, 360)
		} else if d > 0 {
			d -= 360
		} else {
			d += 360
		}
	}
	if d < -180 {
		d += 360
	} else if d > 180 {
		d -= 360
	}
	return math.Abs(d)
}

// Array is a phased antenna array with a position, a mechanical orientation,
// and a codebook of beams.
type Array struct {
	// Pos is the array position in world coordinates (meters).
	Pos geom.Vec
	// OrientDeg is the mechanical boresight direction in world degrees
	// (0 = +X axis).
	OrientDeg float64
	// Beams is the codebook.
	Beams []*Beam
	// QuasiOmniGainDBi is the flat gain used in quasi-omni mode.
	QuasiOmniGainDBi float64
}

// NewArray builds an array with the reference 25-beam codebook. The seed
// perturbs side-lobe placement deterministically so that distinct devices
// have distinct, imperfect patterns (as real SiBeam/COTS arrays do).
func NewArray(pos geom.Vec, orientDeg float64, seed int64) *Array {
	a := &Array{
		Pos:              pos,
		OrientDeg:        orientDeg,
		QuasiOmniGainDBi: 2, // near-omni element-level gain
	}
	a.Beams = make([]*Beam, NumBeams)
	rng := splitmix(uint64(seed) ^ 0x9e3779b97f4a7c15)
	for i := 0; i < NumBeams; i++ {
		bore := MinSteerDeg + BeamSpacingDeg*float64(i)
		// Beamwidth widens toward the edges of the steering range, as
		// phased arrays scan loss broadens the beam: 25 deg at broadside,
		// 35 deg at +/-60 deg.
		bw := 25 + 10*math.Abs(bore)/60
		// Peak gain: ~15 dBi at broadside, dropping ~2 dB at the edges
		// (scan loss).
		peak := 15 - 2*math.Abs(bore)/60
		b := &Beam{
			ID:              i,
			BoresightDeg:    bore,
			Beamwidth3dBDeg: bw,
			PeakGainDBi:     peak,
			FloorDBi:        peak - 25,
		}
		// Two to three deterministic side lobes per beam.
		nl := 2 + int(rng()%2)
		for k := 0; k < nl; k++ {
			sign := 1.0
			if rng()%2 == 0 {
				sign = -1
			}
			off := sign * (35 + float64(rng()%700)/10) // 35..105 deg away
			lvl := -(8 + float64(rng()%80)/10)         // -8..-16 dB
			wid := 12 + float64(rng()%120)/10          // 12..24 deg wide
			b.lobes = append(b.lobes, sideLobe{offsetDeg: off, levelDB: lvl, widthDeg: wid})
		}
		a.Beams[i] = b
	}
	return a
}

// splitmix returns a deterministic 64-bit PRNG (SplitMix64) for codebook
// perturbation. It is intentionally independent of math/rand so that codebook
// construction never interacts with simulation random streams.
func splitmix(state uint64) func() uint64 {
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// GainDBi returns the array gain in dBi toward the world-coordinate direction
// dir when using beam beamID. QuasiOmniID selects the quasi-omni pattern.
func (a *Array) GainDBi(beamID int, dir geom.Vec) float64 {
	worldDeg := geom.Deg(dir.Angle())
	localDeg := worldDeg - a.OrientDeg
	if beamID == QuasiOmniID {
		return a.QuasiOmniGainDBi
	}
	if beamID < 0 || beamID >= len(a.Beams) {
		return math.Inf(-1)
	}
	return a.Beams[beamID].GainDBi(localDeg)
}

// AllGainsDBi fills out[b] with the gain of every codebook beam toward the
// world-coordinate direction dir, and returns the quasi-omni gain. It is the
// batch form of GainDBi for sweep-style evaluation: the world-to-local angle
// conversion (an atan2) is done once instead of once per beam.
// len(out) must be at least NumBeams.
func (a *Array) AllGainsDBi(dir geom.Vec, out []float64) (quasiOmniDBi float64) {
	localDeg := geom.Deg(dir.Angle()) - a.OrientDeg
	for i, b := range a.Beams {
		out[i] = b.GainDBi(localDeg)
	}
	return a.QuasiOmniGainDBi
}

// GainTowardDBi is a convenience wrapper that computes the gain toward a
// world point.
func (a *Array) GainTowardDBi(beamID int, p geom.Vec) float64 {
	return a.GainDBi(beamID, p.Sub(a.Pos))
}

// BestBeamToward returns the beam whose boresight is closest to the
// world-coordinate direction of p from the array.
func (a *Array) BestBeamToward(p geom.Vec) int {
	localDeg := geom.Deg(p.Sub(a.Pos).Angle()) - a.OrientDeg
	best, bestD := 0, math.Inf(1)
	for _, b := range a.Beams {
		d := angDiffDeg(localDeg, b.BoresightDeg)
		if d < bestD {
			bestD = d
			best = b.ID
		}
	}
	return best
}

// Validate checks structural invariants of the codebook.
func (a *Array) Validate() error {
	if len(a.Beams) != NumBeams {
		return fmt.Errorf("phased: codebook has %d beams, want %d", len(a.Beams), NumBeams)
	}
	for i, b := range a.Beams {
		if b.ID != i {
			return fmt.Errorf("phased: beam %d has ID %d", i, b.ID)
		}
		if b.Beamwidth3dBDeg < 25-1e-9 || b.Beamwidth3dBDeg > 35+1e-9 {
			return fmt.Errorf("phased: beam %d beamwidth %.1f out of [25,35]", i, b.Beamwidth3dBDeg)
		}
		if b.BoresightDeg < MinSteerDeg-1e-9 || b.BoresightDeg > MaxSteerDeg+1e-9 {
			return fmt.Errorf("phased: beam %d boresight %.1f out of range", i, b.BoresightDeg)
		}
	}
	return nil
}
