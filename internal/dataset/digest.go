package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"github.com/libra-wlan/libra/internal/phy"
)

// Digest returns the canonical SHA-256 of the campaign: every entry field in
// entry order followed by the site registry, all numbers little-endian with
// float bit patterns taken verbatim. Two campaigns share a digest exactly
// when they are bit-identical, so the digest is the currency of the
// byte-identical-for-any-worker-count contract — tests pin the fixed-seed
// values, CI compares it across worker counts, and the libra-ds footer
// embeds it so an on-disk campaign proves its provenance.
func (c *Campaign) Digest() string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	u64(uint64(len(c.Entries)))
	for _, e := range c.Entries {
		str(e.Env)
		str(e.Building)
		h.Write([]byte{byte(e.Impairment)})
		u64(uint64(int64(e.PosID)))
		for _, f := range e.Features {
			f64(f)
		}
		h.Write([]byte{byte(e.InitMCS), byte(e.Label)})
		f64(e.InitSNRdB)
		f64(e.NewSNRInitPair)
		f64(e.NewSNRBestPair)
		f64(e.InitThBps)
		f64(e.ThRABps)
		f64(e.ThBABps)
		for m := 0; m < phy.NumMCS; m++ {
			f64(e.InitBeamTh[m])
			f64(e.BestBeamTh[m])
		}
	}
	u64(uint64(len(c.Sites)))
	for _, s := range c.Sites {
		str(s.Env)
		h.Write([]byte{byte(s.Impairment)})
		u64(uint64(int64(s.PosID)))
	}
	return hex.EncodeToString(h.Sum(nil))
}
