package dataset

import (
	"context"

	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
)

// facing returns the orientation (degrees) for an Rx at p looking toward t.
func facing(p, t geom.Vec) float64 {
	return geom.Deg(t.Sub(p).Angle())
}

// posesFacing builds poses at the given points, all oriented toward tx.
func posesFacing(tx geom.Vec, pts ...geom.Vec) []pose {
	out := make([]pose, len(pts))
	for i, p := range pts {
		out[i] = pose{pos: p, orient: facing(p, tx)}
	}
	return out
}

// mainSpecs returns the campaign specs for the main/training dataset,
// designed so that entry and position counts reproduce Table 1 exactly:
// displacement 479 entries / 94 positions (lobby 22, lab 13, conference 10,
// corridors 49), blockage 81 / 12, interference 108 / 12.
func mainSpecs() []*displacementSpec {
	var specs []*displacementSpec

	// ---- Lobby, Tx set A (backward / lateral / diagonal motion, §A.2.2).
	txA := geom.V(2, 4)
	movesA := posesFacing(txA,
		// backward
		geom.V(5.5, 4), geom.V(7.5, 4), geom.V(9.5, 4), geom.V(11.5, 4), geom.V(13.5, 4),
		// lateral (orientation preserved from the initial pose)
		geom.V(3.5, 5.5), geom.V(3.5, 7), geom.V(3.5, 2.5), geom.V(3.5, 1.5),
		// diagonal
		geom.V(6, 2.5), geom.V(8, 2), geom.V(5.5, 7), geom.V(7.5, 7.5),
	)
	// Lateral motion keeps the initial orientation (the Rx slides sideways
	// while still facing the old Tx direction).
	initOrientA := facing(geom.V(3.5, 4), txA)
	for i := 5; i <= 8; i++ {
		movesA[i].orient = initOrientA
	}
	specs = append(specs, &displacementSpec{
		envFn:    env.Lobby,
		txPos:    txA,
		txOrient: 0,
		initial:  pose{pos: geom.V(3.5, 4), orient: initOrientA},
		moves:    movesA,
		rotIdx:   []int{1, 3, 6, 12},
		blockIdx: []int{1, 3, 10},
		trials:   []int{7, 7, 7},
	})

	// ---- Lobby, Tx set B.
	txB := geom.V(17, 10)
	specs = append(specs, &displacementSpec{
		envFn:    env.Lobby,
		txPos:    txB,
		txOrient: 225,
		initial:  pose{pos: geom.V(15, 8), orient: facing(geom.V(15, 8), txB)},
		moves: posesFacing(txB,
			geom.V(13, 7), geom.V(11, 4), geom.V(9, 3), geom.V(14, 9),
			geom.V(12, 8), geom.V(10, 7), geom.V(8, 8),
		),
		rotIdx:   []int{1, 4},
		blockIdx: []int{0},
		trials:   []int{7},
	})

	// ---- Lab.
	labTx := geom.V(5.9, 8.8)
	specs = append(specs, &displacementSpec{
		envFn:    env.Lab,
		txPos:    labTx,
		txOrient: -90,
		initial:  pose{pos: geom.V(5.9, 6.3), orient: 90},
		moves: posesFacing(labTx,
			geom.V(5.9, 4.5), geom.V(5.9, 2.7), geom.V(5.9, 0.9),
			geom.V(3.5, 6.3), geom.V(8.3, 6.3), geom.V(3.5, 4.5),
			geom.V(8.3, 4.5), geom.V(2.5, 2.7), geom.V(9.3, 2.7),
			geom.V(3.5, 0.9), geom.V(8.3, 0.9), geom.V(10.5, 4.5),
		),
		rotIdx:   []int{0, 1, 2, 5, 6, 11},
		blockIdx: []int{1},
		trials:   []int{7},
	})

	// ---- Conference room. Positions behind the table communicate via
	// reflections; four of them face the same direction as the Tx (§A.2.2).
	confTx := geom.V(0.7, 3.4)
	confMoves := posesFacing(confTx,
		geom.V(4.5, 1.5), geom.V(6, 1.5), geom.V(7.8, 1.8),
		geom.V(8.5, 3.4), geom.V(7.8, 5), geom.V(6, 5.5),
		geom.V(4.5, 5.5), geom.V(3, 5.3), geom.V(9.5, 2),
	)
	for _, i := range []int{2, 3, 4, 8} {
		confMoves[i].orient = 0 // facing the same direction as the Tx
	}
	specs = append(specs, &displacementSpec{
		envFn:    env.ConferenceRoom,
		txPos:    confTx,
		txOrient: 0,
		initial:  pose{pos: geom.V(2.5, 3.4), orient: 180},
		moves:    confMoves,
		rotIdx:   []int{0, 1, 3, 5, 7},
		dropLast: 4,
		blockIdx: []int{0, 3},
		trials:   []int{7, 7},
	})

	// ---- Corridors: Tx at one end, Rx moving back in 1.25 m steps with
	// both ends always facing each other (§A.2.2).
	specs = append(specs, corridorSpec(env.NarrowCorridor, 1.74, 16, []int{2, 5, 8, 11, 14}, []int{3, 8}, []int{6, 6}))
	specs = append(specs, corridorSpec(func() *env.Environment { return env.Corridor(3.2, 25) }, 3.2, 15, []int{1, 4, 7, 10, 13}, []int{4}, []int{6}))
	specs = append(specs, corridorSpec(func() *env.Environment { return env.Corridor(6.2, 25) }, 6.2, 15, []int{1, 3, 5, 7, 10, 13}, []int{4, 9}, []int{7, 7}))

	return specs
}

// corridorSpec builds a corridor displacement spec with nMoves positions in
// 1.25 m steps starting 2.5 m from the Tx.
func corridorSpec(envFn func() *env.Environment, width float64, nMoves int, rotIdx, blockIdx []int, trials []int) *displacementSpec {
	y := width / 2
	tx := geom.V(0.5, y)
	moves := make([]pose, nMoves)
	for i := range moves {
		x := 3.0 + 1.25*float64(i+1)
		moves[i] = pose{pos: geom.V(x, y), orient: 180}
	}
	return &displacementSpec{
		envFn:    envFn,
		txPos:    tx,
		txOrient: 0,
		initial:  pose{pos: geom.V(3, y), orient: 180},
		moves:    moves,
		rotIdx:   rotIdx,
		blockIdx: blockIdx,
		trials:   trials,
	}
}

// testSpecs returns the specs for the transfer-testing dataset (Table 2):
// displacement 165 entries / 34 positions (Building 1: 23, Building 2: 11),
// blockage 27 / 4, interference 36 / 4.
func testSpecs() []*displacementSpec {
	var specs []*displacementSpec

	// ---- Building 1: long 2.5 m corridor, old absorptive walls.
	b1y := 1.25
	b1tx := geom.V(0.5, b1y)
	b1moves := make([]pose, 22)
	for i := range b1moves {
		x := 2.5 + 1.2*float64(i+1)
		b1moves[i] = pose{pos: geom.V(x, b1y), orient: 180}
	}
	specs = append(specs, &displacementSpec{
		envFn:    env.Building1,
		txPos:    b1tx,
		txOrient: 0,
		initial:  pose{pos: geom.V(2.5, b1y), orient: 180},
		moves:    b1moves,
		rotIdx:   []int{2, 5, 8, 11, 14, 17},
		blockIdx: []int{4, 9},
		trials:   []int{7, 7},
	})

	// ---- Building 2: wide open area.
	b2tx := geom.V(3, 9)
	specs = append(specs, &displacementSpec{
		envFn:    env.Building2,
		txPos:    b2tx,
		txOrient: 0,
		initial:  pose{pos: geom.V(5, 9), orient: 180},
		moves: posesFacing(b2tx,
			geom.V(8, 9), geom.V(12, 9), geom.V(16, 9), geom.V(22, 9),
			geom.V(7, 13), geom.V(12, 14), geom.V(7, 5), geom.V(12, 4),
			geom.V(18, 13), geom.V(18, 5),
		),
		rotIdx: []int{0, 1, 3, 5, 7},
		// A denser sweep at the first rotation position (one extra angle).
		extraAngles: map[int][]float64{0: {7.5}},
		blockIdx:    []int{1, 5},
		trials:      []int{7, 6},
	})

	return specs
}

// GenerateMain produces the main/training dataset (Table 1): 668 labeled
// entries — 479 displacement, 81 blockage, 108 interference — plus one NA
// augmentation entry per new state for the 3-class model of §7. Sites run
// on a GOMAXPROCS-sized worker pool; the output is identical to a
// single-worker run (see GenerateMainWorkers).
func GenerateMain(seed int64) *Campaign {
	return GenerateMainWorkers(seed, 0)
}

// GenerateMainWorkers is GenerateMain with an explicit worker count
// (<= 0 selects runtime.GOMAXPROCS). Every worker count yields identical
// output; the knob exists for determinism tests and benchmarking.
func GenerateMainWorkers(seed int64, workers int) *Campaign {
	camp := generate(seed, "main", "main", mainSpecs(),
		func(i int) int64 { return seed + int64(i+1)*1000 }, workers)
	expectCounts(camp, 479, 81, 108)
	return camp
}

// GenerateMainContext is GenerateMain with cooperative cancellation at spec
// (shard) boundaries: a canceled ctx stops dispatching new specs, waits for
// in-flight ones, and returns ctx's error. A completed campaign is identical
// to GenerateMain's for the same seed.
func GenerateMainContext(ctx context.Context, seed int64) (*Campaign, error) {
	camp, err := generateCtx(ctx, seed, "main", "main", mainSpecs(),
		func(i int) int64 { return seed + int64(i+1)*1000 }, 0)
	if err != nil {
		return nil, err
	}
	expectCounts(camp, 479, 81, 108)
	return camp, nil
}

// GenerateTest produces the testing dataset (Table 2) collected in two
// different buildings: 228 labeled entries — 165 displacement, 27 blockage,
// 36 interference — plus NA augmentation.
func GenerateTest(seed int64) *Campaign {
	return GenerateTestWorkers(seed, 0)
}

// GenerateTestWorkers is GenerateTest with an explicit worker count (<= 0
// selects runtime.GOMAXPROCS); every worker count yields identical output.
func GenerateTestWorkers(seed int64, workers int) *Campaign {
	camp := generate(seed, "test", "testing", testSpecs(),
		func(i int) int64 { return seed + int64(i+7)*2000 }, workers)
	expectCounts(camp, 165, 27, 36)
	return camp
}

// GenerateTestContext is GenerateTest with cooperative cancellation at spec
// (shard) boundaries; see GenerateMainContext.
func GenerateTestContext(ctx context.Context, seed int64) (*Campaign, error) {
	camp, err := generateCtx(ctx, seed, "test", "testing", testSpecs(),
		func(i int) int64 { return seed + int64(i+7)*2000 }, 0)
	if err != nil {
		return nil, err
	}
	expectCounts(camp, 165, 27, 36)
	return camp, nil
}
