//go:build linux

package dataset

import (
	"fmt"
	"os"
	"syscall"
)

// openLDSBytes maps the file read-only and returns its bytes plus a release
// function. ReadLDS copies everything it keeps out of the image, so the
// mapping is released as soon as decoding finishes — the reader never pulls
// the whole file through the Go heap.
func openLDSBytes(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("dataset: %s: file too large to map", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// Mapping can fail on filesystems without mmap support; fall back to
		// a plain read.
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		return b, func() {}, nil
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
