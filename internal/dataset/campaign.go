package dataset

import (
	"fmt"
	"math/rand"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
)

// Site records one measured (environment, position) pair so that the
// position counts of Tables 1 and 2 can be reproduced.
type Site struct {
	Env        string
	Impairment Impairment
	PosID      int
}

// Campaign is a dataset plus its site registry.
type Campaign struct {
	Dataset
	Sites []Site

	// cols caches the SoA view of the entries (see Columns). Campaigns out
	// of the columnar generator carry it from birth; loaded or filtered
	// campaigns build it on first use.
	cols *ColumnStore
}

// SiteCount returns the number of distinct measurement positions for an
// impairment type, optionally restricted to an environment name prefix.
// Pass im < 0 for all impairment types.
func (c *Campaign) SiteCount(im Impairment, envPrefix string) int {
	seen := map[Site]bool{}
	for _, s := range c.Sites {
		if im >= 0 && s.Impairment != im {
			continue
		}
		if envPrefix != "" && !hasPrefix(s.Env, envPrefix) {
			continue
		}
		seen[s] = true
	}
	return len(seen)
}

// pose is an Rx position and mechanical orientation.
type pose struct {
	pos    geom.Vec
	orient float64
}

// rotationAngles are the sweep offsets of §4.2: 0 to -90 and 0 to +90 in
// steps of 15 degrees.
var rotationAngles = []float64{15, -15, 30, -30, 45, -45, 60, -60, 75, -75, 90, -90}

// displacementSpec describes a displacement scenario in one environment.
type displacementSpec struct {
	envFn    func() *env.Environment
	txPos    geom.Vec
	txOrient float64
	initial  pose
	moves    []pose
	// rotIdx indexes into moves: positions where a rotation sweep was
	// performed.
	rotIdx []int
	// extraAngles adds angles beyond the standard sweep at given move
	// indices (a denser sweep at one position).
	extraAngles map[int][]float64
	// dropLast discards the last N rotation entries (unmeasurable states
	// dropped from the campaign, keeping Table 1 totals exact).
	dropLast int
	// blockIdx indexes into moves: positions reused for blockage and
	// interference scenarios. trials[i] gives the number of blockage
	// trials at blockIdx[i].
	blockIdx []int
	trials   []int
}

// generator accumulates one spec's sub-campaign. Each spec gets its own
// generator (and RNG stream), so specs can run on any worker in any order
// and still produce identical output (see generate in parallel.go).
type generator struct {
	rng      *rand.Rand
	building string
	camp     *Campaign
	// cols accumulates the spec's samples column-wise: collect writes every
	// field of an entry straight into the pooled column chunks, so no
	// per-entry heap object exists until the merged campaign materializes
	// its row view in one slab.
	cols   *ColumnStore
	posSeq map[string]int
	// trace is the spec's simulation-time stream (nil-safe when tracing is
	// off); frame is the per-generator observation index used as its stamp.
	trace *obs.Stream
	frame int64
	// Scratch measurements recycled across entries: the re-measurement on
	// the initial pair, the two drift-perturbed observation windows, and the
	// NA twin's ground truth. Their PDP backing arrays are reused by
	// MeasureInto/perturbInto, so steady-state collection allocates nothing
	// per sample.
	mNew, mPertA, mPertB, mNA channel.Measurement
}

func newGenerator(seed int64, building, name string) *generator {
	return &generator{
		rng:      rand.New(rand.NewSource(seed)),
		building: building,
		camp:     &Campaign{Dataset: Dataset{Name: name}},
		cols:     newColumnStore(),
		posSeq:   map[string]int{},
	}
}

// nextPos allocates a position ID within an environment.
func (g *generator) nextPos(envName string) int {
	id := g.posSeq[envName]
	g.posSeq[envName] = id + 1
	return id
}

// site registers a measured position.
func (g *generator) site(envName string, im Impairment, posID int) {
	g.camp.Sites = append(g.camp.Sites, Site{Env: envName, Impairment: im, PosID: posID})
}

// initState is the reference state against which new states are compared.
type initState struct {
	txBeam, rxBeam int
	meas           channel.Measurement
	snrDB          float64
	mcs            phy.MCS
	thBps          float64
	posID          int
}

// measureInit performs the ground-truth SLS and per-pair trace collection at
// the current link state.
func measureInit(l *channel.Link, posID int) *initState {
	t, r, snr := l.BestPair()
	m := l.Measure(t, r)
	mcs, th := phy.BestMCS(snr)
	return &initState{txBeam: t, rxBeam: r, meas: m, snrDB: snr, mcs: mcs, thBps: th, posID: posID}
}

// collect builds one labeled entry for the link's *current* (impaired) state
// against the given initial state, and its NA augmentation twin. Entries are
// stack-resident and pushed field-wise onto the generator's column store;
// the measurements run through the generator's scratch Measurements — no
// per-sample heap allocation. The RNG draw order (perturb init window,
// perturb new window, CDR sample) matches the historic row-wise path draw
// for draw, so the output is bit-identical to it.
func (g *generator) collect(l *channel.Link, init *initState, envName string, im Impairment, posID int) {
	l.MeasureInto(&g.mNew, init.txBeam, init.rxBeam)
	_, _, bestSNR := l.BestPair()

	e := Entry{
		Env:            envName,
		Building:       g.building,
		Impairment:     im,
		PosID:          posID,
		InitMCS:        init.mcs,
		InitSNRdB:      init.snrDB,
		NewSNRInitPair: g.mNew.SNRdB,
		NewSNRBestPair: bestSNR,
		InitThBps:      init.thBps,
	}
	perturbInto(&g.mPertA, &init.meas, defaultDrift, g.rng)
	perturbInto(&g.mPertB, &g.mNew, defaultDrift, g.rng)
	e.Features = Featurize(g.mPertA, g.mPertB, init.mcs, g.rng)
	groundTruth(&e)
	g.cols.appendEntry(&e)
	obsCampEntries.Add(2) // the entry plus its NA twin below
	if g.trace.Enabled() {
		t := obs.SimTime{Frame: g.frame}
		g.trace.Event(t, "label",
			obs.F("label", e.Label.String()),
			obs.Fint("imp", int64(im)), obs.Fint("pos", int64(posID)))
		if e.Label == ActBA {
			g.trace.Event(t, "rebeam", obs.Ffloat("snr_best_db", bestSNR))
		}
	}
	g.frame++

	// NA augmentation (§7): the best beam pair and MCS at the new state,
	// observed over two consecutive windows with only environmental drift.
	// BestPair is a cache hit (collect just computed it at this state), so
	// the twin costs one measurement into scratch.
	naT, naR, naSNR := l.BestPair()
	l.MeasureInto(&g.mNA, naT, naR)
	naMCS, naTh := phy.BestMCS(naSNR)
	na := Entry{
		Env:            envName,
		Building:       g.building,
		Impairment:     NoImpairment,
		PosID:          posID,
		InitMCS:        naMCS,
		InitSNRdB:      naSNR,
		NewSNRInitPair: naSNR,
		NewSNRBestPair: naSNR,
		InitThBps:      naTh,
		Label:          ActNA,
	}
	perturbInto(&g.mPertA, &g.mNA, defaultDrift, g.rng)
	perturbInto(&g.mPertB, &g.mNA, defaultDrift, g.rng)
	na.Features = Featurize(g.mPertA, g.mPertB, naMCS, g.rng)
	for m := phy.MinMCS; m <= phy.MaxMCS; m++ {
		na.InitBeamTh[m] = phy.ExpectedThroughput(m, naSNR)
		na.BestBeamTh[m] = na.InitBeamTh[m]
	}
	na.ThRABps = naTh
	na.ThBABps = naTh
	g.cols.appendEntry(&na)
}

// newLink builds the link for a spec with deterministic array codebooks.
func (g *generator) newLink(spec *displacementSpec, e *env.Environment, txSeed int64) *channel.Link {
	tx := phased.NewArray(spec.txPos, spec.txOrient, txSeed)
	rx := phased.NewArray(spec.initial.pos, spec.initial.orient, txSeed+101)
	return channel.NewLink(e, tx, rx)
}

// runDisplacement generates the displacement entries of one spec.
func (g *generator) runDisplacement(spec *displacementSpec, txSeed int64) {
	e := spec.envFn()
	l := g.newLink(spec, e, txSeed)

	initPos := g.nextPos(e.Name)
	g.site(e.Name, Displacement, initPos)
	init := measureInit(l, initPos)

	moveIDs := make([]int, len(spec.moves))
	for i, mv := range spec.moves {
		l.MoveRx(mv.pos)
		l.RotateRx(mv.orient)
		id := g.nextPos(e.Name)
		moveIDs[i] = id
		g.site(e.Name, Displacement, id)
		g.collect(l, init, e.Name, Displacement, id)
	}

	// Rotation sweeps: the 0-degree pose at the position is the initial
	// state (§5.1).
	type rotEntry struct {
		base  int
		angle float64
	}
	var sweeps []rotEntry
	for _, bi := range spec.rotIdx {
		for _, a := range rotationAngles {
			sweeps = append(sweeps, rotEntry{base: bi, angle: a})
		}
		for _, a := range spec.extraAngles[bi] {
			sweeps = append(sweeps, rotEntry{base: bi, angle: a})
		}
	}
	if spec.dropLast > 0 && spec.dropLast < len(sweeps) {
		sweeps = sweeps[:len(sweeps)-spec.dropLast]
	}
	rotInit := map[int]*initState{}
	for _, s := range sweeps {
		base := spec.moves[s.base]
		ri, ok := rotInit[s.base]
		if !ok {
			l.MoveRx(base.pos)
			l.RotateRx(base.orient)
			ri = measureInit(l, moveIDs[s.base])
			rotInit[s.base] = ri
		}
		l.MoveRx(base.pos)
		l.RotateRx(base.orient + s.angle)
		g.collect(l, ri, e.Name, Displacement, moveIDs[s.base])
	}
}

// blockageVariants are blocker placements along the LOS: (fraction along the
// Tx->Rx line, lateral offset in meters). Offsets produce partial blockage.
var blockageVariants = [][2]float64{
	{0.5, 0}, {0.15, 0}, {0.85, 0},
	{0.5, 0.10}, {0.5, -0.10}, {0.15, 0.12}, {0.85, -0.20},
}

// runBlockage generates blockage entries at the spec's block positions.
func (g *generator) runBlockage(spec *displacementSpec, txSeed int64) {
	e := spec.envFn()
	l := g.newLink(spec, e, txSeed)
	for k, bi := range spec.blockIdx {
		mv := spec.moves[bi]
		l.SetBlockers(nil)
		l.MoveRx(mv.pos)
		l.RotateRx(mv.orient)
		posID := g.nextPos(e.Name)
		g.site(e.Name, Blockage, posID)
		init := measureInit(l, posID)

		trials := 7
		if k < len(spec.trials) {
			trials = spec.trials[k]
		}
		txp := l.Tx.Pos
		for v := 0; v < trials && v < len(blockageVariants); v++ {
			frac, off := blockageVariants[v][0], blockageVariants[v][1]
			los := mv.pos.Sub(txp)
			at := txp.Add(los.Scale(frac))
			lat := geom.Vec{X: -los.Y, Y: los.X}.Norm().Scale(off)
			l.SetBlockers([]channel.Blocker{channel.DefaultBlocker(at.Add(lat))})
			g.collect(l, init, e.Name, Blockage, posID)
		}
		l.SetBlockers(nil)
	}
}

// Interference level targets: high/medium/low throughput drops (§4.2).
var interferenceDrops = []float64{0.8, 0.5, 0.2}

// runInterference generates interference entries at the spec's block
// positions (the paper reuses the blockage locations).
func (g *generator) runInterference(spec *displacementSpec, txSeed int64) {
	e := spec.envFn()
	l := g.newLink(spec, e, txSeed)
	for _, bi := range spec.blockIdx {
		mv := spec.moves[bi]
		l.SetInterferers(nil)
		l.MoveRx(mv.pos)
		l.RotateRx(mv.orient)
		posID := g.nextPos(e.Name)
		g.site(e.Name, Interference, posID)
		init := measureInit(l, posID)

		for _, place := range interfererPlacements(e, mv.pos, l.Tx.Pos) {
			for _, drop := range interferenceDrops {
				eirp := calibrateInterferer(l, init, place, drop)
				l.SetInterferers([]channel.Interferer{{Pos: place, EIRPdBm: eirp, DutyCycle: 0.9}})
				g.collect(l, init, e.Name, Interference, posID)
			}
		}
		l.SetInterferers(nil)
	}
}

// interfererPlacements returns three hidden-terminal positions: two near the
// victim's own Tx bearing (a hidden AP deployed near the victim AP — its
// direct ray and wall reflections nearly coincide with the signal's, so no
// beam escapes it) and one off to the side (escapable by re-beaming).
func interfererPlacements(e *env.Environment, rxPos, txPos geom.Vec) []geom.Vec {
	d := txPos.Dist(rxPos)
	toTx := txPos.Sub(rxPos).Norm()
	side := geom.Vec{X: -toTx.Y, Y: toTx.X}
	cands := []geom.Vec{
		rxPos.Add(toTx.Scale(0.78 * d)).Add(side.Scale(0.3)),
		rxPos.Add(toTx.Scale(0.55 * d)).Add(side.Scale(-0.35)),
		rxPos.Add(side.Scale(2.2)).Add(toTx.Scale(0.8)),
	}
	out := make([]geom.Vec, 0, len(cands))
	for _, c := range cands {
		out = append(out, clampInto(e, c))
	}
	return out
}

// clampInto pulls a point inside the environment bounds with a margin.
func clampInto(e *env.Environment, p geom.Vec) geom.Vec {
	const m = 0.4
	if p.X < m {
		p.X = m
	}
	if p.X > e.Width-m {
		p.X = e.Width - m
	}
	if p.Y < m {
		p.Y = m
	}
	if p.Y > e.Height-m {
		p.Y = e.Height - m
	}
	return p
}

// calibrateInterferer binary-searches the interferer EIRP so that the best
// achievable throughput on the victim's current beam pair drops by
// approximately the target fraction — emulating how the paper tuned
// positions and sectors of the hidden terminal to create high, medium, and
// low interference levels. When the exact level is unreachable the closest
// achievable power is returned (the campaign always yields an entry).
func calibrateInterferer(l *channel.Link, init *initState, place geom.Vec, drop float64) (eirpDBm float64) {
	defer l.SetInterferers(nil)
	baseline := init.thBps
	if baseline <= 0 {
		return 0
	}
	target := baseline * (1 - drop)
	thAt := func(eirp float64) float64 {
		l.SetInterferers([]channel.Interferer{{Pos: place, EIRPdBm: eirp, DutyCycle: 0.9}})
		snr := l.SNRdB(init.txBeam, init.rxBeam)
		_, th := phy.BestMCS(snr)
		return th
	}
	lo, hi := -40.0, 70.0
	if thAt(hi) > target {
		return hi // closest achievable: even max power is too weak
	}
	if thAt(lo) < target {
		return lo
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if thAt(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// run executes all three scenario types of one spec.
func (g *generator) run(spec *displacementSpec, txSeed int64) {
	g.runDisplacement(spec, txSeed)
	if len(spec.blockIdx) > 0 {
		g.runBlockage(spec, txSeed)
		g.runInterference(spec, txSeed)
	}
}

// expectCounts panics early if entry counts drift from the campaign design.
// The counts are part of the reproduction target (Tables 1 and 2).
func expectCounts(c *Campaign, disp, block, intf int) {
	d := len(c.Filter(Displacement))
	b := len(c.Filter(Blockage))
	i := len(c.Filter(Interference))
	if d != disp || b != block || i != intf {
		panic(fmt.Sprintf("dataset: campaign produced %d/%d/%d entries, want %d/%d/%d",
			d, b, i, disp, block, intf))
	}
}
