package dataset

import (
	"context"
	"runtime"
	"sync"

	"github.com/libra-wlan/libra/internal/obs"
)

// The measurement campaigns of §4-§5 are embarrassingly parallel at the
// granularity of one displacement spec (a site with its rotation, blockage
// and interference sub-campaigns): specs share no link state, and every
// random draw a spec consumes comes from its own SplitMix64-derived stream.
// generate therefore fans the specs out over a bounded worker pool and
// merges the per-spec results in spec order, producing output identical to
// a single-worker run regardless of scheduling.

// splitmix64 advances a SplitMix64 state and returns the next value. It
// derives the per-spec RNG seeds from the campaign seed so that the streams
// are independent of worker count and scheduling order (and of each other).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// specPositions returns the number of position IDs one spec allocates within
// its environment: the initial pose plus one per move for displacement, then
// one blockage and one interference position per block index. It must mirror
// the allocation pattern of generator.run exactly — the deterministic
// sharding of position IDs across workers depends on it.
func specPositions(s *displacementSpec) int {
	n := 1 + len(s.moves)
	if len(s.blockIdx) > 0 {
		n += 2 * len(s.blockIdx)
	}
	return n
}

// generate executes the campaign specs on a bounded worker pool and merges
// the per-spec sub-campaigns in spec order. workers <= 0 selects
// runtime.GOMAXPROCS(0). The output is byte-identical for every worker
// count: per-spec RNG streams and position-ID bases are derived up front,
// independent of scheduling.
func generate(seed int64, building, name string, specs []*displacementSpec, txSeed func(int) int64, workers int) *Campaign {
	camp, err := generateCtx(context.Background(), seed, building, name, specs, txSeed, workers)
	if err != nil {
		// Unreachable: Background is never canceled.
		panic(err)
	}
	return camp
}

// generateCtx is generate with cooperative cancellation at spec boundaries:
// a canceled ctx stops new specs from being dispatched, lets in-flight specs
// finish, and returns ctx's error with no campaign. Specs are the sharding
// unit of the engine, so cancellation latency is one spec's generation time.
// A run that completes is unaffected by ctx: the campaign bytes only depend
// on the seed.
func generateCtx(ctx context.Context, seed int64, building, name string, specs []*displacementSpec, txSeed func(int) int64, workers int) (*Campaign, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	rngSeeds := make([]int64, len(specs))
	posBase := make([]int, len(specs))
	envNames := make([]string, len(specs))
	state := uint64(seed)
	nextPos := map[string]int{}
	for i, sp := range specs {
		rngSeeds[i] = int64(splitmix64(&state))
		envNames[i] = sp.envFn().Name
		posBase[i] = nextPos[envNames[i]]
		nextPos[envNames[i]] += specPositions(sp)
	}

	// Each spec gets its own trace stream keyed by (campaign, spec index):
	// streams are single-writer and merged in key order at export, so the
	// trace bytes do not depend on which worker ran which spec.
	tr := obs.ActiveTracer()
	subs := make([]*generator, len(specs))
	runOne := func(i int) {
		obsCampWorkers.Inc()
		g := newGenerator(rngSeeds[i], building, name)
		g.trace = tr.Stream("campaign/"+name, uint64(i))
		g.posSeq[envNames[i]] = posBase[i]
		g.run(specs[i], txSeed(i))
		subs[i] = g
		obsCampSpecs.Inc()
		obsCampWorkers.Dec()
	}
	if workers <= 1 {
		for i := range specs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			runOne(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					runOne(i)
				}
			}()
		}
	dispatch:
		for i := range specs {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Per-spec column chunks concatenate in spec order into one campaign
	// store (identical for any worker count), the chunks return to the pool,
	// and the row view materializes from the columns in one slab.
	camp := &Campaign{Dataset: Dataset{Name: name}}
	cols := newColumnStore()
	for _, g := range subs {
		cols.appendStore(g.cols)
		camp.Sites = append(camp.Sites, g.camp.Sites...)
		g.cols.free()
	}
	camp.cols = cols
	camp.Entries = cols.materialize()
	return camp, nil
}
