//go:build !linux

package dataset

import "os"

// openLDSBytes reads the whole file; non-Linux platforms skip the mmap fast
// path and decode from a heap copy.
func openLDSBytes(path string) ([]byte, func(), error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return b, func() {}, nil
}
