package dataset

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// ldsTestCampaign generates a small fixed-seed campaign once per test run.
func ldsTestCampaign(t *testing.T) *Campaign {
	t.Helper()
	return GenerateTestWorkers(43, 1)
}

// TestLDSRoundTrip pins the container contract: write → read → write must
// reproduce the campaign exactly (entries, sites, name) and the second write
// must be byte-identical to the first.
func TestLDSRoundTrip(t *testing.T) {
	c := ldsTestCampaign(t)
	var first bytes.Buffer
	if err := c.WriteLDS(&first, 64, 1); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLDS(first.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != c.Name {
		t.Fatalf("name %q, want %q", got.Name, c.Name)
	}
	if !reflect.DeepEqual(got.Sites, c.Sites) {
		t.Fatal("sites did not round-trip")
	}
	if len(got.Entries) != len(c.Entries) {
		t.Fatalf("%d entries, want %d", len(got.Entries), len(c.Entries))
	}
	for i := range c.Entries {
		if *got.Entries[i] != *c.Entries[i] {
			t.Fatalf("entry %d did not round-trip:\n got %+v\nwant %+v", i, *got.Entries[i], *c.Entries[i])
		}
	}
	if got.Digest() != c.Digest() {
		t.Fatal("digest changed across the round trip")
	}
	var second bytes.Buffer
	if err := got.WriteLDS(&second, 64, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("write → read → write is not byte-identical")
	}
}

// TestLDSWorkerIndependence pins the parallel writer contract: the bytes do
// not depend on the encode worker count.
func TestLDSWorkerIndependence(t *testing.T) {
	c := ldsTestCampaign(t)
	var w1, w8 bytes.Buffer
	if err := c.WriteLDS(&w1, 32, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteLDS(&w8, 32, 8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w8.Bytes()) {
		t.Fatal("writer output depends on worker count")
	}
}

// TestLDSOpenFile exercises the mmap (or fallback) file path.
func TestLDSOpenFile(t *testing.T) {
	c := ldsTestCampaign(t)
	path := filepath.Join(t.TempDir(), "campaign.lds")
	var buf bytes.Buffer
	if err := c.WriteLDS(&buf, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := writeTestFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	got, err := OpenLDS(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != c.Digest() {
		t.Fatal("digest mismatch through file path")
	}
}

// TestLDSRejectsTruncation cuts the image at several points — inside the
// header, inside a chunk payload, inside the footer, inside the trailer —
// and requires a corruption error for each.
func TestLDSRejectsTruncation(t *testing.T) {
	c := ldsTestCampaign(t)
	var buf bytes.Buffer
	if err := c.WriteLDS(&buf, 64, 1); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	cuts := []int{3, 12, 40, len(img) / 2, len(img) - 40, len(img) - 9, len(img) - 1}
	for _, cut := range cuts {
		if cut <= 0 || cut >= len(img) {
			continue
		}
		if _, err := ReadLDS(img[:cut]); !errors.Is(err, ErrLDSCorrupt) {
			t.Fatalf("truncation at %d of %d: got %v, want ErrLDSCorrupt", cut, len(img), err)
		}
	}
}

// TestLDSRejectsCorruption flips a byte inside a chunk payload and inside the
// footer digest region; both must fail closed with ErrLDSCorrupt.
func TestLDSRejectsCorruption(t *testing.T) {
	c := ldsTestCampaign(t)
	var buf bytes.Buffer
	if err := c.WriteLDS(&buf, 64, 1); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	// A float byte deep inside the first chunk payload: the per-chunk
	// SHA-256 must catch it.
	payload := make([]byte, len(img))
	copy(payload, img)
	payload[24+16+200] ^= 0x40
	if _, err := ReadLDS(payload); !errors.Is(err, ErrLDSCorrupt) {
		t.Fatalf("payload corruption: got %v, want ErrLDSCorrupt", err)
	}

	// A byte of the stored chunk digest in the footer: the recomputed sum
	// cannot match.
	footer := make([]byte, len(img))
	copy(footer, img)
	footer[len(footer)-60] ^= 0x01
	if _, err := ReadLDS(footer); !errors.Is(err, ErrLDSCorrupt) {
		t.Fatalf("footer corruption: got %v, want ErrLDSCorrupt", err)
	}

	// The trailer magic itself.
	trail := make([]byte, len(img))
	copy(trail, img)
	trail[len(trail)-1] = 'X'
	if _, err := ReadLDS(trail); !errors.Is(err, ErrLDSCorrupt) {
		t.Fatalf("trailer corruption: got %v, want ErrLDSCorrupt", err)
	}
}

// TestLDSEmptyCampaign round-trips a campaign with no entries.
func TestLDSEmptyCampaign(t *testing.T) {
	c := &Campaign{Dataset: Dataset{Name: "empty"}}
	var buf bytes.Buffer
	if err := c.WriteLDS(&buf, 0, 4); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLDS(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "empty" || len(got.Entries) != 0 {
		t.Fatalf("got %q with %d entries", got.Name, len(got.Entries))
	}
}

// writeTestFile writes bytes to path (0644).
func writeTestFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
