package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	_, orig := campaigns(t)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Len() != orig.Len() || len(got.Sites) != len(orig.Sites) {
		t.Fatalf("shape changed: %s/%d/%d vs %s/%d/%d",
			got.Name, got.Len(), len(got.Sites), orig.Name, orig.Len(), len(orig.Sites))
	}
	for i := range orig.Entries {
		a, b := orig.Entries[i], got.Entries[i]
		if a.Features != b.Features || a.Label != b.Label || a.InitMCS != b.InitMCS ||
			a.Env != b.Env || a.Impairment != b.Impairment || a.PosID != b.PosID {
			t.Fatalf("entry %d changed in round trip", i)
		}
		if a.InitBeamTh != b.InitBeamTh || a.BestBeamTh != b.BestBeamTh {
			t.Fatalf("entry %d throughput tables changed", i)
		}
	}
	// The summary machinery works identically on the deserialized copy.
	ba1, ra1, na1 := orig.CountLabels(-1)
	ba2, ra2, na2 := got.CountLabels(-1)
	if ba1 != ba2 || ra1 != ra2 || na1 != na2 {
		t.Error("label counts changed")
	}
	if orig.SiteCount(-1, "") != got.SiteCount(-1, "") {
		t.Error("site counts changed")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadJSONRejectsWrongVersion(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"version":99,"name":"x"}`)); err == nil {
		t.Error("future version accepted")
	}
}

func TestReadJSONValidatesEntries(t *testing.T) {
	bad := `{"version":1,"name":"x","entries":[{"InitMCS":42,"Label":0}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid MCS accepted")
	}
	badLabel := `{"version":1,"name":"x","entries":[{"InitMCS":3,"Label":9}]}`
	if _, err := ReadJSON(strings.NewReader(badLabel)); err == nil {
		t.Error("invalid label accepted")
	}
}

func TestCheckNilEntry(t *testing.T) {
	c := &Campaign{Dataset: Dataset{Entries: []*Entry{nil}}}
	if err := c.Check(); err == nil {
		t.Error("nil entry accepted")
	}
}
