package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The paper's dataset is publicly released; this file provides the
// equivalent for the emulated campaigns: a versioned JSON container that
// round-trips every entry (features, labels, and the per-MCS throughput
// tables the simulator replays) plus the site registry behind the position
// counts of Tables 1-2.

// ioFormatVersion guards the serialization schema.
const ioFormatVersion = 1

// campaignJSON is the on-disk container.
type campaignJSON struct {
	Version int      `json:"version"`
	Name    string   `json:"name"`
	Entries []*Entry `json:"entries"`
	Sites   []Site   `json:"sites"`
}

// WriteJSON serializes the campaign.
func (c *Campaign) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(campaignJSON{
		Version: ioFormatVersion,
		Name:    c.Name,
		Entries: c.Entries,
		Sites:   c.Sites,
	}); err != nil {
		return fmt.Errorf("dataset: encoding campaign: %w", err)
	}
	return bw.Flush()
}

// ReadJSON deserializes a campaign written by WriteJSON.
func ReadJSON(r io.Reader) (*Campaign, error) {
	var cj campaignJSON
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&cj); err != nil {
		return nil, fmt.Errorf("dataset: decoding campaign: %w", err)
	}
	if cj.Version != ioFormatVersion {
		return nil, fmt.Errorf("dataset: unsupported format version %d (want %d)", cj.Version, ioFormatVersion)
	}
	c := &Campaign{
		Dataset: Dataset{Name: cj.Name, Entries: cj.Entries},
		Sites:   cj.Sites,
	}
	if err := c.Check(); err != nil {
		return nil, err
	}
	return c, nil
}

// Check validates structural invariants of a (possibly deserialized)
// campaign.
func (c *Campaign) Check() error {
	for i, e := range c.Entries {
		if e == nil {
			return fmt.Errorf("dataset: entry %d is nil", i)
		}
		if !e.InitMCS.Valid() {
			return fmt.Errorf("dataset: entry %d has invalid MCS %d", i, e.InitMCS)
		}
		if e.Label < ActBA || e.Label > ActNA {
			return fmt.Errorf("dataset: entry %d has invalid label %d", i, e.Label)
		}
		if e.Features[5] < 0 || e.Features[5] > 1 {
			return fmt.Errorf("dataset: entry %d has CDR %v outside [0,1]", i, e.Features[5])
		}
		if e.Impairment < Displacement || e.Impairment > NoImpairment {
			return fmt.Errorf("dataset: entry %d has invalid impairment %d", i, e.Impairment)
		}
	}
	return nil
}
