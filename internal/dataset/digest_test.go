package dataset

import "testing"

// Golden campaign digests captured from the row-wise generation path before
// the columnar engine landed. Any change to these values means the campaign
// output is no longer bit-identical to the seed — a determinism-contract
// break, never a benign refactor side effect.
const (
	goldenMainSeed42 = "31faeadd559977530e830728d51d63af993823d8c965500fe1fc859dbe5bae4b"
	goldenTestSeed43 = "dc5a13277d943c7c0c5d1b09628295528cd92f360a9371d17eb3940d5011e859"
)

// TestCampaignDigestGolden proves the generated campaigns are bit-for-bit
// identical to the pre-columnar seed output at Workers=1 and Workers=8: the
// digest hashes every entry field (float bit patterns verbatim) plus the
// site registry.
func TestCampaignDigestGolden(t *testing.T) {
	for _, w := range []int{1, 8} {
		if got := GenerateMainWorkers(42, w).Digest(); got != goldenMainSeed42 {
			t.Errorf("main campaign digest (seed 42, workers %d) = %s, want %s", w, got, goldenMainSeed42)
		}
		if got := GenerateTestWorkers(43, w).Digest(); got != goldenTestSeed43 {
			t.Errorf("test campaign digest (seed 43, workers %d) = %s, want %s", w, got, goldenTestSeed43)
		}
	}
}

// TestDigestSensitive sanity-checks that the digest actually covers the
// payload: flipping one feature bit must change it.
func TestDigestSensitive(t *testing.T) {
	a := GenerateTest(7)
	b := GenerateTest(7)
	if a.Digest() != b.Digest() {
		t.Fatal("same seed produced different digests")
	}
	b.Entries[0].Features[0] += 1e-12
	if a.Digest() == b.Digest() {
		t.Fatal("digest ignored a feature perturbation")
	}
}
