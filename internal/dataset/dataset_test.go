package dataset

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/phy"
)

// Campaign generation is moderately expensive; share one instance.
var (
	campOnce sync.Once
	mainCamp *Campaign
	testCamp *Campaign
)

func campaigns(t *testing.T) (*Campaign, *Campaign) {
	t.Helper()
	campOnce.Do(func() {
		mainCamp = GenerateMain(42)
		testCamp = GenerateTest(43)
	})
	return mainCamp, testCamp
}

func TestMainCampaignCounts(t *testing.T) {
	m, _ := campaigns(t)
	// These counts ARE Table 1: 479/81/108 cases, 94/12/12 positions.
	if got := len(m.Filter(Displacement)); got != 479 {
		t.Errorf("displacement entries = %d, want 479", got)
	}
	if got := len(m.Filter(Blockage)); got != 81 {
		t.Errorf("blockage entries = %d, want 81", got)
	}
	if got := len(m.Filter(Interference)); got != 108 {
		t.Errorf("interference entries = %d, want 108", got)
	}
	if got := m.SiteCount(Displacement, ""); got != 94 {
		t.Errorf("displacement positions = %d, want 94", got)
	}
	if got := m.SiteCount(Blockage, ""); got != 12 {
		t.Errorf("blockage positions = %d, want 12", got)
	}
	if got := m.SiteCount(Interference, ""); got != 12 {
		t.Errorf("interference positions = %d, want 12", got)
	}
	if got := m.SiteCount(-1, ""); got != 118 {
		t.Errorf("total positions = %d, want 118", got)
	}
}

func TestMainCampaignPerEnvironmentPositions(t *testing.T) {
	m, _ := campaigns(t)
	cases := []struct {
		prefix string
		want   int
	}{
		{"lobby", 30}, {"lab", 15}, {"conference", 14}, {"corridor", 59},
	}
	for _, c := range cases {
		if got := m.SiteCount(-1, c.prefix); got != c.want {
			t.Errorf("%s positions = %d, want %d", c.prefix, got, c.want)
		}
	}
}

func TestTestCampaignCounts(t *testing.T) {
	_, ts := campaigns(t)
	if got := len(ts.Filter(Displacement)); got != 165 {
		t.Errorf("displacement entries = %d, want 165", got)
	}
	if got := len(ts.Filter(Blockage)); got != 27 {
		t.Errorf("blockage entries = %d, want 27", got)
	}
	if got := len(ts.Filter(Interference)); got != 36 {
		t.Errorf("interference entries = %d, want 36", got)
	}
	if got := ts.SiteCount(-1, "building1"); got != 27 {
		t.Errorf("building 1 positions = %d, want 27", got)
	}
	if got := ts.SiteCount(-1, "building2"); got != 15 {
		t.Errorf("building 2 positions = %d, want 15", got)
	}
}

func TestLabelProportionShapes(t *testing.T) {
	m, _ := campaigns(t)
	// The paper's qualitative shape: BA dominates displacement and
	// blockage; RA is the majority under interference (§5.2).
	ba, ra, _ := m.CountLabels(Displacement)
	if ba <= 3*ra {
		t.Errorf("displacement BA/RA = %d/%d, expected strong BA majority", ba, ra)
	}
	ba, ra, _ = m.CountLabels(Blockage)
	if ba <= 2*ra {
		t.Errorf("blockage BA/RA = %d/%d, expected BA majority", ba, ra)
	}
	ba, ra, _ = m.CountLabels(Interference)
	if ra <= ba {
		t.Errorf("interference BA/RA = %d/%d, expected RA majority", ba, ra)
	}
}

func TestNAAugmentation(t *testing.T) {
	m, _ := campaigns(t)
	_, _, na := m.CountLabels(-1)
	impaired := len(m.Filter(Displacement)) + len(m.Filter(Blockage)) + len(m.Filter(Interference))
	// One NA entry per new state (§7).
	if na != impaired {
		t.Errorf("NA entries = %d, want %d", na, impaired)
	}
}

func TestFeaturesFinite(t *testing.T) {
	m, ts := campaigns(t)
	for _, c := range []*Campaign{m, ts} {
		for i, e := range c.Entries {
			for j, f := range e.Features {
				if math.IsNaN(f) || math.IsInf(f, 0) {
					t.Fatalf("entry %d feature %s = %v", i, FeatureNames[j], f)
				}
			}
			if e.Features[5] < 0 || e.Features[5] > 1 {
				t.Fatalf("entry %d CDR = %v", i, e.Features[5])
			}
			if e.Features[3] > 1+1e-9 || e.Features[4] > 1+1e-9 {
				t.Fatalf("entry %d similarity > 1", i)
			}
			if e.Features[6] != float64(e.InitMCS) {
				t.Fatalf("entry %d initMCS feature mismatch", i)
			}
		}
	}
}

func TestGroundTruthConsistency(t *testing.T) {
	m, _ := campaigns(t)
	for i, e := range m.Entries {
		if e.Impairment == NoImpairment {
			continue
		}
		wantRA := e.ThRABps >= e.ThBABps*(1-labelEps)
		if wantRA && e.Label != ActRA {
			t.Fatalf("entry %d: labeled %v but ThRA %v >= ThBA %v", i, e.Label, e.ThRABps, e.ThBABps)
		}
		if !wantRA && e.Label != ActBA {
			t.Fatalf("entry %d: labeled %v but ThBA wins", i, e.Label)
		}
	}
}

func TestThroughputTables(t *testing.T) {
	m, _ := campaigns(t)
	for i, e := range m.Entries {
		for mc := phy.MinMCS; mc <= phy.MaxMCS; mc++ {
			if e.InitBeamTh[mc] < 0 || e.BestBeamTh[mc] < 0 {
				t.Fatalf("entry %d: negative throughput", i)
			}
			if e.InitBeamTh[mc] > phy.MaxRateBps() || e.BestBeamTh[mc] > phy.MaxRateBps() {
				t.Fatalf("entry %d: table exceeds PHY rate", i)
			}
		}
		// The best pair never does worse than the initial pair at the same
		// MCS (it maximizes SNR).
		for mc := phy.MinMCS; mc <= phy.MaxMCS; mc++ {
			if e.BestBeamTh[mc] < e.InitBeamTh[mc]-1 && e.Impairment != NoImpairment {
				t.Fatalf("entry %d: best-beam table below init-beam at %v", i, mc)
			}
		}
	}
}

func TestToFInfCoding(t *testing.T) {
	m, _ := campaigns(t)
	sawInf := false
	for _, e := range m.Entries {
		f := e.Features[1]
		if f == ToFInfCode {
			sawInf = true
		} else if f < -tofClamp-1e-9 || f > tofClamp+1e-9 {
			t.Fatalf("ToF feature %v outside clamp", f)
		}
	}
	// Hard blockage / deep rotations must yield unmeasurable ToF somewhere.
	if !sawInf {
		t.Error("no ToF-infinity cases in the whole campaign")
	}
}

func TestBackwardMotionNegativeToF(t *testing.T) {
	m, _ := campaigns(t)
	// Fig. 5 shape: most RA displacement cases have negative ToF diff.
	neg, tot := 0, 0
	for _, e := range m.Filter(Displacement) {
		if e.Label != ActRA {
			continue
		}
		tot++
		if e.Features[1] < 0 {
			neg++
		}
	}
	if tot == 0 || float64(neg)/float64(tot) < 0.5 {
		t.Errorf("negative-ToF fraction among RA displacement = %d/%d", neg, tot)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := GenerateTest(7)
	b := GenerateTest(7)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Entries {
		if a.Entries[i].Features != b.Entries[i].Features || a.Entries[i].Label != b.Entries[i].Label {
			t.Fatal("same seed produced different campaigns")
		}
	}
}

func TestToML(t *testing.T) {
	m, _ := campaigns(t)
	two := m.ToML(false)
	three := m.ToML(true)
	if err := two.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := three.Validate(); err != nil {
		t.Fatal(err)
	}
	if two.NumClasses() != 2 {
		t.Errorf("two-class set has %d classes", two.NumClasses())
	}
	if three.NumClasses() != 3 {
		t.Errorf("three-class set has %d classes", three.NumClasses())
	}
	if three.Len() != m.Len() {
		t.Errorf("three-class set dropped entries: %d vs %d", three.Len(), m.Len())
	}
	ba, ra, _ := m.CountLabels(-1)
	if two.Len() != ba+ra {
		t.Errorf("two-class set size %d, want %d", two.Len(), ba+ra)
	}
}

func TestInitMCSRange(t *testing.T) {
	m, _ := campaigns(t)
	for _, e := range m.Entries {
		if !e.InitMCS.Valid() {
			t.Fatalf("invalid init MCS %v", e.InitMCS)
		}
	}
}

func TestFeaturizeObserved(t *testing.T) {
	mkMeas := func(snr, noise, tof float64, pdp []float64) channel.Measurement {
		return channel.Measurement{SNRdB: snr, NoiseDBm: noise, ToFNs: tof, PDP: pdp}
	}
	pdp := make([]float64, 16)
	pdp[2] = 1
	pdp[7] = 0.3
	init := mkMeas(20, -74, 30, pdp)
	now := mkMeas(14, -70, 45, pdp)
	f := FeaturizeObserved(init, now, 0.42, 5)
	if f[0] != 6 {
		t.Errorf("SNR diff = %v", f[0])
	}
	if f[1] != -15 {
		t.Errorf("ToF diff = %v", f[1])
	}
	if f[2] != 4 {
		t.Errorf("noise diff = %v", f[2])
	}
	if math.Abs(f[3]-1) > 1e-9 {
		t.Errorf("identical PDP similarity = %v", f[3])
	}
	if f[5] != 0.42 || f[6] != 5 {
		t.Errorf("cdr/mcs = %v/%v", f[5], f[6])
	}
}

func TestFeaturizeToFClamp(t *testing.T) {
	init := channel.Measurement{ToFNs: 0, PDP: []float64{1}}
	now := channel.Measurement{ToFNs: 100, PDP: []float64{1}}
	f := FeaturizeObserved(init, now, 0, 0)
	if f[1] != -tofClamp {
		t.Errorf("clamped ToF = %v", f[1])
	}
	inf := channel.Measurement{ToFNs: math.Inf(1), PDP: []float64{1}}
	f = FeaturizeObserved(init, inf, 0, 0)
	if f[1] != ToFInfCode {
		t.Errorf("inf-coded ToF = %v", f[1])
	}
}

func TestPerturbStableToF(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := channel.Measurement{SNRdB: 10, NoiseDBm: -70, ToFNs: 33.3, PDP: []float64{1, 0, 0.5}}
	p := perturb(m, defaultDrift, rng)
	// ToF quantized to the 0.5 ns grid.
	if q := math.Mod(p.ToFNs, channel.PDPBinNs); q > 1e-9 && q < channel.PDPBinNs-1e-9 {
		t.Errorf("ToF not quantized: %v", p.ToFNs)
	}
	if len(p.PDP) != len(m.PDP) {
		t.Error("PDP length changed")
	}
	if p.PDP[1] != 0 {
		t.Error("zero taps must stay zero")
	}
}

func TestActionStrings(t *testing.T) {
	if ActBA.String() != "BA" || ActRA.String() != "RA" || ActNA.String() != "NA" {
		t.Error("action names")
	}
	if Displacement.String() != "displacement" || NoImpairment.String() != "none" {
		t.Error("impairment names")
	}
}

func TestPropertyFeaturizeBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		mk := func() channel.Measurement {
			pdp := make([]float64, 32)
			for j := range pdp {
				if rng.Intn(3) == 0 {
					pdp[j] = rng.Float64()
				}
			}
			tof := rng.Float64() * 100
			if rng.Intn(10) == 0 {
				tof = math.Inf(1)
			}
			return channel.Measurement{
				SNRdB:    rng.Float64()*60 - 20,
				NoiseDBm: -80 + rng.Float64()*20,
				ToFNs:    tof,
				PDP:      pdp,
			}
		}
		f := FeaturizeObserved(mk(), mk(), rng.Float64(), phy.MCS(rng.Intn(phy.NumMCS)))
		for j, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %s = %v", FeatureNames[j], v)
			}
		}
		if f[1] < -tofClamp-1e-9 || f[1] > ToFInfCode+1e-9 {
			t.Fatalf("ToF feature %v out of range", f[1])
		}
		if f[3] < -1-1e-9 || f[3] > 1+1e-9 || f[4] < -1-1e-9 || f[4] > 1+1e-9 {
			t.Fatalf("similarity out of [-1,1]: %v / %v", f[3], f[4])
		}
	}
}
