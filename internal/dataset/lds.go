package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"github.com/libra-wlan/libra/internal/phy"
)

// libra-ds v1 is the streaming binary campaign container: a fixed header,
// a sequence of fixed-width column chunks, and a footer carrying the string
// dictionary, the site registry, a SHA-256 per chunk payload, and the
// campaign content digest. All integers are little-endian.
//
//	header:
//	  "LDS1" | u32 version=1 | u32 chunkRows | u32 chunkCount | u64 rowCount
//	chunk frame (chunkCount times):
//	  "CHNK" | u32 rows | u64 payloadLen | payload
//	  payload: the columns of the chunk's row range, column-major, in
//	  canonical order — Env u16, Bld u16, Imp u8, Label u8, Pos i32,
//	  InitMCS u8, Feat[0..NumFeatures) f64, InitSNR f64, NewSNRInit f64,
//	  NewSNRBest f64, InitTh f64, ThRA f64, ThBA f64,
//	  InitBeamTh[0..NumMCS) f64, BestBeamTh[0..NumMCS) f64.
//	  Floats are IEEE-754 bit patterns: the round trip is exact.
//	footer:
//	  "LDSF" | u32 nameLen | name
//	  u32 dictLen | dictLen x (u32 len | bytes)
//	  u32 siteCount | siteCount x (u32 envLen | env | u8 impairment | i32 posID)
//	  chunkCount x 32-byte SHA-256 (of each chunk payload)
//	  u32 digestLen | campaign content digest (Campaign.Digest(), hex)
//	trailer:
//	  u64 footerOffset | "LDS1FTR\0"
//
// The trailer lets a reader seek straight to the footer of an already
// complete file; the chunk framing lets it stream and verify chunk by chunk.
// Chunk payload bytes depend only on the campaign content and chunkRows, so
// the file is byte-identical for any writer worker count.

// ldsVersion is the container schema version.
const ldsVersion = 1

// DefaultChunkRows is the chunk granularity WriteLDS uses when the caller
// passes chunkRows <= 0: large enough to amortize framing and hashing, small
// enough that a streaming reader verifies in bounded memory.
const DefaultChunkRows = 4096

var (
	ldsMagic   = [4]byte{'L', 'D', 'S', '1'}
	ldsChunk   = [4]byte{'C', 'H', 'N', 'K'}
	ldsFooter  = [4]byte{'L', 'D', 'S', 'F'}
	ldsTrailer = [8]byte{'L', 'D', 'S', '1', 'F', 'T', 'R', 0}
)

// ErrLDSCorrupt reports a structurally damaged or digest-mismatched
// libra-ds file. Every reader failure wraps it, so callers can distinguish
// corruption from I/O errors with errors.Is.
var ErrLDSCorrupt = errors.New("dataset: corrupt libra-ds file")

// ldsRowBytes is the fixed per-row payload width: the dictionary indices and
// enums plus every float column.
const ldsRowBytes = 2 + 2 + 1 + 1 + 4 + 1 + 8*(NumFeatures+6+2*phy.NumMCS)

// ldsBufPool recycles chunk encode buffers across chunks and campaigns.
var ldsBufPool = sync.Pool{New: func() any { return new([]byte) }}

// encodeChunk serializes rows [lo, hi) of the store into a pooled buffer in
// canonical column order and returns the buffer and its SHA-256.
func encodeChunk(s *ColumnStore, lo, hi int) ([]byte, [32]byte) {
	rows := hi - lo
	bp := ldsBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	if need := rows * ldsRowBytes; cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	for _, v := range s.Env[lo:hi] {
		buf = binary.LittleEndian.AppendUint16(buf, v)
	}
	for _, v := range s.Bld[lo:hi] {
		buf = binary.LittleEndian.AppendUint16(buf, v)
	}
	buf = append(buf, s.Imp[lo:hi]...)
	buf = append(buf, s.Label[lo:hi]...)
	for _, v := range s.Pos[lo:hi] {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	buf = append(buf, s.InitMCS[lo:hi]...)
	appendF64s := func(col []float64) {
		for _, v := range col {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	for f := 0; f < NumFeatures; f++ {
		appendF64s(s.Feat[f][lo:hi])
	}
	appendF64s(s.InitSNR[lo:hi])
	appendF64s(s.NewSNRInit[lo:hi])
	appendF64s(s.NewSNRBest[lo:hi])
	appendF64s(s.InitTh[lo:hi])
	appendF64s(s.ThRA[lo:hi])
	appendF64s(s.ThBA[lo:hi])
	for m := 0; m < phy.NumMCS; m++ {
		appendF64s(s.InitBeamTh[m][lo:hi])
	}
	for m := 0; m < phy.NumMCS; m++ {
		appendF64s(s.BestBeamTh[m][lo:hi])
	}
	*bp = buf
	return buf, sha256.Sum256(buf)
}

// releaseChunkBuf returns an encode buffer to the pool.
func releaseChunkBuf(buf []byte) {
	b := buf
	ldsBufPool.Put(&b)
}

// WriteLDS streams the campaign in libra-ds v1 format. chunkRows <= 0 selects
// DefaultChunkRows; workers <= 0 selects 1. Chunks are encoded and hashed on
// a bounded worker pipeline and written strictly in chunk order, so the
// output bytes are identical for every worker count and the in-flight memory
// is bounded to O(workers) chunk buffers.
func (c *Campaign) WriteLDS(w io.Writer, chunkRows, workers int) error {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	if workers <= 0 {
		workers = 1
	}
	cols := c.Columns()
	n := cols.Len()
	chunkCount := (n + chunkRows - 1) / chunkRows

	var hdr []byte
	hdr = append(hdr, ldsMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, ldsVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(chunkRows))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(chunkCount))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(n))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("dataset: writing libra-ds header: %w", err)
	}
	off := int64(len(hdr))

	type encoded struct {
		buf []byte
		sum [32]byte
	}
	sums := make([][32]byte, chunkCount)
	writeChunk := func(i int, e encoded) error {
		obsLDSChunks.Inc()
		sums[i] = e.sum
		var frame [16]byte
		copy(frame[:4], ldsChunk[:])
		binary.LittleEndian.PutUint32(frame[4:8], uint32(len(e.buf)/ldsRowBytes))
		binary.LittleEndian.PutUint64(frame[8:16], uint64(len(e.buf)))
		if _, err := w.Write(frame[:]); err != nil {
			return fmt.Errorf("dataset: writing chunk %d frame: %w", i, err)
		}
		if _, err := w.Write(e.buf); err != nil {
			return fmt.Errorf("dataset: writing chunk %d payload: %w", i, err)
		}
		off += int64(len(frame)) + int64(len(e.buf))
		obsLDSBytes.Add(uint64(len(frame) + len(e.buf)))
		releaseChunkBuf(e.buf)
		return nil
	}

	if workers == 1 || chunkCount <= 1 {
		for i := 0; i < chunkCount; i++ {
			lo := i * chunkRows
			hi := min(lo+chunkRows, n)
			buf, sum := encodeChunk(cols, lo, hi)
			if err := writeChunk(i, encoded{buf, sum}); err != nil {
				return err
			}
		}
	} else {
		// Bounded reorder pipeline: dispatch is gated by a semaphore the
		// in-order writer releases, so at most 2*workers chunks are encoded
		// or encoded-but-unwritten at once; each chunk's result arrives on
		// its own channel, so the writer consumes strictly in chunk order.
		results := make([]chan encoded, chunkCount)
		for i := range results {
			results[i] = make(chan encoded, 1)
		}
		sem := make(chan struct{}, 2*workers)
		jobs := make(chan int)
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					lo := i * chunkRows
					hi := min(lo+chunkRows, n)
					buf, sum := encodeChunk(cols, lo, hi)
					results[i] <- encoded{buf, sum}
				}
			}()
		}
		go func() {
			for i := 0; i < chunkCount; i++ {
				sem <- struct{}{}
				jobs <- i
			}
			close(jobs)
			wg.Wait()
		}()
		var werr error
		for i := 0; i < chunkCount; i++ {
			e := <-results[i]
			if werr == nil {
				werr = writeChunk(i, e)
			} else {
				releaseChunkBuf(e.buf)
			}
			<-sem
		}
		if werr != nil {
			return werr
		}
	}

	var ftr []byte
	ftr = append(ftr, ldsFooter[:]...)
	appendStr := func(s string) {
		ftr = binary.LittleEndian.AppendUint32(ftr, uint32(len(s)))
		ftr = append(ftr, s...)
	}
	appendStr(c.Name)
	ftr = binary.LittleEndian.AppendUint32(ftr, uint32(len(cols.Names)))
	for _, name := range cols.Names {
		appendStr(name)
	}
	ftr = binary.LittleEndian.AppendUint32(ftr, uint32(len(c.Sites)))
	for _, s := range c.Sites {
		appendStr(s.Env)
		ftr = append(ftr, uint8(s.Impairment))
		ftr = binary.LittleEndian.AppendUint32(ftr, uint32(int32(s.PosID)))
	}
	for i := range sums {
		ftr = append(ftr, sums[i][:]...)
	}
	appendStr(c.Digest())
	if _, err := w.Write(ftr); err != nil {
		return fmt.Errorf("dataset: writing libra-ds footer: %w", err)
	}

	var trail []byte
	trail = binary.LittleEndian.AppendUint64(trail, uint64(off))
	trail = append(trail, ldsTrailer[:]...)
	if _, err := w.Write(trail); err != nil {
		return fmt.Errorf("dataset: writing libra-ds trailer: %w", err)
	}
	obsLDSBytes.Add(uint64(len(ftr) + len(trail)))
	return nil
}

// ldsReader walks a libra-ds byte image with bounds-checked primitives.
type ldsReader struct {
	data []byte
	off  int
}

func (r *ldsReader) corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: offset %d: %s", ErrLDSCorrupt, r.off, fmt.Sprintf(format, args...))
}

func (r *ldsReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, r.corrupt("need %d bytes, have %d", n, len(r.data)-r.off)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *ldsReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *ldsReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *ldsReader) str(maxLen uint32) (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", r.corrupt("string length %d exceeds limit %d", n, maxLen)
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// decodeChunk appends the rows of one verified chunk payload onto the store.
func decodeChunk(s *ColumnStore, payload []byte, rows int) {
	off := 0
	u16s := func(dst *[]uint16) {
		for i := 0; i < rows; i++ {
			*dst = append(*dst, binary.LittleEndian.Uint16(payload[off:]))
			off += 2
		}
	}
	u8s := func(dst *[]uint8) {
		*dst = append(*dst, payload[off:off+rows]...)
		off += rows
	}
	f64s := func(dst *[]float64) {
		for i := 0; i < rows; i++ {
			*dst = append(*dst, math.Float64frombits(binary.LittleEndian.Uint64(payload[off:])))
			off += 8
		}
	}
	u16s(&s.Env)
	u16s(&s.Bld)
	u8s(&s.Imp)
	u8s(&s.Label)
	for i := 0; i < rows; i++ {
		s.Pos = append(s.Pos, int32(binary.LittleEndian.Uint32(payload[off:])))
		off += 4
	}
	u8s(&s.InitMCS)
	for f := 0; f < NumFeatures; f++ {
		f64s(&s.Feat[f])
	}
	f64s(&s.InitSNR)
	f64s(&s.NewSNRInit)
	f64s(&s.NewSNRBest)
	f64s(&s.InitTh)
	f64s(&s.ThRA)
	f64s(&s.ThBA)
	for m := 0; m < phy.NumMCS; m++ {
		f64s(&s.InitBeamTh[m])
	}
	for m := 0; m < phy.NumMCS; m++ {
		f64s(&s.BestBeamTh[m])
	}
}

// ReadLDS decodes a complete libra-ds v1 image (as produced by WriteLDS)
// into a campaign, verifying the chunk framing, every per-chunk SHA-256, the
// trailer, and the campaign content digest. The returned campaign owns its
// memory: data may be unmapped or reused afterwards.
func ReadLDS(data []byte) (*Campaign, error) {
	r := &ldsReader{data: data}
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if [4]byte(magic) != ldsMagic {
		return nil, r.corrupt("bad magic %q", magic)
	}
	version, err := r.u32()
	if err != nil {
		return nil, err
	}
	if version != ldsVersion {
		return nil, fmt.Errorf("dataset: unsupported libra-ds version %d (want %d)", version, ldsVersion)
	}
	if _, err := r.u32(); err != nil { // chunkRows: informational
		return nil, err
	}
	chunkCount, err := r.u32()
	if err != nil {
		return nil, err
	}
	rowCount, err := r.u64()
	if err != nil {
		return nil, err
	}
	if rowCount > uint64(len(data))/ldsRowBytes {
		return nil, r.corrupt("row count %d impossible for %d-byte file", rowCount, len(data))
	}

	type chunkRef struct {
		payload []byte
		rows    int
	}
	chunks := make([]chunkRef, 0, chunkCount)
	total := 0
	for i := uint32(0); i < chunkCount; i++ {
		magic, err := r.bytes(4)
		if err != nil {
			return nil, err
		}
		if [4]byte(magic) != ldsChunk {
			return nil, r.corrupt("chunk %d: bad frame magic %q", i, magic)
		}
		rows, err := r.u32()
		if err != nil {
			return nil, err
		}
		payloadLen, err := r.u64()
		if err != nil {
			return nil, err
		}
		if payloadLen != uint64(rows)*ldsRowBytes {
			return nil, r.corrupt("chunk %d: payload %d bytes for %d rows (want %d)", i, payloadLen, rows, uint64(rows)*ldsRowBytes)
		}
		payload, err := r.bytes(int(payloadLen))
		if err != nil {
			return nil, err
		}
		chunks = append(chunks, chunkRef{payload, int(rows)})
		total += int(rows)
	}
	if uint64(total) != rowCount {
		return nil, r.corrupt("chunks carry %d rows, header says %d", total, rowCount)
	}

	footerOff := r.off
	magic, err = r.bytes(4)
	if err != nil {
		return nil, err
	}
	if [4]byte(magic) != ldsFooter {
		return nil, r.corrupt("bad footer magic %q", magic)
	}
	name, err := r.str(1 << 20)
	if err != nil {
		return nil, err
	}
	dictLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	if dictLen > uint32(len(data)) {
		return nil, r.corrupt("dictionary of %d names impossible", dictLen)
	}
	names := make([]string, dictLen)
	for i := range names {
		if names[i], err = r.str(1 << 20); err != nil {
			return nil, err
		}
	}
	siteCount, err := r.u32()
	if err != nil {
		return nil, err
	}
	if siteCount > uint32(len(data)) {
		return nil, r.corrupt("site registry of %d entries impossible", siteCount)
	}
	sites := make([]Site, siteCount)
	for i := range sites {
		if sites[i].Env, err = r.str(1 << 20); err != nil {
			return nil, err
		}
		imp, err := r.bytes(1)
		if err != nil {
			return nil, err
		}
		sites[i].Impairment = Impairment(imp[0])
		pos, err := r.u32()
		if err != nil {
			return nil, err
		}
		sites[i].PosID = int(int32(pos))
	}
	for i := range chunks {
		want, err := r.bytes(sha256.Size)
		if err != nil {
			return nil, err
		}
		if sum := sha256.Sum256(chunks[i].payload); [sha256.Size]byte(want) != sum {
			return nil, fmt.Errorf("%w: chunk %d: payload SHA-256 mismatch", ErrLDSCorrupt, i)
		}
	}
	wantDigest, err := r.str(128)
	if err != nil {
		return nil, err
	}
	gotOff, err := r.u64()
	if err != nil {
		return nil, err
	}
	if gotOff != uint64(footerOff) {
		return nil, r.corrupt("trailer footer offset %d, footer is at %d", gotOff, footerOff)
	}
	trail, err := r.bytes(8)
	if err != nil {
		return nil, err
	}
	if [8]byte(trail) != ldsTrailer {
		return nil, r.corrupt("bad trailer magic %q", trail)
	}
	if r.off != len(data) {
		return nil, r.corrupt("%d trailing bytes after trailer", len(data)-r.off)
	}

	cols := newColumnStore()
	cols.Names = append(cols.Names, names...)
	if cols.nameIdx == nil {
		cols.nameIdx = map[string]uint16{}
	}
	for i, n := range cols.Names {
		cols.nameIdx[n] = uint16(i)
	}
	for _, ch := range chunks {
		decodeChunk(cols, ch.payload, ch.rows)
		obsLDSChunksRead.Inc()
	}
	maxIdx := uint16(0)
	for _, v := range cols.Env {
		maxIdx = max(maxIdx, v)
	}
	for _, v := range cols.Bld {
		maxIdx = max(maxIdx, v)
	}
	if int(maxIdx) >= len(cols.Names) && cols.Len() > 0 {
		return nil, fmt.Errorf("%w: dictionary index %d out of range (%d names)", ErrLDSCorrupt, maxIdx, len(cols.Names))
	}

	c := &Campaign{
		Dataset: Dataset{Name: name},
		Sites:   sites,
		cols:    cols,
	}
	c.Entries = cols.materialize()
	if got := c.Digest(); wantDigest != got {
		return nil, fmt.Errorf("%w: campaign digest mismatch", ErrLDSCorrupt)
	}
	if err := c.Check(); err != nil {
		return nil, err
	}
	return c, nil
}

// OpenLDS reads a libra-ds v1 file into a campaign. On Linux the image is
// memory-mapped for the duration of decoding (with a plain-read fallback);
// elsewhere it is read whole. The mapping is released before returning.
func OpenLDS(path string) (*Campaign, error) {
	data, release, err := openLDSBytes(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: opening %s: %w", path, err)
	}
	defer release()
	c, err := ReadLDS(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}
