package dataset

import (
	"sync"

	"github.com/libra-wlan/libra/internal/phy"
)

// ColumnStore is the structure-of-arrays view of a campaign: every Entry
// field lives in its own contiguous column, indexed by sample. The generator
// appends each sample's fields straight into its per-spec store (no per-entry
// heap object), spec stores concatenate in spec order at merge, and the
// columns feed three consumers without re-layout: the libra-ds v1 chunk
// writer (columns are already the on-disk shape), ml training (the tree
// builder presorts from contiguous columns), and Entry materialization (one
// slab, one pass).
//
// Env and Building are dictionary-encoded: the column stores an index into
// Names, so the per-sample payload is fixed-width — the property the binary
// format's chunk framing relies on.
type ColumnStore struct {
	// Names is the string dictionary backing the Env and Bld columns.
	Names []string
	// Env and Bld index Names per sample.
	Env, Bld []uint16
	// Imp is the Impairment per sample; Label the ground-truth Action.
	Imp, Label []uint8
	// Pos is the position ID per sample.
	Pos []int32
	// InitMCS is the initial-state MCS per sample.
	InitMCS []uint8
	// Feat holds the feature columns in Table 3 order.
	Feat [NumFeatures][]float64
	// Scalar SNR/throughput columns, one value per sample.
	InitSNR, NewSNRInit, NewSNRBest []float64
	InitTh, ThRA, ThBA              []float64
	// InitBeamTh[m] and BestBeamTh[m] are the per-MCS replay-table columns.
	InitBeamTh, BestBeamTh [phy.NumMCS][]float64

	nameIdx map[string]uint16
}

// colPool recycles per-spec stores: generation borrows one per spec, the
// merge copies its columns out, and the store returns here with capacity
// intact — so steady-state campaign generation reuses the same column chunks
// instead of growing fresh ones per spec.
var colPool = sync.Pool{New: func() any { return new(ColumnStore) }}

// newColumnStore returns an empty store, reusing pooled column capacity.
func newColumnStore() *ColumnStore {
	s := colPool.Get().(*ColumnStore)
	s.reset()
	return s
}

// free returns a store's column chunks to the pool. The caller must not
// touch the store afterwards.
func (s *ColumnStore) free() { colPool.Put(s) }

// reset truncates every column, keeping backing capacity.
func (s *ColumnStore) reset() {
	s.Names = s.Names[:0]
	s.Env = s.Env[:0]
	s.Bld = s.Bld[:0]
	s.Imp = s.Imp[:0]
	s.Label = s.Label[:0]
	s.Pos = s.Pos[:0]
	s.InitMCS = s.InitMCS[:0]
	for f := range s.Feat {
		s.Feat[f] = s.Feat[f][:0]
	}
	s.InitSNR = s.InitSNR[:0]
	s.NewSNRInit = s.NewSNRInit[:0]
	s.NewSNRBest = s.NewSNRBest[:0]
	s.InitTh = s.InitTh[:0]
	s.ThRA = s.ThRA[:0]
	s.ThBA = s.ThBA[:0]
	for m := range s.InitBeamTh {
		s.InitBeamTh[m] = s.InitBeamTh[m][:0]
		s.BestBeamTh[m] = s.BestBeamTh[m][:0]
	}
	for k := range s.nameIdx {
		delete(s.nameIdx, k)
	}
}

// Len returns the number of samples in the store.
func (s *ColumnStore) Len() int { return len(s.Imp) }

// intern returns the dictionary index of name, adding it on first use.
func (s *ColumnStore) intern(name string) uint16 {
	if s.nameIdx == nil {
		s.nameIdx = map[string]uint16{}
	}
	if i, ok := s.nameIdx[name]; ok {
		return i
	}
	i := uint16(len(s.Names))
	s.Names = append(s.Names, name)
	s.nameIdx[name] = i
	return i
}

// appendEntry pushes one sample's fields onto the columns.
func (s *ColumnStore) appendEntry(e *Entry) {
	s.Env = append(s.Env, s.intern(e.Env))
	s.Bld = append(s.Bld, s.intern(e.Building))
	s.Imp = append(s.Imp, uint8(e.Impairment))
	s.Label = append(s.Label, uint8(e.Label))
	s.Pos = append(s.Pos, int32(e.PosID))
	s.InitMCS = append(s.InitMCS, uint8(e.InitMCS))
	for f := 0; f < NumFeatures; f++ {
		s.Feat[f] = append(s.Feat[f], e.Features[f])
	}
	s.InitSNR = append(s.InitSNR, e.InitSNRdB)
	s.NewSNRInit = append(s.NewSNRInit, e.NewSNRInitPair)
	s.NewSNRBest = append(s.NewSNRBest, e.NewSNRBestPair)
	s.InitTh = append(s.InitTh, e.InitThBps)
	s.ThRA = append(s.ThRA, e.ThRABps)
	s.ThBA = append(s.ThBA, e.ThBABps)
	for m := 0; m < phy.NumMCS; m++ {
		s.InitBeamTh[m] = append(s.InitBeamTh[m], e.InitBeamTh[m])
		s.BestBeamTh[m] = append(s.BestBeamTh[m], e.BestBeamTh[m])
	}
}

// writeEntry reconstructs sample i into e. The round trip through
// appendEntry/writeEntry is exact: every float keeps its bit pattern, every
// enum its value.
func (s *ColumnStore) writeEntry(i int, e *Entry) {
	e.Env = s.Names[s.Env[i]]
	e.Building = s.Names[s.Bld[i]]
	e.Impairment = Impairment(s.Imp[i])
	e.Label = Action(s.Label[i])
	e.PosID = int(s.Pos[i])
	e.InitMCS = phy.MCS(s.InitMCS[i])
	for f := 0; f < NumFeatures; f++ {
		e.Features[f] = s.Feat[f][i]
	}
	e.InitSNRdB = s.InitSNR[i]
	e.NewSNRInitPair = s.NewSNRInit[i]
	e.NewSNRBestPair = s.NewSNRBest[i]
	e.InitThBps = s.InitTh[i]
	e.ThRABps = s.ThRA[i]
	e.ThBABps = s.ThBA[i]
	for m := 0; m < phy.NumMCS; m++ {
		e.InitBeamTh[m] = s.InitBeamTh[m][i]
		e.BestBeamTh[m] = s.BestBeamTh[m][i]
	}
}

// appendStore concatenates t's samples onto s, remapping t's dictionary
// indices into s's dictionary. Sample order is preserved — the merge in
// generateCtx calls this in spec order, so the concatenated store is
// identical for any worker count.
func (s *ColumnStore) appendStore(t *ColumnStore) {
	remap := make([]uint16, len(t.Names))
	for i, name := range t.Names {
		remap[i] = s.intern(name)
	}
	for _, v := range t.Env {
		s.Env = append(s.Env, remap[v])
	}
	for _, v := range t.Bld {
		s.Bld = append(s.Bld, remap[v])
	}
	s.Imp = append(s.Imp, t.Imp...)
	s.Label = append(s.Label, t.Label...)
	s.Pos = append(s.Pos, t.Pos...)
	s.InitMCS = append(s.InitMCS, t.InitMCS...)
	for f := 0; f < NumFeatures; f++ {
		s.Feat[f] = append(s.Feat[f], t.Feat[f]...)
	}
	s.InitSNR = append(s.InitSNR, t.InitSNR...)
	s.NewSNRInit = append(s.NewSNRInit, t.NewSNRInit...)
	s.NewSNRBest = append(s.NewSNRBest, t.NewSNRBest...)
	s.InitTh = append(s.InitTh, t.InitTh...)
	s.ThRA = append(s.ThRA, t.ThRA...)
	s.ThBA = append(s.ThBA, t.ThBA...)
	for m := 0; m < phy.NumMCS; m++ {
		s.InitBeamTh[m] = append(s.InitBeamTh[m], t.InitBeamTh[m]...)
		s.BestBeamTh[m] = append(s.BestBeamTh[m], t.BestBeamTh[m]...)
	}
}

// materialize builds the campaign's row view from the columns: all entries
// in one slab, one pointer slice on top — two allocations for the whole
// campaign instead of one per entry.
func (s *ColumnStore) materialize() []*Entry {
	n := s.Len()
	slab := make([]Entry, n)
	out := make([]*Entry, n)
	for i := 0; i < n; i++ {
		s.writeEntry(i, &slab[i])
		out[i] = &slab[i]
	}
	return out
}

// Columns returns the campaign's SoA view, building and caching it from the
// entries when the campaign did not come out of the columnar generator (a
// JSON load, a filter). The cache is invalidated by length mismatch only:
// campaign entries are immutable once generated.
func (c *Campaign) Columns() *ColumnStore {
	if c.cols != nil && c.cols.Len() == len(c.Entries) {
		return c.cols
	}
	s := newColumnStore()
	for _, e := range c.Entries {
		s.appendEntry(e)
	}
	c.cols = s
	return s
}
