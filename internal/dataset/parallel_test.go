package dataset

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/libra-wlan/libra/internal/obs"
)

// equalCampaigns reports field-level equality of two campaigns.
func equalCampaigns(t *testing.T, a, b *Campaign) {
	t.Helper()
	if a.Name != b.Name {
		t.Fatalf("names differ: %q vs %q", a.Name, b.Name)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if !reflect.DeepEqual(*a.Entries[i], *b.Entries[i]) {
			t.Fatalf("entry %d differs:\n%+v\nvs\n%+v", i, *a.Entries[i], *b.Entries[i])
		}
	}
	if !reflect.DeepEqual(a.Sites, b.Sites) {
		t.Fatalf("site registries differ")
	}
}

// TestParallelMatchesSequential is the campaign engine's core determinism
// guarantee: the parallel worker pool produces output identical to the
// sequential (single-worker) path, for any worker count, entry by entry and
// field by field.
func TestParallelMatchesSequential(t *testing.T) {
	seqMain := GenerateMainWorkers(42, 1)
	seqTest := GenerateTestWorkers(43, 1)
	for _, workers := range []int{2, 3, 8} {
		equalCampaigns(t, seqMain, GenerateMainWorkers(42, workers))
		equalCampaigns(t, seqTest, GenerateTestWorkers(43, workers))
	}
}

// TestParallelStableAcrossRuns guards against scheduling-dependent output:
// repeated parallel runs must be identical.
func TestParallelStableAcrossRuns(t *testing.T) {
	first := GenerateMainWorkers(42, 4)
	if got := first.Len(); got != 1336 {
		t.Fatalf("main campaign entries = %d, want 1336", got)
	}
	for run := 0; run < 2; run++ {
		equalCampaigns(t, first, GenerateMainWorkers(42, 4))
	}
	firstTest := GenerateTestWorkers(43, 4)
	if got := firstTest.Len(); got != 456 {
		t.Fatalf("test campaign entries = %d, want 456", got)
	}
	equalCampaigns(t, firstTest, GenerateTestWorkers(43, 4))
}

// traceBytes runs the test campaign under a fresh tracer and returns the
// exported trace.
func traceBytes(t *testing.T, workers int) []byte {
	t.Helper()
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)
	GenerateTestWorkers(43, workers)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceWorkerInvariance extends the determinism guarantee to the obs
// layer: the simulation-time trace of a fixed-seed campaign must be
// byte-identical for any worker count, because events are stamped with
// per-generator observation indices rather than anything scheduling-order
// dependent.
func TestTraceWorkerInvariance(t *testing.T) {
	want := traceBytes(t, 1)
	if len(want) == 0 {
		t.Fatal("single-worker campaign produced an empty trace")
	}
	for _, workers := range []int{2, 8} {
		if got := traceBytes(t, workers); !bytes.Equal(got, want) {
			t.Fatalf("trace bytes differ between 1 and %d workers (%d vs %d bytes)",
				workers, len(want), len(got))
		}
	}
}

// TestSpecPositionsMatchesRun pins the position accounting the deterministic
// sharding relies on: specPositions must predict exactly how many position
// IDs generator.run allocates per spec.
func TestSpecPositionsMatchesRun(t *testing.T) {
	for name, specs := range map[string][]*displacementSpec{"main": mainSpecs(), "test": testSpecs()} {
		for i, sp := range specs {
			g := newGenerator(1, "b", "p")
			g.run(sp, int64(i+1)*1000)
			env := sp.envFn().Name
			if got, want := g.posSeq[env], specPositions(sp); got != want {
				t.Errorf("%s spec %d (%s): allocated %d positions, specPositions says %d",
					name, i, env, got, want)
			}
		}
	}
}

// TestGenerateContextCanceled covers the cooperative-cancellation contract:
// a pre-canceled context yields no campaign and the context's error, on both
// the sequential and the parallel dispatch paths.
func TestGenerateContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		camp, err := generateCtx(ctx, 43, "test", "testing", testSpecs(),
			func(i int) int64 { return 43 + int64(i+7)*2000 }, workers)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if camp != nil {
			t.Errorf("workers=%d: got a partial campaign on cancellation", workers)
		}
	}
	if _, err := GenerateTestContext(ctx, 43); !errors.Is(err, context.Canceled) {
		t.Errorf("GenerateTestContext err = %v, want context.Canceled", err)
	}
	if _, err := GenerateMainContext(ctx, 42); !errors.Is(err, context.Canceled) {
		t.Errorf("GenerateMainContext err = %v, want context.Canceled", err)
	}
}

// TestGenerateContextMatchesPlain: a context run that completes is
// byte-identical to the plain entry point for the same seed.
func TestGenerateContextMatchesPlain(t *testing.T) {
	got, err := GenerateTestContext(context.Background(), 43)
	if err != nil {
		t.Fatal(err)
	}
	equalCampaigns(t, GenerateTest(43), got)
}
