package dataset

import "github.com/libra-wlan/libra/internal/obs"

// Campaign-engine metrics (wall-clock side: pool occupancy and volume) plus
// the per-spec trace streams wired in generate(). Trace events carry only the
// per-generator observation index as their frame stamp, so the merged trace
// is byte-identical for every worker count.
var (
	obsCampWorkers = obs.NewGauge("libra_dataset_campaign_workers_active",
		"campaign worker-pool occupancy (max tracks peak)")
	obsCampSpecs = obs.NewCounter("libra_dataset_campaign_specs_total",
		"displacement specs executed")
	obsCampEntries = obs.NewCounter("libra_dataset_campaign_entries_total",
		"labeled entries generated (including NA augmentation twins)")
	obsLDSChunks = obs.NewCounter("libra_dataset_lds_chunks_written_total",
		"libra-ds column chunks encoded and written")
	obsLDSBytes = obs.NewCounter("libra_dataset_lds_bytes_written_total",
		"libra-ds bytes written (frames, payloads, footer, trailer)")
	obsLDSChunksRead = obs.NewCounter("libra_dataset_lds_chunks_read_total",
		"libra-ds column chunks verified and decoded")
)
