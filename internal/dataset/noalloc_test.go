package dataset

import (
	"math/rand"
	"testing"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/testutil"
)

// TestPerturbIntoNoalloc is the runtime half of perturbInto's //lint:noalloc
// contract: with out's PDP backing warm, a drift draw must cost zero
// allocations — it runs once per entry in the campaign inner loop.
func TestPerturbIntoNoalloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	m := &channel.Measurement{
		RSSdBm:   -58,
		NoiseDBm: -82,
		SNRdB:    24,
		ToFNs:    13.7,
		PDP:      make([]float64, channel.PDPTaps),
	}
	for i := 0; i < len(m.PDP); i += 3 {
		m.PDP[i] = 1e-6 / float64(i+1)
	}
	rng := rand.New(rand.NewSource(11))
	var out channel.Measurement
	avg := testing.AllocsPerRun(100, func() {
		perturbInto(&out, m, defaultDrift, rng)
	})
	if avg != 0 {
		t.Errorf("perturbInto allocates %v per run, want 0 (//lint:noalloc)", avg)
	}
}
