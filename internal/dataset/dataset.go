// Package dataset emulates the paper's measurement campaign (§4-§5): it
// drives the channel simulator through the displacement, blockage, and
// interference scenarios of Appendix A.2 in every environment, performs the
// exhaustive 25x25 sector level sweep at each state, logs PHY traces for the
// relevant beam pairs, and derives per-entry features and ground-truth
// labels exactly as §5 defines them.
//
// Feature vector (in the order of Table 3):
//
//	0 SNR difference   (initial - current, dB)
//	1 ToF difference   (initial - current, ns; +InfCode when unmeasurable)
//	2 Noise difference (current - initial, dB)
//	3 PDP similarity   (Pearson correlation of the two PDPs)
//	4 CSI similarity   (Pearson correlation of the FFT'd PDPs)
//	5 CDR              (at the current state, initial beam pair and MCS)
//	6 Initial MCS
//
// Ground truth (§5.2): with Th(RA) the best throughput over MCSs <= the
// initial MCS on the initial beam pair, and Th(BA) the best throughput over
// MCSs <= the initial MCS on the new best-SNR beam pair (BA is always
// followed by RA), the label is RA when Th(RA) >= Th(BA) and BA otherwise.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/ml"
	"github.com/libra-wlan/libra/internal/phy"
)

// Impairment is the type of link impairment of a dataset entry.
type Impairment int

// Impairment kinds (Table 1 rows).
const (
	Displacement Impairment = iota
	Blockage
	Interference
	NoImpairment // NA augmentation entries (§7)
)

// String returns the impairment name.
func (im Impairment) String() string {
	switch im {
	case Displacement:
		return "displacement"
	case Blockage:
		return "blockage"
	case Interference:
		return "interference"
	default:
		return "none"
	}
}

// Action is the adaptation mechanism label.
type Action int

// Label classes. The two-class problem uses BA/RA; the three-class problem
// of §7 adds NA (no adaptation).
const (
	ActBA Action = iota
	ActRA
	ActNA
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case ActBA:
		return "BA"
	case ActRA:
		return "RA"
	default:
		return "NA"
	}
}

// NumFeatures is the feature dimensionality.
const NumFeatures = 7

// FeatureNames names the features in Table 3 order.
var FeatureNames = []string{"SNR", "ToF", "NoiseLevel", "PDP", "CSI", "CDR", "InitialMCS"}

// ToFInfCode encodes an unmeasurable ToF difference (X60 reports ToF as
// infinity under extremely weak signal).
const ToFInfCode = 25.0

// tofClamp bounds the finite ToF-difference feature (Fig. 5 plots -20..20 ns).
const tofClamp = 20.0

// Entry is one labeled dataset sample plus the per-MCS throughput tables the
// trace-driven simulator replays (§8).
type Entry struct {
	// Env names the environment the entry was collected in.
	Env string
	// Building distinguishes the main campaign ("main") from the transfer
	// test buildings ("b1"/"b2").
	Building string
	// Impairment is the scenario type.
	Impairment Impairment
	// PosID identifies the measurement position within the environment.
	PosID int

	// Features is the 7-dimensional feature vector.
	Features [NumFeatures]float64
	// InitMCS is the best MCS at the initial state.
	InitMCS phy.MCS
	// Label is the ground-truth action (ActBA or ActRA; ActNA for
	// augmentation entries).
	Label Action

	// InitSNRdB is the SNR at the initial state on its best pair.
	InitSNRdB float64
	// NewSNRInitPair and NewSNRBestPair are the SNRs at the new state on
	// the initial and new best beam pairs.
	NewSNRInitPair, NewSNRBestPair float64

	// InitThBps is the throughput at the initial state at InitMCS.
	InitThBps float64
	// ThRABps and ThBABps are the §5.2 ground-truth throughputs.
	ThRABps, ThBABps float64

	// InitBeamTh[m] is the expected throughput of MCS m at the new state
	// on the initial beam pair; BestBeamTh[m] likewise on the new best
	// pair. The policy simulator replays these.
	InitBeamTh, BestBeamTh [phy.NumMCS]float64
}

// FeatureSlice returns the features as a fresh []float64 for the ml package.
func (e *Entry) FeatureSlice() []float64 {
	out := make([]float64, NumFeatures)
	copy(out, e.Features[:])
	return out
}

// Dataset is a labeled collection of entries.
type Dataset struct {
	// Name labels the dataset ("main", "testing").
	Name string
	// Entries holds the samples.
	Entries []*Entry
}

// Len returns the number of entries.
func (d *Dataset) Len() int { return len(d.Entries) }

// Filter returns the entries matching the impairment type.
func (d *Dataset) Filter(im Impairment) []*Entry {
	var out []*Entry
	for _, e := range d.Entries {
		if e.Impairment == im {
			out = append(out, e)
		}
	}
	return out
}

// ToML converts to an ml.Dataset. With threeClass false, NA entries are
// skipped and labels are {BA=0, RA=1}; with threeClass true, NA entries are
// included as class 2. The feature matrix is built as one contiguous
// row-major block plus a column-major mirror attached via SetColumns, so the
// tree builder's presort reads contiguous columns — constant allocations for
// the whole conversion instead of one per row.
func (d *Dataset) ToML(threeClass bool) *ml.Dataset {
	out := &ml.Dataset{
		FeatureNames: FeatureNames,
		ClassNames:   []string{"BA", "RA"},
	}
	if threeClass {
		out.ClassNames = []string{"BA", "RA", "NA"}
	}
	n := 0
	for _, e := range d.Entries {
		if e.Label == ActNA && !threeClass {
			continue
		}
		n++
	}
	block := make([]float64, n*NumFeatures)
	out.X = make([][]float64, n)
	out.Y = make([]int, n)
	i := 0
	for _, e := range d.Entries {
		if e.Label == ActNA && !threeClass {
			continue
		}
		row := block[i*NumFeatures : (i+1)*NumFeatures : (i+1)*NumFeatures]
		copy(row, e.Features[:])
		out.X[i] = row
		out.Y[i] = int(e.Label)
		i++
	}
	colBlock := make([]float64, n*NumFeatures)
	cols := make([][]float64, NumFeatures)
	for f := 0; f < NumFeatures; f++ {
		col := colBlock[f*n : (f+1)*n : (f+1)*n]
		for j := 0; j < n; j++ {
			col[j] = out.X[j][f]
		}
		cols[f] = col
	}
	out.SetColumns(cols)
	return out
}

// CountLabels returns the number of BA, RA, and NA entries for one
// impairment type (Table 1/2 columns). Pass im < 0 for all types.
func (d *Dataset) CountLabels(im Impairment) (ba, ra, na int) {
	for _, e := range d.Entries {
		if im >= 0 && e.Impairment != im {
			continue
		}
		switch e.Label {
		case ActBA:
			ba++
		case ActRA:
			ra++
		default:
			na++
		}
	}
	return ba, ra, na
}

// Positions returns the number of distinct (environment, position) sites for
// one impairment type, optionally restricted to one environment name prefix.
func (d *Dataset) Positions(im Impairment, envPrefix string) int {
	seen := map[string]bool{}
	for _, e := range d.Entries {
		if im >= 0 && e.Impairment != im {
			continue
		}
		if e.Impairment == NoImpairment {
			continue
		}
		if envPrefix != "" && !hasPrefix(e.Env, envPrefix) {
			continue
		}
		seen[fmt.Sprintf("%s/%d", e.Env, e.PosID)] = true
	}
	return len(seen)
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// drift models slow environmental dynamics between the two 1-second
// observation windows of an entry: small SNR wander, larger noise-floor
// wander (the paper notes X60 noise readings span a large range even without
// interference), and per-tap PDP scintillation.
type drift struct {
	snrSigma   float64
	noiseSigma float64
	pdpSigma   float64
}

var defaultDrift = drift{snrSigma: 0.4, noiseSigma: 1.0, pdpSigma: 0.15}

// perturbInto writes a drifted copy of m into out, reusing out's PDP backing
// when it is large enough. The RNG draw order — SNR, noise, then one draw per
// strictly positive tap — is the contract the campaign digests pin; it must
// match perturb's historic order exactly. out must not alias m.
//
//lint:noalloc campaign inner loop; the PDP backing is caller-recycled
func perturbInto(out, m *channel.Measurement, d drift, rng *rand.Rand) {
	pdp := out.PDP
	*out = *m
	if cap(pdp) < len(m.PDP) {
		pdp = make([]float64, len(m.PDP))
	} else {
		pdp = pdp[:len(m.PDP)]
	}
	out.PDP = pdp
	out.SNRdB += rng.NormFloat64() * d.snrSigma
	out.NoiseDBm += rng.NormFloat64() * d.noiseSigma
	for i, v := range m.PDP {
		if v > 0 {
			pdp[i] = v * math.Exp(rng.NormFloat64()*d.pdpSigma)
		} else {
			pdp[i] = 0
		}
	}
	// ToF quantization to the 0.5 ns delay resolution.
	if !math.IsInf(out.ToFNs, 1) {
		out.ToFNs = math.Round(out.ToFNs/channel.PDPBinNs) * channel.PDPBinNs
	}
}

// perturb returns a drifted copy of a measurement.
func perturb(m channel.Measurement, d drift, rng *rand.Rand) channel.Measurement {
	var out channel.Measurement
	perturbInto(&out, &m, d, rng)
	return out
}

// Featurize computes the 7-feature vector from the initial- and new-state
// measurements on the initial best beam pair, at the initial MCS, drawing
// the observed CDR from the codeword error process.
func Featurize(initM, newM channel.Measurement, initMCS phy.MCS, rng *rand.Rand) [NumFeatures]float64 {
	return FeaturizeObserved(initM, newM, phy.SampleCDR(initMCS, newM.SNRdB, rng), initMCS)
}

// csiPool recycles CSI spectrum buffers across FeaturizeObserved calls, so
// the two FFT-PDP transforms per entry do not allocate on the campaign hot
// path.
var csiPool = sync.Pool{New: func() any { return new([]float64) }}

// FeaturizeObserved computes the 7-feature vector with a directly observed
// CDR — the online path, where LiBRA reads the CDR off the last frames
// instead of re-deriving it from SNR.
func FeaturizeObserved(initM, newM channel.Measurement, cdr float64, initMCS phy.MCS) [NumFeatures]float64 {
	var f [NumFeatures]float64
	f[0] = initM.SNRdB - newM.SNRdB
	switch {
	case math.IsInf(newM.ToFNs, 1) || math.IsInf(initM.ToFNs, 1):
		f[1] = ToFInfCode
	default:
		diff := initM.ToFNs - newM.ToFNs
		if diff > tofClamp {
			diff = tofClamp
		} else if diff < -tofClamp {
			diff = -tofClamp
		}
		f[1] = diff
	}
	f[2] = newM.NoiseDBm - initM.NoiseDBm
	f[3] = dsp.Pearson(initM.PDP, newM.PDP)
	ca := csiPool.Get().(*[]float64)
	cb := csiPool.Get().(*[]float64)
	*ca = initM.CSIInto(*ca)
	*cb = newM.CSIInto(*cb)
	f[4] = dsp.Pearson(*ca, *cb)
	csiPool.Put(ca)
	csiPool.Put(cb)
	f[5] = cdr
	f[6] = float64(initMCS)
	return f
}

// labelEps absorbs knife-edge throughput differences: the paper's ground
// truth compares measured 1-second throughput averages, where differences
// within ~10% are inside the run-to-run variation of an X60 trace. RA wins ties (§5.2: "perform RA when
// Th(RA) >= Th(BA)").
const labelEps = 0.10

// groundTruth computes the §5.2 label and throughput tables from the SNRs at
// the new state.
func groundTruth(e *Entry) {
	for m := phy.MinMCS; m <= phy.MaxMCS; m++ {
		e.InitBeamTh[m] = phy.ExpectedThroughput(m, e.NewSNRInitPair)
		e.BestBeamTh[m] = phy.ExpectedThroughput(m, e.NewSNRBestPair)
	}
	_, e.ThRABps = phy.BestMCSBelow(e.NewSNRInitPair, e.InitMCS)
	_, e.ThBABps = phy.BestMCSBelow(e.NewSNRBestPair, e.InitMCS)
	if e.ThRABps >= e.ThBABps*(1-labelEps) {
		e.Label = ActRA
	} else {
		e.Label = ActBA
	}
}
