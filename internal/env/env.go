// Package env defines the indoor measurement environments of the paper
// (Appendix A.2): the campus-building lobby, lab, conference room, and three
// corridors used for the main/training dataset, plus the old-building
// corridor (Building 1) and the large open area (Building 2) used for the
// testing dataset. Each environment is a 2-D polygonal floor plan whose walls
// carry a material that determines per-bounce reflection loss at 60 GHz.
package env

import (
	"fmt"

	"github.com/libra-wlan/libra/internal/geom"
)

// Material describes the 60 GHz reflective behaviour of a surface.
type Material struct {
	// Name identifies the material.
	Name string
	// ReflLossDB is the power loss (dB) a ray suffers on one specular
	// reflection off this surface. Metal reflects almost perfectly; old
	// brick absorbs heavily.
	ReflLossDB float64
}

// Reference materials, with reflection losses in line with published 60 GHz
// indoor measurements (metal ~1-3 dB, glass ~7-9 dB, drywall ~9-12 dB,
// old plaster/brick ~14-18 dB).
var (
	Metal      = Material{Name: "metal", ReflLossDB: 1.5}
	Glass      = Material{Name: "glass", ReflLossDB: 5}
	Drywall    = Material{Name: "drywall", ReflLossDB: 6.5}
	Whiteboard = Material{Name: "whiteboard", ReflLossDB: 3}
	Concrete   = Material{Name: "concrete", ReflLossDB: 8}
	OldPlaster = Material{Name: "old-plaster", ReflLossDB: 12}
	Furniture  = Material{Name: "furniture", ReflLossDB: 8}
)

// Wall is one reflective surface in a floor plan.
type Wall struct {
	Seg geom.Segment
	Mat Material
}

// Environment is a named floor plan.
type Environment struct {
	// Name identifies the environment ("lobby", "lab", ...).
	Name string
	// Walls are the reflective surfaces. They also occlude rays.
	Walls []Wall
	// Width and Height are the bounding-box extents in meters, for
	// placement sanity checks.
	Width, Height float64
}

// Contains reports whether p lies inside the environment bounding box, with
// a small margin.
func (e *Environment) Contains(p geom.Vec) bool {
	const m = 0.05
	return p.X >= -m && p.X <= e.Width+m && p.Y >= -m && p.Y <= e.Height+m
}

// String returns the environment name.
func (e *Environment) String() string { return e.Name }

// rect builds the four walls of an axis-aligned rectangle (0,0)-(w,h), with
// per-side materials: south (y=0), east (x=w), north (y=h), west (x=0).
func rect(w, h float64, south, east, north, west Material) []Wall {
	return []Wall{
		{Seg: geom.Seg(geom.V(0, 0), geom.V(w, 0)), Mat: south},
		{Seg: geom.Seg(geom.V(w, 0), geom.V(w, h)), Mat: east},
		{Seg: geom.Seg(geom.V(w, h), geom.V(0, h)), Mat: north},
		{Seg: geom.Seg(geom.V(0, h), geom.V(0, 0)), Mat: west},
	}
}

// Lobby returns the campus-building lobby: a large open space with glass
// panels and metallic sheets covering one long side and a wall on the other
// (Appendix A.2.1, Fig. 14a).
func Lobby() *Environment {
	w, h := 20.0, 12.0
	e := &Environment{Name: "lobby", Width: w, Height: h}
	// South side: lower half metallic sheets, upper half glass. In 2-D at
	// antenna height (1.4 m) the mix is modeled by alternating panels.
	for i := 0; i < 5; i++ {
		x0 := float64(i) * w / 5
		x1 := x0 + w/5
		m := Glass
		if i%2 == 0 {
			m = Metal
		}
		e.Walls = append(e.Walls, Wall{Seg: geom.Seg(geom.V(x0, 0), geom.V(x1, 0)), Mat: m})
	}
	e.Walls = append(e.Walls,
		Wall{Seg: geom.Seg(geom.V(w, 0), geom.V(w, h)), Mat: Drywall},
		Wall{Seg: geom.Seg(geom.V(w, h), geom.V(0, h)), Mat: Drywall},
		Wall{Seg: geom.Seg(geom.V(0, h), geom.V(0, 0)), Mat: Drywall},
	)
	// Two structural pillars (Fig. 14a), modeled as small concrete boxes.
	e.Walls = append(e.Walls, pillar(6, 6, 0.5)...)
	e.Walls = append(e.Walls, pillar(13, 6, 0.5)...)
	return e
}

// pillar builds a small square obstacle of side s centered at (cx, cy).
func pillar(cx, cy, s float64) []Wall {
	h := s / 2
	c := []geom.Vec{
		geom.V(cx-h, cy-h), geom.V(cx+h, cy-h),
		geom.V(cx+h, cy+h), geom.V(cx-h, cy+h),
	}
	var walls []Wall
	for i := 0; i < 4; i++ {
		walls = append(walls, Wall{Seg: geom.Seg(c[i], c[(i+1)%4]), Mat: Concrete})
	}
	return walls
}

// Lab returns the 11.8 x 9.2 m lab with rows of desks surrounded by metallic
// storage cabinets and whiteboards (Appendix A.2.1, Fig. 14b).
func Lab() *Environment {
	w, h := 11.8, 9.2
	e := &Environment{Name: "lab", Width: w, Height: h}
	e.Walls = rect(w, h, Drywall, Metal, Whiteboard, Metal)
	// Four rows of desks with metal cabinets: reflective strips across the
	// room. Desks are below antenna height in the paper's setup (Tx raised
	// to 2.05 m), so only the taller cabinet end-caps enter the 2-D plan.
	for i := 0; i < 4; i++ {
		y := 1.8 + float64(i)*1.8
		e.Walls = append(e.Walls, Wall{Seg: geom.Seg(geom.V(1.0, y), geom.V(2.2, y)), Mat: Metal})
		e.Walls = append(e.Walls, Wall{Seg: geom.Seg(geom.V(w-2.2, y), geom.V(w-1.0, y)), Mat: Metal})
	}
	return e
}

// ConferenceRoom returns the 10.4 x 6.8 m conference room with a whiteboard
// wall, metallic cabinets, and a large central desk (Appendix A.2.1,
// Fig. 14c).
func ConferenceRoom() *Environment {
	w, h := 10.4, 6.8
	e := &Environment{Name: "conference", Width: w, Height: h}
	e.Walls = rect(w, h, Drywall, Drywall, Whiteboard, Metal)
	// Central table: furniture-grade reflector (chairs and table edge
	// scatter at antenna height).
	e.Walls = append(e.Walls,
		Wall{Seg: geom.Seg(geom.V(3.2, 2.6), geom.V(7.2, 2.6)), Mat: Furniture},
		Wall{Seg: geom.Seg(geom.V(3.2, 4.2), geom.V(7.2, 4.2)), Mat: Furniture},
	)
	return e
}

// Corridor returns one of the campus-building corridors. width must be one
// of the measured widths (1.74, 3.2, 6.2 m); any positive value is accepted
// so tests can explore other geometries. Corridor walls are drywall with
// metallic door frames providing strong reflectors.
func Corridor(width float64, length float64) *Environment {
	e := &Environment{
		Name:   fmt.Sprintf("corridor-%.2fm", width),
		Width:  length,
		Height: width,
	}
	e.Walls = rect(length, width, Drywall, Drywall, Drywall, Drywall)
	// Metallic door frames every ~4 m along both side walls.
	for x := 3.0; x+1 <= length; x += 4 {
		e.Walls = append(e.Walls, Wall{Seg: geom.Seg(geom.V(x, 0), geom.V(x+1.0, 0)), Mat: Metal})
		if x+3 <= length {
			e.Walls = append(e.Walls, Wall{Seg: geom.Seg(geom.V(x+2.0, width), geom.V(x+3.0, width)), Mat: Metal})
		}
	}
	return e
}

// NarrowCorridor, MediumCorridor, and WideCorridor return the three measured
// campus corridors (widths 1.74 m, 3.2 m, 6.2 m; §4.2).
func NarrowCorridor() *Environment { return Corridor(1.74, 25) }

// MediumCorridor returns the 3.2 m wide corridor.
func MediumCorridor() *Environment { return Corridor(3.2, 18) }

// WideCorridor returns the 6.2 m wide corridor.
func WideCorridor() *Environment { return Corridor(6.2, 18) }

// Building1 returns the testing-dataset corridor in the older building: a
// long 2.5 m wide corridor with old, absorptive walls and fewer reflective
// surfaces (§6.2).
func Building1() *Environment {
	w, length := 2.5, 30.0
	e := &Environment{Name: "building1-corridor", Width: length, Height: w}
	e.Walls = rect(length, w, OldPlaster, OldPlaster, OldPlaster, OldPlaster)
	return e
}

// Building2 returns the testing-dataset open area in the second building,
// much larger than the lobby (§6.2).
func Building2() *Environment {
	w, h := 30.0, 18.0
	e := &Environment{Name: "building2-openarea", Width: w, Height: h}
	e.Walls = rect(w, h, Glass, Drywall, Concrete, Drywall)
	e.Walls = append(e.Walls, pillar(10, 9, 0.6)...)
	e.Walls = append(e.Walls, pillar(20, 9, 0.6)...)
	return e
}

// MainEnvironments returns the environments of the main/training dataset
// campaign in the order of Table 1's columns.
func MainEnvironments() []*Environment {
	return []*Environment{
		Lobby(), Lab(), ConferenceRoom(),
		NarrowCorridor(), MediumCorridor(), WideCorridor(),
	}
}

// TestEnvironments returns the environments of the testing dataset
// (Table 2: Buildings 1 and 2).
func TestEnvironments() []*Environment {
	return []*Environment{Building1(), Building2()}
}
