package env

import (
	"math"
	"testing"

	"github.com/libra-wlan/libra/internal/geom"
)

func TestAllEnvironmentsWellFormed(t *testing.T) {
	for _, e := range append(MainEnvironments(), TestEnvironments()...) {
		if e.Name == "" {
			t.Error("environment without a name")
		}
		if e.Width <= 0 || e.Height <= 0 {
			t.Errorf("%s: bad extents %v x %v", e.Name, e.Width, e.Height)
		}
		if len(e.Walls) < 4 {
			t.Errorf("%s: only %d walls", e.Name, len(e.Walls))
		}
		for i, w := range e.Walls {
			if w.Seg.Len() <= 0 {
				t.Errorf("%s wall %d: zero length", e.Name, i)
			}
			if w.Mat.Name == "" || w.Mat.ReflLossDB < 0 {
				t.Errorf("%s wall %d: bad material %+v", e.Name, i, w.Mat)
			}
		}
	}
}

func TestEnvironmentDimensions(t *testing.T) {
	cases := []struct {
		e    *Environment
		w, h float64
	}{
		{Lab(), 11.8, 9.2},
		{ConferenceRoom(), 10.4, 6.8},
		{NarrowCorridor(), 25, 1.74},
		{Building1(), 30, 2.5},
	}
	for _, c := range cases {
		if c.e.Width != c.w || c.e.Height != c.h {
			t.Errorf("%s: %v x %v, want %v x %v", c.e.Name, c.e.Width, c.e.Height, c.w, c.h)
		}
	}
}

func TestCorridorWidths(t *testing.T) {
	// The three measured corridor widths of §4.2.
	if NarrowCorridor().Height != 1.74 {
		t.Error("narrow corridor width")
	}
	if MediumCorridor().Height != 3.2 {
		t.Error("medium corridor width")
	}
	if WideCorridor().Height != 6.2 {
		t.Error("wide corridor width")
	}
}

func TestWallsWithinBounds(t *testing.T) {
	for _, e := range append(MainEnvironments(), TestEnvironments()...) {
		for i, w := range e.Walls {
			for _, p := range []geom.Vec{w.Seg.A, w.Seg.B} {
				if p.X < -1e-9 || p.X > e.Width+1e-9 || p.Y < -1e-9 || p.Y > e.Height+1e-9 {
					t.Errorf("%s wall %d endpoint %v outside %vx%v", e.Name, i, p, e.Width, e.Height)
				}
			}
		}
	}
}

func TestPerimeterClosed(t *testing.T) {
	// Every environment must enclose its area: for a probe point inside,
	// rays toward the 4 cardinal directions must each cross some wall.
	for _, e := range append(MainEnvironments(), TestEnvironments()...) {
		c := geom.V(e.Width/2+0.13, e.Height/2+0.07)
		dirs := []geom.Vec{geom.V(1, 0), geom.V(-1, 0), geom.V(0, 1), geom.V(0, -1)}
		for _, d := range dirs {
			ray := geom.Seg(c, c.Add(d.Scale(e.Width+e.Height)))
			hit := false
			for _, w := range e.Walls {
				if _, ok := ray.Intersect(w.Seg); ok {
					hit = true
					break
				}
			}
			if !hit {
				t.Errorf("%s: open perimeter toward %v", e.Name, d)
			}
		}
	}
}

func TestContains(t *testing.T) {
	e := Lab()
	if !e.Contains(geom.V(5, 5)) {
		t.Error("interior point not contained")
	}
	if e.Contains(geom.V(-1, 5)) || e.Contains(geom.V(5, 20)) {
		t.Error("exterior point contained")
	}
}

func TestMaterialOrdering(t *testing.T) {
	// Metal reflects best; old plaster worst — the contrast that makes
	// Building 1 a hard transfer target (§6.2).
	if !(Metal.ReflLossDB < Glass.ReflLossDB &&
		Glass.ReflLossDB < Drywall.ReflLossDB &&
		Drywall.ReflLossDB < OldPlaster.ReflLossDB) {
		t.Error("material reflection losses out of order")
	}
}

func TestBuilding1LessReflective(t *testing.T) {
	// Building 1 is "much older ... with fewer reflective surfaces".
	avg := func(e *Environment) float64 {
		var s float64
		for _, w := range e.Walls {
			s += w.Mat.ReflLossDB
		}
		return s / float64(len(e.Walls))
	}
	if avg(Building1()) <= avg(NarrowCorridor()) {
		t.Error("Building 1 should be less reflective than the campus corridor")
	}
}

func TestLobbyHasPillars(t *testing.T) {
	e := Lobby()
	// 4 rect-ish sides (south is 5 panels) + 2 pillars x 4 walls.
	pillarWalls := 0
	for _, w := range e.Walls {
		if w.Seg.Len() == 0.5 && w.Mat.Name == Concrete.Name {
			pillarWalls++
		}
	}
	if pillarWalls != 8 {
		t.Errorf("pillar walls = %d, want 8", pillarWalls)
	}
}

func TestLobbyMixedPanels(t *testing.T) {
	e := Lobby()
	metal, glass := 0, 0
	for _, w := range e.Walls {
		if math.Abs(w.Seg.A.Y) < 1e-9 && math.Abs(w.Seg.B.Y) < 1e-9 {
			switch w.Mat.Name {
			case Metal.Name:
				metal++
			case Glass.Name:
				glass++
			}
		}
	}
	if metal == 0 || glass == 0 {
		t.Errorf("south side panels: metal=%d glass=%d", metal, glass)
	}
}

func TestEnvironmentsIndependent(t *testing.T) {
	// Each constructor returns a fresh value; mutating one must not
	// affect another.
	a, b := Lab(), Lab()
	a.Walls[0].Mat = Metal
	if b.Walls[0].Mat.Name == Metal.Name && Lab().Walls[0].Mat.Name == Metal.Name {
		t.Error("environment constructors share state")
	}
}

func TestString(t *testing.T) {
	if Lobby().String() != "lobby" {
		t.Errorf("String = %q", Lobby().String())
	}
}
