package vr

import (
	"math"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/sim"
)

func TestVikingVillageShape(t *testing.T) {
	ft := VikingVillage(30*time.Second, 1)
	if ft.FPS != 60 {
		t.Errorf("FPS = %d", ft.FPS)
	}
	if len(ft.Sizes) != 1800 {
		t.Errorf("frames = %d", len(ft.Sizes))
	}
	if d := ft.Duration(); d != 30*time.Second {
		t.Errorf("duration = %v", d)
	}
	// Average demand is ~0.8-1.2 Gbps (paper: "no more than 1.2 Gbps").
	avg := ft.TotalBytes() * 8 / 30
	if avg < 0.7e9 || avg > 1.3e9 {
		t.Errorf("average demand = %v Gbps", avg/1e9)
	}
	for i, s := range ft.Sizes {
		if s <= 0 {
			t.Fatalf("frame %d size %v", i, s)
		}
	}
}

func TestVikingVillageDeterministic(t *testing.T) {
	a := VikingVillage(5*time.Second, 3)
	b := VikingVillage(5*time.Second, 3)
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			t.Fatal("same seed, different trace")
		}
	}
}

func constRate(bps float64, dur time.Duration) []sim.RateInterval {
	return []sim.RateInterval{{Dur: dur, Bps: bps}}
}

func TestPlayAmpleBandwidth(t *testing.T) {
	ft := VikingVillage(10*time.Second, 2)
	res := Play(ft, constRate(10e9, 11*time.Second), 100*time.Millisecond)
	if res.Stalls != 0 || res.TotalStall != 0 {
		t.Errorf("ample bandwidth stalled: %+v", res)
	}
}

func TestPlayInsufficientBandwidth(t *testing.T) {
	ft := VikingVillage(5*time.Second, 2)
	// Half the required rate: playback must stall heavily.
	res := Play(ft, constRate(0.5e9, 20*time.Second), 100*time.Millisecond)
	if res.Stalls == 0 {
		t.Error("starved playback did not stall")
	}
	if res.AvgStall() <= 0 {
		t.Error("no stall duration accumulated")
	}
}

func TestPlayDeadAirStalls(t *testing.T) {
	ft := VikingVillage(2*time.Second, 2)
	// The link barely keeps up before the outage, so no buffer builds up
	// to absorb it.
	rate := []sim.RateInterval{
		{Dur: 500 * time.Millisecond, Bps: 1.05e9},
		{Dur: 400 * time.Millisecond, Bps: 0}, // a 400 ms outage
		{Dur: 3 * time.Second, Bps: 2e9},
	}
	res := Play(ft, rate, 50*time.Millisecond)
	if res.Stalls == 0 {
		t.Error("outage did not stall playback")
	}
	// The outage is 400 ms; total stall cannot exceed it by much.
	if res.TotalStall > 600*time.Millisecond {
		t.Errorf("total stall %v for a 400 ms outage", res.TotalStall)
	}
}

func TestPlayExactArithmetic(t *testing.T) {
	// 10 frames of exactly 1 MB at 60 FPS over an 8 MB/s link: each frame
	// takes 125 ms to deliver but plays every 16.7 ms: playback stalls on
	// every frame after the startup window.
	ft := FrameTrace{FPS: 60, Sizes: make([]float64, 10)}
	for i := range ft.Sizes {
		ft.Sizes[i] = 1e6
	}
	res := Play(ft, constRate(64e6, time.Minute), 0)
	if res.Stalls != 10 {
		t.Errorf("stalls = %d, want 10 (every frame late)", res.Stalls)
	}
	// Frame i arrives at (i+1)*125 ms; deadline is i*16.67+stalls... total
	// stall = arrival(last) - 9 frame periods = 1.25s - 150ms.
	want := 1250*time.Millisecond - 9*(time.Second/60) - 0*time.Millisecond
	if diff := res.TotalStall - want; diff < -5*time.Millisecond || diff > 5*time.Millisecond {
		t.Errorf("total stall = %v, want ~%v", res.TotalStall, want)
	}
}

func TestPlayProfileExhausted(t *testing.T) {
	ft := VikingVillage(10*time.Second, 2)
	// Only 1 second of link time for a 10 s video.
	res := Play(ft, constRate(1.5e9, time.Second), 0)
	if res.Stalls == 0 {
		t.Error("exhausted profile must register a terminal stall")
	}
}

func TestPlayEmpty(t *testing.T) {
	if res := Play(FrameTrace{}, nil, 0); res.Stalls != 0 {
		t.Error("empty trace stalled")
	}
}

func TestAvgStall(t *testing.T) {
	r := PlaybackResult{Stalls: 4, TotalStall: 80 * time.Millisecond}
	if r.AvgStall() != 20*time.Millisecond {
		t.Errorf("AvgStall = %v", r.AvgStall())
	}
	if (PlaybackResult{}).AvgStall() != 0 {
		t.Error("empty AvgStall")
	}
}

func TestScale(t *testing.T) {
	in := []sim.RateInterval{{Dur: time.Second, Bps: 1e9}}
	out := Scale(in, COTSScale)
	if math.Abs(out[0].Bps-1e9*2400/4750) > 1 {
		t.Errorf("scaled = %v", out[0].Bps)
	}
	if out[0].Dur != time.Second {
		t.Error("duration changed")
	}
	// Input untouched.
	if in[0].Bps != 1e9 {
		t.Error("scale mutated input")
	}
}

func TestCOTSScaleValue(t *testing.T) {
	// §8.4: X60 reaches 4.75 Gbps; COTS reach ~2.4 Gbps.
	if math.Abs(COTSScale-2400.0/4750.0) > 1e-12 {
		t.Errorf("COTSScale = %v", COTSScale)
	}
}

func TestStartupAbsorbsJitter(t *testing.T) {
	ft := FrameTrace{FPS: 60, Sizes: []float64{1e6, 1e6, 1e6}}
	// 3 MB at 24 MB/s: all delivered within 125 ms.
	rate := constRate(192e6, time.Second)
	noBuffer := Play(ft, rate, 0)
	buffered := Play(ft, rate, 200*time.Millisecond)
	if buffered.Stalls >= noBuffer.Stalls && noBuffer.Stalls > 0 {
		t.Errorf("startup buffering did not reduce stalls (%d vs %d)", buffered.Stalls, noBuffer.Stalls)
	}
	if buffered.Stalls != 0 {
		t.Errorf("200 ms buffer should absorb all jitter, got %d stalls", buffered.Stalls)
	}
}
