// Package vr models the real-application evaluation of §8.4: streaming a
// 30-second 8K 60-FPS virtual-reality scene (the paper uses the Viking
// Village Unity scene) over a 60 GHz link and measuring playback stalls.
// 8K VR demands up to ~1.2 Gbps; 4K would fit in legacy WiFi and is not
// interesting at 60 GHz (paper footnote 2).
package vr

import (
	"math/rand"
	"time"

	"github.com/libra-wlan/libra/internal/sim"
)

// FrameTrace is a constant-FPS sequence of encoded frame sizes.
type FrameTrace struct {
	// FPS is the frame rate (60 in §8.4).
	FPS int
	// Sizes holds per-frame encoded sizes in bytes.
	Sizes []float64
}

// Duration returns the playback duration of the trace.
func (f *FrameTrace) Duration() time.Duration {
	if f.FPS == 0 {
		return 0
	}
	return time.Duration(float64(len(f.Sizes)) / float64(f.FPS) * float64(time.Second))
}

// TotalBytes returns the sum of frame sizes.
func (f *FrameTrace) TotalBytes() float64 {
	var t float64
	for _, s := range f.Sizes {
		t += s
	}
	return t
}

// VikingVillage synthesizes a frame trace shaped like the paper's scene: 8K
// at 60 FPS with a bandwidth demand that wanders between ~0.8 and 1.2 Gbps
// as the camera trajectory moves through scenes of varying complexity, plus
// periodic I-frame size spikes.
func VikingVillage(dur time.Duration, seed int64) FrameTrace {
	const fps = 60
	rng := rand.New(rand.NewSource(seed))
	n := int(dur.Seconds() * fps)
	ft := FrameTrace{FPS: fps, Sizes: make([]float64, n)}
	bitrate := 1.0e9 // running scene bitrate, bps
	for i := 0; i < n; i++ {
		// Scene complexity random walk, clamped to [0.8, 1.2] Gbps.
		bitrate += rng.NormFloat64() * 8e6
		if bitrate < 0.8e9 {
			bitrate = 0.8e9
		}
		if bitrate > 1.2e9 {
			bitrate = 1.2e9
		}
		size := bitrate / fps / 8
		if i%(fps/2) == 0 {
			size *= 1.8 // I-frame every half second
		} else {
			size *= 0.95
		}
		ft.Sizes[i] = size
	}
	return ft
}

// PlaybackResult summarizes a playback run (Table 4 reports the average
// stall duration in ms and the average number of stalls).
type PlaybackResult struct {
	// Stalls is the number of rebuffering events.
	Stalls int
	// TotalStall is the accumulated stall time.
	TotalStall time.Duration
}

// AvgStall returns the mean stall duration (0 when no stalls occurred).
func (r PlaybackResult) AvgStall() time.Duration {
	if r.Stalls == 0 {
		return 0
	}
	return r.TotalStall / time.Duration(r.Stalls)
}

// COTSScale converts X60-grade throughput (up to 4.75 Gbps) to what COTS
// 802.11ad devices achieve at the same modulation and coding (up to
// ~2.4 Gbps, §8.4).
const COTSScale = 2400.0 / 4750.0

// Scale multiplies every rate interval by f (used with COTSScale).
func Scale(rate []sim.RateInterval, f float64) []sim.RateInterval {
	out := make([]sim.RateInterval, len(rate))
	for i, r := range rate {
		out[i] = sim.RateInterval{Dur: r.Dur, Bps: r.Bps * f}
	}
	return out
}

// Play streams the frame trace over the delivered-rate profile and returns
// the stall statistics. startup is the initial buffering delay before
// playback begins. A frame whose data has not fully arrived by its playout
// time stalls playback until it arrives; playout then resumes shifted.
func Play(ft FrameTrace, rate []sim.RateInterval, startup time.Duration) PlaybackResult {
	var res PlaybackResult
	if ft.FPS == 0 || len(ft.Sizes) == 0 {
		return res
	}
	frameDur := time.Second / time.Duration(ft.FPS)

	// Cumulative delivery curve walker over the rate profile.
	ri := 0
	var usedTime time.Duration // time already consumed of rate[ri]
	var clock time.Duration    // delivery clock

	// deliver advances the clock until `need` more bytes have arrived.
	// It returns false when the rate profile is exhausted.
	deliver := func(need float64) bool {
		for need > 1e-9 {
			if ri >= len(rate) {
				return false
			}
			iv := rate[ri]
			remT := iv.Dur - usedTime
			if remT <= 0 {
				ri++
				usedTime = 0
				continue
			}
			if iv.Bps <= 0 {
				// Dead air (BA overhead): time passes, nothing arrives.
				clock += remT
				ri++
				usedTime = 0
				continue
			}
			avail := iv.Bps / 8 * remT.Seconds()
			if need <= avail {
				dt := time.Duration(need / (iv.Bps / 8) * float64(time.Second))
				clock += dt
				usedTime += dt
				return true
			}
			clock += remT
			need -= avail
			ri++
			usedTime = 0
		}
		return true
	}

	// Every frame that misses its playout deadline counts as one stall of
	// duration (arrival - deadline); playout then resumes shifted. This is
	// the per-frame accounting behind Table 4, where average stall
	// durations sit near one 60 FPS frame period.
	playhead := startup
	for _, size := range ft.Sizes {
		ok := deliver(size)
		arrival := clock
		if !ok {
			// Link profile ended before the frame arrived: one terminal
			// stall for the cutoff.
			res.Stalls++
			res.TotalStall += frameDur
			break
		}
		if arrival > playhead {
			res.Stalls++
			res.TotalStall += arrival - playhead
			playhead = arrival
		}
		playhead += frameDur
	}
	return res
}
