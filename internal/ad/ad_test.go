package ad

import (
	"math"
	"testing"
	"time"
)

func TestSSWFrameTime(t *testing.T) {
	// The canonical figure in the 60 GHz literature is ~15.8 us.
	got := SSWFrameTime()
	if got < 15*time.Microsecond || got > 17*time.Microsecond {
		t.Errorf("SSW frame time = %v", got)
	}
}

func TestSectorsFor(t *testing.T) {
	cases := []struct {
		bw   float64
		want int
	}{
		{30, 12}, {3, 120}, {9, 40}, {7, 52}, {360, 1},
	}
	for _, c := range cases {
		if got := SectorsFor(c.bw); got != c.want {
			t.Errorf("SectorsFor(%v) = %d, want %d", c.bw, got, c.want)
		}
	}
	if SectorsFor(0) != 1 || SectorsFor(-5) != 1 {
		t.Error("degenerate beamwidths")
	}
}

func TestSLSOverheadMatchesPaperParameters(t *testing.T) {
	// §8.1: "we used Eqn. (2) from [24] ... with a 30° beamwidth — used in
	// X60 and most commercial devices today — and a 3° beamwidth — the
	// minimum allowed by 802.11ad" for the 0.5 ms and 5 ms points.
	at30 := SLSOverhead(30)
	if at30 < 300*time.Microsecond || at30 > 700*time.Microsecond {
		t.Errorf("SLS overhead at 30 deg = %v, want ~0.5 ms", at30)
	}
	at3 := SLSOverhead(3)
	if at3 < 3500*time.Microsecond || at3 > 6500*time.Microsecond {
		t.Errorf("SLS overhead at 3 deg = %v, want ~5 ms", at3)
	}
}

func TestExhaustiveOverheadMatchesPaperParameters(t *testing.T) {
	// §8.1: 150 ms and 250 ms from the O(N^2) search with 9°/7° beams
	// (Fig. 11 of Sur et al.).
	at9 := ExhaustiveOverhead(9)
	if at9 < 120*time.Millisecond || at9 > 180*time.Millisecond {
		t.Errorf("exhaustive at 9 deg = %v, want ~150 ms", at9)
	}
	at7 := ExhaustiveOverhead(7)
	if at7 < 220*time.Millisecond || at7 > 280*time.Millisecond {
		t.Errorf("exhaustive at 7 deg = %v, want ~250 ms", at7)
	}
}

func TestOverheadMonotoneInBeamwidth(t *testing.T) {
	// Narrower beams mean more sectors and longer sweeps.
	if SLSOverhead(10) <= SLSOverhead(30) {
		t.Error("SLS overhead not monotone")
	}
	if ExhaustiveOverhead(5) <= ExhaustiveOverhead(10) {
		t.Error("exhaustive overhead not monotone")
	}
}

func TestSCMCSTable(t *testing.T) {
	if len(SCMCSTable) != 12 {
		t.Fatalf("SC MCS count = %d", len(SCMCSTable))
	}
	// §2: rates from 385 to 4620 Mbps.
	if MinSCRateMbps() != 385 || MaxSCRateMbps() != 4620 {
		t.Errorf("rate range %v-%v", MinSCRateMbps(), MaxSCRateMbps())
	}
	prev := 0.0
	for _, m := range SCMCSTable {
		if m.RateMbps <= prev {
			t.Errorf("rates not increasing at MCS %d", m.Index)
		}
		prev = m.RateMbps
		if m.CodeRate <= 0 || m.CodeRate > 1 {
			t.Errorf("MCS %d code rate %v", m.Index, m.CodeRate)
		}
		// Every tabulated rate follows from first principles: symbol rate
		// x bits/symbol x code rate x block factor / repetition.
		if want := m.Rate(); math.Abs(want-m.RateMbps) > 0.01 {
			t.Errorf("MCS %d tabulated %v != derived %v", m.Index, m.RateMbps, want)
		}
	}
}

func TestLookupSC(t *testing.T) {
	m, err := LookupSC(8)
	if err != nil || m.RateMbps != 2310 {
		t.Errorf("LookupSC(8) = %+v, %v", m, err)
	}
	if _, err := LookupSC(0); err == nil {
		t.Error("MCS 0 is control PHY, not a data MCS")
	}
	if _, err := LookupSC(13); err == nil {
		t.Error("MCS 13 accepted")
	}
}

func TestSensitivityMonotone(t *testing.T) {
	// Higher MCSs need stronger signals (within same-modulation groups the
	// standard's table is monotone overall).
	if SCMCSTable[0].SensitivityDBm >= SCMCSTable[len(SCMCSTable)-1].SensitivityDBm {
		t.Error("sensitivity should rise with MCS")
	}
}

func TestSFER(t *testing.T) {
	if got := SFER(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("SFER = %v", got)
	}
	if SFER(0, 0) != 0 {
		t.Error("empty SFER")
	}
	if SFER(0, 10) != 1 {
		t.Error("total loss SFER")
	}
}
