// Package ad encodes the IEEE 802.11ad MAC/PHY constants and beam-training
// overhead models behind the paper's evaluation parameters (§8.1):
//
//   - the single-carrier MCS table the standard defines for data frames
//     (MCS 1-12, 385-4620 Mbps; §2 of the paper);
//   - control-PHY and interframe-space timings, from which the sector level
//     sweep overhead follows;
//   - the two sweep-overhead models the paper instantiates: the O(N)
//     802.11ad procedure with quasi-omni reception (Eqn. 2 of Haider &
//     Knightly's MOCA — ~0.5 ms at 30° beams, ~5 ms at 3°), and the O(N^2)
//     exhaustive directional search (Sur et al., SIGMETRICS'15 — ~150 ms at
//     9° beams, ~250 ms at 7°).
//
// The X60-style simulator in internal/phy intentionally keeps its own MCS
// table (the paper's testbed is not 802.11ad); this package is the
// 802.11ad-side reference used for overhead derivation, COTS modeling, and
// documentation.
package ad

import (
	"fmt"
	"math"
	"time"
)

// Control-PHY and interframe timings (IEEE 802.11ad-2012).
const (
	// ControlPHYRateMbps is the control PHY (MCS 0) rate used by SSW
	// frames.
	ControlPHYRateMbps = 27.5
	// SSWFrameBytes is the sector sweep frame length.
	SSWFrameBytes = 26
	// SBIFS is the short beamforming interframe space.
	SBIFS = 1 * time.Microsecond
	// MBIFS is the medium beamforming interframe space.
	MBIFS = 3 * time.Microsecond
	// ControlPreamble is the control-PHY preamble + header airtime.
	ControlPreamble = 8190 * time.Nanosecond // ~4.65us STF + ~3.55us CE/header
	// MaxFATms is the maximum frame aggregation time in 802.11ad (2 ms);
	// 802.11ac (and X60) allow 10 ms.
	MaxFATms = 2
	// AzimuthSpanDeg is the azimuth coverage a device's codebook spans.
	AzimuthSpanDeg = 360.0
)

// SSWFrameTime returns the airtime of one sector sweep frame: preamble plus
// 26 bytes at the control PHY rate. It evaluates to ~15.8 us, the figure
// used throughout the 60 GHz literature.
func SSWFrameTime() time.Duration {
	bits := float64(SSWFrameBytes * 8)
	payloadSec := bits / (ControlPHYRateMbps * 1e6)
	return ControlPreamble + time.Duration(payloadSec*float64(time.Second))
}

// SectorsFor returns the number of sectors a codebook needs to cover the
// azimuth span with the given 3 dB beamwidth.
func SectorsFor(beamwidthDeg float64) int {
	if beamwidthDeg <= 0 {
		return 1
	}
	return int(math.Ceil(AzimuthSpanDeg / beamwidthDeg))
}

// SSWFeedbackTime is the sweep-feedback plus ACK exchange closing an SLS.
const SSWFeedbackTime = 50 * time.Microsecond

// SLSOverhead models the standard O(N) sector level sweep with quasi-omni
// reception (Eqn. 2 of MOCA, as used in §8.1): an initiator sweep and a
// responder sweep of N SSW frames each, plus feedback. With 30° beams
// (today's COTS devices) it lands near 0.5 ms; with the 3° minimum beamwidth
// the standard allows it approaches 5 ms.
func SLSOverhead(beamwidthDeg float64) time.Duration {
	n := time.Duration(SectorsFor(beamwidthDeg))
	perFrame := SSWFrameTime() + SBIFS
	return 2*n*perFrame + 2*MBIFS + SSWFeedbackTime
}

// pairMeasureTime is the per-beam-pair cost of the exhaustive directional
// search: an SSW exchange plus Rx beam switching and settling, calibrated to
// the measured sweep durations of Sur et al. (Fig. 11: ~150 ms at 9°, ~250
// ms at 7°).
const pairMeasureTime = 94 * time.Microsecond

// ExhaustiveOverhead models the O(N^2) search that trains Tx and Rx beams
// jointly with directional reception — the regime the paper uses for its
// 150 ms and 250 ms BA overhead points.
func ExhaustiveOverhead(beamwidthDeg float64) time.Duration {
	n := SectorsFor(beamwidthDeg)
	return time.Duration(n*n) * pairMeasureTime
}

// SCMCS describes one 802.11ad single-carrier data MCS.
type SCMCS struct {
	// Index is the standard MCS number (1-12).
	Index int
	// RateMbps is the PHY data rate.
	RateMbps float64
	// Modulation names the constellation.
	Modulation string
	// CodeRate is the LDPC code rate.
	CodeRate float64
	// Repetition is the block repetition factor (2 for MCS 1, else 1).
	Repetition int
	// SensitivityDBm is the standard's receive sensitivity requirement.
	SensitivityDBm float64
}

// SC PHY rate ingredients: 1.76 GHz symbol rate and the 448-of-512 data
// blocking factor of the SC block structure.
const (
	scSymbolRateMHz = 1760.0
	scBlockFactor   = 448.0 / 512.0
)

// BitsPerSymbol returns the constellation order of a modulation name.
func BitsPerSymbol(modulation string) float64 {
	switch modulation {
	case "pi/2-QPSK":
		return 2
	case "pi/2-16QAM":
		return 4
	default: // pi/2-BPSK
		return 1
	}
}

// Rate computes the SC PHY rate (Mbps) from first principles:
// symbolRate x bits/symbol x codeRate x blockFactor / repetition.
func (m SCMCS) Rate() float64 {
	rep := m.Repetition
	if rep < 1 {
		rep = 1
	}
	return scSymbolRateMHz * BitsPerSymbol(m.Modulation) * m.CodeRate * scBlockFactor / float64(rep)
}

// SCMCSTable lists the 12 single-carrier data MCSs of 802.11ad (§2: "the
// 802.11ad standard defines 12 MCSs for data frame transmission for the
// single-carrier PHY, yielding data rates from 385-4620 Mbps").
var SCMCSTable = []SCMCS{
	{1, 385, "pi/2-BPSK", 1. / 2, 2, -68},
	{2, 770, "pi/2-BPSK", 1. / 2, 1, -66},
	{3, 962.5, "pi/2-BPSK", 5. / 8, 1, -65},
	{4, 1155, "pi/2-BPSK", 3. / 4, 1, -64},
	{5, 1251.25, "pi/2-BPSK", 13. / 16, 1, -62},
	{6, 1540, "pi/2-QPSK", 1. / 2, 1, -63},
	{7, 1925, "pi/2-QPSK", 5. / 8, 1, -62},
	{8, 2310, "pi/2-QPSK", 3. / 4, 1, -61},
	{9, 2502.5, "pi/2-QPSK", 13. / 16, 1, -59},
	{10, 3080, "pi/2-16QAM", 1. / 2, 1, -55},
	{11, 3850, "pi/2-16QAM", 5. / 8, 1, -54},
	{12, 4620, "pi/2-16QAM", 3. / 4, 1, -53},
}

// LookupSC returns the table entry for a standard MCS index.
func LookupSC(index int) (SCMCS, error) {
	for _, m := range SCMCSTable {
		if m.Index == index {
			return m, nil
		}
	}
	return SCMCS{}, fmt.Errorf("ad: no SC MCS %d (valid: 1-12)", index)
}

// MinSCRateMbps and MaxSCRateMbps bound the SC data rates (385-4620 Mbps).
func MinSCRateMbps() float64 { return SCMCSTable[0].RateMbps }

// MaxSCRateMbps returns the top SC data rate.
func MaxSCRateMbps() float64 { return SCMCSTable[len(SCMCSTable)-1].RateMbps }

// AMPDU parameters (§6.1: "the length of an X60 frame is same as the
// maximum allowed AMPDU length in 802.11n/ac").
const (
	// MaxAMPDUBytes is the maximum A-MPDU length in 802.11ad.
	MaxAMPDUBytes = 262143
	// MaxMPDUBytes is the maximum MPDU size.
	MaxMPDUBytes = 7995
)

// SFER converts per-MPDU delivery outcomes into the subframe error rate
// metric legacy rate adaptation uses (§6.1 approximates it with the X60
// codeword delivery ratio).
func SFER(delivered, total int) float64 {
	if total <= 0 {
		return 0
	}
	return 1 - float64(delivered)/float64(total)
}
