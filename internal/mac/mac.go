// Package mac provides the TDMA MAC layer abstraction on top of the channel
// and PHY simulators: per-frame transmission at a chosen MCS and beam pair,
// Block-ACK feedback, and the per-frame PHY trace records (SNR, noise, ToF,
// PDP, CDR) that the X60 testbed logs for every frame (§5.1) and that LiBRA's
// classifier consumes.
//
// The X60 frame resembles an 802.11 aggregated frame (AMPDU): it carries many
// independently CRC-protected codewords, so a frame can be partially
// delivered. The Block ACK is modeled as missing when (almost) no codeword
// got through, which is the trigger condition COTS rate adaptation reacts to.
package mac

import (
	"math/rand"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/phy"
)

// ackMinCDR is the minimum codeword delivery ratio for the Block ACK itself
// to come back. Below it the transmitter observes a missing ACK.
const ackMinCDR = 0.01

// FrameRecord is the per-frame log record: what the transmitter learns from
// one frame exchange (PHY metrics are fed back on the ACK, exploiting
// channel reciprocity, §7).
type FrameRecord struct {
	// Seq is the frame sequence number.
	Seq int
	// MCS is the modulation and coding scheme used.
	MCS phy.MCS
	// TxBeam, RxBeam are the beam (sector) IDs used.
	TxBeam, RxBeam int
	// SNRdB, NoiseDBm, ToFNs are the PHY metrics at the receiver.
	SNRdB, NoiseDBm, ToFNs float64
	// PDP is the power delay profile observed for this frame.
	PDP []float64
	// CDR is the observed codeword delivery ratio for this frame.
	CDR float64
	// DeliveredBits is the number of MAC payload bits delivered.
	DeliveredBits float64
	// ACKed reports whether the Block ACK was received. When false the
	// transmitter gets none of the PHY metrics for this frame.
	ACKed bool
}

// ThroughputBps returns the frame's delivered throughput in bits/s.
func (r *FrameRecord) ThroughputBps() float64 {
	return r.DeliveredBits / phy.FrameDuration
}

// Station is a transmitter driving one 60 GHz link. It owns the current MCS
// and beam-pair selection and issues frames.
type Station struct {
	// Link is the underlying simulated channel.
	Link *channel.Link
	// Rng drives the stochastic codeword error process and PHY metric
	// measurement noise.
	Rng *rand.Rand

	// TxBeam, RxBeam are the active beam pair.
	TxBeam, RxBeam int
	// MCS is the active modulation and coding scheme.
	MCS phy.MCS

	// SNRJitterDB is the standard deviation of per-frame SNR measurement
	// noise (real hardware never reports perfectly stable SNR).
	SNRJitterDB float64
	// NoiseJitterDB is the standard deviation of per-frame noise-level
	// measurement noise; the paper notes X60's noise readings span a
	// large range even without interference (§6.2).
	NoiseJitterDB float64

	// Trace, when non-nil, receives simulation-time events for notable
	// frames (missing Block ACK, codeword error bursts), stamped with the
	// frame sequence number — never wall time.
	Trace *obs.Stream

	seq int
}

// NewStation creates a station with typical measurement-noise settings.
func NewStation(l *channel.Link, rng *rand.Rand) *Station {
	return &Station{
		Link:          l,
		Rng:           rng,
		MCS:           phy.MinMCS,
		SNRJitterDB:   0.6,
		NoiseJitterDB: 1.2,
	}
}

// SendFrame transmits one TDMA frame at the station's current MCS and beam
// pair and returns the resulting record.
func (s *Station) SendFrame() FrameRecord {
	m := s.Link.Measure(s.TxBeam, s.RxBeam)
	snr := m.SNRdB + s.Rng.NormFloat64()*s.SNRJitterDB
	noise := m.NoiseDBm + s.Rng.NormFloat64()*s.NoiseJitterDB
	cdr := phy.SampleCDR(s.MCS, snr, s.Rng)
	rec := FrameRecord{
		Seq:           s.seq,
		MCS:           s.MCS,
		TxBeam:        s.TxBeam,
		RxBeam:        s.RxBeam,
		SNRdB:         snr,
		NoiseDBm:      noise,
		ToFNs:         m.ToFNs,
		PDP:           m.PDP,
		CDR:           cdr,
		DeliveredBits: phy.Throughput(s.MCS, cdr) * phy.FrameDuration,
		ACKed:         cdr >= ackMinCDR,
	}
	obsFrames.Inc()
	if !rec.ACKed {
		obsNoACK.Inc()
	}
	if cdr < cwBurstMaxCDR {
		obsCwBursts.Inc()
	}
	if s.Trace.Enabled() {
		t := obs.SimTime{Frame: int64(rec.Seq)}
		if !rec.ACKed {
			s.Trace.Event(t, "no_ack",
				obs.Fint("mcs", int64(rec.MCS)), obs.Ffloat("cdr", cdr))
		} else if cdr < cwBurstMaxCDR {
			s.Trace.Event(t, "cw_burst",
				obs.Fint("mcs", int64(rec.MCS)), obs.Ffloat("cdr", cdr),
				obs.Ffloat("snr_db", snr))
		}
	}
	s.seq++
	return rec
}

// SendFrames transmits n frames and returns their records.
func (s *Station) SendFrames(n int) []FrameRecord {
	out := make([]FrameRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.SendFrame())
	}
	return out
}

// ProbeMCS transmits a single frame at MCS m without changing the station's
// configured MCS — the one-AMPDU-per-MCS probe used during rate search.
func (s *Station) ProbeMCS(m phy.MCS) FrameRecord {
	old := s.MCS
	s.MCS = m
	rec := s.SendFrame()
	s.MCS = old
	return rec
}

// AvgThroughputBps returns the mean delivered throughput over a frame batch.
func AvgThroughputBps(recs []FrameRecord) float64 {
	if len(recs) == 0 {
		return 0
	}
	var bits float64
	for _, r := range recs {
		bits += r.DeliveredBits
	}
	return bits / (float64(len(recs)) * phy.FrameDuration)
}

// AvgCDR returns the mean codeword delivery ratio over a frame batch.
func AvgCDR(recs []FrameRecord) float64 {
	if len(recs) == 0 {
		return 0
	}
	var c float64
	for _, r := range recs {
		c += r.CDR
	}
	return c / float64(len(recs))
}
