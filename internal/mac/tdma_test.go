package mac

import (
	"math"
	"testing"

	"github.com/libra-wlan/libra/internal/phy"
)

func TestEqualShareLoneStationOwnsFrame(t *testing.T) {
	s := EqualShare(0, 1, phy.SlotsPerFrame)
	if s.Granted != phy.SlotsPerFrame || s.PerStation() != phy.SlotsPerFrame {
		t.Fatalf("lone station got %d/%d slots", s.PerStation(), s.Granted)
	}
	if s.Share() != 1.0 {
		t.Fatalf("lone station share = %v, want exactly 1", s.Share())
	}
}

func TestEqualShareDividesEvenly(t *testing.T) {
	s := EqualShare(0, 4, phy.SlotsPerFrame)
	if s.PerStation() != phy.SlotsPerFrame/4 {
		t.Errorf("per-station = %d", s.PerStation())
	}
	if math.Abs(s.Share()-0.25) > 1e-15 {
		t.Errorf("share = %v", s.Share())
	}
	// Demand cap: 4 stations wanting 10 slots each use only 40.
	capped := EqualShare(0, 4, 10)
	if capped.Granted != 40 || capped.PerStation() != 10 {
		t.Errorf("capped: %d granted, %d per station", capped.Granted, capped.PerStation())
	}
}

func TestEqualShareOverload(t *testing.T) {
	// More members than slots: the window saturates at the frame and the
	// per-station share goes fractional (a slot every other frame).
	s := EqualShare(0, 2*phy.SlotsPerFrame, phy.SlotsPerFrame)
	if s.Granted != phy.SlotsPerFrame {
		t.Errorf("granted = %d", s.Granted)
	}
	if want := 1.0 / float64(2*phy.SlotsPerFrame); math.Abs(s.Share()-want) > 1e-15 {
		t.Errorf("share = %v, want %v", s.Share(), want)
	}
}

func TestEqualShareIdle(t *testing.T) {
	s := EqualShare(25, 0, phy.SlotsPerFrame)
	if s.Active() || s.Share() != 0 {
		t.Errorf("idle schedule active: %+v", s)
	}
	if s.Offset != 25 {
		t.Errorf("offset = %d", s.Offset)
	}
}

func TestOverlapDisjointAndFull(t *testing.T) {
	a := EqualShare(0, 2, 20)  // slots [0,40)
	b := EqualShare(50, 2, 20) // slots [50,90)
	if o := a.Overlap(b); o != 0 {
		t.Errorf("disjoint windows overlap %v", o)
	}
	c := EqualShare(0, 2, phy.SlotsPerFrame) // whole frame
	if o := a.Overlap(c); o != 1 {
		t.Errorf("window inside full frame overlaps %v, want 1", o)
	}
	// Overlap is measured relative to the receiver's window.
	if o := c.Overlap(a); math.Abs(o-0.4) > 1e-15 {
		t.Errorf("full frame vs 40 slots = %v, want 0.4", o)
	}
}

func TestOverlapWrapping(t *testing.T) {
	a := EqualShare(90, 1, 20) // wraps: [90,100) + [0,10)
	b := EqualShare(0, 1, 10)  // [0,10)
	if o := a.Overlap(b); math.Abs(o-0.5) > 1e-15 {
		t.Errorf("wrapped overlap = %v, want 0.5", o)
	}
	if o := b.Overlap(a); o != 1 {
		t.Errorf("contained overlap = %v, want 1", o)
	}
}

func TestWrapSlotNegative(t *testing.T) {
	if got := wrapSlot(-3); got != phy.SlotsPerFrame-3 {
		t.Errorf("wrapSlot(-3) = %d", got)
	}
}
