package mac

import "github.com/libra-wlan/libra/internal/obs"

// Frame-level metrics. cwBurstMaxCDR is the codeword delivery ratio below
// which a frame counts as a codeword error burst — a heavy partial loss that
// is still ACKed (an AMPDU degrades codeword by codeword before the Block ACK
// itself disappears below ackMinCDR).
const cwBurstMaxCDR = 0.5

var (
	obsFrames = obs.NewCounter("libra_mac_frames_total",
		"TDMA frames transmitted")
	obsNoACK = obs.NewCounter("libra_mac_frames_no_ack_total",
		"frames whose Block ACK did not come back")
	obsCwBursts = obs.NewCounter("libra_mac_frames_cw_burst_total",
		"frames with a codeword error burst (CDR below 0.5)")
)
