package mac

import "github.com/libra-wlan/libra/internal/phy"

// TDMA slot scheduling for a multi-station AP. The X60 MAC divides each
// 10 ms frame into 100 slots (phy.SlotsPerFrame); an AP serving several
// stations grants each an equal share of them. Co-channel APs stagger their
// active windows by an offset so that lightly loaded deployments interleave
// cleanly and heavily loaded ones overlap — the overlap fraction is what the
// discrete-event engine's interference verdicts consume.

// SlotSchedule is one AP's slot allocation for a frame: a contiguous active
// window of Granted slots starting at Offset (mod phy.SlotsPerFrame), divided
// equally among Members stations.
type SlotSchedule struct {
	// Offset is the first active slot index (the AP's stagger position).
	Offset int
	// Granted is the total number of active slots in the window.
	Granted int
	// Members is the number of stations sharing the window.
	Members int
}

// EqualShare allocates a frame among members stations: every slot is granted
// and divided equally, so a station's airtime share is 1/members and a lone
// station owns the whole frame. demandSlots caps the per-station grant —
// SlotsPerFrame means uncapped; smaller values model stations whose offered
// load needs only part of a frame, leaving the tail of the window idle.
func EqualShare(offset, members, demandSlots int) SlotSchedule {
	if members <= 0 {
		return SlotSchedule{Offset: wrapSlot(offset)}
	}
	if demandSlots <= 0 || demandSlots > phy.SlotsPerFrame {
		demandSlots = phy.SlotsPerFrame
	}
	per := phy.SlotsPerFrame / members
	if per > demandSlots {
		per = demandSlots
	}
	if per < 1 {
		per = 1
	}
	granted := per * members
	if granted > phy.SlotsPerFrame {
		granted = phy.SlotsPerFrame
	}
	return SlotSchedule{Offset: wrapSlot(offset), Granted: granted, Members: members}
}

// wrapSlot normalizes a slot index into [0, SlotsPerFrame).
func wrapSlot(s int) int {
	s %= phy.SlotsPerFrame
	if s < 0 {
		s += phy.SlotsPerFrame
	}
	return s
}

// PerStation returns the slots granted to each member station.
func (s SlotSchedule) PerStation() int {
	if s.Members <= 0 {
		return 0
	}
	return s.Granted / s.Members
}

// Share returns one station's airtime fraction of the frame. A lone uncapped
// station gets exactly 1. When members outnumber slots the share goes
// fractional — stations are served on alternating frames, which over the
// engine's multi-frame segments averages to the same airtime.
func (s SlotSchedule) Share() float64 {
	if s.Members <= 0 {
		return 0
	}
	return float64(s.Granted) / float64(phy.SlotsPerFrame*s.Members)
}

// Active reports whether the schedule transmits at all.
func (s SlotSchedule) Active() bool { return s.Granted > 0 && s.Members > 0 }

// Overlap returns the fraction of s's active window that falls inside o's
// active window (0 when either is idle). Windows wrap around the frame.
func (s SlotSchedule) Overlap(o SlotSchedule) float64 {
	if !s.Active() || !o.Active() {
		return 0
	}
	common := 0
	for _, iv := range intervals(s) {
		for _, jv := range intervals(o) {
			lo, hi := iv[0], iv[1]
			if jv[0] > lo {
				lo = jv[0]
			}
			if jv[1] < hi {
				hi = jv[1]
			}
			if hi > lo {
				common += hi - lo
			}
		}
	}
	return float64(common) / float64(s.Granted)
}

// intervals expands a (possibly wrapping) active window into one or two
// half-open [start, end) ranges inside the frame.
func intervals(s SlotSchedule) [][2]int {
	end := s.Offset + s.Granted
	if end <= phy.SlotsPerFrame {
		return [][2]int{{s.Offset, end}}
	}
	return [][2]int{{s.Offset, phy.SlotsPerFrame}, {0, end - phy.SlotsPerFrame}}
}
