package mac

import (
	"math"
	"math/rand"
	"testing"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
)

func testStation(d float64, seed int64) *Station {
	e := env.MediumCorridor()
	tx := phased.NewArray(geom.V(0.5, 1.6), 0, 1)
	rx := phased.NewArray(geom.V(0.5+d, 1.6), 180, 2)
	l := channel.NewLink(e, tx, rx)
	s := NewStation(l, rand.New(rand.NewSource(seed)))
	tb, rb, snr := l.BestPair()
	s.TxBeam, s.RxBeam = tb, rb
	s.MCS, _ = phy.BestMCS(snr)
	return s
}

func TestSendFrameGoodLink(t *testing.T) {
	s := testStation(5, 1)
	rec := s.SendFrame()
	if !rec.ACKed {
		t.Fatal("good link frame not ACKed")
	}
	if rec.CDR < 0.3 {
		t.Errorf("good link CDR = %v", rec.CDR)
	}
	if rec.DeliveredBits <= 0 {
		t.Error("no bits delivered")
	}
	if rec.MCS != s.MCS || rec.TxBeam != s.TxBeam || rec.RxBeam != s.RxBeam {
		t.Error("record does not reflect station config")
	}
	if len(rec.PDP) != channel.PDPTaps {
		t.Errorf("PDP length = %d", len(rec.PDP))
	}
	if math.IsInf(rec.ToFNs, 1) {
		t.Error("ToF infinite on a good link")
	}
}

func TestSendFrameDeadLink(t *testing.T) {
	s := testStation(5, 2)
	s.Link.ImplLossDB = 90 // kill the channel
	s.Link.Invalidate()
	rec := s.SendFrame()
	if rec.ACKed {
		t.Error("dead link frame ACKed")
	}
	if rec.CDR != 0 || rec.DeliveredBits != 0 {
		t.Errorf("dead link delivered CDR=%v bits=%v", rec.CDR, rec.DeliveredBits)
	}
}

func TestSequenceNumbers(t *testing.T) {
	s := testStation(5, 3)
	recs := s.SendFrames(5)
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("seq[%d] = %d", i, r.Seq)
		}
	}
	if next := s.SendFrame(); next.Seq != 5 {
		t.Errorf("continuation seq = %d", next.Seq)
	}
}

func TestThroughputBps(t *testing.T) {
	rec := FrameRecord{DeliveredBits: 1e6}
	if got := rec.ThroughputBps(); math.Abs(got-1e8) > 1 {
		t.Errorf("ThroughputBps = %v", got)
	}
}

func TestProbeMCSRestores(t *testing.T) {
	s := testStation(5, 4)
	orig := s.MCS
	rec := s.ProbeMCS(phy.MinMCS)
	if rec.MCS != phy.MinMCS {
		t.Errorf("probe used %v", rec.MCS)
	}
	if s.MCS != orig {
		t.Errorf("probe changed station MCS to %v", s.MCS)
	}
}

func TestAverages(t *testing.T) {
	recs := []FrameRecord{
		{DeliveredBits: 2e6, CDR: 0.5},
		{DeliveredBits: 4e6, CDR: 1.0},
	}
	if got := AvgCDR(recs); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AvgCDR = %v", got)
	}
	want := (2e6 + 4e6) / (2 * phy.FrameDuration)
	if got := AvgThroughputBps(recs); math.Abs(got-want) > 1 {
		t.Errorf("AvgThroughputBps = %v, want %v", got, want)
	}
	if AvgCDR(nil) != 0 || AvgThroughputBps(nil) != 0 {
		t.Error("empty averages should be 0")
	}
}

func TestDeterminism(t *testing.T) {
	a := testStation(7, 99)
	b := testStation(7, 99)
	for i := 0; i < 20; i++ {
		ra, rb := a.SendFrame(), b.SendFrame()
		if ra.CDR != rb.CDR || ra.SNRdB != rb.SNRdB {
			t.Fatal("same seed produced different frame outcomes")
		}
	}
}

func TestMeasurementNoisePresent(t *testing.T) {
	s := testStation(7, 5)
	seen := map[float64]bool{}
	for i := 0; i < 10; i++ {
		seen[s.SendFrame().SNRdB] = true
	}
	if len(seen) < 5 {
		t.Error("per-frame SNR jitter missing")
	}
}

func TestHigherMCSDropsOnWeakLink(t *testing.T) {
	s := testStation(16, 6) // long link: low SNR
	s.MCS = phy.MaxMCS
	rec := s.SendFrame()
	if rec.CDR > 0.01 {
		t.Errorf("top MCS on weak link has CDR %v", rec.CDR)
	}
}

func TestSendAMPDUHealthy(t *testing.T) {
	s := testStation(5, 10)
	res := s.SendAMPDU(64, 4000)
	if res.MPDUs != 64 {
		t.Errorf("MPDUs = %d", res.MPDUs)
	}
	if !res.BlockACKed || res.Delivered == 0 {
		t.Errorf("healthy link delivered %d/64", res.Delivered)
	}
	// The delivery count tracks the waterfall probability at the SNR the
	// frame actually saw (jitter included); binomial n=64, 4-sigma band.
	p := phy.CDR(s.MCS, res.SNRdB)
	mean := 64 * p
	if d := float64(res.Delivered); d < mean-16 || d > mean+16 {
		t.Errorf("delivered %v far from expected %v at drawn SNR", d, mean)
	}
	if res.SFER < 0 || res.SFER > 1 {
		t.Errorf("SFER = %v", res.SFER)
	}
	want := float64(res.Delivered) * 4000 * 8
	if res.DeliveredBits != want {
		t.Errorf("bits = %v, want %v", res.DeliveredBits, want)
	}
}

func TestSendAMPDUDead(t *testing.T) {
	s := testStation(5, 11)
	s.Link.ImplLossDB = 90
	s.Link.Invalidate()
	res := s.SendAMPDU(32, 4000)
	if res.BlockACKed || res.Delivered != 0 || res.SFER != 1 {
		t.Errorf("dead link AMPDU: %+v", res)
	}
}

func TestSendAMPDUSFERMatchesCDR(t *testing.T) {
	// Over many subframes, 1-SFER converges to the codeword delivery ratio
	// at the same SNR — the §6.1 analogy, in reverse.
	s := testStation(10, 12)
	var sfer float64
	const rounds = 40
	for i := 0; i < rounds; i++ {
		sfer += s.SendAMPDU(256, 2000).SFER / rounds
	}
	snr := s.Link.SNRdB(s.TxBeam, s.RxBeam)
	want := 1 - phy.CDR(s.MCS, snr)
	if diff := sfer - want; diff < -0.08 || diff > 0.08 {
		t.Errorf("mean SFER %v vs 1-CDR %v", sfer, want)
	}
}

func TestSendAMPDUClamps(t *testing.T) {
	s := testStation(5, 13)
	res := s.SendAMPDU(0, -5)
	if res.MPDUs != 1 {
		t.Errorf("clamped MPDUs = %d", res.MPDUs)
	}
}
