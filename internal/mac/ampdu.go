package mac

import (
	"github.com/libra-wlan/libra/internal/ad"
	"github.com/libra-wlan/libra/internal/phy"
)

// AMPDU mode: the 802.11-side view of a frame. §6.1 argues the X60 frame is
// the analogue of an 802.11n/ac A-MPDU — same maximum length, with
// codewords standing in for MPDUs — and approximates the legacy subframe
// error rate (SFER) with the codeword delivery ratio. This file provides
// the converse: an A-MPDU transmission whose per-MPDU delivery follows the
// same SNR-driven error process, reporting SFER directly.

// AMPDUResult is the outcome of one aggregated-frame exchange.
type AMPDUResult struct {
	// MPDUs is the number of subframes sent.
	MPDUs int
	// Delivered counts subframes that passed their CRC.
	Delivered int
	// SFER is the subframe error rate (1 - delivery ratio).
	SFER float64
	// DeliveredBits is the delivered payload.
	DeliveredBits float64
	// BlockACKed reports whether the Block ACK came back (at least one
	// subframe delivered).
	BlockACKed bool
	// SNRdB is the receiver SNR during the exchange.
	SNRdB float64
}

// SendAMPDU transmits one aggregated frame of n MPDUs of mpduBytes each at
// the station's current MCS and beam pair. Per-MPDU delivery is Bernoulli
// with the same waterfall probability that drives the codeword process.
func (s *Station) SendAMPDU(n int, mpduBytes float64) AMPDUResult {
	if n <= 0 {
		n = 1
	}
	if mpduBytes <= 0 || mpduBytes > ad.MaxMPDUBytes {
		mpduBytes = ad.MaxMPDUBytes
	}
	m := s.Link.Measure(s.TxBeam, s.RxBeam)
	snr := m.SNRdB + s.Rng.NormFloat64()*s.SNRJitterDB
	p := phy.CDR(s.MCS, snr)
	res := AMPDUResult{MPDUs: n, SNRdB: snr}
	for i := 0; i < n; i++ {
		if s.Rng.Float64() < p {
			res.Delivered++
		}
	}
	res.SFER = ad.SFER(res.Delivered, n)
	res.DeliveredBits = float64(res.Delivered) * mpduBytes * 8
	res.BlockACKed = res.Delivered > 0
	s.seq++
	return res
}
