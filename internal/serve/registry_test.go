package serve

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/libra-wlan/libra/internal/core"
)

// TestRegistryLoadRoundTrip: a libra-train artifact loads into the registry
// and serves the same predictions the original forest makes.
func TestRegistryLoadRoundTrip(t *testing.T) {
	rf := fitTestForest(t)
	var buf bytes.Buffer
	if err := core.SaveClassifier(&core.MLClassifier{Model: rf}, &buf); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	if reg.Active() != nil {
		t.Fatal("fresh registry has an active model")
	}
	m, err := reg.Load("artifact.model", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 1 || m.Name != "random-forest" || m.Source != "artifact.model" || m.Classes != 3 {
		t.Fatalf("model metadata = %+v", m)
	}
	if reg.Active() != m {
		t.Fatal("loaded model is not active")
	}
	for _, x := range testRows(32) {
		if got, want := m.Predictor().Predict(x), rf.Predict(x); got != want {
			t.Fatalf("loaded model predicts %d, original %d", got, want)
		}
	}
}

// TestRegistryLoadRejectsGarbage: a bad artifact leaves the registry as-is.
func TestRegistryLoadRejectsGarbage(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Load("junk", strings.NewReader("not a model")); err == nil {
		t.Fatal("garbage loaded without error")
	}
	if reg.Active() != nil {
		t.Fatal("failed load left a model active")
	}
}

// TestRegistryRollback exercises the one-step, reversible rollback chain.
func TestRegistryRollback(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Rollback(); !errors.Is(err, ErrNoRollback) {
		t.Fatalf("empty rollback err = %v, want ErrNoRollback", err)
	}
	a := reg.Install("a", &fakePred{class: 0, classes: 3})
	if _, err := reg.Rollback(); !errors.Is(err, ErrNoRollback) {
		t.Fatalf("single-model rollback err = %v, want ErrNoRollback", err)
	}
	b := reg.Install("b", &fakePred{class: 1, classes: 3})
	if reg.Active() != b || reg.Previous() != a {
		t.Fatalf("after two installs: active %v prev %v", reg.Active(), reg.Previous())
	}

	m, err := reg.Rollback()
	if err != nil || m != a || reg.Active() != a || reg.Previous() != b {
		t.Fatalf("rollback: m=%v err=%v active=%v prev=%v", m, err, reg.Active(), reg.Previous())
	}
	// A mistaken rollback is itself reversible.
	m, err = reg.Rollback()
	if err != nil || m != b || reg.Active() != b || reg.Previous() != a {
		t.Fatalf("re-rollback: m=%v err=%v", m, err)
	}

	// IDs keep increasing across swaps.
	c := reg.Install("c", &fakePred{class: 2, classes: 3})
	if c.ID != 3 {
		t.Fatalf("third install ID = %d, want 3", c.ID)
	}
}
