package serve

import (
	"math/rand"

	"github.com/libra-wlan/libra/internal/dataset"
)

// Replay is a deterministic feature-vector source for load generation: the
// feature rows of a measurement campaign in a seed-shuffled order. Unlike
// the rest of the serving layer, this file is inside the reproducibility
// boundary — the determinism analyzer holds replay*.go to the full
// discipline (no wall clock), so a fixed (campaign, seed) pair always
// yields the same request stream and load-test results are comparable
// across runs.
type Replay struct {
	rows   [][]float64
	labels []dataset.Action
}

// NewReplay snapshots c's feature rows in a seed-shuffled order. The rows
// are copies: the replay stream stays valid however the campaign is used
// afterwards, and callers may hand rows to concurrent workers freely (they
// must not mutate them).
func NewReplay(c *dataset.Campaign, seed int64) *Replay {
	r := &Replay{
		rows:   make([][]float64, 0, len(c.Entries)),
		labels: make([]dataset.Action, 0, len(c.Entries)),
	}
	for _, e := range c.Entries {
		r.rows = append(r.rows, e.FeatureSlice())
		r.labels = append(r.labels, e.Label)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(r.rows), func(i, j int) {
		r.rows[i], r.rows[j] = r.rows[j], r.rows[i]
		r.labels[i], r.labels[j] = r.labels[j], r.labels[i]
	})
	return r
}

// Len returns the number of distinct rows in the stream.
func (r *Replay) Len() int { return len(r.rows) }

// At returns request i's feature row; the stream wraps around, so any
// non-negative i is valid. Workers typically stride (worker w of W issues
// requests w, w+W, w+2W, ...) so concurrent streams stay disjoint and
// deterministic.
func (r *Replay) At(i int) []float64 { return r.rows[i%len(r.rows)] }

// LabelAt returns the ground-truth action of request i's row, letting load
// tests double as an online accuracy check.
func (r *Replay) LabelAt(i int) dataset.Action { return r.labels[i%len(r.labels)] }
