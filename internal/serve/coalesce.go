package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
)

// The request coalescer turns many concurrent single-prediction requests
// into few batched model invocations. Per-request forest inference walks
// every tree once per sample, evicting each tree's node array between
// requests; the batch path (ml.RandomForest.PredictProbaBatch) iterates
// trees in the outer loop so each compiled tree stays cache-resident across
// the whole batch and the walk allocates nothing. Under concurrent load the
// coalescer recovers that locality: the dispatcher collects up to MaxBatch
// requests (waiting at most MaxLinger after the first), runs one batch
// inference against an atomically captured model snapshot, and fans the
// rows back out.
//
// The admission queue doubles as the service's backpressure valve: it is a
// bounded channel, and when it is full Decide fails fast with ErrOverloaded
// instead of letting latency grow without bound (the HTTP layer translates
// that to 429). Request deadlines are honored cooperatively: a waiter
// abandons its slot when its context expires, and the dispatcher discards
// requests whose context is already dead at dequeue instead of spending
// model time on them.

// ErrOverloaded is returned when the admission queue is full.
var ErrOverloaded = errors.New("serve: admission queue full")

// ErrDraining is returned for requests arriving after Close began.
var ErrDraining = errors.New("serve: draining")

// Decision is one answered prediction.
type Decision struct {
	// Action is the classifier's verdict for the feature vector.
	Action dataset.Action
	// Proba is the per-class probability row (BA, RA, NA order).
	Proba []float64
	// Model identifies the registry version that answered.
	Model *Model
}

// pending is one request in flight through the coalescer.
type pending struct {
	x         []float64
	classOnly bool
	ctx       context.Context
	done      chan struct{}
	dec       Decision
	err       error

	// Audit identity (SubmitTimed): reqID is client-chosen, linkID is the
	// routing key, shard is stamped by the router.
	reqID  uint64
	linkID uint64
	shard  uint16

	// Stage stamps for latency attribution. t0 is set by the transport when
	// the request arrives; the rest are stamped as the request crosses each
	// pipeline seam. All are written before done closes (or, for t0/tEnq,
	// before the request enters the queue), so the waiter reads them without
	// synchronization beyond Done.
	t0    time.Time // transport arrival (zero when the transport doesn't attribute)
	tEnq  time.Time // admission enqueue
	tDeq  time.Time // dispatcher dequeue
	tCap  time.Time // batch capture (flush start)
	tPred time.Time // model kernel finished for this request's batch
}

// Pending is the handle for a decision submitted without blocking (Submit).
// It lets a pipelined transport interleave many in-flight requests on one
// goroutine: submit N, then await results in order.
type Pending struct {
	p *pending
}

// Done is closed when the decision (or its error) is ready.
func (t *Pending) Done() <-chan struct{} { return t.p.done }

// Result returns the decision; it must only be called after Done is closed.
func (t *Pending) Result() (Decision, error) { return t.p.dec, t.p.err }

// CoalescerConfig sizes the batching engine.
type CoalescerConfig struct {
	// MaxBatch is the largest model invocation (<= 0 selects 64; 1
	// disables coalescing — every request predicts inline).
	MaxBatch int
	// MaxLinger bounds how long the first request of a batch waits for
	// company (<= 0 selects 200µs; meaningful only when MaxBatch > 1).
	MaxLinger time.Duration
	// QueueDepth bounds the admission queue (<= 0 selects 1024;
	// meaningful only when MaxBatch > 1).
	QueueDepth int
}

// withDefaults resolves the zero values.
func (c CoalescerConfig) withDefaults() CoalescerConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxLinger <= 0 {
		c.MaxLinger = 200 * time.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	return c
}

// Coalescer batches concurrent decisions into the model's batch path.
type Coalescer struct {
	cfg   CoalescerConfig
	reg   *Registry
	queue chan *pending

	mu      sync.RWMutex
	closing bool

	dispatcherDone chan struct{}

	// Dispatcher-owned scratch (single goroutine, reused across batches).
	batch   []*pending
	classed []*pending
	x       [][]float64
	proba   []float64
	classes []int
}

// NewCoalescer starts a coalescer serving predictions from reg's active
// model. Callers own the lifecycle: Close drains and stops the dispatcher.
func NewCoalescer(reg *Registry, cfg CoalescerConfig) *Coalescer {
	cfg = cfg.withDefaults()
	c := &Coalescer{
		cfg:            cfg,
		reg:            reg,
		queue:          make(chan *pending, cfg.QueueDepth),
		dispatcherDone: make(chan struct{}),
		batch:          make([]*pending, 0, cfg.MaxBatch),
		classed:        make([]*pending, 0, cfg.MaxBatch),
		x:              make([][]float64, 0, cfg.MaxBatch),
	}
	if cfg.MaxBatch > 1 {
		go c.dispatch()
	} else {
		close(c.dispatcherDone)
	}
	return c
}

// Decide answers one feature vector, batching with concurrent callers when
// coalescing is enabled. It fails fast with ErrOverloaded when the
// admission queue is full, ErrDraining after Close began, ErrNoModel before
// the first model load, and ctx.Err() when the request's deadline expires
// before a result is ready.
func (c *Coalescer) Decide(ctx context.Context, x []float64) (Decision, error) {
	t, err := c.Submit(ctx, x, false)
	if err != nil {
		return Decision{}, err
	}
	select {
	case <-t.Done():
		return t.Result()
	case <-ctx.Done():
		obsCanceled.Inc()
		return Decision{}, ctx.Err()
	}
}

// Submit enqueues one feature vector without waiting for the answer; the
// returned Pending resolves when a batch containing the request flushes.
// classOnly requests skip the per-class probability row and take the
// model's early-exit class kernel — the binary wire's default. Admission
// errors (ErrOverloaded, ErrDraining) are returned immediately.
func (c *Coalescer) Submit(ctx context.Context, x []float64, classOnly bool) (*Pending, error) {
	return c.SubmitTimed(ctx, x, classOnly, 0, 0, time.Time{})
}

// SubmitTimed is Submit carrying the request's audit identity and transport
// arrival stamp: reqID/linkID key the decision log's deterministic sampling
// and ground-truth joins, and t0 anchors the admission stage span (a zero t0
// records a zero admission span).
func (c *Coalescer) SubmitTimed(ctx context.Context, x []float64, classOnly bool, reqID, linkID uint64, t0 time.Time) (*Pending, error) {
	p := &pending{
		x: x, classOnly: classOnly, ctx: ctx, done: make(chan struct{}),
		reqID: reqID, linkID: linkID, t0: t0, tEnq: nowStamp(),
	}
	if c.cfg.MaxBatch <= 1 {
		if err := c.decideInline(p); err != nil {
			return nil, err
		}
		return &Pending{p: p}, nil
	}

	c.mu.RLock()
	if c.closing {
		c.mu.RUnlock()
		return nil, ErrDraining
	}
	select {
	case c.queue <- p:
		obsQueueDepth.Inc()
	default:
		c.mu.RUnlock()
		obsShed.Inc()
		return nil, ErrOverloaded
	}
	c.mu.RUnlock()
	return &Pending{p: p}, nil
}

// decideInline is the uncoalesced path: one model walk per request,
// resolved before Submit returns.
func (c *Coalescer) decideInline(p *pending) error {
	if err := p.ctx.Err(); err != nil {
		obsCanceled.Inc()
		return err
	}
	c.mu.RLock()
	closing := c.closing
	c.mu.RUnlock()
	if closing {
		return ErrDraining
	}
	m := c.reg.Active()
	if m == nil {
		return ErrNoModel
	}
	obsBatchSize.Observe(1)
	// The uncoalesced path has no queue or linger: dequeue and capture
	// coincide with the enqueue stamp, and the predict span is the model walk.
	p.tDeq, p.tCap = p.tEnq, p.tEnq
	if p.classOnly {
		p.dec = Decision{Action: dataset.Action(m.pred.Predict(p.x)), Model: m}
	} else {
		proba := m.pred.Proba(p.x)
		p.dec = Decision{Action: dataset.Action(argmax(proba)), Proba: proba, Model: m}
	}
	p.tPred = nowStamp()
	close(p.done)
	return nil
}

// Close stops admissions, waits for queued requests to be answered, and
// stops the dispatcher. Safe to call once; Decide calls racing with Close
// either complete normally or fail with ErrDraining.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		<-c.dispatcherDone
		return
	}
	c.closing = true
	c.mu.Unlock()
	// No sender can be inside the enqueue critical section now, and none
	// will enter it again, so closing the queue is safe; the dispatcher
	// flushes what remains and exits.
	if c.cfg.MaxBatch > 1 {
		close(c.queue)
	}
	<-c.dispatcherDone
}

// dispatch is the single consumer of the admission queue.
func (c *Coalescer) dispatch() {
	defer close(c.dispatcherDone)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		p, ok := <-c.queue
		if !ok {
			return
		}
		obsQueueDepth.Dec()
		p.tDeq = nowStamp()
		batch := append(c.batch[:0], p)

		// Linger: wait up to MaxLinger (measured from the first request)
		// for the batch to fill.
		timer.Reset(c.cfg.MaxLinger)
		closed := false
	collect:
		for len(batch) < c.cfg.MaxBatch {
			select {
			case q, more := <-c.queue:
				if !more {
					closed = true
					break collect
				}
				obsQueueDepth.Dec()
				q.tDeq = nowStamp()
				batch = append(batch, q)
			case <-timer.C:
				break collect
			}
		}
		if !timer.Stop() && !closed {
			select {
			case <-timer.C:
			default:
			}
		}
		c.flush(batch)
		if closed {
			// Drain stragglers enqueued before Close flipped the gate.
			rest := c.batch[:0]
			for q := range c.queue {
				obsQueueDepth.Dec()
				q.tDeq = nowStamp()
				rest = append(rest, q)
			}
			if len(rest) > 0 {
				c.flush(rest)
			}
			return
		}
	}
}

// flush answers one batch against one atomically captured model snapshot —
// a concurrent hot-swap never splits a batch across versions or drops a
// request. Class-only requests (the binary wire's default) go through the
// model's early-exit class kernel; requests wanting probabilities go
// through the exact-vote batch path. Both partitions use the same snapshot.
func (c *Coalescer) flush(batch []*pending) {
	tCap := nowStamp()
	// Discard requests whose waiter already gave up: their context is
	// dead, so model time spent on them is wasted. Partition survivors by
	// the path they need.
	live := batch[:0]
	classed := c.classed[:0]
	for _, p := range batch {
		if p.ctx.Err() != nil {
			p.err = p.ctx.Err()
			close(p.done)
			continue
		}
		p.tCap = tCap
		if p.classOnly {
			classed = append(classed, p)
		} else {
			live = append(live, p)
		}
	}
	c.classed = classed[:0]
	if len(live)+len(classed) == 0 {
		return
	}
	m := c.reg.Active()
	if m == nil {
		for _, p := range live {
			p.err = ErrNoModel
			close(p.done)
		}
		for _, p := range classed {
			p.err = ErrNoModel
			close(p.done)
		}
		return
	}
	obsBatchSize.Observe(float64(len(live) + len(classed)))

	if len(classed) > 0 {
		c.classifyClassOnly(m, classed)
		// Stamp after the kernel, before the fan-out: the predict span is
		// per-batch, honestly amortized over every decision it answered.
		tPred := nowStamp()
		for i, p := range classed {
			p.tPred = tPred
			p.dec = Decision{Action: dataset.Action(c.classes[i]), Model: m}
			close(p.done)
		}
	}
	if len(live) == 0 {
		return
	}
	x := c.x[:0]
	for _, p := range live {
		x = append(x, p.x)
	}
	c.x = x
	c.proba = m.pred.PredictProbaBatch(x, c.proba)
	tPred := nowStamp()
	nc := m.Classes
	for i, p := range live {
		row := c.proba[i*nc : (i+1)*nc]
		// The scratch row is reused by the next batch; hand the waiter
		// its own copy.
		p.tPred = tPred
		p.dec = Decision{
			Action: dataset.Action(argmax(row)),
			Proba:  append(make([]float64, 0, nc), row...),
			Model:  m,
		}
		close(p.done)
	}
}

// classifyClassOnly runs the class-only partition (the binary wire's
// default) through the captured snapshot's early-exit batch kernel: gather
// the feature rows into the dispatcher's scratch, predict once into
// c.classes. The fan-out (and its wall-clock stamp) lives in flush — the
// kernel is the per-batch steady state of the decide path, the throughput
// numbers in the shard benchmarks assume it never touches the allocator,
// and the annotation makes that a merge gate.
//
//lint:noalloc steady-state decide path; scratch is dispatcher-owned and reused
func (c *Coalescer) classifyClassOnly(m *Model, classed []*pending) {
	x := c.x[:0]
	for _, p := range classed {
		x = append(x, p.x)
	}
	c.x = x
	c.classes = m.pred.PredictBatch(x, c.classes)
}

// argmax returns the index of the first maximum, matching the forest's own
// tie-breaking (lowest class wins).
func argmax(row []float64) int {
	best, bestV := 0, row[0]
	for i, v := range row[1:] {
		if v > bestV {
			best, bestV = i+1, v
		}
	}
	return best
}
