package serve

import (
	"reflect"
	"testing"

	"github.com/libra-wlan/libra/internal/dataset"
)

// synthCampaign builds a small in-memory campaign for replay tests.
func synthCampaign(n int) *dataset.Campaign {
	c := &dataset.Campaign{}
	c.Name = "synth"
	for i := 0; i < n; i++ {
		e := &dataset.Entry{Label: dataset.Action(i % 3)}
		for j := range e.Features {
			e.Features[j] = float64(i*10 + j)
		}
		c.Entries = append(c.Entries, e)
	}
	return c
}

// TestReplayDeterministic: same (campaign, seed) -> same stream; the
// shuffle actually permutes; rows are copies, not views into the campaign.
func TestReplayDeterministic(t *testing.T) {
	camp := synthCampaign(50)
	a := NewReplay(camp, 7)
	b := NewReplay(camp, 7)
	if a.Len() != 50 {
		t.Fatalf("Len = %d, want 50", a.Len())
	}
	inOrder := true
	for i := 0; i < a.Len(); i++ {
		if !reflect.DeepEqual(a.At(i), b.At(i)) || a.LabelAt(i) != b.LabelAt(i) {
			t.Fatalf("streams with equal seeds diverge at %d", i)
		}
		if a.At(i)[0] != camp.Entries[i].Features[0] {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("seeded shuffle left the campaign order untouched")
	}

	// A different seed produces a different permutation.
	c := NewReplay(camp, 8)
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.At(i)[0] != c.At(i)[0] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}

	// Labels travel with their rows through the shuffle.
	for i := 0; i < a.Len(); i++ {
		wantLabel := dataset.Action(int(a.At(i)[0]) / 10 % 3)
		if a.LabelAt(i) != wantLabel {
			t.Fatalf("row %d: label %v desynchronized from features (want %v)", i, a.LabelAt(i), wantLabel)
		}
	}

	// The stream wraps.
	if !reflect.DeepEqual(a.At(3), a.At(3+a.Len())) {
		t.Error("At does not wrap around")
	}

	// Rows are insulated from campaign mutation.
	camp.Entries[0].Features[0] = -1
	mutated := false
	for i := 0; i < a.Len(); i++ {
		if a.At(i)[0] == -1 {
			mutated = true
		}
	}
	if mutated {
		t.Error("replay rows alias the campaign's feature arrays")
	}
}
