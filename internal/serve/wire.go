package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// The decide hot path's binary framing. HTTP/JSON costs more per request
// than the model walk it carries (header parsing, chunked encoding, JSON
// float formatting); the binary protocol replaces it with fixed
// little-endian frames over one persistent TCP connection, pipelined: a
// client may have any number of requests in flight and responses come back
// in submission order. The JSON endpoints remain the control plane
// (/models, /metrics, debugging).
//
// Connection handshake: the client sends the 4-byte magic "LiB1"; the
// server echoes it. Everything after is length-prefixed frames:
//
//	u32  payload length (little-endian, not counting this prefix)
//	u8   type
//	...  type-specific payload
//
// Decide request (type 1), 20 + 4·nfeat bytes:
//
//	off  size  field
//	0    u8    type    = 1
//	1    u8    flags   (bit 0: want per-class probabilities)
//	2    u16   nfeat
//	4    u64   req_id  (echoed verbatim; client-chosen)
//	12   u64   link_id (consistent-hash routing key)
//	20   f32×nfeat feature vector
//
// Decide response (type 2 ok, type 3 error), 16 + 4·nclasses bytes:
//
//	off  size  field
//	0    u8    type     = 2 | 3
//	1    u8    code     (type 2: action id; type 3: wireErr* code)
//	2    u8    nclasses (0 unless probabilities were requested)
//	3    u8    reserved
//	4    u32   model_id (registry version that answered; 0 on error)
//	8    u64   req_id
//	16   f32×nclasses probability row
//
// This file is the pure codec — deterministic, no I/O, no clocks — and
// stays inside the determinism analyzer's full discipline (wire*.go, like
// replay*.go, is banned from wall-clock reads). The socket loops live in
// binary.go.

// wireMagic opens every binary-protocol connection.
var wireMagic = [4]byte{'L', 'i', 'B', '1'}

const (
	frameDecide   = 1 // client -> server
	frameResult   = 2 // server -> client, success
	frameError    = 3 // server -> client, failure
	frameFeedback = 4 // client -> server, ground truth; fire-and-forget

	// wireFlagProba asks for the per-class probability row. Requests
	// without it take the class-only early-exit kernel.
	wireFlagProba = 1 << 0

	// wireMaxFrame bounds a payload; a decide request is 20+4·nfeat, so
	// this allows feature vectors far beyond the campaign's 7 while still
	// rejecting garbage prefixes before allocating.
	wireMaxFrame = 1 << 16

	reqHeadLen  = 20
	respHeadLen = 16

	// feedbackLen is the fixed frameFeedback payload:
	//
	//	off  size  field
	//	0    u8    type    = 4
	//	1    u8    action  (ground-truth action for the decision)
	//	2    u16   reserved
	//	4    u64   req_id
	//	12   u64   link_id
	//
	// Feedback is fire-and-forget: no response frame, and it never enters
	// the connection's FIFO — the reader hands it straight to the router's
	// ground-truth join and moves on.
	feedbackLen = 20
)

// Error codes carried by frameError responses.
const (
	wireErrOverloaded = 1 // admission queue full; retry later
	wireErrDraining   = 2 // server shutting down
	wireErrNoModel    = 3 // no model loaded yet
	wireErrCanceled   = 4 // deadline or connection context expired
	wireErrBadRequest = 5 // malformed frame
	wireErrInternal   = 6
)

var (
	errFrameTooLarge  = errors.New("serve: frame exceeds wire limit")
	errFrameTruncated = errors.New("serve: truncated frame")
)

// wireRequest is one decoded decide request.
type wireRequest struct {
	Flags  uint8
	ReqID  uint64
	LinkID uint64
	X      []float32 // reused across decodes; copy before retaining
}

// WireResponse is one decoded decide response.
type WireResponse struct {
	ReqID   uint64
	ModelID uint32
	Action  uint8
	Err     uint8     // 0 = success, else a wireErr* code
	Proba   []float32 // reused across decodes; copy before retaining
}

// appendDecideRequest appends one framed decide request to dst.
//
//lint:noalloc pipelined client encode path; frames append into the caller's buffer
func appendDecideRequest(dst []byte, reqID, linkID uint64, wantProba bool, x []float32) []byte {
	n := reqHeadLen + 4*len(x)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	flags := uint8(0)
	if wantProba {
		flags = wireFlagProba
	}
	dst = append(dst, frameDecide, flags)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(x)))
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	dst = binary.LittleEndian.AppendUint64(dst, linkID)
	for _, v := range x {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// decodeDecideRequest parses a frameDecide payload, reusing req.X.
//
//lint:noalloc per-request decode path; the feature slice is connection-owned
func decodeDecideRequest(payload []byte, req *wireRequest) error {
	if len(payload) < reqHeadLen {
		return errFrameTruncated
	}
	if payload[0] != frameDecide {
		//lint:ignore noalloc malformed-frame error path, not steady state
		return fmt.Errorf("serve: unexpected frame type %d", payload[0])
	}
	req.Flags = payload[1]
	nfeat := int(binary.LittleEndian.Uint16(payload[2:]))
	if len(payload) != reqHeadLen+4*nfeat {
		return errFrameTruncated
	}
	req.ReqID = binary.LittleEndian.Uint64(payload[4:])
	req.LinkID = binary.LittleEndian.Uint64(payload[12:])
	if cap(req.X) < nfeat {
		req.X = make([]float32, nfeat)
	}
	req.X = req.X[:nfeat]
	for i := range req.X {
		req.X[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[reqHeadLen+4*i:]))
	}
	return nil
}

// appendFeedback appends one framed ground-truth feedback to dst.
//
//lint:noalloc loadgen replays feedback at decide rates; frames append into the caller's buffer
func appendFeedback(dst []byte, reqID, linkID uint64, action uint8) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, feedbackLen)
	dst = append(dst, frameFeedback, action, 0, 0)
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	dst = binary.LittleEndian.AppendUint64(dst, linkID)
	return dst
}

// decodeFeedback parses a frameFeedback payload.
//
//lint:noalloc per-frame ingest path alongside decide decodes
func decodeFeedback(payload []byte) (reqID, linkID uint64, action uint8, err error) {
	if len(payload) != feedbackLen || payload[0] != frameFeedback {
		return 0, 0, 0, errFrameTruncated
	}
	action = payload[1]
	reqID = binary.LittleEndian.Uint64(payload[4:])
	linkID = binary.LittleEndian.Uint64(payload[12:])
	return reqID, linkID, action, nil
}

// appendResult appends one framed success response to dst. proba may be nil.
//
//lint:noalloc per-response encode path; frames append into the connection's buffer
func appendResult(dst []byte, reqID uint64, action uint8, modelID uint32, proba []float32) []byte {
	n := respHeadLen + 4*len(proba)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, frameResult, action, uint8(len(proba)), 0)
	dst = binary.LittleEndian.AppendUint32(dst, modelID)
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	for _, v := range proba {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// appendWireError appends one framed error response to dst.
//
//lint:noalloc shed path must not allocate — overload is exactly when it runs hottest
func appendWireError(dst []byte, reqID uint64, code uint8) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, respHeadLen)
	dst = append(dst, frameError, code, 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	return dst
}

// decodeResponse parses a frameResult or frameError payload, reusing
// resp.Proba.
//
//lint:noalloc pipelined client decode path; the proba slice is client-owned
func decodeResponse(payload []byte, resp *WireResponse) error {
	if len(payload) < respHeadLen {
		return errFrameTruncated
	}
	typ := payload[0]
	if typ != frameResult && typ != frameError {
		//lint:ignore noalloc malformed-frame error path, not steady state
		return fmt.Errorf("serve: unexpected frame type %d", typ)
	}
	nc := int(payload[2])
	if len(payload) != respHeadLen+4*nc {
		return errFrameTruncated
	}
	resp.ModelID = binary.LittleEndian.Uint32(payload[4:])
	resp.ReqID = binary.LittleEndian.Uint64(payload[8:])
	if typ == frameError {
		resp.Err = payload[1]
		resp.Action = 0
		resp.Proba = resp.Proba[:0]
		return nil
	}
	resp.Err = 0
	resp.Action = payload[1]
	if cap(resp.Proba) < nc {
		resp.Proba = make([]float32, nc)
	}
	resp.Proba = resp.Proba[:nc]
	for i := range resp.Proba {
		resp.Proba[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[respHeadLen+4*i:]))
	}
	return nil
}

// wireErrCode maps a coalescer error to its wire code.
func wireErrCode(err error) uint8 {
	switch {
	case errors.Is(err, ErrOverloaded):
		return wireErrOverloaded
	case errors.Is(err, ErrDraining):
		return wireErrDraining
	case errors.Is(err, ErrNoModel):
		return wireErrNoModel
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return wireErrCanceled
	default:
		return wireErrInternal
	}
}
