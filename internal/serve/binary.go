package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
)

// The binary protocol's socket loops (the pure codec is wire.go). Each
// connection runs two goroutines:
//
//   - the reader decodes decide frames and submits them to the router
//     without waiting for answers, so a client can keep hundreds of
//     requests in flight on one connection;
//   - the writer answers in submission order (FIFO per connection),
//     buffering frames and flushing only when it has caught up with the
//     reader — under pipelined load many responses leave in one syscall.
//
// Backpressure is layered: the router's admission queues shed with
// wireErrOverloaded when full, and the per-connection pipeline channel
// bounds how far the reader can run ahead of the writer (when it is full
// the reader blocks, which in turn pushes TCP flow control back to the
// client). Requests carry the connection's context — there are no
// per-request timers on this path; a client that wants to abandon work
// closes the connection.

// DefaultPipelineDepth bounds in-flight requests per connection.
const DefaultPipelineDepth = 1024

// binEntry is one slot in a connection's FIFO response order.
type binEntry struct {
	reqID     uint64
	wantProba bool
	errCode   uint8    // answered immediately when != 0
	t         *Pending // otherwise resolved by the coalescer
}

// BinaryServer serves the binary decide protocol over TCP.
type BinaryServer struct {
	rt    *Router
	depth int

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]context.CancelFunc
	closed bool
	wg     sync.WaitGroup
}

// NewBinaryServer wraps the router in a binary-protocol listener.
// pipelineDepth bounds per-connection in-flight requests (<= 0 selects
// DefaultPipelineDepth).
func NewBinaryServer(rt *Router, pipelineDepth int) *BinaryServer {
	if pipelineDepth <= 0 {
		pipelineDepth = DefaultPipelineDepth
	}
	return &BinaryServer{rt: rt, depth: pipelineDepth, conns: make(map[net.Conn]context.CancelFunc)}
}

// Serve accepts connections on ln until Close. It returns nil after Close,
// or the first accept error otherwise.
func (s *BinaryServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("serve: binary server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		ctx, cancel := context.WithCancel(context.Background())
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			cancel()
			conn.Close()
			return nil
		}
		s.conns[conn] = cancel
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(ctx, cancel, conn)
	}
}

// Close stops accepting, disconnects every connection, and waits for the
// connection goroutines to exit. It does not close the router.
func (s *BinaryServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	for conn, cancel := range s.conns {
		cancel()
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// forget drops conn from the tracked set.
func (s *BinaryServer) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn runs one connection: handshake, then the reader loop in this
// goroutine and the FIFO writer in a second one.
func (s *BinaryServer) serveConn(ctx context.Context, cancel context.CancelFunc, conn net.Conn) {
	defer s.wg.Done()
	defer s.forget(conn)
	defer conn.Close()
	defer cancel()

	br := bufio.NewReaderSize(conn, 64<<10)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != wireMagic {
		return
	}
	if _, err := conn.Write(wireMagic[:]); err != nil {
		return
	}

	order := make(chan binEntry, s.depth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.writeLoop(ctx, conn, order)
	}()

	s.readLoop(ctx, br, order)
	close(order)
	<-writerDone
}

// readLoop decodes decide frames and submits them to the router. Malformed
// frames that still carry a parsable request ID get an error response in
// order; framing-level corruption tears the connection down.
func (s *BinaryServer) readLoop(ctx context.Context, br *bufio.Reader, order chan<- binEntry) {
	var (
		lenbuf  [4]byte
		payload []byte
		req     wireRequest
	)
	for {
		if _, err := io.ReadFull(br, lenbuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenbuf[:])
		if n < 1 || n > wireMaxFrame {
			return
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		if payload[0] == frameFeedback {
			// Ground truth is fire-and-forget: no response, no FIFO slot.
			if reqID, linkID, action, err := decodeFeedback(payload); err == nil {
				s.rt.Feedback(reqID, linkID, action)
			} else {
				obsErrors.Inc()
			}
			continue
		}
		t0 := nowStamp()
		if err := decodeDecideRequest(payload, &req); err != nil {
			// The frame boundary is intact (length prefix honored), so the
			// stream is still in sync; answer in order and keep going. Echo
			// the request ID when the header was long enough to carry one.
			var rid uint64
			if len(payload) >= 12 {
				rid = binary.LittleEndian.Uint64(payload[4:12])
			}
			obsErrors.Inc()
			order <- binEntry{reqID: rid, errCode: wireErrBadRequest}
			continue
		}
		if len(req.X) != dataset.NumFeatures {
			obsErrors.Inc()
			order <- binEntry{reqID: req.ReqID, errCode: wireErrBadRequest}
			continue
		}
		x := make([]float64, len(req.X))
		for i, v := range req.X {
			x[i] = float64(v)
		}
		wantProba := req.Flags&wireFlagProba != 0
		t, err := s.rt.SubmitTimed(ctx, req.LinkID, x, !wantProba, req.ReqID, t0)
		if err != nil {
			order <- binEntry{reqID: req.ReqID, errCode: wireErrCode(err)}
			continue
		}
		obsRequests.Inc()
		order <- binEntry{reqID: req.ReqID, wantProba: wantProba, t: t}
	}
}

// writeLoop answers entries in FIFO order, flushing only when it has
// drained everything the reader submitted so far.
func (s *BinaryServer) writeLoop(ctx context.Context, conn net.Conn, order <-chan binEntry) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	var (
		buf    []byte
		proba  []float32
		ctxErr uint8 // once the conn context dies, fail the rest fast
	)
	for e := range order {
		buf = buf[:0]
		var answered *Pending // emitted after its bytes are written
		var tEnc time.Time
		switch {
		case e.errCode != 0:
			buf = appendWireError(buf, e.reqID, e.errCode)
		case ctxErr != 0:
			buf = appendWireError(buf, e.reqID, ctxErr)
		default:
			select {
			case <-e.t.Done():
			case <-ctx.Done():
				ctxErr = wireErrCanceled
			}
			if ctxErr != 0 {
				buf = appendWireError(buf, e.reqID, ctxErr)
				break
			}
			dec, err := e.t.Result()
			if err != nil {
				buf = appendWireError(buf, e.reqID, wireErrCode(err))
				break
			}
			tEnc = nowStamp()
			proba = proba[:0]
			if e.wantProba {
				for _, p := range dec.Proba {
					proba = append(proba, float32(p))
				}
			}
			buf = appendResult(buf, e.reqID, uint8(dec.Action), uint32(dec.Model.ID), proba)
			if a := int(dec.Action); a >= 0 && a < len(obsDecisions) {
				obsDecisions[a].Inc()
			}
			answered = e.t
		}
		if _, err := bw.Write(buf); err != nil {
			drainOrder(order)
			return
		}
		if answered != nil {
			s.rt.EmitDecision(answered, nowStamp().Sub(tEnc))
		}
		if len(order) == 0 {
			if err := bw.Flush(); err != nil {
				drainOrder(order)
				return
			}
		}
	}
	bw.Flush()
}

// drainOrder consumes the rest of a dead connection's order channel so the
// reader can never block on a writer that already exited.
func drainOrder(order <-chan binEntry) {
	for range order {
	}
}

// BinaryClient speaks the binary decide protocol over one connection. It
// is not safe for concurrent use; pipelining happens on a single
// goroutine: Send any number of requests, Flush, then Recv each response
// in submission order.
type BinaryClient struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	reqbuf  []byte
	lenbuf  [4]byte
	payload []byte
	resp    WireResponse
}

// DialBinary connects to a binary-protocol listener and performs the
// handshake.
func DialBinary(addr string) (*BinaryClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewBinaryClient(conn)
}

// NewBinaryClient performs the protocol handshake over an established
// connection (tests use net.Pipe or an in-process listener).
func NewBinaryClient(conn net.Conn) (*BinaryClient, error) {
	if _, err := conn.Write(wireMagic[:]); err != nil {
		conn.Close()
		return nil, err
	}
	var echo [4]byte
	if _, err := io.ReadFull(conn, echo[:]); err != nil {
		conn.Close()
		return nil, err
	}
	if echo != wireMagic {
		conn.Close()
		return nil, errors.New("serve: bad binary-protocol handshake")
	}
	return &BinaryClient{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// Send buffers one decide request; call Flush to put buffered requests on
// the wire.
func (c *BinaryClient) Send(reqID, linkID uint64, x []float32, wantProba bool) error {
	c.reqbuf = appendDecideRequest(c.reqbuf[:0], reqID, linkID, wantProba, x)
	_, err := c.bw.Write(c.reqbuf)
	return err
}

// SendFeedback buffers one ground-truth feedback frame (fire-and-forget: no
// response will come back, and Recv never returns it).
func (c *BinaryClient) SendFeedback(reqID, linkID uint64, action uint8) error {
	c.reqbuf = appendFeedback(c.reqbuf[:0], reqID, linkID, action)
	_, err := c.bw.Write(c.reqbuf)
	return err
}

// Flush writes buffered requests to the connection.
func (c *BinaryClient) Flush() error { return c.bw.Flush() }

// Recv reads the next response. The returned WireResponse (including its
// Proba slice) is reused by the next Recv.
func (c *BinaryClient) Recv() (*WireResponse, error) {
	if _, err := io.ReadFull(c.br, c.lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(c.lenbuf[:])
	if n < 1 || n > wireMaxFrame {
		return nil, errFrameTooLarge
	}
	if cap(c.payload) < int(n) {
		c.payload = make([]byte, n)
	}
	c.payload = c.payload[:n]
	if _, err := io.ReadFull(c.br, c.payload); err != nil {
		return nil, err
	}
	if err := decodeResponse(c.payload, &c.resp); err != nil {
		return nil, err
	}
	return &c.resp, nil
}

// Decide is the unpipelined convenience: one request, one response.
func (c *BinaryClient) Decide(reqID, linkID uint64, x []float32, wantProba bool) (*WireResponse, error) {
	if err := c.Send(reqID, linkID, x, wantProba); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	resp, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if resp.ReqID != reqID {
		return nil, errors.New("serve: response for a different request")
	}
	return resp, nil
}

// Close tears the connection down.
func (c *BinaryClient) Close() error { return c.conn.Close() }
