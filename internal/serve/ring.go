package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Consistent-hash ring for shard routing. Links are sticky: the same link
// ID always lands on the same shard (so per-link serving state — warm
// caches, per-link metrics — stays put), and adding or removing a shard
// moves only ~1/N of the keys instead of reshuffling everything. Each
// shard owns many virtual points on the ring to even out the split.
//
// Everything here is deterministic — pure hashing, no clocks, no
// randomness — so a given (shards, vnodes, linkID) triple routes
// identically on every host and in every test run. ring*.go sits inside
// the determinism analyzer's banned set, like replay*.go and wire*.go.

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// shard.
type ringPoint struct {
	hash  uint64
	shard int32
}

// hashRing maps 64-bit keys to shards.
type hashRing struct {
	points []ringPoint // sorted by hash
	shards int
}

// newRing builds a ring of shards × vnodes virtual points. Point positions
// hash the stable string "shard/<i>/vnode/<j>" with FNV-1a, so ring layout
// depends only on the counts.
func newRing(shards, vnodes int) *hashRing {
	if shards < 1 {
		shards = 1
	}
	if vnodes < 1 {
		vnodes = 1
	}
	r := &hashRing{points: make([]ringPoint, 0, shards*vnodes), shards: shards}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "shard/%d/vnode/%d", s, v)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), shard: int32(s)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.shard < b.shard
	})
	return r
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that
// spreads sequential link IDs uniformly over the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardFor returns the shard owning linkID: the first ring point at or
// after the key's scrambled position, wrapping at the top.
func (r *hashRing) shardFor(linkID uint64) int {
	if r.shards == 1 {
		return 0
	}
	h := mix64(linkID)
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	return int(pts[i].shard)
}
