package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/obs/decisionlog"
)

// auditRouter builds a router with an attached decision log writing into buf.
func auditRouter(t *testing.T, buf *bytes.Buffer, shards int, sample uint64, pred Predictor) (*Router, *decisionlog.Log) {
	t.Helper()
	reg := NewRegistry()
	reg.Install("test", pred)
	rt := NewRouter(reg, RouterConfig{
		Shards:    shards,
		Coalescer: CoalescerConfig{MaxBatch: 16, MaxLinger: 50 * time.Microsecond},
	})
	l, err := decisionlog.New(buf, decisionlog.Config{
		NFeat:  len(testRow),
		Rings:  shards,
		Sample: sample,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetAudit(l)
	return rt, l
}

// TestAuditLogAcrossHotSwap pins the audit stream's version honesty: a model
// hot-swap mid-traffic must never produce an audit record whose ModelID
// differs from the version that actually answered that request on the wire.
// The wire response is the ground truth — both come from the same captured
// batch snapshot, so they must agree exactly.
func TestAuditLogAcrossHotSwap(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	m1 := reg.Install("v1", fitTestForest(t))
	rt := NewRouter(reg, RouterConfig{
		Shards:    2,
		Coalescer: CoalescerConfig{MaxBatch: 16, MaxLinger: 50 * time.Microsecond},
	})
	l, err := decisionlog.New(&buf, decisionlog.Config{NFeat: len(testRow), Rings: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetAudit(l)
	addr, srv := startBinary(t, rt)
	c, err := DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	x32 := make([]float32, len(testRow))
	for i, v := range testRow {
		x32[i] = float32(v)
	}
	wireModel := make(map[uint64]uint32)
	drive := func(base uint64, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := c.Send(base+uint64(i), base+uint64(i)*31, x32, false); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			resp, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if resp.Err != 0 {
				t.Fatalf("request %d failed with wire error %d", resp.ReqID, resp.Err)
			}
			wireModel[resp.ReqID] = resp.ModelID
		}
	}

	drive(0, 200)
	m2 := reg.Install("v2", fitTestForest(t))
	if m2.ID == m1.ID {
		t.Fatalf("hot-swap did not bump the model version: %d", m2.ID)
	}
	drive(1000, 200)

	srv.Close()
	rt.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := decisionlog.Read(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Records) != 400 {
		t.Fatalf("audit log holds %d records, want 400", len(data.Records))
	}
	versions := map[uint32]int{}
	for _, rec := range data.Records {
		if rec.Kind != decisionlog.KindDecision {
			t.Fatalf("unexpected record kind %d", rec.Kind)
		}
		want, ok := wireModel[rec.ReqID]
		if !ok {
			t.Fatalf("audit record for unknown req_id %d", rec.ReqID)
		}
		if rec.ModelID != want {
			t.Fatalf("req %d: audit says model %d, wire answered with %d — audit stream lied about the batch's version",
				rec.ReqID, rec.ModelID, want)
		}
		versions[rec.ModelID]++
	}
	// The swap happened between the two waves, so both versions must appear.
	if versions[uint32(m1.ID)] == 0 || versions[uint32(m2.ID)] == 0 {
		t.Fatalf("expected both model versions in the audit log, got %v", versions)
	}
}

// TestBinaryFeedbackJoinsAuditStream drives decides plus ground-truth
// feedback over the binary wire and checks the log carries a joinable truth
// record for every sampled decision — and only for sampled ones, since both
// kinds go through the same deterministic predicate.
func TestBinaryFeedbackJoinsAuditStream(t *testing.T) {
	var buf bytes.Buffer
	rt, l := auditRouter(t, &buf, 2, 4, fitTestForest(t))
	addr, srv := startBinary(t, rt)
	c, err := DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	x32 := make([]float32, len(testRow))
	for i, v := range testRow {
		x32[i] = float32(v)
	}
	const n = 256
	for i := 0; i < n; i++ {
		if err := c.Send(uint64(i), uint64(i)*31, x32, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := c.SendFeedback(uint64(i), uint64(i)*31, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Feedback is fire-and-forget; a decide round-trip fences it so the
	// server has consumed every prior frame before we shut down.
	if _, err := c.Decide(1<<40, 0, x32, false); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	rt.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := decisionlog.Read(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	decisions := map[uint64]bool{}
	truths := map[uint64]bool{}
	for _, rec := range data.Records {
		switch rec.Kind {
		case decisionlog.KindDecision:
			decisions[rec.ReqID] = true
		case decisionlog.KindTruth:
			truths[rec.ReqID] = true
			if rec.Action != 1 {
				t.Fatalf("truth record %d carries action %d, want 1", rec.ReqID, rec.Action)
			}
		}
	}
	if len(decisions) == 0 || len(decisions) == n {
		t.Fatalf("1/4 sampling kept %d of %d decisions", len(decisions), n)
	}
	for id := range truths {
		if id >= n {
			continue // the fencing decide
		}
		if !decisions[id] {
			t.Fatalf("truth %d has no matching sampled decision", id)
		}
	}
	for id := range decisions {
		if id >= n {
			continue
		}
		if !truths[id] {
			t.Fatalf("sampled decision %d got no truth record", id)
		}
	}
	// Every sampled decision must carry its request identity and non-zero
	// model version; the latency columns are wall-clock and only need to be
	// populated where a stage exists (predict is always real).
	for _, rec := range data.Records {
		if rec.Kind != decisionlog.KindDecision {
			continue
		}
		if rec.ModelID == 0 {
			t.Fatalf("decision %d carries model 0", rec.ReqID)
		}
		if rec.Feat[0] != float32(testRow[0]) {
			t.Fatalf("decision %d feature 0 = %v, want %v", rec.ReqID, rec.Feat[0], testRow[0])
		}
	}
}

// TestHTTPFeedbackAndStageMetrics exercises the JSON transport end of the
// audit stream: req_id threads through POST /v1/decide into the log, POST
// /v1/feedback lands a truth record, and the per-stage histograms on
// /metrics accumulate observations.
func TestHTTPFeedbackAndStageMetrics(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	reg.Install("test", fitTestForest(t))
	s := New(reg, Config{Shards: 2})
	l, err := decisionlog.New(&buf, decisionlog.Config{NFeat: len(testRow), Rings: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Router().SetAudit(l)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/decide", `{"features":[1,2,3,4,5,6,7],"link_id":9,"req_id":77}`); code != http.StatusOK {
		t.Fatalf("decide returned %d", code)
	}
	if code := post("/v1/feedback", `{"req_id":77,"link_id":9,"action_id":2}`); code != http.StatusNoContent {
		t.Fatalf("feedback returned %d", code)
	}
	if code := post("/v1/feedback", `{"req_id":77,"link_id":9,"action_id":-1}`); code != http.StatusBadRequest {
		t.Fatalf("out-of-range feedback returned %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, stage := range []string{"admission", "queue", "coalesce", "predict", "encode"} {
		want := `libra_serve_stage_seconds_count{stage="` + stage + `"}`
		if !strings.Contains(metrics.String(), want) {
			t.Fatalf("/metrics is missing %s", want)
		}
	}

	ts.Close()
	s.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := decisionlog.Read(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var sawDecision, sawTruth bool
	for _, rec := range data.Records {
		switch rec.Kind {
		case decisionlog.KindDecision:
			if rec.ReqID == 77 && rec.LinkID == 9 {
				sawDecision = true
			}
		case decisionlog.KindTruth:
			if rec.ReqID == 77 && rec.LinkID == 9 && rec.Action == 2 {
				sawTruth = true
			}
		}
	}
	if !sawDecision || !sawTruth {
		t.Fatalf("audit log missing the decide/feedback pair: decision=%v truth=%v (%d records)",
			sawDecision, sawTruth, len(data.Records))
	}
}

// TestRouterSubmitTimedStampsShard checks the router stamps the owning shard
// into the pending, matching the ring, so audit records attribute to the
// right shard.
func TestRouterSubmitTimedStampsShard(t *testing.T) {
	reg := NewRegistry()
	reg.Install("test", fitTestForest(t))
	rt := NewRouter(reg, RouterConfig{Shards: 3, Coalescer: CoalescerConfig{MaxBatch: 1}})
	defer rt.Close()
	for link := uint64(0); link < 64; link++ {
		p, err := rt.SubmitTimed(context.Background(), link, testRow, true, link, nowStamp())
		if err != nil {
			t.Fatal(err)
		}
		<-p.Done()
		if int(p.p.shard) != rt.ShardFor(link) {
			t.Fatalf("link %d stamped shard %d, ring says %d", link, p.p.shard, rt.ShardFor(link))
		}
		if p.p.reqID != link || p.p.linkID != link {
			t.Fatalf("audit identity lost: %+v", p.p)
		}
	}
}
