package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/ml"
)

// newTestServer wires a Server around reg behind an httptest listener.
func newTestServer(t *testing.T, reg *Registry, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	s := New(reg, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, s
}

// decideBody encodes a /v1/decide request.
func decideBody(x []float64) *bytes.Reader {
	b, _ := json.Marshal(map[string]any{"features": x})
	return bytes.NewReader(b)
}

// postDecide issues one decision request and decodes the response.
func postDecide(t *testing.T, url string, x []float64) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/decide", "application/json", decideBody(x))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding %d response: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, body
}

// TestDecideHTTP covers the happy path and request validation.
func TestDecideHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Install("test", fitTestForest(t))
	ts, _ := newTestServer(t, reg, Config{})

	code, body := postDecide(t, ts.URL, testRows(1)[0])
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, body)
	}
	action, _ := body["action"].(string)
	if action != "BA" && action != "RA" && action != "NA" {
		t.Errorf("action = %q, want BA/RA/NA", action)
	}
	proba, _ := body["proba"].([]any)
	if len(proba) != 3 {
		t.Fatalf("proba = %v, want 3 classes", body["proba"])
	}
	sum := 0.0
	for _, p := range proba {
		sum += p.(float64)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("proba sums to %v, want 1", sum)
	}
	if id, _ := body["model_id"].(float64); id != 1 {
		t.Errorf("model_id = %v, want 1", body["model_id"])
	}

	// Wrong dimensionality and malformed JSON are 400s.
	if code, _ := postDecide(t, ts.URL, []float64{1, 2}); code != http.StatusBadRequest {
		t.Errorf("short vector: status = %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
}

// TestReadinessAndModelLifecycle drives the not-ready -> upload -> swap ->
// rollback sequence over HTTP.
func TestReadinessAndModelLifecycle(t *testing.T) {
	reg := NewRegistry()
	ts, _ := newTestServer(t, reg, Config{})

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("empty /readyz = %d, want 503", code)
	}
	if code, _ := postDecide(t, ts.URL, testRows(1)[0]); code != http.StatusServiceUnavailable {
		t.Errorf("decide without model = %d, want 503", code)
	}

	upload := func(rf *ml.RandomForest, source string) map[string]any {
		var buf bytes.Buffer
		if err := core.SaveClassifier(&core.MLClassifier{Model: rf}, &buf); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/models?source="+source, "application/octet-stream", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %s: status %d, body %v", source, resp.StatusCode, body)
		}
		return body
	}

	// Rollback with no history is a conflict.
	resp, err := http.Post(ts.URL+"/models/rollback", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("rollback with no history = %d, want 409", resp.StatusCode)
	}

	m1 := upload(fitTestForest(t), "first")
	if get("/readyz") != http.StatusOK {
		t.Error("/readyz not 200 after upload")
	}
	if m1["id"].(float64) != 1 || m1["source"].(string) != "first" {
		t.Errorf("first upload = %v", m1)
	}
	m2 := upload(fitTestForest(t), "second")
	if m2["id"].(float64) != 2 {
		t.Errorf("second upload = %v", m2)
	}

	// Listing shows the active and rollback versions.
	resp, err = http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Active   *Model `json:"active"`
		Rollback *Model `json:"rollback"`
	}
	json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if listing.Active == nil || listing.Active.ID != 2 || listing.Rollback == nil || listing.Rollback.ID != 1 {
		t.Fatalf("listing = %+v", listing)
	}

	// Rollback restores version 1.
	resp, err = http.Post(ts.URL+"/models/rollback", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || m["id"].(float64) != 1 {
		t.Fatalf("rollback: status %d, body %v", resp.StatusCode, m)
	}
	if code, body := postDecide(t, ts.URL, testRows(1)[0]); code != http.StatusOK || body["model_id"].(float64) != 1 {
		t.Errorf("post-rollback decide: status %d, body %v", code, body)
	}

	// A garbage artifact is rejected without disturbing the active model.
	resp, err = http.Post(ts.URL+"/models", "application/octet-stream", strings.NewReader("libra-model v999 junk\n{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad artifact: status = %d, want 400", resp.StatusCode)
	}
	if reg.Active().ID != 1 {
		t.Errorf("bad upload disturbed the active model: %+v", reg.Active())
	}
}

// TestOverloadHTTP: with the queue saturated behind a blocked model, excess
// requests get 429 with Retry-After, and the shed counter advances.
func TestOverloadHTTP(t *testing.T) {
	gate := make(chan struct{})
	pred := &fakePred{class: 0, classes: 3, gate: gate}
	reg := NewRegistry()
	reg.Install("blocking", pred)
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(gate) }) }
	defer release()
	ts, _ := newTestServer(t, reg, Config{
		Coalescer:      CoalescerConfig{MaxBatch: 2, MaxLinger: time.Microsecond, QueueDepth: 2},
		DefaultTimeout: 10 * time.Second,
	})

	shedBefore := obsShed.Value()
	const clients = 24
	codes := make(chan int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/decide", "application/json", decideBody(testRow))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	// Let the herd pile up, then release the model.
	time.Sleep(300 * time.Millisecond)
	release()
	wg.Wait()
	close(codes)
	counts := map[int]int{}
	for c := range codes {
		counts[c]++
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Errorf("no 429s under overload; codes = %v", counts)
	}
	if counts[http.StatusOK] == 0 {
		t.Errorf("no successes; codes = %v", counts)
	}
	if counts[http.StatusOK]+counts[http.StatusTooManyRequests] != clients {
		t.Errorf("unexpected statuses: %v", counts)
	}
	if obsShed.Value() == shedBefore {
		t.Error("shed counter did not advance")
	}
}

// TestDeadlineHTTP: a decision that cannot complete within the default
// timeout comes back 504.
func TestDeadlineHTTP(t *testing.T) {
	gate := make(chan struct{})
	pred := &fakePred{class: 0, classes: 3, gate: gate}
	reg := NewRegistry()
	reg.Install("blocking", pred)
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(gate) }) }
	defer release()
	ts, _ := newTestServer(t, reg, Config{
		Coalescer:      CoalescerConfig{MaxBatch: 2, MaxLinger: time.Microsecond},
		DefaultTimeout: 50 * time.Millisecond,
	})

	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", decideBody(testRow))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	release()
}

// TestHotSwapHTTPUnderLoad uploads models while decision traffic is in full
// flight: every request must succeed — the swap drops nothing.
func TestHotSwapHTTPUnderLoad(t *testing.T) {
	reg := NewRegistry()
	reg.Install("seed", fitTestForest(t))
	ts, _ := newTestServer(t, reg, Config{
		Coalescer: CoalescerConfig{MaxBatch: 8, MaxLinger: 100 * time.Microsecond},
	})

	var artifact bytes.Buffer
	if err := core.SaveClassifier(&core.MLClassifier{Model: fitTestForest(t)}, &artifact); err != nil {
		t.Fatal(err)
	}
	art := artifact.Bytes()

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(ts.URL+fmt.Sprintf("/models?source=swap-%d", i),
				"application/octet-stream", bytes.NewReader(art))
			if err != nil {
				t.Errorf("swap: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("swap: status %d", resp.StatusCode)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	const workers = 8
	const perWorker = 50
	row := testRows(1)[0]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				code, body := postDecide(t, ts.URL, row)
				if code != http.StatusOK {
					t.Errorf("request dropped during hot-swap: status %d, body %v", code, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
}

// TestMetricsEndpoint: both exposition formats include the serve metrics.
func TestMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Install("test", fitTestForest(t))
	ts, _ := newTestServer(t, reg, Config{})
	if code, _ := postDecide(t, ts.URL, testRows(1)[0]); code != http.StatusOK {
		t.Fatalf("decide = %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{
		"libra_serve_requests_total", "libra_serve_shed_total",
		"libra_serve_queue_depth", "libra_serve_batch_size",
		"libra_serve_decision_seconds", "libra_serve_swaps_total",
	} {
		if !bytes.Contains(text, []byte(name)) {
			t.Errorf("/metrics missing %s", name)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var parsed any
	err = json.NewDecoder(resp.Body).Decode(&parsed)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
}
