package serve

import (
	"bytes"
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/core"
)

// TestWireRoundTrip pins the frame layout: encode → decode is the identity
// for requests and both response types.
func TestWireRoundTrip(t *testing.T) {
	x := []float32{1.5, -2.25, 0, float32(math.Inf(1)), 3.125, -0.5, 42}
	frame := appendDecideRequest(nil, 7, 99, true, x)
	if len(frame) != 4+reqHeadLen+4*len(x) {
		t.Fatalf("request frame is %d bytes", len(frame))
	}
	var req wireRequest
	if err := decodeDecideRequest(frame[4:], &req); err != nil {
		t.Fatal(err)
	}
	if req.ReqID != 7 || req.LinkID != 99 || req.Flags&wireFlagProba == 0 {
		t.Fatalf("decoded header %+v", req)
	}
	for i := range x {
		if req.X[i] != x[i] {
			t.Fatalf("feature %d: got %v want %v", i, req.X[i], x[i])
		}
	}

	proba := []float32{0.25, 0.5, 0.25}
	rf := appendResult(nil, 12, 2, 3, proba)
	var resp WireResponse
	if err := decodeResponse(rf[4:], &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ReqID != 12 || resp.Action != 2 || resp.ModelID != 3 || resp.Err != 0 {
		t.Fatalf("decoded result %+v", resp)
	}
	if len(resp.Proba) != 3 || resp.Proba[1] != 0.5 {
		t.Fatalf("decoded proba %v", resp.Proba)
	}

	ef := appendWireError(nil, 31, wireErrOverloaded)
	if err := decodeResponse(ef[4:], &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ReqID != 31 || resp.Err != wireErrOverloaded || len(resp.Proba) != 0 {
		t.Fatalf("decoded error %+v", resp)
	}

	// Truncation never decodes.
	for cut := 1; cut < len(frame)-4; cut++ {
		if err := decodeDecideRequest(frame[4:4+cut], &req); err == nil {
			t.Fatalf("truncated request of %d bytes decoded", cut)
		}
	}
}

// TestRingDeterministicAndSticky pins the consistent-hash contract: routing
// is a pure function of (shards, vnodes, link), every shard owns keys, and
// growing the fleet moves only a fraction of them.
func TestRingDeterministicAndSticky(t *testing.T) {
	r1 := newRing(4, 64)
	r2 := newRing(4, 64)
	const links = 10000
	counts := make([]int, 4)
	for l := uint64(0); l < links; l++ {
		s := r1.shardFor(l)
		if s != r2.shardFor(l) {
			t.Fatalf("link %d routes differently on identical rings", l)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d owns no links", s)
		}
		if n < links/4/4 || n > links {
			t.Fatalf("shard %d owns %d of %d links: ring badly unbalanced", s, n, links)
		}
	}
	// Adding a shard must not reshuffle everything: most links stay put.
	r5 := newRing(5, 64)
	moved := 0
	for l := uint64(0); l < links; l++ {
		if r1.shardFor(l) != r5.shardFor(l) {
			moved++
		}
	}
	if moved > links/2 {
		t.Fatalf("%d of %d links moved when adding one shard", moved, links)
	}
}

// TestRouterShardStats drives decisions through the ring and checks the
// invariant CI's smoke test relies on: per-shard admissions sum to the
// total, and the same link always lands on the same shard.
func TestRouterShardStats(t *testing.T) {
	reg := NewRegistry()
	reg.Install("test", fitTestForest(t))
	rt := NewRouter(reg, RouterConfig{Shards: 3, Coalescer: CoalescerConfig{MaxBatch: 8, MaxLinger: 50 * time.Microsecond}})
	defer rt.Close()

	before := make([]uint64, 3)
	for i, st := range rt.ShardStats() {
		before[i] = st.Requests
	}
	row := testRows(1)[0]
	const n = 120
	for l := 0; l < n; l++ {
		if _, err := rt.Decide(context.Background(), uint64(l), row); err != nil {
			t.Fatal(err)
		}
		if rt.ShardFor(uint64(l)) != rt.ShardFor(uint64(l)) {
			t.Fatal("routing is not sticky")
		}
	}
	var total uint64
	hit := 0
	for i, st := range rt.ShardStats() {
		d := st.Requests - before[i]
		total += d
		if d > 0 {
			hit++
		}
	}
	if total != n {
		t.Fatalf("shard admissions sum to %d, want %d", total, n)
	}
	if hit < 2 {
		t.Fatalf("only %d of 3 shards saw traffic", hit)
	}
}

// startBinary boots a binary server over a router on a loopback listener.
func startBinary(t *testing.T, rt *Router) (addr string, srv *BinaryServer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv = NewBinaryServer(rt, 0)
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln.Addr().String(), srv
}

// TestBinaryDecideParity answers pipelined binary decides from a real
// quantized forest and checks every class against the model's own batch
// answers — the wire adds transport, not drift.
func TestBinaryDecideParity(t *testing.T) {
	rf := fitTestForest(t)
	q, err := rf.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Install("quant", q)
	rt := NewRouter(reg, RouterConfig{Shards: 2, Coalescer: CoalescerConfig{MaxBatch: 32, MaxLinger: 50 * time.Microsecond}})
	defer rt.Close()
	addr, _ := startBinary(t, rt)

	c, err := DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows := testRows(64)
	want := q.PredictBatch(rows, nil)
	x32 := make([][]float32, len(rows))
	for i, row := range rows {
		x32[i] = make([]float32, len(row))
		for j, v := range row {
			x32[i][j] = float32(v)
		}
	}

	// Pipelined: all requests on the wire before the first Recv.
	for i := range x32 {
		if err := c.Send(uint64(i), uint64(i%7), x32[i], false); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := range x32 {
		resp, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if resp.ReqID != uint64(i) {
			t.Fatalf("response %d carries req_id %d: FIFO order broken", i, resp.ReqID)
		}
		if resp.Err != 0 {
			t.Fatalf("request %d failed with wire error %d", i, resp.Err)
		}
		if int(resp.Action) != want[i] {
			t.Fatalf("request %d: wire action %d, model class %d", i, resp.Action, want[i])
		}
		if len(resp.Proba) != 0 {
			t.Fatalf("class-only response %d carries %d probabilities", i, len(resp.Proba))
		}
	}

	// The proba flag returns the full row.
	resp, err := c.Decide(1000, 3, x32[0], true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != 0 || len(resp.Proba) != q.NumClasses() {
		t.Fatalf("proba decide: err %d, %d classes", resp.Err, len(resp.Proba))
	}
	wantP := q.Proba(rows[0])
	var sum float32
	for c2, p := range resp.Proba {
		if p != float32(wantP[c2]) {
			t.Fatalf("proba class %d: wire %v, model %v", c2, p, wantP[c2])
		}
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

// TestBinaryBadRequest: wrong feature count gets a typed error frame and
// the connection keeps serving.
func TestBinaryBadRequest(t *testing.T) {
	reg := NewRegistry()
	reg.Install("test", fitTestForest(t))
	rt := NewRouter(reg, RouterConfig{Coalescer: CoalescerConfig{MaxBatch: 8, MaxLinger: 50 * time.Microsecond}})
	defer rt.Close()
	addr, _ := startBinary(t, rt)
	c, err := DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Decide(1, 0, []float32{1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != wireErrBadRequest {
		t.Fatalf("short feature vector answered with code %d, want %d", resp.Err, wireErrBadRequest)
	}
	good := make([]float32, len(testRows(1)[0]))
	resp, err = c.Decide(2, 0, good, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != 0 {
		t.Fatalf("connection did not survive a bad request: code %d", resp.Err)
	}
}

// TestBinaryNoModel: decides before the first load fail fast with the
// typed code rather than hanging or tearing the connection.
func TestBinaryNoModel(t *testing.T) {
	rt := NewRouter(NewRegistry(), RouterConfig{Coalescer: CoalescerConfig{MaxBatch: 8, MaxLinger: 50 * time.Microsecond}})
	defer rt.Close()
	addr, _ := startBinary(t, rt)
	c, err := DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Decide(5, 0, make([]float32, len(testRows(1)[0])), false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != wireErrNoModel {
		t.Fatalf("code %d, want %d", resp.Err, wireErrNoModel)
	}
}

// TestHotSwapUnderBinaryPipeline extends TestHotSwapUnderLoad to the wire:
// models hot-swap continuously while a client keeps a deep pipeline of
// binary decides in flight. Every frame must decode (no torn frames),
// arrive in FIFO order, and report an action consistent with the model
// version that answered it (no batch split across versions).
func TestHotSwapUnderBinaryPipeline(t *testing.T) {
	reg := NewRegistry()
	predA := &fakePred{class: 0, classes: 3}
	predB := &fakePred{class: 1, classes: 3}

	// classByModel maps registry version -> the class its fake answers.
	var classByModel sync.Map
	record := func(m *Model, p *fakePred) { classByModel.Store(uint32(m.ID), uint8(p.class)) }
	record(reg.Install("A", predA), predA)

	rt := NewRouter(reg, RouterConfig{Shards: 2, Coalescer: CoalescerConfig{MaxBatch: 8, MaxLinger: 100 * time.Microsecond}})
	defer rt.Close()
	addr, _ := startBinary(t, rt)

	stop := make(chan struct{})
	var swaps sync.WaitGroup
	swaps.Add(1)
	go func() {
		defer swaps.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				record(reg.Install("B", predB), predB)
			} else {
				record(reg.Install("A", predA), predA)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	c, err := DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	x := make([]float32, len(testRows(1)[0]))
	const total = 3000
	const window = 128
	sent, recvd := 0, 0
	for recvd < total {
		for sent < total && sent-recvd < window {
			if err := c.Send(uint64(sent), uint64(sent%13), x, sent%5 == 0); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		resp, err := c.Recv()
		if err != nil {
			t.Fatalf("after %d responses: %v", recvd, err)
		}
		if resp.ReqID != uint64(recvd) {
			t.Fatalf("response %d carries req_id %d: order broken under swaps", recvd, resp.ReqID)
		}
		if resp.Err != 0 {
			t.Fatalf("request %d dropped during hot-swap: wire error %d", recvd, resp.Err)
		}
		wantAny, ok := classByModel.Load(resp.ModelID)
		if !ok {
			t.Fatalf("response %d reports unknown model %d", recvd, resp.ModelID)
		}
		if resp.Action != wantAny.(uint8) {
			t.Fatalf("request %d: action %d from model %d: batch split across versions",
				recvd, resp.Action, resp.ModelID)
		}
		recvd++
	}
	close(stop)
	swaps.Wait()
}

// TestRegistryQuantFormat: quant32 registries compile loaded artifacts to
// the quantized representation and answer identically to the float64 form;
// unknown formats are rejected.
func TestRegistryQuantFormat(t *testing.T) {
	rf := fitTestForest(t)
	var artifact bytes.Buffer
	if err := core.SaveClassifier(&core.MLClassifier{Model: rf}, &artifact); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	if err := reg.SetFormat("float16"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := reg.SetFormat(FormatQuant32); err != nil {
		t.Fatal(err)
	}
	m, err := reg.Load("artifact", bytes.NewReader(artifact.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "random-forest-q32" {
		t.Fatalf("quant32 registry loaded %q", m.Name)
	}
	rows := testRows(50)
	// Serving inputs are float32-representable (the binary wire narrows
	// them); parity is exact there.
	for i := range rows {
		for j := range rows[i] {
			rows[i][j] = float64(float32(rows[i][j]))
		}
	}
	want := rf.PredictBatch(rows, nil)
	got := m.Predictor().PredictBatch(rows, nil)
	for i := range rows {
		if got[i] != want[i] {
			t.Fatalf("row %d: quant %d, float64 %d", i, got[i], want[i])
		}
	}
}
