// Package serve is the online inference service: it loads classifiers
// persisted by libra-train and answers per-link adaptation queries over
// HTTP/JSON. Concurrent single-prediction requests are coalesced into the
// forest's 0 B/op batch path, models hot-swap atomically with zero dropped
// in-flight requests, and a bounded admission queue sheds overload with 429
// instead of letting latency collapse. See DESIGN.md §9.
//
// The serving layer is deliberately outside the deterministic core: it
// reads wall clocks and races goroutines. The boundary is one-way — serve
// imports the core, never the reverse — and the deterministic feature
// sources it exposes for replay (replay*.go) stay under the determinism
// analyzer's full discipline.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/obs"
)

// maxModelUpload bounds POST /models bodies (a 500-tree forest is ~15 MB).
const maxModelUpload = 256 << 20

// Config parameterizes the service.
type Config struct {
	// Coalescer sizes each shard's batching engine (zero values pick
	// defaults).
	Coalescer CoalescerConfig
	// Shards is the number of coalescer shards behind the consistent-hash
	// router (<= 0 selects 1).
	Shards int
	// VNodes is the virtual points per shard on the hash ring (<= 0
	// selects 64).
	VNodes int
	// DefaultTimeout is applied to decision requests that carry no
	// deadline of their own (<= 0 selects 2s).
	DefaultTimeout time.Duration
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	c.Coalescer = c.Coalescer.withDefaults()
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	return c
}

// Server answers decision queries from the registry's active model.
//
//	POST /v1/decide        {"features":[7 floats],"link_id":N,"req_id":N} -> action + probabilities
//	POST /v1/feedback      {"req_id":N,"link_id":N,"action_id":N} ground truth -> 204
//	GET  /models           active model and rollback target
//	POST /models           upload a libra-model artifact; atomic hot-swap
//	POST /models/rollback  restore the previously active model
//	GET  /shards           per-shard routing and admission stats
//	GET  /healthz          liveness (200 once the process serves HTTP)
//	GET  /readyz           readiness (200 once a model is loaded)
//	GET  /metrics          libra_serve_* metrics (Prometheus; ?format=json)
type Server struct {
	cfg Config
	reg *Registry
	rt  *Router
	mux *http.ServeMux
}

// New assembles a server around reg. Callers own the registry so they can
// pre-load a model before exposing the listener; Close drains every shard.
func New(reg *Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		reg: reg,
		rt: NewRouter(reg, RouterConfig{
			Shards:    cfg.Shards,
			VNodes:    cfg.VNodes,
			Coalescer: cfg.Coalescer,
		}),
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/decide", s.handleDecide)
	s.mux.HandleFunc("POST /v1/feedback", s.handleFeedback)
	s.mux.HandleFunc("GET /models", s.handleModels)
	s.mux.HandleFunc("POST /models", s.handleModelUpload)
	s.mux.HandleFunc("POST /models/rollback", s.handleRollback)
	s.mux.HandleFunc("GET /shards", s.handleShards)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Router returns the sharded decide plane, for mounting the binary
// protocol listener on the same shards (cmd/libra-serve).
func (s *Server) Router() *Router { return s.rt }

// Close stops admissions and drains queued decisions. Call after the
// listeners have shut down (so no handler can enqueue concurrently
// forever); handlers still blocked in Decide are answered before Close
// returns.
func (s *Server) Close() { s.rt.Close() }

// decideRequest is the POST /v1/decide body.
type decideRequest struct {
	// Features is the 7-dimensional PHY feature vector in campaign order
	// (see dataset.Entry.Features).
	Features []float64 `json:"features"`
	// LinkID keys consistent-hash shard routing; absent means link 0.
	LinkID uint64 `json:"link_id"`
	// ReqID is the client-chosen audit identity: it keys the decision log's
	// deterministic sampling and later ground-truth joins (POST
	// /v1/feedback). Absent means 0 — fine when no audit log is attached.
	ReqID uint64 `json:"req_id"`
}

// respPool recycles response-encoding buffers across decision requests.
var respPool = sync.Pool{
	New: func() any { return make([]byte, 0, 256) },
}

// handleDecide answers one feature vector. The response is hand-encoded:
// on a single-core host the fixed per-request cost (parse + encode) is what
// dilutes the batched model's advantage, so the hot path avoids
// encoding/json on the way out.
func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	t0 := nowStamp()
	timer := obs.StartTimer()
	var req decideRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		obsErrors.Inc()
		httpError(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return
	}
	if len(req.Features) != dataset.NumFeatures {
		obsErrors.Inc()
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("want %d features, got %d", dataset.NumFeatures, len(req.Features)))
		return
	}
	obsRequests.Inc()

	ctx := r.Context()
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
		defer cancel()
	}
	// Submit rather than Decide: the handler keeps the Pending so it can
	// stamp the encode span and emit the audit record after the response
	// bytes leave.
	t, err := s.rt.SubmitTimed(ctx, req.LinkID, req.Features, false, req.ReqID, t0)
	if err != nil {
		s.writeDecideError(w, err)
		return
	}
	select {
	case <-t.Done():
	case <-ctx.Done():
		obsCanceled.Inc()
		s.writeDecideError(w, ctx.Err())
		return
	}
	dec, err := t.Result()
	if err != nil {
		s.writeDecideError(w, err)
		return
	}

	tEnc := nowStamp()
	buf := respPool.Get().([]byte)[:0]
	buf = append(buf, `{"action":"`...)
	buf = append(buf, dec.Action.String()...)
	buf = append(buf, `","action_id":`...)
	buf = strconv.AppendInt(buf, int64(dec.Action), 10)
	buf = append(buf, `,"proba":[`...)
	for i, p := range dec.Proba {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendFloat(buf, p, 'g', -1, 64)
	}
	buf = append(buf, `],"model_id":`...)
	buf = strconv.AppendInt(buf, int64(dec.Model.ID), 10)
	buf = append(buf, '}', '\n')

	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
	respPool.Put(buf)
	s.rt.EmitDecision(t, nowStamp().Sub(tEnc))

	if a := int(dec.Action); a >= 0 && a < len(obsDecisions) {
		obsDecisions[a].Inc()
	}
	timer.Observe(obsDecisionSeconds)
}

// feedbackRequest is the POST /v1/feedback body: delayed ground truth for a
// previously served decision, keyed by the (req_id, link_id) the client sent
// with it.
type feedbackRequest struct {
	ReqID    uint64 `json:"req_id"`
	LinkID   uint64 `json:"link_id"`
	ActionID int    `json:"action_id"`
}

// handleFeedback joins ground truth to the audit stream; see Router.Feedback.
// Always 204: feedback for an unsampled or unknown decision is simply
// dropped, which is what deterministic sampling demands.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req feedbackRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<12)).Decode(&req); err != nil {
		obsErrors.Inc()
		httpError(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return
	}
	if req.ActionID < 0 || req.ActionID > 255 {
		obsErrors.Inc()
		httpError(w, http.StatusBadRequest, "action_id out of range")
		return
	}
	s.rt.Feedback(req.ReqID, req.LinkID, uint8(req.ActionID))
	w.WriteHeader(http.StatusNoContent)
}

// writeDecideError maps coalescer errors to HTTP status codes.
func (s *Server) writeDecideError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		// obsShed already counted at the admission queue.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrNoModel), errors.Is(err, ErrDraining):
		obsErrors.Inc()
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// obsCanceled already counted at the waiter.
		httpError(w, http.StatusGatewayTimeout, err.Error())
	default:
		obsErrors.Inc()
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// modelsResponse is the GET /models body.
type modelsResponse struct {
	Active   *Model `json:"active"`
	Rollback *Model `json:"rollback,omitempty"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, modelsResponse{
		Active:   s.reg.Active(),
		Rollback: s.reg.Previous(),
	})
}

// handleModelUpload ingests a libra-model artifact and hot-swaps it in.
// The swap is atomic: batches in flight finish on the model they captured,
// and no request is dropped. ?source= labels the version (default "upload").
func (s *Server) handleModelUpload(w http.ResponseWriter, r *http.Request) {
	source := r.URL.Query().Get("source")
	if source == "" {
		source = "upload"
	}
	m, err := s.reg.Load(source, io.LimitReader(r.Body, maxModelUpload))
	if err != nil {
		obsErrors.Inc()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	m, err := s.reg.Rollback()
	if err != nil {
		obsErrors.Inc()
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// shardsResponse is the GET /shards body.
type shardsResponse struct {
	Shards []ShardStat `json:"shards"`
	Total  uint64      `json:"total"`
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	stats := s.rt.ShardStats()
	var total uint64
	for _, st := range stats {
		total += st.Requests
	}
	writeJSON(w, http.StatusOK, shardsResponse{Shards: stats, Total: total})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.reg.Active() == nil {
		httpError(w, http.StatusServiceUnavailable, ErrNoModel.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ready\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		obs.Default.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
