package serve

import "github.com/libra-wlan/libra/internal/obs"

// The serving layer's metrics, registered once at init so the hot path pays
// no lookups. Names follow the repo convention
// libra_<subsystem>_<noun>_<unit>; see DESIGN.md §8.
var (
	obsRequests = obs.NewCounter("libra_serve_requests_total",
		"decision requests admitted (sheds and malformed requests excluded)")
	obsShed = obs.NewCounter("libra_serve_shed_total",
		"decision requests rejected with 429 because the admission queue was full")
	obsCanceled = obs.NewCounter("libra_serve_canceled_total",
		"decision requests abandoned because their context expired before a result")
	obsErrors = obs.NewCounter("libra_serve_errors_total",
		"malformed or failed decision requests (4xx other than 429, and 5xx)")
	obsSwaps = obs.NewCounter("libra_serve_swaps_total",
		"model hot-swaps (loads and rollbacks) applied to the registry")
	obsQueueDepth = obs.NewGauge("libra_serve_queue_depth",
		"decision requests waiting in the coalescer's admission queue")
	obsBatchSize = obs.NewHistogram("libra_serve_batch_size",
		"predictions per coalesced model invocation",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	obsDecisionSeconds = obs.NewHistogram("libra_serve_decision_seconds",
		"wall-clock latency of one decision, admission to response",
		obs.DurationBuckets)
	obsDecisions = [3]*obs.Counter{
		obs.NewCounter(`libra_serve_decisions_total{action="BA"}`,
			"decisions answered with beam adaptation"),
		obs.NewCounter(`libra_serve_decisions_total{action="RA"}`,
			"decisions answered with rate adaptation"),
		obs.NewCounter(`libra_serve_decisions_total{action="NA"}`,
			"decisions answered with no adaptation"),
	}
	// Stage-attribution histograms: libra_serve_decision_seconds split at the
	// pipeline's seams, so a tail regression on /metrics names its stage. The
	// same five spans are stamped into every sampled audit record
	// (decisionlog.Record), which holds the per-decision evidence.
	obsStageSeconds = [numStages]*obs.Histogram{
		obs.NewHistogram(`libra_serve_stage_seconds{stage="admission"}`,
			"transport decode and validation, request arrival to admission", obs.DurationBuckets),
		obs.NewHistogram(`libra_serve_stage_seconds{stage="queue"}`,
			"admission enqueue to dispatcher dequeue", obs.DurationBuckets),
		obs.NewHistogram(`libra_serve_stage_seconds{stage="coalesce"}`,
			"dispatcher dequeue to batch capture (the linger window)", obs.DurationBuckets),
		obs.NewHistogram(`libra_serve_stage_seconds{stage="predict"}`,
			"model batch walk, shared by every decision in the batch", obs.DurationBuckets),
		obs.NewHistogram(`libra_serve_stage_seconds{stage="encode"}`,
			"result ready to response bytes handed to the transport", obs.DurationBuckets),
	}
)

// Stage indices into obsStageSeconds, in pipeline order. They mirror the
// lat_*_ns columns of an audit record one-for-one.
const (
	stageAdmission = iota
	stageQueue
	stageCoalesce
	stagePredict
	stageEncode
	numStages
)
