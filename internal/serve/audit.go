package serve

import (
	"context"
	"time"

	"github.com/libra-wlan/libra/internal/obs/decisionlog"
)

// The audit-stream glue between the serving layer and the decision log.
// The serving layer owns every wall-clock read (nowStamp, sanctioned below);
// the decisionlog and drift packages are //lint:clockfree and receive
// latencies only as plain integer data, already measured. Emission happens
// on transport goroutines AFTER the response bytes are written, so the
// decide path never waits on the audit ring, and the ring's Publish is
// itself //lint:noalloc and non-blocking.

// nowStamp reads the wall clock for stage-latency attribution. Every stamp
// on the decide path funnels through here so the sanction below is the one
// place the serving layer's measurement clock is visible to the analyzers.
//
//lint:wallclock per-stage latency attribution measures real elapsed time
func nowStamp() time.Time { return time.Now() }

// durNs converts a duration to nanoseconds, saturated to u32 (about 4.29s —
// far beyond any request deadline) and clamped at zero.
func durNs(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	if d > time.Duration(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(d)
}

// spanNs returns the a->b span in nanoseconds; unset stamps span zero.
func spanNs(a, b time.Time) uint32 {
	if a.IsZero() || b.IsZero() {
		return 0
	}
	return durNs(b.Sub(a))
}

// SetAudit attaches a decision log to the router. Every served decision then
// feeds the five stage histograms, and the log's deterministic 1-in-N sample
// of decisions (plus their ground-truth feedback) is published to the
// per-shard rings. Call before the listeners start serving traffic; the
// field is read unsynchronized on the hot path.
func (rt *Router) SetAudit(l *decisionlog.Log) { rt.audit = l }

// Audit returns the attached decision log, or nil.
func (rt *Router) Audit() *decisionlog.Log { return rt.audit }

// SubmitTimed is Submit carrying the request's audit identity (reqID,
// linkID) and transport arrival stamp; see Coalescer.SubmitTimed. The
// returned Pending is what EmitDecision consumes after the transport has
// written the response.
func (rt *Router) SubmitTimed(ctx context.Context, linkID uint64, x []float64, classOnly bool, reqID uint64, t0 time.Time) (*Pending, error) {
	s := rt.ring.shardFor(linkID)
	t, err := rt.shards[s].SubmitTimed(ctx, x, classOnly, reqID, linkID, t0)
	if err != nil {
		return nil, err
	}
	t.p.shard = uint16(s)
	rt.requests[s].Inc()
	return t, nil
}

// EmitDecision closes the books on one successfully answered decision:
// observe the five stage spans on libra_serve_stage_seconds, and — when an
// audit log is attached and (reqID, linkID) falls in its deterministic
// sample — publish the full audit record to the owning shard's ring.
// Transports call it once per decision, after the response bytes are handed
// off, with the encode span they measured; it must not be called before the
// Pending is done or on an errored result.
func (rt *Router) EmitDecision(t *Pending, encode time.Duration) {
	p := t.p
	adm := spanNs(p.t0, p.tEnq)
	que := spanNs(p.tEnq, p.tDeq)
	coa := spanNs(p.tDeq, p.tCap)
	pre := spanNs(p.tCap, p.tPred)
	enc := durNs(encode)
	obsStageSeconds[stageAdmission].Observe(float64(adm) / 1e9)
	obsStageSeconds[stageQueue].Observe(float64(que) / 1e9)
	obsStageSeconds[stageCoalesce].Observe(float64(coa) / 1e9)
	obsStageSeconds[stagePredict].Observe(float64(pre) / 1e9)
	obsStageSeconds[stageEncode].Observe(float64(enc) / 1e9)

	l := rt.audit
	if l == nil || !l.Sampled(p.reqID, p.linkID) {
		return
	}
	rec := decisionlog.Record{
		Kind:    decisionlog.KindDecision,
		Action:  uint8(p.dec.Action),
		Shard:   p.shard,
		ModelID: uint32(p.dec.Model.ID),
		ReqID:   p.reqID,
		LinkID:  p.linkID,

		LatAdmissionNs: adm,
		LatQueueNs:     que,
		LatCoalesceNs:  coa,
		LatPredictNs:   pre,
		LatEncodeNs:    enc,
	}
	for i, v := range p.x {
		if i == decisionlog.MaxFeatures {
			break
		}
		rec.Feat[i] = float32(v)
	}
	l.Publish(int(p.shard), &rec)
}

// Feedback records delayed ground truth for a served decision: the action
// that hindsight says was right for (reqID, linkID). When the decision fell
// in the audit sample, a KindTruth record joins it in the log — same
// sampling predicate, so truth records are exactly as worker-count-invariant
// as the decisions they join — and the drift monitor's accuracy-over-window
// statistic consumes the pair. A no-op without an attached log.
func (rt *Router) Feedback(reqID, linkID uint64, action uint8) {
	l := rt.audit
	if l == nil || !l.Sampled(reqID, linkID) {
		return
	}
	s := rt.ring.shardFor(linkID)
	rec := decisionlog.Record{
		Kind:   decisionlog.KindTruth,
		Action: action,
		Shard:  uint16(s),
		ReqID:  reqID,
		LinkID: linkID,
	}
	l.Publish(s, &rec)
}
