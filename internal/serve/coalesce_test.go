package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/ml"
)

// fakePred is a controllable Predictor: it answers a fixed class, counts
// batch invocations and their sizes, and can block inside the model call
// until released (to pin requests in the queue).
type fakePred struct {
	class   int
	classes int
	gate    chan struct{} // non-nil: every batch call blocks until a receive succeeds

	mu      sync.Mutex
	batches []int // size of each batch invocation
	samples int
}

func (f *fakePred) Name() string    { return "fake" }
func (f *fakePred) NumClasses() int { return f.classes }

func (f *fakePred) record(n int) {
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	f.batches = append(f.batches, n)
	f.samples += n
	f.mu.Unlock()
}

func (f *fakePred) row() []float64 {
	p := make([]float64, f.classes)
	p[f.class] = 1
	return p
}

func (f *fakePred) Predict(x []float64) int { f.record(1); return f.class }
func (f *fakePred) Proba(x []float64) []float64 {
	f.record(1)
	return f.row()
}
func (f *fakePred) PredictBatch(X [][]float64, out []int) []int {
	f.record(len(X))
	out = out[:0]
	for range X {
		out = append(out, f.class)
	}
	return out
}
func (f *fakePred) PredictProbaBatch(X [][]float64, out []float64) []float64 {
	f.record(len(X))
	out = out[:0]
	for range X {
		out = append(out, f.row()...)
	}
	return out
}

func (f *fakePred) stats() (batches, samples, maxBatch int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, b := range f.batches {
		if b > maxBatch {
			maxBatch = b
		}
	}
	return len(f.batches), f.samples, maxBatch
}

// testRow is an arbitrary feature vector for fake-model tests.
var testRow = []float64{1, 2, 3, 4, 5, 6, 7}

// TestCoalescerBatches drives many concurrent requests through a slow-ish
// model and checks they ride in shared batch invocations, every one
// answered correctly.
func TestCoalescerBatches(t *testing.T) {
	pred := &fakePred{class: 1, classes: 3}
	reg := NewRegistry()
	reg.Install("test", pred)
	co := NewCoalescer(reg, CoalescerConfig{MaxBatch: 16, MaxLinger: 5 * time.Millisecond})
	defer co.Close()

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec, err := co.Decide(context.Background(), testRow)
			if err != nil {
				t.Errorf("Decide: %v", err)
				return
			}
			if dec.Action != dataset.ActRA {
				t.Errorf("action = %v, want RA", dec.Action)
			}
			if len(dec.Proba) != 3 || dec.Proba[1] != 1 {
				t.Errorf("proba = %v, want one-hot class 1", dec.Proba)
			}
			if dec.Model == nil || dec.Model.ID != 1 {
				t.Errorf("model = %+v, want registry version 1", dec.Model)
			}
		}()
	}
	wg.Wait()
	batches, samples, maxBatch := pred.stats()
	if samples != n {
		t.Fatalf("model saw %d samples, want %d", samples, n)
	}
	if batches >= n {
		t.Errorf("no coalescing: %d invocations for %d requests", batches, n)
	}
	if maxBatch > 16 {
		t.Errorf("batch of %d exceeds MaxBatch 16", maxBatch)
	}
}

// TestCoalescerMatchesDirect: for a real forest, the coalesced path returns
// exactly what per-request inference returns, row for row.
func TestCoalescerMatchesDirect(t *testing.T) {
	rf := fitTestForest(t)
	direct := NewRegistry()
	direct.Install("direct", rf)
	dco := NewCoalescer(direct, CoalescerConfig{MaxBatch: 1})
	defer dco.Close()
	batched := NewRegistry()
	batched.Install("batched", rf)
	bco := NewCoalescer(batched, CoalescerConfig{MaxBatch: 8, MaxLinger: time.Millisecond})
	defer bco.Close()

	rows := testRows(64)
	want := make([]Decision, len(rows))
	for i, x := range rows {
		var err error
		want[i], err = dco.Decide(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	got := make([]Decision, len(rows))
	errs := make([]error, len(rows))
	for i := range rows {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = bco.Decide(context.Background(), rows[i])
		}(i)
	}
	wg.Wait()
	for i := range rows {
		if errs[i] != nil {
			t.Fatalf("row %d: %v", i, errs[i])
		}
		if got[i].Action != want[i].Action {
			t.Errorf("row %d: action %v vs direct %v", i, got[i].Action, want[i].Action)
		}
		for c := range want[i].Proba {
			if got[i].Proba[c] != want[i].Proba[c] {
				t.Errorf("row %d class %d: proba %v vs direct %v", i, c, got[i].Proba[c], want[i].Proba[c])
			}
		}
	}
}

// TestCoalescerOverload fills the bounded queue behind a blocked model and
// checks the next request sheds with ErrOverloaded while the queued ones
// complete once the model unblocks.
func TestCoalescerOverload(t *testing.T) {
	gate := make(chan struct{})
	pred := &fakePred{class: 0, classes: 3, gate: gate}
	reg := NewRegistry()
	reg.Install("test", pred)
	co := NewCoalescer(reg, CoalescerConfig{MaxBatch: 2, MaxLinger: time.Microsecond, QueueDepth: 4})
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(gate) }) } // a closed gate unblocks every model call
	defer func() {
		release()
		co.Close()
	}()

	// First requests occupy the dispatcher (blocked in the model) until the
	// queue itself is full. Shed behavior is reached when an admission
	// fails; keep launching until one does.
	shedBefore := obsShed.Value()
	var wg sync.WaitGroup
	results := make(chan error, 32)
	deadline := time.After(5 * time.Second)
	for launched := 0; ; launched++ {
		err := func() error {
			errc := make(chan error, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := co.Decide(context.Background(), testRow)
				errc <- err
				results <- err
			}()
			select {
			case err := <-errc:
				return err
			case <-time.After(20 * time.Millisecond):
				return nil // still queued or in the model: keep going
			}
		}()
		if errors.Is(err, ErrOverloaded) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		select {
		case <-deadline:
			t.Fatal("queue never overflowed")
		default:
		}
		if launched > 20 {
			t.Fatal("queue deeper than configured: no shed after 20 requests")
		}
	}
	if obsShed.Value() == shedBefore {
		t.Error("shed counter did not advance")
	}

	// Unblock the model; every admitted request must complete successfully.
	release()
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil && !errors.Is(err, ErrOverloaded) {
			t.Errorf("admitted request failed: %v", err)
		}
	}
}

// TestCoalescerDeadline: a request whose context expires while the model is
// busy returns context.DeadlineExceeded and advances the canceled counter.
func TestCoalescerDeadline(t *testing.T) {
	gate := make(chan struct{})
	pred := &fakePred{class: 0, classes: 3, gate: gate}
	reg := NewRegistry()
	reg.Install("test", pred)
	co := NewCoalescer(reg, CoalescerConfig{MaxBatch: 2, MaxLinger: time.Microsecond, QueueDepth: 8})
	defer func() {
		close(gate)
		co.Close()
	}()

	canceledBefore := obsCanceled.Value()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := co.Decide(ctx, testRow)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if obsCanceled.Value() == canceledBefore {
		t.Error("canceled counter did not advance")
	}
}

// TestCoalescerDrain: Close answers everything already admitted and rejects
// later arrivals with ErrDraining.
func TestCoalescerDrain(t *testing.T) {
	pred := &fakePred{class: 2, classes: 3}
	reg := NewRegistry()
	reg.Install("test", pred)
	co := NewCoalescer(reg, CoalescerConfig{MaxBatch: 4, MaxLinger: 500 * time.Microsecond})

	const n = 32
	var ok atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := co.Decide(context.Background(), testRow)
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrDraining):
			default:
				t.Errorf("Decide: %v", err)
			}
		}()
	}
	co.Close()
	wg.Wait()
	if _, err := co.Decide(context.Background(), testRow); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-Close Decide err = %v, want ErrDraining", err)
	}
	_, samples, _ := pred.stats()
	if int(ok.Load()) != samples {
		t.Errorf("%d requests succeeded but the model answered %d", ok.Load(), samples)
	}
}

// TestHotSwapUnderLoad is the zero-dropped-requests guarantee: with
// decisions in full flight, concurrent swaps and rollbacks never produce a
// failed request, and every answer is internally consistent with the model
// version that produced it (a batch is never split across versions).
func TestHotSwapUnderLoad(t *testing.T) {
	reg := NewRegistry()
	predA := &fakePred{class: 0, classes: 3}
	predB := &fakePred{class: 1, classes: 3}
	reg.Install("A", predA)
	co := NewCoalescer(reg, CoalescerConfig{MaxBatch: 8, MaxLinger: 100 * time.Microsecond})
	defer co.Close()

	stop := make(chan struct{})
	var swaps sync.WaitGroup
	swaps.Add(1)
	go func() {
		defer swaps.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%3 == 2 {
				if _, err := reg.Rollback(); err != nil {
					t.Errorf("rollback: %v", err)
				}
			} else if i%2 == 0 {
				reg.Install("B", predB)
			} else {
				reg.Install("A", predA)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				dec, err := co.Decide(context.Background(), testRow)
				if err != nil {
					t.Errorf("request dropped during hot-swap: %v", err)
					return
				}
				// Consistency: the answer must match the model that the
				// decision reports, proving the batch used one snapshot.
				wantClass := 0
				if dec.Model.Predictor() == Predictor(predB) {
					wantClass = 1
				}
				if int(dec.Action) != wantClass {
					t.Errorf("action %d from model %q: batch split across versions", dec.Action, dec.Model.Source)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	swaps.Wait()
}

// fitTestForest trains a small real forest on synthetic 7-feature data.
func fitTestForest(t *testing.T) *ml.RandomForest {
	t.Helper()
	d := synthData(300, 7)
	rf := &ml.RandomForest{NumTrees: 12, MaxDepth: 6, Seed: 7}
	if err := rf.Fit(d); err != nil {
		t.Fatal(err)
	}
	return rf
}

// synthData builds a 3-class dataset whose label is a threshold on the
// first feature, with NumFeatures columns to satisfy the HTTP layer.
func synthData(n int, features int) *ml.Dataset {
	d := &ml.Dataset{}
	for i := 0; i < n; i++ {
		x := make([]float64, features)
		for j := range x {
			// Deterministic pseudo-data: a fixed recurrence, no RNG needed.
			x[j] = float64((i*31+j*17)%97) / 97
		}
		label := 0
		switch {
		case x[0] > 0.66:
			label = 2
		case x[0] > 0.33:
			label = 1
		}
		d.Append(x, label)
	}
	return d
}

// testRows returns n deterministic 7-feature rows.
func testRows(n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		x := make([]float64, 7)
		for j := range x {
			x[j] = float64((i*13+j*29)%89) / 89
		}
		rows[i] = x
	}
	return rows
}
