package serve

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/ml"
)

// Predictor is what the serving layer needs from a model: the single-sample
// paths for the uncoalesced mode and the 0 B/op batch paths for the
// coalescer. *ml.RandomForest — the only family core.LoadClassifier
// produces today — satisfies it; the indirection keeps the registry open to
// future families and lets tests install synthetic (e.g. deliberately slow)
// models.
type Predictor interface {
	Name() string
	NumClasses() int
	Predict(x []float64) int
	Proba(x []float64) []float64
	PredictBatch(X [][]float64, out []int) []int
	PredictProbaBatch(X [][]float64, out []float64) []float64
}

// Model is one registry entry: an immutable fitted model plus its serving
// metadata. Decision batches capture a *Model once and use it for the whole
// batch, so a concurrent swap never splits or drops an in-flight request.
type Model struct {
	// ID is the registry-assigned version, monotonically increasing from 1.
	ID int `json:"id"`
	// Name is the model family ("random-forest").
	Name string `json:"name"`
	// Source records where the model came from (a file path, "upload", or
	// "trained in-process").
	Source string `json:"source"`
	// Classes is the label-space width (3 for BA/RA/NA).
	Classes int `json:"classes"`

	pred Predictor
}

// Predictor returns the model's fitted predictor.
func (m *Model) Predictor() Predictor { return m.pred }

// ErrNoModel is returned while the registry has never been loaded.
var ErrNoModel = errors.New("serve: no model loaded")

// ErrNoRollback is returned when rollback has no previous model to restore.
var ErrNoRollback = errors.New("serve: no previous model to roll back to")

// Serving model formats: what representation a loaded artifact takes on
// the decide path. Artifacts on disk stay float64 (core.SaveClassifier v2
// and legacy v1); the registry converts at load time.
const (
	// FormatFloat64 serves the forest's float64 flat arrays as persisted.
	FormatFloat64 = "float64"
	// FormatQuant32 compiles random forests to the quantized flat
	// representation (ml.QuantForest): float32 thresholds, 16-byte nodes,
	// early-exit batch kernel — bit-identical predicted classes on
	// float32-representable inputs.
	FormatQuant32 = "quant32"
)

// ErrBadFormat is returned for an unknown model format.
var ErrBadFormat = errors.New(`serve: unknown model format (want "float64" or "quant32")`)

// Registry holds the serving model with versioned, atomic hot-swap and
// one-step rollback. Reads (Active) are a single atomic pointer load on the
// decision hot path; swaps serialize on a mutex.
type Registry struct {
	active atomic.Pointer[Model]

	mu     sync.Mutex
	prev   *Model // rollback target: the model displaced by the last swap
	nextID int
	format string // "" or FormatFloat64 serve as persisted
}

// NewRegistry returns an empty registry; the server reports not-ready until
// the first Load or Install.
func NewRegistry() *Registry { return &Registry{nextID: 1} }

// Active returns the serving model, or nil before the first load.
func (r *Registry) Active() *Model { return r.active.Load() }

// Load parses a classifier artifact in the libra-model format (see
// core.SaveClassifier) from rd and atomically swaps it in. source is
// recorded for /models listings. In-flight decision batches finish on the
// model they captured; requests admitted after Load returns see the new
// model.
func (r *Registry) Load(source string, rd io.Reader) (*Model, error) {
	clf, err := core.LoadClassifier(rd)
	if err != nil {
		return nil, err
	}
	pred, ok := clf.Model.(Predictor)
	if !ok {
		return nil, fmt.Errorf("serve: model family %s lacks the batch prediction paths", clf.Name())
	}
	if r.Format() == FormatQuant32 {
		rf, ok := clf.Model.(*ml.RandomForest)
		if !ok {
			return nil, fmt.Errorf("serve: model family %s has no quantized form", clf.Name())
		}
		q, err := rf.Quantize()
		if err != nil {
			return nil, fmt.Errorf("serve: quantize: %w", err)
		}
		pred = q
	}
	return r.Install(source, pred), nil
}

// SetFormat selects the serving representation applied by subsequent Loads
// (FormatFloat64 or FormatQuant32; "" means FormatFloat64). Already-loaded
// models keep the representation they were loaded with.
func (r *Registry) SetFormat(format string) error {
	switch format {
	case "", FormatFloat64, FormatQuant32:
	default:
		return ErrBadFormat
	}
	r.mu.Lock()
	r.format = format
	r.mu.Unlock()
	return nil
}

// Format returns the representation applied by Load.
func (r *Registry) Format() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.format == "" {
		return FormatFloat64
	}
	return r.format
}

// Install registers an already-fitted predictor and atomically swaps it in.
func (r *Registry) Install(source string, pred Predictor) *Model {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := &Model{
		ID:      r.nextID,
		Name:    pred.Name(),
		Source:  source,
		Classes: pred.NumClasses(),
		pred:    pred,
	}
	r.nextID++
	r.prev = r.active.Swap(m)
	obsSwaps.Inc()
	return m
}

// Previous returns the rollback target: the model the last swap displaced,
// or nil when there is none.
func (r *Registry) Previous() *Model {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.prev
}

// Rollback atomically restores the model displaced by the last swap and
// returns it. The rolled-back-from model becomes the new rollback target,
// so a mistaken rollback is itself reversible.
func (r *Registry) Rollback() (*Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.prev == nil {
		return nil, ErrNoRollback
	}
	m := r.prev
	r.prev = r.active.Swap(m)
	obsSwaps.Inc()
	return m, nil
}
