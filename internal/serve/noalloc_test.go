package serve

import (
	"testing"

	"github.com/libra-wlan/libra/internal/testutil"
)

// The runtime half of this package's //lint:noalloc contracts: the
// class-only decide path and the wire codec must not touch the allocator in
// steady state. libra-lint proves it statically; these gates watch the
// allocator agree. AllocsPerRun's warm-up call grows the cap-guarded
// dispatcher and connection scratch, so the measured runs see steady state.

// flatPred answers class 1 with no per-call allocation, isolating the
// coalescer's own bookkeeping from the model kernels (gated in internal/ml).
type flatPred struct{}

func (flatPred) Name() string    { return "flat" }
func (flatPred) NumClasses() int { return 3 }

func (flatPred) Predict(x []float64) int { return 1 }

func (flatPred) Proba(x []float64) []float64 { return []float64{0, 1, 0} }

func (flatPred) PredictBatch(X [][]float64, out []int) []int {
	if cap(out) < len(X) {
		out = make([]int, len(X))
	}
	out = out[:len(X)]
	for i := range out {
		out[i] = 1
	}
	return out
}

func (flatPred) PredictProbaBatch(X [][]float64, out []float64) []float64 {
	want := 3 * len(X)
	if cap(out) < want {
		out = make([]float64, want)
	}
	out = out[:want]
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < len(X); i++ {
		out[i*3+1] = 1
	}
	return out
}

func TestClassifyClassOnlyNoalloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	reg := NewRegistry()
	reg.Install("flat", flatPred{})
	c := NewCoalescer(reg, CoalescerConfig{MaxBatch: 1})
	defer c.Close()
	m := reg.Active()

	// The kernel only gathers and predicts into dispatcher scratch (the
	// fan-out and its wall-clock stamp live in flush), so one batch can be
	// replayed every run.
	ps := make([]*pending, 8)
	for j := range ps {
		ps[j] = &pending{x: testRow, classOnly: true}
	}
	avg := testing.AllocsPerRun(20, func() {
		c.classifyClassOnly(m, ps)
	})
	if avg != 0 {
		t.Errorf("classifyClassOnly allocates %v per run, want 0 (//lint:noalloc)", avg)
	}
	if len(c.classes) != len(ps) {
		t.Fatalf("classes = %d, want %d", len(c.classes), len(ps))
	}
	for i, cl := range c.classes {
		if cl != 1 {
			t.Fatalf("class[%d] = %d, want 1", i, cl)
		}
	}
}

func TestWireCodecNoalloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	x := []float32{1, 2, 3, 4, 5, 6, 7}
	proba := []float32{0, 1, 0}
	var buf []byte
	var req wireRequest
	var resp WireResponse

	if avg := testing.AllocsPerRun(50, func() {
		buf = appendDecideRequest(buf[:0], 42, 7, false, x)
	}); avg != 0 {
		t.Errorf("appendDecideRequest allocates %v per run, want 0 (//lint:noalloc)", avg)
	}
	payload := buf[4:] // skip the length prefix the frame reader strips
	if avg := testing.AllocsPerRun(50, func() {
		if err := decodeDecideRequest(payload, &req); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("decodeDecideRequest allocates %v per run, want 0 (//lint:noalloc)", avg)
	}

	if avg := testing.AllocsPerRun(50, func() {
		buf = appendResult(buf[:0], 42, 1, 3, proba)
	}); avg != 0 {
		t.Errorf("appendResult allocates %v per run, want 0 (//lint:noalloc)", avg)
	}
	payload = buf[4:]
	if avg := testing.AllocsPerRun(50, func() {
		if err := decodeResponse(payload, &resp); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("decodeResponse allocates %v per run, want 0 (//lint:noalloc)", avg)
	}

	if avg := testing.AllocsPerRun(50, func() {
		buf = appendWireError(buf[:0], 42, wireErrOverloaded)
	}); avg != 0 {
		t.Errorf("appendWireError allocates %v per run, want 0 (//lint:noalloc)", avg)
	}
}
