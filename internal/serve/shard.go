package serve

import (
	"context"
	"fmt"
	"time"

	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/obs/decisionlog"
)

// The sharded decide plane. A Router fronts N independent coalescer shards
// behind a consistent-hash ring keyed on link ID: each shard has its own
// admission queue and dispatcher goroutine, so one saturated link cannot
// head-of-line-block the rest of the fleet, and shard count scales the
// decide plane across cores. All shards share ONE Registry — a hot-swap is
// a single atomic pointer store observed by every shard's next batch, so
// the fleet never serves two model versions to new batches (in-flight
// batches finish on the snapshot they captured, exactly as before).

// RouterConfig sizes the sharded decide plane.
type RouterConfig struct {
	// Shards is the number of coalescer shards (<= 0 selects 1).
	Shards int
	// VNodes is the virtual points per shard on the hash ring (<= 0
	// selects 64).
	VNodes int
	// Coalescer sizes each shard's batching engine.
	Coalescer CoalescerConfig
}

// withDefaults resolves the zero values.
func (c RouterConfig) withDefaults() RouterConfig {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	c.Coalescer = c.Coalescer.withDefaults()
	return c
}

// Router routes decisions to coalescer shards by link ID.
type Router struct {
	cfg    RouterConfig
	reg    *Registry
	ring   *hashRing
	shards []*Coalescer

	// Per-shard admission counters, aggregated by ShardStats and diffed by
	// the CI smoke test against the router-level totals.
	requests []*obs.Counter

	// audit, when attached (SetAudit, before traffic), receives the sampled
	// decision stream; see audit.go.
	audit *decisionlog.Log
}

// NewRouter builds the shard fleet around one shared registry. Callers own
// the lifecycle: Close drains every shard.
func NewRouter(reg *Registry, cfg RouterConfig) *Router {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:      cfg,
		reg:      reg,
		ring:     newRing(cfg.Shards, cfg.VNodes),
		shards:   make([]*Coalescer, cfg.Shards),
		requests: make([]*obs.Counter, cfg.Shards),
	}
	for i := range rt.shards {
		rt.shards[i] = NewCoalescer(reg, cfg.Coalescer)
		rt.requests[i] = obs.NewCounter(
			fmt.Sprintf(`libra_serve_shard_requests_total{shard="%d"}`, i),
			fmt.Sprintf("decision requests admitted by shard %d", i))
	}
	return rt
}

// NumShards returns the shard count.
func (rt *Router) NumShards() int { return len(rt.shards) }

// ShardFor returns the shard index owning linkID on the hash ring.
func (rt *Router) ShardFor(linkID uint64) int { return rt.ring.shardFor(linkID) }

// Shard returns shard i's coalescer (tests and diagnostics).
func (rt *Router) Shard(i int) *Coalescer { return rt.shards[i] }

// Registry returns the shared model registry.
func (rt *Router) Registry() *Registry { return rt.reg }

// Submit enqueues one decision on the shard owning linkID without blocking
// for the result; see Coalescer.Submit. Requests submitted this way carry no
// audit identity — transports that feed the decision log use SubmitTimed.
func (rt *Router) Submit(ctx context.Context, linkID uint64, x []float64, classOnly bool) (*Pending, error) {
	return rt.SubmitTimed(ctx, linkID, x, classOnly, 0, time.Time{})
}

// Decide answers one decision on the shard owning linkID.
func (rt *Router) Decide(ctx context.Context, linkID uint64, x []float64) (Decision, error) {
	t, err := rt.Submit(ctx, linkID, x, false)
	if err != nil {
		return Decision{}, err
	}
	select {
	case <-t.Done():
		return t.Result()
	case <-ctx.Done():
		obsCanceled.Inc()
		return Decision{}, ctx.Err()
	}
}

// Close drains every shard. Safe to call once; see Coalescer.Close.
func (rt *Router) Close() {
	for _, s := range rt.shards {
		s.Close()
	}
}

// ShardStat is one shard's view in the GET /shards listing.
type ShardStat struct {
	// Shard is the ring index.
	Shard int `json:"shard"`
	// VNodes is the shard's virtual point count on the ring.
	VNodes int `json:"vnodes"`
	// Requests is the shard's admitted decision count.
	Requests uint64 `json:"requests"`
}

// ShardStats snapshots per-shard admission counts. The sum over shards
// equals the router's total admissions — the invariant CI's smoke test
// checks after driving load through the ring.
func (rt *Router) ShardStats() []ShardStat {
	out := make([]ShardStat, len(rt.shards))
	for i := range out {
		out[i] = ShardStat{Shard: i, VNodes: rt.cfg.VNodes, Requests: rt.requests[i].Value()}
	}
	return out
}
