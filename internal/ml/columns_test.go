package ml

import (
	"math/rand"
	"reflect"
	"testing"
)

// synthDataset builds a deterministic random dataset and, when withCols is
// set, attaches a column-major mirror.
func synthDataset(seed int64, n, nf, nc int, withCols bool) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		row := make([]float64, nf)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		d.Append(row, rng.Intn(nc))
	}
	if withCols {
		cols := make([][]float64, nf)
		for f := range cols {
			cols[f] = make([]float64, n)
			for i := 0; i < n; i++ {
				cols[f][i] = d.X[i][f]
			}
		}
		d.SetColumns(cols)
	}
	return d
}

// TestFitIndexedMatchesSubset pins the bit-identity contract of the indexed
// bootstrap path: fitting on idx without materializing the subset must
// produce exactly the tree that Fit(d.Subset(idx)) produces.
func TestFitIndexedMatchesSubset(t *testing.T) {
	d := synthDataset(11, 300, 7, 3, false)
	rng := rand.New(rand.NewSource(22))
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = rng.Intn(d.Len())
	}
	want := &DecisionTree{MaxDepth: 10, MaxFeatures: 3, Rng: rand.New(rand.NewSource(33))}
	if err := want.Fit(d.Subset(idx)); err != nil {
		t.Fatal(err)
	}
	got := &DecisionTree{MaxDepth: 10, MaxFeatures: 3, Rng: rand.New(rand.NewSource(33))}
	got.fitIndexed(d, idx)
	if !reflect.DeepEqual(got.flat.nodes, want.flat.nodes) {
		t.Fatal("indexed fit produced a different tree than Fit(Subset)")
	}
	if !reflect.DeepEqual(got.Importance(), want.Importance()) {
		t.Fatal("indexed fit produced different importances")
	}
}

// TestColumnMirrorMatchesRows proves the column-major presort source changes
// nothing about the fitted model: a forest fit on a dataset with an attached
// mirror is bit-identical to one fit on the bare rows.
func TestColumnMirrorMatchesRows(t *testing.T) {
	rows := synthDataset(7, 250, 7, 3, false)
	cols := synthDataset(7, 250, 7, 3, true)
	a := &RandomForest{NumTrees: 12, MaxDepth: 8, Seed: 99, Workers: 1}
	if err := a.Fit(rows); err != nil {
		t.Fatal(err)
	}
	b := &RandomForest{NumTrees: 12, MaxDepth: 8, Seed: 99, Workers: 1}
	if err := b.Fit(cols); err != nil {
		t.Fatal(err)
	}
	if len(a.trees) != len(b.trees) {
		t.Fatalf("tree counts differ: %d vs %d", len(a.trees), len(b.trees))
	}
	for i := range a.trees {
		if !reflect.DeepEqual(a.trees[i].flat.nodes, b.trees[i].flat.nodes) {
			t.Fatalf("tree %d differs between row-wise and columnar presort", i)
		}
	}
	if !reflect.DeepEqual(a.GiniImportance(), b.GiniImportance()) {
		t.Fatal("importances differ between row-wise and columnar presort")
	}
}
