package ml

import (
	"math"
	"runtime"
	"slices"
	"sync"
)

// GradientBoosting is a gradient-boosted-trees classifier (logistic loss,
// shallow regression trees, shrinkage). The paper evaluates DT, RF, SVM, and
// DNN; boosted trees are included as the natural next classical model for
// the ablation study of LiBRA's decision core. Multi-class problems use
// one-vs-rest.
type GradientBoosting struct {
	// Trees is the number of boosting rounds (<=0 means 100).
	Trees int
	// Depth bounds each regression tree (<=0 means 3).
	Depth int
	// LearningRate is the shrinkage factor (<=0 means 0.1).
	LearningRate float64
	// MinLeaf is the minimum samples per leaf (<=0 means 4).
	MinLeaf int

	ensembles  [][]*regTree // one ensemble per class (1 for binary)
	base       []float64    // per-ensemble prior log-odds
	lr         float64      // resolved learning rate used at fit time
	numClasses int
}

// Name implements Classifier.
func (g *GradientBoosting) Name() string { return "gradient-boosting" }

// regNode is one node of a regression tree.
type regNode struct {
	isLeaf    bool
	value     float64
	feature   int
	threshold float64
	left      *regNode
	right     *regNode
}

// regTree is a fitted regression tree.
type regTree struct {
	root    *regNode
	flat    flatRegTree
	minLeaf int
	depth   int
}

// predict evaluates the tree at x.
func (t *regTree) predict(x []float64) float64 {
	if len(t.flat.nodes) > 0 {
		return t.flat.predict(x)
	}
	n := t.root
	for !n.isLeaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// regSample is one (value, sample) pair of a presorted feature column.
type regSample struct {
	v float64
	i int32
}

// regBuilder grows one regression tree from presorted columns. The feature
// matrix never changes across boosting rounds, so the presort happens once
// per Fit (the master columns) and each round only copies and partitions.
type regBuilder struct {
	x        [][]float64
	y        []float64 // residuals, rewritten every round
	maxDepth int
	minLeaf  int

	master   [][]regSample // pristine presorted columns (read-only, shared)
	cols     [][]regSample // working copy, partitioned down the tree
	idx      []int32       // node samples in ascending original order
	scratch  []regSample
	idxTmp   []int32
	goesLeft []bool
}

func newRegBuilder(x [][]float64, master [][]regSample, maxDepth, minLeaf int) *regBuilder {
	n := len(x)
	rb := &regBuilder{
		x:        x,
		maxDepth: maxDepth,
		minLeaf:  minLeaf,
		master:   master,
		cols:     make([][]regSample, len(master)),
		idx:      make([]int32, n),
		scratch:  make([]regSample, n),
		idxTmp:   make([]int32, n),
		goesLeft: make([]bool, n),
	}
	for f := range master {
		rb.cols[f] = make([]regSample, n)
	}
	return rb
}

// fit grows one tree on the current residuals y.
func (rb *regBuilder) fit(y []float64) *regNode {
	rb.y = y
	for f := range rb.master {
		copy(rb.cols[f], rb.master[f])
	}
	for i := range rb.idx {
		rb.idx[i] = int32(i)
	}
	return rb.build(0, len(rb.idx), 0)
}

// build grows the tree over the column range [lo, hi), minimizing squared
// error.
func (rb *regBuilder) build(lo, hi, depth int) *regNode {
	ids := rb.idx[lo:hi]
	mean := 0.0
	for _, i := range ids {
		mean += rb.y[i]
	}
	mean /= float64(len(ids))
	if depth >= rb.maxDepth || len(ids) < 2*rb.minLeaf {
		return &regNode{isLeaf: true, value: mean}
	}

	var totalSum, totalSq float64
	for _, i := range ids {
		totalSum += rb.y[i]
		totalSq += rb.y[i] * rb.y[i]
	}
	n := float64(len(ids))
	parentSSE := totalSq - totalSum*totalSum/n

	bestFeat, bestThr, bestGain := -1, 0.0, 1e-12
	for f := range rb.cols {
		col := rb.cols[f][lo:hi]
		var leftSum, leftSq float64
		for k := 0; k < len(col)-1; k++ {
			yv := rb.y[col[k].i]
			leftSum += yv
			leftSq += yv * yv
			if col[k].v == col[k+1].v {
				continue
			}
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < rb.minLeaf || int(nr) < rb.minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/nl) + (rightSq - rightSum*rightSum/nr)
			if gain := parentSSE - sse; gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = (col[k].v + col[k+1].v) / 2
			}
		}
	}
	if bestFeat < 0 {
		return &regNode{isLeaf: true, value: mean}
	}
	nl := 0
	for _, s := range rb.cols[bestFeat][lo:hi] {
		gl := s.v <= bestThr
		rb.goesLeft[s.i] = gl
		if gl {
			nl++
		}
	}
	if nl < rb.minLeaf || (hi-lo)-nl < rb.minLeaf {
		return &regNode{isLeaf: true, value: mean}
	}
	for f := range rb.cols {
		partitionReg(rb.cols[f][lo:hi], rb.scratch, rb.goesLeft, nl)
	}
	partitionIdx(rb.idx[lo:hi], rb.idxTmp, rb.goesLeft, nl)
	return &regNode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      rb.build(lo, lo+nl, depth+1),
		right:     rb.build(lo+nl, hi, depth+1),
	}
}

// partitionReg stably splits col into left-going then right-going samples.
func partitionReg(col []regSample, scratch []regSample, goesLeft []bool, nl int) {
	scratch = scratch[:0]
	w := 0
	for _, s := range col {
		if goesLeft[s.i] {
			col[w] = s
			w++
		} else {
			scratch = append(scratch, s)
		}
	}
	copy(col[nl:], scratch)
}

// partitionIdx stably splits ids, preserving ascending order on both sides.
func partitionIdx(ids []int32, scratch []int32, goesLeft []bool, nl int) {
	scratch = scratch[:0]
	w := 0
	for _, i := range ids {
		if goesLeft[i] {
			ids[w] = i
			w++
		} else {
			scratch = append(scratch, i)
		}
	}
	copy(ids[nl:], scratch)
}

// presortReg sorts every feature column of x once.
func presortReg(x [][]float64) [][]regSample {
	n := len(x)
	nf := 0
	if n > 0 {
		nf = len(x[0])
	}
	master := make([][]regSample, nf)
	for f := 0; f < nf; f++ {
		col := make([]regSample, n)
		for i := 0; i < n; i++ {
			col[i] = regSample{v: x[i][f], i: int32(i)}
		}
		// Sample index breaks value ties: a deterministic total order, so
		// the presort is independent of the sort algorithm.
		slices.SortFunc(col, func(a, b regSample) int {
			switch {
			case a.v < b.v:
				return -1
			case a.v > b.v:
				return 1
			default:
				return int(a.i) - int(b.i)
			}
		})
		master[f] = col
	}
	return master
}

// Fit implements Classifier. The feature columns are presorted once and
// shared by every boosting round and every one-vs-rest ensemble; the
// ensembles are independent and fit in parallel on a GOMAXPROCS-bounded pool
// with per-class state, so the fitted model is deterministic for any worker
// count. Fit does not modify the exported configuration fields.
func (g *GradientBoosting) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	rounds := g.Trees
	if rounds <= 0 {
		rounds = 100
	}
	depth := g.Depth
	if depth <= 0 {
		depth = 3
	}
	lr := g.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	minLeaf := g.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 4
	}
	g.lr = lr
	g.numClasses = d.NumClasses()
	ensembles := 1
	if g.numClasses > 2 {
		ensembles = g.numClasses
	}
	g.ensembles = make([][]*regTree, ensembles)
	g.base = make([]float64, ensembles)

	master := presortReg(d.X)
	workers := runtime.GOMAXPROCS(0)
	if workers > ensembles {
		workers = ensembles
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for c := 0; c < ensembles; c++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(c int) {
			defer wg.Done()
			defer func() { <-sem }()
			g.ensembles[c], g.base[c] = fitEnsemble(d, master, c, ensembles, rounds, depth, lr, minLeaf)
		}(c)
	}
	wg.Wait()
	return nil
}

// fitEnsemble fits the one-vs-rest ensemble for class c.
func fitEnsemble(d *Dataset, master [][]regSample, c, ensembles, rounds, depth int, lr float64, minLeaf int) ([]*regTree, float64) {
	// Binary target for this ensemble.
	target := make([]float64, d.Len())
	pos := 0
	for i, y := range d.Y {
		hit := (ensembles == 1 && y == 1) || (ensembles > 1 && y == c)
		if hit {
			target[i] = 1
			pos++
		}
	}
	// Prior log-odds.
	p := (float64(pos) + 0.5) / (float64(d.Len()) + 1)
	base := math.Log(p / (1 - p))

	score := make([]float64, d.Len())
	for i := range score {
		score[i] = base
	}
	resid := make([]float64, d.Len())
	rb := newRegBuilder(d.X, master, depth, minLeaf)
	trees := make([]*regTree, 0, rounds)
	for round := 0; round < rounds; round++ {
		for i := range resid {
			resid[i] = target[i] - sigmoid(score[i])
		}
		tree := &regTree{minLeaf: minLeaf, depth: depth}
		tree.root = rb.fit(resid)
		tree.flat = compileRegTree(tree.root)
		trees = append(trees, tree)
		for i := range score {
			score[i] += lr * tree.predict(d.X[i])
		}
	}
	return trees, base
}

// score returns the raw ensemble output for class c.
func (g *GradientBoosting) score(c int, x []float64) float64 {
	s := g.base[c]
	for _, t := range g.ensembles[c] {
		s += g.lr * t.predict(x)
	}
	return s
}

// Predict implements Classifier.
func (g *GradientBoosting) Predict(x []float64) int {
	if len(g.ensembles) == 0 {
		return 0
	}
	if len(g.ensembles) == 1 {
		if g.score(0, x) >= 0 {
			return 1
		}
		return 0
	}
	best, bestV := 0, math.Inf(-1)
	for c := range g.ensembles {
		if v := g.score(c, x); v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// PredictBatch implements BatchPredictor: it classifies every row of X into
// out (reused when its capacity suffices) with no per-sample allocation. The
// score accumulation visits trees in fit order per sample, so the result
// equals calling Predict per row.
func (g *GradientBoosting) PredictBatch(X [][]float64, out []int) []int {
	out = resizeInts(out, len(X))
	if len(g.ensembles) == 0 || len(X) == 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	ne := len(g.ensembles)
	scores := make([]float64, len(X)*ne)
	for c := 0; c < ne; c++ {
		for s := range X {
			scores[s*ne+c] = g.base[c]
		}
		for _, t := range g.ensembles[c] {
			for s, x := range X {
				scores[s*ne+c] += g.lr * t.predict(x)
			}
		}
	}
	for s := range X {
		row := scores[s*ne : (s+1)*ne]
		if ne == 1 {
			if row[0] >= 0 {
				out[s] = 1
			} else {
				out[s] = 0
			}
			continue
		}
		best, bestV := 0, math.Inf(-1)
		for c, v := range row {
			if v > bestV {
				best, bestV = c, v
			}
		}
		out[s] = best
	}
	return out
}
