package ml

import (
	"math"
	"sort"
)

// GradientBoosting is a gradient-boosted-trees classifier (logistic loss,
// shallow regression trees, shrinkage). The paper evaluates DT, RF, SVM, and
// DNN; boosted trees are included as the natural next classical model for
// the ablation study of LiBRA's decision core. Multi-class problems use
// one-vs-rest.
type GradientBoosting struct {
	// Trees is the number of boosting rounds (<=0 means 100).
	Trees int
	// Depth bounds each regression tree (<=0 means 3).
	Depth int
	// LearningRate is the shrinkage factor (<=0 means 0.1).
	LearningRate float64
	// MinLeaf is the minimum samples per leaf (<=0 means 4).
	MinLeaf int

	ensembles  [][]*regTree // one ensemble per class (1 for binary)
	base       []float64    // per-ensemble prior log-odds
	numClasses int
}

// Name implements Classifier.
func (g *GradientBoosting) Name() string { return "gradient-boosting" }

// regNode is one node of a regression tree.
type regNode struct {
	isLeaf    bool
	value     float64
	feature   int
	threshold float64
	left      *regNode
	right     *regNode
}

// regTree is a fitted regression tree.
type regTree struct {
	root    *regNode
	minLeaf int
	depth   int
}

// predict evaluates the tree at x.
func (t *regTree) predict(x []float64) float64 {
	n := t.root
	for !n.isLeaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// fitReg grows a regression tree on (x, residuals) minimizing squared error.
func fitReg(x [][]float64, y []float64, idx []int, depth, maxDepth, minLeaf int) *regNode {
	mean := 0.0
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	if depth >= maxDepth || len(idx) < 2*minLeaf {
		return &regNode{isLeaf: true, value: mean}
	}

	bestFeat, bestThr, bestGain := -1, 0.0, 1e-12
	nf := len(x[0])
	type fv struct {
		v, y float64
	}
	vals := make([]fv, len(idx))
	var totalSum, totalSq float64
	for _, i := range idx {
		totalSum += y[i]
		totalSq += y[i] * y[i]
	}
	n := float64(len(idx))
	parentSSE := totalSq - totalSum*totalSum/n

	for f := 0; f < nf; f++ {
		for k, i := range idx {
			vals[k] = fv{v: x[i][f], y: y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		var leftSum, leftSq float64
		for k := 0; k < len(vals)-1; k++ {
			leftSum += vals[k].y
			leftSq += vals[k].y * vals[k].y
			if vals[k].v == vals[k+1].v {
				continue
			}
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < minLeaf || int(nr) < minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/nl) + (rightSq - rightSum*rightSum/nr)
			if gain := parentSSE - sse; gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = (vals[k].v + vals[k+1].v) / 2
			}
		}
	}
	if bestFeat < 0 {
		return &regNode{isLeaf: true, value: mean}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < minLeaf || len(right) < minLeaf {
		return &regNode{isLeaf: true, value: mean}
	}
	return &regNode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      fitReg(x, y, left, depth+1, maxDepth, minLeaf),
		right:     fitReg(x, y, right, depth+1, maxDepth, minLeaf),
	}
}

// Fit implements Classifier.
func (g *GradientBoosting) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if g.Trees <= 0 {
		g.Trees = 100
	}
	if g.Depth <= 0 {
		g.Depth = 3
	}
	if g.LearningRate <= 0 {
		g.LearningRate = 0.1
	}
	if g.MinLeaf <= 0 {
		g.MinLeaf = 4
	}
	g.numClasses = d.NumClasses()
	ensembles := 1
	if g.numClasses > 2 {
		ensembles = g.numClasses
	}
	g.ensembles = make([][]*regTree, ensembles)
	g.base = make([]float64, ensembles)

	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	for c := 0; c < ensembles; c++ {
		// Binary target for this ensemble.
		target := make([]float64, d.Len())
		pos := 0
		for i, y := range d.Y {
			hit := (ensembles == 1 && y == 1) || (ensembles > 1 && y == c)
			if hit {
				target[i] = 1
				pos++
			}
		}
		// Prior log-odds.
		p := (float64(pos) + 0.5) / (float64(d.Len()) + 1)
		g.base[c] = math.Log(p / (1 - p))

		score := make([]float64, d.Len())
		for i := range score {
			score[i] = g.base[c]
		}
		resid := make([]float64, d.Len())
		for round := 0; round < g.Trees; round++ {
			for i := range resid {
				resid[i] = target[i] - sigmoid(score[i])
			}
			tree := &regTree{minLeaf: g.MinLeaf, depth: g.Depth}
			tree.root = fitReg(d.X, resid, idx, 0, g.Depth, g.MinLeaf)
			g.ensembles[c] = append(g.ensembles[c], tree)
			for i := range score {
				score[i] += g.LearningRate * tree.predict(d.X[i])
			}
		}
	}
	return nil
}

// score returns the raw ensemble output for class c.
func (g *GradientBoosting) score(c int, x []float64) float64 {
	s := g.base[c]
	for _, t := range g.ensembles[c] {
		s += g.LearningRate * t.predict(x)
	}
	return s
}

// Predict implements Classifier.
func (g *GradientBoosting) Predict(x []float64) int {
	if len(g.ensembles) == 0 {
		return 0
	}
	if len(g.ensembles) == 1 {
		if g.score(0, x) >= 0 {
			return 1
		}
		return 0
	}
	best, bestV := 0, math.Inf(-1)
	for c := range g.ensembles {
		if v := g.score(c, x); v > bestV {
			best, bestV = c, v
		}
	}
	return best
}
