package ml

// Accuracy returns the fraction of predictions matching the true labels.
func Accuracy(yTrue, yPred []int) float64 {
	if len(yTrue) == 0 || len(yTrue) != len(yPred) {
		return 0
	}
	correct := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(yTrue))
}

// Confusion returns the confusion matrix: confusion[true][pred] counts.
func Confusion(yTrue, yPred []int) [][]int {
	n := 0
	for i := range yTrue {
		if yTrue[i]+1 > n {
			n = yTrue[i] + 1
		}
		if yPred[i]+1 > n {
			n = yPred[i] + 1
		}
	}
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	for i := range yTrue {
		m[yTrue[i]][yPred[i]]++
	}
	return m
}

// F1PerClass returns the one-vs-rest F1 score for each class along with the
// class support counts.
func F1PerClass(yTrue, yPred []int) (f1 []float64, support []int) {
	cm := Confusion(yTrue, yPred)
	n := len(cm)
	f1 = make([]float64, n)
	support = make([]int, n)
	for c := 0; c < n; c++ {
		var tp, fp, fn int
		for o := 0; o < n; o++ {
			if o == c {
				tp = cm[c][c]
				continue
			}
			fn += cm[c][o]
			fp += cm[o][c]
		}
		support[c] = tp + fn
		denom := 2*tp + fp + fn
		if denom > 0 {
			f1[c] = 2 * float64(tp) / float64(denom)
		}
	}
	return f1, support
}

// WeightedF1 returns the support-weighted mean of per-class F1 scores, the
// "weighted F1 score" metric the paper reports alongside accuracy.
func WeightedF1(yTrue, yPred []int) float64 {
	f1, support := F1PerClass(yTrue, yPred)
	var total, weighted float64
	for c := range f1 {
		total += float64(support[c])
		weighted += f1[c] * float64(support[c])
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}
