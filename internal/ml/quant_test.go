package ml

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"
)

// quantTestData builds an n-sample, nf-feature, 3-class dataset with
// deterministic pseudo-random features.
func quantTestData(n, nf int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		x := make([]float64, nf)
		for j := range x {
			x[j] = rng.NormFloat64() * float64(j+1)
		}
		label := 0
		switch {
		case x[0]+x[1] > 1:
			label = 2
		case x[0]-x[2] > 0:
			label = 1
		}
		d.Append(x, label)
	}
	return d
}

// TestQuantThreshold pins the quantization rule: the largest float32 whose
// widening does not exceed the float64 threshold.
func TestQuantThreshold(t *testing.T) {
	cases := []float64{0, 1, -1, 0.1, -0.1, 1e-40, 3.5e38, -3.5e38,
		math.Pi, 1.0000000001, math.Nextafter(1, 2), math.Nextafter(1, 0)}
	for _, v := range cases {
		q := quantThreshold(v)
		if float64(q) > v {
			t.Errorf("quantThreshold(%g) = %g widens above the input", v, q)
		}
		up := math.Nextafter32(q, float32(math.Inf(1)))
		if !math.IsInf(float64(up), 1) && float64(up) <= v {
			t.Errorf("quantThreshold(%g) = %g is not the largest float32 below the input (%g also fits)", v, q, up)
		}
	}
}

// TestQuantMatchesFloat64 is the parity contract: on float32-representable
// inputs, every quantized path answers bit-identically to the float64 flat
// arrays.
func TestQuantMatchesFloat64(t *testing.T) {
	rf := &RandomForest{NumTrees: 60, MaxDepth: 10, Seed: 11}
	if err := rf.Fit(quantTestData(600, 7, 3)); err != nil {
		t.Fatal(err)
	}
	q, err := rf.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	if q.NumTrees() != 60 || q.NumClasses() != 3 {
		t.Fatalf("quantized shape %d trees/%d classes", q.NumTrees(), q.NumClasses())
	}

	// Float32-representable rows: what the binary wire delivers.
	test := quantTestData(2000, 7, 4)
	rows := make([][]float64, test.Len())
	for i := range rows {
		x := append([]float64(nil), test.X[i]...)
		for j, v := range x {
			x[j] = float64(float32(v))
		}
		rows[i] = x
	}

	want := rf.PredictBatch(rows, nil)
	got := q.PredictBatch(rows, nil)
	for i := range rows {
		if got[i] != want[i] {
			t.Fatalf("row %d: quant class %d, float64 class %d", i, got[i], want[i])
		}
		if p := q.Predict(rows[i]); p != want[i] {
			t.Fatalf("row %d: quant Predict %d, float64 %d", i, p, want[i])
		}
	}

	wantP := rf.PredictProbaBatch(rows, nil)
	gotP := q.PredictProbaBatch(rows, nil)
	for i := range wantP {
		if wantP[i] != gotP[i] {
			t.Fatalf("proba[%d]: quant %v, float64 %v", i, gotP[i], wantP[i])
		}
	}
	for i := 0; i < 50; i++ {
		w, g := rf.Proba(rows[i]), q.Proba(rows[i])
		for c := range w {
			if w[c] != g[c] {
				t.Fatalf("row %d Proba class %d: quant %v, float64 %v", i, c, g[c], w[c])
			}
		}
	}
}

// TestQuantNodeLayout pins the 16-byte node size the cache math depends on.
func TestQuantNodeLayout(t *testing.T) {
	if got := int(unsafe.Sizeof(qNode{})); got != 16 {
		t.Fatalf("qNode is %d bytes, want 16", got)
	}
}

// TestQuantEarlyExitTieBreak drives the retirement rule through hand-built
// forests where the final margin is razor thin: equal votes must fall to
// the lowest class, with and without early exit in play.
func TestQuantEarlyExitTieBreak(t *testing.T) {
	leaf := func(c int) *treeNode { return &treeNode{isLeaf: true, class: c} }
	constTree := func(c int) *DecisionTree {
		root := leaf(c)
		return &DecisionTree{root: root, flat: compileTree(root)}
	}
	// 40 trees for class 2, 40 for class 1, 1 for class 0: winner is class
	// 1 (first max between the tied 1 and 2).
	var trees []*DecisionTree
	for i := 0; i < 40; i++ {
		trees = append(trees, constTree(2))
	}
	for i := 0; i < 40; i++ {
		trees = append(trees, constTree(1))
	}
	trees = append(trees, constTree(0))
	rf := &RandomForest{trees: trees, numClasses: 3}
	q, err := rf.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, 9)
	for i := range rows {
		rows[i] = []float64{1, 2, 3}
	}
	want := rf.PredictBatch(rows, nil)
	got := q.PredictBatch(rows, nil)
	for i := range rows {
		if got[i] != want[i] || got[i] != 1 {
			t.Fatalf("row %d: quant %d, float64 %d, want 1", i, got[i], want[i])
		}
	}
}

// TestQuantizeUnfitted: quantizing before Fit is an error.
func TestQuantizeUnfitted(t *testing.T) {
	if _, err := (&RandomForest{}).Quantize(); err == nil {
		t.Fatal("Quantize on an unfitted forest did not error")
	}
}

// BenchmarkQuantClassifyBatch measures the early-exit class kernel against
// the float64 batch paths on a serving-sized forest.
func BenchmarkQuantClassifyBatch(b *testing.B) {
	rf := &RandomForest{NumTrees: 400, MaxDepth: 14, Seed: 5}
	if err := rf.Fit(quantTestData(4000, 7, 9)); err != nil {
		b.Fatal(err)
	}
	q, err := rf.Quantize()
	if err != nil {
		b.Fatal(err)
	}
	test := quantTestData(256, 7, 10)
	rows := make([][]float64, test.Len())
	for i := range rows {
		rows[i] = test.X[i]
	}
	b.Run("quant-class", func(b *testing.B) {
		out := make([]int, len(rows))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.PredictBatch(rows, out)
		}
	})
	b.Run("quant-proba", func(b *testing.B) {
		var out []float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = q.PredictProbaBatch(rows, out)
		}
	})
	b.Run("float64-class", func(b *testing.B) {
		out := make([]int, len(rows))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rf.PredictBatch(rows, out)
		}
	})
	b.Run("float64-proba", func(b *testing.B) {
		var out []float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = rf.PredictProbaBatch(rows, out)
		}
	})
}
