package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// linearData builds a linearly separable 2-D dataset: class 1 iff x+y > 0.
func linearData(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		x := rng.Float64()*4 - 2
		y := rng.Float64()*4 - 2
		label := 0
		if x+y > 0 {
			label = 1
		}
		d.Append([]float64{x, y}, label)
	}
	return d
}

// xorData builds the canonical non-linearly-separable 2-class problem.
func xorData(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		x := rng.Float64()*2 - 1
		y := rng.Float64()*2 - 1
		label := 0
		if (x > 0) != (y > 0) {
			label = 1
		}
		d.Append([]float64{x, y}, label)
	}
	return d
}

// threeClassData builds three well-separated Gaussian blobs.
func threeClassData(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]float64{{0, 0}, {6, 0}, {0, 6}}
	d := &Dataset{}
	for i := 0; i < n; i++ {
		c := i % 3
		d.Append([]float64{
			centers[c][0] + rng.NormFloat64(),
			centers[c][1] + rng.NormFloat64(),
		}, c)
	}
	return d
}

func trainAccuracy(c Classifier, d *Dataset) float64 {
	return Accuracy(d.Y, PredictAll(c, d))
}

func TestDatasetValidate(t *testing.T) {
	d := &Dataset{X: [][]float64{{1, 2}}, Y: []int{0}}
	if err := d.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	bad := &Dataset{X: [][]float64{{1, 2}, {1}}, Y: []int{0, 1}}
	if bad.Validate() == nil {
		t.Error("ragged rows accepted")
	}
	mismatch := &Dataset{X: [][]float64{{1}}, Y: []int{0, 1}}
	if mismatch.Validate() == nil {
		t.Error("row/label mismatch accepted")
	}
	empty := &Dataset{}
	if empty.Validate() == nil {
		t.Error("empty dataset accepted")
	}
	neg := &Dataset{X: [][]float64{{1}}, Y: []int{-1}}
	if neg.Validate() == nil {
		t.Error("negative label accepted")
	}
}

func TestDatasetAccessors(t *testing.T) {
	d := threeClassData(30, 1)
	if d.Len() != 30 || d.NumFeatures() != 2 || d.NumClasses() != 3 {
		t.Errorf("accessors: %d %d %d", d.Len(), d.NumFeatures(), d.NumClasses())
	}
	s := d.Subset([]int{0, 1, 2})
	if s.Len() != 3 {
		t.Errorf("subset len = %d", s.Len())
	}
	if (&Dataset{}).NumFeatures() != 0 {
		t.Error("empty NumFeatures")
	}
}

func TestStratifiedKFold(t *testing.T) {
	y := make([]int, 100)
	for i := range y {
		if i < 20 {
			y[i] = 1
		}
	}
	rng := rand.New(rand.NewSource(1))
	folds := StratifiedKFold(y, 5, rng)
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	for fi, fold := range folds {
		ones := 0
		for _, i := range fold {
			seen[i]++
			if y[i] == 1 {
				ones++
			}
		}
		if ones != 4 {
			t.Errorf("fold %d has %d minority samples, want 4", fi, ones)
		}
	}
	if len(seen) != 100 {
		t.Errorf("folds cover %d samples", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("sample %d appears %d times", i, n)
		}
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 0, 1, 1}, []int{1, 1, 1, 0}); got != 0.5 {
		t.Errorf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy")
	}
	if Accuracy([]int{1}, []int{1, 2}) != 0 {
		t.Error("length mismatch accuracy")
	}
}

func TestConfusion(t *testing.T) {
	cm := Confusion([]int{0, 0, 1, 1}, []int{0, 1, 1, 1})
	if cm[0][0] != 1 || cm[0][1] != 1 || cm[1][1] != 2 || cm[1][0] != 0 {
		t.Errorf("confusion = %v", cm)
	}
}

func TestF1(t *testing.T) {
	// Perfect predictions: F1 = 1 everywhere.
	y := []int{0, 1, 0, 1, 2}
	f1, support := F1PerClass(y, y)
	for c, v := range f1 {
		if v != 1 {
			t.Errorf("class %d F1 = %v", c, v)
		}
		_ = support
	}
	if got := WeightedF1(y, y); got != 1 {
		t.Errorf("weighted F1 = %v", got)
	}
	// Known case: TP=1 FP=1 FN=1 for class 1 -> F1 = 0.5.
	f1b, _ := F1PerClass([]int{1, 1, 0}, []int{1, 0, 1})
	if math.Abs(f1b[1]-0.5) > 1e-12 {
		t.Errorf("class 1 F1 = %v", f1b[1])
	}
}

func TestWeightedF1Imbalance(t *testing.T) {
	// A classifier that always predicts the majority: weighted F1 rewards
	// majority performance but stays below 1.
	y := []int{0, 0, 0, 0, 0, 0, 0, 0, 1, 1}
	pred := make([]int, 10)
	got := WeightedF1(y, pred)
	if got <= 0.5 || got >= 1 {
		t.Errorf("imbalanced weighted F1 = %v", got)
	}
}

func TestDecisionTreeSeparable(t *testing.T) {
	d := linearData(300, 1)
	dt := &DecisionTree{MaxDepth: 10}
	if err := dt.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(dt, d); acc < 0.95 {
		t.Errorf("train accuracy on separable data = %v", acc)
	}
}

func TestDecisionTreeDepthBound(t *testing.T) {
	d := xorData(500, 2)
	dt := &DecisionTree{MaxDepth: 3}
	if err := dt.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := dt.Depth(); got > 3 {
		t.Errorf("depth = %d, bound 3", got)
	}
}

func TestDecisionTreeEntropy(t *testing.T) {
	d := linearData(300, 3)
	dt := &DecisionTree{MaxDepth: 10, Criterion: Entropy}
	if err := dt.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(dt, d); acc < 0.95 {
		t.Errorf("entropy tree accuracy = %v", acc)
	}
}

func TestImpurityValues(t *testing.T) {
	// Gini of a pure node is 0; of a 50/50 node is 0.5.
	if got := Gini.impurity([]int{10, 0}, 10); got != 0 {
		t.Errorf("pure gini = %v", got)
	}
	if got := Gini.impurity([]int{5, 5}, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("even gini = %v", got)
	}
	// Entropy of a 50/50 node is 1 bit.
	if got := Entropy.impurity([]int{5, 5}, 10); math.Abs(got-1) > 1e-12 {
		t.Errorf("even entropy = %v", got)
	}
	if got := Entropy.impurity(nil, 0); got != 0 {
		t.Errorf("empty impurity = %v", got)
	}
}

func TestCriterionString(t *testing.T) {
	if Gini.String() != "gini" || Entropy.String() != "entropy" {
		t.Error("criterion names")
	}
}

func TestDecisionTreeImportance(t *testing.T) {
	// Feature 0 decides the label; feature 1 is noise.
	rng := rand.New(rand.NewSource(4))
	d := &Dataset{}
	for i := 0; i < 400; i++ {
		x := rng.Float64()*2 - 1
		noise := rng.Float64()
		label := 0
		if x > 0 {
			label = 1
		}
		d.Append([]float64{x, noise}, label)
	}
	dt := &DecisionTree{MaxDepth: 6}
	if err := dt.Fit(d); err != nil {
		t.Fatal(err)
	}
	imp := dt.Importance()
	if imp[0] <= imp[1] {
		t.Errorf("importance inverted: %v", imp)
	}
}

func TestRandomForestBlobs(t *testing.T) {
	d := threeClassData(300, 5)
	rf := &RandomForest{NumTrees: 30, MaxDepth: 8, Seed: 1}
	if err := rf.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(rf, d); acc < 0.97 {
		t.Errorf("forest blob accuracy = %v", acc)
	}
}

func TestRandomForestXOR(t *testing.T) {
	d := xorData(600, 6)
	rf := &RandomForest{NumTrees: 40, MaxDepth: 10, Seed: 2, MaxFeatures: 2}
	if err := rf.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(rf, d); acc < 0.9 {
		t.Errorf("forest XOR accuracy = %v", acc)
	}
}

func TestRandomForestProba(t *testing.T) {
	d := threeClassData(150, 7)
	rf := &RandomForest{NumTrees: 20, Seed: 3}
	if err := rf.Fit(d); err != nil {
		t.Fatal(err)
	}
	p := rf.Proba(d.X[0])
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestRandomForestImportanceNormalized(t *testing.T) {
	d := linearData(200, 8)
	rf := &RandomForest{NumTrees: 15, Seed: 4}
	if err := rf.Fit(d); err != nil {
		t.Fatal(err)
	}
	imp := rf.GiniImportance()
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
}

func TestRandomForestDeterminism(t *testing.T) {
	d := xorData(200, 9)
	a := &RandomForest{NumTrees: 10, Seed: 7}
	b := &RandomForest{NumTrees: 10, Seed: 7}
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := range d.X {
		if a.Predict(d.X[i]) != b.Predict(d.X[i]) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestSVMLinearSeparable(t *testing.T) {
	d := linearData(200, 10)
	svm := &SVM{Kernel: LinearKernel, C: 1, Seed: 1}
	if err := svm.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(svm, d); acc < 0.93 {
		t.Errorf("linear SVM accuracy = %v", acc)
	}
}

func TestSVMRBFOnXOR(t *testing.T) {
	d := xorData(300, 11)
	svm := &SVM{Kernel: RBFKernel, C: 10, Gamma: 2, Seed: 1}
	if err := svm.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(svm, d); acc < 0.85 {
		t.Errorf("RBF SVM XOR accuracy = %v", acc)
	}
}

func TestSVMMultiClass(t *testing.T) {
	d := threeClassData(240, 12)
	svm := &SVM{Kernel: LinearKernel, C: 1, Seed: 1}
	if err := svm.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(svm, d); acc < 0.9 {
		t.Errorf("multi-class SVM accuracy = %v", acc)
	}
}

func TestKernelString(t *testing.T) {
	if LinearKernel.String() != "linear" || RBFKernel.String() != "rbf" {
		t.Error("kernel names")
	}
	svm := &SVM{Kernel: RBFKernel}
	if svm.Name() != "svm-rbf" {
		t.Errorf("Name = %q", svm.Name())
	}
}

func TestNeuralNetSeparable(t *testing.T) {
	d := linearData(400, 13)
	nn := &NeuralNet{Epochs: 80, Seed: 1, Dropout: -1}
	if err := nn.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(nn, d); acc < 0.93 {
		t.Errorf("NN accuracy = %v", acc)
	}
}

func TestNeuralNetXOR(t *testing.T) {
	d := xorData(600, 14)
	nn := &NeuralNet{Epochs: 220, Seed: 2, Dropout: -1, LearningRate: 3e-3}
	if err := nn.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(nn, d); acc < 0.85 {
		t.Errorf("NN XOR accuracy = %v", acc)
	}
}

func TestNeuralNetMultiClass(t *testing.T) {
	d := threeClassData(300, 15)
	nn := &NeuralNet{Epochs: 100, Seed: 3}
	if err := nn.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(nn, d); acc < 0.9 {
		t.Errorf("NN 3-class accuracy = %v", acc)
	}
}

func TestNeuralNetDropoutStillLearns(t *testing.T) {
	d := linearData(400, 16)
	nn := &NeuralNet{Epochs: 120, Seed: 4, Dropout: 0.2}
	if err := nn.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(nn, d); acc < 0.88 {
		t.Errorf("NN with dropout accuracy = %v", acc)
	}
}

func TestScaler(t *testing.T) {
	d := &Dataset{X: [][]float64{{1, 10}, {3, 30}, {5, 50}}, Y: []int{0, 0, 0}}
	s := FitScaler(d)
	if math.Abs(s.Mean[0]-3) > 1e-12 || math.Abs(s.Mean[1]-30) > 1e-12 {
		t.Errorf("means = %v", s.Mean)
	}
	scaled := s.ApplyAll(d)
	for j := 0; j < 2; j++ {
		var mean float64
		for i := range scaled.X {
			mean += scaled.X[i][j]
		}
		if math.Abs(mean) > 1e-9 {
			t.Errorf("scaled column %d mean = %v", j, mean/3)
		}
	}
	// Constant column does not produce NaN.
	dc := &Dataset{X: [][]float64{{7}, {7}}, Y: []int{0, 1}}
	sc := FitScaler(dc)
	out := sc.Apply([]float64{7})
	if math.IsNaN(out[0]) {
		t.Error("constant feature scaled to NaN")
	}
}

func TestCrossValidatePipeline(t *testing.T) {
	d := linearData(250, 17)
	rng := rand.New(rand.NewSource(1))
	res, err := CrossValidate(func() Classifier {
		return &DecisionTree{MaxDepth: 6}
	}, d, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Folds != 5 {
		t.Errorf("folds = %d", res.Folds)
	}
	if res.Accuracy < 0.9 {
		t.Errorf("CV accuracy = %v", res.Accuracy)
	}
	if res.WeightedF1 <= 0 || res.WeightedF1 > 1 {
		t.Errorf("CV F1 = %v", res.WeightedF1)
	}
}

func TestRepeatedCV(t *testing.T) {
	d := linearData(150, 18)
	rng := rand.New(rand.NewSource(2))
	res, err := RepeatedCV(func() Classifier {
		return &DecisionTree{MaxDepth: 5}
	}, d, 3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.8 {
		t.Errorf("repeated CV accuracy = %v", res.Accuracy)
	}
}

func TestPredictionsInLabelSet(t *testing.T) {
	d := threeClassData(120, 19)
	models := []Classifier{
		&DecisionTree{MaxDepth: 5},
		&RandomForest{NumTrees: 8, Seed: 1},
		&SVM{Kernel: LinearKernel, Seed: 1},
		&NeuralNet{Epochs: 20, Seed: 1},
	}
	for _, m := range models {
		if err := m.Fit(d); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		f := func(a, b float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 100 || math.Abs(b) > 100 {
				return true
			}
			p := m.Predict([]float64{a, b})
			return p >= 0 && p < 3
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestUnfittedPredict(t *testing.T) {
	// Unfitted models predict class 0 rather than panicking.
	models := []Classifier{&DecisionTree{}, &RandomForest{}, &SVM{}, &NeuralNet{}}
	for _, m := range models {
		if got := m.Predict([]float64{1, 2}); got != 0 {
			t.Errorf("%s unfitted Predict = %d", m.Name(), got)
		}
	}
}

func TestFitRejectsInvalid(t *testing.T) {
	bad := &Dataset{X: [][]float64{{1}}, Y: []int{0, 1}}
	models := []Classifier{&DecisionTree{}, &RandomForest{NumTrees: 2}, &SVM{}, &NeuralNet{Epochs: 1}}
	for _, m := range models {
		if err := m.Fit(bad); err == nil {
			t.Errorf("%s accepted an invalid dataset", m.Name())
		}
	}
}
