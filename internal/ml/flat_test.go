package ml

import "testing"

// TestCompileNilRoot pins the nil-root compile path: an unfitted (or
// hand-built, rootless) tree compiles to an empty flat tree and its
// predictions fall back to the pointer walk's class-0 answer instead of
// touching an empty node array.
func TestCompileNilRoot(t *testing.T) {
	ft := compileTree(nil)
	if len(ft.nodes) != 0 {
		t.Fatalf("compileTree(nil) produced %d nodes, want 0", len(ft.nodes))
	}
	if ft.maxClass != 0 {
		t.Fatalf("compileTree(nil) maxClass = %d, want 0", ft.maxClass)
	}

	var dt DecisionTree // zero value: nil root, empty flat tree
	x := []float64{1, 2, 3}
	if got := dt.Predict(x); got != 0 {
		t.Fatalf("rootless tree Predict = %d, want 0", got)
	}
	out := dt.PredictBatch([][]float64{x, x}, nil)
	for i, c := range out {
		if c != 0 {
			t.Fatalf("rootless tree PredictBatch[%d] = %d, want 0", i, c)
		}
	}
}

// TestCompileMaxClass pins vote-buffer sizing: maxClass tracks the largest
// leaf class through compilation, so forests whose leaves emit classes
// beyond the dataset's label-space width still size their vote buffers
// wide enough.
func TestCompileMaxClass(t *testing.T) {
	root := &treeNode{
		feature:   0,
		threshold: 0.5,
		left:      &treeNode{isLeaf: true, class: 2},
		right:     &treeNode{isLeaf: true, class: 7},
	}
	ft := compileTree(root)
	if ft.maxClass != 7 {
		t.Fatalf("maxClass = %d, want 7", ft.maxClass)
	}
	if got := ft.predict([]float64{0.4}); got != 2 {
		t.Fatalf("left leaf predicts %d, want 2", got)
	}
	if got := ft.predict([]float64{0.6}); got != 7 {
		t.Fatalf("right leaf predicts %d, want 7", got)
	}
}

// TestSingleClassForest fits a forest on a dataset whose every label is the
// same class: every tree is a single leaf, voteClasses must still report a
// non-zero vote-buffer width, and the batch paths — float64 and quantized —
// agree on every row. This is the degenerate shape that breaks vote-buffer
// sizing arithmetic if maxClass and numClasses are conflated.
func TestSingleClassForest(t *testing.T) {
	d := &Dataset{
		X: [][]float64{{0, 1}, {1, 0}, {0.5, 0.5}, {0.2, 0.9}},
		Y: []int{0, 0, 0, 0},
	}
	rf := &RandomForest{NumTrees: 5, MaxDepth: 3, Seed: 7}
	if err := rf.Fit(d); err != nil {
		t.Fatal(err)
	}
	if vc := rf.voteClasses(); vc < 1 {
		t.Fatalf("voteClasses = %d, want >= 1", vc)
	}
	out := rf.PredictBatch(d.X, nil)
	for i, c := range out {
		if c != 0 {
			t.Fatalf("PredictBatch[%d] = %d, want 0", i, c)
		}
	}

	q, err := rf.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	// Uniform trees collapse to one absorbing leaf each.
	if q.NumNodes() != rf.NumTrees {
		t.Fatalf("single-class forest quantized to %d nodes, want %d (one leaf per tree)",
			q.NumNodes(), rf.NumTrees)
	}
	qout := q.PredictBatch(d.X, nil)
	for i := range out {
		if qout[i] != out[i] {
			t.Fatalf("quantized class[%d] = %d, float64 = %d", i, qout[i], out[i])
		}
	}
	p := q.Proba(d.X[0])
	if len(p) != q.NumClasses() || p[0] != 1 {
		t.Fatalf("single-class Proba = %v, want probability 1 on class 0", p)
	}
}
