package ml

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// forestBytes serializes a fitted forest so two fits can be compared byte for
// byte.
func forestBytes(t *testing.T, f *RandomForest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestForestParallelMatchesSequential checks the forest determinism contract:
// the fitted trees, predictions, and Gini importances are byte-identical for
// any worker count, because bootstrap samples and per-tree seeds are drawn up
// front and aggregation happens in tree order.
func TestForestParallelMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 42, 1234} {
		train := threeClassData(240, seed)
		test := threeClassData(90, seed+1000)
		ref := &RandomForest{NumTrees: 24, MaxDepth: 8, Seed: seed, Workers: 1}
		if err := ref.Fit(train); err != nil {
			t.Fatalf("seed %d: sequential fit: %v", seed, err)
		}
		refBytes := forestBytes(t, ref)
		refImp := ref.GiniImportance()
		refPred := PredictAll(ref, test)

		for _, workers := range []int{2, 3, 8} {
			par := &RandomForest{NumTrees: 24, MaxDepth: 8, Seed: seed, Workers: workers}
			if err := par.Fit(train); err != nil {
				t.Fatalf("seed %d workers %d: fit: %v", seed, workers, err)
			}
			if !bytes.Equal(refBytes, forestBytes(t, par)) {
				t.Errorf("seed %d: workers=%d forest differs from workers=1", seed, workers)
			}
			for i, v := range par.GiniImportance() {
				if v != refImp[i] {
					t.Errorf("seed %d: workers=%d importance[%d] = %v, want %v", seed, workers, i, v, refImp[i])
				}
			}
			for i, p := range PredictAll(par, test) {
				if p != refPred[i] {
					t.Errorf("seed %d: workers=%d prediction[%d] = %d, want %d", seed, workers, i, p, refPred[i])
				}
			}
		}
	}
}

// TestPredictBatchMatchesPredict checks that every classifier's batch path
// returns exactly what per-sample Predict returns, including when the caller
// reuses an output buffer with spare capacity.
func TestPredictBatchMatchesPredict(t *testing.T) {
	train := threeClassData(180, 5)
	test := threeClassData(60, 6)
	classifiers := []Classifier{
		&DecisionTree{MaxDepth: 8},
		&RandomForest{NumTrees: 20, MaxDepth: 8, Seed: 5},
		&SVM{Kernel: LinearKernel, C: 1, Seed: 5},
		&SVM{Kernel: RBFKernel, C: 10, Gamma: 2, Seed: 5},
		&NeuralNet{Epochs: 60, Seed: 5},
		&GradientBoosting{Trees: 25, Depth: 3},
	}
	for _, c := range classifiers {
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s: fit: %v", c.Name(), err)
		}
		bp, ok := c.(BatchPredictor)
		if !ok {
			t.Fatalf("%s: does not implement BatchPredictor", c.Name())
		}
		got := bp.PredictBatch(test.X, nil)
		if len(got) != test.Len() {
			t.Fatalf("%s: batch returned %d predictions for %d rows", c.Name(), len(got), test.Len())
		}
		for i, x := range test.X {
			if want := c.Predict(x); got[i] != want {
				t.Errorf("%s: batch[%d] = %d, Predict = %d", c.Name(), i, got[i], want)
			}
		}
		// Reusing an oversized buffer must give the same answers in place.
		reused := make([]int, 0, 2*test.Len())
		reused = bp.PredictBatch(test.X, reused)
		for i, p := range got {
			if reused[i] != p {
				t.Errorf("%s: reused-buffer batch[%d] = %d, want %d", c.Name(), i, reused[i], p)
			}
		}
	}
}

// TestPredictProbaBatchMatchesProba checks the forest's row-major batch vote
// distribution against the per-sample Proba path.
func TestPredictProbaBatchMatchesProba(t *testing.T) {
	train := threeClassData(180, 9)
	test := threeClassData(45, 10)
	rf := &RandomForest{NumTrees: 20, MaxDepth: 8, Seed: 9}
	if err := rf.Fit(train); err != nil {
		t.Fatalf("fit: %v", err)
	}
	nc := rf.NumClasses()
	probs := rf.PredictProbaBatch(test.X, nil)
	if len(probs) != test.Len()*nc {
		t.Fatalf("batch returned %d values, want %d", len(probs), test.Len()*nc)
	}
	for i, x := range test.X {
		want := rf.Proba(x)
		for c, p := range want {
			if probs[i*nc+c] != p {
				t.Errorf("row %d class %d: batch %v, Proba %v", i, c, probs[i*nc+c], p)
			}
		}
	}
}

// ExampleRandomForest_PredictBatch demonstrates the allocation-free batch
// inference path.
func ExampleRandomForest_PredictBatch() {
	train := threeClassData(120, 3)
	rf := &RandomForest{NumTrees: 15, Seed: 3}
	if err := rf.Fit(train); err != nil {
		panic(err)
	}
	out := rf.PredictBatch(train.X[:4], nil)
	fmt.Println(len(out))
	// Output: 4
}

// TestCrossValidateContextCanceled: a pre-canceled context stops the fold
// fan-out at the shard boundary and surfaces the context's error, for both
// single-shot and repeated cross-validation.
func TestCrossValidateContextCanceled(t *testing.T) {
	d := xorData(200, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	factory := func() Classifier { return &DecisionTree{MaxDepth: 4, Rng: rand.New(rand.NewSource(1))} }
	if _, err := CrossValidateContext(ctx, factory, d, 5, rand.New(rand.NewSource(2))); !errors.Is(err, context.Canceled) {
		t.Errorf("CrossValidateContext err = %v, want context.Canceled", err)
	}
	if _, err := RepeatedCVContext(ctx, factory, d, 5, 3, rand.New(rand.NewSource(2))); !errors.Is(err, context.Canceled) {
		t.Errorf("RepeatedCVContext err = %v, want context.Canceled", err)
	}
}

// TestCrossValidateContextMatchesPlain: a context run that completes equals
// the plain entry point for the same rng state.
func TestCrossValidateContextMatchesPlain(t *testing.T) {
	d := xorData(200, 3)
	factory := func() Classifier { return &DecisionTree{MaxDepth: 4, Rng: rand.New(rand.NewSource(1))} }
	want, err := CrossValidate(factory, d, 5, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := CrossValidateContext(context.Background(), factory, d, 5, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Errorf("context CV result %+v differs from plain %+v", got, want)
	}
}
