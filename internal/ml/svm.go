package ml

import (
	"math"
	"math/rand"
)

// Kernel selects the SVM kernel. The paper tries "both linear and non-linear
// classification metrics and different regularization parameters" (§6.2).
type Kernel int

// Supported kernels.
const (
	LinearKernel Kernel = iota
	RBFKernel
)

// String returns the kernel name.
func (k Kernel) String() string {
	if k == RBFKernel {
		return "rbf"
	}
	return "linear"
}

// SVM is a support vector machine classifier. Binary problems are solved
// with a simplified SMO solver; multi-class problems use one-vs-rest.
// Features are standardized internally.
type SVM struct {
	// C is the regularization parameter (<=0 means 1).
	C float64
	// Kernel selects linear or RBF.
	Kernel Kernel
	// Gamma is the RBF width (<=0 means 1/#features).
	Gamma float64
	// MaxPasses bounds SMO passes without alpha changes (<=0 means 5).
	MaxPasses int
	// Tol is the KKT tolerance (<=0 means 1e-3).
	Tol float64
	// Seed makes training deterministic.
	Seed int64

	scaler     *Scaler
	machines   []*binarySVM // one per class (one-vs-rest); single for binary
	numClasses int
}

// binarySVM holds one fitted two-class machine with labels in {-1,+1}.
type binarySVM struct {
	alphaY []float64 // alpha_i * y_i for support vectors
	sv     [][]float64
	b      float64
	kernel Kernel
	gamma  float64
}

func (m *binarySVM) kernelFn(a, b []float64) float64 {
	switch m.kernel {
	case RBFKernel:
		var d float64
		for i := range a {
			t := a[i] - b[i]
			d += t * t
		}
		return math.Exp(-m.gamma * d)
	default:
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
}

// decision returns the signed decision value for x.
func (m *binarySVM) decision(x []float64) float64 {
	s := m.b
	for i, v := range m.sv {
		s += m.alphaY[i] * m.kernelFn(v, x)
	}
	return s
}

// Name implements Classifier.
func (s *SVM) Name() string { return "svm-" + s.Kernel.String() }

// Fit implements Classifier.
func (s *SVM) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if s.C <= 0 {
		s.C = 1
	}
	if s.MaxPasses <= 0 {
		s.MaxPasses = 5
	}
	if s.Tol <= 0 {
		s.Tol = 1e-3
	}
	gamma := s.Gamma
	if gamma <= 0 {
		gamma = 1 / float64(d.NumFeatures())
	}
	s.scaler = FitScaler(d)
	scaled := s.scaler.ApplyAll(d)
	s.numClasses = d.NumClasses()
	rng := rand.New(rand.NewSource(s.Seed ^ 0x53f6))

	if s.numClasses <= 2 {
		y := make([]float64, scaled.Len())
		for i, label := range scaled.Y {
			if label == 1 {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		s.machines = []*binarySVM{s.trainBinary(scaled.X, y, gamma, rng)}
		return nil
	}
	s.machines = make([]*binarySVM, s.numClasses)
	for c := 0; c < s.numClasses; c++ {
		y := make([]float64, scaled.Len())
		for i, label := range scaled.Y {
			if label == c {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		s.machines[c] = s.trainBinary(scaled.X, y, gamma, rng)
	}
	return nil
}

// trainBinary runs simplified SMO (Platt 1998 / Stanford CS229 variant).
func (s *SVM) trainBinary(x [][]float64, y []float64, gamma float64, rng *rand.Rand) *binarySVM {
	n := len(x)
	m := &binarySVM{kernel: s.Kernel, gamma: gamma}
	alpha := make([]float64, n)
	b := 0.0

	// Precompute the kernel matrix (datasets here are <= a few thousand
	// samples).
	k := make([][]float64, n)
	for i := 0; i < n; i++ {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := m.kernelFn(x[i], x[j])
			k[i][j] = v
			k[j][i] = v
		}
	}
	f := func(i int) float64 {
		s := b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * y[j] * k[i][j]
			}
		}
		return s
	}

	passes := 0
	for passes < s.MaxPasses {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if (y[i]*ei < -s.Tol && alpha[i] < s.C) || (y[i]*ei > s.Tol && alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := f(j) - y[j]
				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(s.C, s.C+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-s.C)
					hi = math.Min(s.C, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*k[i][j] - k[i][i] - k[j][j]
				if eta >= 0 {
					continue
				}
				alpha[j] = aj - y[j]*(ei-ej)/eta
				if alpha[j] > hi {
					alpha[j] = hi
				} else if alpha[j] < lo {
					alpha[j] = lo
				}
				if math.Abs(alpha[j]-aj) < 1e-5 {
					continue
				}
				alpha[i] = ai + y[i]*y[j]*(aj-alpha[j])
				b1 := b - ei - y[i]*(alpha[i]-ai)*k[i][i] - y[j]*(alpha[j]-aj)*k[i][j]
				b2 := b - ej - y[i]*(alpha[i]-ai)*k[i][j] - y[j]*(alpha[j]-aj)*k[j][j]
				switch {
				case alpha[i] > 0 && alpha[i] < s.C:
					b = b1
				case alpha[j] > 0 && alpha[j] < s.C:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			m.alphaY = append(m.alphaY, alpha[i]*y[i])
			m.sv = append(m.sv, x[i])
		}
	}
	m.b = b
	return m
}

// Predict implements Classifier.
func (s *SVM) Predict(x []float64) int {
	if len(s.machines) == 0 {
		return 0
	}
	xs := s.scaler.Apply(x)
	if s.numClasses <= 2 {
		if s.machines[0].decision(xs) >= 0 {
			return 1
		}
		return 0
	}
	best, bestV := 0, math.Inf(-1)
	for c, m := range s.machines {
		if v := m.decision(xs); v > bestV {
			best, bestV = c, v
		}
	}
	return best
}
