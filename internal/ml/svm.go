package ml

import (
	"math"
	"math/rand"
	"sort"
)

// Kernel selects the SVM kernel. The paper tries "both linear and non-linear
// classification metrics and different regularization parameters" (§6.2).
type Kernel int

// Supported kernels.
const (
	LinearKernel Kernel = iota
	RBFKernel
)

// String returns the kernel name.
func (k Kernel) String() string {
	if k == RBFKernel {
		return "rbf"
	}
	return "linear"
}

// SVM is a support vector machine classifier. Binary problems are solved
// with a simplified SMO solver; multi-class problems use one-vs-rest.
// Features are standardized internally.
type SVM struct {
	// C is the regularization parameter (<=0 means 1).
	C float64
	// Kernel selects linear or RBF.
	Kernel Kernel
	// Gamma is the RBF width (<=0 means 1/#features).
	Gamma float64
	// MaxPasses bounds SMO passes without alpha changes (<=0 means 5).
	MaxPasses int
	// Tol is the KKT tolerance (<=0 means 1e-3).
	Tol float64
	// Seed makes training deterministic.
	Seed int64

	scaler     *Scaler
	machines   []*binarySVM // one per class (one-vs-rest); single for binary
	numClasses int
}

// binarySVM holds one fitted two-class machine with labels in {-1,+1}.
type binarySVM struct {
	alphaY []float64 // alpha_i * y_i for support vectors
	sv     [][]float64
	b      float64
	kernel Kernel
	gamma  float64
}

func (m *binarySVM) kernelFn(a, b []float64) float64 {
	switch m.kernel {
	case RBFKernel:
		var d float64
		for i := range a {
			t := a[i] - b[i]
			d += t * t
		}
		return math.Exp(-m.gamma * d)
	default:
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
}

// decision returns the signed decision value for x.
func (m *binarySVM) decision(x []float64) float64 {
	s := m.b
	for i, v := range m.sv {
		s += m.alphaY[i] * m.kernelFn(v, x)
	}
	return s
}

// Name implements Classifier.
func (s *SVM) Name() string { return "svm-" + s.Kernel.String() }

// Fit implements Classifier. Fit does not modify the exported configuration
// fields.
func (s *SVM) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	c := s.C
	if c <= 0 {
		c = 1
	}
	maxPasses := s.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 5
	}
	tol := s.Tol
	if tol <= 0 {
		tol = 1e-3
	}
	gamma := s.Gamma
	if gamma <= 0 {
		gamma = 1 / float64(d.NumFeatures())
	}
	s.scaler = FitScaler(d)
	scaled := s.scaler.ApplyAll(d)
	s.numClasses = d.NumClasses()
	rng := rand.New(rand.NewSource(s.Seed ^ 0x53f6))

	if s.numClasses <= 2 {
		y := make([]float64, scaled.Len())
		for i, label := range scaled.Y {
			if label == 1 {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		s.machines = []*binarySVM{trainBinary(scaled.X, y, s.Kernel, gamma, c, tol, maxPasses, rng)}
		return nil
	}
	s.machines = make([]*binarySVM, s.numClasses)
	for cls := 0; cls < s.numClasses; cls++ {
		y := make([]float64, scaled.Len())
		for i, label := range scaled.Y {
			if label == cls {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		s.machines[cls] = trainBinary(scaled.X, y, s.Kernel, gamma, c, tol, maxPasses, rng)
	}
	return nil
}

// trainBinary runs simplified SMO (Platt 1998 / Stanford CS229 variant). The
// decision-value sum iterates a sorted active set of nonzero alphas with
// alpha_j*y_j precomputed — the same terms in the same ascending-j order as
// a full scan, so the trained machine is bit-identical to one — and training
// stops outright once a pass sees no KKT violation, since every further pass
// would change nothing and consume no randomness.
func trainBinary(x [][]float64, y []float64, kernel Kernel, gamma, c, tol float64, maxPasses int, rng *rand.Rand) *binarySVM {
	n := len(x)
	m := &binarySVM{kernel: kernel, gamma: gamma}
	alpha := make([]float64, n)
	b := 0.0

	// Precompute the kernel matrix (datasets here are <= a few thousand
	// samples).
	k := make([][]float64, n)
	for i := 0; i < n; i++ {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := m.kernelFn(x[i], x[j])
			k[i][j] = v
			k[j][i] = v
		}
	}

	// The active set lists samples with alpha != 0 in ascending order; actAY
	// packs the matching alpha_j*y_j values so the decision sum reads them
	// sequentially and only the kernel row is gathered.
	active := make([]int32, 0, n)
	actAY := make([]float64, 0, n)
	setAlpha := func(i int, v float64) {
		was := alpha[i] != 0
		alpha[i] = v
		now := v != 0
		if !was && !now {
			return
		}
		pos := sort.Search(len(active), func(p int) bool { return active[p] >= int32(i) })
		switch {
		case was && now:
			actAY[pos] = v * y[i]
		case now:
			active = append(active, 0)
			actAY = append(actAY, 0)
			copy(active[pos+1:], active[pos:])
			copy(actAY[pos+1:], actAY[pos:])
			active[pos] = int32(i)
			actAY[pos] = v * y[i]
		default:
			active = append(active[:pos], active[pos+1:]...)
			actAY = append(actAY[:pos], actAY[pos+1:]...)
		}
	}
	// f values are cached per epoch: any alpha or b update bumps the epoch,
	// so a cached value is only ever reused while the solver state is exactly
	// the state it was computed under. Stagnant passes (the convergence tail,
	// where nothing changes for several full scans) then cost one comparison
	// per sample instead of a full kernel-row sum.
	fcache := make([]float64, n)
	fEpoch := make([]int, n)
	epoch := 1
	f := func(i int) float64 {
		if fEpoch[i] == epoch {
			return fcache[i]
		}
		s := b
		ki := k[i]
		av := actAY[:len(active)]
		for t, j := range active {
			s += av[t] * ki[j]
		}
		fcache[i] = s
		fEpoch[i] = epoch
		return s
	}

	// fill4 computes f for up to four stale samples at and after i0 in one
	// pass over the active set. Each sample accumulates in its own chain in
	// the same ascending order as f, so every stored value is bit-identical
	// to an on-demand computation; the four independent chains merely hide
	// FP-add latency, which bounds this loop.
	fill4 := func(i0 int) {
		var ids [4]int
		cnt := 0
		for w := i0; w < n && cnt < 4; w++ {
			if fEpoch[w] != epoch {
				ids[cnt] = w
				cnt++
			}
		}
		for t := cnt; t < 4; t++ {
			ids[t] = ids[cnt-1]
		}
		k0, k1, k2, k3 := k[ids[0]], k[ids[1]], k[ids[2]], k[ids[3]]
		s0, s1, s2, s3 := b, b, b, b
		av := actAY[:len(active)]
		for t, j := range active {
			a := av[t]
			s0 += a * k0[j]
			s1 += a * k1[j]
			s2 += a * k2[j]
			s3 += a * k3[j]
		}
		fcache[ids[0]], fEpoch[ids[0]] = s0, epoch
		fcache[ids[1]], fEpoch[ids[1]] = s1, epoch
		fcache[ids[2]], fEpoch[ids[2]] = s2, epoch
		fcache[ids[3]], fEpoch[ids[3]] = s3, epoch
	}

	passes := 0
	for passes < maxPasses {
		changed, violated := 0, 0
		for i := 0; i < n; i++ {
			if fEpoch[i] != epoch {
				fill4(i)
			}
			ei := fcache[i] - y[i]
			if (y[i]*ei < -tol && alpha[i] < c) || (y[i]*ei > tol && alpha[i] > 0) {
				violated++
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := f(j) - y[j]
				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(c, c+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-c)
					hi = math.Min(c, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*k[i][j] - k[i][i] - k[j][j]
				if eta >= 0 {
					continue
				}
				ajNew := aj - y[j]*(ei-ej)/eta
				if ajNew > hi {
					ajNew = hi
				} else if ajNew < lo {
					ajNew = lo
				}
				if math.Abs(ajNew-aj) < 1e-5 {
					continue
				}
				aiNew := ai + y[i]*y[j]*(aj-ajNew)
				setAlpha(j, ajNew)
				setAlpha(i, aiNew)
				b1 := b - ei - y[i]*(aiNew-ai)*k[i][i] - y[j]*(ajNew-aj)*k[i][j]
				b2 := b - ej - y[i]*(aiNew-ai)*k[i][j] - y[j]*(ajNew-aj)*k[j][j]
				switch {
				case aiNew > 0 && aiNew < c:
					b = b1
				case ajNew > 0 && ajNew < c:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				epoch++
				changed++
			}
		}
		if changed == 0 {
			if violated == 0 {
				// Fully KKT-feasible: every remaining pass would see the
				// same decision values, change nothing, and draw no random
				// partners, so the outcome is already final.
				break
			}
			passes++
		} else {
			passes = 0
		}
	}

	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			m.alphaY = append(m.alphaY, alpha[i]*y[i])
			m.sv = append(m.sv, x[i])
		}
	}
	m.b = b
	return m
}

// Predict implements Classifier.
func (s *SVM) Predict(x []float64) int {
	if len(s.machines) == 0 {
		return 0
	}
	xs := s.scaler.Apply(x)
	return s.predictScaled(xs)
}

// predictScaled classifies an already-standardized feature vector.
func (s *SVM) predictScaled(xs []float64) int {
	if s.numClasses <= 2 {
		if s.machines[0].decision(xs) >= 0 {
			return 1
		}
		return 0
	}
	best, bestV := 0, math.Inf(-1)
	for c, m := range s.machines {
		if v := m.decision(xs); v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// PredictBatch implements BatchPredictor: it classifies every row of X into
// out (reused when its capacity suffices), standardizing each row into one
// shared scratch vector so no per-sample allocation remains.
func (s *SVM) PredictBatch(X [][]float64, out []int) []int {
	out = resizeInts(out, len(X))
	if len(s.machines) == 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	xs := make([]float64, len(s.scaler.Mean))
	for i, x := range X {
		s.scaler.ApplyInto(x, xs)
		out[i] = s.predictScaled(xs)
	}
	return out
}
