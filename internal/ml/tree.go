package ml

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Criterion selects the impurity measure used to grow trees. The paper tries
// both Gini index and entropy (§6.2).
type Criterion int

// Supported impurity criteria.
const (
	Gini Criterion = iota
	Entropy
)

// String returns the criterion name.
func (c Criterion) String() string {
	if c == Entropy {
		return "entropy"
	}
	return "gini"
}

// impurity computes the criterion value from class counts.
func (c Criterion) impurity(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	switch c {
	case Entropy:
		var h float64
		for _, n := range counts {
			if n == 0 {
				continue
			}
			p := float64(n) / float64(total)
			h -= p * math.Log2(p)
		}
		return h
	default:
		g := 1.0
		for _, n := range counts {
			p := float64(n) / float64(total)
			g -= p * p
		}
		return g
	}
}

// treeNode is one node of a fitted decision tree.
type treeNode struct {
	// leaf fields
	isLeaf bool
	class  int
	// split fields
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
}

// DecisionTree is a CART-style binary classification tree with bounded depth
// (the paper limits depth to reduce overfitting).
type DecisionTree struct {
	// MaxDepth bounds tree depth (<=0 means 8).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (<=0 means 2).
	MinLeaf int
	// Criterion is the impurity measure.
	Criterion Criterion
	// MaxFeatures limits the number of features considered per split
	// (<=0 means all). Random forests set this to sqrt(#features).
	MaxFeatures int
	// Rng shuffles feature candidate order; nil means deterministic
	// full-feature scan.
	Rng *rand.Rand

	root       *treeNode
	importance []float64
	nFeatures  int
	nSamples   int
}

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "decision-tree" }

// Fit implements Classifier.
func (t *DecisionTree) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if t.MaxDepth <= 0 {
		t.MaxDepth = 8
	}
	if t.MinLeaf <= 0 {
		t.MinLeaf = 2
	}
	t.nFeatures = d.NumFeatures()
	t.nSamples = d.Len()
	t.importance = make([]float64, t.nFeatures)
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	nc := d.NumClasses()
	if nc < 2 {
		nc = 2
	}
	t.root = t.build(d, idx, 0, nc)
	return nil
}

// majority returns the most frequent class among idx.
func majority(d *Dataset, idx []int, numClasses int) int {
	counts := make([]int, numClasses)
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

func classCounts(d *Dataset, idx []int, numClasses int) []int {
	counts := make([]int, numClasses)
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	return counts
}

func pure(counts []int) bool {
	nonzero := 0
	for _, n := range counts {
		if n > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

// build grows the tree recursively.
func (t *DecisionTree) build(d *Dataset, idx []int, depth, numClasses int) *treeNode {
	counts := classCounts(d, idx, numClasses)
	if depth >= t.MaxDepth || len(idx) < 2*t.MinLeaf || pure(counts) {
		return &treeNode{isLeaf: true, class: majority(d, idx, numClasses)}
	}
	feat, thr, gain, ok := t.bestSplit(d, idx, counts, numClasses)
	if !ok {
		return &treeNode{isLeaf: true, class: majority(d, idx, numClasses)}
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.MinLeaf || len(right) < t.MinLeaf {
		return &treeNode{isLeaf: true, class: majority(d, idx, numClasses)}
	}
	// Weighted impurity decrease contributes to Gini importance.
	t.importance[feat] += gain * float64(len(idx)) / float64(t.nSamples)
	return &treeNode{
		feature:   feat,
		threshold: thr,
		left:      t.build(d, left, depth+1, numClasses),
		right:     t.build(d, right, depth+1, numClasses),
	}
}

// bestSplit finds the (feature, threshold) pair with maximal impurity
// decrease via a single sorted scan per feature.
func (t *DecisionTree) bestSplit(d *Dataset, idx []int, parentCounts []int, numClasses int) (feat int, thr, gain float64, ok bool) {
	n := len(idx)
	parentImp := t.Criterion.impurity(parentCounts, n)

	features := make([]int, t.nFeatures)
	for f := range features {
		features[f] = f
	}
	if t.Rng != nil {
		t.Rng.Shuffle(len(features), func(a, b int) { features[a], features[b] = features[b], features[a] })
	}
	limit := len(features)
	if t.MaxFeatures > 0 && t.MaxFeatures < limit {
		limit = t.MaxFeatures
	}

	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, n)
	leftCounts := make([]int, numClasses)
	rightCounts := make([]int, numClasses)

	bestGain := 1e-12
	found := false
	for _, f := range features[:limit] {
		for k, i := range idx {
			vals[k] = fv{v: d.X[i][f], y: d.Y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		copy(rightCounts, parentCounts)
		for k := 0; k < n-1; k++ {
			leftCounts[vals[k].y]++
			rightCounts[vals[k].y]--
			if vals[k].v == vals[k+1].v {
				continue
			}
			nl, nr := k+1, n-k-1
			if nl < t.MinLeaf || nr < t.MinLeaf {
				continue
			}
			imp := (float64(nl)*t.Criterion.impurity(leftCounts, nl) +
				float64(nr)*t.Criterion.impurity(rightCounts, nr)) / float64(n)
			g := parentImp - imp
			if g > bestGain {
				bestGain = g
				feat = f
				thr = (vals[k].v + vals[k+1].v) / 2
				found = true
			}
		}
	}
	if !found {
		return 0, 0, 0, false
	}
	return feat, thr, bestGain, true
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) int {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.isLeaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// Importance returns the (unnormalized) total impurity decrease attributed
// to each feature during fitting.
func (t *DecisionTree) Importance() []float64 {
	out := make([]float64, len(t.importance))
	copy(out, t.importance)
	return out
}

// Depth returns the depth of the fitted tree (0 for a single leaf).
func (t *DecisionTree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.isLeaf {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// ErrNotFitted is returned by operations requiring a fitted model.
var ErrNotFitted = errors.New("ml: model not fitted")
