package ml

import (
	"errors"
	"math"
	"math/rand"
	"slices"
	"sync"
)

// Criterion selects the impurity measure used to grow trees. The paper tries
// both Gini index and entropy (§6.2).
type Criterion int

// Supported impurity criteria.
const (
	Gini Criterion = iota
	Entropy
)

// String returns the criterion name.
func (c Criterion) String() string {
	if c == Entropy {
		return "entropy"
	}
	return "gini"
}

// impurity computes the criterion value from class counts.
func (c Criterion) impurity(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	switch c {
	case Entropy:
		var h float64
		for _, n := range counts {
			if n == 0 {
				continue
			}
			p := float64(n) / float64(total)
			h -= p * math.Log2(p)
		}
		return h
	default:
		g := 1.0
		for _, n := range counts {
			p := float64(n) / float64(total)
			g -= p * p
		}
		return g
	}
}

// treeNode is one node of a fitted decision tree.
type treeNode struct {
	// leaf fields
	isLeaf bool
	class  int
	// split fields
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
}

// DecisionTree is a CART-style binary classification tree with bounded depth
// (the paper limits depth to reduce overfitting).
type DecisionTree struct {
	// MaxDepth bounds tree depth (<=0 means 8).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (<=0 means 2).
	MinLeaf int
	// Criterion is the impurity measure.
	Criterion Criterion
	// MaxFeatures limits the number of features considered per split
	// (<=0 means all). Random forests set this to sqrt(#features).
	MaxFeatures int
	// Rng shuffles feature candidate order; nil means deterministic
	// full-feature scan.
	Rng *rand.Rand

	root       *treeNode
	flat       flatTree
	importance []float64
	nFeatures  int
	nSamples   int
}

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "decision-tree" }

// Fit implements Classifier. Each feature column is sorted once up front;
// the sorted index arrays are then partitioned in place down the tree, so a
// node costs O(features·samples) instead of O(features·samples·log samples).
// Splits, thresholds, and importances are identical to a per-node re-sort:
// the scan accumulates integer class counts and only evaluates positions
// between distinct values, so tie order within a sorted run cannot affect
// the outcome. Fit does not modify the exported configuration fields.
func (t *DecisionTree) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 8
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	t.nFeatures = d.NumFeatures()
	t.nSamples = d.Len()
	t.fit(d, nil, maxDepth, minLeaf)
	return nil
}

// fitIndexed fits the tree on the rows of d selected by idx (with
// repetition — a bootstrap sample), without materializing the subset. The
// fitted tree is bit-identical to Fit(d.Subset(idx)): the builder reads the
// same values in the same order, it just indexes into d directly — and from
// the column-major mirror when one is attached. The caller has already
// validated d.
func (t *DecisionTree) fitIndexed(d *Dataset, idx []int) {
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 8
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	t.nFeatures = d.NumFeatures()
	t.nSamples = len(idx)
	t.fit(d, idx, maxDepth, minLeaf)
}

func (t *DecisionTree) fit(d *Dataset, idx []int, maxDepth, minLeaf int) {
	nc := d.NumClasses()
	if nc < 2 {
		nc = 2
	}
	b := treeBuilderPool.Get().(*treeBuilder)
	b.init(d, idx, maxDepth, minLeaf, t.Criterion, t.MaxFeatures, t.Rng, nc)
	t.root = b.build(0, b.nSamples, 0)
	t.importance = make([]float64, t.nFeatures)
	copy(t.importance, b.importance)
	b.release()
	t.flat = compileTree(t.root)
}

// sortedSample is one (value, label, sample) triple of a presorted feature
// column.
type sortedSample struct {
	v float64
	y int32
	i int32
}

// treeBuilder holds one Fit invocation's state: resolved hyperparameters,
// presorted per-feature columns, and reusable scratch. Builders are pooled so
// a forest fit reuses the same buffers across trees.
type treeBuilder struct {
	maxDepth   int
	minLeaf    int
	maxFeat    int
	criterion  Criterion
	rng        *rand.Rand
	numClasses int
	nSamples   int

	// cols[f] holds the node samples sorted ascending by feature f; every
	// node owns the same contiguous range [lo, hi) in all columns, which
	// splits partition stably in place.
	cols        [][]sortedSample
	scratch     []sortedSample
	goesLeft    []bool
	features    []int
	counts      []int
	leftCounts  []int
	rightCounts []int
	importance  []float64
}

var treeBuilderPool = sync.Pool{New: func() any { return new(treeBuilder) }}

// init presorts the feature columns for one fit. With idx nil the builder
// covers every row of d; otherwise it covers the rows idx selects (a
// bootstrap sample, repetitions allowed), without materializing the subset.
// When d carries a column-major mirror the presort fills from contiguous
// column memory; either way the (value, label, position) triples — and hence
// every downstream split — are identical to a row-wise fill.
func (b *treeBuilder) init(d *Dataset, idx []int, maxDepth, minLeaf int, crit Criterion, maxFeat int, rng *rand.Rand, numClasses int) {
	n := d.Len()
	if idx != nil {
		n = len(idx)
	}
	nf := d.NumFeatures()
	b.maxDepth = maxDepth
	b.minLeaf = minLeaf
	b.maxFeat = maxFeat
	b.criterion = crit
	b.rng = rng
	b.numClasses = numClasses
	b.nSamples = n

	if cap(b.cols) < nf {
		b.cols = make([][]sortedSample, nf)
	}
	b.cols = b.cols[:nf]
	dc := d.cols
	for f := 0; f < nf; f++ {
		if cap(b.cols[f]) < n {
			b.cols[f] = make([]sortedSample, n)
		}
		col := b.cols[f][:n]
		b.cols[f] = col
		switch {
		case idx == nil && dc != nil:
			src := dc[f]
			for i := 0; i < n; i++ {
				col[i] = sortedSample{v: src[i], y: int32(d.Y[i]), i: int32(i)}
			}
		case idx == nil:
			for i := 0; i < n; i++ {
				col[i] = sortedSample{v: d.X[i][f], y: int32(d.Y[i]), i: int32(i)}
			}
		case dc != nil:
			src := dc[f]
			for i, j := range idx {
				col[i] = sortedSample{v: src[j], y: int32(d.Y[j]), i: int32(i)}
			}
		default:
			for i, j := range idx {
				col[i] = sortedSample{v: d.X[j][f], y: int32(d.Y[j]), i: int32(i)}
			}
		}
		// Sample index breaks value ties: a deterministic total order, so
		// the presort is independent of the sort algorithm.
		slices.SortFunc(col, func(a, c sortedSample) int {
			switch {
			case a.v < c.v:
				return -1
			case a.v > c.v:
				return 1
			default:
				return int(a.i) - int(c.i)
			}
		})
	}
	b.scratch = growSamples(b.scratch, n)
	b.goesLeft = growBools(b.goesLeft, n)
	b.features = growInts(b.features, nf)
	b.counts = growInts(b.counts, numClasses)
	b.leftCounts = growInts(b.leftCounts, numClasses)
	b.rightCounts = growInts(b.rightCounts, numClasses)
	b.importance = growFloats(b.importance, nf)
	for i := range b.importance {
		b.importance[i] = 0
	}
}

// release drops the dataset references and returns the builder to the pool.
func (b *treeBuilder) release() {
	b.rng = nil
	treeBuilderPool.Put(b)
}

func growSamples(s []sortedSample, n int) []sortedSample {
	if cap(s) < n {
		return make([]sortedSample, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func pure(counts []int) bool {
	nonzero := 0
	for _, n := range counts {
		if n > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

// argmaxCount returns the first class with the maximal count.
func argmaxCount(counts []int) int {
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// build grows the tree over the column range [lo, hi).
func (b *treeBuilder) build(lo, hi, depth int) *treeNode {
	n := hi - lo
	counts := b.counts
	for c := range counts {
		counts[c] = 0
	}
	for _, s := range b.cols[0][lo:hi] {
		counts[s.y]++
	}
	if depth >= b.maxDepth || n < 2*b.minLeaf || pure(counts) {
		return &treeNode{isLeaf: true, class: argmaxCount(counts)}
	}
	feat, thr, gain, ok := b.bestSplit(lo, hi, counts)
	if !ok {
		return &treeNode{isLeaf: true, class: argmaxCount(counts)}
	}
	nl := 0
	for _, s := range b.cols[feat][lo:hi] {
		gl := s.v <= thr
		b.goesLeft[s.i] = gl
		if gl {
			nl++
		}
	}
	if nl < b.minLeaf || n-nl < b.minLeaf {
		return &treeNode{isLeaf: true, class: argmaxCount(counts)}
	}
	// Weighted impurity decrease contributes to Gini importance.
	b.importance[feat] += gain * float64(n) / float64(b.nSamples)
	for f := range b.cols {
		b.partition(b.cols[f][lo:hi], nl)
	}
	return &treeNode{
		feature:   feat,
		threshold: thr,
		left:      b.build(lo, lo+nl, depth+1),
		right:     b.build(lo+nl, hi, depth+1),
	}
}

// partition stably splits col into left-going then right-going samples, so
// both halves remain sorted by the column's feature value.
func (b *treeBuilder) partition(col []sortedSample, nl int) {
	scratch := b.scratch[:0]
	w := 0
	for _, s := range col {
		if b.goesLeft[s.i] {
			col[w] = s
			w++
		} else {
			scratch = append(scratch, s)
		}
	}
	copy(col[nl:], scratch)
}

// bestSplit finds the (feature, threshold) pair with maximal impurity
// decrease via a single scan of each presorted column.
func (b *treeBuilder) bestSplit(lo, hi int, parentCounts []int) (feat int, thr, gain float64, ok bool) {
	n := hi - lo
	parentImp := b.criterion.impurity(parentCounts, n)

	features := b.features
	for f := range features {
		features[f] = f
	}
	if b.rng != nil {
		b.rng.Shuffle(len(features), func(a, c int) { features[a], features[c] = features[c], features[a] })
	}
	limit := len(features)
	if b.maxFeat > 0 && b.maxFeat < limit {
		limit = b.maxFeat
	}

	leftCounts, rightCounts := b.leftCounts, b.rightCounts
	bestGain := 1e-12
	found := false
	for _, f := range features[:limit] {
		col := b.cols[f][lo:hi]
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		copy(rightCounts, parentCounts)
		for k := 0; k < n-1; k++ {
			y := col[k].y
			leftCounts[y]++
			rightCounts[y]--
			if col[k].v == col[k+1].v {
				continue
			}
			nl, nr := k+1, n-k-1
			if nl < b.minLeaf || nr < b.minLeaf {
				continue
			}
			imp := (float64(nl)*b.criterion.impurity(leftCounts, nl) +
				float64(nr)*b.criterion.impurity(rightCounts, nr)) / float64(n)
			g := parentImp - imp
			if g > bestGain {
				bestGain = g
				feat = f
				thr = (col[k].v + col[k+1].v) / 2
				found = true
			}
		}
	}
	if !found {
		return 0, 0, 0, false
	}
	return feat, thr, bestGain, true
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) int {
	if len(t.flat.nodes) > 0 {
		return t.flat.predict(x)
	}
	n := t.root
	if n == nil {
		return 0
	}
	for !n.isLeaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// PredictBatch implements BatchPredictor: it classifies every row of X into
// out (reused when its capacity suffices) with no per-sample allocation.
func (t *DecisionTree) PredictBatch(X [][]float64, out []int) []int {
	out = resizeInts(out, len(X))
	if len(t.flat.nodes) == 0 && t.root == nil {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	for i, x := range X {
		out[i] = t.Predict(x)
	}
	return out
}

// Importance returns the (unnormalized) total impurity decrease attributed
// to each feature during fitting.
func (t *DecisionTree) Importance() []float64 {
	out := make([]float64, len(t.importance))
	copy(out, t.importance)
	return out
}

// Depth returns the depth of the fitted tree (0 for a single leaf).
func (t *DecisionTree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.isLeaf {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// ErrNotFitted is returned by operations requiring a fitted model.
var ErrNotFitted = errors.New("ml: model not fitted")
