package ml

import (
	"math"
	"math/rand"
)

// NeuralNet is the paper's DNN model (§6.2): a fully connected network with
// 4 dense layers — ReLU activation in the first three, sigmoid (binary) or
// softmax (multi-class) in the last — with dropout after each hidden layer
// to reduce overfitting. Training uses mini-batch Adam on cross-entropy
// loss. Features are standardized internally.
type NeuralNet struct {
	// Hidden holds the three hidden layer widths (defaults 32/16/8).
	Hidden [3]int
	// Dropout is the drop probability after each hidden layer (default
	// 0.2 when zero; set negative to disable).
	Dropout float64
	// Epochs is the number of training epochs (<=0 means 200).
	Epochs int
	// BatchSize is the mini-batch size (<=0 means 32).
	BatchSize int
	// LearningRate is Adam's step size (<=0 means 1e-3).
	LearningRate float64
	// Seed makes training deterministic.
	Seed int64

	scaler  *Scaler
	weights [][][]float64 // weights[l][out][in]
	biases  [][]float64   // biases[l][out]
	outDim  int           // 1 for binary sigmoid, K for softmax
	classes int
}

// Name implements Classifier.
func (n *NeuralNet) Name() string { return "dnn" }

// nnScratch holds the per-sample forward/backward buffers so one training
// run performs no per-sample allocation.
type nnScratch struct {
	acts   [][]float64 // acts[l] = post-activation output of layer l
	masks  [][]float64 // dropout masks for the hidden layers
	deltas [][]float64 // deltas[l] = gradient at layer l's output
}

func newNNScratch(weights [][][]float64) *nnScratch {
	nLayers := len(weights)
	sc := &nnScratch{
		acts:   make([][]float64, nLayers),
		masks:  make([][]float64, nLayers),
		deltas: make([][]float64, nLayers),
	}
	for l := 0; l < nLayers; l++ {
		width := len(weights[l])
		sc.acts[l] = make([]float64, width)
		sc.deltas[l] = make([]float64, width)
		if l < nLayers-1 {
			sc.masks[l] = make([]float64, width)
		}
	}
	return sc
}

// Fit implements Classifier. Gradient and scratch buffers are allocated once
// and reused across samples and batches; the arithmetic and the RNG call
// sequence (weight init, epoch shuffles, per-unit dropout draws) match the
// naive per-sample-allocation implementation exactly. Fit does not modify
// the exported configuration fields.
func (n *NeuralNet) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	hidden := n.Hidden
	if hidden == [3]int{} {
		hidden = [3]int{32, 16, 8}
	}
	dropout := n.Dropout
	if dropout == 0 {
		dropout = 0.2
	} else if dropout < 0 {
		dropout = 0
	}
	epochs := n.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	batchSize := n.BatchSize
	if batchSize <= 0 {
		batchSize = 32
	}
	learningRate := n.LearningRate
	if learningRate <= 0 {
		learningRate = 1e-3
	}
	n.scaler = FitScaler(d)
	scaled := n.scaler.ApplyAll(d)
	n.classes = d.NumClasses()
	if n.classes <= 2 {
		n.outDim = 1
	} else {
		n.outDim = n.classes
	}
	dims := []int{d.NumFeatures(), hidden[0], hidden[1], hidden[2], n.outDim}
	rng := rand.New(rand.NewSource(n.Seed ^ 0xdeed))

	// He initialization for the ReLU layers, Xavier for the output.
	n.weights = make([][][]float64, len(dims)-1)
	n.biases = make([][]float64, len(dims)-1)
	for l := 0; l < len(dims)-1; l++ {
		in, out := dims[l], dims[l+1]
		scale := math.Sqrt(2 / float64(in))
		if l == len(dims)-2 {
			scale = math.Sqrt(1 / float64(in))
		}
		n.weights[l] = allocRows(out, in)
		n.biases[l] = make([]float64, out)
		for o := 0; o < out; o++ {
			for i := 0; i < in; i++ {
				n.weights[l][o][i] = rng.NormFloat64() * scale
			}
		}
	}

	// Adam state.
	mW, vW := zerosLike(n.weights), zerosLike(n.weights)
	mB, vB := zerosLikeB(n.biases), zerosLikeB(n.biases)
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	order := make([]int, scaled.Len())
	for i := range order {
		order[i] = i
	}
	nLayers := len(n.weights)
	gW, gB := zerosLike(n.weights), zerosLikeB(n.biases)
	sc := newNNScratch(n.weights)
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for start := 0; start < len(order); start += batchSize {
			end := start + batchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			zeroGrads(gW, gB)
			for _, idx := range batch {
				n.backprop(scaled.X[idx], scaled.Y[idx], gW, gB, rng, dropout, sc)
			}
			step++
			bs := float64(len(batch))
			lr := learningRate
			bc1 := 1 - math.Pow(beta1, float64(step))
			bc2 := 1 - math.Pow(beta2, float64(step))
			for l := 0; l < nLayers; l++ {
				wl, gWl, mWl, vWl := n.weights[l], gW[l], mW[l], vW[l]
				bl, gBl, mBl, vBl := n.biases[l], gB[l], mB[l], vB[l]
				for o := range wl {
					w, gr, mr, vr := wl[o], gWl[o], mWl[o], vWl[o]
					for i := range w {
						g := gr[i] / bs
						mr[i] = beta1*mr[i] + (1-beta1)*g
						vr[i] = beta2*vr[i] + (1-beta2)*g*g
						w[i] -= lr * (mr[i] / bc1) / (math.Sqrt(vr[i]/bc2) + eps)
					}
					g := gBl[o] / bs
					mBl[o] = beta1*mBl[o] + (1-beta1)*g
					vBl[o] = beta2*vBl[o] + (1-beta2)*g*g
					bl[o] -= lr * (mBl[o] / bc1) / (math.Sqrt(vBl[o]/bc2) + eps)
				}
			}
		}
	}
	return nil
}

// allocRows carves `out` row slices of length `in` from one contiguous block,
// so a layer's weights (and gradients, and Adam state) stay cache-dense.
func allocRows(out, in int) [][]float64 {
	buf := make([]float64, out*in)
	rows := make([][]float64, out)
	for o := range rows {
		rows[o] = buf[o*in : (o+1)*in : (o+1)*in]
	}
	return rows
}

func zerosLike(w [][][]float64) [][][]float64 {
	out := make([][][]float64, len(w))
	for l := range w {
		in := 0
		if len(w[l]) > 0 {
			in = len(w[l][0])
		}
		out[l] = allocRows(len(w[l]), in)
	}
	return out
}

func zerosLikeB(b [][]float64) [][]float64 {
	out := make([][]float64, len(b))
	for l := range b {
		out[l] = make([]float64, len(b[l]))
	}
	return out
}

func zeroGrads(gW [][][]float64, gB [][]float64) {
	for l := range gW {
		for o := range gW[l] {
			row := gW[l][o]
			for i := range row {
				row[i] = 0
			}
		}
		b := gB[l]
		for o := range b {
			b[o] = 0
		}
	}
}

// backprop accumulates gradients for one sample into gW/gB, applying
// inverted dropout on hidden activations during training. All intermediate
// state lives in sc.
func (n *NeuralNet) backprop(x []float64, label int, gW [][][]float64, gB [][]float64, rng *rand.Rand, dropout float64, sc *nnScratch) {
	nLayers := len(n.weights)
	in := x
	for l := 0; l < nLayers; l++ {
		out := sc.acts[l]
		wl, bl := n.weights[l], n.biases[l]
		for o := range wl {
			s := bl[o]
			w := wl[o]
			for i, wi := range w {
				s += wi * in[i]
			}
			out[o] = s
		}
		if l < nLayers-1 {
			// ReLU + inverted dropout.
			mask := sc.masks[l]
			keep := 1 - dropout
			for o := range out {
				if out[o] < 0 {
					out[o] = 0
				}
				m := 1.0
				if dropout > 0 {
					if rng.Float64() < dropout {
						m = 0
					} else {
						m = 1 / keep
					}
				}
				mask[o] = m
				out[o] *= m
			}
		} else if n.outDim == 1 {
			out[0] = sigmoid(out[0])
		} else {
			softmaxInPlace(out)
		}
		in = out
	}

	// Output delta for cross-entropy with sigmoid/softmax: p - y.
	last := sc.acts[nLayers-1]
	delta := sc.deltas[nLayers-1]
	if n.outDim == 1 {
		t := 0.0
		if label == 1 {
			t = 1
		}
		delta[0] = last[0] - t
	} else {
		copy(delta, last)
		if label < len(delta) {
			delta[label] -= 1
		}
	}

	for l := nLayers - 1; l >= 0; l-- {
		in := x
		if l > 0 {
			in = sc.acts[l-1]
		}
		wl, gWl, gBl := n.weights[l], gW[l], gB[l]
		for o := range wl {
			do := delta[o]
			gBl[o] += do
			gRow := gWl[o]
			for i, iv := range in {
				gRow[i] += do * iv
			}
		}
		if l == 0 {
			break
		}
		act := sc.acts[l-1]
		mask := sc.masks[l-1]
		prev := sc.deltas[l-1]
		for i := range prev {
			// act[i] > 0 implies both relu'(z)=1 and mask>0; in every
			// other case the gradient through this unit is zero.
			p := 0.0
			if act[i] > 0 {
				var s float64
				for o := range wl {
					s += wl[o][i] * delta[o]
				}
				p = s * mask[i]
			}
			prev[i] = p
		}
		delta = prev
	}
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

func softmaxInPlace(v []float64) {
	maxV := math.Inf(-1)
	for _, x := range v {
		if x > maxV {
			maxV = x
		}
	}
	var sum float64
	for i := range v {
		v[i] = math.Exp(v[i] - maxV)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

// forwardInto runs inference (no dropout) using sc's activation buffers and
// returns the output layer's buffer.
func (n *NeuralNet) forwardInto(x []float64, sc *nnScratch) []float64 {
	act := x
	nLayers := len(n.weights)
	for l := 0; l < nLayers; l++ {
		out := sc.acts[l]
		wl, bl := n.weights[l], n.biases[l]
		for o := range wl {
			s := bl[o]
			w := wl[o]
			for i, wi := range w {
				s += wi * act[i]
			}
			if l < nLayers-1 && s < 0 {
				s = 0
			}
			out[o] = s
		}
		if l == nLayers-1 {
			if n.outDim == 1 {
				out[0] = sigmoid(out[0])
			} else {
				softmaxInPlace(out)
			}
		}
		act = out
	}
	return act
}

// forward runs inference (no dropout).
func (n *NeuralNet) forward(x []float64) []float64 {
	return n.forwardInto(x, newNNScratch(n.weights))
}

// argmaxProb maps an output activation vector to a class.
func (n *NeuralNet) argmaxProb(p []float64) int {
	if n.outDim == 1 {
		if p[0] >= 0.5 {
			return 1
		}
		return 0
	}
	best, bestV := 0, math.Inf(-1)
	for c, v := range p {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// Predict implements Classifier.
func (n *NeuralNet) Predict(x []float64) int {
	if n.scaler == nil {
		return 0
	}
	return n.argmaxProb(n.forward(n.scaler.Apply(x)))
}

// PredictBatch implements BatchPredictor: it classifies every row of X into
// out (reused when its capacity suffices), standardizing and forwarding
// through one reused set of activation buffers.
func (n *NeuralNet) PredictBatch(X [][]float64, out []int) []int {
	out = resizeInts(out, len(X))
	if n.scaler == nil {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	xs := make([]float64, len(n.scaler.Mean))
	sc := newNNScratch(n.weights)
	for i, x := range X {
		n.scaler.ApplyInto(x, xs)
		out[i] = n.argmaxProb(n.forwardInto(xs, sc))
	}
	return out
}
