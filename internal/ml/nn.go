package ml

import (
	"math"
	"math/rand"
)

// NeuralNet is the paper's DNN model (§6.2): a fully connected network with
// 4 dense layers — ReLU activation in the first three, sigmoid (binary) or
// softmax (multi-class) in the last — with dropout after each hidden layer
// to reduce overfitting. Training uses mini-batch Adam on cross-entropy
// loss. Features are standardized internally.
type NeuralNet struct {
	// Hidden holds the three hidden layer widths (defaults 32/16/8).
	Hidden [3]int
	// Dropout is the drop probability after each hidden layer (default
	// 0.2 when zero; set negative to disable).
	Dropout float64
	// Epochs is the number of training epochs (<=0 means 200).
	Epochs int
	// BatchSize is the mini-batch size (<=0 means 32).
	BatchSize int
	// LearningRate is Adam's step size (<=0 means 1e-3).
	LearningRate float64
	// Seed makes training deterministic.
	Seed int64

	scaler  *Scaler
	weights [][][]float64 // weights[l][out][in]
	biases  [][]float64   // biases[l][out]
	outDim  int           // 1 for binary sigmoid, K for softmax
	classes int
}

// Name implements Classifier.
func (n *NeuralNet) Name() string { return "dnn" }

// Fit implements Classifier.
func (n *NeuralNet) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if n.Hidden == [3]int{} {
		n.Hidden = [3]int{32, 16, 8}
	}
	if n.Dropout == 0 {
		n.Dropout = 0.2
	} else if n.Dropout < 0 {
		n.Dropout = 0
	}
	if n.Epochs <= 0 {
		n.Epochs = 200
	}
	if n.BatchSize <= 0 {
		n.BatchSize = 32
	}
	if n.LearningRate <= 0 {
		n.LearningRate = 1e-3
	}
	n.scaler = FitScaler(d)
	scaled := n.scaler.ApplyAll(d)
	n.classes = d.NumClasses()
	if n.classes <= 2 {
		n.outDim = 1
	} else {
		n.outDim = n.classes
	}
	dims := []int{d.NumFeatures(), n.Hidden[0], n.Hidden[1], n.Hidden[2], n.outDim}
	rng := rand.New(rand.NewSource(n.Seed ^ 0xdeed))

	// He initialization for the ReLU layers, Xavier for the output.
	n.weights = make([][][]float64, len(dims)-1)
	n.biases = make([][]float64, len(dims)-1)
	for l := 0; l < len(dims)-1; l++ {
		in, out := dims[l], dims[l+1]
		scale := math.Sqrt(2 / float64(in))
		if l == len(dims)-2 {
			scale = math.Sqrt(1 / float64(in))
		}
		n.weights[l] = make([][]float64, out)
		n.biases[l] = make([]float64, out)
		for o := 0; o < out; o++ {
			n.weights[l][o] = make([]float64, in)
			for i := 0; i < in; i++ {
				n.weights[l][o][i] = rng.NormFloat64() * scale
			}
		}
	}

	// Adam state.
	mW, vW := zerosLike(n.weights), zerosLike(n.weights)
	mB, vB := zerosLikeB(n.biases), zerosLikeB(n.biases)
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	order := make([]int, scaled.Len())
	for i := range order {
		order[i] = i
	}
	nLayers := len(n.weights)
	for epoch := 0; epoch < n.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for start := 0; start < len(order); start += n.BatchSize {
			end := start + n.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			gW, gB := zerosLike(n.weights), zerosLikeB(n.biases)
			for _, idx := range batch {
				n.backprop(scaled.X[idx], scaled.Y[idx], gW, gB, rng)
			}
			step++
			bs := float64(len(batch))
			lr := n.LearningRate
			bc1 := 1 - math.Pow(beta1, float64(step))
			bc2 := 1 - math.Pow(beta2, float64(step))
			for l := 0; l < nLayers; l++ {
				for o := range n.weights[l] {
					for i := range n.weights[l][o] {
						g := gW[l][o][i] / bs
						mW[l][o][i] = beta1*mW[l][o][i] + (1-beta1)*g
						vW[l][o][i] = beta2*vW[l][o][i] + (1-beta2)*g*g
						n.weights[l][o][i] -= lr * (mW[l][o][i] / bc1) / (math.Sqrt(vW[l][o][i]/bc2) + eps)
					}
					g := gB[l][o] / bs
					mB[l][o] = beta1*mB[l][o] + (1-beta1)*g
					vB[l][o] = beta2*vB[l][o] + (1-beta2)*g*g
					n.biases[l][o] -= lr * (mB[l][o] / bc1) / (math.Sqrt(vB[l][o]/bc2) + eps)
				}
			}
		}
	}
	return nil
}

func zerosLike(w [][][]float64) [][][]float64 {
	out := make([][][]float64, len(w))
	for l := range w {
		out[l] = make([][]float64, len(w[l]))
		for o := range w[l] {
			out[l][o] = make([]float64, len(w[l][o]))
		}
	}
	return out
}

func zerosLikeB(b [][]float64) [][]float64 {
	out := make([][]float64, len(b))
	for l := range b {
		out[l] = make([]float64, len(b[l]))
	}
	return out
}

// backprop accumulates gradients for one sample into gW/gB, applying
// inverted dropout on hidden activations during training.
func (n *NeuralNet) backprop(x []float64, label int, gW [][][]float64, gB [][]float64, rng *rand.Rand) {
	nLayers := len(n.weights)
	acts := make([][]float64, nLayers+1) // post-activation per layer
	masks := make([][]float64, nLayers)  // dropout masks for hidden layers
	acts[0] = x
	for l := 0; l < nLayers; l++ {
		in := acts[l]
		out := make([]float64, len(n.weights[l]))
		for o := range n.weights[l] {
			s := n.biases[l][o]
			w := n.weights[l][o]
			for i := range w {
				s += w[i] * in[i]
			}
			out[o] = s
		}
		if l < nLayers-1 {
			// ReLU + inverted dropout.
			mask := make([]float64, len(out))
			keep := 1 - n.Dropout
			for o := range out {
				if out[o] < 0 {
					out[o] = 0
				}
				m := 1.0
				if n.Dropout > 0 {
					if rng.Float64() < n.Dropout {
						m = 0
					} else {
						m = 1 / keep
					}
				}
				mask[o] = m
				out[o] *= m
			}
			masks[l] = mask
		} else if n.outDim == 1 {
			out[0] = sigmoid(out[0])
		} else {
			softmaxInPlace(out)
		}
		acts[l+1] = out
	}

	// Output delta for cross-entropy with sigmoid/softmax: p - y.
	last := acts[nLayers]
	delta := make([]float64, len(last))
	if n.outDim == 1 {
		t := 0.0
		if label == 1 {
			t = 1
		}
		delta[0] = last[0] - t
	} else {
		copy(delta, last)
		if label < len(delta) {
			delta[label] -= 1
		}
	}

	for l := nLayers - 1; l >= 0; l-- {
		in := acts[l]
		for o := range n.weights[l] {
			gB[l][o] += delta[o]
			w := n.weights[l][o]
			for i := range w {
				gW[l][o][i] += delta[o] * in[i]
			}
		}
		if l == 0 {
			break
		}
		prev := make([]float64, len(acts[l]))
		for i := range prev {
			// acts[l][i] > 0 implies both relu'(z)=1 and mask>0; in every
			// other case the gradient through this unit is zero.
			if acts[l][i] <= 0 {
				continue
			}
			var s float64
			for o := range n.weights[l] {
				s += n.weights[l][o][i] * delta[o]
			}
			prev[i] = s * masks[l-1][i]
		}
		delta = prev
	}
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

func softmaxInPlace(v []float64) {
	maxV := math.Inf(-1)
	for _, x := range v {
		if x > maxV {
			maxV = x
		}
	}
	var sum float64
	for i := range v {
		v[i] = math.Exp(v[i] - maxV)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

// forward runs inference (no dropout).
func (n *NeuralNet) forward(x []float64) []float64 {
	act := x
	nLayers := len(n.weights)
	for l := 0; l < nLayers; l++ {
		out := make([]float64, len(n.weights[l]))
		for o := range n.weights[l] {
			s := n.biases[l][o]
			w := n.weights[l][o]
			for i := range w {
				s += w[i] * act[i]
			}
			if l < nLayers-1 && s < 0 {
				s = 0
			}
			out[o] = s
		}
		if l == nLayers-1 {
			if n.outDim == 1 {
				out[0] = sigmoid(out[0])
			} else {
				softmaxInPlace(out)
			}
		}
		act = out
	}
	return act
}

// Predict implements Classifier.
func (n *NeuralNet) Predict(x []float64) int {
	if n.scaler == nil {
		return 0
	}
	p := n.forward(n.scaler.Apply(x))
	if n.outDim == 1 {
		if p[0] >= 0.5 {
			return 1
		}
		return 0
	}
	best, bestV := 0, math.Inf(-1)
	for c, v := range p {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}
