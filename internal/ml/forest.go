package ml

import (
	"math"
	"math/rand"
	"runtime"
	"sync"

	"github.com/libra-wlan/libra/internal/obs"
)

// RandomForest is a bagged ensemble of decision trees with per-split feature
// subsampling. The paper finds random forests to be the best 2-class model
// (98% accuracy/F1 in 5-fold CV) and uses a 3-class RF (BA/RA/NA) inside
// LiBRA (§6.2, §7).
type RandomForest struct {
	// NumTrees is the ensemble size (<=0 means 100).
	NumTrees int
	// MaxDepth bounds individual tree depth (<=0 means 8).
	MaxDepth int
	// MinLeaf is the per-leaf minimum (<=0 means 2).
	MinLeaf int
	// Criterion is the impurity measure (Gini by default).
	Criterion Criterion
	// MaxFeatures limits features per split (<=0 means sqrt(#features)).
	MaxFeatures int
	// Seed makes training deterministic.
	Seed int64
	// Workers bounds the goroutines fitting trees (<=0 means GOMAXPROCS).
	// The fitted model is byte-identical for any worker count.
	Workers int

	trees      []*DecisionTree
	importance []float64
	numClasses int
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "random-forest" }

// Fit implements Classifier. Every tree's bootstrap sample and RNG seed are
// drawn up front from the single seeded stream, then the trees fit on a
// bounded worker pool and aggregate (trees and Gini importances) in tree
// order — so the fitted forest does not depend on Workers, and matches a
// fully sequential fit bit for bit. Fit does not modify the exported
// configuration fields.
func (f *RandomForest) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	numTrees := f.NumTrees
	if numTrees <= 0 {
		numTrees = 100
	}
	maxFeat := f.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = int(math.Ceil(math.Sqrt(float64(d.NumFeatures()))))
	}
	rng := rand.New(rand.NewSource(f.Seed ^ 0x5eed))
	f.numClasses = d.NumClasses()

	n := d.Len()
	boots := make([][]int, numTrees)
	seeds := make([]int64, numTrees)
	for t := 0; t < numTrees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		boots[t] = idx
		seeds[t] = rng.Int63()
	}

	trees := make([]*DecisionTree, numTrees)
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numTrees {
		workers = numTrees
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				tree := &DecisionTree{
					MaxDepth:    f.MaxDepth,
					MinLeaf:     f.MinLeaf,
					Criterion:   f.Criterion,
					MaxFeatures: maxFeat,
					Rng:         rand.New(rand.NewSource(seeds[t])),
				}
				obsFitWorkers.Inc()
				sw := obs.StartTimer()
				// The bootstrap fits through the indexed path: no subset
				// materialization, and when d carries a column mirror the
				// presort reads contiguous columns. Bit-identical to
				// tree.Fit(d.Subset(boots[t])); d was validated above.
				tree.fitIndexed(d, boots[t])
				sw.Observe(obsTreeFitSeconds)
				obsTreeFits.Inc()
				obsFitWorkers.Dec()
				trees[t] = tree
			}
		}()
	}
	for t := 0; t < numTrees; t++ {
		jobs <- t
	}
	close(jobs)
	wg.Wait()

	f.trees = trees
	f.importance = make([]float64, d.NumFeatures())
	for _, tree := range trees {
		for i, v := range tree.importance {
			f.importance[i] += v
		}
	}
	return nil
}

// voteClasses returns the vote-buffer width: every class a tree can emit.
func (f *RandomForest) voteClasses() int {
	nc := f.numClasses
	for _, t := range f.trees {
		if t.flat.maxClass+1 > nc {
			nc = t.flat.maxClass + 1
		}
	}
	if nc < 1 {
		nc = 1
	}
	return nc
}

// Predict implements Classifier via majority vote. The walk over compiled
// trees and the stack-resident vote buffer make a call allocation-free.
func (f *RandomForest) Predict(x []float64) int {
	if len(f.trees) == 0 {
		return 0
	}
	var vbuf [16]int
	votes := vbuf[:0]
	if f.numClasses > len(vbuf) {
		votes = make([]int, f.numClasses)
	} else {
		votes = vbuf[:f.numClasses]
	}
	for _, t := range f.trees {
		c := t.Predict(x)
		if c >= len(votes) {
			if c < len(vbuf) {
				votes = vbuf[:c+1]
			} else {
				grown := make([]int, c+1)
				copy(grown, votes)
				votes = grown
			}
		}
		votes[c]++
	}
	return argmaxCount(votes)
}

// voteScratch holds the reusable vote buffer for the float64 batch path;
// pooled so concurrent batch callers don't contend on one buffer.
type voteScratch struct {
	votes []int32
}

var voteScratchPool = sync.Pool{New: func() any { return new(voteScratch) }}

// grow resizes the scratch to n zeroed int32s.
func (s *voteScratch) grow(n int) []int32 {
	if cap(s.votes) < n {
		s.votes = make([]int32, n)
	}
	votes := s.votes[:n]
	for i := range votes {
		votes[i] = 0
	}
	return votes
}

// PredictBatch implements BatchPredictor: it classifies every row of X into
// out (reused when its capacity suffices) with no per-sample allocation. The
// walk iterates trees in the outer loop so each compiled tree stays
// cache-resident across the whole batch.
//
//lint:noalloc steady-state decide kernel; votes come from the shared scratch pool
func (f *RandomForest) PredictBatch(X [][]float64, out []int) []int {
	out = resizeInts(out, len(X))
	if len(f.trees) == 0 || len(X) == 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	nc := f.voteClasses()
	s := voteScratchPool.Get().(*voteScratch)
	defer voteScratchPool.Put(s)
	votes := s.grow(len(X) * nc)
	for _, t := range f.trees {
		nodes := t.flat.nodes
		if len(nodes) == 0 {
			for s, x := range X {
				votes[s*nc+t.Predict(x)]++
			}
			continue
		}
		for s, x := range X {
			i := int32(0)
			for {
				nd := &nodes[i]
				if nd.feature < 0 {
					votes[s*nc+int(nd.class)]++
					break
				}
				if x[nd.feature] <= nd.threshold {
					i = nd.left
				} else {
					i = nd.right
				}
			}
		}
	}
	for s := range X {
		row := votes[s*nc : (s+1)*nc]
		best, bestN := 0, int32(-1)
		for c, n := range row {
			if n > bestN {
				best, bestN = c, n
			}
		}
		out[s] = best
	}
	return out
}

// NumClasses returns the number of classes the forest was fitted (or loaded)
// with.
func (f *RandomForest) NumClasses() int { return f.numClasses }

// Proba returns the vote distribution over classes for x.
func (f *RandomForest) Proba(x []float64) []float64 {
	p := make([]float64, f.numClasses)
	if len(f.trees) == 0 {
		return p
	}
	for _, t := range f.trees {
		c := t.Predict(x)
		if c < len(p) {
			p[c]++
		}
	}
	for i := range p {
		p[i] /= float64(len(f.trees))
	}
	return p
}

// PredictProbaBatch returns the per-class vote distribution for every row of
// X as a row-major len(X)*NumClasses() slice (reusing out when its capacity
// suffices), with no per-sample allocation. Row s of the result equals
// Proba(X[s]).
func (f *RandomForest) PredictProbaBatch(X [][]float64, out []float64) []float64 {
	nc := f.numClasses
	want := len(X) * nc
	if cap(out) < want {
		out = make([]float64, want)
	} else {
		out = out[:want]
		for i := range out {
			out[i] = 0
		}
	}
	if len(f.trees) == 0 || want == 0 {
		return out
	}
	for _, t := range f.trees {
		for s, x := range X {
			c := t.Predict(x)
			if c < nc {
				out[s*nc+c]++
			}
		}
	}
	nt := float64(len(f.trees))
	for i := range out {
		out[i] /= nt
	}
	return out
}

// GiniImportance returns the normalized mean decrease in impurity per
// feature (summing to 1), the metric of Table 3.
func (f *RandomForest) GiniImportance() []float64 {
	out := make([]float64, len(f.importance))
	var total float64
	for _, v := range f.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range f.importance {
		out[i] = v / total
	}
	return out
}
