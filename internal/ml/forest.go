package ml

import (
	"math"
	"math/rand"
)

// RandomForest is a bagged ensemble of decision trees with per-split feature
// subsampling. The paper finds random forests to be the best 2-class model
// (98% accuracy/F1 in 5-fold CV) and uses a 3-class RF (BA/RA/NA) inside
// LiBRA (§6.2, §7).
type RandomForest struct {
	// NumTrees is the ensemble size (<=0 means 100).
	NumTrees int
	// MaxDepth bounds individual tree depth (<=0 means 8).
	MaxDepth int
	// MinLeaf is the per-leaf minimum (<=0 means 2).
	MinLeaf int
	// Criterion is the impurity measure (Gini by default).
	Criterion Criterion
	// MaxFeatures limits features per split (<=0 means sqrt(#features)).
	MaxFeatures int
	// Seed makes training deterministic.
	Seed int64

	trees      []*DecisionTree
	importance []float64
	numClasses int
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "random-forest" }

// Fit implements Classifier.
func (f *RandomForest) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if f.NumTrees <= 0 {
		f.NumTrees = 100
	}
	maxFeat := f.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = int(math.Ceil(math.Sqrt(float64(d.NumFeatures()))))
	}
	rng := rand.New(rand.NewSource(f.Seed ^ 0x5eed))
	f.numClasses = d.NumClasses()
	f.trees = make([]*DecisionTree, 0, f.NumTrees)
	f.importance = make([]float64, d.NumFeatures())

	n := d.Len()
	for t := 0; t < f.NumTrees; t++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		boot := d.Subset(idx)
		tree := &DecisionTree{
			MaxDepth:    f.MaxDepth,
			MinLeaf:     f.MinLeaf,
			Criterion:   f.Criterion,
			MaxFeatures: maxFeat,
			Rng:         rand.New(rand.NewSource(rng.Int63())),
		}
		if err := tree.Fit(boot); err != nil {
			return err
		}
		f.trees = append(f.trees, tree)
		for i, v := range tree.Importance() {
			f.importance[i] += v
		}
	}
	return nil
}

// Predict implements Classifier via majority vote.
func (f *RandomForest) Predict(x []float64) int {
	if len(f.trees) == 0 {
		return 0
	}
	votes := make([]int, f.numClasses)
	for _, t := range f.trees {
		c := t.Predict(x)
		if c >= len(votes) {
			grown := make([]int, c+1)
			copy(grown, votes)
			votes = grown
		}
		votes[c]++
	}
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// Proba returns the vote distribution over classes for x.
func (f *RandomForest) Proba(x []float64) []float64 {
	p := make([]float64, f.numClasses)
	if len(f.trees) == 0 {
		return p
	}
	for _, t := range f.trees {
		c := t.Predict(x)
		if c < len(p) {
			p[c]++
		}
	}
	for i := range p {
		p[i] /= float64(len(f.trees))
	}
	return p
}

// GiniImportance returns the normalized mean decrease in impurity per
// feature (summing to 1), the metric of Table 3.
func (f *RandomForest) GiniImportance() []float64 {
	out := make([]float64, len(f.importance))
	var total float64
	for _, v := range f.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range f.importance {
		out[i] = v / total
	}
	return out
}
