package ml

import "github.com/libra-wlan/libra/internal/obs"

// Training-side metrics: per-tree fit wall time and worker-pool occupancy of
// RandomForest.Fit. Wall-clock readings go through obs.Stopwatch — engine
// code never touches the clock directly (the determinism lint enforces this),
// and the timings only feed diagnostics, never model output.
var (
	obsTreeFits = obs.NewCounter("libra_ml_tree_fits_total",
		"decision trees fitted across all forest fits")
	obsTreeFitSeconds = obs.NewHistogram("libra_ml_tree_fit_seconds",
		"per-tree fit wall time", obs.DurationBuckets)
	obsFitWorkers = obs.NewGauge("libra_ml_fit_workers_active",
		"tree-fit worker-pool occupancy (max tracks peak)")
)
