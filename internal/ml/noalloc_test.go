package ml

import (
	"testing"

	"github.com/libra-wlan/libra/internal/testutil"
)

// The runtime half of the //lint:noalloc contract: libra-lint proves the
// annotated kernels allocation-free statically, and these gates cross-check
// the claim against the allocator. A steady-state call (after the warm-up
// run AllocsPerRun performs, which populates the scratch pools and grows the
// cap-guarded buffers) must cost exactly zero allocations.

func noallocForest(t *testing.T) (*RandomForest, *QuantForest, [][]float64) {
	t.Helper()
	rf := &RandomForest{NumTrees: 30, MaxDepth: 8, Seed: 7}
	if err := rf.Fit(quantTestData(400, 7, 5)); err != nil {
		t.Fatal(err)
	}
	q, err := rf.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	test := quantTestData(64, 7, 9)
	X := make([][]float64, test.Len())
	for i := range X {
		X[i] = test.X[i]
	}
	return rf, q, X
}

func TestPredictBatchNoalloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	rf, q, X := noallocForest(t)
	out := make([]int, len(X))

	if avg := testing.AllocsPerRun(50, func() { rf.PredictBatch(X, out) }); avg != 0 {
		t.Errorf("RandomForest.PredictBatch allocates %v per run, want 0 (//lint:noalloc)", avg)
	}
	if avg := testing.AllocsPerRun(50, func() { q.PredictBatch(X, out) }); avg != 0 {
		t.Errorf("QuantForest.PredictBatch allocates %v per run, want 0 (//lint:noalloc)", avg)
	}
}

func TestClassifyKeys32Noalloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	_, q, X := noallocForest(t)
	stride := len(X[0])
	keys := make([]uint32, len(X)*stride)
	row := make([]float32, stride)
	for i, x := range X {
		for j, v := range x {
			row[j] = float32(v)
		}
		ConvertRow32(row, keys[i*stride:(i+1)*stride])
	}
	out := make([]int, len(X))
	scratch := &qScratch{}

	if avg := testing.AllocsPerRun(50, func() {
		q.ClassifyKeys32(keys, stride, len(X), out, scratch)
	}); avg != 0 {
		t.Errorf("ClassifyKeys32 allocates %v per run, want 0 (//lint:noalloc)", avg)
	}
}
