// Package ml is a from-scratch, dependency-free implementation of the
// machine-learning toolbox the paper uses for link adaptation (§6.2):
// decision trees (Gini and entropy impurity, bounded depth), random forests
// with Gini feature importance, support vector machines (linear and RBF
// kernel), and a small dense neural network (4 layers, ReLU + sigmoid,
// dropout), together with stratified k-fold cross-validation and the
// accuracy / weighted-F1 metrics the paper reports.
package ml

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// Dataset is a feature matrix with integer class labels.
type Dataset struct {
	// X is the feature matrix, one row per sample.
	X [][]float64
	// Y holds the class label of each row, in [0, NumClasses).
	Y []int
	// FeatureNames optionally names the columns.
	FeatureNames []string
	// ClassNames optionally names the labels.
	ClassNames []string

	// cols is an optional column-major mirror of X: cols[f][i] == X[i][f].
	// Builders that already lay samples out column-major (the columnar
	// campaign store) attach it via SetColumns so tree fits presort features
	// from contiguous memory instead of transposing rows; it never affects
	// fitted values, only memory traffic. Mutating X or Y invalidates it.
	cols [][]float64
}

// SetColumns attaches a column-major mirror of X. The caller guarantees
// cols[f][i] == X[i][f] for every row i and feature f; Append drops the
// mirror, and Subset results never carry one.
func (d *Dataset) SetColumns(cols [][]float64) { d.cols = cols }

// Columns returns the attached column-major mirror, or nil.
func (d *Dataset) Columns() [][]float64 { return d.cols }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// NumFeatures returns the feature dimensionality (0 for an empty dataset).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// NumClasses returns 1 + the maximum label value.
func (d *Dataset) NumClasses() int {
	n := 0
	for _, y := range d.Y {
		if y+1 > n {
			n = y + 1
		}
	}
	return n
}

// Validate checks structural consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return errors.New("ml: empty dataset")
	}
	nf := len(d.X[0])
	for i, row := range d.X {
		if len(row) != nf {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), nf)
		}
	}
	for i, y := range d.Y {
		if y < 0 {
			return fmt.Errorf("ml: row %d has negative label %d", i, y)
		}
	}
	return nil
}

// Subset returns a new Dataset containing the rows at the given indices.
// Rows are shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{
		X:            make([][]float64, 0, len(idx)),
		Y:            make([]int, 0, len(idx)),
		FeatureNames: d.FeatureNames,
		ClassNames:   d.ClassNames,
	}
	for _, i := range idx {
		s.X = append(s.X, d.X[i])
		s.Y = append(s.Y, d.Y[i])
	}
	return s
}

// Append adds one sample. Any attached column mirror is dropped: it no
// longer covers the new row.
func (d *Dataset) Append(x []float64, y int) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
	d.cols = nil
}

// Classifier is a trainable multi-class classifier.
type Classifier interface {
	// Name identifies the model family ("random-forest", ...).
	Name() string
	// Fit trains on the dataset.
	Fit(d *Dataset) error
	// Predict returns the predicted class for a feature vector.
	Predict(x []float64) int
}

// BatchPredictor is implemented by classifiers with an allocation-free batch
// prediction path. PredictBatch fills out (reused when its capacity
// suffices) with the predicted class of every row of X and returns it; the
// result equals calling Predict per row.
type BatchPredictor interface {
	PredictBatch(X [][]float64, out []int) []int
}

// resizeInts returns out resized to n, reusing its backing array when large
// enough.
func resizeInts(out []int, n int) []int {
	if cap(out) < n {
		return make([]int, n)
	}
	return out[:n]
}

// PredictAll applies a fitted classifier to every row of d, using the batch
// path when the classifier provides one.
func PredictAll(c Classifier, d *Dataset) []int {
	if bp, ok := c.(BatchPredictor); ok {
		return bp.PredictBatch(d.X, nil)
	}
	out := make([]int, d.Len())
	for i, row := range d.X {
		out[i] = c.Predict(row)
	}
	return out
}

// StratifiedKFold partitions sample indices into k folds that preserve class
// proportions (the validation protocol of §6.2). It returns, per fold, the
// test-set indices; the train set of fold i is every other fold.
func StratifiedKFold(y []int, k int, rng *rand.Rand) [][]int {
	if k < 2 {
		k = 2
	}
	byClass := map[int][]int{}
	for i, label := range y {
		byClass[label] = append(byClass[label], i)
	}
	folds := make([][]int, k)
	// Deterministic class order, shuffled members.
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for j, i := range idx {
			folds[j%k] = append(folds[j%k], i)
		}
	}
	return folds
}

// CVResult summarizes a cross-validation run.
type CVResult struct {
	// Accuracy is the mean accuracy over folds.
	Accuracy float64
	// WeightedF1 is the mean weighted F1 score over folds.
	WeightedF1 float64
	// Folds is the number of folds evaluated.
	Folds int
}

// CrossValidate runs stratified k-fold cross-validation of the classifier
// factory over the dataset. factory must return a fresh, unfitted model on
// each call, and must be safe to call concurrently: the folds are
// independent once split, so they train and evaluate in parallel on a
// GOMAXPROCS-bounded pool. The splits come from rng before the fan-out and
// per-fold scores aggregate in fold order, so the result is identical to a
// sequential run.
func CrossValidate(factory func() Classifier, d *Dataset, k int, rng *rand.Rand) (CVResult, error) {
	return CrossValidateContext(context.Background(), factory, d, k, rng)
}

// CrossValidateContext is CrossValidate with cooperative cancellation at
// fold boundaries: a canceled ctx stops new folds from launching, waits for
// in-flight folds, and returns ctx's error. The splits are still drawn from
// rng up front, so a run that completes is identical to CrossValidate's for
// the same rng state.
func CrossValidateContext(ctx context.Context, factory func() Classifier, d *Dataset, k int, rng *rand.Rand) (CVResult, error) {
	folds := StratifiedKFold(d.Y, k, rng)
	type foldScore struct {
		acc, f1 float64
		err     error
	}
	scores := make([]foldScore, len(folds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for fi := range folds {
		if err := ctx.Err(); err != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(fi int) {
			defer wg.Done()
			defer func() { <-sem }()
			var trainIdx []int
			for fj := range folds {
				if fj != fi {
					trainIdx = append(trainIdx, folds[fj]...)
				}
			}
			train := d.Subset(trainIdx)
			test := d.Subset(folds[fi])
			c := factory()
			if err := c.Fit(train); err != nil {
				scores[fi] = foldScore{err: fmt.Errorf("ml: fold %d: %w", fi, err)}
				return
			}
			pred := PredictAll(c, test)
			scores[fi] = foldScore{acc: Accuracy(test.Y, pred), f1: WeightedF1(test.Y, pred)}
		}(fi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return CVResult{}, err
	}
	var res CVResult
	for _, sc := range scores {
		if sc.err != nil {
			return CVResult{}, sc.err
		}
		res.Accuracy += sc.acc
		res.WeightedF1 += sc.f1
		res.Folds++
	}
	if res.Folds > 0 {
		res.Accuracy /= float64(res.Folds)
		res.WeightedF1 /= float64(res.Folds)
	}
	return res, nil
}

// RepeatedCV repeats stratified k-fold cross-validation `reps` times with
// fresh random splits (the paper repeats 500 times) and returns the mean of
// the per-repetition results.
func RepeatedCV(factory func() Classifier, d *Dataset, k, reps int, rng *rand.Rand) (CVResult, error) {
	return RepeatedCVContext(context.Background(), factory, d, k, reps, rng)
}

// RepeatedCVContext is RepeatedCV with cooperative cancellation between
// repetitions and at fold boundaries within each repetition.
func RepeatedCVContext(ctx context.Context, factory func() Classifier, d *Dataset, k, reps int, rng *rand.Rand) (CVResult, error) {
	var agg CVResult
	for r := 0; r < reps; r++ {
		res, err := CrossValidateContext(ctx, factory, d, k, rng)
		if err != nil {
			return CVResult{}, err
		}
		agg.Accuracy += res.Accuracy
		agg.WeightedF1 += res.WeightedF1
		agg.Folds += res.Folds
	}
	if reps > 0 {
		agg.Accuracy /= float64(reps)
		agg.WeightedF1 /= float64(reps)
	}
	return agg, nil
}
