package ml

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Model persistence. LiBRA's deployment story (§7) is offline training by
// the vendor followed by shipping the fitted model in firmware; this file
// provides the serialization for that hand-off: a fitted random forest
// round-trips through a versioned JSON container.

// forestFormatVersion guards the serialization schema.
const forestFormatVersion = 1

// nodeJSON flattens a tree into an array of nodes; children reference
// indices (-1 for none).
type nodeJSON struct {
	Leaf      bool    `json:"leaf"`
	Class     int     `json:"class,omitempty"`
	Feature   int     `json:"feature,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Left      int     `json:"left"`
	Right     int     `json:"right"`
}

// treeJSON is one serialized tree.
type treeJSON struct {
	Nodes []nodeJSON `json:"nodes"`
}

// forestJSON is the on-disk container.
type forestJSON struct {
	Version    int        `json:"version"`
	NumClasses int        `json:"num_classes"`
	Importance []float64  `json:"importance"`
	Trees      []treeJSON `json:"trees"`
}

// flatten serializes a tree into nodes (preorder).
func flatten(n *treeNode, out *[]nodeJSON) int {
	idx := len(*out)
	*out = append(*out, nodeJSON{Left: -1, Right: -1})
	if n.isLeaf {
		(*out)[idx].Leaf = true
		(*out)[idx].Class = n.class
		return idx
	}
	(*out)[idx].Feature = n.feature
	(*out)[idx].Threshold = n.threshold
	l := flatten(n.left, out)
	r := flatten(n.right, out)
	(*out)[idx].Left = l
	(*out)[idx].Right = r
	return idx
}

// unflatten rebuilds a tree from nodes.
func unflatten(nodes []nodeJSON, idx int) (*treeNode, error) {
	if idx < 0 || idx >= len(nodes) {
		return nil, fmt.Errorf("ml: node index %d out of range", idx)
	}
	n := nodes[idx]
	if n.Leaf {
		return &treeNode{isLeaf: true, class: n.Class}, nil
	}
	if n.Left == idx || n.Right == idx {
		return nil, fmt.Errorf("ml: node %d references itself", idx)
	}
	left, err := unflatten(nodes, n.Left)
	if err != nil {
		return nil, err
	}
	right, err := unflatten(nodes, n.Right)
	if err != nil {
		return nil, err
	}
	return &treeNode{feature: n.Feature, threshold: n.Threshold, left: left, right: right}, nil
}

// WriteJSON serializes a fitted forest.
func (f *RandomForest) WriteJSON(w io.Writer) error {
	if len(f.trees) == 0 {
		return ErrNotFitted
	}
	fj := forestJSON{
		Version:    forestFormatVersion,
		NumClasses: f.numClasses,
		Importance: f.importance,
	}
	for _, t := range f.trees {
		var nodes []nodeJSON
		flatten(t.root, &nodes)
		fj.Trees = append(fj.Trees, treeJSON{Nodes: nodes})
	}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(fj); err != nil {
		return fmt.Errorf("ml: encoding forest: %w", err)
	}
	return bw.Flush()
}

// ReadForestJSON deserializes a forest written by WriteJSON. The result
// predicts identically to the original; it cannot be re-fitted with the
// original hyperparameters (they are not stored).
func ReadForestJSON(r io.Reader) (*RandomForest, error) {
	var fj forestJSON
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&fj); err != nil {
		return nil, fmt.Errorf("ml: decoding forest: %w", err)
	}
	if fj.Version != forestFormatVersion {
		return nil, fmt.Errorf("ml: unsupported forest version %d", fj.Version)
	}
	if fj.NumClasses < 2 {
		return nil, fmt.Errorf("ml: forest with %d classes", fj.NumClasses)
	}
	f := &RandomForest{numClasses: fj.NumClasses, importance: fj.Importance}
	for i, tj := range fj.Trees {
		if len(tj.Nodes) == 0 {
			return nil, fmt.Errorf("ml: tree %d is empty", i)
		}
		root, err := unflatten(tj.Nodes, 0)
		if err != nil {
			return nil, fmt.Errorf("ml: tree %d: %w", i, err)
		}
		// Compile for inference so a loaded forest predicts as fast as a
		// freshly fitted one.
		f.trees = append(f.trees, &DecisionTree{root: root, flat: compileTree(root)})
	}
	if len(f.trees) == 0 {
		return nil, fmt.Errorf("ml: forest has no trees")
	}
	return f, nil
}
