package ml

import "math"

// Scaler standardizes features to zero mean and unit variance. SVM and
// neural-network training require comparable feature scales; trees do not.
type Scaler struct {
	Mean, Std []float64
}

// FitScaler computes per-feature means and standard deviations.
func FitScaler(d *Dataset) *Scaler {
	nf := d.NumFeatures()
	s := &Scaler{Mean: make([]float64, nf), Std: make([]float64, nf)}
	n := float64(d.Len())
	if n == 0 {
		return s
	}
	for _, row := range d.X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range d.X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply returns the standardized copy of x.
func (s *Scaler) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	s.ApplyInto(x, out)
	return out
}

// ApplyInto standardizes x into dst (which must have len(x) elements),
// allowing batch callers to reuse one scratch vector.
func (s *Scaler) ApplyInto(x, dst []float64) {
	for j, v := range x {
		dst[j] = (v - s.Mean[j]) / s.Std[j]
	}
}

// ApplyAll returns a standardized copy of the dataset (labels shared).
func (s *Scaler) ApplyAll(d *Dataset) *Dataset {
	out := &Dataset{
		X:            make([][]float64, d.Len()),
		Y:            d.Y,
		FeatureNames: d.FeatureNames,
		ClassNames:   d.ClassNames,
	}
	for i, row := range d.X {
		out.X[i] = s.Apply(row)
	}
	return out
}
