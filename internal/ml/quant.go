package ml

import (
	"fmt"
	"math"
	"sync"
)

// Quantized flat forests. The float64 flat arrays (flat.go) make one tree
// cache-resident; at fleet scale the whole *ensemble* must stream through a
// small cache per batch, so the serving representation is quantized and
// packed further:
//
//   - one contiguous 16-byte node array for the entire forest (float32
//     threshold, int16 feature, int16 leaf class, two int32 children —
//     4 nodes per cache line, ~2.6x denser than the float64 layout);
//   - leaves are absorbing (threshold +Inf, children pointing at
//     themselves), so a group of samples can walk a tree in lockstep with
//     no per-sample branch divergence;
//   - subtrees whose every leaf agrees on a class collapse to a single
//     leaf at compile time — the tree's class function (and so every vote)
//     is unchanged, the average walk just gets shorter;
//   - the batch kernel walks 8 samples per tree in lockstep over a
//     transposed per-group key block (converted once per batch, reused
//     across all trees), overlapping the dependent node loads that
//     serialize a one-sample-at-a-time walk; features and thresholds are
//     encoded as order-preserving uint32 sort keys so the split compare is
//     branch-free integer mask arithmetic — no float-compare mispredicts;
//   - the class-only path retires samples early once the leading class has
//     more votes than the remaining trees could overturn — provably the
//     same argmax, fewer tree walks.
//
// Thresholds quantize to the largest float32 not exceeding the float64
// split value, so for float32 inputs x the predicate x <= t32 is exactly
// equivalent to float64(x) <= t64: the quantized forest classifies float32
// feature vectors bit-identically to the float64 flat arrays. Serving
// verifies this on the fixed-seed campaign replay (loadgen's parity check
// and libra-train -verify-quant).

// qNode is one node of a quantized forest. The float32 threshold is stored
// as its monotonic uint32 sort key (sortKey32), so the walk compares
// integers and selects the child with mask arithmetic — no float compare,
// no branch, no mispredict. Leaves carry class >= 0 and absorb: both
// children point at the node itself, so a walker that reaches a leaf stays
// there for any further lockstep steps.
type qNode struct {
	key     uint32 // sortKey32 of the quantized float32 threshold
	feature int16
	class   int16 // leaf class, or -1 for split nodes
	left    int32
	right   int32
}

// QuantForest is a quantized, inference-only compilation of a fitted
// RandomForest. It is immutable and safe for concurrent use.
type QuantForest struct {
	nodes []qNode
	roots []int32
	// numClasses is the label-space width (Proba rows).
	numClasses int
	// vote is the vote-buffer width: max(numClasses, largest leaf class+1),
	// mirroring RandomForest.voteClasses so argmax tie-breaks agree.
	vote int
}

// quantThreshold returns the largest float32 whose float64 widening does
// not exceed t, making (x32 <= q) exactly equivalent to (float64(x32) <= t)
// for every float32 x32.
func quantThreshold(t float64) float32 {
	f := float32(t)
	if float64(f) > t {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}

// sortKey32 maps float32 to uint32 preserving numeric order: unsigned key
// comparison is exactly float comparison. -0 is canonicalized to +0 before
// mapping so x <= t keeps its IEEE "equal zeros" semantics.
func sortKey32(f float32) uint32 {
	if f != f {
		// NaN: above every threshold key, so comparisons send NaN features
		// right — the same child an IEEE x <= t (false for NaN) selects.
		return math.MaxUint32
	}
	if f == 0 {
		f = 0
	}
	b := math.Float32bits(f)
	if b>>31 != 0 {
		return ^b
	}
	return b | 0x80000000
}

// Quantize compiles the fitted forest into its quantized serving form.
// Trees whose pointer root is missing (a state only reachable through
// hand-built models) compile to a single class-0 leaf, matching the
// pointer walk's nil-root answer.
func (f *RandomForest) Quantize() (*QuantForest, error) {
	if len(f.trees) == 0 {
		return nil, ErrNotFitted
	}
	q := &QuantForest{
		roots:      make([]int32, 0, len(f.trees)),
		numClasses: f.numClasses,
		vote:       f.voteClasses(),
	}
	total := 0
	for _, t := range f.trees {
		if n := countNodes(t.root); n > 0 {
			total += n
		} else {
			total++
		}
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("ml: forest too large to quantize (%d nodes)", total)
	}
	q.nodes = make([]qNode, 0, total)
	for _, t := range f.trees {
		q.roots = append(q.roots, int32(len(q.nodes)))
		if t.root == nil {
			q.addLeaf(0)
			continue
		}
		q.add(t.root)
	}
	return q, nil
}

// addLeaf appends an absorbing leaf and returns its index.
func (q *QuantForest) addLeaf(class int) int32 {
	idx := int32(len(q.nodes))
	q.nodes = append(q.nodes, qNode{
		key:     math.MaxUint32,
		feature: 0,
		class:   int16(class),
		left:    idx,
		right:   idx,
	})
	return idx
}

// uniformClass returns the one class every leaf below n carries, or -1
// when the subtree can still go either way.
func uniformClass(n *treeNode) int {
	if n.isLeaf {
		return n.class
	}
	c := uniformClass(n.left)
	if c < 0 || uniformClass(n.right) != c {
		return -1
	}
	return c
}

// add appends n's subtree in preorder and returns its index. Subtrees whose
// every leaf agrees on a class collapse to a single absorbing leaf: the
// tree's class function is unchanged (whatever path the walk would have
// taken below ends in that class), so votes — and therefore predictions —
// stay bit-identical while the average walk gets shorter.
func (q *QuantForest) add(n *treeNode) int32 {
	if n.isLeaf {
		return q.addLeaf(n.class)
	}
	if c := uniformClass(n); c >= 0 {
		return q.addLeaf(c)
	}
	idx := int32(len(q.nodes))
	q.nodes = append(q.nodes, qNode{
		key:     sortKey32(quantThreshold(n.threshold)),
		feature: int16(n.feature),
		class:   -1,
	})
	l := q.add(n.left)
	r := q.add(n.right)
	q.nodes[idx].left = l
	q.nodes[idx].right = r
	return idx
}

// Name implements the serving Predictor contract.
func (q *QuantForest) Name() string { return "random-forest-q32" }

// NumClasses returns the label-space width.
func (q *QuantForest) NumClasses() int { return q.numClasses }

// NumTrees returns the ensemble size.
func (q *QuantForest) NumTrees() int { return len(q.roots) }

// NumNodes returns the total node count across all trees.
func (q *QuantForest) NumNodes() int { return len(q.nodes) }

// predictTree walks one tree for one key-encoded row.
func (q *QuantForest) predictTree(root int32, x []uint32) int {
	nodes := q.nodes
	i := root
	for {
		n := &nodes[i]
		if n.class >= 0 {
			return int(n.class)
		}
		m := int32((int64(n.key) - int64(x[n.feature])) >> 63)
		i = n.left ^ ((n.left ^ n.right) & m)
	}
}

// qScratch holds reusable conversion and vote buffers for the float64
// entry points.
type qScratch struct {
	k     []uint32
	votes []int32
	idx   []int32
}

var qScratchPool = sync.Pool{New: func() any { return new(qScratch) }}

// convert packs X into s.k row-major with the given stride, narrowing each
// value to float32 and encoding it as its comparison sort key — the shared
// feature matrix every tree walks.
func (s *qScratch) convert(X [][]float64, stride int) []uint32 {
	need := len(X) * stride
	if cap(s.k) < need {
		s.k = make([]uint32, need)
	}
	s.k = s.k[:need]
	for i, row := range X {
		dst := s.k[i*stride : i*stride+stride]
		for j, v := range row {
			dst[j] = sortKey32(float32(v))
		}
	}
	return s.k
}

// ConvertRow32 encodes one float32 feature vector into dst as comparison
// sort keys (the representation ClassifyKeys32 walks). dst must be
// len(x) long.
func ConvertRow32(x []float32, dst []uint32) {
	for j, v := range x {
		dst[j] = sortKey32(v)
	}
}

// Predict classifies one float64 row (features are narrowed to float32, as
// on the binary wire).
func (q *QuantForest) Predict(x []float64) int {
	var buf [16]uint32
	xs := buf[:0]
	if len(x) <= len(buf) {
		xs = buf[:len(x)]
	} else {
		xs = make([]uint32, len(x))
	}
	for i, v := range x {
		xs[i] = sortKey32(float32(v))
	}
	var vbuf [16]int32
	votes := vbuf[:0]
	if q.vote <= len(vbuf) {
		votes = vbuf[:q.vote]
		for i := range votes {
			votes[i] = 0
		}
	} else {
		votes = make([]int32, q.vote)
	}
	for _, root := range q.roots {
		votes[q.predictTree(root, xs)]++
	}
	best, bestN := 0, int32(-1)
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// Proba returns the per-class vote distribution for one row (numClasses
// wide; leaf classes beyond it are dropped, matching RandomForest.Proba).
func (q *QuantForest) Proba(x []float64) []float64 {
	out := make([]float64, q.numClasses)
	s := qScratchPool.Get().(*qScratch)
	defer qScratchPool.Put(s)
	stride := len(x)
	if stride == 0 {
		return out
	}
	xs := s.convert([][]float64{x}, stride)
	for _, root := range q.roots {
		c := q.predictTree(root, xs[:stride])
		if c < q.numClasses {
			out[c]++
		}
	}
	nt := float64(len(q.roots))
	for i := range out {
		out[i] /= nt
	}
	return out
}

// PredictBatch classifies every row of X into out with the early-exit
// class kernel; answers match RandomForest.PredictBatch bit for bit on
// float32-representable inputs.
//
//lint:noalloc serving batch entry; conversion and vote buffers come from the scratch pool
func (q *QuantForest) PredictBatch(X [][]float64, out []int) []int {
	out = resizeInts(out, len(X))
	if len(X) == 0 {
		return out
	}
	s := qScratchPool.Get().(*qScratch)
	defer qScratchPool.Put(s)
	stride := len(X[0])
	xs := s.convert(X, stride)
	q.ClassifyKeys32(xs, stride, len(X), out, s)
	return out
}

// PredictProbaBatch returns per-class vote distributions for every row of X
// as a row-major len(X)*NumClasses() slice. Votes are exact (no early
// exit): row s equals Proba(X[s]).
func (q *QuantForest) PredictProbaBatch(X [][]float64, out []float64) []float64 {
	nc := q.numClasses
	want := len(X) * nc
	if cap(out) < want {
		out = make([]float64, want)
	} else {
		out = out[:want]
	}
	if want == 0 {
		return out
	}
	s := qScratchPool.Get().(*qScratch)
	defer qScratchPool.Put(s)
	stride := len(X[0])
	xs := s.convert(X, stride)
	vc := q.vote
	// One extra row: the group walker parks its padding lanes' votes there.
	votes := s.grow(len(X)*vc + vc)
	q.voteTrees(xs, stride, nil, len(X), votes, vc, 0, len(q.roots))
	nt := float64(len(q.roots))
	for i := 0; i < len(X); i++ {
		row := votes[i*vc : i*vc+vc]
		o := out[i*nc : i*nc+nc]
		for c := range o {
			o[c] = float64(row[c]) / nt
		}
	}
	return out
}

// grow resizes the scratch vote buffer to n zeroed int32s.
func (s *qScratch) grow(n int) []int32 {
	if cap(s.votes) < n {
		s.votes = make([]int32, n)
	}
	s.votes = s.votes[:n]
	for i := range s.votes {
		s.votes[i] = 0
	}
	return s.votes
}

// ClassifyKeys32 is the serving hot path: it classifies n rows of the
// row-major key-encoded matrix X (row i at X[i*stride:], each value a
// sortKey32 of the float32 feature — see ConvertRow32) into out, walking
// trees in the outer loop so the node array streams once per batch, and
// retiring a sample as soon as its leading class holds more votes than the
// remaining trees could overturn (strictly more, so first-max tie-breaking
// is preserved exactly). scratch may be nil.
//
//lint:noalloc quantized batch kernel; vote and index scratch grow behind warm-up guards
func (q *QuantForest) ClassifyKeys32(X []uint32, stride, n int, out []int, scratch *qScratch) {
	if n == 0 {
		return
	}
	s := scratch
	if s == nil {
		s = qScratchPool.Get().(*qScratch)
		defer qScratchPool.Put(s)
	}
	vc := q.vote
	// One extra row: the group walker parks its padding lanes' votes there.
	votes := s.grow(n*vc + vc)
	if cap(s.idx) < n {
		s.idx = make([]int32, n)
	}
	active := s.idx[:n]
	for i := range active {
		active[i] = int32(i)
	}

	// checkEvery balances margin-scan cost against wasted tree walks; 32
	// trees is ~1% of a fleet-sized ensemble.
	const checkEvery = 32
	t := 0
	for t < len(q.roots) && len(active) > 0 {
		step := checkEvery
		if rest := len(q.roots) - t; rest < step {
			step = rest
		}
		q.voteTrees(X, stride, active, n, votes, vc, t, t+step)
		t += step
		remaining := int32(len(q.roots) - t)
		if remaining == 0 {
			break
		}
		// Retire samples whose winner is already decided.
		live := active[:0]
		for _, si := range active {
			row := votes[int(si)*vc : int(si)*vc+vc]
			best, bestN, second := 0, int32(-1), int32(-1)
			for c, v := range row {
				if v > bestN {
					second = bestN
					best, bestN = c, v
				} else if v > second {
					second = v
				}
			}
			if bestN-second > remaining {
				out[si] = best
				continue
			}
			live = append(live, si)
		}
		active = live
	}
	for _, si := range active {
		row := votes[int(si)*vc : int(si)*vc+vc]
		best, bestN := 0, int32(-1)
		for c, v := range row {
			if v > bestN {
				best, bestN = c, v
			}
		}
		out[si] = best
	}
}

// voteTrees accumulates votes for trees [t0, t1) over the rows named by
// active (or rows [0, n) when active is nil). Groups of eight samples walk
// every tree in the window in lockstep: leaves absorb, so a group advances
// unconditionally in 4-level strides and the eight dependent node-load
// chains overlap instead of serializing. For serving-width feature vectors
// (stride <= 8) each group's keys are first transposed into a 64-entry
// stack block, so the inner walk indexes a constant-base array with a
// provably in-range offset — no slice-header loads and no bounds checks on
// the hottest loads. Short groups pad with copies of their first lane and
// park the padding lanes' votes on the caller-provided spare row at
// votes[n*vc:].
func (q *QuantForest) voteTrees(X []uint32, stride int, active []int32, n int,
	votes []int32, vc int, t0, t1 int) {

	nodes := q.nodes
	roots := q.roots[t0:t1]
	m := n
	if active != nil {
		m = len(active)
	}
	if stride <= 8 {
		var xT [64]uint32
		var vb [8]int32
		spare := int32(n * vc)
		for s := 0; s < m; s += 8 {
			g := m - s
			if g > 8 {
				g = 8
			}
			for k := 0; k < g; k++ {
				a := int32(s + k)
				if active != nil {
					a = active[s+k]
				}
				copy(xT[k*8:k*8+8], X[int(a)*stride:int(a)*stride+stride])
				vb[k] = a * int32(vc)
			}
			for k := g; k < 8; k++ {
				copy(xT[k*8:k*8+8], xT[0:8])
				vb[k] = spare
			}
			walkGroup8(nodes, roots, &xT, &vb, votes)
		}
		return
	}
	// Wide feature vectors (not the serving shape): plain scalar walks.
	for _, root := range roots {
		if active == nil {
			for s := 0; s < n; s++ {
				votes[s*vc+q.predictTree(root, X[s*stride:])]++
			}
			continue
		}
		for _, a := range active {
			votes[int(a)*vc+q.predictTree(root, X[int(a)*stride:])]++
		}
	}
}

// walkGroup8 walks one transposed eight-row group through every tree in
// roots, bumping votes[vb[k]+class_k] per tree. Lane k's keys live at
// xT[k*8 : k*8+8]; features are < 8 on this path, so the &7 lets the
// compiler drop every bounds check on the feature loads.
//
// The child select is pure integer arithmetic: thresholds and features are
// sortKey32-encoded, so (x > t) is an unsigned key comparison, computed as
// the sign of the int64 difference and applied as an XOR mask. Split
// decisions are data-dependent coin flips — a branch here mispredicts
// constantly and flushes all eight walks; the mask form has no branch to
// mispredict, and the eight dependent load chains overlap.
func walkGroup8(nodes []qNode, roots []int32, xT *[64]uint32, vb *[8]int32, votes []int32) {
	for _, root := range roots {
		i0, i1, i2, i3 := root, root, root, root
		i4, i5, i6, i7 := root, root, root, root
		for {
			for step := 0; step < 4; step++ {
				n0 := &nodes[i0]
				m0 := int32((int64(n0.key) - int64(xT[n0.feature&7])) >> 63)
				i0 = n0.left ^ ((n0.left ^ n0.right) & m0)
				n1 := &nodes[i1]
				m1 := int32((int64(n1.key) - int64(xT[8+n1.feature&7])) >> 63)
				i1 = n1.left ^ ((n1.left ^ n1.right) & m1)
				n2 := &nodes[i2]
				m2 := int32((int64(n2.key) - int64(xT[16+n2.feature&7])) >> 63)
				i2 = n2.left ^ ((n2.left ^ n2.right) & m2)
				n3 := &nodes[i3]
				m3 := int32((int64(n3.key) - int64(xT[24+n3.feature&7])) >> 63)
				i3 = n3.left ^ ((n3.left ^ n3.right) & m3)
				n4 := &nodes[i4]
				m4 := int32((int64(n4.key) - int64(xT[32+n4.feature&7])) >> 63)
				i4 = n4.left ^ ((n4.left ^ n4.right) & m4)
				n5 := &nodes[i5]
				m5 := int32((int64(n5.key) - int64(xT[40+n5.feature&7])) >> 63)
				i5 = n5.left ^ ((n5.left ^ n5.right) & m5)
				n6 := &nodes[i6]
				m6 := int32((int64(n6.key) - int64(xT[48+n6.feature&7])) >> 63)
				i6 = n6.left ^ ((n6.left ^ n6.right) & m6)
				n7 := &nodes[i7]
				m7 := int32((int64(n7.key) - int64(xT[56+n7.feature&7])) >> 63)
				i7 = n7.left ^ ((n7.left ^ n7.right) & m7)
			}
			// class is -1 on split nodes, so the sign bit of the OR says
			// whether any lane is still walking.
			if nodes[i0].class|nodes[i1].class|nodes[i2].class|nodes[i3].class|
				nodes[i4].class|nodes[i5].class|nodes[i6].class|nodes[i7].class >= 0 {
				break
			}
		}
		votes[int(vb[0])+int(nodes[i0].class)]++
		votes[int(vb[1])+int(nodes[i1].class)]++
		votes[int(vb[2])+int(nodes[i2].class)]++
		votes[int(vb[3])+int(nodes[i3].class)]++
		votes[int(vb[4])+int(nodes[i4].class)]++
		votes[int(vb[5])+int(nodes[i5].class)]++
		votes[int(vb[6])+int(nodes[i6].class)]++
		votes[int(vb[7])+int(nodes[i7].class)]++
	}
}
