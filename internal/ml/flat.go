package ml

// Flat tree layouts for inference. A fitted tree is compiled into a single
// contiguous node slice: children are slice indices instead of pointers, so a
// root-to-leaf walk touches one cache-resident array and allocates nothing.
// Pointer-based nodes remain the canonical fitted representation (persistence
// flattens them); the compiled form is derived from them and read-only, so it
// is safe to share across goroutines.

// flatNode is one node of a compiled classification tree. A leaf is marked
// by feature == -1 and carries its class in class.
type flatNode struct {
	feature   int32
	left      int32
	right     int32
	class     int32
	threshold float64
}

// flatTree is a classification tree compiled for inference.
type flatTree struct {
	nodes []flatNode
	// maxClass is the largest leaf class, for sizing vote buffers.
	maxClass int
}

// compileTree flattens a fitted pointer tree (nil roots compile to an empty
// tree whose predictions are delegated back to the pointer walk).
func compileTree(root *treeNode) flatTree {
	if root == nil {
		return flatTree{}
	}
	ft := flatTree{nodes: make([]flatNode, 0, countNodes(root))}
	ft.add(root)
	return ft
}

func countNodes(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.isLeaf {
		return 1
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

// add appends n's subtree in preorder and returns its index.
func (ft *flatTree) add(n *treeNode) int32 {
	idx := int32(len(ft.nodes))
	ft.nodes = append(ft.nodes, flatNode{feature: -1})
	if n.isLeaf {
		ft.nodes[idx].class = int32(n.class)
		if n.class > ft.maxClass {
			ft.maxClass = n.class
		}
		return idx
	}
	ft.nodes[idx].feature = int32(n.feature)
	ft.nodes[idx].threshold = n.threshold
	l := ft.add(n.left)
	r := ft.add(n.right)
	ft.nodes[idx].left = l
	ft.nodes[idx].right = r
	return idx
}

// predict walks the compiled tree. Callers must ensure nodes is non-empty.
func (ft *flatTree) predict(x []float64) int {
	nodes := ft.nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.feature < 0 {
			return int(n.class)
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// flatRegNode is one node of a compiled regression tree (feature == -1 marks
// a leaf carrying value).
type flatRegNode struct {
	feature   int32
	left      int32
	right     int32
	threshold float64
	value     float64
}

// flatRegTree is a regression tree compiled for inference.
type flatRegTree struct {
	nodes []flatRegNode
}

// compileRegTree flattens a fitted regression tree.
func compileRegTree(root *regNode) flatRegTree {
	if root == nil {
		return flatRegTree{}
	}
	ft := flatRegTree{nodes: make([]flatRegNode, 0, countRegNodes(root))}
	ft.add(root)
	return ft
}

func countRegNodes(n *regNode) int {
	if n == nil {
		return 0
	}
	if n.isLeaf {
		return 1
	}
	return 1 + countRegNodes(n.left) + countRegNodes(n.right)
}

func (ft *flatRegTree) add(n *regNode) int32 {
	idx := int32(len(ft.nodes))
	ft.nodes = append(ft.nodes, flatRegNode{feature: -1})
	if n.isLeaf {
		ft.nodes[idx].value = n.value
		return idx
	}
	ft.nodes[idx].feature = int32(n.feature)
	ft.nodes[idx].threshold = n.threshold
	l := ft.add(n.left)
	r := ft.add(n.right)
	ft.nodes[idx].left = l
	ft.nodes[idx].right = r
	return idx
}

// predict walks the compiled tree. Callers must ensure nodes is non-empty.
func (ft *flatRegTree) predict(x []float64) float64 {
	nodes := ft.nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}
