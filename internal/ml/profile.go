package ml

import (
	"fmt"

	"github.com/libra-wlan/libra/internal/obs/drift"
)

// ReferenceProfile freezes d's feature and label distributions into a drift
// reference: equal-frequency bin edges and per-bin proportions for every
// feature column, plus the class distribution. The serve fleet and the
// offline reporter compare live decision traffic against it, so it must be
// built from exactly the dataset the deployed model was fitted on.
func ReferenceProfile(name string, d *Dataset, bins int) (*drift.Profile, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: reference profile needs a non-empty dataset")
	}
	nf := d.NumFeatures()
	names := d.FeatureNames
	if len(names) != nf {
		names = make([]string, nf)
		for i := range names {
			names[i] = fmt.Sprintf("f%d", i)
		}
	}
	cols := d.Columns()
	if len(cols) != nf {
		cols = make([][]float64, nf)
		for f := 0; f < nf; f++ {
			col := make([]float64, d.Len())
			for i, row := range d.X {
				col[i] = row[f]
			}
			cols[f] = col
		}
	}
	return drift.BuildProfile(name, names, cols, d.Y, d.NumClasses(), bins)
}
