package ml_test

import (
	"testing"

	"github.com/libra-wlan/libra/internal/ml"

	"github.com/libra-wlan/libra/internal/dataset"
)

// benchForest times the quantized class kernel at a given forest shape and
// batch size — the knobs that set the serving throughput ceiling (the shard
// bench's forest is 2400x20; batch tracks the coalescer's max-batch).
func benchForest(b *testing.B, trees, depth, batch int) {
	ds := dataset.GenerateMain(42).ToML(true)
	rf := &ml.RandomForest{NumTrees: trees, MaxDepth: depth, Seed: 42}
	if err := rf.Fit(ds); err != nil {
		b.Fatal(err)
	}
	q, err := rf.Quantize()
	if err != nil {
		b.Fatal(err)
	}
	X := make([][]float64, batch)
	for i := range X {
		X[i] = ds.X[i%len(ds.X)]
	}
	out := make([]int, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.PredictBatch(X, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sample")
}

func BenchmarkQ2400x20b64(b *testing.B)  { benchForest(b, 2400, 20, 64) }
func BenchmarkQ2400x20b256(b *testing.B) { benchForest(b, 2400, 20, 256) }
func BenchmarkQ2400x20b512(b *testing.B) { benchForest(b, 2400, 20, 512) }
