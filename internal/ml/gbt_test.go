package ml

import "testing"

func TestGBTSeparable(t *testing.T) {
	d := linearData(400, 21)
	g := &GradientBoosting{Trees: 60}
	if err := g.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(g, d); acc < 0.95 {
		t.Errorf("GBT separable accuracy = %v", acc)
	}
}

func TestGBTXOR(t *testing.T) {
	d := xorData(600, 22)
	g := &GradientBoosting{Trees: 120, Depth: 4}
	if err := g.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(g, d); acc < 0.9 {
		t.Errorf("GBT XOR accuracy = %v", acc)
	}
}

func TestGBTMultiClass(t *testing.T) {
	d := threeClassData(300, 23)
	g := &GradientBoosting{Trees: 50}
	if err := g.Fit(d); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(g, d); acc < 0.95 {
		t.Errorf("GBT 3-class accuracy = %v", acc)
	}
}

func TestGBTShrinkageMatters(t *testing.T) {
	// Very few rounds with tiny shrinkage must underfit relative to the
	// default; verifies the learning rate is actually wired in.
	d := xorData(400, 24)
	weak := &GradientBoosting{Trees: 3, LearningRate: 0.01, Depth: 2}
	if err := weak.Fit(d); err != nil {
		t.Fatal(err)
	}
	strong := &GradientBoosting{Trees: 120, Depth: 4}
	if err := strong.Fit(d); err != nil {
		t.Fatal(err)
	}
	if trainAccuracy(weak, d) >= trainAccuracy(strong, d) {
		t.Error("3 tiny rounds matched a full ensemble")
	}
}

func TestGBTUnfitted(t *testing.T) {
	g := &GradientBoosting{}
	if g.Predict([]float64{1, 2}) != 0 {
		t.Error("unfitted GBT should predict 0")
	}
}

func TestGBTRejectsInvalid(t *testing.T) {
	g := &GradientBoosting{Trees: 2}
	if err := g.Fit(&Dataset{X: [][]float64{{1}}, Y: []int{0, 1}}); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestGBTName(t *testing.T) {
	if (&GradientBoosting{}).Name() != "gradient-boosting" {
		t.Error("name")
	}
}
