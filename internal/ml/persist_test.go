package ml

import (
	"bytes"
	"strings"
	"testing"
)

func TestForestRoundTrip(t *testing.T) {
	d := threeClassData(240, 31)
	rf := &RandomForest{NumTrees: 12, MaxDepth: 6, Seed: 1}
	if err := rf.Fit(d); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rf.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadForestJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions on training data and on a probe grid.
	for i := range d.X {
		if rf.Predict(d.X[i]) != got.Predict(d.X[i]) {
			t.Fatalf("prediction diverged on row %d", i)
		}
	}
	for x := -2.0; x < 8; x += 0.7 {
		for y := -2.0; y < 8; y += 0.7 {
			p := []float64{x, y}
			if rf.Predict(p) != got.Predict(p) {
				t.Fatalf("prediction diverged at (%v,%v)", x, y)
			}
		}
	}
	// Importances preserved.
	a, b := rf.GiniImportance(), got.GiniImportance()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("importances changed")
		}
	}
}

func TestWriteUnfitted(t *testing.T) {
	var buf bytes.Buffer
	if err := (&RandomForest{}).WriteJSON(&buf); err != ErrNotFitted {
		t.Errorf("err = %v", err)
	}
}

func TestReadForestRejects(t *testing.T) {
	cases := []string{
		"not json",
		`{"version":9}`,
		`{"version":1,"num_classes":1,"trees":[]}`,
		`{"version":1,"num_classes":2,"trees":[]}`,
		`{"version":1,"num_classes":2,"trees":[{"nodes":[]}]}`,
		`{"version":1,"num_classes":2,"trees":[{"nodes":[{"leaf":false,"left":0,"right":0}]}]}`,
		`{"version":1,"num_classes":2,"trees":[{"nodes":[{"leaf":false,"left":5,"right":6}]}]}`,
	}
	for _, c := range cases {
		if _, err := ReadForestJSON(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}
