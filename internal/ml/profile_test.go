package ml_test

import (
	"math/rand"
	"testing"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/ml"
	"github.com/libra-wlan/libra/internal/obs/decisionlog"
	"github.com/libra-wlan/libra/internal/obs/drift"
)

// feedDataset replays a dataset's rows as decision records through a fresh
// monitor against profile p and returns it. Rows are shuffled with a fixed
// seed: campaign datasets are ordered by environment, and the scenario here
// is stationary traffic from a whole distribution, not a site-by-site sweep
// (which would — correctly — show per-segment drift).
func feedDataset(t *testing.T, p *drift.Profile, d *ml.Dataset, window int) *drift.Monitor {
	t.Helper()
	m, err := drift.NewMonitor(drift.Config{Profile: p, WindowRecords: window, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	order := rand.New(rand.NewSource(7)).Perm(len(d.X))
	for i, ri := range order {
		row := d.X[ri]
		r := decisionlog.Record{Kind: decisionlog.KindDecision, ReqID: uint64(i), Action: uint8(d.Y[ri])}
		for f := range row {
			r.Feat[f] = float32(row[f])
		}
		m.Observe(&r)
	}
	m.Flush()
	return m
}

// TestReferenceProfileCrossCampaignDrift is the paper's deployment-shift
// scenario: a profile frozen from the main (training) campaign must see its
// own traffic as stable, and the testing campaign's traffic — different
// buildings, different impairment mix — as drifted, at the default trip
// threshold.
func TestReferenceProfileCrossCampaignDrift(t *testing.T) {
	main := dataset.GenerateMain(1).ToML(true)
	p, err := ml.ReferenceProfile("main", main, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Features) != main.NumFeatures() || p.Features[0].Name != "SNR" {
		t.Fatalf("profile features %v", p.Features)
	}

	in := feedDataset(t, p, main, 400)
	if in.Trips() != 0 {
		t.Errorf("in-distribution replay tripped %d windows", in.Trips())
	}
	for _, w := range in.Windows() {
		// The final partial window has too few records for a tight bound;
		// the trip check above already covers it.
		if w.Records == 400 && w.PSIMax > 0.05 {
			t.Errorf("in-distribution window %d PSI %v, want ~0", w.Index, w.PSIMax)
		}
	}

	test := dataset.GenerateTest(2).ToML(true)
	out := feedDataset(t, p, test, 400)
	if out.Trips() == 0 {
		t.Error("cross-campaign replay tripped no windows")
	}
}

func TestReferenceProfileRejectsEmpty(t *testing.T) {
	if _, err := ml.ReferenceProfile("empty", &ml.Dataset{}, 10); err == nil {
		t.Fatal("empty dataset produced a profile")
	}
}
