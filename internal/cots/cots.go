// Package cots models the behaviour of commercial off-the-shelf 802.11ad
// devices in the paper's §3 motivation experiments (TP-Link Talon AD7200
// router, Acer laptop, ASUS ROG phone): Tx-sector-only beam training with
// quasi-omni reception, rate adaptation triggered by a missing Block ACK,
// and beam adaptation triggered only when no working MCS can be found.
//
// Two artifacts of real hardware drive the flapping the paper observes:
// noisy single-frame SSW measurements during the sector sweep (so the
// "best" sector varies sweep to sweep) and transient channel fades that push
// RA all the way down and spuriously trigger a sweep. The phone exhibits
// both much more strongly than the AP/laptop chipset.
package cots

import (
	"math/rand"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
)

// FrameTime is the COTS aggregated frame airtime (max 802.11ad FAT).
const FrameTime = 2 * time.Millisecond

// ImplLossDB is the COTS front-end implementation loss. Narrow-band COTS
// 802.11ad chains are considerably cleaner than the X60's wideband SDR
// chain, which compensates for their always-quasi-omni reception.
const ImplLossDB = 12

// Tune applies the COTS link budget to a link. Call it on any link driven
// by a Device.
func Tune(l *channel.Link) { l.ImplLossDB = ImplLossDB }

// NoSector is the sector ID reported when a sweep fails to find any sector
// above the lock threshold (sector ID 255 in the paper's Fig. 2).
const NoSector = 255

// Profile captures chipset-specific instability parameters.
type Profile struct {
	// Name identifies the device ("phone", "ap").
	Name string
	// SLSNoiseDB is the standard deviation of per-sector SSW measurement
	// noise during a sweep.
	SLSNoiseDB float64
	// FadeProb is the per-frame probability of a transient deep fade.
	FadeProb float64
	// FadeDepthDB is the fade attenuation.
	FadeDepthDB float64
	// FadeFrames is the fade burst length in frames.
	FadeFrames int
	// LockThresholdDB is the minimum swept SNR to lock on a sector;
	// below it the device reports NoSector.
	LockThresholdDB float64
}

// PhoneProfile models the ASUS ROG phone: very noisy sweeps, frequent
// transient losses (Fig. 1a: >100 BA triggers in 60 s across 6 sectors).
func PhoneProfile() Profile {
	return Profile{Name: "phone", SLSNoiseDB: 2.2, FadeProb: 0.01, FadeDepthDB: 18, FadeFrames: 6, LockThresholdDB: 4}
}

// APProfile models the Talon AP / Acer laptop chipset: more stable, but
// still unable to hold a single sector (Fig. 1b).
func APProfile() Profile {
	return Profile{Name: "ap", SLSNoiseDB: 0.55, FadeProb: 0.0035, FadeDepthDB: 16, FadeFrames: 8, LockThresholdDB: 4}
}

// SectorSample is one point of a sector-selection timeline.
type SectorSample struct {
	At     time.Duration
	Sector int
}

// RunResult summarizes a COTS run.
type RunResult struct {
	// SectorTimeline records the chosen Tx sector over time (Figs 1a-3a).
	SectorTimeline []SectorSample
	// BATriggers counts sector sweeps performed.
	BATriggers int
	// SectorsUsed is the set of distinct sectors ever selected.
	SectorsUsed map[int]bool
	// ThroughputBps is the average delivered throughput.
	ThroughputBps float64
}

// Device is a COTS transmitter on a link.
type Device struct {
	Link    *channel.Link
	Profile Profile
	Rng     *rand.Rand

	sector    int
	mcs       phy.MCS
	fadeLeft  int
	probeWait int
	sweepWait int
}

// NewDevice creates a COTS transmitter and performs the initial sweep.
func NewDevice(l *channel.Link, prof Profile, rng *rand.Rand) *Device {
	Tune(l)
	d := &Device{Link: l, Profile: prof, Rng: rng}
	d.sweep()
	d.mcs, _ = phy.BestMCS(d.snr())
	return d
}

// snr returns the current directional-Tx quasi-omni-Rx SNR, including any
// active fade.
func (d *Device) snr() float64 {
	if d.sector == NoSector {
		return -40
	}
	s := d.Link.SNRdB(d.sector, phased.QuasiOmniID)
	if d.fadeLeft > 0 {
		s -= d.Profile.FadeDepthDB
	}
	return s
}

// sweep performs a Tx sector level sweep with noisy per-sector SSW
// measurements, as COTS devices do. A sweep performed during a transient
// fade sees the faded channel on every sector and typically fails to lock —
// the device then reports sector 255 until the next sweep (paper Fig. 2).
func (d *Device) sweep() {
	fade := 0.0
	if d.fadeLeft > 0 {
		fade = d.Profile.FadeDepthDB
	}
	best, bestSNR := NoSector, d.Profile.LockThresholdDB
	for s := 0; s < phased.NumBeams; s++ {
		v := d.Link.SNRdB(s, phased.QuasiOmniID) - fade + d.Rng.NormFloat64()*d.Profile.SLSNoiseDB
		if v > bestSNR {
			best, bestSNR = s, v
		}
	}
	d.sector = best
}

// Sector returns the currently selected Tx sector.
func (d *Device) Sector() int { return d.sector }

// Run simulates dur of traffic. If move is non-nil it is called before every
// frame with the elapsed time so mobility scenarios can displace the
// receiver. baEnabled=false locks the device on the given sector and
// disables sweeps (the paper's "BA disabled" baseline, with the sector
// discovered manually).
func (d *Device) Run(dur time.Duration, move func(time.Duration), baEnabled bool, lockedSector int) RunResult {
	res := RunResult{SectorsUsed: map[int]bool{}}
	if !baEnabled {
		d.sector = lockedSector
	}
	frames := int(dur / FrameTime)
	var bits float64
	for i := 0; i < frames; i++ {
		now := time.Duration(i) * FrameTime
		if move != nil {
			move(now)
		}
		if d.fadeLeft > 0 {
			d.fadeLeft--
		} else if d.Rng.Float64() < d.Profile.FadeProb {
			d.fadeLeft = d.Profile.FadeFrames
		}
		snr := d.snr()
		cdr := phy.SampleCDR(d.mcs, snr, d.Rng)
		th := phy.Throughput(d.mcs, cdr)
		acked := cdr >= 0.01
		bits += th * FrameTime.Seconds()

		if d.sweepWait > 0 {
			d.sweepWait--
		}
		if !acked {
			// Missing Block ACK: walk the MCS down; if already at the
			// bottom, the device concludes no working MCS exists and
			// triggers a sweep (rate-limited by firmware).
			if d.mcs > phy.MinMCS {
				d.mcs--
			} else if baEnabled && d.sweepWait == 0 {
				d.sweep()
				res.BATriggers++
				d.mcs, _ = phy.BestMCS(d.snr())
				d.sweepWait = 50
			}
			d.probeWait = 25
		} else if phy.IsWorking(cdr, th) {
			// Periodically probe one MCS up.
			if d.probeWait > 0 {
				d.probeWait--
			} else if d.mcs < phy.MaxMCS && cdr > 0.95 {
				d.mcs++
				d.probeWait = 10
			}
		} else if baEnabled && d.mcs == phy.MinMCS && d.sweepWait == 0 {
			d.sweep()
			res.BATriggers++
			d.mcs, _ = phy.BestMCS(d.snr())
			d.sweepWait = 50
			d.probeWait = 25
		} else if d.mcs > phy.MinMCS {
			d.mcs--
		}

		if i%5 == 0 {
			res.SectorTimeline = append(res.SectorTimeline, SectorSample{At: now, Sector: d.sector})
		}
		res.SectorsUsed[d.sector] = true
	}
	res.ThroughputBps = bits / dur.Seconds()
	return res
}

// BestLockedSector exhaustively finds the Tx sector with the highest
// noise-free quasi-omni SNR — the "manually discovered" locked sector of
// Figs 1c-3c.
func BestLockedSector(l *channel.Link) int {
	best, _ := l.BestTxQuasiOmni()
	return best
}

// WalkAway returns a move function that displaces the Rx from start away
// from the Tx at speed (m/s) while keeping it facing the Tx (§3 mobility).
func WalkAway(l *channel.Link, start geom.Vec, speed float64) func(time.Duration) {
	return WalkDir(l, start, start.Sub(l.Tx.Pos).Norm(), speed)
}

// WalkDir returns a move function that displaces the Rx from start along an
// arbitrary direction at speed (m/s), always facing the Tx. A direction that
// is not radial from the Tx produces the angular displacement that makes the
// best Tx sector drift over the walk.
func WalkDir(l *channel.Link, start, dir geom.Vec, speed float64) func(time.Duration) {
	dir = dir.Norm()
	var lastStep time.Duration = -1
	return func(t time.Duration) {
		// Quantize motion to 100 ms steps to bound ray-tracer work.
		step := t / (100 * time.Millisecond)
		if step == lastStep {
			return
		}
		lastStep = step
		p := start.Add(dir.Scale(speed * (time.Duration(step) * 100 * time.Millisecond).Seconds()))
		if !l.Env.Contains(p) {
			return
		}
		l.MoveRx(p)
		l.RotateRx(geom.Deg(l.Tx.Pos.Sub(p).Angle()))
	}
}
