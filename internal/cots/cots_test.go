package cots

import (
	"math/rand"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
)

func testLink() *channel.Link {
	e := env.MediumCorridor()
	tx := phased.NewArray(geom.V(0.5, 1.6), 0, 1)
	rx := phased.NewArray(geom.V(9.5, 1.6), 180, 2)
	return channel.NewLink(e, tx, rx)
}

func TestTuneAppliesCOTSBudget(t *testing.T) {
	l := testLink()
	Tune(l)
	if l.ImplLossDB != ImplLossDB {
		t.Errorf("ImplLossDB = %v", l.ImplLossDB)
	}
}

func TestNewDeviceLocksSensibleSector(t *testing.T) {
	l := testLink()
	d := NewDevice(l, APProfile(), rand.New(rand.NewSource(1)))
	if d.Sector() == NoSector {
		t.Fatal("initial sweep failed on a healthy link")
	}
	best := BestLockedSector(l)
	// With the AP's small sweep noise the chosen sector is near the truth.
	if diff := d.Sector() - best; diff < -3 || diff > 3 {
		t.Errorf("initial sector %d far from best %d", d.Sector(), best)
	}
}

func TestRunStaticDelivers(t *testing.T) {
	l := testLink()
	d := NewDevice(l, APProfile(), rand.New(rand.NewSource(2)))
	res := d.Run(2*time.Second, nil, true, 0)
	if res.ThroughputBps < 100e6 {
		t.Errorf("static throughput = %v Mbps", res.ThroughputBps/1e6)
	}
	if len(res.SectorTimeline) == 0 {
		t.Error("no sector timeline recorded")
	}
	if len(res.SectorsUsed) == 0 {
		t.Error("no sectors recorded")
	}
}

func TestLockedRunNeverSweeps(t *testing.T) {
	l := testLink()
	locked := BestLockedSector(l)
	d := NewDevice(l, PhoneProfile(), rand.New(rand.NewSource(3)))
	res := d.Run(2*time.Second, nil, false, locked)
	if res.BATriggers != 0 {
		t.Errorf("locked run swept %d times", res.BATriggers)
	}
	for _, s := range res.SectorTimeline {
		if s.Sector != locked {
			t.Fatal("locked run changed sector")
		}
	}
}

func TestPhoneFlapsMoreThanAP(t *testing.T) {
	runProfile := func(p Profile, seed int64) RunResult {
		l := testLink()
		d := NewDevice(l, p, rand.New(rand.NewSource(seed)))
		return d.Run(20*time.Second, nil, true, 0)
	}
	phone := runProfile(PhoneProfile(), 4)
	ap := runProfile(APProfile(), 4)
	if phone.BATriggers <= ap.BATriggers {
		t.Errorf("phone %d triggers <= AP %d (Fig. 1 contrast lost)",
			phone.BATriggers, ap.BATriggers)
	}
}

func TestSweepCooldown(t *testing.T) {
	// On a dead link the device would sweep every frame without the
	// firmware rate limit; verify the cooldown bounds it.
	l := testLink()
	l.ImplLossDB = 90
	l.Invalidate()
	d := NewDevice(l, APProfile(), rand.New(rand.NewSource(5)))
	res := d.Run(time.Second, nil, true, 0)
	frames := int(time.Second / FrameTime)
	if res.BATriggers > frames/40 {
		t.Errorf("%d sweeps in %d frames despite the cooldown", res.BATriggers, frames)
	}
}

func TestBestLockedSector(t *testing.T) {
	l := testLink()
	best := BestLockedSector(l)
	snrBest := l.SNRdB(best, phased.QuasiOmniID)
	for s := 0; s < phased.NumBeams; s++ {
		if snr := l.SNRdB(s, phased.QuasiOmniID); snr > snrBest+1e-9 {
			t.Fatalf("sector %d beats claimed best %d", s, best)
		}
	}
}

func TestWalkAwayMovesRx(t *testing.T) {
	l := testLink()
	start := l.Rx.Pos
	mv := WalkAway(l, start, 0.5)
	mv(4 * time.Second)
	if l.Rx.Pos.Dist(start) < 1.5 {
		t.Errorf("walked only %v m in 4 s", l.Rx.Pos.Dist(start))
	}
	// Still faces the Tx.
	want := geom.Deg(l.Tx.Pos.Sub(l.Rx.Pos).Angle())
	if diff := l.Rx.OrientDeg - want; diff > 1e-6 || diff < -1e-6 {
		t.Error("walker stopped facing the Tx")
	}
}

func TestWalkDirQuantized(t *testing.T) {
	l := testLink()
	mv := WalkDir(l, l.Rx.Pos, geom.V(1, 0), 0.5)
	mv(10 * time.Millisecond)
	epoch := l.Epoch()
	mv(20 * time.Millisecond) // same 100 ms step: no re-trace
	if l.Epoch() != epoch {
		t.Error("sub-step movement re-traced the channel")
	}
	mv(150 * time.Millisecond)
	if l.Epoch() == epoch {
		t.Error("next step did not move the receiver")
	}
}

func TestWalkStopsAtBoundary(t *testing.T) {
	l := testLink()
	mv := WalkAway(l, l.Rx.Pos, 5) // very fast: would exit the corridor
	mv(time.Hour)
	if !l.Env.Contains(l.Rx.Pos) {
		t.Errorf("walker left the environment: %v", l.Rx.Pos)
	}
}

func TestMobilityBATracksBetterThanLocked(t *testing.T) {
	// The §3 key observation: under angular displacement, periodic beam
	// adaptation beats any single locked sector.
	run := func(ba bool) float64 {
		e := env.Lobby()
		tx := phased.NewArray(geom.V(2, 4), 0, 6)
		rx := phased.NewArray(geom.V(5, 4), 180, 7)
		l := channel.NewLink(e, tx, rx)
		locked := BestLockedSector(l)
		d := NewDevice(l, APProfile(), rand.New(rand.NewSource(8)))
		mv := WalkDir(l, geom.V(5, 4), geom.V(0.8, 0.6), 0.25)
		return d.Run(20*time.Second, mv, ba, locked).ThroughputBps
	}
	if withBA, lockedTh := run(true), run(false); withBA <= lockedTh {
		t.Errorf("BA %v Mbps did not beat locked %v Mbps under mobility",
			withBA/1e6, lockedTh/1e6)
	}
}
