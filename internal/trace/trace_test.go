package trace

import (
	"math/rand"
	"testing"
	"time"
)

func testPools(t *testing.T) *Pools {
	t.Helper()
	p := NewPools(7)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolsPopulated(t *testing.T) {
	p := testPools(t)
	if len(p.motion) < 4 {
		t.Errorf("motion pool = %d", len(p.motion))
	}
	if len(p.blocked) != 9 || len(p.interfered) != 9 || len(p.clear) != 3 {
		t.Errorf("pools = %d blocked / %d interfered / %d clear",
			len(p.blocked), len(p.interfered), len(p.clear))
	}
}

func TestTimelineShape(t *testing.T) {
	p := testPools(t)
	rng := rand.New(rand.NewSource(1))
	for _, kind := range Kinds {
		tl := p.RandomTimeline(kind, rng)
		if tl.Kind != kind {
			t.Errorf("kind = %v", tl.Kind)
		}
		if len(tl.Segments) != SegmentsPerTimeline {
			t.Errorf("%v: %d segments", kind, len(tl.Segments))
		}
		for i, seg := range tl.Segments {
			if seg.Snap == nil {
				t.Fatalf("%v segment %d: nil snapshot", kind, i)
			}
			if seg.Dur < 300*time.Millisecond || seg.Dur > 3*time.Second {
				t.Errorf("%v segment %d: duration %v outside [300ms, 3s]", kind, i, seg.Dur)
			}
		}
		d := tl.Duration()
		if d < 3*time.Second || d > 30*time.Second {
			t.Errorf("%v: duration %v outside [3s, 30s]", kind, d)
		}
	}
}

func TestBlockageAlternates(t *testing.T) {
	p := testPools(t)
	rng := rand.New(rand.NewSource(2))
	tl := p.RandomTimeline(Blockage, rng)
	// Even segments are clear, odd are blocked: the SNR of the best pair
	// must alternate high/low.
	for i := 0; i+1 < len(tl.Segments); i += 2 {
		_, _, clear := tl.Segments[i].Snap.BestPair()
		_, _, blocked := tl.Segments[i+1].Snap.BestPair()
		if clear <= blocked {
			t.Errorf("segments %d/%d: clear %v <= blocked %v", i, i+1, clear, blocked)
		}
	}
}

func TestInterferenceRaisesNoiseInPool(t *testing.T) {
	p := testPools(t)
	clear := p.clear[0].Measure(12, 12)
	worst := clear.NoiseDBm
	for _, s := range p.interfered {
		if m := s.Measure(12, 12); m.NoiseDBm > worst {
			worst = m.NoiseDBm
		}
	}
	if worst <= clear.NoiseDBm+3 {
		t.Errorf("interfered pool noise %v barely above clear %v", worst, clear.NoiseDBm)
	}
}

func TestRandomTimelineDur(t *testing.T) {
	p := testPools(t)
	rng := rand.New(rand.NewSource(3))
	tl := p.RandomTimelineDur(Motion, rng, 31*time.Second)
	if tl.Duration() < 31*time.Second {
		t.Errorf("duration %v below the floor", tl.Duration())
	}
}

func TestRandomTimelines(t *testing.T) {
	p := testPools(t)
	rng := rand.New(rand.NewSource(4))
	tls := p.RandomTimelines(Mixed, 7, rng)
	if len(tls) != 7 {
		t.Errorf("timelines = %d", len(tls))
	}
}

func TestKindStrings(t *testing.T) {
	want := map[ScenarioKind]string{
		Motion: "Motion", Blockage: "Blockage",
		Interference: "Interference", Mixed: "Mixed",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d String = %q", k, k.String())
		}
	}
}

func TestDeterministicPools(t *testing.T) {
	a := NewPools(11)
	b := NewPools(11)
	rngA := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(5))
	ta := a.RandomTimeline(Mixed, rngA)
	tb := b.RandomTimeline(Mixed, rngB)
	for i := range ta.Segments {
		if ta.Segments[i].Dur != tb.Segments[i].Dur {
			t.Fatal("same seeds produced different timelines")
		}
		_, _, sa := ta.Segments[i].Snap.BestPair()
		_, _, sb := tb.Segments[i].Snap.BestPair()
		if sa != sb {
			t.Fatal("same seeds produced different snapshots")
		}
	}
}

func TestPropertyTimelineDurations(t *testing.T) {
	p := testPools(t)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 50; i++ {
		kind := Kinds[rng.Intn(len(Kinds))]
		tl := p.RandomTimeline(kind, rng)
		var sum time.Duration
		for _, seg := range tl.Segments {
			sum += seg.Dur
		}
		if sum != tl.Duration() {
			t.Fatal("Duration() disagrees with the segment sum")
		}
		// Every snapshot must be measurable on its own best pair.
		_, _, snr := tl.Segments[0].Snap.BestPair()
		if snr < -40 {
			t.Fatalf("first segment unusable: %v dB", snr)
		}
	}
}
