// Package trace generates the multi-impairment scenario timelines of §8.3:
// sequences of 10 channel-state segments of random duration (300 ms - 3 s)
// drawn from four scenario types — Mobility, Blockage, Interference, and
// Mixed. Each segment is a frozen channel Snapshot, the in-memory equivalent
// of the 300-second PHY and throughput traces the paper collected per
// segment.
package trace

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
)

// ScenarioKind is the timeline type of §8.3.
type ScenarioKind int

// Scenario kinds (Figs 12-13 groups).
const (
	Motion ScenarioKind = iota
	Blockage
	Interference
	Mixed
)

// Kinds lists all scenario kinds in display order.
var Kinds = []ScenarioKind{Motion, Blockage, Interference, Mixed}

// String returns the scenario name as the figures label it.
func (k ScenarioKind) String() string {
	switch k {
	case Motion:
		return "Motion"
	case Blockage:
		return "Blockage"
	case Interference:
		return "Interference"
	default:
		return "Mixed"
	}
}

// Segment is one channel state held for a duration.
type Segment struct {
	// Snap is the frozen channel state.
	Snap *channel.Snapshot
	// Dur is how long the state persists.
	Dur time.Duration
}

// Timeline is a sequence of segments of one scenario kind.
type Timeline struct {
	Kind     ScenarioKind
	Segments []Segment
}

// Duration returns the total timeline duration.
func (t *Timeline) Duration() time.Duration {
	var d time.Duration
	for _, s := range t.Segments {
		d += s.Dur
	}
	return d
}

// Pools holds pre-generated channel states per scenario kind, mirroring the
// paper's per-segment trace collection.
type Pools struct {
	motion       []*channel.Snapshot
	clear        []*channel.Snapshot
	blocked      []*channel.Snapshot
	interfered   []*channel.Snapshot
	clearPoses   []geom.Vec
	segmentCount int
}

// SegmentsPerTimeline is the number of segments per timeline (§8.3).
const SegmentsPerTimeline = 10

// NewPools builds the state pools in the lobby environment with a fixed Tx.
// The seed determines array codebooks and state geometry.
func NewPools(seed int64) *Pools {
	rng := rand.New(rand.NewSource(seed))
	e := env.Lobby()
	tx := phased.NewArray(geom.V(2, 4), 0, seed)
	rx := phased.NewArray(geom.V(5, 4), 180, seed+33)
	l := channel.NewLink(e, tx, rx)

	p := &Pools{segmentCount: SegmentsPerTimeline}

	// Mobility walk: a path away from and around the Tx with angular
	// displacement, like the walking client of §3 and §8.3.
	walk := []struct {
		pos    geom.Vec
		orient float64
	}{
		{geom.V(5, 4), 180}, {geom.V(6.8, 4), 180}, {geom.V(8.6, 4.6), 195},
		{geom.V(10.2, 5.4), 210}, {geom.V(11.6, 5.4), 180}, {geom.V(13.0, 4.6), 165},
		{geom.V(14.4, 4), 180}, {geom.V(15.6, 3.2), 150}, {geom.V(16.6, 2.6), 195},
		{geom.V(17.4, 2.2), 180}, {geom.V(16.2, 3.4), 210}, {geom.V(14.6, 4.2), 180},
	}
	for _, w := range walk {
		l.MoveRx(w.pos)
		l.RotateRx(w.orient)
		p.motion = append(p.motion, l.Snapshot())
	}

	// Clear / blocked / interfered states at a few anchor positions.
	anchors := []geom.Vec{geom.V(7, 4), geom.V(10, 4.5), geom.V(12.5, 3.5)}
	for _, a := range anchors {
		l.SetBlockers(nil)
		l.SetInterferers(nil)
		l.MoveRx(a)
		l.RotateRx(geom.Deg(tx.Pos.Sub(a).Angle()))
		p.clear = append(p.clear, l.Snapshot())
		p.clearPoses = append(p.clearPoses, a)

		for i := 0; i < 3; i++ {
			frac := 0.25 + 0.25*float64(i) + 0.1*rng.Float64()
			at := tx.Pos.Add(a.Sub(tx.Pos).Scale(frac))
			off := (rng.Float64() - 0.5) * 0.25
			lat := a.Sub(tx.Pos).Norm()
			latv := geom.Vec{X: -lat.Y, Y: lat.X}.Scale(off)
			l.SetBlockers([]channel.Blocker{channel.DefaultBlocker(at.Add(latv))})
			p.blocked = append(p.blocked, l.Snapshot())
		}
		l.SetBlockers(nil)

		for _, eirp := range []float64{-6, 2, 10} {
			toTx := tx.Pos.Sub(a).Norm()
			place := a.Add(toTx.Scale(0.7 * tx.Pos.Dist(a))).Add(geom.Vec{X: -toTx.Y, Y: toTx.X}.Scale(0.3))
			l.SetInterferers([]channel.Interferer{{Pos: place, EIRPdBm: eirp, DutyCycle: 0.9}})
			p.interfered = append(p.interfered, l.Snapshot())
		}
		l.SetInterferers(nil)
	}
	return p
}

// segmentDur draws a random segment duration in [300 ms, 3 s] (§8.3).
func segmentDur(rng *rand.Rand) time.Duration {
	return time.Duration(300+rng.Intn(2701)) * time.Millisecond
}

// RandomTimeline draws one timeline of the given kind: 10 segments with
// random durations, alternating impairment and recovery for blockage and
// interference kinds, walking for motion, and a blend for mixed.
func (p *Pools) RandomTimeline(kind ScenarioKind, rng *rand.Rand) *Timeline {
	tl := &Timeline{Kind: kind}
	pick := func(pool []*channel.Snapshot) *channel.Snapshot {
		return pool[rng.Intn(len(pool))]
	}
	for i := 0; i < p.segmentCount; i++ {
		var snap *channel.Snapshot
		switch kind {
		case Motion:
			snap = p.motion[(i*2+rng.Intn(2))%len(p.motion)]
		case Blockage:
			if i%2 == 0 {
				snap = pick(p.clear)
			} else {
				snap = pick(p.blocked)
			}
		case Interference:
			if i%2 == 0 {
				snap = pick(p.clear)
			} else {
				snap = pick(p.interfered)
			}
		default: // Mixed
			switch rng.Intn(4) {
			case 0:
				snap = pick(p.motion)
			case 1:
				snap = pick(p.blocked)
			case 2:
				snap = pick(p.interfered)
			default:
				snap = pick(p.clear)
			}
		}
		tl.Segments = append(tl.Segments, Segment{Snap: snap, Dur: segmentDur(rng)})
	}
	return tl
}

// RandomTimelineDur draws a timeline of the given kind whose total duration
// is at least minDur, appending segments beyond the standard count if
// needed (used by the VR study, which streams a 30 s scene).
func (p *Pools) RandomTimelineDur(kind ScenarioKind, rng *rand.Rand, minDur time.Duration) *Timeline {
	tl := p.RandomTimeline(kind, rng)
	for tl.Duration() < minDur {
		ext := p.RandomTimeline(kind, rng)
		tl.Segments = append(tl.Segments, ext.Segments...)
	}
	return tl
}

// RandomTimelines draws n timelines of a kind (50 per kind in §8.3).
func (p *Pools) RandomTimelines(kind ScenarioKind, n int, rng *rand.Rand) []*Timeline {
	out := make([]*Timeline, n)
	for i := range out {
		out[i] = p.RandomTimeline(kind, rng)
	}
	return out
}

// Validate checks pool invariants.
func (p *Pools) Validate() error {
	if len(p.motion) == 0 || len(p.clear) == 0 || len(p.blocked) == 0 || len(p.interfered) == 0 {
		return fmt.Errorf("trace: incomplete pools (motion=%d clear=%d blocked=%d interfered=%d)",
			len(p.motion), len(p.clear), len(p.blocked), len(p.interfered))
	}
	return nil
}
