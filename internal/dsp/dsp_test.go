package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			out[k] += x[j] * cmplx.Rect(1, ang)
		}
	}
	return out
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := FFT(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-7*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTNonPowerOfTwo(t *testing.T) {
	x := make([]complex128, 3)
	if err := FFT(x); err != ErrNotPowerOfTwo {
		t.Errorf("err = %v, want ErrNotPowerOfTwo", err)
	}
}

func TestFFTEmpty(t *testing.T) {
	if err := FFT(nil); err != nil {
		t.Errorf("empty FFT: %v", err)
	}
}

func TestIFFTRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := append([]complex128(nil), x...)
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-9 {
			t.Fatalf("roundtrip bin %d: %v vs %v", i, y[i], x[i])
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, 64)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += cmplx.Abs(v) * cmplx.Abs(v)
	}
	freqEnergy /= 64
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Errorf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestFFTRealImpulse(t *testing.T) {
	// A delta function has a flat magnitude spectrum.
	x := make([]float64, 16)
	x[0] = 1
	mag := FFTReal(x)
	for i, v := range mag {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("bin %d: %v", i, v)
		}
	}
}

func TestFFTRealPads(t *testing.T) {
	if got := len(FFTReal(make([]float64, 5))); got != 8 {
		t.Errorf("padded length = %d, want 8", got)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 255: 256, 256: 256, 257: 512}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := Pearson(x, x); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %v", got)
	}
	y := []float64{5, 4, 3, 2, 1}
	if got := Pearson(x, y); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti correlation = %v", got)
	}
	// Affine invariance: corr(x, a*x+b) = 1 for a > 0.
	z := make([]float64, len(x))
	for i, v := range x {
		z[i] = 3*v + 7
	}
	if got := Pearson(x, z); math.Abs(got-1) > 1e-12 {
		t.Errorf("affine correlation = %v", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("constant input correlation = %v", got)
	}
	if got := Pearson([]float64{1, 2}, []float64{1}); got != 0 {
		t.Errorf("length mismatch = %v", got)
	}
	if got := Pearson([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("too short = %v", got)
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h float64) bool {
		x := []float64{a, b, c, d}
		y := []float64{e, f2, g, h}
		for _, v := range append(x, y...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r := Pearson(x, y)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev(x); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestMinMax(t *testing.T) {
	x := []float64{3, -1, 7, 0}
	if Min(x) != -1 || Max(x) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(x), Max(x))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max sentinel wrong")
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(x, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	if got := Median(x); got != 3 {
		t.Errorf("Median = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	x := []float64{3, 1, 2}
	Quantile(x, 0.5)
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	cases := []struct{ v, want float64 }{
		{0, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.v); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cse.v, got, cse.want)
		}
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 3 {
		t.Errorf("Quantile(1) = %v", got)
	}
}

func TestCDFPoints(t *testing.T) {
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = float64(i)
	}
	c := NewCDF(sample)
	vals, probs := c.Points(10)
	if len(vals) != len(probs) {
		t.Fatal("length mismatch")
	}
	if len(vals) > 12 {
		t.Errorf("too many points: %d", len(vals))
	}
	if probs[len(probs)-1] != 1 {
		t.Errorf("last prob = %v", probs[len(probs)-1])
	}
	for i := 1; i < len(probs); i++ {
		if probs[i] < probs[i-1] || vals[i] < vals[i-1] {
			t.Fatal("points not monotone")
		}
	}
}

func TestBox(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if b.Min != 1 || b.Max != 9 || b.Median != 5 || b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("Box = %+v", b)
	}
	if b.N != 9 || math.Abs(b.Mean-5) > 1e-12 {
		t.Errorf("Box mean/n = %+v", b)
	}
	empty := Box(nil)
	if !math.IsNaN(empty.Median) {
		t.Error("empty box should be NaN")
	}
}

func TestDBLin(t *testing.T) {
	if got := DB(1); got != 0 {
		t.Errorf("DB(1) = %v", got)
	}
	if got := DB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("DB(100) = %v", got)
	}
	if !math.IsInf(DB(0), -1) || !math.IsInf(DB(-3), -1) {
		t.Error("non-positive DB should be -Inf")
	}
	for _, db := range []float64{-30, -3, 0, 3, 30} {
		if got := DB(Lin(db)); math.Abs(got-db) > 1e-9 {
			t.Errorf("roundtrip %v -> %v", db, got)
		}
	}
}
