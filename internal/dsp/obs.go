package dsp

import "github.com/libra-wlan/libra/internal/obs"

// Pool-effectiveness metrics for the FFT hot path. A transform is cheap but
// featurization runs two per dataset entry, so the interesting signal is how
// often the pooled scratch (and the twiddle cache) actually avoids an
// allocation: grows should flatline after warm-up.
var (
	obsFFTs = obs.NewCounter("libra_dsp_fft_real_total",
		"real-input magnitude-spectrum transforms")
	obsFFTGrows = obs.NewCounter("libra_dsp_fft_scratch_grows_total",
		"pooled FFT scratch buffers grown (pool miss at this length)")
	obsTwiddleBuilds = obs.NewCounter("libra_dsp_fft_twiddle_builds_total",
		"twiddle-factor tables computed (cache miss per length)")
)
