package dsp

import (
	"math"
	"testing"
)

// FuzzPearson hardens the similarity metric against arbitrary float input:
// it must never panic and must stay within [-1, 1] for finite inputs.
func FuzzPearson(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
	f.Add(0.0, 0.0, 0.0, 1.0, 1.0, 1.0)
	f.Add(math.MaxFloat64, -math.MaxFloat64, 1.0, 2.0, 3.0, 4.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g float64) {
		x := []float64{a, b, c}
		y := []float64{d, e, g}
		r := Pearson(x, y)
		finite := true
		for _, v := range append(x, y...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
			}
		}
		if finite && !math.IsNaN(r) && (r < -1.0000001 || r > 1.0000001) {
			t.Fatalf("Pearson out of range: %v", r)
		}
	})
}

// FuzzQuantile hardens the quantile estimator: no panics, result within
// the sample range for finite inputs and q in [0,1].
func FuzzQuantile(f *testing.F) {
	f.Add(1.0, 5.0, 3.0, 0.5)
	f.Add(-1.0, -1.0, -1.0, 0.0)
	f.Fuzz(func(t *testing.T, a, b, c, q float64) {
		x := []float64{a, b, c}
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		if math.IsNaN(q) {
			return
		}
		got := Quantile(x, q)
		if q >= 0 && q <= 1 {
			if got < Min(x)-1e-9 || got > Max(x)+1e-9 {
				t.Fatalf("Quantile(%v, %v) = %v outside range", x, q, got)
			}
		}
	})
}

// FuzzFFTReal hardens the padding FFT path: arbitrary lengths and values
// must not panic, and the output length is the next power of two.
func FuzzFFTReal(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{})
	f.Add([]byte{255, 0, 128, 7, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 4096 {
			return
		}
		x := make([]float64, len(raw))
		for i, b := range raw {
			x[i] = float64(b) - 128
		}
		out := FFTReal(x)
		if len(x) > 0 && len(out) != NextPow2(len(x)) {
			t.Fatalf("length %d for input %d", len(out), len(x))
		}
		for _, v := range out {
			if v < 0 {
				t.Fatal("negative magnitude")
			}
		}
	})
}
