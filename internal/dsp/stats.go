package dsp

import (
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient between x and y. It
// returns 0 when the inputs are shorter than 2 samples, have different
// lengths, or when either input has zero variance. This is the similarity
// measure the paper applies to PDP and FFT-PDP (CSI) pairs, following the
// mobility-awareness methodology of Sun et al. (CoNEXT'14).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Mean returns the arithmetic mean of x, or 0 for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Min returns the minimum of x, or +Inf for empty input.
func Min(x []float64) float64 {
	m := math.Inf(1)
	for _, v := range x {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of x, or -Inf for empty input.
func Max(x []float64) float64 {
	m := math.Inf(-1)
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the q-th quantile (0 <= q <= 1) of x using linear
// interpolation between order statistics. x need not be sorted.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the median of x.
func Median(x []float64) float64 { return Quantile(x, 0.5) }

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample x (which is copied).
func NewCDF(x []float64) *CDF {
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= v), the fraction of the sample at or below v.
func (c *CDF) At(v float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(v, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile of the sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(c.sorted, q)
}

// Values returns the sorted sample (shared slice; do not modify).
func (c *CDF) Values() []float64 { return c.sorted }

// Points returns (value, cumulative probability) pairs suitable for plotting
// the CDF as a step curve, downsampled to at most maxPoints points.
func (c *CDF) Points(maxPoints int) (values, probs []float64) {
	n := len(c.sorted)
	if n == 0 {
		return nil, nil
	}
	step := 1
	if maxPoints > 0 && n > maxPoints {
		step = n / maxPoints
	}
	for i := 0; i < n; i += step {
		values = append(values, c.sorted[i])
		probs = append(probs, float64(i+1)/float64(n))
	}
	if values[len(values)-1] != c.sorted[n-1] {
		values = append(values, c.sorted[n-1])
		probs = append(probs, 1)
	}
	return values, probs
}

// BoxStats holds the five-number summary used for the boxplots of Figs 12-13.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// Box computes boxplot statistics for x.
func Box(x []float64) BoxStats {
	if len(x) == 0 {
		return BoxStats{Min: math.NaN(), Q1: math.NaN(), Median: math.NaN(), Q3: math.NaN(), Max: math.NaN(), Mean: math.NaN()}
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return BoxStats{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
		N:      len(s),
	}
}

// DB converts a linear power ratio to decibels. Non-positive input yields
// -Inf.
func DB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// Lin converts decibels to a linear power ratio.
func Lin(db float64) float64 { return math.Pow(10, db/10) }
