// Package dsp provides the signal-processing and statistics primitives used
// throughout the simulator: a radix-2 FFT (to convert power delay profiles to
// frequency-domain CSI estimates, as in §6.1 of the paper), Pearson
// correlation (the PDP/CSI similarity metric), and descriptive statistics for
// building the CDFs and boxplots in the evaluation figures.
package dsp

import (
	"errors"
	"math"
	"math/cmplx"
	"sync"
)

// ErrNotPowerOfTwo is returned by FFT when the input length is not a power of
// two.
var ErrNotPowerOfTwo = errors.New("dsp: FFT length must be a power of two")

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// twiddles caches the FFT twiddle factors per transform length
// (int -> []complex128 of length n/2, entry k = exp(-2*pi*i*k/n)).
var twiddles sync.Map

// twiddleTable returns the twiddle factors for an n-point FFT, computing and
// caching them on first use. Each factor comes directly from Sincos, avoiding
// the numerical drift of the incremental w *= wl recurrence (and its two
// complex multiplies per butterfly).
func twiddleTable(n int) []complex128 {
	if v, ok := twiddles.Load(n); ok {
		return v.([]complex128)
	}
	obsTwiddleBuilds.Inc()
	tw := make([]complex128, n/2)
	for k := range tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw[k] = complex(c, s)
	}
	v, _ := twiddles.LoadOrStore(n, tw)
	return v.([]complex128)
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier transform
// of x. len(x) must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return ErrNotPowerOfTwo
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	if n < 2 {
		return nil
	}
	// Danielson-Lanczos butterflies with precomputed twiddle factors: the
	// stage with butterfly span `length` uses every (n/length)-th entry of
	// the n-point table. Every j==0 butterfly has twiddle exp(-0i) = 1, so
	// its multiply is elided — for finite inputs the product differs from
	// the operand at most in the sign of zero-valued components, which no
	// add/multiply chain or magnitude downstream can surface. The whole
	// first stage is j==0 butterflies, so it runs as a dedicated
	// multiply-free pass; later stages peel j==0 out of the inner loop.
	for i := 0; i < n; i += 2 {
		u, v := x[i], x[i+1]
		x[i] = u + v
		x[i+1] = u - v
	}
	tw := twiddleTable(n)
	for length := 4; length <= n; length <<= 1 {
		half := length >> 1
		stride := n / length
		for i := 0; i < n; i += length {
			blk := x[i : i+length : i+length]
			u, v := blk[0], blk[half]
			blk[0] = u + v
			blk[half] = u - v
			for j := 1; j < half; j++ {
				u := blk[j]
				v := blk[j+half] * tw[j*stride]
				blk[j] = u + v
				blk[j+half] = u - v
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT of x in place. len(x) must be a power of two.
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	inv := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
	return nil
}

// cbufPool recycles the complex scratch buffers of FFTRealInto so that
// transform-heavy paths (CSI featurization measures two 256-tap PDPs per
// entry) do not allocate per call.
var cbufPool = sync.Pool{New: func() any { return new([]complex128) }}

// FFTRealInto zero-pads x to the next power of two n, runs an FFT on a pooled
// scratch buffer, and writes the magnitude spectrum into dst, growing it if
// its capacity is below n. It returns dst (re-sliced to length n). dst may
// alias x: x is consumed before dst is written.
func FFTRealInto(dst, x []float64) []float64 {
	n := NextPow2(len(x))
	obsFFTs.Inc()
	bp := cbufPool.Get().(*[]complex128)
	buf := *bp
	if cap(buf) < n {
		obsFFTGrows.Inc()
		buf = make([]complex128, n)
	}
	buf = buf[:n]
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	for i := len(x); i < n; i++ {
		buf[i] = 0
	}
	// Length is a power of two by construction; error is impossible.
	_ = FFT(buf)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i, c := range buf {
		dst[i] = cmplx.Abs(c)
	}
	*bp = buf
	cbufPool.Put(bp)
	return dst
}

// FFTReal zero-pads x to the next power of two, runs an FFT, and returns the
// magnitude spectrum. It is the transform used to estimate CSI from a power
// delay profile.
func FFTReal(x []float64) []float64 {
	return FFTRealInto(nil, x)
}
