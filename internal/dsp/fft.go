// Package dsp provides the signal-processing and statistics primitives used
// throughout the simulator: a radix-2 FFT (to convert power delay profiles to
// frequency-domain CSI estimates, as in §6.1 of the paper), Pearson
// correlation (the PDP/CSI similarity metric), and descriptive statistics for
// building the CDFs and boxplots in the evaluation figures.
package dsp

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrNotPowerOfTwo is returned by FFT when the input length is not a power of
// two.
var ErrNotPowerOfTwo = errors.New("dsp: FFT length must be a power of two")

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier transform
// of x. len(x) must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return ErrNotPowerOfTwo
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Danielson-Lanczos butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT of x in place. len(x) must be a power of two.
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	inv := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
	return nil
}

// FFTReal zero-pads x to the next power of two, runs an FFT, and returns the
// magnitude spectrum. It is the transform used to estimate CSI from a power
// delay profile.
func FFTReal(x []float64) []float64 {
	n := NextPow2(len(x))
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	// Length is a power of two by construction; error is impossible.
	_ = FFT(buf)
	out := make([]float64, n)
	for i, c := range buf {
		out[i] = cmplx.Abs(c)
	}
	return out
}
