package dsp_test

import (
	"fmt"

	"github.com/libra-wlan/libra/internal/dsp"
)

func ExampleFFTReal() {
	// A two-tap channel: the frequency response magnitude ripples.
	pdp := make([]float64, 8)
	pdp[0] = 1.0
	pdp[4] = 1.0
	mag := dsp.FFTReal(pdp)
	fmt.Printf("%.0f %.0f %.0f\n", mag[0], mag[1], mag[2])
	// Output: 2 0 2
}

func ExamplePearson() {
	x := []float64{1, 2, 3, 4}
	y := []float64{10, 20, 30, 40}
	fmt.Printf("%.2f\n", dsp.Pearson(x, y))
	// Output: 1.00
}

func ExampleNewCDF() {
	c := dsp.NewCDF([]float64{1, 2, 2, 4})
	fmt.Printf("P(X<=2) = %.2f, median = %.1f\n", c.At(2), c.Quantile(0.5))
	// Output: P(X<=2) = 0.75, median = 2.0
}

func ExampleBox() {
	b := dsp.Box([]float64{1, 2, 3, 4, 5})
	fmt.Printf("median %.0f of %d samples\n", b.Median, b.N)
	// Output: median 3 of 5 samples
}
