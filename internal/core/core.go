// Package core implements LiBRA itself (paper §7, Algorithm 1): a practical,
// standard-compliant, learning-based link adaptation framework that uses PHY
// layer information fed back on 802.11 ACKs to decide (i) when to trigger
// link adaptation and (ii) which mechanism — beam adaptation (BA) or rate
// adaptation (RA) — to trigger first.
//
// The decision core is a 3-class classifier (BA / RA / NA) over the 7 PHY
// metrics of §6.1, evaluated every two frames on two consecutive observation
// windows. When the ACK is missing (no metrics available), LiBRA falls back
// to the empirical rule of §7: trigger BA first when the current MCS is below
// 6 (92% correct on the training data) or when the BA overhead is low, and RA
// first otherwise.
package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/ml"
	"github.com/libra-wlan/libra/internal/phy"
)

// Config holds the protocol parameters of a LiBRA deployment (§8.1).
type Config struct {
	// Alpha weighs throughput against link recovery delay in the utility
	// metric (Eqn. 1). The paper uses 0.7 for low BA overheads and 0.5
	// for high ones.
	Alpha float64
	// BAOverhead is the airtime of one beam adaptation (SLS) run.
	BAOverhead time.Duration
	// FAT is the maximum frame aggregation time: the airtime of one RA
	// probe frame (2 ms in 802.11ad, 10 ms in 802.11ac and X60).
	FAT time.Duration
	// BAOverheadThreshold is the "few ms" bound of §7's missing-ACK rule:
	// with MCS >= 6, BA is triggered first only when BAOverhead is below
	// this threshold.
	BAOverheadThreshold time.Duration
	// ProbeInterval is T0, the minimum up-probing interval in frames.
	ProbeInterval int
	// MissingACKMCS is the MCS below which a missing ACK always triggers
	// BA first (6 in §7: BA is correct 92% of the time there).
	MissingACKMCS phy.MCS
}

// DefaultConfig returns the paper's default parameterization.
func DefaultConfig() Config {
	return Config{
		Alpha:               0.7,
		BAOverhead:          5 * time.Millisecond,
		FAT:                 2 * time.Millisecond,
		BAOverheadThreshold: 10 * time.Millisecond,
		ProbeInterval:       5,
		MissingACKMCS:       6,
	}
}

// AlphaFor returns the α the paper pairs with a BA overhead: 0.7 when the
// overhead is a few ms (weight throughput), 0.5 when it is large (weight
// delay).
func AlphaFor(baOverhead time.Duration) float64 {
	if baOverhead <= 10*time.Millisecond {
		return 0.7
	}
	return 0.5
}

// Dmax returns the worst-case link recovery delay of §5.2: RA probes all
// MCSs, fails, performs BA, then probes all MCSs again.
func Dmax(cfg Config) time.Duration {
	return 2*time.Duration(phy.NumMCS)*cfg.FAT + cfg.BAOverhead
}

// Utility evaluates the paper's utility metric (Eqn. 1):
// U = α·Th/Thmax + (1-α)·(1 - D/Dmax).
func Utility(thBps float64, delay time.Duration, cfg Config) float64 {
	dmax := Dmax(cfg)
	d := delay
	if d > dmax {
		d = dmax
	}
	return cfg.Alpha*thBps/phy.MaxRateBps() +
		(1-cfg.Alpha)*(1-float64(d)/float64(dmax))
}

// Classifier maps a 7-feature PHY observation to an adaptation action.
type Classifier interface {
	// Classify returns the action for a feature vector in dataset order.
	Classify(features []float64) dataset.Action
	// Name identifies the classifier.
	Name() string
}

// MLClassifier adapts any ml.Classifier (trained with dataset labels:
// BA=0, RA=1, NA=2) to the Classifier interface.
type MLClassifier struct {
	Model ml.Classifier
}

// Classify implements Classifier.
func (c *MLClassifier) Classify(features []float64) dataset.Action {
	return dataset.Action(c.Model.Predict(features))
}

// Name implements Classifier.
func (c *MLClassifier) Name() string { return c.Model.Name() }

// TrainDefaultClassifier trains the paper's production model: a 3-class
// random forest on the given campaign (§7: "We thus use this 3-class model
// in the design of LiBRA").
func TrainDefaultClassifier(camp *dataset.Campaign, seed int64) (*MLClassifier, error) {
	rf := &ml.RandomForest{NumTrees: 80, MaxDepth: 12, Seed: seed}
	if err := rf.Fit(camp.ToML(true)); err != nil {
		return nil, fmt.Errorf("core: training classifier: %w", err)
	}
	return &MLClassifier{Model: rf}, nil
}

// RuleClassifier is a deterministic fallback used when no trained model is
// available: it encodes the paper's observed single-metric thresholds
// (SNR drop > 7 dB -> BA in displacement, §6.1.1) plus the tie default.
// It exists mainly for tests and as an ablation baseline.
type RuleClassifier struct{}

// Classify implements Classifier.
func (RuleClassifier) Classify(f []float64) dataset.Action {
	snrDrop, tof, cdr := f[0], f[1], f[5]
	switch {
	case snrDrop < 1.5 && cdr > 0.5:
		return dataset.ActNA
	case snrDrop > 7 || tof >= dataset.ToFInfCode:
		return dataset.ActBA
	case tof < 0:
		return dataset.ActRA
	default:
		return dataset.ActBA
	}
}

// Name implements Classifier.
func (RuleClassifier) Name() string { return "rule-thresholds" }

// MissingACKAction applies §7's missing-ACK rule: the classifier cannot run
// (no PHY feedback), so decide from the current MCS and the BA overhead.
func MissingACKAction(currMCS phy.MCS, cfg Config) dataset.Action {
	if currMCS < cfg.MissingACKMCS || cfg.BAOverhead < cfg.BAOverheadThreshold {
		return dataset.ActBA
	}
	return dataset.ActRA
}

// CDRORI returns the up-probing threshold on the current CDR above which the
// next higher MCS could yield more throughput (following the opportunistic
// rate increase rule of Wong et al., used by LiBRA's RA in §7): probing m+1
// pays off only if the current CDR exceeds rate(m)/rate(m+1).
func CDRORI(m phy.MCS) float64 {
	if m >= phy.MaxMCS {
		return 2 // unreachable: never probe beyond the top MCS
	}
	return m.RateBps() / (m + 1).RateBps()
}

// ProbeBackoff returns the adaptive probing interval T = T0·min(2^k, 25) of
// §7 (in frames), where k counts consecutive failed probes.
func ProbeBackoff(t0, k int) int {
	mult := 1
	for i := 0; i < k && mult < 25; i++ {
		mult *= 2
	}
	if mult > 25 {
		mult = 25
	}
	return t0 * mult
}

// Model persistence format. A serialized classifier is a one-line ASCII
// header followed by the model body:
//
//	libra-model v2 random-forest\n
//	{...forest JSON (ml.RandomForest.WriteJSON)...}
//
// The header makes the artifact self-describing: loaders can sniff the
// format without parsing JSON, reject incompatible versions with a clear
// error, and route future model families to their own decoders. Version 1
// is the historical headerless format (bare forest JSON); LoadClassifier
// still accepts it.
const (
	// ModelMagic is the first token of every headered model file.
	ModelMagic = "libra-model"
	// ModelFormatVersion is the current on-disk format version.
	ModelFormatVersion = 2
)

// modelFamilyForest is the only model family serialized today.
const modelFamilyForest = "random-forest"

// SaveClassifier serializes a trained MLClassifier whose model is a random
// forest — the artifact a vendor ships in firmware (§7's offline-training
// deployment story) and the file libra-serve loads. The output is
// serialization-stable: saving a loaded model reproduces the input bytes.
func SaveClassifier(c *MLClassifier, w io.Writer) error {
	rf, ok := c.Model.(*ml.RandomForest)
	if !ok {
		return fmt.Errorf("core: only random-forest classifiers serialize (got %s)", c.Name())
	}
	if _, err := fmt.Fprintf(w, "%s v%d %s\n", ModelMagic, ModelFormatVersion, modelFamilyForest); err != nil {
		return fmt.Errorf("core: writing model header: %w", err)
	}
	return rf.WriteJSON(w)
}

// LoadClassifier deserializes a classifier written by SaveClassifier. Both
// the current headered format and the legacy headerless v1 format (bare
// forest JSON) are accepted.
func LoadClassifier(r io.Reader) (*MLClassifier, error) {
	br := bufio.NewReader(r)
	peek, err := br.Peek(len(ModelMagic))
	if err == nil && string(peek) == ModelMagic {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("core: reading model header: %w", err)
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("core: malformed model header %q", strings.TrimSpace(line))
		}
		version, err := strconv.Atoi(strings.TrimPrefix(fields[1], "v"))
		if err != nil || !strings.HasPrefix(fields[1], "v") {
			return nil, fmt.Errorf("core: malformed model version %q", fields[1])
		}
		if version > ModelFormatVersion {
			return nil, fmt.Errorf("core: model format v%d is newer than this build supports (v%d)", version, ModelFormatVersion)
		}
		if fields[2] != modelFamilyForest {
			return nil, fmt.Errorf("core: unsupported model family %q", fields[2])
		}
	}
	rf, err := ml.ReadForestJSON(br)
	if err != nil {
		return nil, fmt.Errorf("core: loading classifier: %w", err)
	}
	return &MLClassifier{Model: rf}, nil
}
