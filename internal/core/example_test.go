package core_test

import (
	"fmt"
	"time"

	"github.com/libra-wlan/libra/internal/core"
)

func ExampleUtility() {
	// The paper's utility (Eqn. 1) with the default α = 0.7: a 2.85 Gbps
	// recovery (MCS 5) after 7 ms of the 41 ms worst-case delay.
	cfg := core.DefaultConfig()
	cfg.FAT = 2 * time.Millisecond
	u := core.Utility(2850e6, 7*time.Millisecond, cfg)
	fmt.Printf("U = %.2f\n", u)
	// Output: U = 0.67
}

func ExampleMissingACKAction() {
	cfg := core.DefaultConfig()
	cfg.BAOverhead = 250 * time.Millisecond
	cfg.BAOverheadThreshold = 10 * time.Millisecond
	// Low MCS: the link was already fragile; re-beam first.
	fmt.Println(core.MissingACKAction(3, cfg))
	// High MCS with an expensive sweep: try rates first.
	fmt.Println(core.MissingACKAction(7, cfg))
	// Output:
	// BA
	// RA
}

func ExampleProbeBackoff() {
	// T = T0 * min(2^k, 25): the up-probe interval after k failed probes.
	for _, k := range []int{0, 2, 6} {
		fmt.Println(core.ProbeBackoff(5, k))
	}
	// Output:
	// 5
	// 20
	// 125
}

func ExampleRuleClassifier() {
	var clf core.RuleClassifier
	// SNR dropped 12 dB with the ToF unchanged: re-beam.
	f := []float64{12, 0, 0, 0.8, 0.5, 0, 5}
	fmt.Println(clf.Classify(f))
	// Output: BA
}
