package core

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/ml"
	"github.com/libra-wlan/libra/internal/phy"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Alpha != 0.7 || cfg.MissingACKMCS != 6 || cfg.ProbeInterval != 5 {
		t.Errorf("defaults changed: %+v", cfg)
	}
}

func TestAlphaFor(t *testing.T) {
	// §8.1: α = 0.7 for low BA overheads (0.5, 5 ms), 0.5 for high
	// (150, 250 ms).
	if AlphaFor(500*time.Microsecond) != 0.7 || AlphaFor(5*time.Millisecond) != 0.7 {
		t.Error("low-overhead alpha")
	}
	if AlphaFor(150*time.Millisecond) != 0.5 || AlphaFor(250*time.Millisecond) != 0.5 {
		t.Error("high-overhead alpha")
	}
}

func TestDmax(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FAT = 2 * time.Millisecond
	cfg.BAOverhead = 5 * time.Millisecond
	// Dmax = 2*N_MCS*d_fr + d_BA = 2*9*2 + 5 = 41 ms (§5.2).
	if got := Dmax(cfg); got != 41*time.Millisecond {
		t.Errorf("Dmax = %v", got)
	}
}

func TestUtilityBounds(t *testing.T) {
	cfg := DefaultConfig()
	// Best case: max throughput, zero delay.
	if got := Utility(phy.MaxRateBps(), 0, cfg); math.Abs(got-1) > 1e-12 {
		t.Errorf("best utility = %v", got)
	}
	// Worst case: zero throughput, Dmax delay.
	if got := Utility(0, Dmax(cfg), cfg); math.Abs(got) > 1e-12 {
		t.Errorf("worst utility = %v", got)
	}
	// Delay beyond Dmax is clamped, not negative.
	if got := Utility(0, 10*Dmax(cfg), cfg); got < 0 {
		t.Errorf("clamped utility = %v", got)
	}
}

func TestUtilityMonotone(t *testing.T) {
	cfg := DefaultConfig()
	if Utility(2e9, 5*time.Millisecond, cfg) <= Utility(1e9, 5*time.Millisecond, cfg) {
		t.Error("utility not increasing in throughput")
	}
	if Utility(1e9, 5*time.Millisecond, cfg) <= Utility(1e9, 20*time.Millisecond, cfg) {
		t.Error("utility not decreasing in delay")
	}
}

func TestUtilityAlphaWeighting(t *testing.T) {
	// With α=1 only throughput matters.
	cfg := DefaultConfig()
	cfg.Alpha = 1
	if Utility(1e9, 0, cfg) != Utility(1e9, Dmax(cfg), cfg) {
		t.Error("α=1 should ignore delay")
	}
	cfg.Alpha = 0
	if Utility(1e9, time.Millisecond, cfg) != Utility(0, time.Millisecond, cfg) {
		t.Error("α=0 should ignore throughput")
	}
}

func TestMissingACKAction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BAOverheadThreshold = 10 * time.Millisecond

	// Low MCS: always BA (92% correct per §7).
	cfg.BAOverhead = 250 * time.Millisecond
	if MissingACKAction(3, cfg) != dataset.ActBA {
		t.Error("low MCS should trigger BA")
	}
	// High MCS with large BA overhead: RA first.
	if MissingACKAction(6, cfg) != dataset.ActRA {
		t.Error("high MCS + costly BA should trigger RA")
	}
	// High MCS with cheap BA: BA first.
	cfg.BAOverhead = 500 * time.Microsecond
	if MissingACKAction(6, cfg) != dataset.ActBA {
		t.Error("high MCS + cheap BA should trigger BA")
	}
}

func TestCDRORI(t *testing.T) {
	// Probing m+1 pays off when CDR > rate(m)/rate(m+1).
	for m := phy.MinMCS; m < phy.MaxMCS; m++ {
		want := m.RateBps() / (m + 1).RateBps()
		if got := CDRORI(m); math.Abs(got-want) > 1e-12 {
			t.Errorf("CDRORI(%v) = %v, want %v", m, got, want)
		}
		if CDRORI(m) >= 1 {
			t.Errorf("CDRORI(%v) >= 1 would never trigger", m)
		}
	}
	// The top MCS can never be probed beyond.
	if CDRORI(phy.MaxMCS) <= 1 {
		t.Error("top MCS threshold should be unreachable")
	}
}

func TestProbeBackoff(t *testing.T) {
	// T = T0 * min(2^k, 25) (§7).
	cases := []struct{ t0, k, want int }{
		{5, 0, 5},
		{5, 1, 10},
		{5, 2, 20},
		{5, 3, 40},
		{5, 4, 80},
		{5, 5, 125}, // 2^5 = 32 capped at 25
		{5, 10, 125},
	}
	for _, c := range cases {
		if got := ProbeBackoff(c.t0, c.k); got != c.want {
			t.Errorf("ProbeBackoff(%d, %d) = %d, want %d", c.t0, c.k, got, c.want)
		}
	}
}

func TestRuleClassifier(t *testing.T) {
	var c RuleClassifier
	// Unchanged link: NA.
	f := []float64{0.3, 0, 0, 1, 1, 0.95, 6}
	if got := c.Classify(f); got != dataset.ActNA {
		t.Errorf("stable link = %v", got)
	}
	// Large SNR drop: BA (the 7 dB displacement threshold of §6.1.1).
	f = []float64{12, 0, 0, 0.8, 0.5, 0, 5}
	if got := c.Classify(f); got != dataset.ActBA {
		t.Errorf("big drop = %v", got)
	}
	// Unmeasurable ToF: BA.
	f = []float64{5, dataset.ToFInfCode, 0, 0, 0, 0, 5}
	if got := c.Classify(f); got != dataset.ActBA {
		t.Errorf("inf ToF = %v", got)
	}
	// Backward motion: RA.
	f = []float64{4, -10, 0, 0.9, 0.6, 0.1, 6}
	if got := c.Classify(f); got != dataset.ActRA {
		t.Errorf("backward = %v", got)
	}
	if c.Name() == "" {
		t.Error("empty name")
	}
}

func TestTrainDefaultClassifier(t *testing.T) {
	camp := dataset.GenerateTest(5) // smaller than main; fine for training
	clf, err := TrainDefaultClassifier(camp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if clf.Name() == "" {
		t.Error("classifier name empty")
	}
	// Training accuracy must be far above chance on its own data.
	correct, total := 0, 0
	for _, e := range camp.Entries {
		total++
		if clf.Classify(e.FeatureSlice()) == e.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Errorf("training accuracy = %v", acc)
	}
}

func TestClassifierSaveLoad(t *testing.T) {
	camp := dataset.GenerateTest(6)
	clf, err := TrainDefaultClassifier(camp, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveClassifier(clf, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range camp.Entries[:100] {
		if clf.Classify(e.FeatureSlice()) != loaded.Classify(e.FeatureSlice()) {
			t.Fatal("loaded classifier diverged")
		}
	}
}

// TestModelFormatGoldenRoundTrip pins the on-disk model contract:
// the artifact leads with the versioned header, load(save(m)) predicts
// byte-identically to m over a whole campaign, and save(load(save(m)))
// reproduces the serialized bytes exactly — the format is stable under
// round-trips, so artifacts can be re-saved without drift.
func TestModelFormatGoldenRoundTrip(t *testing.T) {
	camp := dataset.GenerateTest(6)
	clf, err := TrainDefaultClassifier(camp, 1)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := SaveClassifier(clf, &first); err != nil {
		t.Fatal(err)
	}
	wantHeader := fmt.Sprintf("%s v%d random-forest\n", ModelMagic, ModelFormatVersion)
	if !strings.HasPrefix(first.String(), wantHeader) {
		t.Fatalf("artifact header = %q, want prefix %q", first.String()[:40], wantHeader)
	}
	loaded, err := LoadClassifier(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range camp.Entries {
		if clf.Classify(e.FeatureSlice()) != loaded.Classify(e.FeatureSlice()) {
			t.Fatalf("entry %d: loaded classifier diverged", i)
		}
	}
	var second bytes.Buffer
	if err := SaveClassifier(loaded, &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("save(load(save(m))) is not byte-identical to save(m)")
	}
}

// TestLoadClassifierLegacyV1 keeps the historical headerless format (bare
// forest JSON, as written before the versioned header existed) loadable.
func TestLoadClassifierLegacyV1(t *testing.T) {
	camp := dataset.GenerateTest(6)
	clf, err := TrainDefaultClassifier(camp, 1)
	if err != nil {
		t.Fatal(err)
	}
	rf := clf.Model.(*ml.RandomForest)
	var legacy bytes.Buffer
	if err := rf.WriteJSON(&legacy); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadClassifier(&legacy)
	if err != nil {
		t.Fatalf("legacy v1 artifact rejected: %v", err)
	}
	for _, e := range camp.Entries[:50] {
		if clf.Classify(e.FeatureSlice()) != loaded.Classify(e.FeatureSlice()) {
			t.Fatal("legacy-loaded classifier diverged")
		}
	}
}

func TestLoadClassifierRejectsBadHeaders(t *testing.T) {
	cases := map[string]string{
		"future version":     "libra-model v99 random-forest\n{}",
		"unknown family":     "libra-model v2 neural-net\n{}",
		"malformed header":   "libra-model v2\n{}",
		"malformed version":  "libra-model x2 random-forest\n{}",
		"truncated artifact": "libra-model",
	}
	for name, in := range cases {
		if _, err := LoadClassifier(strings.NewReader(in)); err == nil {
			t.Errorf("%s: artifact accepted", name)
		}
	}
}

func TestSaveNonForest(t *testing.T) {
	var buf bytes.Buffer
	c := &MLClassifier{Model: &ml.DecisionTree{}}
	if err := SaveClassifier(c, &buf); err == nil {
		t.Error("non-forest model serialized")
	}
}
