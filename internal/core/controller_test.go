package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/mac"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
	"github.com/libra-wlan/libra/internal/predict"
)

func testController(t *testing.T, d float64, seed int64) (*Controller, *channel.Link) {
	t.Helper()
	e := env.MediumCorridor()
	tx := phased.NewArray(geom.V(0.5, 1.6), 0, seed)
	rx := phased.NewArray(geom.V(0.5+d, 1.6), 180, seed+1)
	l := channel.NewLink(e, tx, rx)
	st := mac.NewStation(l, rand.New(rand.NewSource(seed+2)))
	// The rule classifier keeps controller tests independent of training.
	c := NewController(st, RuleClassifier{}, DefaultConfig())
	return c, l
}

func TestBootstrap(t *testing.T) {
	c, l := testController(t, 6, 1)
	c.Bootstrap()
	if c.Station.TxBeam < 0 || c.Station.RxBeam < 0 {
		t.Error("bootstrap did not select beams")
	}
	snr := l.SNRdB(c.Station.TxBeam, c.Station.RxBeam)
	if phy.CDR(c.Station.MCS, snr) < 0.2 {
		t.Errorf("bootstrap MCS %v unsupportable at %v dB", c.Station.MCS, snr)
	}
}

func TestStableLinkThroughput(t *testing.T) {
	c, l := testController(t, 6, 2)
	c.Bootstrap()
	bits := c.Run(200)
	th := bits / (200 * phy.FrameDuration)
	_, _, snr := l.BestPair()
	_, wantTh := phy.BestMCS(snr)
	if th < 0.6*wantTh {
		t.Errorf("stable-link throughput %v, channel supports %v", th/1e6, wantTh/1e6)
	}
	// A stable link must not trigger repairs constantly.
	if c.BARuns > 3 {
		t.Errorf("BA ran %d times on a stable link", c.BARuns)
	}
}

func TestControllerRecoversFromRotation(t *testing.T) {
	c, l := testController(t, 8, 3)
	c.Bootstrap()
	c.Run(20)
	before := l.SNRdB(c.Station.TxBeam, c.Station.RxBeam)
	l.RotateRx(180 + 50) // break alignment
	c.Run(100)
	after := l.SNRdB(c.Station.TxBeam, c.Station.RxBeam)
	if after < before-25 {
		t.Errorf("controller did not re-beam: SNR %v -> %v", before, after)
	}
	if c.BARuns == 0 {
		t.Error("no BA run after a hard rotation")
	}
	if len(c.RecoveryDelays) == 0 {
		t.Error("no recovery delay recorded")
	}
	// The link must deliver again after recovery.
	bits := c.Run(50)
	if bits <= 0 {
		t.Error("nothing delivered after recovery")
	}
}

func TestControllerRecoversFromBlockage(t *testing.T) {
	c, l := testController(t, 8, 4)
	c.Bootstrap()
	c.Run(10)
	mid := l.Tx.Pos.Add(l.Rx.Pos.Sub(l.Tx.Pos).Scale(0.5))
	l.SetBlockers([]channel.Blocker{channel.DefaultBlocker(mid)})
	c.Run(150)
	rec := c.Station.SendFrame()
	if !rec.ACKed {
		t.Skip("blocked corridor unrecoverable in this geometry")
	}
	if rec.ThroughputBps() < phy.WorkingMinThroughputBps/2 {
		t.Errorf("post-blockage throughput %v Mbps", rec.ThroughputBps()/1e6)
	}
}

func TestDecisionsCounted(t *testing.T) {
	c, _ := testController(t, 6, 5)
	c.Bootstrap()
	c.Run(100)
	total := 0
	for _, n := range c.Decisions {
		total += n
	}
	if total == 0 {
		t.Error("no classifier decisions recorded")
	}
	// A stable link should be overwhelmingly NA.
	if c.Decisions[dataset.ActNA] < total/2 {
		t.Errorf("NA decisions = %d of %d on a stable link", c.Decisions[dataset.ActNA], total)
	}
}

func TestMeanRecoveryDelayEmpty(t *testing.T) {
	c, _ := testController(t, 6, 6)
	if c.MeanRecoveryDelay() != 0 {
		t.Error("empty mean recovery delay should be 0")
	}
}

func TestWindowAverage(t *testing.T) {
	recs := []mac.FrameRecord{
		{SNRdB: 10, NoiseDBm: -70, ToFNs: 5, PDP: []float64{1}},
		{SNRdB: 14, NoiseDBm: -74, ToFNs: 7, PDP: []float64{2}},
	}
	m := windowAverage(recs)
	if m.SNRdB != 12 || m.NoiseDBm != -72 {
		t.Errorf("averages = %v / %v", m.SNRdB, m.NoiseDBm)
	}
	if m.ToFNs != 7 || m.PDP[0] != 2 {
		t.Error("last-sample fields wrong")
	}
	empty := windowAverage(nil)
	if empty.SNRdB != 0 {
		t.Error("empty window")
	}
	zeroToF := windowAverage([]mac.FrameRecord{{ToFNs: 0, PDP: []float64{1}}})
	if !math.IsInf(zeroToF.ToFNs, 1) {
		t.Error("zero ToF should map to +Inf")
	}
}

func TestProbingRaisesMCSWhenChannelImproves(t *testing.T) {
	c, l := testController(t, 14, 7)
	c.Bootstrap()
	c.Run(50)
	low := c.Station.MCS
	// The client walks closer: much better channel.
	l.MoveRx(geom.V(4, 1.6))
	c.Run(600)
	if c.Station.MCS <= low {
		t.Errorf("MCS did not climb after improvement: %v -> %v", low, c.Station.MCS)
	}
}

func TestControllerMissingACKRule(t *testing.T) {
	// Kill the channel entirely: the controller must hit the missing-ACK
	// path and attempt repairs without panicking or spinning.
	c, l := testController(t, 6, 8)
	c.Bootstrap()
	c.Run(10)
	l.ImplLossDB = 90
	l.Invalidate()
	c.Run(60)
	if c.BARuns == 0 && c.RARuns == 0 {
		t.Error("no repair attempts on a dead link")
	}
	if len(c.RecoveryDelays) == 0 {
		t.Error("no recovery delays recorded")
	}
}

func TestControllerProbeBackoffUnderFailedProbes(t *testing.T) {
	// A link pinned at a low MCS: up-probes fail, and the controller must
	// back off rather than probe every interval.
	c, _ := testController(t, 16, 9) // long link: mid-table MCS
	c.Bootstrap()
	firstMCS := c.Station.MCS
	c.Run(800)
	// The MCS must not run away upward on a static long link.
	if c.Station.MCS > firstMCS+2 {
		t.Errorf("MCS climbed from %v to %v on a static weak link", firstMCS, c.Station.MCS)
	}
}

func TestControllerPredictorOverridesMissingACKRule(t *testing.T) {
	// Feed the predictor a constant BA pattern, then blind the controller
	// (dead channel, missing ACKs): the first repair must be BA even in a
	// configuration where the coarse rule would choose RA.
	c, l := testController(t, 6, 10)
	c.Cfg.BAOverhead = 250 * time.Millisecond // rule would say RA at MCS>=6
	c.Cfg.BAOverheadThreshold = 10 * time.Millisecond
	c.Predictor = predict.NewMarkovPredictor(1)
	for i := 0; i < 6; i++ {
		c.Predictor.Observe(dataset.ActBA)
	}
	c.Bootstrap()
	if c.Station.MCS < c.Cfg.MissingACKMCS {
		t.Skip("bootstrap MCS below the rule threshold; rule would pick BA anyway")
	}
	c.Run(4)
	baBefore := c.BARuns
	l.ImplLossDB = 90
	l.Invalidate()
	c.Run(6)
	if c.BARuns <= baBefore {
		t.Error("predictor did not steer the blind repair to BA")
	}
}
