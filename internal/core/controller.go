package core

import (
	"math"
	"time"

	"github.com/libra-wlan/libra/internal/adapt"
	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/mac"
	"github.com/libra-wlan/libra/internal/phy"
	"github.com/libra-wlan/libra/internal/predict"
)

// Controller is the online LiBRA state machine of Algorithm 1, driving a MAC
// station frame by frame: it keeps the current MCS and beam pair, runs the
// classifier every DecisionWindow frames on two consecutive observation
// windows, repairs the link with RA and/or BA, and opportunistically probes
// higher MCSs with the adaptive interval T = T0·min(2^k, 25).
type Controller struct {
	// Station is the MAC transmitter the controller drives.
	Station *mac.Station
	// Cfg holds protocol parameters.
	Cfg Config
	// Clf is the 3-class BA/RA/NA classifier.
	Clf Classifier
	// BA is the beam-training algorithm (StandardSLS by default).
	BA adapt.BeamAdapter
	// RA is the rate-search algorithm (ProbeDownRA by default).
	RA adapt.RateAdapter
	// DecisionWindow is the number of frames per observation window (2 in
	// X60: decisions every 20 ms, §7).
	DecisionWindow int
	// Predictor, when non-nil, enables the §7 future-work extension: the
	// controller records the mechanism used at every repair, and when an
	// ACK goes missing (the Tx is blind) a confident learned pattern
	// overrides the coarse missing-ACK rule.
	Predictor *predict.MarkovPredictor
	// PredictorConfidence is the minimum confidence for the override
	// (default 0.8 when zero).
	PredictorConfidence float64

	// Statistics.
	Decisions      map[dataset.Action]int
	BARuns, RARuns int
	RecoveryDelays []time.Duration

	frameID   int
	probeT    int // frames remaining until the next up-probe
	probeK    int // consecutive failed probes
	probing   bool
	prevTput  float64
	prevMeas  channel.Measurement
	prevValid bool
	curWindow []mac.FrameRecord
}

// NewController assembles a controller with the paper's defaults.
func NewController(st *mac.Station, clf Classifier, cfg Config) *Controller {
	return &Controller{
		Station:        st,
		Cfg:            cfg,
		Clf:            clf,
		BA:             adapt.StandardSLS{},
		RA:             adapt.ProbeDownRA{},
		DecisionWindow: 2,
		Decisions:      map[dataset.Action]int{},
		probeT:         cfg.ProbeInterval,
	}
}

// Bootstrap performs the initial beam training and rate search that
// establish the link before data flows.
func (c *Controller) Bootstrap() {
	res := c.BA.Adapt(c.Station.Link)
	c.Station.TxBeam, c.Station.RxBeam = res.TxBeam, res.RxBeam
	best, _ := phy.BestMCS(res.SNRdB)
	c.Station.MCS = best
	ra := c.RA.Adapt(c.Station, best)
	if !ra.Working {
		c.Station.MCS = phy.MinMCS
	}
}

// Step transmits one frame and runs selectAction (Algorithm 1). It returns
// the frame record.
func (c *Controller) Step() mac.FrameRecord {
	rec := c.Station.SendFrame()
	c.frameID++
	c.curWindow = append(c.curWindow, rec)
	c.selectAction(rec)
	return rec
}

// Run executes n frames and returns the total delivered bits.
func (c *Controller) Run(n int) float64 {
	var bits float64
	for i := 0; i < n; i++ {
		bits += c.Step().DeliveredBits
	}
	return bits
}

// selectAction is the per-frame decision procedure of Algorithm 1.
func (c *Controller) selectAction(rec mac.FrameRecord) {
	// A probe frame outcome is evaluated first.
	if c.probing {
		tput := rec.ThroughputBps()
		if !rec.ACKed || tput < c.prevTput {
			// Failed probe: back off and return to the previous MCS.
			c.probeK++
			if c.Station.MCS > phy.MinMCS {
				c.Station.MCS--
			}
		} else {
			c.probeK = 0
		}
		c.probeT = ProbeBackoff(c.Cfg.ProbeInterval, c.probeK)
		c.probing = false
		return
	}
	if c.probeT > 0 {
		c.probeT--
	}

	if !rec.ACKed {
		// Missing ACK: the channel has collapsed and no metrics came
		// back. A confidently learned link pattern overrides the coarse
		// §7 rule; otherwise the rule applies.
		action := MissingACKAction(c.Station.MCS, c.Cfg)
		if c.Predictor != nil {
			conf := c.PredictorConfidence
			if conf == 0 {
				conf = 0.8
			}
			if pred, pc := c.Predictor.Predict(); pc >= conf && pred != dataset.ActNA {
				action = pred
			}
		}
		c.repair(action)
		c.resetWindows()
		return
	}

	// Classifier runs once per observation window.
	if c.frameID%c.DecisionWindow != 0 || len(c.curWindow) < c.DecisionWindow {
		c.maybeProbeUp(rec)
		return
	}
	meas := windowAverage(c.curWindow)
	cdr := mac.AvgCDR(c.curWindow)
	c.curWindow = c.curWindow[:0]
	if !c.prevValid {
		c.prevMeas, c.prevValid = meas, true
		c.maybeProbeUp(rec)
		return
	}
	features := dataset.FeaturizeObserved(c.prevMeas, meas, cdr, c.Station.MCS)
	action := c.Clf.Classify(features[:])
	c.Decisions[action]++
	if action != dataset.ActNA {
		c.repair(action)
		c.resetWindows()
		return
	}
	c.prevMeas = meas
	c.maybeProbeUp(rec)
}

// repair performs the selected adaptation: RA alone, or BA followed by RA
// (§5.2: BA is always followed by RA). It records the recovery delay charged
// by the configured overheads.
func (c *Controller) repair(action dataset.Action) {
	var delay time.Duration
	start := c.Station.MCS
	if action == dataset.ActBA {
		res := c.BA.Adapt(c.Station.Link)
		c.Station.TxBeam, c.Station.RxBeam = res.TxBeam, res.RxBeam
		c.BARuns++
		delay += c.Cfg.BAOverhead
	} else if start > phy.MinMCS {
		start--
	}
	ra := c.RA.Adapt(c.Station, start)
	c.RARuns++
	delay += time.Duration(ra.FramesProbed) * c.Cfg.FAT
	if !ra.Working && action != dataset.ActBA {
		// RA alone failed: BA, then another RA round (Algorithm 1).
		res := c.BA.Adapt(c.Station.Link)
		c.Station.TxBeam, c.Station.RxBeam = res.TxBeam, res.RxBeam
		c.BARuns++
		delay += c.Cfg.BAOverhead
		ra = c.RA.Adapt(c.Station, c.Station.MCS)
		c.RARuns++
		delay += time.Duration(ra.FramesProbed) * c.Cfg.FAT
	}
	c.RecoveryDelays = append(c.RecoveryDelays, delay)
	c.probeT = ProbeBackoff(c.Cfg.ProbeInterval, 0)
	c.probeK = 0
	if c.Predictor != nil {
		c.Predictor.Observe(action)
	}
}

// maybeProbeUp opportunistically probes the next higher MCS when the
// interval expired and the CDR clears the opportunistic-rate-increase
// threshold.
func (c *Controller) maybeProbeUp(rec mac.FrameRecord) {
	if c.probeT > 0 || c.Station.MCS >= phy.MaxMCS {
		return
	}
	if rec.CDR > CDRORI(c.Station.MCS) {
		c.prevTput = rec.ThroughputBps()
		c.Station.MCS++
		c.probing = true
	} else {
		c.probeT = ProbeBackoff(c.Cfg.ProbeInterval, c.probeK)
	}
}

// resetWindows clears observation state after an adaptation.
func (c *Controller) resetWindows() {
	c.curWindow = c.curWindow[:0]
	c.prevValid = false
	c.prevTput = 0
}

// windowAverage aggregates frame records into one Measurement.
func windowAverage(recs []mac.FrameRecord) channel.Measurement {
	var m channel.Measurement
	if len(recs) == 0 {
		return m
	}
	var snr, noise float64
	for _, r := range recs {
		snr += r.SNRdB
		noise += r.NoiseDBm
	}
	n := float64(len(recs))
	m.SNRdB = snr / n
	m.NoiseDBm = noise / n
	last := recs[len(recs)-1]
	m.ToFNs = last.ToFNs
	m.PDP = last.PDP
	if m.ToFNs == 0 {
		m.ToFNs = math.Inf(1)
	}
	return m
}

// MeanRecoveryDelay returns the mean of recorded link recovery delays.
func (c *Controller) MeanRecoveryDelay() time.Duration {
	if len(c.RecoveryDelays) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range c.RecoveryDelays {
		sum += d
	}
	return sum / time.Duration(len(c.RecoveryDelays))
}
