package obs

// The simulation-time tracer. Everything in this file is stamped with
// SimTime — deterministic frame/slot/codeword coordinates derived from the
// simulation itself — and nothing here may read the wall clock: libra-lint's
// determinism analyzer checks trace*.go in this package like any library
// file, while the metrics side (metrics.go) is exempt. Keeping the two
// clocks apart is what makes -trace-out byte-identical for any worker count
// while -metrics-out stays free to record real timings.
//
// Concurrency model: a Tracer hands out Streams. A Stream is an ordered,
// single-writer event buffer — the caller that owns a deterministic unit of
// work (a campaign spec, a policy run) appends to its own stream from one
// goroutine at a time. WriteJSON merges streams sorted by (name, id), and
// events within a stream keep append order, so the merged output depends
// only on the work performed, never on scheduling.

import (
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// SimTime is a deterministic simulation timestamp: the TDMA frame index,
// the slot within the frame, and the codeword within the slot. Components a
// subsystem does not track stay zero.
type SimTime struct {
	Frame    int64
	Slot     int64
	Codeword int64
}

// A Field is one key/value attribute on an event. Values are pre-rendered
// strings so the export path has no type switches and no formatting
// ambiguity.
type Field struct {
	Key string
	Val string
}

// F builds a string-valued field.
func F(key, val string) Field { return Field{Key: key, Val: val} }

// Fint builds an integer-valued field.
func Fint(key string, v int64) Field {
	return Field{Key: key, Val: strconv.FormatInt(v, 10)}
}

// Ffloat builds a float-valued field using the shortest round-trip
// representation (platform-independent).
func Ffloat(key string, v float64) Field {
	return Field{Key: key, Val: formatFloat(v)}
}

// An Event is one traced occurrence.
type Event struct {
	T      SimTime
	Kind   string
	Fields []Field
}

// A Stream is an ordered single-writer event buffer. A nil *Stream is a
// valid no-op sink, so instrumented code can call Event unconditionally.
type Stream struct {
	name   string
	id     uint64
	events []Event
}

// Event appends one event to the stream. Safe on a nil receiver (no-op).
func (s *Stream) Event(t SimTime, kind string, fields ...Field) {
	if s == nil {
		return
	}
	s.events = append(s.events, Event{T: t, Kind: kind, Fields: fields})
}

// Enabled reports whether events are being recorded — code paths that would
// do extra work just to build fields can skip it.
func (s *Stream) Enabled() bool { return s != nil }

// A Tracer owns a set of streams. The zero value is not usable; NewTracer.
type Tracer struct {
	mu      sync.Mutex
	streams []*Stream
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Stream creates a stream named name with a deterministic id (e.g. a spec
// or policy index). Callers must choose (name, id) pairs that are unique and
// independent of worker count — they are the merge key. Safe on a nil
// receiver: returns nil, which is a valid no-op stream.
func (t *Tracer) Stream(name string, id uint64) *Stream {
	if t == nil {
		return nil
	}
	s := &Stream{name: name, id: id}
	t.mu.Lock()
	t.streams = append(t.streams, s)
	t.mu.Unlock()
	return s
}

// WriteJSON writes every event as one JSON line:
//
//	{"stream":"campaign/main","id":3,"frame":9,"slot":0,"cw":0,"kind":"rebeam","attrs":{...}}
//
// Streams are ordered by (name, id) and events keep their append order, so
// the bytes are identical for any worker count that produced the same work.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	streams := make([]*Stream, len(t.streams))
	copy(streams, t.streams)
	t.mu.Unlock()
	sort.Slice(streams, func(i, j int) bool {
		if streams[i].name != streams[j].name {
			return streams[i].name < streams[j].name
		}
		return streams[i].id < streams[j].id
	})

	var sb strings.Builder
	for _, s := range streams {
		for _, e := range s.events {
			sb.Reset()
			sb.WriteString(`{"stream":`)
			sb.WriteString(strconv.Quote(s.name))
			sb.WriteString(`,"id":`)
			sb.WriteString(strconv.FormatUint(s.id, 10))
			sb.WriteString(`,"frame":`)
			sb.WriteString(strconv.FormatInt(e.T.Frame, 10))
			sb.WriteString(`,"slot":`)
			sb.WriteString(strconv.FormatInt(e.T.Slot, 10))
			sb.WriteString(`,"cw":`)
			sb.WriteString(strconv.FormatInt(e.T.Codeword, 10))
			sb.WriteString(`,"kind":`)
			sb.WriteString(strconv.Quote(e.Kind))
			sb.WriteString(`,"attrs":{`)
			for i, f := range e.Fields {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(strconv.Quote(f.Key))
				sb.WriteByte(':')
				sb.WriteString(strconv.Quote(f.Val))
			}
			sb.WriteString("}}\n")
			if _, err := io.WriteString(w, sb.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Events returns the total number of buffered events.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.streams {
		n += len(s.events)
	}
	return n
}

// active is the process-wide tracer the -trace-out flag installs; nil means
// tracing is off and every Stream call returns the no-op nil stream.
var active atomic.Pointer[Tracer]

// SetTracer installs (or, with nil, removes) the process-wide tracer.
func SetTracer(t *Tracer) { active.Store(t) }

// ActiveTracer returns the installed tracer, or nil when tracing is off.
// All of its methods are nil-safe, so call sites need no guard.
func ActiveTracer() *Tracer { return active.Load() }
