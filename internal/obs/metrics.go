// Package obs is the repository's stdlib-only observability layer. It keeps
// two clocks strictly apart:
//
//   - The metrics registry (this file, export.go) records engine-side
//     wall-clock facts: worker-pool occupancy, cache hit/miss counts, FFT
//     scratch reuse, tree-fit timings. Values are process-local diagnostics
//     and never feed simulation results, so the wall-clock reads here carry
//     //lint:wallclock annotations (see Stopwatch); libra-lint's determinism
//     analyzer flags unannotated time.Now and time.Since everywhere in the
//     library, including this package's own sim-time tracer, and its
//     clocksep analyzer proves no call path from the tracer reaches these
//     annotated readers.
//   - The simulation-time tracer (trace.go) records spans and events stamped
//     exclusively with deterministic frame/slot/codeword time, buffered per
//     deterministic stream and merged in stream order, so trace output is
//     byte-identical for any worker count.
//
// Metric naming follows Prometheus conventions:
// libra_<subsystem>_<noun>_<unit>, with _total for counters and base-unit
// suffixes (_seconds) for histograms. A metric name may carry a fixed label
// set in curly braces (e.g. `libra_adapt_ba_runs_total{algo="standard-sls"}`);
// the registry treats the full string as the key and the exporters emit it
// verbatim.
//
// The hot-path contract: Counter.Inc, Gauge.Add and Histogram.Observe are
// single atomic operations (plus a CAS loop for float sums), allocation-free,
// and safe for concurrent use. Instrumented packages register their metrics
// in package-level vars at init, so steady state costs no map lookups.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// A Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is an integer value that can go up and down (pool occupancy,
// queue depth). It additionally tracks the high-water mark seen since the
// last Reset, which is what a post-run snapshot needs: the interesting fact
// about a worker pool is its peak occupancy, not the zero it reads after
// Wait returns.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores v and raises the high-water mark if needed.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.raise(v)
}

// Add adds d (which may be negative) and returns nothing; the high-water
// mark observes the new value.
func (g *Gauge) Add(d int64) {
	g.raise(g.v.Add(d))
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark since the last Reset.
func (g *Gauge) Max() int64 { return g.max.Load() }

func (g *Gauge) raise(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// A FloatGauge is a float-valued gauge for statistics that are not integer
// counts (drift PSI, KS distance, windowed accuracy). It stores the value's
// IEEE-754 bits atomically and, like Gauge, tracks the high-water mark since
// the last Reset — for drift statistics the peak since start is exactly what
// a post-incident scrape needs.
type FloatGauge struct {
	v   atomic.Uint64 // float64 bits
	max atomic.Uint64 // float64 bits
}

// Set stores v and raises the high-water mark if needed.
func (g *FloatGauge) Set(v float64) {
	g.v.Store(math.Float64bits(v))
	for {
		old := g.max.Load()
		if v <= math.Float64frombits(old) || g.max.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Max returns the high-water mark since the last Reset.
func (g *FloatGauge) Max() float64 { return math.Float64frombits(g.max.Load()) }

// A Histogram counts observations into fixed buckets. Bucket bounds are set
// at registration and never change; Observe is lock-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets is the default bucket layout for timing histograms:
// 100 microseconds to ~5 seconds in roughly 3x steps.
var DurationBuckets = []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 5}

// RatioBuckets is the default bucket layout for values in [0, 1].
var RatioBuckets = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}

// metricKind discriminates the registry's entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindFloatGauge
	kindHistogram
)

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	f    *FloatGauge
	h    *Histogram
}

// A Registry holds named metrics. Registration takes a lock; reads and
// updates of the registered metrics do not.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// Default is the process-wide registry the instrumented packages register
// into and the -metrics-out flag exports.
var Default = NewRegistry()

// Counter registers (or returns the already-registered) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.register(name, help, kindCounter)
	return e.c
}

// Gauge registers (or returns the already-registered) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(name, help, kindGauge)
	return e.g
}

// FloatGauge registers (or returns the already-registered) float gauge
// under name.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	e := r.register(name, help, kindFloatGauge)
	return e.f
}

// Histogram registers (or returns the already-registered) histogram under
// name with the given bucket upper bounds (ascending; an implicit +Inf
// bucket is appended).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		return e.h
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.entries[name] = &entry{name: name, help: help, kind: kindHistogram, h: h}
	return h
}

func (r *Registry) register(name, help string, kind metricKind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		return e
	}
	e := &entry{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindFloatGauge:
		e.f = &FloatGauge{}
	}
	r.entries[name] = e
	return e
}

// Reset zeroes every registered metric's value (registrations survive).
// Benchmarks and tests use it to measure deltas over a bounded workload.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		switch e.kind {
		case kindCounter:
			e.c.v.Store(0)
		case kindGauge:
			e.g.v.Store(0)
			e.g.max.Store(0)
		case kindFloatGauge:
			e.f.v.Store(0)
			e.f.max.Store(0)
		case kindHistogram:
			for i := range e.h.counts {
				e.h.counts[i].Store(0)
			}
			e.h.count.Store(0)
			e.h.sum.Store(0)
		}
	}
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewFloatGauge registers a float gauge in the Default registry.
func NewFloatGauge(name, help string) *FloatGauge { return Default.FloatGauge(name, help) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.Histogram(name, help, buckets)
}

// A Stopwatch measures one wall-clock duration for a timing histogram. It is
// the only sanctioned way for engine code to touch the wall clock: the
// time.Now calls live here, inside obs's metrics path, under verified
// //lint:wallclock annotations.
type Stopwatch struct {
	t0 time.Time
}

// StartTimer starts a stopwatch.
//
//lint:wallclock engine-side latency histograms measure real elapsed time
func StartTimer() Stopwatch { return Stopwatch{t0: time.Now()} }

// Observe records the elapsed seconds into h.
//
//lint:wallclock engine-side latency histograms measure real elapsed time
func (s Stopwatch) Observe(h *Histogram) {
	h.Observe(time.Since(s.t0).Seconds())
}
