package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the inclusive upper bound (le); +Inf for the last.
	UpperBound float64 `json:"le"`
	// Count is the cumulative number of observations <= UpperBound.
	Count uint64 `json:"count"`
}

// A Metric is one registry entry frozen at snapshot time.
type Metric struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	// Type is "counter", "gauge", or "histogram".
	Type string `json:"type"`
	// Value holds the counter or gauge value.
	Value float64 `json:"value,omitempty"`
	// Max holds a gauge's high-water mark since the last Reset.
	Max float64 `json:"max,omitempty"`
	// Count, Sum, Buckets describe a histogram.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot freezes every registered metric, sorted by name, so exports are
// deterministic for a given set of values.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	entries := make([]*entry, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		entries = append(entries, r.entries[name])
	}
	r.mu.Unlock()

	out := make([]Metric, 0, len(entries))
	for _, e := range entries {
		m := Metric{Name: e.name, Help: e.help}
		switch e.kind {
		case kindCounter:
			m.Type = "counter"
			m.Value = float64(e.c.Value())
		case kindGauge:
			m.Type = "gauge"
			m.Value = float64(e.g.Value())
			m.Max = float64(e.g.Max())
		case kindFloatGauge:
			m.Type = "gauge"
			m.Value = e.f.Value()
			m.Max = e.f.Max()
		case kindHistogram:
			m.Type = "histogram"
			m.Count = e.h.Count()
			m.Sum = e.h.Sum()
			m.Buckets = make([]Bucket, 0, len(e.h.counts))
			var cum uint64
			for i := range e.h.counts {
				cum += e.h.counts[i].Load()
				ub := math.Inf(1)
				if i < len(e.h.bounds) {
					ub = e.h.bounds[i]
				}
				m.Buckets = append(m.Buckets, Bucket{UpperBound: ub, Count: cum})
			}
		}
		out = append(out, m)
	}
	return out
}

// formatFloat renders a float the same way on every platform: shortest
// round-trip representation, with explicit +Inf/-Inf spellings matching the
// Prometheus text format.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// baseName strips a fixed label set ({...}) off a metric name, for the
// # HELP / # TYPE header lines.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labeledName splices extra label pairs (already in `k="v"` form) into a
// metric name that may or may not carry a label set.
func labeledName(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	l := strings.Join(labels, ",")
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + l + "}"
	}
	return name + "{" + l + "}"
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Metrics appear in sorted name order; HELP/TYPE
// headers are emitted once per base name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastBase := ""
	for _, m := range r.Snapshot() {
		base := baseName(m.Name)
		if base != lastBase {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, m.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, m.Type); err != nil {
				return err
			}
			lastBase = base
		}
		switch m.Type {
		case "histogram":
			for _, b := range m.Buckets {
				name := labeledName(m.Name, `le="`+formatFloat(b.UpperBound)+`"`)
				if _, err := fmt.Fprintf(w, "%s %d\n", strings.Replace(name, base, base+"_bucket", 1), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", strings.Replace(m.Name, base, base+"_sum", 1), formatFloat(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", strings.Replace(m.Name, base, base+"_count", 1), m.Count); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatFloat(m.Value)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", strings.Replace(m.Name, base, base+"_max", 1), formatFloat(m.Max)); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatFloat(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON writes the registry as JSON lines: one metric object per line,
// in sorted name order. The encoding is hand-rolled so field order (and
// therefore the bytes) is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	var sb strings.Builder
	for _, m := range r.Snapshot() {
		sb.Reset()
		sb.WriteString(`{"name":`)
		sb.WriteString(strconv.Quote(m.Name))
		sb.WriteString(`,"type":"`)
		sb.WriteString(m.Type)
		sb.WriteString(`"`)
		switch m.Type {
		case "histogram":
			sb.WriteString(`,"count":`)
			sb.WriteString(strconv.FormatUint(m.Count, 10))
			sb.WriteString(`,"sum":`)
			sb.WriteString(jsonFloat(m.Sum))
			sb.WriteString(`,"buckets":[`)
			for i, b := range m.Buckets {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(`{"le":`)
				if math.IsInf(b.UpperBound, 1) {
					sb.WriteString(`"+Inf"`)
				} else {
					sb.WriteString(jsonFloat(b.UpperBound))
				}
				sb.WriteString(`,"count":`)
				sb.WriteString(strconv.FormatUint(b.Count, 10))
				sb.WriteByte('}')
			}
			sb.WriteByte(']')
		case "gauge":
			sb.WriteString(`,"value":`)
			sb.WriteString(jsonFloat(m.Value))
			sb.WriteString(`,"max":`)
			sb.WriteString(jsonFloat(m.Max))
		default:
			sb.WriteString(`,"value":`)
			sb.WriteString(jsonFloat(m.Value))
		}
		sb.WriteString("}\n")
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonFloat renders a float as a JSON number (Inf/NaN, invalid in JSON,
// become quoted strings).
func jsonFloat(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return strconv.Quote(formatFloat(v))
	}
	return formatFloat(v)
}
