package obs

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux (opt-in listener)
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
)

// CLI bundles the observability flags every libra command exposes:
//
//	-metrics-out FILE   write a metrics snapshot on exit (.prom text or .json lines)
//	-trace-out FILE     record the simulation-time trace and write it on exit
//	-cpuprofile FILE    write a CPU profile
//	-memprofile FILE    write a heap profile on exit
//	-pprof ADDR         serve net/http/pprof on ADDR (e.g. localhost:6060)
//
// Usage: c := obs.RegisterCLI(flag.CommandLine); flag.Parse();
// c.Start(); defer/explicit c.Stop().
type CLI struct {
	MetricsOut string
	TraceOut   string
	CPUProfile string
	MemProfile string
	PprofAddr  string

	cpuFile *os.File
	tracer  *Tracer
}

// RegisterCLI registers the observability flags on fs and returns the
// bundle that will act on them after parsing.
func RegisterCLI(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write a metrics snapshot to this file on exit (Prometheus text, or JSON lines with .json/.jsonl)")
	fs.StringVar(&c.TraceOut, "trace-out", "", "record the simulation-time trace and write it to this file on exit (JSON lines)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return c
}

// Tracer returns the tracer installed by Start, or nil when -trace-out was
// not given.
func (c *CLI) Tracer() *Tracer { return c.tracer }

// Start begins CPU profiling, starts the optional pprof listener, and
// installs the process-wide tracer when -trace-out was given.
func (c *CLI) Start() error {
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		c.cpuFile = f
	}
	if c.PprofAddr != "" {
		go func() {
			// The listener is best-effort diagnostics; a bind failure must
			// not kill the run.
			if err := http.ListenAndServe(c.PprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "obs: pprof listener: %v\n", err)
			}
		}()
	}
	if c.TraceOut != "" {
		c.tracer = NewTracer()
		SetTracer(c.tracer)
	}
	return nil
}

// Stop finishes profiles and writes the metrics and trace outputs. It is
// idempotent; commands call it once on their success path (a log.Fatal exit
// simply loses the outputs, like any crash would).
func (c *CLI) Stop() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(c.cpuFile.Close())
		c.cpuFile = nil
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			keep(fmt.Errorf("obs: -memprofile: %w", err))
		} else {
			runtime.GC()
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
		c.MemProfile = ""
	}
	if c.MetricsOut != "" {
		keep(writeFileWith(c.MetricsOut, func(f io.Writer) error {
			if strings.HasSuffix(c.MetricsOut, ".json") || strings.HasSuffix(c.MetricsOut, ".jsonl") {
				return Default.WriteJSON(f)
			}
			return Default.WritePrometheus(f)
		}))
		c.MetricsOut = ""
	}
	if c.TraceOut != "" && c.tracer != nil {
		keep(writeFileWith(c.TraceOut, c.tracer.WriteJSON))
		SetTracer(nil)
		c.TraceOut = ""
	}
	return firstErr
}

// writeFileWith creates path ("-" means stdout), runs write, and closes it.
func writeFileWith(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
