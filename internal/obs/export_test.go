package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the exporter golden files")

// goldenRegistry builds a registry with fixed values covering every metric
// kind, labeled names, and special floats.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("libra_demo_cache_hits_total", "cache hits on the demo path")
	c.Add(41)
	cl := r.Counter(`libra_demo_runs_total{algo="standard-sls"}`, "runs per algorithm")
	cl.Add(3)
	cl2 := r.Counter(`libra_demo_runs_total{algo="txonly-sls"}`, "runs per algorithm")
	cl2.Add(2)
	g := r.Gauge("libra_demo_workers_active", "worker-pool occupancy")
	g.Set(3)
	g.Set(1)
	fg := r.FloatGauge("libra_demo_drift_psi", "windowed drift statistic")
	fg.Set(0.375)
	fg.Set(0.125)
	h := r.Histogram("libra_demo_fit_seconds", "fit wall time", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(0.5)
	return r
}

func TestExportGolden(t *testing.T) {
	r := goldenRegistry()
	cases := []struct {
		file  string
		write func(*bytes.Buffer) error
	}{
		{"golden.prom", func(b *bytes.Buffer) error { return r.WritePrometheus(b) }},
		{"golden.jsonl", func(b *bytes.Buffer) error { return r.WriteJSON(b) }},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.write(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s drifted from golden:\n--- got ---\n%s--- want ---\n%s", tc.file, buf.Bytes(), want)
			}
		})
	}
}

// TestExportDeterministic re-exports the same registry and requires
// identical bytes — the property the trace/metrics reproducibility contract
// rests on.
func TestExportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of equal registries produced different bytes")
	}
}
