package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Stream("x", 0)
	if s.Enabled() {
		t.Error("nil tracer must hand out disabled streams")
	}
	s.Event(SimTime{Frame: 1}, "noop", F("k", "v")) // must not panic
	if err := tr.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 0 {
		t.Error("nil tracer reports events")
	}
}

// fill records a fixed event pattern into n streams, creating the streams
// in the order ids arrives — simulating work stolen by arbitrary workers.
func fill(tr *Tracer, ids []int) {
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := tr.Stream("unit", uint64(id))
			for f := 0; f < 3; f++ {
				s.Event(SimTime{Frame: int64(f), Slot: int64(id)}, "step",
					Fint("unit", int64(id)), Ffloat("v", float64(id)+0.5))
			}
		}(id)
	}
	wg.Wait()
}

// TestTraceWorkerOrderInvariance is the core determinism property: the same
// per-stream work produces identical bytes no matter which goroutine ran
// first or in what order streams were created.
func TestTraceWorkerOrderInvariance(t *testing.T) {
	a := NewTracer()
	fill(a, []int{0, 1, 2, 3, 4, 5, 6, 7})
	b := NewTracer()
	fill(b, []int{7, 3, 5, 1, 6, 0, 2, 4})

	var ab, bb bytes.Buffer
	if err := a.WriteJSON(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Error("trace bytes depend on stream creation order")
	}
	if a.Events() != 24 {
		t.Errorf("events = %d, want 24", a.Events())
	}
}

func TestTraceJSONShape(t *testing.T) {
	tr := NewTracer()
	s := tr.Stream("sim/LiBRA", 2)
	s.Event(SimTime{Frame: 4, Slot: 7, Codeword: 1}, "mcs_down",
		Fint("from", 5), Fint("to", 4), F("why", `probe "loss"`))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"stream":"sim/LiBRA","id":2,"frame":4,"slot":7,"cw":1,"kind":"mcs_down","attrs":{"from":"5","to":"4","why":"probe \"loss\""}}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("line = %q, want %q", got, want)
	}
}

func TestActiveTracer(t *testing.T) {
	if ActiveTracer() != nil {
		t.Fatal("tracer installed at test start")
	}
	tr := NewTracer()
	SetTracer(tr)
	defer SetTracer(nil)
	if ActiveTracer() != tr {
		t.Error("ActiveTracer did not return the installed tracer")
	}
	ActiveTracer().Stream("a", 0).Event(SimTime{}, "e")
	if tr.Events() != 1 {
		t.Error("event via ActiveTracer not recorded")
	}
	lines := func() int {
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return strings.Count(buf.String(), "\n")
	}
	if lines() != 1 {
		t.Error("expected exactly one trace line")
	}
}
