package decisionlog

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"github.com/libra-wlan/libra/internal/obs"
)

// LDL1 on-disk layout (all integers little-endian, mirroring libra-ds):
//
//	header   "LDL1" | u8 version=1 | u8 nfeat | u16 reserved |
//	         u32 chunkRecords | u32 reserved2                   (16 bytes)
//	chunk    "CHNK" | u32 records | u32 payloadLen | payload    (repeated)
//	footer   "LDLF" | u64 totalRecords | u64 drops | u32 chunkCount |
//	         chunkCount x 32-byte SHA-256 over each chunk payload
//	trailer  u64 footerOffset | "LDL1FTR\0"                     (16 bytes)
//
// The reader is fail-closed: a bad magic, version, frame bound, chunk-count
// or record-count mismatch, or checksum mismatch yields ErrCorrupt — a
// truncated or bit-flipped audit log is evidence, never silently partial
// data.
var (
	ldlMagic   = [4]byte{'L', 'D', 'L', '1'}
	ldlChunk   = [4]byte{'C', 'H', 'N', 'K'}
	ldlFooter  = [4]byte{'L', 'D', 'L', 'F'}
	ldlTrailer = [8]byte{'L', 'D', 'L', '1', 'F', 'T', 'R', 0}
)

const (
	ldlVersion    = 1
	ldlHeadBytes  = 16
	ldlTrailBytes = 16
)

// ErrCorrupt reports an audit log that fails structural or checksum
// validation.
var ErrCorrupt = errors.New("decisionlog: corrupt audit log")

var (
	obsAuditRecords = obs.NewCounter("libra_audit_records_total", "decision records written to the audit log")
	obsAuditDrops   = obs.NewCounter("libra_audit_drops_total", "decision records dropped because an audit ring was full")
	obsAuditBytes   = obs.NewCounter("libra_audit_bytes_total", "bytes written to the audit log")
	obsAuditChunks  = obs.NewCounter("libra_audit_chunks_total", "chunks flushed to the audit log")
)

// Config sizes a Log.
type Config struct {
	// NFeat is the per-record feature count (1..MaxFeatures).
	NFeat int
	// Rings is the number of independent producer rings — one per serve
	// shard, so shards never contend on a head CAS. Default 1.
	Rings int
	// RingRecords is each ring's capacity (rounded up to a power of two).
	// Default 4096.
	RingRecords int
	// ChunkRecords is the flush granularity of the writer. Default 1024.
	ChunkRecords int
	// Sample is the deterministic 1-in-N sampling divisor; 0 or 1 keeps
	// every decision.
	Sample uint64
	// OnRecord, when set, is invoked by the writer goroutine — never a
	// producer — for each drained record, in drain order, before the bytes
	// are chunked. Live drift monitors tap the stream here, off the decide
	// hot path and single-threaded by construction. The *Record is scratch:
	// valid only for the duration of the call.
	OnRecord func(*Record)
}

// A Log drains per-shard rings into one LDL1 stream. Producers call
// Sampled + Publish on the decide hot path; a single writer goroutine,
// nudged by a channel (never a timer — the package is //lint:clockfree),
// encodes chunks and checksums. Close flushes, writes the footer and
// trailer, and returns the first write error.
//
// Shutdown contract: all producers must have stopped before Close; the
// serving layer guarantees this by draining its shards first.
type Log struct {
	w     io.Writer
	cfg   Config
	rings []*Ring

	notify chan struct{} // producers nudge, capacity 1, never closed
	quit   chan struct{}
	done   chan struct{}

	// writer-goroutine state
	buf     []byte
	scratch Record
	bufRecs uint32
	sums    [][sha256.Size]byte
	off     int64
	total   uint64
	werr    error

	closeOnce sync.Once
	closeErr  error
}

// New writes the LDL1 header to w and starts the writer goroutine.
func New(w io.Writer, cfg Config) (*Log, error) {
	if cfg.NFeat < 1 || cfg.NFeat > MaxFeatures {
		return nil, fmt.Errorf("decisionlog: NFeat %d out of range [1,%d]", cfg.NFeat, MaxFeatures)
	}
	if cfg.Rings < 1 {
		cfg.Rings = 1
	}
	if cfg.RingRecords < 1 {
		cfg.RingRecords = 4096
	}
	if cfg.ChunkRecords < 1 {
		cfg.ChunkRecords = 1024
	}
	l := &Log{
		w:      w,
		cfg:    cfg,
		rings:  make([]*Ring, cfg.Rings),
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
		buf:    make([]byte, 0, cfg.ChunkRecords*RecordBytes(cfg.NFeat)),
	}
	for i := range l.rings {
		l.rings[i] = NewRing(cfg.RingRecords, cfg.NFeat)
	}
	var head [ldlHeadBytes]byte
	copy(head[:4], ldlMagic[:])
	head[4] = ldlVersion
	head[5] = uint8(cfg.NFeat)
	binary.LittleEndian.PutUint32(head[8:], uint32(cfg.ChunkRecords))
	if _, err := w.Write(head[:]); err != nil {
		return nil, fmt.Errorf("decisionlog: writing header: %w", err)
	}
	l.off = ldlHeadBytes
	obsAuditBytes.Add(ldlHeadBytes)
	go l.run()
	return l, nil
}

// Sampled reports whether (reqID, linkID) falls in this log's deterministic
// sample.
//
//lint:noalloc sampling gate runs per decision on the hot path
func (l *Log) Sampled(reqID, linkID uint64) bool {
	return Sampled(l.cfg.Sample, reqID, linkID)
}

// Publish enqueues rec on ring (shard index, taken mod the ring count) and
// nudges the writer. A full ring drops the record; Publish never blocks.
//
//lint:noalloc runs on the decide hot path for every sampled decision
func (l *Log) Publish(ring int, rec *Record) bool {
	ok := l.rings[ring%len(l.rings)].Publish(rec)
	select {
	case l.notify <- struct{}{}:
	default:
	}
	return ok
}

// run is the single writer goroutine: drain every ring, flush full chunks,
// sleep on the notify channel. No timer — flush cadence follows publish
// cadence, keeping the package clock-free.
func (l *Log) run() {
	defer close(l.done)
	sink := l.appendRecord // bind once; drain runs per nudge
	for {
		for _, r := range l.rings {
			r.drain(sink)
		}
		l.flushFull()
		select {
		case <-l.notify:
		case <-l.quit:
			for _, r := range l.rings {
				r.drain(sink)
			}
			l.flushFull()
			l.flushChunk() // partial tail chunk
			return
		}
	}
}

// appendRecord copies one encoded record into the chunk buffer and feeds
// the optional tap. Writer-goroutine only.
func (l *Log) appendRecord(encoded []byte) {
	if l.cfg.OnRecord != nil {
		if l.scratch.decodeFrom(encoded, l.cfg.NFeat) == nil {
			l.cfg.OnRecord(&l.scratch)
		}
	}
	l.buf = append(l.buf, encoded...)
	l.bufRecs++
	l.total++
}

// flushFull writes chunks while the buffer holds at least ChunkRecords.
func (l *Log) flushFull() {
	for l.bufRecs >= uint32(l.cfg.ChunkRecords) {
		l.flushN(uint32(l.cfg.ChunkRecords))
	}
}

// flushChunk writes whatever the buffer holds as one final chunk.
func (l *Log) flushChunk() {
	if l.bufRecs > 0 {
		l.flushN(l.bufRecs)
	}
}

func (l *Log) flushN(recs uint32) {
	size := int(recs) * RecordBytes(l.cfg.NFeat)
	payload := l.buf[:size]
	var frame [12]byte
	copy(frame[:4], ldlChunk[:])
	binary.LittleEndian.PutUint32(frame[4:], recs)
	binary.LittleEndian.PutUint32(frame[8:], uint32(size))
	l.sums = append(l.sums, sha256.Sum256(payload))
	if l.werr == nil {
		if _, err := l.w.Write(frame[:]); err != nil {
			l.werr = fmt.Errorf("decisionlog: writing chunk frame: %w", err)
		} else if _, err := l.w.Write(payload); err != nil {
			l.werr = fmt.Errorf("decisionlog: writing chunk payload: %w", err)
		}
	}
	l.off += int64(len(frame)) + int64(size)
	l.buf = append(l.buf[:0], l.buf[size:]...)
	l.bufRecs -= recs
	obsAuditRecords.Add(uint64(recs))
	obsAuditChunks.Inc()
	obsAuditBytes.Add(uint64(len(frame) + size))
}

// Drops returns the records dropped across all rings so far.
func (l *Log) Drops() uint64 {
	var d uint64
	for _, r := range l.rings {
		d += r.Drops()
	}
	return d
}

// Close stops the writer (draining everything already published), writes
// the footer and trailer, and returns the first error. All producers must
// have stopped publishing before Close is called.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		close(l.quit)
		<-l.done
		drops := l.Drops()
		obsAuditDrops.Add(drops)
		ftr := make([]byte, 0, 4+8+8+4+len(l.sums)*sha256.Size)
		ftr = append(ftr, ldlFooter[:]...)
		ftr = binary.LittleEndian.AppendUint64(ftr, l.total)
		ftr = binary.LittleEndian.AppendUint64(ftr, drops)
		ftr = binary.LittleEndian.AppendUint32(ftr, uint32(len(l.sums)))
		for i := range l.sums {
			ftr = append(ftr, l.sums[i][:]...)
		}
		var trail []byte
		trail = binary.LittleEndian.AppendUint64(trail, uint64(l.off))
		trail = append(trail, ldlTrailer[:]...)
		if l.werr == nil {
			if _, err := l.w.Write(ftr); err != nil {
				l.werr = fmt.Errorf("decisionlog: writing footer: %w", err)
			} else if _, err := l.w.Write(trail); err != nil {
				l.werr = fmt.Errorf("decisionlog: writing trailer: %w", err)
			}
		}
		obsAuditBytes.Add(uint64(len(ftr) + len(trail)))
		l.closeErr = l.werr
	})
	return l.closeErr
}

// LogData is a fully validated in-memory audit log.
type LogData struct {
	// NFeat is the per-record feature width the log was written with.
	NFeat int
	// Records holds every record in on-disk (drain) order.
	Records []Record
	// Drops is the producer-side drop count recorded in the footer.
	Drops uint64
}

// Read validates and decodes a complete LDL1 image. Any structural or
// checksum failure returns an error wrapping ErrCorrupt.
func Read(data []byte) (*LogData, error) {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if len(data) < ldlHeadBytes+ldlTrailBytes {
		return nil, corrupt("%d bytes is shorter than header+trailer", len(data))
	}
	if [4]byte(data[:4]) != ldlMagic {
		return nil, corrupt("bad magic %q", data[:4])
	}
	if data[4] != ldlVersion {
		return nil, corrupt("unsupported version %d", data[4])
	}
	nfeat := int(data[5])
	if nfeat < 1 || nfeat > MaxFeatures {
		return nil, corrupt("feature count %d out of range", nfeat)
	}
	trail := data[len(data)-ldlTrailBytes:]
	if [8]byte(trail[8:]) != ldlTrailer {
		return nil, corrupt("bad trailer magic %q", trail[8:])
	}
	ftrOff := binary.LittleEndian.Uint64(trail[:8])
	if ftrOff < ldlHeadBytes || ftrOff > uint64(len(data)-ldlTrailBytes) {
		return nil, corrupt("footer offset %d out of bounds", ftrOff)
	}
	ftr := data[ftrOff : len(data)-ldlTrailBytes]
	if len(ftr) < 4+8+8+4 {
		return nil, corrupt("footer truncated at %d bytes", len(ftr))
	}
	if [4]byte(ftr[:4]) != ldlFooter {
		return nil, corrupt("bad footer magic %q", ftr[:4])
	}
	total := binary.LittleEndian.Uint64(ftr[4:])
	drops := binary.LittleEndian.Uint64(ftr[12:])
	chunkCount := binary.LittleEndian.Uint32(ftr[20:])
	if uint64(len(ftr)) != 24+uint64(chunkCount)*sha256.Size {
		return nil, corrupt("footer holds %d bytes, want %d for %d chunk sums",
			len(ftr), 24+uint64(chunkCount)*sha256.Size, chunkCount)
	}
	sums := ftr[24:]

	recBytes := RecordBytes(nfeat)
	out := &LogData{NFeat: nfeat, Drops: drops}
	off := uint64(ldlHeadBytes)
	for ci := uint32(0); ci < chunkCount; ci++ {
		if off+12 > ftrOff {
			return nil, corrupt("chunk %d frame extends past footer", ci)
		}
		frame := data[off : off+12]
		if [4]byte(frame[:4]) != ldlChunk {
			return nil, corrupt("chunk %d: bad magic %q", ci, frame[:4])
		}
		recs := binary.LittleEndian.Uint32(frame[4:])
		size := binary.LittleEndian.Uint32(frame[8:])
		if uint64(size) != uint64(recs)*uint64(recBytes) {
			return nil, corrupt("chunk %d: %d records but %d payload bytes", ci, recs, size)
		}
		if off+12+uint64(size) > ftrOff {
			return nil, corrupt("chunk %d payload extends past footer", ci)
		}
		payload := data[off+12 : off+12+uint64(size)]
		if sha256.Sum256(payload) != [sha256.Size]byte(sums[ci*sha256.Size:(ci+1)*sha256.Size]) {
			return nil, corrupt("chunk %d: checksum mismatch", ci)
		}
		for i := uint32(0); i < recs; i++ {
			var r Record
			if err := r.decodeFrom(payload[int(i)*recBytes:], nfeat); err != nil {
				return nil, corrupt("chunk %d record %d: %v", ci, i, err)
			}
			out.Records = append(out.Records, r)
		}
		off += 12 + uint64(size)
	}
	if off != ftrOff {
		return nil, corrupt("%d trailing bytes between chunks and footer", ftrOff-off)
	}
	if uint64(len(out.Records)) != total {
		return nil, corrupt("footer says %d records, chunks hold %d", total, len(out.Records))
	}
	return out, nil
}

// ReadFile loads and validates an LDL1 file.
func ReadFile(path string) (*LogData, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Read(data)
}

// CanonicalDigest hashes the worker-count-invariant view of a record set:
// latency fields zeroed (they are wall-clock measurements), records sorted
// by SortCanonical, each re-encoded at nfeat features. Two runs that served
// the same sampled decisions produce the same digest regardless of worker,
// connection, or drain interleaving.
func CanonicalDigest(recs []Record, nfeat int) [sha256.Size]byte {
	cp := make([]Record, len(recs))
	copy(cp, recs)
	for i := range cp {
		cp[i].LatAdmissionNs = 0
		cp[i].LatQueueNs = 0
		cp[i].LatCoalesceNs = 0
		cp[i].LatPredictNs = 0
		cp[i].LatEncodeNs = 0
	}
	SortCanonical(cp)
	h := sha256.New()
	buf := make([]byte, RecordBytes(nfeat))
	for i := range cp {
		cp[i].encodeInto(buf, nfeat)
		h.Write(buf)
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}
