package decisionlog

import "sync/atomic"

// A Ring is a bounded multi-producer single-consumer queue of encoded
// records over one flat byte slab. Producers (decide-path goroutines) claim
// slots with a CAS on the head and hand the slot to the consumer by
// advancing the slot's sequence; the single drainer goroutine consumes in
// slot order. A full ring drops: Publish never blocks and never allocates,
// so audit emission can lag the decide path but never stall it.
//
// The design is the classic bounded MPMC sequence ring restricted to one
// consumer: slot i carries an atomic sequence, initialized to i. A producer
// may claim head h when seq(h&mask) == h, publishing sets it to h+1, and
// the consumer at tail t waits for t+1 and releases the slot by storing
// t+cap for the producer one lap ahead.
type Ring struct {
	mask  uint64
	size  int // encoded record width
	nfeat int
	seq   []atomic.Uint64
	slab  []byte
	head  atomic.Uint64
	tail  uint64 // consumer-only
	drops atomic.Uint64
}

// NewRing returns a ring holding capacity (rounded up to a power of two)
// records of nfeat features each.
func NewRing(capacity, nfeat int) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	r := &Ring{
		mask:  uint64(c - 1),
		size:  RecordBytes(nfeat),
		nfeat: nfeat,
		seq:   make([]atomic.Uint64, c),
		slab:  make([]byte, c*RecordBytes(nfeat)),
	}
	for i := range r.seq {
		r.seq[i].Store(uint64(i))
	}
	return r
}

// Publish encodes rec into a claimed slot. It returns false — counting the
// drop — when the ring is full; it never blocks.
//
//lint:noalloc runs on the decide hot path for every sampled decision
func (r *Ring) Publish(rec *Record) bool {
	for {
		h := r.head.Load()
		slot := &r.seq[h&r.mask]
		s := slot.Load()
		switch {
		case s == h:
			if !r.head.CompareAndSwap(h, h+1) {
				continue // lost the claim race; retry
			}
			off := int(h&r.mask) * r.size
			rec.encodeInto(r.slab[off:off+r.size], r.nfeat)
			slot.Store(h + 1)
			return true
		case s < h:
			// The consumer has not released this slot: ring full.
			r.drops.Add(1)
			return false
		default:
			// Another producer claimed h first; reload head and retry.
		}
	}
}

// drain invokes fn for each published record, in slot order, until the ring
// is empty. Single-consumer: only the Log's writer goroutine may call it.
// The byte slice passed to fn aliases the slab and is only valid until fn
// returns.
func (r *Ring) drain(fn func(encoded []byte)) int {
	n := 0
	for {
		slot := &r.seq[r.tail&r.mask]
		if slot.Load() != r.tail+1 {
			return n
		}
		off := int(r.tail&r.mask) * r.size
		fn(r.slab[off : off+r.size])
		slot.Store(r.tail + r.mask + 1)
		r.tail++
		n++
	}
}

// Drops returns the number of records dropped because the ring was full.
func (r *Ring) Drops() uint64 { return r.drops.Load() }
