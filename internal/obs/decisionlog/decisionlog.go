// Package decisionlog is the serve fleet's per-decision audit stream: every
// served decision — feature vector, predicted action, model version, shard,
// and per-stage latencies — becomes one fixed-width record in a bounded
// per-shard ring, drained by a single writer goroutine into a checksummed
// binary log ("LDL1", mirroring the libra-ds container discipline: LE
// fixed-width frames, a footer with a SHA-256 per chunk, a seekable
// trailer, and a fail-closed reader).
//
// The hot-path contract: Publish is //lint:noalloc and never blocks — a
// full ring drops the record and counts the drop, so a stalled disk can
// slow the audit stream but never the decide path. Deterministic 1/N
// sampling (Sampled) keys on request identity, not arrival order, so the
// sampled record SET is identical for any worker or connection count; the
// canonical digest (latencies zeroed, records sorted) is then byte-identical
// across runs too.
//
// The package is //lint:clockfree: stage latencies arrive as plain u32 data
// stamped by the serving layer under its own //lint:wallclock sanctions.
// Nothing here — ring, drain loop, container writer — may read a clock, and
// the clocksep analyzer proves it.
//
//lint:clockfree audit log bytes must depend on publish order, not arrival time
package decisionlog

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"
)

// Record kinds.
const (
	// KindDecision is a served decision (features, action, latencies).
	KindDecision = 1
	// KindTruth is a delayed ground-truth join: Action carries the true
	// label for the (ReqID, LinkID) decision; features and latencies are
	// zero.
	KindTruth = 2
)

// MaxFeatures bounds a record's feature vector (the campaign uses 7).
const MaxFeatures = 16

// recHeadBytes is the fixed prefix before the feature columns.
const recHeadBytes = 44

// RecordBytes returns the encoded width of a record with nfeat features.
func RecordBytes(nfeat int) int { return recHeadBytes + 4*nfeat }

// Record is one audit-stream entry.
//
//	off  size  field
//	0    u8    kind     (1 decision, 2 truth)
//	1    u8    action   (predicted action; true label for truth records)
//	2    u16   shard
//	4    u32   model_id (registry version that answered; 0 for truth)
//	8    u64   req_id
//	16   u64   link_id
//	24   u32   lat_admission_ns  (transport read -> admission queue)
//	28   u32   lat_queue_ns      (enqueue -> dispatcher dequeue)
//	32   u32   lat_coalesce_ns   (dequeue -> batch capture)
//	36   u32   lat_predict_ns    (model walk, per batch)
//	40   u32   lat_encode_ns     (result ready -> response bytes written)
//	44   f32 x nfeat feature vector
type Record struct {
	Kind    uint8
	Action  uint8
	Shard   uint16
	ModelID uint32
	ReqID   uint64
	LinkID  uint64

	LatAdmissionNs uint32
	LatQueueNs     uint32
	LatCoalesceNs  uint32
	LatPredictNs   uint32
	LatEncodeNs    uint32

	Feat [MaxFeatures]float32
}

// encodeInto serializes the record's first nfeat features into dst, which
// must hold RecordBytes(nfeat).
//
//lint:noalloc runs inside Publish on the decide hot path
func (r *Record) encodeInto(dst []byte, nfeat int) {
	dst[0] = r.Kind
	dst[1] = r.Action
	binary.LittleEndian.PutUint16(dst[2:], r.Shard)
	binary.LittleEndian.PutUint32(dst[4:], r.ModelID)
	binary.LittleEndian.PutUint64(dst[8:], r.ReqID)
	binary.LittleEndian.PutUint64(dst[16:], r.LinkID)
	binary.LittleEndian.PutUint32(dst[24:], r.LatAdmissionNs)
	binary.LittleEndian.PutUint32(dst[28:], r.LatQueueNs)
	binary.LittleEndian.PutUint32(dst[32:], r.LatCoalesceNs)
	binary.LittleEndian.PutUint32(dst[36:], r.LatPredictNs)
	binary.LittleEndian.PutUint32(dst[40:], r.LatEncodeNs)
	for i := 0; i < nfeat; i++ {
		binary.LittleEndian.PutUint32(dst[recHeadBytes+4*i:], math.Float32bits(r.Feat[i]))
	}
}

// errRecordTruncated guards decodeFrom against short slices.
var errRecordTruncated = errors.New("decisionlog: truncated record")

// decodeFrom parses one encoded record of nfeat features out of src.
func (r *Record) decodeFrom(src []byte, nfeat int) error {
	if len(src) < RecordBytes(nfeat) || nfeat > MaxFeatures {
		return errRecordTruncated
	}
	r.Kind = src[0]
	r.Action = src[1]
	r.Shard = binary.LittleEndian.Uint16(src[2:])
	r.ModelID = binary.LittleEndian.Uint32(src[4:])
	r.ReqID = binary.LittleEndian.Uint64(src[8:])
	r.LinkID = binary.LittleEndian.Uint64(src[16:])
	r.LatAdmissionNs = binary.LittleEndian.Uint32(src[24:])
	r.LatQueueNs = binary.LittleEndian.Uint32(src[28:])
	r.LatCoalesceNs = binary.LittleEndian.Uint32(src[32:])
	r.LatPredictNs = binary.LittleEndian.Uint32(src[36:])
	r.LatEncodeNs = binary.LittleEndian.Uint32(src[40:])
	for i := range r.Feat {
		r.Feat[i] = 0
	}
	for i := 0; i < nfeat; i++ {
		r.Feat[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[recHeadBytes+4*i:]))
	}
	return nil
}

// mix64 is the splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
//
//lint:noalloc pure integer math on the decide hot path
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sampled reports whether the (reqID, linkID) decision falls in the 1-in-n
// deterministic sample. n <= 1 samples everything. The predicate depends
// only on request identity — never on arrival order, worker, shard, or
// connection — so the sampled record set is invariant across worker counts,
// and applying the same predicate to delayed ground-truth joins keeps truth
// records joinable with their decisions.
//
//lint:noalloc sampling gate runs per decision on the hot path
func Sampled(n uint64, reqID, linkID uint64) bool {
	if n <= 1 {
		return true
	}
	return mix64(reqID^mix64(linkID))%n == 0
}

// SortCanonical orders records by (ReqID, LinkID, Kind, Shard, ModelID,
// Action) — a total order over the deterministic fields, independent of the
// interleaving the rings happened to drain in. Equal-key records are
// identical once latencies are zeroed, so the canonical byte stream is
// well-defined even with duplicates.
func SortCanonical(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		switch {
		case a.ReqID != b.ReqID:
			return a.ReqID < b.ReqID
		case a.LinkID != b.LinkID:
			return a.LinkID < b.LinkID
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.Shard != b.Shard:
			return a.Shard < b.Shard
		case a.ModelID != b.ModelID:
			return a.ModelID < b.ModelID
		default:
			return a.Action < b.Action
		}
	})
}
