package decisionlog

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/libra-wlan/libra/internal/testutil"
)

// mkRecord builds a deterministic record keyed by reqID.
func mkRecord(reqID uint64) Record {
	r := Record{
		Kind:         KindDecision,
		Action:       uint8(reqID % 5),
		Shard:        uint16(reqID % 3),
		ModelID:      uint32(1 + reqID%2),
		ReqID:        reqID,
		LinkID:       reqID * 31,
		LatQueueNs:   uint32(100 * reqID),
		LatPredictNs: uint32(50 * reqID),
	}
	for i := 0; i < 7; i++ {
		r.Feat[i] = float32(reqID)*0.5 + float32(i)
	}
	return r
}

func TestRecordRoundTrip(t *testing.T) {
	const nfeat = 7
	in := mkRecord(42)
	buf := make([]byte, RecordBytes(nfeat))
	in.encodeInto(buf, nfeat)
	var out Record
	if err := out.decodeFrom(buf, nfeat); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	if err := out.decodeFrom(buf[:RecordBytes(nfeat)-1], nfeat); err == nil {
		t.Fatal("decode of truncated record succeeded")
	}
}

// TestLogRoundTrip drives a Log with concurrent producers across several
// rings and validates the re-read image: record count, drop count, and
// per-record contents.
func TestLogRoundTrip(t *testing.T) {
	const (
		nfeat = 7
		total = 5000
		procs = 4
	)
	var buf bytes.Buffer
	l, err := New(&buf, Config{NFeat: nfeat, Rings: 3, RingRecords: 1 << 14, ChunkRecords: 256})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for id := p; id < total; id += procs {
				rec := mkRecord(uint64(id))
				if !l.Publish(int(rec.Shard), &rec) {
					t.Errorf("publish %d dropped despite oversized ring", id)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Read(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.NFeat != nfeat || got.Drops != 0 || len(got.Records) != total {
		t.Fatalf("got nfeat=%d drops=%d records=%d, want %d/0/%d",
			got.NFeat, got.Drops, len(got.Records), nfeat, total)
	}
	SortCanonical(got.Records)
	for i, r := range got.Records {
		if want := mkRecord(uint64(i)); r != want {
			t.Fatalf("record %d mismatch:\n got=%+v\nwant=%+v", i, r, want)
		}
	}
}

// TestCanonicalDigestWorkerInvariant publishes the same sampled record set
// under different producer counts, ring counts, and interleavings and
// requires identical canonical digests — the property CI's drift-smoke cmp
// rests on.
func TestCanonicalDigestWorkerInvariant(t *testing.T) {
	const nfeat = 7
	run := func(procs, rings int, seed int64) [32]byte {
		var buf bytes.Buffer
		l, err := New(&buf, Config{NFeat: nfeat, Rings: rings, RingRecords: 1 << 13, ChunkRecords: 128, Sample: 4})
		if err != nil {
			t.Fatal(err)
		}
		ids := rand.New(rand.NewSource(seed)).Perm(4000)
		var wg sync.WaitGroup
		per := (len(ids) + procs - 1) / procs
		for p := 0; p < procs; p++ {
			lo, hi := p*per, min((p+1)*per, len(ids))
			wg.Add(1)
			go func(part []int) {
				defer wg.Done()
				for _, id := range part {
					rec := mkRecord(uint64(id))
					if !l.Sampled(rec.ReqID, rec.LinkID) {
						continue
					}
					l.Publish(int(rec.Shard), &rec)
				}
			}(ids[lo:hi])
		}
		wg.Wait()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := Read(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Records) == 0 || len(got.Records) == 4000 {
			t.Fatalf("sampling produced %d of 4000 records", len(got.Records))
		}
		return CanonicalDigest(got.Records, nfeat)
	}
	base := run(1, 1, 1)
	for _, c := range []struct {
		procs, rings int
		seed         int64
	}{{4, 1, 2}, {8, 3, 3}, {2, 2, 4}} {
		if got := run(c.procs, c.rings, c.seed); got != base {
			t.Errorf("digest diverged at procs=%d rings=%d: %x vs %x", c.procs, c.rings, got, base)
		}
	}
}

// TestSampledDeterministic pins the sampling predicate: identity-keyed,
// independent of call order, and roughly 1/N dense.
func TestSampledDeterministic(t *testing.T) {
	if !Sampled(0, 1, 2) || !Sampled(1, 1, 2) {
		t.Fatal("n<=1 must sample everything")
	}
	hits := 0
	for id := uint64(0); id < 8000; id++ {
		a := Sampled(8, id, id*31)
		b := Sampled(8, id, id*31)
		if a != b {
			t.Fatalf("Sampled unstable for id %d", id)
		}
		if a {
			hits++
		}
	}
	if hits < 700 || hits > 1300 {
		t.Fatalf("1/8 sampling hit %d of 8000", hits)
	}
}

func TestRingDropsWhenFull(t *testing.T) {
	r := NewRing(8, 7)
	rec := mkRecord(1)
	for i := 0; i < 8; i++ {
		if !r.Publish(&rec) {
			t.Fatalf("publish %d dropped below capacity", i)
		}
	}
	if r.Publish(&rec) {
		t.Fatal("publish into a full ring succeeded")
	}
	if r.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", r.Drops())
	}
	n := r.drain(func([]byte) {})
	if n != 8 {
		t.Fatalf("drained %d, want 8", n)
	}
	if !r.Publish(&rec) {
		t.Fatal("publish after drain dropped")
	}
}

// TestReadFailClosed corrupts a valid log in several ways; every mutation
// must yield ErrCorrupt, never partial data.
func TestReadFailClosed(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, Config{NFeat: 7, ChunkRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 100; id++ {
		rec := mkRecord(uint64(id))
		l.Publish(0, &rec)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := Read(good); err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, f func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		b = f(b)
		if _, err := Read(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	mutate("flipped payload byte", func(b []byte) []byte { b[ldlHeadBytes+12+5] ^= 0x40; return b })
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("bad version", func(b []byte) []byte { b[4] = 9; return b })
	mutate("truncated tail", func(b []byte) []byte { return b[:len(b)-40] })
	mutate("truncated to header", func(b []byte) []byte { return b[:ldlHeadBytes] })
	mutate("bad trailer magic", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	mutate("footer record count", func(b []byte) []byte {
		ftrOff := len(b) - ldlTrailBytes - (24 + 7*32) // 100 recs / 16 per chunk = 7 chunks
		b[ftrOff+4]++
		return b
	})
}

// TestPublishNoalloc is the runtime mirror of the static //lint:noalloc
// contract on the audit emit path: Sampled, Ring.Publish, and Log.Publish
// must not allocate once the log is warm.
func TestPublishNoalloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rec := mkRecord(7)

	if n := testing.AllocsPerRun(200, func() {
		if !Sampled(64, rec.ReqID, rec.LinkID) {
			_ = rec
		}
	}); n != 0 {
		t.Errorf("Sampled allocates %v per run", n)
	}

	ring := NewRing(1<<12, 7)
	if n := testing.AllocsPerRun(200, func() { ring.Publish(&rec) }); n != 0 {
		t.Errorf("Ring.Publish allocates %v per run", n)
	}

	var buf bytes.Buffer
	l, err := New(&buf, Config{NFeat: 7, RingRecords: 1 << 14, ChunkRecords: 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if n := testing.AllocsPerRun(200, func() { l.Publish(0, &rec) }); n != 0 {
		t.Errorf("Log.Publish allocates %v per run", n)
	}
}
