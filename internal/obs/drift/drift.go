// Package drift computes streaming, windowed distribution-shift statistics
// for the serve fleet's decision stream: per-feature PSI and KS distance
// against a frozen training reference profile, total-variation shift of the
// served action distribution, and accuracy-over-window from delayed
// ground-truth joins.
//
// Everything here is defined over record ORDER and window INDICES: a window
// closes after exactly WindowRecords decision records, statistics are pure
// arithmetic over integer bin counts accumulated in feed order, and the
// ground-truth join keys on (reqID, linkID) identity. Nothing reads a clock
// — the package carries //lint:clockfree and the clocksep analyzer proves
// it — so replaying the same canonically-ordered audit log yields the same
// windows, the same statistics, and the same trips, bit for bit, at any
// worker or shard count. Latency fields on records are ignored; they are
// someone else's wall-clock story.
//
//lint:clockfree drift statistics must replay byte-identically from record order alone
package drift

import (
	"fmt"
	"math"
	"sort"
)

// epsProp floors a bin proportion so PSI's logarithms stay finite when a
// bin is empty on one side.
const epsProp = 1e-6

// A FeatureRef is one feature's frozen training-time distribution: interior
// equal-frequency bin edges plus the reference proportion of training mass
// in each of the len(Edges)+1 bins.
type FeatureRef struct {
	Name  string    `json:"name"`
	Edges []float64 `json:"edges"`
	Props []float64 `json:"props"`
}

// A Profile is the frozen reference emitted at training time and loaded by
// the serve fleet and the offline reporter. Comparing live traffic against
// it is meaningful only while the model trained on it is serving.
type Profile struct {
	// Name identifies the training dataset (e.g. its campaign digest).
	Name string `json:"name"`
	// Features holds one reference per model input, in feature order.
	Features []FeatureRef `json:"features"`
	// Actions is the reference action (class) distribution.
	Actions []float64 `json:"actions"`
}

// Validate checks structural invariants: at least one feature, ascending
// edges, proportion vectors matching bin counts.
func (p *Profile) Validate() error {
	if len(p.Features) == 0 {
		return fmt.Errorf("drift: profile %q has no features", p.Name)
	}
	if len(p.Actions) == 0 {
		return fmt.Errorf("drift: profile %q has no action distribution", p.Name)
	}
	for _, f := range p.Features {
		if len(f.Props) != len(f.Edges)+1 {
			return fmt.Errorf("drift: profile %q feature %q: %d props for %d edges",
				p.Name, f.Name, len(f.Props), len(f.Edges))
		}
		if !sort.Float64sAreSorted(f.Edges) {
			return fmt.Errorf("drift: profile %q feature %q: edges not ascending", p.Name, f.Name)
		}
	}
	return nil
}

// binOf places v into one of len(edges)+1 bins: the count of edges at or
// below v (values equal to an edge land in the bin above it). The upper-
// bound rule keeps discrete features crisp: with edges {0, 1} the values
// {0, 1, 2} occupy three distinct bins.
func binOf(edges []float64, v float64) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if edges[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PSI is the population stability index between a reference and an observed
// proportion vector over the same bins: sum over bins of
// (obs-ref)*ln(obs/ref), with both proportions floored at epsProp. The
// conventional reading: < 0.1 stable, 0.1-0.25 moderate shift, > 0.25
// action required.
func PSI(ref, obs []float64) float64 {
	var s float64
	for i := range ref {
		r := math.Max(ref[i], epsProp)
		o := math.Max(obs[i], epsProp)
		s += (o - r) * math.Log(o/r)
	}
	return s
}

// KS is the Kolmogorov-Smirnov distance between two binned distributions:
// the maximum absolute difference of their cumulative proportions.
func KS(ref, obs []float64) float64 {
	var cr, co, d float64
	for i := range ref {
		cr += ref[i]
		co += obs[i]
		if a := math.Abs(cr - co); a > d {
			d = a
		}
	}
	return d
}

// TV is the total-variation distance between two distributions over the
// same support: half the L1 difference.
func TV(ref, obs []float64) float64 {
	var s float64
	for i := range ref {
		s += math.Abs(ref[i] - obs[i])
	}
	return s / 2
}

// props converts integer bin counts to proportions (zero counts stay zero;
// PSI applies its own floor).
func props(counts []uint64, n uint64) []float64 {
	out := make([]float64, len(counts))
	if n == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(n)
	}
	return out
}

// A WindowStat is one closed window's statistics.
type WindowStat struct {
	// Index is the zero-based window number.
	Index int
	// Records is the number of decision records in the window (the last
	// window of an offline run may be short).
	Records uint64
	// PSIMax is the largest per-feature PSI; PSIFeature names it.
	PSIMax     float64
	PSIFeature string
	// PSIPerFeature holds each feature's PSI in profile feature order.
	PSIPerFeature []float64
	// KSMax is the largest per-feature KS distance.
	KSMax float64
	// ActionTV is the total-variation distance between the window's served
	// action distribution and the profile's reference distribution.
	ActionTV float64
	// Joined and Correct count ground-truth joins landed in this window and
	// how many matched the served action; Accuracy is their ratio (NaN-free:
	// zero joins yields 0).
	Joined  uint64
	Correct uint64
	// Tripped reports whether this window crossed the PSI trip threshold.
	Tripped bool
}

// Accuracy returns Correct/Joined, or 0 with no joins.
func (w *WindowStat) Accuracy() float64 {
	if w.Joined == 0 {
		return 0
	}
	return float64(w.Correct) / float64(w.Joined)
}
