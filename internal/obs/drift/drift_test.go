package drift

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/libra-wlan/libra/internal/obs/decisionlog"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestStatistics(t *testing.T) {
	ref := []float64{0.25, 0.25, 0.25, 0.25}
	if p := PSI(ref, ref); !almost(p, 0) {
		t.Errorf("PSI(ref, ref) = %v", p)
	}
	if k := KS(ref, ref); !almost(k, 0) {
		t.Errorf("KS(ref, ref) = %v", k)
	}
	if v := TV(ref, ref); !almost(v, 0) {
		t.Errorf("TV(ref, ref) = %v", v)
	}
	shifted := []float64{0.7, 0.1, 0.1, 0.1}
	if p := PSI(ref, shifted); p < 0.25 {
		t.Errorf("PSI under a gross shift = %v, want > 0.25", p)
	}
	if k := KS(ref, shifted); !almost(k, 0.45) {
		t.Errorf("KS = %v, want 0.45", k)
	}
	if v := TV(ref, shifted); !almost(v, 0.45) {
		t.Errorf("TV = %v, want 0.45", v)
	}
	// PSI stays finite when a bin empties entirely on one side.
	if p := PSI([]float64{1, 0}, []float64{0, 1}); math.IsInf(p, 0) || math.IsNaN(p) {
		t.Errorf("PSI with empty bins = %v", p)
	}
}

// trainCols builds a deterministic synthetic "training" distribution:
// feature 0 uniform on [0,1), feature 1 discrete in {0,1,2}.
func trainCols(n int, rng *rand.Rand) [][]float64 {
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		cols[0][i] = rng.Float64()
		cols[1][i] = float64(rng.Intn(3))
	}
	return cols
}

func testProfile(t *testing.T) *Profile {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	cols := trainCols(4000, rng)
	labels := make([]int, 4000)
	for i := range labels {
		labels[i] = rng.Intn(5)
	}
	p, err := BuildProfile("unit", []string{"f0", "f1"}, cols, labels, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildProfile(t *testing.T) {
	p := testProfile(t)
	if len(p.Features) != 2 {
		t.Fatalf("features = %d", len(p.Features))
	}
	for _, f := range p.Features {
		var s float64
		for _, pr := range f.Props {
			s += pr
		}
		if !almost(s, 1) {
			t.Errorf("feature %q props sum to %v", f.Name, s)
		}
	}
	// The discrete feature has only 3 distinct values: duplicate quantile
	// edges must have been compacted, not emitted as empty bins.
	if n := len(p.Features[1].Edges); n > 2 {
		t.Errorf("discrete feature kept %d edges, want <= 2", n)
	}
	var s float64
	for _, a := range p.Actions {
		s += a
	}
	if !almost(s, 1) {
		t.Errorf("action props sum to %v", s)
	}
}

func TestProfileSaveLoadRoundTrip(t *testing.T) {
	p := testProfile(t)
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || len(got.Features) != len(p.Features) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range p.Features {
		for j := range p.Features[i].Props {
			if got.Features[i].Props[j] != p.Features[i].Props[j] {
				t.Fatalf("feature %d prop %d drifted through JSON", i, j)
			}
		}
	}
}

// decRecord builds a decision record from a 2-feature sample.
func decRecord(id uint64, f0, f1 float64, action uint8) decisionlog.Record {
	r := decisionlog.Record{
		Kind: decisionlog.KindDecision, Action: action,
		ReqID: id, LinkID: id * 31, ModelID: 1,
	}
	r.Feat[0], r.Feat[1] = float32(f0), float32(f1)
	return r
}

// TestMonitorTripsOnShiftOnly is the paper's cross-building scenario in
// miniature: in-distribution traffic must close windows without tripping;
// traffic from a shifted distribution must trip.
func TestMonitorTripsOnShiftOnly(t *testing.T) {
	p := testProfile(t)

	feed := func(gen func(i int) (float64, float64)) *Monitor {
		m, err := NewMonitor(Config{Profile: p, WindowRecords: 500, Quiet: true})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 2000; i++ {
			f0, f1 := gen(i)
			rec := decRecord(uint64(i), f0, f1, uint8(rng.Intn(5)))
			m.Observe(&rec)
		}
		m.Flush()
		return m
	}

	inRng := rand.New(rand.NewSource(2))
	in := feed(func(int) (float64, float64) { return inRng.Float64(), float64(inRng.Intn(3)) })
	if in.Trips() != 0 {
		t.Errorf("in-distribution traffic tripped %d windows", in.Trips())
	}
	if len(in.Windows()) != 4 {
		t.Errorf("closed %d windows, want 4", len(in.Windows()))
	}

	outRng := rand.New(rand.NewSource(3))
	out := feed(func(int) (float64, float64) { return 0.9 + 0.1*outRng.Float64(), 2 })
	if out.Trips() == 0 {
		t.Error("shifted traffic tripped no windows")
	}
	for _, w := range out.Windows() {
		if w.PSIMax <= in.Windows()[0].PSIMax {
			t.Errorf("shifted window %d PSI %v not above in-distribution %v",
				w.Index, w.PSIMax, in.Windows()[0].PSIMax)
		}
	}
}

func TestMonitorAccuracyJoin(t *testing.T) {
	p := testProfile(t)
	m, err := NewMonitor(Config{Profile: p, WindowRecords: 100, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rec := decRecord(uint64(i), 0.5, 1, uint8(i%5))
		m.Observe(&rec)
		// Truth agrees for even ids, disagrees for odd.
		truth := decisionlog.Record{
			Kind: decisionlog.KindTruth, ReqID: uint64(i), LinkID: uint64(i) * 31,
			Action: uint8(i % 5),
		}
		if i%2 == 1 {
			truth.Action = uint8((i + 1) % 5)
		}
		m.Observe(&truth)
	}
	m.Flush()
	// The window rolls on the 100th decision, before that decision's truth
	// arrives; the straggler join lands in a final join-only window.
	w := m.Windows()
	if len(w) != 2 {
		t.Fatalf("windows = %d, want 2", len(w))
	}
	var joined, correct uint64
	for _, win := range w {
		joined += win.Joined
		correct += win.Correct
		if win.Records == 0 && win.Tripped {
			t.Error("join-only window tripped")
		}
	}
	if joined != 100 || correct != 50 {
		t.Fatalf("join stats = %d/%d, want 100/50", joined, correct)
	}
	// A truth record with no matching decision must be a no-op.
	orphan := decisionlog.Record{Kind: decisionlog.KindTruth, ReqID: 1 << 40, Action: 1}
	m.Observe(&orphan)
	if m.nWin != 0 || m.joined != 0 {
		t.Error("orphan truth record perturbed monitor state")
	}
}

// TestAnalyzeOrderInvariant shuffles the same record set three ways and
// requires identical reports — the offline half of the replay-determinism
// contract.
func TestAnalyzeOrderInvariant(t *testing.T) {
	p := testProfile(t)
	rng := rand.New(rand.NewSource(5))
	var recs []decisionlog.Record
	for i := 0; i < 1500; i++ {
		recs = append(recs, decRecord(uint64(i), rng.Float64(), float64(rng.Intn(3)), uint8(rng.Intn(5))))
		if i%3 == 0 {
			recs = append(recs, decisionlog.Record{
				Kind: decisionlog.KindTruth, ReqID: uint64(i), LinkID: uint64(i) * 31,
				Action: uint8(rng.Intn(5)),
			})
		}
	}
	cfg := Config{Profile: p, WindowRecords: 256}
	base, err := Analyze(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Decisions != 1500 || base.Truths != 500 {
		t.Fatalf("counted %d decisions / %d truths", base.Decisions, base.Truths)
	}
	for trial := 0; trial < 3; trial++ {
		shuffled := make([]decisionlog.Record, len(recs))
		copy(shuffled, recs)
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got, err := Analyze(shuffled, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Windows) != len(base.Windows) || got.Trips != base.Trips {
			t.Fatalf("trial %d: %d windows / %d trips vs base %d / %d",
				trial, len(got.Windows), got.Trips, len(base.Windows), base.Trips)
		}
		for i := range got.Windows {
			if fmt.Sprintf("%+v", got.Windows[i]) != fmt.Sprintf("%+v", base.Windows[i]) {
				t.Fatalf("trial %d window %d diverged:\n got=%+v\nwant=%+v", trial, i, got.Windows[i], base.Windows[i])
			}
		}
	}
}
