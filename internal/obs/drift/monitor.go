package drift

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/obs/decisionlog"
)

var (
	obsDriftPSI      = obs.NewFloatGauge("libra_drift_psi", "last closed window's max per-feature PSI vs the training reference")
	obsDriftKS       = obs.NewFloatGauge("libra_drift_ks", "last closed window's max per-feature KS distance vs the training reference")
	obsDriftActionTV = obs.NewFloatGauge("libra_drift_action_tv", "last closed window's action-distribution total-variation shift")
	obsDriftAccuracy = obs.NewFloatGauge("libra_drift_accuracy", "last closed window's accuracy over ground-truth joins")
	obsDriftWindows  = obs.NewCounter("libra_drift_windows_total", "drift windows closed")
	obsDriftTrips    = obs.NewCounter("libra_drift_trips_total", "drift windows whose max PSI crossed the trip threshold")
	obsDriftJoins    = obs.NewCounter("libra_drift_joins_total", "ground-truth records joined to a served decision")
)

// Config parameterizes a Monitor.
type Config struct {
	// Profile is the frozen training reference. Required.
	Profile *Profile
	// WindowRecords is how many decision records close a window.
	// Default 1024.
	WindowRecords int
	// PSITrip is the max-PSI threshold that marks a window tripped and
	// increments libra_drift_trips_total. Default 0.25.
	PSITrip float64
	// MaxJoin caps the pending ground-truth join table; once full, new
	// decisions are not retained for joining (deterministic in feed order).
	// Default 1<<20.
	MaxJoin int
	// Quiet suppresses the process-wide libra_drift_* metric updates;
	// offline analysis sets it so replaying a log does not masquerade as
	// live fleet state.
	Quiet bool
}

type joinKey struct{ req, link uint64 }

// A Monitor consumes an audit-record stream — live from the decision log's
// writer-goroutine tap, or offline in canonical order — and closes a
// WindowStat every WindowRecords decisions. Not safe for concurrent use:
// exactly one goroutine feeds it, which is also what determinism demands.
type Monitor struct {
	cfg     Config
	refFeat [][]float64 // per-feature reference proportions
	refAct  []float64

	featCounts [][]uint64
	actCounts  []uint64
	nWin       uint64
	joined     uint64
	correct    uint64
	pending    map[joinKey]uint8

	windows []WindowStat
	trips   uint64
}

// NewMonitor validates the profile and returns an empty monitor.
func NewMonitor(cfg Config) (*Monitor, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("drift: monitor requires a profile")
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Profile.Features) > decisionlog.MaxFeatures {
		return nil, fmt.Errorf("drift: profile has %d features, records carry at most %d",
			len(cfg.Profile.Features), decisionlog.MaxFeatures)
	}
	if cfg.WindowRecords < 1 {
		cfg.WindowRecords = 1024
	}
	if cfg.PSITrip <= 0 {
		cfg.PSITrip = 0.25
	}
	if cfg.MaxJoin < 1 {
		cfg.MaxJoin = 1 << 20
	}
	m := &Monitor{
		cfg:        cfg,
		refAct:     cfg.Profile.Actions,
		actCounts:  make([]uint64, len(cfg.Profile.Actions)),
		featCounts: make([][]uint64, len(cfg.Profile.Features)),
		refFeat:    make([][]float64, len(cfg.Profile.Features)),
		pending:    make(map[joinKey]uint8),
	}
	for i, f := range cfg.Profile.Features {
		m.featCounts[i] = make([]uint64, len(f.Edges)+1)
		m.refFeat[i] = f.Props
	}
	return m, nil
}

// Observe feeds one record. Decision records accumulate into the open
// window and register for ground-truth joining; truth records resolve a
// pending join and score the current window's accuracy.
func (m *Monitor) Observe(r *decisionlog.Record) {
	switch r.Kind {
	case decisionlog.KindDecision:
		for i, f := range m.cfg.Profile.Features {
			b := binOf(f.Edges, float64(r.Feat[i]))
			m.featCounts[i][b]++
		}
		if int(r.Action) < len(m.actCounts) {
			m.actCounts[r.Action]++
		}
		if len(m.pending) < m.cfg.MaxJoin {
			m.pending[joinKey{r.ReqID, r.LinkID}] = r.Action
		}
		m.nWin++
		if m.nWin >= uint64(m.cfg.WindowRecords) {
			m.roll()
		}
	case decisionlog.KindTruth:
		k := joinKey{r.ReqID, r.LinkID}
		served, ok := m.pending[k]
		if !ok {
			return
		}
		delete(m.pending, k)
		m.joined++
		if served == r.Action {
			m.correct++
		}
		if !m.cfg.Quiet {
			obsDriftJoins.Inc()
		}
	}
}

// roll closes the open window: statistics, gauges, trip accounting, reset.
func (m *Monitor) roll() {
	w := WindowStat{
		Index:         len(m.windows),
		Records:       m.nWin,
		Joined:        m.joined,
		Correct:       m.correct,
		PSIPerFeature: make([]float64, len(m.refFeat)),
	}
	// A join-only window (late truths after the decisions rolled) carries
	// no distribution to compare; its stats stay zero and it cannot trip.
	if m.nWin > 0 {
		for i := range m.refFeat {
			obsProps := props(m.featCounts[i], m.nWin)
			p := PSI(m.refFeat[i], obsProps)
			w.PSIPerFeature[i] = p
			if p > w.PSIMax || i == 0 {
				w.PSIMax = p
				w.PSIFeature = m.cfg.Profile.Features[i].Name
			}
			if k := KS(m.refFeat[i], obsProps); k > w.KSMax {
				w.KSMax = k
			}
		}
		w.ActionTV = TV(m.refAct, props(m.actCounts, m.nWin))
		w.Tripped = w.PSIMax > m.cfg.PSITrip
	}
	if w.Tripped {
		m.trips++
	}
	m.windows = append(m.windows, w)

	if !m.cfg.Quiet {
		obsDriftPSI.Set(w.PSIMax)
		obsDriftKS.Set(w.KSMax)
		obsDriftActionTV.Set(w.ActionTV)
		obsDriftAccuracy.Set(w.Accuracy())
		obsDriftWindows.Inc()
		if w.Tripped {
			obsDriftTrips.Inc()
		}
	}

	for i := range m.featCounts {
		for j := range m.featCounts[i] {
			m.featCounts[i][j] = 0
		}
	}
	for i := range m.actCounts {
		m.actCounts[i] = 0
	}
	m.nWin, m.joined, m.correct = 0, 0, 0
}

// Flush closes a non-empty partial window (end of an offline replay). A
// window holding only late ground-truth joins — truths whose decisions
// closed the previous window — still rolls, so no join is ever dropped.
func (m *Monitor) Flush() {
	if m.nWin > 0 || m.joined > 0 {
		m.roll()
	}
}

// Windows returns the closed windows so far. The slice is shared; callers
// must not mutate it while feeding continues.
func (m *Monitor) Windows() []WindowStat { return m.windows }

// Trips returns the number of tripped windows so far.
func (m *Monitor) Trips() uint64 { return m.trips }

// A Report is the outcome of an offline replay of an audit log.
type Report struct {
	Windows   []WindowStat
	Trips     uint64
	Decisions uint64
	Truths    uint64
}

// Analyze replays records in canonical order through a fresh quiet monitor.
// The input slice is not modified; the result depends only on the record
// SET, so two logs of the same sampled decisions — any worker count, any
// drain interleaving — analyze identically.
func Analyze(records []decisionlog.Record, cfg Config) (*Report, error) {
	cfg.Quiet = true
	m, err := NewMonitor(cfg)
	if err != nil {
		return nil, err
	}
	ordered := make([]decisionlog.Record, len(records))
	copy(ordered, records)
	decisionlog.SortCanonical(ordered)
	rep := &Report{}
	for i := range ordered {
		switch ordered[i].Kind {
		case decisionlog.KindDecision:
			rep.Decisions++
		case decisionlog.KindTruth:
			rep.Truths++
		}
		m.Observe(&ordered[i])
	}
	m.Flush()
	rep.Windows = m.Windows()
	rep.Trips = m.Trips()
	return rep, nil
}

// BuildProfile freezes a training set's distributions: equal-frequency bin
// edges (bins buckets) and reference proportions per feature column, plus
// the label distribution over nclasses actions. cols is feature-major and
// rectangular; names must match its width.
//
// Every training value is quantized through float32 first, because that is
// the precision audit records carry: edges computed at float64 precision
// would sit between a value and its float32 rounding, shifting bin mass and
// reporting drift where there is none.
func BuildProfile(name string, names []string, cols [][]float64, labels []int, nclasses, bins int) (*Profile, error) {
	if len(cols) == 0 || len(cols) != len(names) {
		return nil, fmt.Errorf("drift: %d feature columns for %d names", len(cols), len(names))
	}
	if bins < 2 {
		bins = 10
	}
	p := &Profile{Name: name, Actions: make([]float64, nclasses)}
	for fi, col := range cols {
		if len(col) == 0 {
			return nil, fmt.Errorf("drift: feature %q has no values", names[fi])
		}
		sorted := make([]float64, len(col))
		for i, v := range col {
			sorted[i] = float64(float32(v))
		}
		quant := make([]float64, len(sorted))
		copy(quant, sorted)
		sort.Float64s(sorted)
		// Equal-frequency interior edges, deduplicated, and never the
		// column maximum: under binOf's upper-bound rule an edge at the
		// max would strand an always-empty top bin.
		var edges []float64
		for k := 1; k < bins; k++ {
			e := sorted[k*len(sorted)/bins]
			if (len(edges) == 0 || e > edges[len(edges)-1]) && e < sorted[len(sorted)-1] {
				edges = append(edges, e)
			}
		}
		ref := FeatureRef{Name: names[fi], Edges: edges, Props: make([]float64, len(edges)+1)}
		for _, v := range quant {
			ref.Props[binOf(edges, v)]++
		}
		for i := range ref.Props {
			ref.Props[i] /= float64(len(col))
		}
		p.Features = append(p.Features, ref)
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("drift: no labels for action distribution")
	}
	for _, y := range labels {
		if y >= 0 && y < nclasses {
			p.Actions[y]++
		}
	}
	for i := range p.Actions {
		p.Actions[i] /= float64(len(labels))
	}
	return p, p.Validate()
}

// SaveFile writes a profile as indented JSON.
func (p *Profile) SaveFile(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadFile reads and validates a profile written by SaveFile.
func LoadFile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p := &Profile{}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("drift: parsing profile %s: %w", path, err)
	}
	return p, p.Validate()
}
