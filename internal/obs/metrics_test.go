package obs

import (
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Error("re-registering a counter must return the same instance")
	}

	g := r.Gauge("g", "a gauge")
	g.Inc()
	g.Inc()
	g.Inc()
	g.Dec()
	if got, max := g.Value(), g.Max(); got != 2 || max != 3 {
		t.Errorf("gauge = (%d, max %d), want (2, max 3)", got, max)
	}

	h := r.Histogram("h_seconds", "a histogram", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 2.5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() != 5.5 {
		t.Errorf("histogram sum = %g, want 5.5", h.Sum())
	}
	var snap Metric
	for _, m := range r.Snapshot() {
		if m.Name == "h_seconds" {
			snap = m
		}
	}
	// Bucket bounds are inclusive (le): 1 falls in the first bucket.
	wantCum := []uint64{2, 3, 4}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative count = %d, want %d", i, b.Count, wantCum[i])
		}
	}

	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("Reset must zero all metric values")
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; run
// under -race it proves the hot-path operations and Snapshot are safe.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_depth", "")
	h := r.Histogram("hammer_seconds", "", DurationBuckets)

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i%7) * 1e-3)
				g.Dec()
				if i%512 == 0 {
					// Registration and snapshotting race against updates.
					r.Counter("hammer_total", "")
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if g.Max() < 1 || g.Max() > workers {
		t.Errorf("gauge max = %d, want within [1, %d]", g.Max(), workers)
	}
}
