package channel

import "github.com/libra-wlan/libra/internal/obs"

// Engine-side metrics for the channel hot path. Counters sit at call or
// rebuild granularity — never inside per-path inner loops — so the
// instrumentation overhead stays within the bench budget. The interesting
// ratios: gain-table rebuilds vs. measurements served from the tables,
// BestPair cache hits vs. recomputations, and how often the noise vector
// and interferer traces actually refill.
var (
	obsTraces = obs.NewCounter("libra_channel_ray_traces_total",
		"image-method ray traces between the link endpoints")
	obsGainRebuilds = obs.NewCounter("libra_channel_gain_rebuilds_total",
		"full per-geometry beam-gain/link-budget table rebuilds")
	obsGainRxRebuilds = obs.NewCounter("libra_channel_gain_rx_rebuilds_total",
		"Rx-rows-only gain rebuilds after pure Rx rotations")
	obsMeasures = obs.NewCounter("libra_channel_measures_total",
		"Measure calls (PHY observations served from the gain tables)")
	obsSweeps = obs.NewCounter("libra_channel_sweeps_total",
		"full NxN sector-level sweeps")
	obsBestPairHits = obs.NewCounter("libra_channel_bestpair_cache_hits_total",
		"BestPair calls answered from the per-state cache")
	obsBestPairMisses = obs.NewCounter("libra_channel_bestpair_cache_misses_total",
		"BestPair calls that recomputed the ground-truth SLS")
	obsNoiseRefills = obs.NewCounter("libra_channel_noise_vector_refills_total",
		"per-Rx-beam noise vector refills (epoch or noise-figure change)")
	obsIntfTraces = obs.NewCounter("libra_channel_interferer_traces_total",
		"interferer-to-Rx path re-traces (position or geometry change)")
	obsDirGainHits = obs.NewCounter("libra_channel_dir_gain_row_hits_total",
		"gain-table rows served from the per-direction cache during rebuilds")
)
