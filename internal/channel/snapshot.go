package channel

import (
	"math"

	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/phased"
)

// Snapshot freezes the channel between Tx and Rx at one geometric state: the
// traced paths with per-beam antenna gains precomputed. A snapshot can
// evaluate any beam pair in O(paths) multiply-adds without re-tracing,
// which is what the trace-driven evaluation (§8) needs — the paper logs
// full SLS sweeps plus per-beam-pair PHY traces at every state; a Snapshot
// is the in-memory equivalent of that log.
type Snapshot struct {
	paths []Path
	// txLin[b][p] and rxLin[b][p] are the linear antenna gains of beam b
	// toward path p; index NumBeams holds the quasi-omni pattern.
	txLin, rxLin [][]float64
	// linBase[p] is linear(TxPower - pathLoss) of path p.
	linBase []float64
	// noiseMw[r] is noise+interference power per Rx beam; index NumBeams
	// is quasi-omni.
	noiseMw []float64
	// minDelayNs anchors the PDP at the earliest path.
	minDelayNs float64
}

// beamIndex maps a beam ID (including QuasiOmniID) to the gain-table row.
func beamIndex(b int) int {
	if b == phased.QuasiOmniID {
		return phased.NumBeams
	}
	return b
}

// Snapshot captures the link's current geometric state. It shares the
// link's memoized gain tables (rebuilds allocate fresh slices, so the rows
// survive later link mutation; the paths slice is copied for the same
// reason).
func (l *Link) Snapshot() *Snapshot {
	g := l.ensureGains()
	nb := phased.NumBeams + 1 // +1 for quasi-omni

	s := &Snapshot{
		paths:      append([]Path(nil), g.paths...),
		txLin:      g.txLin,
		rxLin:      g.rxLin,
		linBase:    g.linBase,
		noiseMw:    make([]float64, nb),
		minDelayNs: g.minDelayNs,
	}
	for bi := 0; bi < nb; bi++ {
		id := bi
		if bi == phased.NumBeams {
			id = phased.QuasiOmniID
		}
		s.noiseMw[bi] = l.noiseMwFor(id)
	}
	return s
}

// NumPaths returns the number of traced propagation paths.
func (s *Snapshot) NumPaths() int { return len(s.paths) }

// Measure evaluates the PHY observation for a beam pair from the frozen
// state, identically to Link.Measure (minus stochastic measurement noise,
// which the MAC layer adds).
func (s *Snapshot) Measure(txBeam, rxBeam int) Measurement {
	ti, ri := beamIndex(txBeam), beamIndex(rxBeam)
	var totalMw, bestMw float64
	bestDelay := math.Inf(1)
	pdp := make([]float64, PDPTaps)
	for p, pa := range s.paths {
		mw := s.linBase[p] * s.txLin[ti][p] * s.rxLin[ri][p]
		totalMw += mw
		if mw > bestMw {
			bestMw = mw
			bestDelay = pa.DelayNs
		}
		bin := int((pa.DelayNs - s.minDelayNs) / PDPBinNs)
		if bin >= 0 && bin < PDPTaps {
			pdp[bin] += mw
		}
	}
	rss := dsp.DB(totalMw)
	noise := dsp.DB(s.noiseMw[ri])
	m := Measurement{
		RSSdBm:   rss,
		NoiseDBm: noise,
		SNRdB:    rss - noise,
		ToFNs:    bestDelay,
		PDP:      pdp,
	}
	if rss < SensitivityDBm || math.IsInf(rss, -1) {
		m.ToFNs = math.Inf(1)
	}
	return m
}

// SNRdB returns the SNR of a beam pair.
func (s *Snapshot) SNRdB(txBeam, rxBeam int) float64 {
	ti, ri := beamIndex(txBeam), beamIndex(rxBeam)
	var mw float64
	for p := range s.paths {
		mw += s.linBase[p] * s.txLin[ti][p] * s.rxLin[ri][p]
	}
	return dsp.DB(mw) - dsp.DB(s.noiseMw[ri])
}

// Sweep returns the full 25x25 SNR matrix. The Tx-beam outer loop fans out
// across the available cores.
func (s *Snapshot) Sweep() [][]float64 {
	n := phased.NumBeams
	noiseDB := make([]float64, n)
	for r := 0; r < n; r++ {
		noiseDB[r] = dsp.DB(s.noiseMw[r])
	}
	out := make([][]float64, n)
	parallelRows(n, func(t int) {
		row := make([]float64, n)
		for r := 0; r < n; r++ {
			var mw float64
			for p := range s.paths {
				mw += s.linBase[p] * s.txLin[t][p] * s.rxLin[r][p]
			}
			row[r] = dsp.DB(mw) - noiseDB[r]
		}
		out[t] = row
	})
	return out
}

// BestPair returns the beam pair maximizing SNR.
func (s *Snapshot) BestPair() (txBeam, rxBeam int, snrDB float64) {
	snrDB = math.Inf(-1)
	sweep := s.Sweep()
	for t := range sweep {
		for r := range sweep[t] {
			if v := sweep[t][r]; v > snrDB {
				snrDB, txBeam, rxBeam = v, t, r
			}
		}
	}
	return txBeam, rxBeam, snrDB
}
