package channel

import (
	"math"

	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/phased"
)

// Snapshot freezes the channel between Tx and Rx at one geometric state: the
// traced paths with per-beam antenna gains precomputed. A snapshot can
// evaluate any beam pair in O(paths) multiply-adds without re-tracing,
// which is what the trace-driven evaluation (§8) needs — the paper logs
// full SLS sweeps plus per-beam-pair PHY traces at every state; a Snapshot
// is the in-memory equivalent of that log.
type Snapshot struct {
	paths []Path
	// txLin[b][p] and rxLin[b][p] are the linear antenna gains of beam b
	// toward path p; index NumBeams holds the quasi-omni pattern.
	txLin, rxLin [][]float64
	// linBase[p] is linear(TxPower - pathLoss) of path p.
	linBase []float64
	// noiseMw[r] is noise+interference power per Rx beam; index NumBeams
	// is quasi-omni.
	noiseMw []float64
	// minDelayNs anchors the PDP at the earliest path.
	minDelayNs float64
}

// beamIndex maps a beam ID (including QuasiOmniID) to the gain-table row.
func beamIndex(b int) int {
	if b == phased.QuasiOmniID {
		return phased.NumBeams
	}
	return b
}

// Snapshot captures the link's current geometric state.
func (l *Link) Snapshot() *Snapshot {
	paths := l.Paths()
	np := len(paths)
	nb := phased.NumBeams + 1 // +1 for quasi-omni

	s := &Snapshot{
		paths:      append([]Path(nil), paths...),
		txLin:      make([][]float64, nb),
		rxLin:      make([][]float64, nb),
		linBase:    make([]float64, np),
		noiseMw:    make([]float64, nb),
		minDelayNs: math.Inf(1),
	}
	for p, pa := range paths {
		s.linBase[p] = dsp.Lin(l.TxPowerDBm - l.ImplLossDB - pa.LossDB)
		if pa.DelayNs < s.minDelayNs {
			s.minDelayNs = pa.DelayNs
		}
	}
	for bi := 0; bi < nb; bi++ {
		id := bi
		if bi == phased.NumBeams {
			id = phased.QuasiOmniID
		}
		s.txLin[bi] = make([]float64, np)
		s.rxLin[bi] = make([]float64, np)
		for p, pa := range paths {
			s.txLin[bi][p] = dsp.Lin(l.Tx.GainDBi(id, pa.Depart))
			s.rxLin[bi][p] = dsp.Lin(l.Rx.GainDBi(id, pa.Arrive))
		}
	}
	thermalMw := dsp.Lin(ThermalNoiseDBm(l.NoiseFigureDB))
	for bi := 0; bi < nb; bi++ {
		id := bi
		if bi == phased.NumBeams {
			id = phased.QuasiOmniID
		}
		s.noiseMw[bi] = thermalMw + l.interferenceMw(id)
	}
	return s
}

// NumPaths returns the number of traced propagation paths.
func (s *Snapshot) NumPaths() int { return len(s.paths) }

// Measure evaluates the PHY observation for a beam pair from the frozen
// state, identically to Link.Measure (minus stochastic measurement noise,
// which the MAC layer adds).
func (s *Snapshot) Measure(txBeam, rxBeam int) Measurement {
	ti, ri := beamIndex(txBeam), beamIndex(rxBeam)
	var totalMw, bestMw float64
	bestDelay := math.Inf(1)
	pdp := make([]float64, PDPTaps)
	for p, pa := range s.paths {
		mw := s.linBase[p] * s.txLin[ti][p] * s.rxLin[ri][p]
		totalMw += mw
		if mw > bestMw {
			bestMw = mw
			bestDelay = pa.DelayNs
		}
		bin := int((pa.DelayNs - s.minDelayNs) / PDPBinNs)
		if bin >= 0 && bin < PDPTaps {
			pdp[bin] += mw
		}
	}
	rss := dsp.DB(totalMw)
	noise := dsp.DB(s.noiseMw[ri])
	m := Measurement{
		RSSdBm:   rss,
		NoiseDBm: noise,
		SNRdB:    rss - noise,
		ToFNs:    bestDelay,
		PDP:      pdp,
	}
	if rss < SensitivityDBm || math.IsInf(rss, -1) {
		m.ToFNs = math.Inf(1)
	}
	return m
}

// SNRdB returns the SNR of a beam pair.
func (s *Snapshot) SNRdB(txBeam, rxBeam int) float64 {
	ti, ri := beamIndex(txBeam), beamIndex(rxBeam)
	var mw float64
	for p := range s.paths {
		mw += s.linBase[p] * s.txLin[ti][p] * s.rxLin[ri][p]
	}
	return dsp.DB(mw) - dsp.DB(s.noiseMw[ri])
}

// Sweep returns the full 25x25 SNR matrix.
func (s *Snapshot) Sweep() [][]float64 {
	n := phased.NumBeams
	out := make([][]float64, n)
	for t := 0; t < n; t++ {
		out[t] = make([]float64, n)
		for r := 0; r < n; r++ {
			var mw float64
			for p := range s.paths {
				mw += s.linBase[p] * s.txLin[t][p] * s.rxLin[r][p]
			}
			out[t][r] = dsp.DB(mw) - dsp.DB(s.noiseMw[r])
		}
	}
	return out
}

// BestPair returns the beam pair maximizing SNR.
func (s *Snapshot) BestPair() (txBeam, rxBeam int, snrDB float64) {
	snrDB = math.Inf(-1)
	sweep := s.Sweep()
	for t := range sweep {
		for r := range sweep[t] {
			if v := sweep[t][r]; v > snrDB {
				snrDB, txBeam, rxBeam = v, t, r
			}
		}
	}
	return txBeam, rxBeam, snrDB
}
