package channel

import (
	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/phased"
)

// Snapshot freezes the channel between Tx and Rx at one geometric state: the
// traced paths with per-beam antenna gains precomputed. A snapshot can
// evaluate any beam pair in O(paths) multiply-adds without re-tracing,
// which is what the trace-driven evaluation (§8) needs — the paper logs
// full SLS sweeps plus per-beam-pair PHY traces at every state; a Snapshot
// is the in-memory equivalent of that log.
type Snapshot struct {
	paths []Path
	// txLin[b][p] and rxLin[b][p] are the linear antenna gains of beam b
	// toward path p; index NumBeams holds the quasi-omni pattern.
	txLin, rxLin [][]float64
	// linBase[p] is linear(TxPower - pathLoss) of path p.
	linBase []float64
	// noiseMw[r] is noise+interference power per Rx beam; index NumBeams
	// is quasi-omni.
	noiseMw []float64
	// minDelayNs anchors the PDP at the earliest path.
	minDelayNs float64
}

// beamIndex maps a beam ID (including QuasiOmniID) to the gain-table row.
func beamIndex(b int) int {
	if b == phased.QuasiOmniID {
		return phased.NumBeams
	}
	return b
}

// Snapshot captures the link's current geometric state. It shares the
// link's memoized gain tables (rebuilds allocate fresh slices, so the rows
// survive later link mutation; the paths slice is copied for the same
// reason).
func (l *Link) Snapshot() *Snapshot {
	g := l.ensureGains()
	nb := phased.NumBeams + 1 // +1 for quasi-omni

	s := &Snapshot{
		paths:      append([]Path(nil), g.paths...),
		txLin:      g.txLin,
		rxLin:      g.rxLin,
		linBase:    g.linBase,
		noiseMw:    make([]float64, nb),
		minDelayNs: g.minDelayNs,
	}
	for bi := 0; bi < nb; bi++ {
		id := bi
		if bi == phased.NumBeams {
			id = phased.QuasiOmniID
		}
		s.noiseMw[bi] = l.noiseMwFor(id)
	}
	return s
}

// SnapshotInterfered captures the link under a hypothetical interferer set,
// then restores the link's own interferers. The multi-AP engine uses this to
// precompute, per station, a clear snapshot and one seen under each co-channel
// AP's worst-case (duty 1.0) emission — the SNR difference between the two is
// the interference penalty applied when slot windows overlap. Ray geometry is
// untouched, so the path and gain caches survive both swaps.
func (l *Link) SnapshotInterfered(in []Interferer) *Snapshot {
	saved := l.Interferers
	l.SetInterferers(in)
	s := l.Snapshot()
	l.SetInterferers(saved)
	return s
}

// NumPaths returns the number of traced propagation paths.
func (s *Snapshot) NumPaths() int { return len(s.paths) }

// Measure evaluates the PHY observation for a beam pair from the frozen
// state, identically to Link.Measure (minus stochastic measurement noise,
// which the MAC layer adds).
func (s *Snapshot) Measure(txBeam, rxBeam int) Measurement {
	var m Measurement
	s.MeasureInto(&m, txBeam, rxBeam)
	return m
}

// MeasureInto computes the observation into m, reusing m.PDP's backing
// array when its capacity suffices — the allocation-free counterpart of
// Measure for callers that recycle a scratch Measurement.
func (s *Snapshot) MeasureInto(m *Measurement, txBeam, rxBeam int) {
	ti, ri := beamIndex(txBeam), beamIndex(rxBeam)
	measureInto(m, s.paths, s.linBase, s.txLin[ti], s.rxLin[ri],
		s.noiseMw[ri], s.minDelayNs)
}

// SNRdB returns the SNR of a beam pair.
func (s *Snapshot) SNRdB(txBeam, rxBeam int) float64 {
	ti, ri := beamIndex(txBeam), beamIndex(rxBeam)
	var mw float64
	for p := range s.paths {
		mw += s.linBase[p] * s.txLin[ti][p] * s.rxLin[ri][p]
	}
	return dsp.DB(mw) - dsp.DB(s.noiseMw[ri])
}

// Sweep returns the full 25x25 SNR matrix via the fused sweepPowerInto
// kernel: one blocked pass over the frozen gain tables with pooled scratch.
// Hoisting the Tx-side product performs the same roundings as the historic
// per-pair triple product, so the matrix is bit-identical to a naive scan.
// Safe for concurrent use — snapshots are shared read-only across workers
// and the scratch comes from a pool.
func (s *Snapshot) Sweep() [][]float64 {
	sc := sweepPool.Get().(*sweepScratch)
	sc.grow(len(s.linBase))
	for r := 0; r < phased.NumBeams; r++ {
		sc.noiseDB[r] = dsp.DB(s.noiseMw[r])
	}
	out := sweepSNR(sc, s.linBase, s.txLin, s.rxLin)
	sweepPool.Put(sc)
	return out
}

// BestPair returns the beam pair maximizing SNR — the row-major winner of
// Sweep, computed from per-column power maxima without materializing the dB
// matrix (see bestFromPow).
func (s *Snapshot) BestPair() (txBeam, rxBeam int, snrDB float64) {
	sc := sweepPool.Get().(*sweepScratch)
	sc.grow(len(s.linBase))
	sweepPowerInto(sc.pow, sc.txw, s.linBase, s.txLin, s.rxLin)
	for r := 0; r < phased.NumBeams; r++ {
		sc.noiseDB[r] = dsp.DB(s.noiseMw[r])
	}
	txBeam, rxBeam, snrDB = bestFromPow(sc.pow, sc.noiseDB)
	sweepPool.Put(sc)
	return txBeam, rxBeam, snrDB
}
