// Package channel implements the 60 GHz indoor propagation simulator that
// replaces the paper's X60 testbed. It combines an image-method ray tracer
// (line-of-sight plus first- and second-order specular reflections off the
// environment's walls), a Friis link budget at 60 GHz, human-blocker
// attenuation, and co-channel interference, and from these derives every PHY
// layer quantity the paper logs per frame: SNR, RSS, noise level, power delay
// profile (PDP), and time-of-flight (ToF).
//
// The 60 GHz channel is sparse: a handful of strong specular paths dominate
// (paper §6.1, Fig. 6 discussion). Specular image-method tracing captures
// exactly that structure.
package channel

import (
	"math"

	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
)

// Physical constants of the simulated radio (matching X60 / 802.11ad).
const (
	// FrequencyHz is the carrier frequency (channel 2 around 60.48 GHz).
	FrequencyHz = 60.48e9
	// BandwidthHz is the channel bandwidth (2 GHz, same as 802.11ad).
	BandwidthHz = 2e9
	// SpeedOfLight in m/s.
	SpeedOfLight = 299792458.0
	// DefaultTxPowerDBm is the transmit power.
	DefaultTxPowerDBm = 20.0
	// DefaultNoiseFigureDB is the receiver noise figure.
	DefaultNoiseFigureDB = 7.0
	// DefaultImplLossDB is the implementation loss of the wideband 60 GHz
	// front end (EVM, phase noise, imperfect combining over 2 GHz of
	// bandwidth). It calibrates the link budget so that indoor ranges of
	// 2-20 m produce the MCS 2-6 operating points observed in the paper
	// (Fig. 9).
	DefaultImplLossDB = 20.0
	// SensitivityDBm: below this received power the receiver cannot lock,
	// and quantities like ToF are reported as +Inf (X60 reports ToF as
	// infinity under extremely weak signal, §6.1).
	SensitivityDBm = -78.0
)

// ThermalNoiseDBm returns the thermal noise floor for the channel bandwidth:
// -174 dBm/Hz + 10 log10(B) + NF.
func ThermalNoiseDBm(noiseFigureDB float64) float64 {
	return -174 + 10*math.Log10(BandwidthHz) + noiseFigureDB
}

// OxygenAbsorptionDBPerKm is the atmospheric O2 absorption around 60 GHz —
// the band's signature impairment (~15 dB/km at sea level). Indoors it adds
// only fractions of a dB, but long NLOS paths feel it first.
const OxygenAbsorptionDBPerKm = 15.0

// FSPLdB returns the path loss at distance d meters at 60.48 GHz: free-space
// spreading plus atmospheric oxygen absorption.
func FSPLdB(d float64) float64 {
	if d < 0.1 {
		d = 0.1
	}
	return 20*math.Log10(d) + 20*math.Log10(FrequencyHz) + 20*math.Log10(4*math.Pi/SpeedOfLight) +
		OxygenAbsorptionDBPerKm*d/1000
}

// Path is one propagation path between Tx and Rx.
type Path struct {
	// Dist is the total traveled distance in meters.
	Dist float64
	// DelayNs is the propagation delay in nanoseconds.
	DelayNs float64
	// LossDB is the total propagation loss (FSPL + reflection losses +
	// blockage attenuation), excluding antenna gains.
	LossDB float64
	// Depart is the unit departure direction at the Tx.
	Depart geom.Vec
	// Arrive is the unit direction from the Rx toward the last bounce (or
	// the Tx for LOS); i.e. the direction the Rx "sees" the signal from.
	Arrive geom.Vec
	// Bounces is the number of wall reflections (0 = LOS).
	Bounces int
	// Blocked reports whether a blocker attenuates (but does not fully
	// occlude) this path.
	Blocked bool
}

// Blocker is a human body at antenna height, modeled as a disc that
// attenuates rays passing through it. At 60 GHz a human torso attenuates
// 15-35 dB depending on how centrally the path crosses it.
type Blocker struct {
	Pos geom.Vec
	// Radius is the torso cross-section radius (typically ~0.2 m).
	Radius float64
	// MaxAttenDB is the attenuation of a dead-center crossing.
	MaxAttenDB float64
}

// DefaultBlocker returns a human blocker at p with typical parameters.
func DefaultBlocker(p geom.Vec) Blocker {
	return Blocker{Pos: p, Radius: 0.22, MaxAttenDB: 28}
}

// Interferer is a co-channel transmitter (the hidden-terminal Talon router of
// §4.2). Its signal reaches the Rx through the same environment and raises
// the effective noise level.
type Interferer struct {
	// Pos is the interferer position.
	Pos geom.Vec
	// EIRPdBm is its effective radiated power toward the victim Rx
	// (transmit power + its antenna gain along the Rx direction). The
	// paper creates high/medium/low interference by trying sectors and
	// positions; here the same effect is achieved by EIRP and position.
	EIRPdBm float64
	// DutyCycle in [0,1] is the fraction of time the interferer transmits.
	DutyCycle float64
}

// Link is a Tx-Rx pair in an environment, with optional blockers and
// interferers. The zero value is not usable; use NewLink.
type Link struct {
	Env *env.Environment
	Tx  *phased.Array
	Rx  *phased.Array

	Blockers    []Blocker
	Interferers []Interferer

	// TxPowerDBm is the transmit power (default DefaultTxPowerDBm).
	TxPowerDBm float64
	// NoiseFigureDB is the Rx noise figure (default DefaultNoiseFigureDB).
	NoiseFigureDB float64
	// ImplLossDB is the front-end implementation loss applied to the
	// received signal (default DefaultImplLossDB).
	ImplLossDB float64
	// MaxBounces limits ray-tracing order (default 2).
	MaxBounces int
	// CeilingHeightM enables a pseudo-3-D mode when positive: the tracer
	// adds ceiling- and floor-bounce variants of the direct path. Vertical
	// bounces keep their azimuth (so beams stay aligned) but travel
	// farther, lose energy on the bounce and to the elevation rolloff of
	// the arrays, and — importantly — clear a human blocker, which only
	// obstructs rays at torso height. Disabled (0) by default: the
	// paper-calibrated datasets use the 2-D model with its documented
	// escape factors.
	CeilingHeightM float64
	// AntennaHeightM is the antenna height used in pseudo-3-D mode
	// (default 1.4 m, the paper's placement, when zero).
	AntennaHeightM float64

	paths     []Path
	pathsOK   bool
	pathEpoch uint64
	// geomEpoch advances only when the ray geometry changes (move, rotate,
	// blockers). It keys the caches below that interferer changes must not
	// evict: the Tx/Rx gain tables and the interferer path traces.
	geomEpoch uint64

	intfPaths [][]Path
	// intfPathsOK, intfGeomEpoch and intfPosKey validate intfPaths: the
	// traces are reusable while the link geometry and the interferer
	// positions are unchanged (EIRP or duty-cycle changes reuse them).
	intfPathsOK   bool
	intfGeomEpoch uint64
	intfPosKey    []geom.Vec

	// intfRxGain[i][beamRow][path] caches the Rx beam gain (dBi) toward
	// interferer i's paths; valid while the interferer traces and the Rx
	// orientation are unchanged (see interferenceMw).
	intfRxGain        [][][]float64
	intfRxGainRxEpoch uint64

	// intfLinArg/intfLinVal[i][path] memoize the last dB→linear conversion
	// argument and result per interferer path. Off-axis beams see a path at
	// the pattern floor, so the conversion argument repeats across most of
	// the codebook during a noise-vector refill; dsp.Lin is pure, so serving
	// an exact-argument hit is bit-identical to recomputing (see
	// interferenceMw).
	intfLinArg, intfLinVal [][]float64

	// rxGeomEpoch advances when only the Rx orientation changes. The traced
	// paths and Tx gains do not depend on it, so ensureGains refreshes just
	// the Rx gain rows (see rebuildRxGains) instead of re-tracing.
	rxGeomEpoch uint64

	// Cached linear conversions of each array's pattern-floor and quasi-omni
	// gains, revalidated against the codebook on rebuild (see ensureFloorLin).
	txFloorDB, txFloorLin []float64
	rxFloorDB, rxFloorLin []float64

	// txDirLin/rxDirLin cache linear beam-gain rows per exact (direction,
	// orientation) key: path directions survive blockage and interference
	// state changes, so gain rebuilds resolve to map hits (see dirGainsLin).
	txDirLin, rxDirLin map[dirGainKey][]float64

	// Cached linear thermal noise floor, keyed by noise figure (thermalMw).
	thermalOK              bool
	thermalNFv, thermalMwV float64

	// gains holds the per-geometry beam gain tables shared by Measure,
	// Sweep and Snapshot (see ensureGains).
	gains        gainTables
	gainsOK      bool
	gainsEpoch   uint64
	gainsRxEpoch uint64

	// best* cache the BestPair result per (path epoch, link budget): the
	// ground-truth SLS that both collect-style callers and measureInit run
	// at the same state is then computed once.
	bestOK                  bool
	bestEpoch               uint64
	bestNF, bestTxP, bestIL float64
	bestT, bestR            int
	bestSNR                 float64

	// noiseMw caches thermal+interference noise per Rx beam between
	// epoch bumps (see noiseMwFor). Entries < 0 are not yet computed.
	// noiseNF records the noise figure the vector was computed with.
	noiseMw    []float64
	noiseEpoch uint64
	noiseNF    float64
	noiseOK    bool
}

// NewLink creates a link between two arrays in an environment.
func NewLink(e *env.Environment, tx, rx *phased.Array) *Link {
	return &Link{
		Env:           e,
		Tx:            tx,
		Rx:            rx,
		TxPowerDBm:    DefaultTxPowerDBm,
		NoiseFigureDB: DefaultNoiseFigureDB,
		ImplLossDB:    DefaultImplLossDB,
		MaxBounces:    2,
	}
}

// Invalidate discards the cached ray-tracing result. Call it after moving or
// rotating either endpoint, or after changing blockers.
func (l *Link) Invalidate() {
	l.pathsOK = false
	l.pathEpoch++
	l.geomEpoch++
}

// Epoch returns a counter that increments on every Invalidate, letting
// callers detect geometry changes.
func (l *Link) Epoch() uint64 { return l.pathEpoch }

// Paths returns the propagation paths between Tx and Rx, tracing them on
// first use and caching the result until Invalidate.
func (l *Link) Paths() []Path {
	if !l.pathsOK {
		l.paths = l.trace()
		l.pathsOK = true
	}
	return l.paths
}

// occluded reports whether the segment from a to b is blocked by any wall,
// excluding walls listed in skip (the reflecting walls of the path).
func (l *Link) occluded(a, b geom.Vec, skip ...int) bool {
	leg := geom.Seg(a, b)
	for i := range l.Env.Walls {
		skipThis := false
		for _, s := range skip {
			if i == s {
				skipThis = true
				break
			}
		}
		if skipThis {
			continue
		}
		if _, ok := leg.IntersectStrict(l.Env.Walls[i].Seg, 1e-6); ok {
			return true
		}
	}
	return false
}

// blockerAttenDB returns the total blocker attenuation (dB) over the legs of
// a path, and whether any blocker touched it. factor scales the attenuation:
// reflected paths pass it <1 because in three dimensions a wall bounce also
// climbs over or drops under a torso (the 2-D tracer cannot see that escape,
// but the paper's measurements show NLOS paths survive human blockage).
func (l *Link) blockerAttenDB(legs []geom.Segment, factor float64) (float64, bool) {
	var atten float64
	hit := false
	for _, leg := range legs {
		for _, b := range l.Blockers {
			c := geom.Circle{Center: b.Pos, Radius: b.Radius}
			chord, ok := c.IntersectsSegment(leg)
			if !ok {
				continue
			}
			hit = true
			frac := chord / (2 * b.Radius)
			if frac > 1 {
				frac = 1
			}
			// Grazing crossings attenuate less (diffraction around
			// the body); central crossings approach MaxAttenDB.
			atten += b.MaxAttenDB*frac*frac + 4*frac
		}
	}
	return atten * factor, hit
}

// Blocker attenuation scaling per reflection order (3-D escape
// approximation; see blockerAttenDB).
const (
	blockFactorLOS     = 1.0
	blockFactorBounce1 = 0.5
	blockFactorBounce2 = 0.35
)

// trace runs the image-method ray tracer between the link endpoints.
func (l *Link) trace() []Path {
	obsTraces.Inc()
	return l.traceBetween(l.Tx.Pos, l.Rx.Pos, l.MaxBounces)
}

// traceBetween runs the image-method ray tracer between two arbitrary
// points (also used to propagate interference through the environment).
func (l *Link) traceBetween(tx, rx geom.Vec, maxBounces int) []Path {
	var paths []Path

	// LOS path.
	if !l.occluded(tx, rx) {
		d := tx.Dist(rx)
		loss := FSPLdB(d)
		atten, blocked := l.blockerAttenDB([]geom.Segment{geom.Seg(tx, rx)}, blockFactorLOS)
		paths = append(paths, Path{
			Dist:    d,
			DelayNs: d / SpeedOfLight * 1e9,
			LossDB:  loss + atten,
			Depart:  rx.Sub(tx).Norm(),
			Arrive:  tx.Sub(rx).Norm(),
			Bounces: 0,
			Blocked: blocked,
		})
	}

	if maxBounces >= 1 {
		paths = append(paths, l.traceFirstOrder(tx, rx)...)
	}
	if maxBounces >= 2 {
		paths = append(paths, l.traceSecondOrder(tx, rx)...)
	}
	if l.CeilingHeightM > 0 {
		paths = append(paths, l.traceVertical(tx, rx)...)
	}
	return paths
}

// Vertical-bounce parameters for the pseudo-3-D mode.
const (
	ceilingReflLossDB  = 7.0  // acoustic-tile / concrete ceiling
	floorReflLossDB    = 9.0  // carpeted floor
	elevationBwDeg     = 35.0 // elevation 3 dB beamwidth of the arrays
	verticalBlockScale = 0.25 // a torso barely grazes head-height bounces
)

// traceVertical adds the ceiling- and floor-bounce variants of the direct
// path (pseudo-3-D mode). Both preserve the azimuth geometry of the LOS.
func (l *Link) traceVertical(tx, rx geom.Vec) []Path {
	if l.occluded(tx, rx) {
		// The azimuth corridor itself is walled off; vertical bounces of
		// the direct ray do not exist either.
		return nil
	}
	h := l.AntennaHeightM
	if h <= 0 {
		h = 1.4
	}
	ceil := l.CeilingHeightM
	if ceil <= h {
		return nil
	}
	d := tx.Dist(rx)
	if d < 0.5 {
		return nil
	}
	var paths []Path
	mk := func(clearance float64, bounceLoss float64) Path {
		d3 := math.Hypot(d, 2*clearance)
		elevDeg := math.Atan2(2*clearance, d) * 180 / math.Pi
		// Elevation rolloff at both arrays (parabolic, like the azimuth
		// pattern).
		elevLoss := 2 * 12 * (elevDeg / elevationBwDeg) * (elevDeg / elevationBwDeg)
		atten, blocked := l.blockerAttenDB([]geom.Segment{geom.Seg(tx, rx)}, verticalBlockScale)
		return Path{
			Dist:    d3,
			DelayNs: d3 / SpeedOfLight * 1e9,
			LossDB:  FSPLdB(d3) + bounceLoss + elevLoss + atten,
			Depart:  rx.Sub(tx).Norm(),
			Arrive:  tx.Sub(rx).Norm(),
			Bounces: 1,
			Blocked: blocked,
		}
	}
	paths = append(paths, mk(ceil-h, ceilingReflLossDB))
	paths = append(paths, mk(h, floorReflLossDB))
	return paths
}

func (l *Link) traceFirstOrder(tx, rx geom.Vec) []Path {
	var paths []Path
	for wi := range l.Env.Walls {
		w := &l.Env.Walls[wi]
		img := w.Seg.Mirror(tx)
		// The reflection point is where the image-to-Rx line crosses the
		// wall segment.
		u, ok := w.Seg.Intersect(geom.Seg(img, rx))
		if !ok {
			continue
		}
		p := w.Seg.PointAt(u)
		// Both endpoints must be on the same side of the wall for a true
		// specular reflection (the mirror construction guarantees it when
		// the intersection exists and tx is not behind the wall).
		if l.occluded(tx, p, wi) || l.occluded(p, rx, wi) {
			continue
		}
		legs := []geom.Segment{geom.Seg(tx, p), geom.Seg(p, rx)}
		d := tx.Dist(p) + p.Dist(rx)
		if d < 1e-6 {
			continue
		}
		atten, blocked := l.blockerAttenDB(legs, blockFactorBounce1)
		paths = append(paths, Path{
			Dist:    d,
			DelayNs: d / SpeedOfLight * 1e9,
			LossDB:  FSPLdB(d) + w.Mat.ReflLossDB + atten,
			Depart:  p.Sub(tx).Norm(),
			Arrive:  p.Sub(rx).Norm(),
			Bounces: 1,
			Blocked: blocked,
		})
	}
	return paths
}

func (l *Link) traceSecondOrder(tx, rx geom.Vec) []Path {
	var paths []Path
	for w1i := range l.Env.Walls {
		w1 := &l.Env.Walls[w1i]
		img1 := w1.Seg.Mirror(tx)
		for w2i := range l.Env.Walls {
			if w2i == w1i {
				continue
			}
			w2 := &l.Env.Walls[w2i]
			img2 := w2.Seg.Mirror(img1)
			u2, ok := w2.Seg.Intersect(geom.Seg(img2, rx))
			if !ok {
				continue
			}
			p2 := w2.Seg.PointAt(u2)
			u1, ok := w1.Seg.Intersect(geom.Seg(img1, p2))
			if !ok {
				continue
			}
			p1 := w1.Seg.PointAt(u1)
			if l.occluded(tx, p1, w1i) || l.occluded(p1, p2, w1i, w2i) || l.occluded(p2, rx, w2i) {
				continue
			}
			legs := []geom.Segment{geom.Seg(tx, p1), geom.Seg(p1, p2), geom.Seg(p2, rx)}
			d := tx.Dist(p1) + p1.Dist(p2) + p2.Dist(rx)
			if d < 1e-6 {
				continue
			}
			atten, blocked := l.blockerAttenDB(legs, blockFactorBounce2)
			paths = append(paths, Path{
				Dist:    d,
				DelayNs: d / SpeedOfLight * 1e9,
				LossDB:  FSPLdB(d) + w1.Mat.ReflLossDB + w2.Mat.ReflLossDB + atten,
				Depart:  p1.Sub(tx).Norm(),
				Arrive:  p2.Sub(rx).Norm(),
				Bounces: 2,
				Blocked: blocked,
			})
		}
	}
	return paths
}
