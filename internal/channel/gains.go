package channel

import (
	"math"
	"runtime"
	"sync"

	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/phased"
)

// gainTables holds the per-geometry hot-path tables shared by Measure, Sweep
// and Snapshot: linear antenna gains per beam per path on both ends, the
// linear link-budget base per path, and the PDP delay anchor. Building them
// costs O(NumBeams*paths) gain evaluations once per geometric state; every
// subsequent Measure or Sweep at that state is pure multiply-adds.
type gainTables struct {
	// paths aliases the link's traced paths at build time.
	paths []Path
	// linBase[p] = linear(TxPower - ImplLoss - pathLoss).
	linBase []float64
	// txLin[b][p] and rxLin[b][p] are linear beam gains; row NumBeams is
	// the quasi-omni pattern (see beamIndex).
	txLin, rxLin [][]float64
	// minDelayNs anchors the PDP at the earliest arriving path.
	minDelayNs float64
	// txPowerDBm and implLossDB record the link-budget scalars baked into
	// linBase at build time; the cache revalidates against them so callers
	// that set Link.TxPowerDBm or Link.ImplLossDB directly (as cots.Tune
	// does) are never served a stale budget.
	txPowerDBm, implLossDB float64
}

// ensureGains returns the gain tables for the current geometry and link
// budget, rebuilding them when the geometry epoch advanced or the budget
// fields changed. Rebuilds always allocate fresh slices so previously
// handed-out rows (e.g. inside a Snapshot) stay valid.
func (l *Link) ensureGains() *gainTables {
	if l.gainsOK && l.gainsEpoch == l.geomEpoch &&
		l.gains.txPowerDBm == l.TxPowerDBm && l.gains.implLossDB == l.ImplLossDB {
		return &l.gains
	}
	paths := l.Paths()
	np := len(paths)
	nb := phased.NumBeams + 1 // +1 for quasi-omni

	g := &l.gains
	g.paths = paths
	g.txPowerDBm = l.TxPowerDBm
	g.implLossDB = l.ImplLossDB
	g.linBase = make([]float64, np)
	g.txLin = make([][]float64, nb)
	g.rxLin = make([][]float64, nb)
	for b := 0; b < nb; b++ {
		g.txLin[b] = make([]float64, np)
		g.rxLin[b] = make([]float64, np)
	}
	g.minDelayNs = math.Inf(1)

	var dbBuf [phased.NumBeams]float64
	for p, pa := range paths {
		g.linBase[p] = dsp.Lin(l.TxPowerDBm - l.ImplLossDB - pa.LossDB)
		if pa.DelayNs < g.minDelayNs {
			g.minDelayNs = pa.DelayNs
		}
		qo := l.Tx.AllGainsDBi(pa.Depart, dbBuf[:])
		for b := 0; b < phased.NumBeams; b++ {
			g.txLin[b][p] = dsp.Lin(dbBuf[b])
		}
		g.txLin[phased.NumBeams][p] = dsp.Lin(qo)
		qo = l.Rx.AllGainsDBi(pa.Arrive, dbBuf[:])
		for b := 0; b < phased.NumBeams; b++ {
			g.rxLin[b][p] = dsp.Lin(dbBuf[b])
		}
		g.rxLin[phased.NumBeams][p] = dsp.Lin(qo)
	}

	l.gainsOK = true
	l.gainsEpoch = l.geomEpoch
	return g
}

// row returns the gain row for a beam ID, or nil for an out-of-codebook ID
// (whose gain is -Inf dBi, i.e. zero linear gain).
func (g *gainTables) row(tab [][]float64, beamID int) []float64 {
	if beamID == phased.QuasiOmniID {
		return tab[phased.NumBeams]
	}
	if beamID < 0 || beamID >= phased.NumBeams {
		return nil
	}
	return tab[beamID]
}

// noiseMwFor returns the cached noise power (thermal + co-channel
// interference, mW) seen through an Rx beam. The per-beam vector is reused
// until the epoch advances (Invalidate or SetInterferers) or the noise
// figure changes, so repeated Measure calls between state changes do not
// re-accumulate interference.
func (l *Link) noiseMwFor(rxBeam int) float64 {
	if !l.noiseOK || l.noiseEpoch != l.pathEpoch || l.noiseNF != l.NoiseFigureDB {
		if l.noiseMw == nil {
			l.noiseMw = make([]float64, phased.NumBeams+1)
		}
		for i := range l.noiseMw {
			l.noiseMw[i] = -1
		}
		l.noiseOK = true
		l.noiseEpoch = l.pathEpoch
		l.noiseNF = l.NoiseFigureDB
	}
	i := beamIndex(rxBeam)
	if i < 0 || i >= len(l.noiseMw) {
		return dsp.Lin(ThermalNoiseDBm(l.NoiseFigureDB)) + l.interferenceMw(rxBeam)
	}
	if l.noiseMw[i] < 0 {
		l.noiseMw[i] = dsp.Lin(ThermalNoiseDBm(l.NoiseFigureDB)) + l.interferenceMw(rxBeam)
	}
	return l.noiseMw[i]
}

// parallelRows runs fn(i) for every i in [0, n) across up to GOMAXPROCS
// goroutines in contiguous blocks. The iterations must be independent; fn
// must not touch shared mutable state.
func parallelRows(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			for i := start; i < end; i++ {
				fn(i)
			}
		}(start, end)
	}
	wg.Wait()
}
