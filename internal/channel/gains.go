package channel

import (
	"math"

	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
)

// gainTables holds the per-geometry hot-path tables shared by Measure, Sweep
// and Snapshot: linear antenna gains per beam per path on both ends, the
// linear link-budget base per path, and the PDP delay anchor. Building them
// costs O(NumBeams*paths) gain evaluations once per geometric state; every
// subsequent Measure or Sweep at that state is pure multiply-adds.
type gainTables struct {
	// paths aliases the link's traced paths at build time.
	paths []Path
	// linBase[p] = linear(TxPower - ImplLoss - pathLoss).
	linBase []float64
	// txLin[b][p] and rxLin[b][p] are linear beam gains; row NumBeams is
	// the quasi-omni pattern (see beamIndex).
	txLin, rxLin [][]float64
	// minDelayNs anchors the PDP at the earliest arriving path.
	minDelayNs float64
	// txPowerDBm and implLossDB record the link-budget scalars baked into
	// linBase at build time; the cache revalidates against them so callers
	// that set Link.TxPowerDBm or Link.ImplLossDB directly (as cots.Tune
	// does) are never served a stale budget.
	txPowerDBm, implLossDB float64
}

// ensureFloorLin revalidates the cached linear conversions of an array's
// per-beam pattern floors (index b) and quasi-omni gain (index NumBeams).
// Off-axis beams evaluate to the floor for most path directions, so serving
// those conversions from the cache removes the bulk of the Pow calls in a
// rebuild; dsp.Lin is a pure function, so a cached value is bit-identical to
// a fresh one.
func ensureFloorLin(a *phased.Array, db, lin []float64) ([]float64, []float64) {
	nb := len(a.Beams)
	if len(db) != nb+1 {
		db = make([]float64, nb+1)
		lin = make([]float64, nb+1)
		for i := range db {
			db[i] = math.NaN() // never equal: force first-use computation
		}
	}
	for i, bm := range a.Beams {
		if db[i] != bm.FloorDBi {
			db[i] = bm.FloorDBi
			lin[i] = dsp.Lin(bm.FloorDBi)
		}
	}
	if db[nb] != a.QuasiOmniGainDBi {
		db[nb] = a.QuasiOmniGainDBi
		lin[nb] = dsp.Lin(a.QuasiOmniGainDBi)
	}
	return db, lin
}

// linGain converts one beam gain to linear, serving pattern-floor and
// quasi-omni hits from the cached conversions.
func linGain(v float64, i int, floorDB, floorLin []float64) float64 {
	if v == floorDB[i] {
		return floorLin[i]
	}
	return dsp.Lin(v)
}

// dirGainKey identifies a cached per-direction gain row: the exact world
// direction a path departs or arrives along and the array orientation it was
// evaluated under.
type dirGainKey struct {
	dir    geom.Vec
	orient float64
}

// maxDirGainRows bounds each per-link direction cache; overflowing clears it,
// which only costs recomputation — every cached row is a pure function of its
// key.
const maxDirGainRows = 4096

// dirGainsLin returns the linear beam-gain row (the NumBeams pattern beams
// plus the quasi-omni entry) of array a toward dir, serving repeats from
// cache. Path directions repeat heavily across geometry epochs: a blockage
// state keeps every path slot's direction and merely changes its loss, and an
// interference calibration never moves an endpoint — so rebuild after rebuild
// resolves to map hits instead of per-beam lobe evaluations and dB→linear
// Pow calls. A cached row is a pure function of (pattern, orientation,
// direction), so a hit is bit-identical to recomputation.
func dirGainsLin(cache map[dirGainKey][]float64, a *phased.Array, dir geom.Vec, floorDB, floorLin []float64) []float64 {
	k := dirGainKey{dir: dir, orient: a.OrientDeg}
	if row, ok := cache[k]; ok {
		obsDirGainHits.Inc()
		return row
	}
	var dbBuf [phased.NumBeams]float64
	row := make([]float64, phased.NumBeams+1)
	qo := a.AllGainsDBi(dir, dbBuf[:])
	for b := 0; b < phased.NumBeams; b++ {
		row[b] = linGain(dbBuf[b], b, floorDB, floorLin)
	}
	row[phased.NumBeams] = linGain(qo, phased.NumBeams, floorDB, floorLin)
	if len(cache) >= maxDirGainRows {
		clear(cache)
	}
	cache[k] = row
	return row
}

// ensureGains returns the gain tables for the current geometry and link
// budget, rebuilding them when the geometry epoch advanced or the budget
// fields changed. Rebuilds always allocate fresh slices so previously
// handed-out rows (e.g. inside a Snapshot) stay valid.
func (l *Link) ensureGains() *gainTables {
	if l.gainsOK && l.gainsEpoch == l.geomEpoch &&
		l.gains.txPowerDBm == l.TxPowerDBm && l.gains.implLossDB == l.ImplLossDB {
		if l.gainsRxEpoch != l.rxGeomEpoch {
			l.rebuildRxGains()
		}
		return &l.gains
	}
	obsGainRebuilds.Inc()
	paths := l.Paths()
	np := len(paths)
	nb := phased.NumBeams + 1 // +1 for quasi-omni

	g := &l.gains
	g.paths = paths
	g.txPowerDBm = l.TxPowerDBm
	g.implLossDB = l.ImplLossDB
	g.linBase = make([]float64, np)
	g.txLin = gainRows(nb, np)
	g.rxLin = gainRows(nb, np)
	g.minDelayNs = math.Inf(1)

	l.txFloorDB, l.txFloorLin = ensureFloorLin(l.Tx, l.txFloorDB, l.txFloorLin)
	l.rxFloorDB, l.rxFloorLin = ensureFloorLin(l.Rx, l.rxFloorDB, l.rxFloorLin)
	if l.txDirLin == nil {
		l.txDirLin = map[dirGainKey][]float64{}
		l.rxDirLin = map[dirGainKey][]float64{}
	}
	for p, pa := range paths {
		g.linBase[p] = dsp.Lin(l.TxPowerDBm - l.ImplLossDB - pa.LossDB)
		if pa.DelayNs < g.minDelayNs {
			g.minDelayNs = pa.DelayNs
		}
		row := dirGainsLin(l.txDirLin, l.Tx, pa.Depart, l.txFloorDB, l.txFloorLin)
		for b := 0; b <= phased.NumBeams; b++ {
			g.txLin[b][p] = row[b]
		}
		row = dirGainsLin(l.rxDirLin, l.Rx, pa.Arrive, l.rxFloorDB, l.rxFloorLin)
		for b := 0; b <= phased.NumBeams; b++ {
			g.rxLin[b][p] = row[b]
		}
	}

	l.gainsOK = true
	l.gainsEpoch = l.geomEpoch
	l.gainsRxEpoch = l.rxGeomEpoch
	return g
}

// rebuildRxGains refreshes only the Rx-side gain rows after a pure Rx
// rotation: the traced paths, link budget, and Tx gains are unaffected, so a
// rotation sweep costs one AllGainsDBi pass per path on the Rx array instead
// of a re-trace plus a full two-sided rebuild. Fresh rows are allocated so
// previously handed-out tables (e.g. inside a Snapshot) stay valid.
func (l *Link) rebuildRxGains() {
	obsGainRxRebuilds.Inc()
	g := &l.gains
	np := len(g.paths)
	nb := phased.NumBeams + 1
	rx := gainRows(nb, np)
	l.rxFloorDB, l.rxFloorLin = ensureFloorLin(l.Rx, l.rxFloorDB, l.rxFloorLin)
	if l.rxDirLin == nil {
		l.rxDirLin = map[dirGainKey][]float64{}
	}
	for p := range g.paths {
		row := dirGainsLin(l.rxDirLin, l.Rx, g.paths[p].Arrive, l.rxFloorDB, l.rxFloorLin)
		for b := 0; b <= phased.NumBeams; b++ {
			rx[b][p] = row[b]
		}
	}
	g.rxLin = rx
	l.gainsRxEpoch = l.rxGeomEpoch
}

// row returns the gain row for a beam ID, or nil for an out-of-codebook ID
// (whose gain is -Inf dBi, i.e. zero linear gain).
func (g *gainTables) row(tab [][]float64, beamID int) []float64 {
	if beamID == phased.QuasiOmniID {
		return tab[phased.NumBeams]
	}
	if beamID < 0 || beamID >= phased.NumBeams {
		return nil
	}
	return tab[beamID]
}

// noiseMwFor returns the cached noise power (thermal + co-channel
// interference, mW) seen through an Rx beam. The per-beam vector is reused
// until the epoch advances (Invalidate or SetInterferers) or the noise
// figure changes, so repeated Measure calls between state changes do not
// re-accumulate interference.
func (l *Link) noiseMwFor(rxBeam int) float64 {
	if !l.noiseOK || l.noiseEpoch != l.pathEpoch || l.noiseNF != l.NoiseFigureDB {
		obsNoiseRefills.Inc()
		if l.noiseMw == nil {
			l.noiseMw = make([]float64, phased.NumBeams+1)
		}
		for i := range l.noiseMw {
			l.noiseMw[i] = -1
		}
		l.noiseOK = true
		l.noiseEpoch = l.pathEpoch
		l.noiseNF = l.NoiseFigureDB
	}
	i := beamIndex(rxBeam)
	if i < 0 || i >= len(l.noiseMw) {
		return l.thermalMw() + l.interferenceMw(rxBeam)
	}
	if l.noiseMw[i] < 0 {
		l.noiseMw[i] = l.thermalMw() + l.interferenceMw(rxBeam)
	}
	return l.noiseMw[i]
}

// thermalMw returns the linear thermal noise floor for the current noise
// figure, converting it at most once per noise-figure value: the conversion
// is a pure function of NoiseFigureDB, and every beam of every noise-vector
// refill shares it.
func (l *Link) thermalMw() float64 {
	if !l.thermalOK || l.thermalNFv != l.NoiseFigureDB {
		l.thermalNFv = l.NoiseFigureDB
		l.thermalMwV = dsp.Lin(ThermalNoiseDBm(l.NoiseFigureDB))
		l.thermalOK = true
	}
	return l.thermalMwV
}

// gainRows carves nb rows of np elements each out of one contiguous block:
// nb+2 allocations become 2 (headers + block), the rows are cache-dense for
// the blocked sweep kernels, and — because the block is freshly allocated on
// every rebuild — previously handed-out rows (e.g. inside a Snapshot) stay
// valid, preserving the aliasing contract of ensureGains.
func gainRows(nb, np int) [][]float64 {
	rows := make([][]float64, nb)
	block := make([]float64, nb*np)
	for b := 0; b < nb; b++ {
		rows[b], block = block[:np:np], block[np:]
	}
	return rows
}
