package channel

import (
	"math"
	"runtime"
	"sync"

	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/phased"
)

// gainTables holds the per-geometry hot-path tables shared by Measure, Sweep
// and Snapshot: linear antenna gains per beam per path on both ends, the
// linear link-budget base per path, and the PDP delay anchor. Building them
// costs O(NumBeams*paths) gain evaluations once per geometric state; every
// subsequent Measure or Sweep at that state is pure multiply-adds.
type gainTables struct {
	// paths aliases the link's traced paths at build time.
	paths []Path
	// linBase[p] = linear(TxPower - ImplLoss - pathLoss).
	linBase []float64
	// txLin[b][p] and rxLin[b][p] are linear beam gains; row NumBeams is
	// the quasi-omni pattern (see beamIndex).
	txLin, rxLin [][]float64
	// minDelayNs anchors the PDP at the earliest arriving path.
	minDelayNs float64
	// txPowerDBm and implLossDB record the link-budget scalars baked into
	// linBase at build time; the cache revalidates against them so callers
	// that set Link.TxPowerDBm or Link.ImplLossDB directly (as cots.Tune
	// does) are never served a stale budget.
	txPowerDBm, implLossDB float64
}

// ensureFloorLin revalidates the cached linear conversions of an array's
// per-beam pattern floors (index b) and quasi-omni gain (index NumBeams).
// Off-axis beams evaluate to the floor for most path directions, so serving
// those conversions from the cache removes the bulk of the Pow calls in a
// rebuild; dsp.Lin is a pure function, so a cached value is bit-identical to
// a fresh one.
func ensureFloorLin(a *phased.Array, db, lin []float64) ([]float64, []float64) {
	nb := len(a.Beams)
	if len(db) != nb+1 {
		db = make([]float64, nb+1)
		lin = make([]float64, nb+1)
		for i := range db {
			db[i] = math.NaN() // never equal: force first-use computation
		}
	}
	for i, bm := range a.Beams {
		if db[i] != bm.FloorDBi {
			db[i] = bm.FloorDBi
			lin[i] = dsp.Lin(bm.FloorDBi)
		}
	}
	if db[nb] != a.QuasiOmniGainDBi {
		db[nb] = a.QuasiOmniGainDBi
		lin[nb] = dsp.Lin(a.QuasiOmniGainDBi)
	}
	return db, lin
}

// linGain converts one beam gain to linear, serving pattern-floor and
// quasi-omni hits from the cached conversions.
func linGain(v float64, i int, floorDB, floorLin []float64) float64 {
	if v == floorDB[i] {
		return floorLin[i]
	}
	return dsp.Lin(v)
}

// ensureGains returns the gain tables for the current geometry and link
// budget, rebuilding them when the geometry epoch advanced or the budget
// fields changed. Rebuilds always allocate fresh slices so previously
// handed-out rows (e.g. inside a Snapshot) stay valid.
func (l *Link) ensureGains() *gainTables {
	if l.gainsOK && l.gainsEpoch == l.geomEpoch &&
		l.gains.txPowerDBm == l.TxPowerDBm && l.gains.implLossDB == l.ImplLossDB {
		if l.gainsRxEpoch != l.rxGeomEpoch {
			l.rebuildRxGains()
		}
		return &l.gains
	}
	obsGainRebuilds.Inc()
	paths := l.Paths()
	np := len(paths)
	nb := phased.NumBeams + 1 // +1 for quasi-omni

	g := &l.gains
	g.paths = paths
	g.txPowerDBm = l.TxPowerDBm
	g.implLossDB = l.ImplLossDB
	g.linBase = make([]float64, np)
	g.txLin = make([][]float64, nb)
	g.rxLin = make([][]float64, nb)
	for b := 0; b < nb; b++ {
		g.txLin[b] = make([]float64, np)
		g.rxLin[b] = make([]float64, np)
	}
	g.minDelayNs = math.Inf(1)

	l.txFloorDB, l.txFloorLin = ensureFloorLin(l.Tx, l.txFloorDB, l.txFloorLin)
	l.rxFloorDB, l.rxFloorLin = ensureFloorLin(l.Rx, l.rxFloorDB, l.rxFloorLin)
	var dbBuf [phased.NumBeams]float64
	for p, pa := range paths {
		g.linBase[p] = dsp.Lin(l.TxPowerDBm - l.ImplLossDB - pa.LossDB)
		if pa.DelayNs < g.minDelayNs {
			g.minDelayNs = pa.DelayNs
		}
		qo := l.Tx.AllGainsDBi(pa.Depart, dbBuf[:])
		for b := 0; b < phased.NumBeams; b++ {
			g.txLin[b][p] = linGain(dbBuf[b], b, l.txFloorDB, l.txFloorLin)
		}
		g.txLin[phased.NumBeams][p] = linGain(qo, phased.NumBeams, l.txFloorDB, l.txFloorLin)
		qo = l.Rx.AllGainsDBi(pa.Arrive, dbBuf[:])
		for b := 0; b < phased.NumBeams; b++ {
			g.rxLin[b][p] = linGain(dbBuf[b], b, l.rxFloorDB, l.rxFloorLin)
		}
		g.rxLin[phased.NumBeams][p] = linGain(qo, phased.NumBeams, l.rxFloorDB, l.rxFloorLin)
	}

	l.gainsOK = true
	l.gainsEpoch = l.geomEpoch
	l.gainsRxEpoch = l.rxGeomEpoch
	return g
}

// rebuildRxGains refreshes only the Rx-side gain rows after a pure Rx
// rotation: the traced paths, link budget, and Tx gains are unaffected, so a
// rotation sweep costs one AllGainsDBi pass per path on the Rx array instead
// of a re-trace plus a full two-sided rebuild. Fresh rows are allocated so
// previously handed-out tables (e.g. inside a Snapshot) stay valid.
func (l *Link) rebuildRxGains() {
	obsGainRxRebuilds.Inc()
	g := &l.gains
	np := len(g.paths)
	nb := phased.NumBeams + 1
	rx := make([][]float64, nb)
	for b := 0; b < nb; b++ {
		rx[b] = make([]float64, np)
	}
	l.rxFloorDB, l.rxFloorLin = ensureFloorLin(l.Rx, l.rxFloorDB, l.rxFloorLin)
	var dbBuf [phased.NumBeams]float64
	for p := range g.paths {
		qo := l.Rx.AllGainsDBi(g.paths[p].Arrive, dbBuf[:])
		for b := 0; b < phased.NumBeams; b++ {
			rx[b][p] = linGain(dbBuf[b], b, l.rxFloorDB, l.rxFloorLin)
		}
		rx[phased.NumBeams][p] = linGain(qo, phased.NumBeams, l.rxFloorDB, l.rxFloorLin)
	}
	g.rxLin = rx
	l.gainsRxEpoch = l.rxGeomEpoch
}

// row returns the gain row for a beam ID, or nil for an out-of-codebook ID
// (whose gain is -Inf dBi, i.e. zero linear gain).
func (g *gainTables) row(tab [][]float64, beamID int) []float64 {
	if beamID == phased.QuasiOmniID {
		return tab[phased.NumBeams]
	}
	if beamID < 0 || beamID >= phased.NumBeams {
		return nil
	}
	return tab[beamID]
}

// noiseMwFor returns the cached noise power (thermal + co-channel
// interference, mW) seen through an Rx beam. The per-beam vector is reused
// until the epoch advances (Invalidate or SetInterferers) or the noise
// figure changes, so repeated Measure calls between state changes do not
// re-accumulate interference.
func (l *Link) noiseMwFor(rxBeam int) float64 {
	if !l.noiseOK || l.noiseEpoch != l.pathEpoch || l.noiseNF != l.NoiseFigureDB {
		obsNoiseRefills.Inc()
		if l.noiseMw == nil {
			l.noiseMw = make([]float64, phased.NumBeams+1)
		}
		for i := range l.noiseMw {
			l.noiseMw[i] = -1
		}
		l.noiseOK = true
		l.noiseEpoch = l.pathEpoch
		l.noiseNF = l.NoiseFigureDB
	}
	i := beamIndex(rxBeam)
	if i < 0 || i >= len(l.noiseMw) {
		return l.thermalMw() + l.interferenceMw(rxBeam)
	}
	if l.noiseMw[i] < 0 {
		l.noiseMw[i] = l.thermalMw() + l.interferenceMw(rxBeam)
	}
	return l.noiseMw[i]
}

// thermalMw returns the linear thermal noise floor for the current noise
// figure, converting it at most once per noise-figure value: the conversion
// is a pure function of NoiseFigureDB, and every beam of every noise-vector
// refill shares it.
func (l *Link) thermalMw() float64 {
	if !l.thermalOK || l.thermalNFv != l.NoiseFigureDB {
		l.thermalNFv = l.NoiseFigureDB
		l.thermalMwV = dsp.Lin(ThermalNoiseDBm(l.NoiseFigureDB))
		l.thermalOK = true
	}
	return l.thermalMwV
}

// parallelRows runs fn(i) for every i in [0, n) across up to GOMAXPROCS
// goroutines in contiguous blocks. The iterations must be independent; fn
// must not touch shared mutable state.
func parallelRows(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			for i := start; i < end; i++ {
				fn(i)
			}
		}(start, end)
	}
	wg.Wait()
}
