package channel

import (
	"math"
	"sync"

	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
)

// PDP parameters. With 2 GHz of bandwidth the delay resolution is 0.5 ns;
// 256 taps cover 128 ns (~38 m of excess path), plenty for indoor rooms.
const (
	// PDPTaps is the number of delay bins in a logged power delay profile.
	PDPTaps = 256
	// PDPBinNs is the delay bin width in nanoseconds (1/bandwidth).
	PDPBinNs = 0.5
)

// Measurement is one PHY layer observation for a given Tx/Rx beam pair —
// the per-frame log record of the X60 testbed (§5.1).
type Measurement struct {
	// RSSdBm is the total received signal power.
	RSSdBm float64
	// NoiseDBm is the measured noise level: thermal floor plus co-channel
	// interference as seen through the Rx beam.
	NoiseDBm float64
	// SNRdB is RSS - Noise, in dB.
	SNRdB float64
	// ToFNs is the time of flight of the strongest path in nanoseconds.
	// It is +Inf when the signal is below the receiver sensitivity,
	// matching X60's behaviour under extremely weak signal.
	ToFNs float64
	// PDP is the power delay profile: linear power (mW) per 0.5 ns bin,
	// with the first bin anchored at the earliest arriving path.
	PDP []float64
}

// CSI returns the paper's channel state information estimate for the
// single-carrier PHY (§6.1): the frequency response magnitude obtained by
// transforming the power delay profile to the frequency domain. Tap
// amplitudes (square roots of tap powers) are transformed so the result is
// |H(f)| — the multipath fading pattern across the 2 GHz channel — rather
// than a power spectrum.
func (m *Measurement) CSI() []float64 {
	return m.CSIInto(nil)
}

// ampPool recycles the tap-amplitude scratch of CSIInto.
var ampPool = sync.Pool{New: func() any { return new([]float64) }}

// maxPooledAmpCap bounds the backing capacity ampPool retains. A campaign
// with oversized PDPs (longer than the standard PDPTaps window) would
// otherwise pin its large scratch arrays in the pool forever: sync.Pool
// keeps whatever is Put, and later campaigns with normal-sized PDPs would
// re-slice the big arrays without ever releasing them. Buffers beyond the
// cap are simply not returned to the pool.
const maxPooledAmpCap = 4 * PDPTaps

// CSIInto computes the CSI estimate into dst, growing it only when its
// capacity is insufficient, and returns dst re-sliced to the spectrum
// length. Together with pooled FFT scratch this keeps the featurization hot
// path allocation-free when the caller reuses dst across measurements.
func (m *Measurement) CSIInto(dst []float64) []float64 {
	ap := ampPool.Get().(*[]float64)
	amp := *ap
	if cap(amp) < len(m.PDP) {
		amp = make([]float64, len(m.PDP))
	}
	amp = amp[:len(m.PDP)]
	for i, p := range m.PDP {
		if p > 0 {
			amp[i] = math.Sqrt(p)
		} else {
			amp[i] = 0
		}
	}
	dst = dsp.FFTRealInto(dst, amp)
	if cap(amp) <= maxPooledAmpCap {
		*ap = amp
		ampPool.Put(ap)
	}
	return dst
}

// Measure computes the PHY observation for the given Tx and Rx beams.
// Use phased.QuasiOmniID for quasi-omni operation on either side.
//
// Per-beam linear gains and the link-budget base are memoized per geometric
// state (see ensureGains), so repeated measurements between Invalidate calls
// cost O(paths) multiply-adds instead of O(paths) gain evaluations and
// dB-to-linear conversions.
func (l *Link) Measure(txBeam, rxBeam int) Measurement {
	var m Measurement
	l.MeasureInto(&m, txBeam, rxBeam)
	return m
}

// MeasureInto computes the observation into m, reusing m.PDP's backing
// array when its capacity suffices. Callers that own a scratch Measurement
// and recycle it across calls (the campaign generator's per-worker arena)
// measure without allocating; the values written are bit-identical to what
// Measure returns. The two suppressed calls below rebuild memo tables at
// most once per geometric state — cold work amortized across the thousands
// of measurements taken at each state.
//
//lint:noalloc per-frame measurement kernel; PDP scratch is caller-owned
func (l *Link) MeasureInto(m *Measurement, txBeam, rxBeam int) {
	obsMeasures.Inc()
	g := l.ensureGains() //lint:ignore noalloc cold gain-table rebuild, once per geometry epoch
	measureInto(m, g.paths, g.linBase,
		g.row(g.txLin, txBeam), g.row(g.rxLin, rxBeam),
		//lint:ignore noalloc cold noise-vector refill, once per epoch and noise figure
		l.noiseMwFor(rxBeam), g.minDelayNs)
}

// interferenceMw returns the co-channel interference power (mW, time
// averaged over duty cycle) received through the given Rx beam. The hidden
// terminal's signal propagates through the same environment as the victim
// link — direct ray plus wall reflections — so re-beaming toward a reflector
// picks up the interferer's reflection off that same wall. This is what
// makes interference hard to escape via beam adaptation (§6.1.3) and RA the
// usually preferred mechanism under interference.
func (l *Link) interferenceMw(rxBeam int) float64 {
	if len(l.Interferers) == 0 {
		return 0
	}
	l.ensureInterferencePaths()
	// Rx beam gains toward the interferer paths depend only on the path
	// geometry and the Rx orientation, not on EIRP or duty cycle, so they are
	// cached per beam across the EIRP-only changes of an interference
	// calibration (ensureInterferencePaths drops the cache on re-trace).
	if l.intfRxGain == nil || l.intfRxGainRxEpoch != l.rxGeomEpoch {
		l.intfRxGain = make([][][]float64, len(l.Interferers))
		for i := range l.intfRxGain {
			l.intfRxGain[i] = make([][]float64, phased.NumBeams+1)
		}
		l.intfRxGainRxEpoch = l.rxGeomEpoch
	}
	if l.intfLinArg == nil || len(l.intfLinArg) != len(l.Interferers) {
		l.intfLinArg = make([][]float64, len(l.Interferers))
		l.intfLinVal = make([][]float64, len(l.Interferers))
	}
	bi := beamIndex(rxBeam)
	var total float64
	for i, it := range l.Interferers {
		paths := l.intfPaths[i]
		var row []float64
		if bi >= 0 && bi <= phased.NumBeams {
			row = l.intfRxGain[i][bi]
			if row == nil {
				row = make([]float64, len(paths))
				for p := range paths {
					row[p] = l.Rx.GainDBi(rxBeam, paths[p].Arrive)
				}
				l.intfRxGain[i][bi] = row
			}
		}
		// Per-path last-argument memo for the dB→linear conversion: a refill
		// walks the whole codebook, and a path's receive gain sits at the
		// pattern floor for all but the few beams aimed near it, so the
		// conversion argument repeats run-length-wise across beams. Exact
		// argument equality on a pure function keeps the served value
		// bit-identical to a fresh dsp.Lin call.
		linArg, linVal := l.intfLinArg[i], l.intfLinVal[i]
		if len(linArg) != len(paths) {
			linArg = make([]float64, len(paths))
			linVal = make([]float64, len(paths))
			for p := range linArg {
				linArg[p] = math.NaN() // never equal: force first-use computation
			}
			l.intfLinArg[i], l.intfLinVal[i] = linArg, linVal
		}
		for p := range paths {
			gdb := 0.0
			if row != nil {
				gdb = row[p]
			} else {
				gdb = l.Rx.GainDBi(rxBeam, paths[p].Arrive)
			}
			g := it.EIRPdBm + gdb - paths[p].LossDB
			lin := linVal[p]
			if g != linArg[p] {
				lin = dsp.Lin(g)
				linArg[p], linVal[p] = g, lin
			}
			total += lin * it.DutyCycle
		}
	}
	return total
}

// ensureInterferencePaths traces interferer-to-Rx paths. The traces depend
// only on the link geometry and the interferer positions, so they are cached
// across SetInterferers calls that merely change EIRP or duty cycle — the
// common case when calibrating an interference level at a fixed placement.
func (l *Link) ensureInterferencePaths() {
	if l.intfPathsOK && l.intfGeomEpoch == l.geomEpoch && l.samePositions() {
		return
	}
	obsIntfTraces.Inc()
	l.intfPaths = make([][]Path, len(l.Interferers))
	l.intfRxGain = nil
	for i, it := range l.Interferers {
		paths := l.traceBetween(it.Pos, l.Rx.Pos, l.MaxBounces)
		if len(paths) == 0 {
			// Fully occluded: model residual through-wall leakage as a
			// single heavily attenuated direct ray.
			d := it.Pos.Dist(l.Rx.Pos)
			paths = []Path{{
				Dist:    d,
				DelayNs: d / SpeedOfLight * 1e9,
				LossDB:  FSPLdB(d) + 30,
				Depart:  l.Rx.Pos.Sub(it.Pos).Norm(),
				Arrive:  it.Pos.Sub(l.Rx.Pos).Norm(),
			}}
		}
		l.intfPaths[i] = paths
	}
	l.intfPosKey = l.intfPosKey[:0]
	for _, it := range l.Interferers {
		l.intfPosKey = append(l.intfPosKey, it.Pos)
	}
	l.intfPathsOK = true
	l.intfGeomEpoch = l.geomEpoch
}

// samePositions reports whether the interferer positions match the ones the
// path cache was traced for.
func (l *Link) samePositions() bool {
	if len(l.intfPosKey) != len(l.Interferers) {
		return false
	}
	for i, it := range l.Interferers {
		if it.Pos != l.intfPosKey[i] {
			return false
		}
	}
	return true
}

// SNRdB returns only the SNR for a beam pair. It accumulates the same
// received-power sum as Measure without building the power delay profile —
// the hot path of interference calibration, which binary-searches dozens of
// EIRP values per placement and needs nothing but the SNR.
func (l *Link) SNRdB(txBeam, rxBeam int) float64 {
	g := l.ensureGains()
	txRow := g.row(g.txLin, txBeam)
	rxRow := g.row(g.rxLin, rxBeam)
	noiseMw := l.noiseMwFor(rxBeam)
	var totalMw float64
	if txRow != nil && rxRow != nil {
		for p := range g.linBase {
			totalMw += g.linBase[p] * txRow[p] * rxRow[p]
		}
	}
	return dsp.DB(totalMw) - dsp.DB(noiseMw)
}

// Sweep measures the SNR of every Tx x Rx beam pair — the naive O(N^2)
// exhaustive sector level sweep used to establish ground truth (§5.1: "we
// first performed a SLS to collect SNR measurements for all 625 (25x25) beam
// pairs"). The result is indexed [txBeam][rxBeam].
//
// Per-path antenna gains are memoized per beam and per geometric state (see
// ensureGains), so the sweep costs O(N*paths) gain evaluations at most once
// per state plus one pass of the fused sweepPowerInto kernel — a blocked
// O(N^2*paths) multiply-add over the cached tables with pooled scratch and a
// single contiguous result block (two allocations per call, both handed to
// the caller).
func (l *Link) Sweep() [][]float64 {
	obsSweeps.Inc()
	g := l.ensureGains()
	sc := sweepPool.Get().(*sweepScratch)
	sc.grow(len(g.linBase))
	for r := 0; r < phased.NumBeams; r++ {
		sc.noiseDB[r] = dsp.DB(l.noiseMwFor(r))
	}
	out := sweepSNR(sc, g.linBase, g.txLin, g.rxLin)
	sweepPool.Put(sc)
	return out
}

// BestPair returns the beam pair with the highest SNR, along with that SNR.
//
// The result equals scanning Sweep() in row-major order with strict ">", but
// is computed from per-Rx-beam received-power maxima: within a column the
// noise is constant and dB conversion is strictly monotone, so the first Tx
// beam attaining the column's power maximum is the column's row-major SNR
// winner, and the global row-major winner is the lexicographically smallest
// (tx, rx) among the column winners. Only NumBeams dB conversions remain
// instead of NumBeams^2, and the result is cached per (state, link budget) —
// the ground-truth SLS that labeling and re-initialization run back-to-back
// at one state then costs a single evaluation.
func (l *Link) BestPair() (txBeam, rxBeam int, snrDB float64) {
	if l.bestOK && l.bestEpoch == l.pathEpoch && l.bestNF == l.NoiseFigureDB &&
		l.bestTxP == l.TxPowerDBm && l.bestIL == l.ImplLossDB {
		obsBestPairHits.Inc()
		return l.bestT, l.bestR, l.bestSNR
	}
	obsBestPairMisses.Inc()
	g := l.ensureGains()
	sc := sweepPool.Get().(*sweepScratch)
	sc.grow(len(g.linBase))
	sweepPowerInto(sc.pow, sc.txw, g.linBase, g.txLin, g.rxLin)
	for r := 0; r < phased.NumBeams; r++ {
		sc.noiseDB[r] = dsp.DB(l.noiseMwFor(r))
	}
	txBeam, rxBeam, snrDB = bestFromPow(sc.pow, sc.noiseDB)
	sweepPool.Put(sc)
	l.bestOK = true
	l.bestEpoch = l.pathEpoch
	l.bestNF, l.bestTxP, l.bestIL = l.NoiseFigureDB, l.TxPowerDBm, l.ImplLossDB
	l.bestT, l.bestR, l.bestSNR = txBeam, rxBeam, snrDB
	return txBeam, rxBeam, snrDB
}

// BestTxQuasiOmni returns the best Tx beam when the Rx listens in quasi-omni
// mode — the reduced-overhead training COTS devices use (§2: "COTS devices
// only perform Tx beam training and always receive in quasi-omni mode").
func (l *Link) BestTxQuasiOmni() (txBeam int, snrDB float64) {
	snrDB = math.Inf(-1)
	for t := 0; t < phased.NumBeams; t++ {
		if s := l.SNRdB(t, phased.QuasiOmniID); s > snrDB {
			snrDB, txBeam = s, t
		}
	}
	return txBeam, snrDB
}

// MoveRx teleports the Rx to p and invalidates the path cache. Moving to the
// current position is a no-op: every cache already describes that state.
func (l *Link) MoveRx(p geom.Vec) {
	if l.Rx.Pos == p {
		return
	}
	l.Rx.Pos = p
	l.Invalidate()
}

// RotateRx sets the Rx mechanical orientation (degrees). Rotation changes the
// Rx beam-to-world mapping only — the traced paths and Tx gains are
// position-determined — so it advances the measurement epoch (blockage and
// noise caches must observe the change) and the Rx gain epoch, but keeps the
// ray trace and the Tx gain rows. Rotating to the current orientation is a
// no-op.
func (l *Link) RotateRx(orientDeg float64) {
	if l.Rx.OrientDeg == orientDeg {
		return
	}
	l.Rx.OrientDeg = orientDeg
	l.pathEpoch++
	l.rxGeomEpoch++
}

// SetBlockers replaces the blocker set and invalidates the path cache.
func (l *Link) SetBlockers(b []Blocker) {
	l.Blockers = b
	l.Invalidate()
}

// SetInterferers replaces the interferer set. Interference does not affect
// ray geometry, so the path and gain caches stay valid, but the epoch
// advances so higher layers (and the noise cache) re-measure. Interferer
// path traces are revalidated by position, so changing only EIRP or duty
// cycle does not re-trace.
func (l *Link) SetInterferers(in []Interferer) {
	l.Interferers = in
	l.pathEpoch++
}
