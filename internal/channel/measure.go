package channel

import (
	"math"
	"sync"

	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
)

// PDP parameters. With 2 GHz of bandwidth the delay resolution is 0.5 ns;
// 256 taps cover 128 ns (~38 m of excess path), plenty for indoor rooms.
const (
	// PDPTaps is the number of delay bins in a logged power delay profile.
	PDPTaps = 256
	// PDPBinNs is the delay bin width in nanoseconds (1/bandwidth).
	PDPBinNs = 0.5
)

// Measurement is one PHY layer observation for a given Tx/Rx beam pair —
// the per-frame log record of the X60 testbed (§5.1).
type Measurement struct {
	// RSSdBm is the total received signal power.
	RSSdBm float64
	// NoiseDBm is the measured noise level: thermal floor plus co-channel
	// interference as seen through the Rx beam.
	NoiseDBm float64
	// SNRdB is RSS - Noise, in dB.
	SNRdB float64
	// ToFNs is the time of flight of the strongest path in nanoseconds.
	// It is +Inf when the signal is below the receiver sensitivity,
	// matching X60's behaviour under extremely weak signal.
	ToFNs float64
	// PDP is the power delay profile: linear power (mW) per 0.5 ns bin,
	// with the first bin anchored at the earliest arriving path.
	PDP []float64
}

// CSI returns the paper's channel state information estimate for the
// single-carrier PHY (§6.1): the frequency response magnitude obtained by
// transforming the power delay profile to the frequency domain. Tap
// amplitudes (square roots of tap powers) are transformed so the result is
// |H(f)| — the multipath fading pattern across the 2 GHz channel — rather
// than a power spectrum.
func (m *Measurement) CSI() []float64 {
	return m.CSIInto(nil)
}

// ampPool recycles the tap-amplitude scratch of CSIInto.
var ampPool = sync.Pool{New: func() any { return new([]float64) }}

// CSIInto computes the CSI estimate into dst, growing it only when its
// capacity is insufficient, and returns dst re-sliced to the spectrum
// length. Together with pooled FFT scratch this keeps the featurization hot
// path allocation-free when the caller reuses dst across measurements.
func (m *Measurement) CSIInto(dst []float64) []float64 {
	ap := ampPool.Get().(*[]float64)
	amp := *ap
	if cap(amp) < len(m.PDP) {
		amp = make([]float64, len(m.PDP))
	}
	amp = amp[:len(m.PDP)]
	for i, p := range m.PDP {
		if p > 0 {
			amp[i] = math.Sqrt(p)
		} else {
			amp[i] = 0
		}
	}
	dst = dsp.FFTRealInto(dst, amp)
	*ap = amp
	ampPool.Put(ap)
	return dst
}

// Measure computes the PHY observation for the given Tx and Rx beams.
// Use phased.QuasiOmniID for quasi-omni operation on either side.
//
// Per-beam linear gains and the link-budget base are memoized per geometric
// state (see ensureGains), so repeated measurements between Invalidate calls
// cost O(paths) multiply-adds instead of O(paths) gain evaluations and
// dB-to-linear conversions.
func (l *Link) Measure(txBeam, rxBeam int) Measurement {
	g := l.ensureGains()
	txRow := g.row(g.txLin, txBeam)
	rxRow := g.row(g.rxLin, rxBeam)
	noiseMw := l.noiseMwFor(rxBeam)

	var totalMw float64
	var bestMw float64
	bestDelay := math.Inf(1)
	pdp := make([]float64, PDPTaps)
	if txRow != nil && rxRow != nil {
		for p, pa := range g.paths {
			mw := g.linBase[p] * txRow[p] * rxRow[p]
			totalMw += mw
			if mw > bestMw {
				bestMw = mw
				bestDelay = pa.DelayNs
			}
			bin := int((pa.DelayNs - g.minDelayNs) / PDPBinNs)
			if bin >= 0 && bin < PDPTaps {
				pdp[bin] += mw
			}
		}
	}

	rss := dsp.DB(totalMw)
	noise := dsp.DB(noiseMw)
	m := Measurement{
		RSSdBm:   rss,
		NoiseDBm: noise,
		SNRdB:    rss - noise,
		ToFNs:    bestDelay,
		PDP:      pdp,
	}
	if rss < SensitivityDBm || math.IsInf(rss, -1) {
		m.ToFNs = math.Inf(1)
	}
	return m
}

// interferenceMw returns the co-channel interference power (mW, time
// averaged over duty cycle) received through the given Rx beam. The hidden
// terminal's signal propagates through the same environment as the victim
// link — direct ray plus wall reflections — so re-beaming toward a reflector
// picks up the interferer's reflection off that same wall. This is what
// makes interference hard to escape via beam adaptation (§6.1.3) and RA the
// usually preferred mechanism under interference.
func (l *Link) interferenceMw(rxBeam int) float64 {
	if len(l.Interferers) == 0 {
		return 0
	}
	l.ensureInterferencePaths()
	var total float64
	for i, it := range l.Interferers {
		for _, p := range l.intfPaths[i] {
			g := it.EIRPdBm + l.Rx.GainDBi(rxBeam, p.Arrive) - p.LossDB
			total += dsp.Lin(g) * it.DutyCycle
		}
	}
	return total
}

// ensureInterferencePaths traces interferer-to-Rx paths. The traces depend
// only on the link geometry and the interferer positions, so they are cached
// across SetInterferers calls that merely change EIRP or duty cycle — the
// common case when calibrating an interference level at a fixed placement.
func (l *Link) ensureInterferencePaths() {
	if l.intfPathsOK && l.intfGeomEpoch == l.geomEpoch && l.samePositions() {
		return
	}
	l.intfPaths = make([][]Path, len(l.Interferers))
	for i, it := range l.Interferers {
		paths := l.traceBetween(it.Pos, l.Rx.Pos, l.MaxBounces)
		if len(paths) == 0 {
			// Fully occluded: model residual through-wall leakage as a
			// single heavily attenuated direct ray.
			d := it.Pos.Dist(l.Rx.Pos)
			paths = []Path{{
				Dist:    d,
				DelayNs: d / SpeedOfLight * 1e9,
				LossDB:  FSPLdB(d) + 30,
				Depart:  l.Rx.Pos.Sub(it.Pos).Norm(),
				Arrive:  it.Pos.Sub(l.Rx.Pos).Norm(),
			}}
		}
		l.intfPaths[i] = paths
	}
	l.intfPosKey = l.intfPosKey[:0]
	for _, it := range l.Interferers {
		l.intfPosKey = append(l.intfPosKey, it.Pos)
	}
	l.intfPathsOK = true
	l.intfGeomEpoch = l.geomEpoch
}

// samePositions reports whether the interferer positions match the ones the
// path cache was traced for.
func (l *Link) samePositions() bool {
	if len(l.intfPosKey) != len(l.Interferers) {
		return false
	}
	for i, it := range l.Interferers {
		if it.Pos != l.intfPosKey[i] {
			return false
		}
	}
	return true
}

// SNRdB is a convenience wrapper returning only the SNR for a beam pair.
func (l *Link) SNRdB(txBeam, rxBeam int) float64 {
	return l.Measure(txBeam, rxBeam).SNRdB
}

// Sweep measures the SNR of every Tx x Rx beam pair — the naive O(N^2)
// exhaustive sector level sweep used to establish ground truth (§5.1: "we
// first performed a SLS to collect SNR measurements for all 625 (25x25) beam
// pairs"). The result is indexed [txBeam][rxBeam].
//
// Per-path antenna gains are memoized per beam and per geometric state (see
// ensureGains), so the sweep costs O(N*paths) gain evaluations at most once
// per state plus O(N^2*paths) multiply-adds; the Tx-beam outer loop fans out
// across the available cores.
func (l *Link) Sweep() [][]float64 {
	g := l.ensureGains()
	n := phased.NumBeams

	// Noise depends on the Rx beam (interference is directional). Resolve
	// it before the fan-out: noiseMwFor mutates the per-link cache.
	noiseDB := make([]float64, n)
	for r := 0; r < n; r++ {
		noiseDB[r] = dsp.DB(l.noiseMwFor(r))
	}

	out := make([][]float64, n)
	parallelRows(n, func(t int) {
		row := make([]float64, n)
		txRow := g.txLin[t]
		for r := 0; r < n; r++ {
			var mw float64
			rxRow := g.rxLin[r]
			for p := range g.linBase {
				mw += g.linBase[p] * txRow[p] * rxRow[p]
			}
			row[r] = dsp.DB(mw) - noiseDB[r]
		}
		out[t] = row
	})
	return out
}

// BestPair returns the beam pair with the highest SNR from a full sweep,
// along with that SNR.
func (l *Link) BestPair() (txBeam, rxBeam int, snrDB float64) {
	sweep := l.Sweep()
	snrDB = math.Inf(-1)
	for t := range sweep {
		for r := range sweep[t] {
			if s := sweep[t][r]; s > snrDB {
				snrDB, txBeam, rxBeam = s, t, r
			}
		}
	}
	return txBeam, rxBeam, snrDB
}

// BestTxQuasiOmni returns the best Tx beam when the Rx listens in quasi-omni
// mode — the reduced-overhead training COTS devices use (§2: "COTS devices
// only perform Tx beam training and always receive in quasi-omni mode").
func (l *Link) BestTxQuasiOmni() (txBeam int, snrDB float64) {
	snrDB = math.Inf(-1)
	for t := 0; t < phased.NumBeams; t++ {
		if s := l.SNRdB(t, phased.QuasiOmniID); s > snrDB {
			snrDB, txBeam = s, t
		}
	}
	return txBeam, snrDB
}

// MoveRx teleports the Rx to p and invalidates the path cache.
func (l *Link) MoveRx(p geom.Vec) {
	l.Rx.Pos = p
	l.Invalidate()
}

// RotateRx sets the Rx mechanical orientation (degrees) and invalidates the
// path cache. Rotation changes beam-to-world mapping only, but blockage and
// measurement caches keyed on the epoch must still observe the change.
func (l *Link) RotateRx(orientDeg float64) {
	l.Rx.OrientDeg = orientDeg
	l.Invalidate()
}

// SetBlockers replaces the blocker set and invalidates the path cache.
func (l *Link) SetBlockers(b []Blocker) {
	l.Blockers = b
	l.Invalidate()
}

// SetInterferers replaces the interferer set. Interference does not affect
// ray geometry, so the path and gain caches stay valid, but the epoch
// advances so higher layers (and the noise cache) re-measure. Interferer
// path traces are revalidated by position, so changing only EIRP or duty
// cycle does not re-trace.
func (l *Link) SetInterferers(in []Interferer) {
	l.Interferers = in
	l.pathEpoch++
}
