package channel

import (
	"math"
	"testing"

	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
)

// emptyRoom builds a large room with distant drywall walls so the LOS path
// dominates.
func emptyRoom() *env.Environment {
	e := &env.Environment{Name: "test-room", Width: 100, Height: 100}
	e.Walls = []env.Wall{
		{Seg: geom.Seg(geom.V(0, 0), geom.V(100, 0)), Mat: env.Drywall},
		{Seg: geom.Seg(geom.V(100, 0), geom.V(100, 100)), Mat: env.Drywall},
		{Seg: geom.Seg(geom.V(100, 100), geom.V(0, 100)), Mat: env.Drywall},
		{Seg: geom.Seg(geom.V(0, 100), geom.V(0, 0)), Mat: env.Drywall},
	}
	return e
}

func testLink(d float64) *Link {
	e := emptyRoom()
	tx := phased.NewArray(geom.V(20, 50), 0, 1)
	rx := phased.NewArray(geom.V(20+d, 50), 180, 2)
	return NewLink(e, tx, rx)
}

func TestFSPL(t *testing.T) {
	// At 60.48 GHz, FSPL(1 m) = 20 log10(4*pi*f/c) ~ 68.1 dB (the oxygen
	// term adds 0.015 dB at 1 m).
	if got := FSPLdB(1); math.Abs(got-68.07) > 0.1 {
		t.Errorf("FSPL(1m) = %v", got)
	}
	// +20 dB per decade plus the linear oxygen term.
	slope := FSPLdB(10) - FSPLdB(1)
	if math.Abs(slope-20-OxygenAbsorptionDBPerKm*9.0/1000) > 1e-9 {
		t.Errorf("decade slope = %v", slope)
	}
	// Oxygen absorption: 15 dB per km of excess path.
	if got := FSPLdB(1000) - FSPLdB(1000)*0; got < 60+15 {
		t.Errorf("km loss = %v", got)
	}
	// Distances below 10 cm are clamped.
	if FSPLdB(0.001) != FSPLdB(0.1) {
		t.Error("near-field clamp missing")
	}
}

func TestThermalNoise(t *testing.T) {
	// -174 + 10log10(2e9) + 7 = -74.0 dBm.
	if got := ThermalNoiseDBm(7); math.Abs(got+74) > 0.05 {
		t.Errorf("thermal noise = %v", got)
	}
}

func TestLOSPath(t *testing.T) {
	l := testLink(10)
	paths := l.Paths()
	var los *Path
	for i := range paths {
		if paths[i].Bounces == 0 {
			los = &paths[i]
		}
	}
	if los == nil {
		t.Fatal("no LOS path in open room")
	}
	if math.Abs(los.Dist-10) > 1e-9 {
		t.Errorf("LOS dist = %v", los.Dist)
	}
	wantDelay := 10 / SpeedOfLight * 1e9
	if math.Abs(los.DelayNs-wantDelay) > 1e-9 {
		t.Errorf("LOS delay = %v, want %v", los.DelayNs, wantDelay)
	}
	if math.Abs(los.LossDB-FSPLdB(10)) > 1e-9 {
		t.Errorf("LOS loss = %v", los.LossDB)
	}
	if !almostVec(los.Depart, geom.V(1, 0)) || !almostVec(los.Arrive, geom.V(-1, 0)) {
		t.Errorf("LOS directions %v %v", los.Depart, los.Arrive)
	}
}

func almostVec(a, b geom.Vec) bool {
	return math.Abs(a.X-b.X) < 1e-9 && math.Abs(a.Y-b.Y) < 1e-9
}

func TestFirstOrderSpecular(t *testing.T) {
	// Tx and Rx equidistant from a wall: the reflection point is midway and
	// the specular law (equal angles) holds.
	l := testLink(10)
	var refl *Path
	for i, p := range l.Paths() {
		if p.Bounces == 1 && p.Depart.Y < 0 { // bounce off the south wall
			refl = &l.Paths()[i]
			break
		}
	}
	if refl == nil {
		t.Fatal("no south-wall reflection")
	}
	// Path via image: Tx(20,50) mirrored to (20,-50); dist to Rx(30,50) =
	// sqrt(100 + 10000) = 100.5.
	want := math.Hypot(10, 100)
	if math.Abs(refl.Dist-want) > 1e-6 {
		t.Errorf("reflection dist = %v, want %v", refl.Dist, want)
	}
	// Angle of incidence equals angle of reflection: departure and arrival
	// have mirrored Y components against the horizontal wall.
	if math.Abs(refl.Depart.Y-refl.Arrive.Y) > 1e-9 {
		t.Errorf("specular law violated: %v vs %v", refl.Depart.Y, refl.Arrive.Y)
	}
	// Reflection loss applied.
	if math.Abs(refl.LossDB-(FSPLdB(want)+env.Drywall.ReflLossDB)) > 1e-6 {
		t.Errorf("reflection loss = %v", refl.LossDB)
	}
}

func TestOcclusionBlocksLOS(t *testing.T) {
	e := emptyRoom()
	// A wall between Tx and Rx.
	e.Walls = append(e.Walls, env.Wall{Seg: geom.Seg(geom.V(25, 40), geom.V(25, 60)), Mat: env.Metal})
	tx := phased.NewArray(geom.V(20, 50), 0, 1)
	rx := phased.NewArray(geom.V(30, 50), 180, 2)
	l := NewLink(e, tx, rx)
	for _, p := range l.Paths() {
		if p.Bounces == 0 {
			t.Fatal("LOS path through an occluding wall")
		}
	}
}

func TestSecondOrderPathsExist(t *testing.T) {
	l := testLink(10)
	second := 0
	for _, p := range l.Paths() {
		if p.Bounces == 2 {
			second++
		}
	}
	if second == 0 {
		t.Error("no second-order paths in a rectangular room")
	}
}

func TestMaxBouncesRespected(t *testing.T) {
	l := testLink(10)
	l.MaxBounces = 0
	l.Invalidate()
	for _, p := range l.Paths() {
		if p.Bounces != 0 {
			t.Fatal("bounce path with MaxBounces=0")
		}
	}
	l.MaxBounces = 1
	l.Invalidate()
	for _, p := range l.Paths() {
		if p.Bounces > 1 {
			t.Fatal("second-order path with MaxBounces=1")
		}
	}
}

func TestMeasureSNRReasonable(t *testing.T) {
	l := testLink(6)
	_, _, snr := l.BestPair()
	if snr < 5 || snr > 40 {
		t.Errorf("best SNR at 6 m = %v, outside plausible range", snr)
	}
}

func TestSNRDecreasesWithDistance(t *testing.T) {
	prev := math.Inf(1)
	for _, d := range []float64{4, 8, 16, 32} {
		l := testLink(d)
		_, _, snr := l.BestPair()
		if snr >= prev {
			t.Fatalf("SNR did not decrease at %v m (%v >= %v)", d, snr, prev)
		}
		prev = snr
	}
}

func TestToFMatchesDistance(t *testing.T) {
	l := testLink(9)
	t0, r0, _ := l.BestPair()
	m := l.Measure(t0, r0)
	want := 9 / SpeedOfLight * 1e9
	if math.Abs(m.ToFNs-want) > 0.5 {
		t.Errorf("ToF = %v, want ~%v", m.ToFNs, want)
	}
}

func TestToFInfinityWhenDead(t *testing.T) {
	l := testLink(9)
	l.ImplLossDB = 80 // crush the signal below sensitivity
	m := l.Measure(0, 0)
	if !math.IsInf(m.ToFNs, 1) {
		t.Errorf("ToF = %v, want +Inf below sensitivity", m.ToFNs)
	}
}

func TestPDPTotalMatchesRSS(t *testing.T) {
	l := testLink(8)
	t0, r0, _ := l.BestPair()
	m := l.Measure(t0, r0)
	var sum float64
	for _, v := range m.PDP {
		sum += v
	}
	// The PDP bins should hold (almost) all received power; distant
	// second-order paths may fall outside the 128 ns window.
	rssMw := math.Pow(10, m.RSSdBm/10)
	if sum < 0.95*rssMw || sum > rssMw*1.0001 {
		t.Errorf("PDP sum %v vs RSS %v mW", sum, rssMw)
	}
}

func TestCSIShape(t *testing.T) {
	l := testLink(8)
	t0, r0, _ := l.BestPair()
	m := l.Measure(t0, r0)
	csi := m.CSI()
	if len(csi) != PDPTaps {
		t.Errorf("CSI length = %d", len(csi))
	}
	for _, v := range csi {
		if v < 0 || math.IsNaN(v) {
			t.Fatal("CSI must be non-negative magnitudes")
		}
	}
}

func TestBlockageAttenuatesLOS(t *testing.T) {
	l := testLink(10)
	t0, r0, clear := l.BestPair()
	l.SetBlockers([]Blocker{DefaultBlocker(geom.V(25, 50))})
	blocked := l.SNRdB(t0, r0)
	if blocked >= clear-10 {
		t.Errorf("central blockage only dropped SNR from %v to %v", clear, blocked)
	}
}

func TestBlockageCentralityMonotone(t *testing.T) {
	l := testLink(10)
	t0, r0, _ := l.BestPair()
	prev := math.Inf(-1)
	// Moving the blocker off the LOS axis reduces its attenuation.
	for _, off := range []float64{0, 0.1, 0.18, 0.3} {
		l.SetBlockers([]Blocker{DefaultBlocker(geom.V(25, 50+off))})
		snr := l.SNRdB(t0, r0)
		if snr < prev {
			t.Fatalf("offset %v: SNR %v below previous %v", off, snr, prev)
		}
		prev = snr
	}
}

func TestInterferenceRaisesNoise(t *testing.T) {
	l := testLink(8)
	t0, r0, _ := l.BestPair()
	base := l.Measure(t0, r0)
	l.SetInterferers([]Interferer{{Pos: geom.V(24, 51), EIRPdBm: 10, DutyCycle: 1}})
	with := l.Measure(t0, r0)
	if with.NoiseDBm <= base.NoiseDBm {
		t.Errorf("noise %v -> %v, expected rise", base.NoiseDBm, with.NoiseDBm)
	}
	if with.SNRdB >= base.SNRdB {
		t.Errorf("SNR %v -> %v, expected drop", base.SNRdB, with.SNRdB)
	}
}

func TestInterferenceDutyCycleScales(t *testing.T) {
	l := testLink(8)
	it := Interferer{Pos: geom.V(24, 51), EIRPdBm: 10}
	it.DutyCycle = 1
	l.SetInterferers([]Interferer{it})
	full := l.interferenceMw(12)
	it.DutyCycle = 0.5
	l.SetInterferers([]Interferer{it})
	half := l.interferenceMw(12)
	if math.Abs(half-full/2) > 1e-12*full {
		t.Errorf("duty cycle scaling: %v vs %v/2", half, full)
	}
}

func TestInterferenceMultipath(t *testing.T) {
	// Interference must arrive on more than one path in a reflective room
	// (the property that makes it hard to escape by re-beaming, §6.1.3).
	l := testLink(8)
	l.SetInterferers([]Interferer{{Pos: geom.V(24, 51), EIRPdBm: 10, DutyCycle: 1}})
	l.ensureInterferencePaths()
	if len(l.intfPaths[0]) < 2 {
		t.Errorf("interference paths = %d, want multipath", len(l.intfPaths[0]))
	}
}

func TestEpochAdvances(t *testing.T) {
	l := testLink(8)
	e0 := l.Epoch()
	l.MoveRx(geom.V(30, 50))
	if l.Epoch() == e0 {
		t.Error("MoveRx did not advance the epoch")
	}
	e1 := l.Epoch()
	l.RotateRx(170)
	if l.Epoch() == e1 {
		t.Error("RotateRx did not advance the epoch")
	}
	e2 := l.Epoch()
	l.SetInterferers(nil)
	if l.Epoch() == e2 {
		t.Error("SetInterferers did not advance the epoch")
	}
}

func TestSweepMatchesMeasure(t *testing.T) {
	l := testLink(7)
	sweep := l.Sweep()
	for _, tb := range []int{0, 7, 12, 24} {
		for _, rb := range []int{0, 12, 24} {
			if got, want := sweep[tb][rb], l.SNRdB(tb, rb); math.Abs(got-want) > 1e-9 {
				t.Fatalf("sweep[%d][%d] = %v, Measure = %v", tb, rb, got, want)
			}
		}
	}
}

func TestBestPairConsistent(t *testing.T) {
	l := testLink(7)
	tb, rb, snr := l.BestPair()
	sweep := l.Sweep()
	for t2 := range sweep {
		for r2 := range sweep[t2] {
			if sweep[t2][r2] > snr+1e-9 {
				t.Fatalf("pair (%d,%d)=%v beats BestPair (%d,%d)=%v", t2, r2, sweep[t2][r2], tb, rb, snr)
			}
		}
	}
}

func TestSnapshotMatchesLink(t *testing.T) {
	l := testLink(7)
	l.SetInterferers([]Interferer{{Pos: geom.V(24, 53), EIRPdBm: 0, DutyCycle: 0.9}})
	snap := l.Snapshot()
	for _, tb := range []int{0, 12, 24, phased.QuasiOmniID} {
		for _, rb := range []int{0, 12, 24, phased.QuasiOmniID} {
			ms := snap.Measure(tb, rb)
			ml := l.Measure(tb, rb)
			if math.Abs(ms.SNRdB-ml.SNRdB) > 1e-9 {
				t.Fatalf("snapshot SNR(%d,%d) = %v, link = %v", tb, rb, ms.SNRdB, ml.SNRdB)
			}
			if math.Abs(ms.NoiseDBm-ml.NoiseDBm) > 1e-9 {
				t.Fatalf("snapshot noise mismatch at (%d,%d)", tb, rb)
			}
		}
	}
	// Snapshot survives link mutation.
	before := snap.SNRdB(12, 12)
	l.MoveRx(geom.V(60, 50))
	if snap.SNRdB(12, 12) != before {
		t.Error("snapshot changed after link mutation")
	}
}

func TestSnapshotInterfered(t *testing.T) {
	l := testLink(7)
	own := []Interferer{{Pos: geom.V(24, 53), EIRPdBm: 0, DutyCycle: 0.9}}
	l.SetInterferers(own)
	clear := l.Snapshot()

	hyp := []Interferer{{Pos: geom.V(24, 51), EIRPdBm: 10, DutyCycle: 1}}
	snap := l.SnapshotInterfered(hyp)

	// The link's own interferer set is restored and measures as before.
	if len(l.Interferers) != 1 || l.Interferers[0] != own[0] {
		t.Fatalf("interferers not restored: %+v", l.Interferers)
	}
	if got, want := l.SNRdB(12, 12), clear.SNRdB(12, 12); math.Abs(got-want) > 1e-9 {
		t.Errorf("restored link SNR = %v, want %v", got, want)
	}

	// The hypothetical snapshot matches a link configured that way directly.
	ref := testLink(7)
	ref.SetInterferers(hyp)
	for _, b := range []int{0, 12, 24} {
		if got, want := snap.SNRdB(b, b), ref.SNRdB(b, b); math.Abs(got-want) > 1e-9 {
			t.Errorf("interfered SNR(%d,%d) = %v, want %v", b, b, got, want)
		}
	}
	// And it is genuinely worse than the clear view at the strongest beams.
	_, _, clearBest := clear.BestPair()
	_, _, intfBest := snap.BestPair()
	if intfBest >= clearBest {
		t.Errorf("interfered best %v not below clear best %v", intfBest, clearBest)
	}
}

func TestSnapshotBestPairMatches(t *testing.T) {
	l := testLink(7)
	snap := l.Snapshot()
	t1, r1, s1 := l.BestPair()
	t2, r2, s2 := snap.BestPair()
	if t1 != t2 || r1 != r2 || math.Abs(s1-s2) > 1e-9 {
		t.Errorf("snapshot best (%d,%d,%v) vs link (%d,%d,%v)", t2, r2, s2, t1, r1, s1)
	}
}

func TestTraceBetweenSymmetry(t *testing.T) {
	// Reciprocity: path distances between A and B match in both directions.
	l := testLink(9)
	fwd := l.traceBetween(l.Tx.Pos, l.Rx.Pos, 1)
	rev := l.traceBetween(l.Rx.Pos, l.Tx.Pos, 1)
	if len(fwd) != len(rev) {
		t.Fatalf("path count %d vs %d", len(fwd), len(rev))
	}
	sum := func(ps []Path) float64 {
		var s float64
		for _, p := range ps {
			s += p.Dist
		}
		return s
	}
	if math.Abs(sum(fwd)-sum(rev)) > 1e-6 {
		t.Error("total path length not reciprocal")
	}
}

func TestDefaultBlocker(t *testing.T) {
	b := DefaultBlocker(geom.V(1, 2))
	if b.Radius <= 0 || b.MaxAttenDB <= 0 {
		t.Errorf("bad default blocker %+v", b)
	}
}

func TestRotationChangesGainNotPaths(t *testing.T) {
	l := testLink(9)
	nPaths := len(l.Paths())
	s0 := l.SNRdB(12, 12)
	l.RotateRx(180 + 40)
	if len(l.Paths()) != nPaths {
		t.Error("rotation changed path geometry")
	}
	if s1 := l.SNRdB(12, 12); s1 >= s0 {
		t.Errorf("40 deg rotation did not reduce aligned-pair SNR (%v -> %v)", s0, s1)
	}
}

func TestPseudo3DVerticalPaths(t *testing.T) {
	l := testLink(8)
	base := len(l.Paths())
	l.CeilingHeightM = 2.8
	l.Invalidate()
	withV := l.Paths()
	if len(withV) != base+2 {
		t.Fatalf("vertical mode added %d paths, want 2", len(withV)-base)
	}
	// The vertical bounces preserve the LOS azimuth and are slightly longer
	// and lossier than the LOS (unlike the east-wall reflection, which also
	// departs along +X but travels much farther).
	var los *Path
	for i := range withV {
		if withV[i].Bounces == 0 {
			los = &withV[i]
		}
	}
	vert := 0
	for i := range withV {
		p := &withV[i]
		if !isVertical(p, los) {
			continue
		}
		vert++
		if p.DelayNs <= los.DelayNs {
			t.Error("vertical bounce not longer than LOS")
		}
		if p.LossDB <= los.LossDB {
			t.Error("vertical bounce not lossier than LOS")
		}
	}
	if vert != 2 {
		t.Errorf("found %d vertical paths", vert)
	}
}

// isVertical identifies a pseudo-3-D bounce: one-bounce, same azimuth as
// the LOS, and only slightly longer than it (wall reflections with the same
// azimuth travel to a wall and back).
func isVertical(p, los *Path) bool {
	return p.Bounces == 1 && almostVec(p.Depart, los.Depart) && p.Dist < los.Dist+3
}

func TestPseudo3DSurvivesBlockage(t *testing.T) {
	// A torso-height blocker kills the LOS but barely touches the ceiling
	// bounce: with pseudo-3-D enabled the aligned pair keeps working.
	l := testLink(8)
	t0, r0, _ := l.BestPair()
	l.SetBlockers([]Blocker{DefaultBlocker(geom.V(24, 50))})
	blocked2D := l.SNRdB(t0, r0)
	l.CeilingHeightM = 2.8
	l.Invalidate()
	blocked3D := l.SNRdB(t0, r0)
	if blocked3D <= blocked2D+3 {
		t.Errorf("ceiling bounce did not help: 2D %v dB vs 3D %v dB", blocked2D, blocked3D)
	}
}

func TestPseudo3DDisabledByDefault(t *testing.T) {
	l := testLink(8)
	paths := l.Paths()
	var los *Path
	for i := range paths {
		if paths[i].Bounces == 0 {
			los = &paths[i]
		}
	}
	for i := range paths {
		if paths[i].Bounces == 1 && isVertical(&paths[i], los) {
			t.Fatal("vertical path present with pseudo-3D disabled")
		}
	}
}

func TestPseudo3DNoLOSNoVertical(t *testing.T) {
	e := emptyRoom()
	e.Walls = append(e.Walls, env.Wall{Seg: geom.Seg(geom.V(25, 0), geom.V(25, 100)), Mat: env.Metal})
	tx := phased.NewArray(geom.V(20, 50), 0, 1)
	rx := phased.NewArray(geom.V(30, 50), 180, 2)
	l := NewLink(e, tx, rx)
	l.CeilingHeightM = 2.8
	for _, p := range l.Paths() {
		if almostVec(p.Depart, geom.V(1, 0)) && p.Bounces <= 1 && p.Dist < 13 {
			t.Fatal("vertical bounce through a full-height wall")
		}
	}
}

func TestBestPairMatchesExhaustiveScan(t *testing.T) {
	// BestPair's column-maximum search must agree exactly — winner indices,
	// tie-break, and SNR bits — with the naive row-major scan over SNRdB it
	// replaces, with and without interference.
	l := testLink(7)
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			l.SetInterferers([]Interferer{{Pos: geom.V(24, 53), EIRPdBm: 5, DutyCycle: 0.8}})
		}
		bt, br, bs := l.BestPair()
		wt, wr, ws := 0, 0, math.Inf(-1)
		for tb := 0; tb < phased.NumBeams; tb++ {
			for rb := 0; rb < phased.NumBeams; rb++ {
				if s := l.SNRdB(tb, rb); s > ws {
					wt, wr, ws = tb, rb, s
				}
			}
		}
		if bt != wt || br != wr || bs != ws {
			t.Fatalf("pass %d: BestPair (%d,%d,%v) vs scan (%d,%d,%v)", pass, bt, br, bs, wt, wr, ws)
		}
	}
}

func TestRotatedLinkMatchesFresh(t *testing.T) {
	// The Rx-only invalidation path (RotateRx -> rebuildRxGains) must leave
	// the link indistinguishable from one freshly built at the rotated
	// orientation, including the interferer-gain caches.
	intf := []Interferer{{Pos: geom.V(26, 47), EIRPdBm: 3, DutyCycle: 0.7}}
	l := testLink(9)
	l.SetInterferers(intf)
	l.BestPair() // populate every cache at the base orientation
	l.RotateRx(215)

	e := emptyRoom()
	tx := phased.NewArray(geom.V(20, 50), 0, 1)
	rx := phased.NewArray(geom.V(29, 50), 215, 2)
	fresh := NewLink(e, tx, rx)
	fresh.SetInterferers(intf)

	lt, lr, ls := l.BestPair()
	ft, fr, fs := fresh.BestPair()
	if lt != ft || lr != fr || ls != fs {
		t.Fatalf("rotated BestPair (%d,%d,%v) vs fresh (%d,%d,%v)", lt, lr, ls, ft, fr, fs)
	}
	got, want := l.Sweep(), fresh.Sweep()
	for tb := range want {
		for rb := range want[tb] {
			if got[tb][rb] != want[tb][rb] {
				t.Fatalf("sweep[%d][%d] = %v after rotation, fresh link = %v", tb, rb, got[tb][rb], want[tb][rb])
			}
		}
	}
}

func TestSamePoseMutationsAreNoOps(t *testing.T) {
	l := testLink(8)
	l.BestPair()
	e0 := l.Epoch()
	l.MoveRx(l.Rx.Pos)
	l.RotateRx(l.Rx.OrientDeg)
	if l.Epoch() != e0 {
		t.Error("same-pose MoveRx/RotateRx advanced the epoch")
	}
}
