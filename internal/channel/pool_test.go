package channel

import "testing"

// TestAmpPoolDropsOversizedScratch is the regression test for the scratch
// retention bug: CSIInto used to Put every amp buffer back into ampPool
// regardless of size, so one campaign with oversized PDPs pinned its large
// backing arrays for the life of the process. The Put path must drop buffers
// whose capacity exceeds maxPooledAmpCap.
func TestAmpPoolDropsOversizedScratch(t *testing.T) {
	m := &Measurement{PDP: make([]float64, maxPooledAmpCap+1)}
	if got := m.CSI(); len(got) == 0 {
		t.Fatal("CSI returned empty spectrum")
	}
	// Same-goroutine Put→Get hits the per-P private slot: had the oversized
	// buffer been retained, this Get would hand it straight back.
	ap := ampPool.Get().(*[]float64)
	if cap(*ap) > maxPooledAmpCap {
		t.Fatalf("ampPool retained oversized scratch: cap %d > limit %d", cap(*ap), maxPooledAmpCap)
	}
	ampPool.Put(ap)
}

// TestMeasureIntoReusesPDP pins the scratch-reuse contract of MeasureInto:
// repeated calls on one Measurement must not reallocate the PDP, and the
// values must match a fresh Measure exactly.
func TestMeasureIntoReusesPDP(t *testing.T) {
	l := testLink(5)
	var m Measurement
	l.MeasureInto(&m, 12, 12)
	first := &m.PDP[0]
	want := l.Measure(12, 12)
	l.MeasureInto(&m, 12, 12)
	if &m.PDP[0] != first {
		t.Error("MeasureInto reallocated the PDP scratch")
	}
	if m.RSSdBm != want.RSSdBm || m.NoiseDBm != want.NoiseDBm ||
		m.SNRdB != want.SNRdB || m.ToFNs != want.ToFNs {
		t.Errorf("MeasureInto = %+v, want %+v", m, want)
	}
	for i := range m.PDP {
		if m.PDP[i] != want.PDP[i] {
			t.Fatalf("PDP[%d] = %g, want %g", i, m.PDP[i], want.PDP[i])
		}
	}
}
