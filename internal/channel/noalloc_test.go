package channel

import (
	"testing"

	"github.com/libra-wlan/libra/internal/testutil"
)

// TestMeasureIntoNoalloc is the runtime half of MeasureInto's //lint:noalloc
// contract: once the gain tables and noise vector are warm (the suppressed
// cold rebuilds) and m.PDP has its backing, a measurement must cost zero
// allocations. libra-lint proves this statically; the gate watches the
// allocator agree.
func TestMeasureIntoNoalloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	l := testLink(5)
	var m Measurement
	avg := testing.AllocsPerRun(100, func() {
		l.MeasureInto(&m, 12, 12)
	})
	if avg != 0 {
		t.Errorf("MeasureInto allocates %v per run, want 0 (//lint:noalloc)", avg)
	}
}
