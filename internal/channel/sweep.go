package channel

import (
	"math"
	"sync"

	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/phased"
)

// sweepScratch is the working set of one fused beam sweep: the hoisted
// Tx-side weight vector, the NumBeams^2 received-power matrix, and the
// per-Rx-beam noise in dB. Sweeps borrow one from sweepPool, so steady-state
// sweeping allocates nothing beyond the caller-visible result.
type sweepScratch struct {
	txw     []float64
	pow     []float64
	noiseDB []float64
}

var sweepPool = sync.Pool{New: func() any { return new(sweepScratch) }}

// grow sizes the scratch for np paths, reusing prior capacity. Path counts
// are bounded by the tracer (tens of rays), so retained capacity stays small
// and the pool never pins a large backing array.
func (sc *sweepScratch) grow(np int) {
	n := phased.NumBeams
	if cap(sc.txw) < np {
		sc.txw = make([]float64, np)
	}
	sc.txw = sc.txw[:np]
	if len(sc.pow) != n*n {
		sc.pow = make([]float64, n*n)
	}
	if len(sc.noiseDB) != n {
		sc.noiseDB = make([]float64, n)
	}
}

// sweepPowerInto is the fused sector-sweep kernel: it fills pow[t*n+r] with
// the received signal power (mW) of every Tx×Rx beam pair in one blocked
// pass over the gain tables. The Tx-side product linBase[p]*txLin[t][p] is
// hoisted once per Tx beam — the grouping (base*tx)*rx performs the exact
// same two roundings as an unhoisted left-to-right product, so the result is
// bit-identical to the naive triple loop. Four Rx beams advance per
// iteration; each keeps its own accumulator chain in path order (the
// per-pair FP addition order the determinism contract pins), and the four
// independent chains hide FP-add latency.
func sweepPowerInto(pow, txw, linBase []float64, txLin, rxLin [][]float64) {
	n := phased.NumBeams
	for t := 0; t < n; t++ {
		txRow := txLin[t]
		for p, base := range linBase {
			txw[p] = base * txRow[p]
		}
		out := pow[t*n : t*n+n]
		r := 0
		for ; r+4 <= n; r += 4 {
			rx0, rx1, rx2, rx3 := rxLin[r], rxLin[r+1], rxLin[r+2], rxLin[r+3]
			var m0, m1, m2, m3 float64
			for p, w := range txw {
				m0 += w * rx0[p]
				m1 += w * rx1[p]
				m2 += w * rx2[p]
				m3 += w * rx3[p]
			}
			out[r], out[r+1], out[r+2], out[r+3] = m0, m1, m2, m3
		}
		for ; r < n; r++ {
			var mw float64
			rxRow := rxLin[r]
			for p, w := range txw {
				mw += w * rxRow[p]
			}
			out[r] = mw
		}
	}
}

// sweepSNR converts the kernel's power matrix into the caller-visible
// [txBeam][rxBeam] SNR matrix: one contiguous block re-sliced into rows, dB
// conversion applied in place. Exactly two allocations per sweep — the row
// headers and the block — both owned by the caller.
func sweepSNR(sc *sweepScratch, linBase []float64, txLin, rxLin [][]float64) [][]float64 {
	n := phased.NumBeams
	block := make([]float64, n*n)
	sweepPowerInto(block, sc.txw, linBase, txLin, rxLin)
	out := make([][]float64, n)
	for t := 0; t < n; t++ {
		row := block[t*n : (t+1)*n : (t+1)*n]
		for r := 0; r < n; r++ {
			row[r] = dsp.DB(row[r]) - sc.noiseDB[r]
		}
		out[t] = row
	}
	return out
}

// bestFromPow scans the kernel's power matrix for the row-major SNR winner.
// Within a column the noise is constant and dB conversion strictly monotone,
// so the first Tx beam attaining the column's power maximum is the column's
// row-major winner; across columns the lexicographically smallest (tx, rx)
// among equal-SNR column winners matches a strict ">" scan of the full dB
// matrix in row-major order. Only NumBeams dB conversions remain.
func bestFromPow(pow, noiseDB []float64) (txBeam, rxBeam int, snrDB float64) {
	n := phased.NumBeams
	snrDB = math.Inf(-1)
	for r := 0; r < n; r++ {
		colMax, colT := -1.0, 0
		for t := 0; t < n; t++ {
			if v := pow[t*n+r]; v > colMax {
				colMax, colT = v, t
			}
		}
		s := dsp.DB(colMax) - noiseDB[r]
		if s > snrDB || (s == snrDB && colT < txBeam) {
			snrDB, txBeam, rxBeam = s, colT, r
		}
	}
	return txBeam, rxBeam, snrDB
}

// measureInto computes one PHY observation from gain rows into m, reusing
// m.PDP's backing array when its capacity suffices — the allocation-free
// path campaign generation runs per sample. A nil gain row (out-of-codebook
// beam) contributes zero power, matching Link.Measure's historic behaviour.
// The per-path accumulation runs in path order: the FP addition order is
// part of the byte-identical output contract.
func measureInto(m *Measurement, paths []Path, linBase, txRow, rxRow []float64, noiseMw, minDelayNs float64) {
	var totalMw, bestMw float64
	bestDelay := math.Inf(1)
	pdp := m.PDP
	if cap(pdp) < PDPTaps {
		pdp = make([]float64, PDPTaps)
	} else {
		pdp = pdp[:PDPTaps]
		clear(pdp)
	}
	if txRow != nil && rxRow != nil {
		for p, pa := range paths {
			mw := linBase[p] * txRow[p] * rxRow[p]
			totalMw += mw
			if mw > bestMw {
				bestMw = mw
				bestDelay = pa.DelayNs
			}
			bin := int((pa.DelayNs - minDelayNs) / PDPBinNs)
			if bin >= 0 && bin < PDPTaps {
				pdp[bin] += mw
			}
		}
	}
	rss := dsp.DB(totalMw)
	noise := dsp.DB(noiseMw)
	m.RSSdBm = rss
	m.NoiseDBm = noise
	m.SNRdB = rss - noise
	m.ToFNs = bestDelay
	m.PDP = pdp
	if rss < SensitivityDBm || math.IsInf(rss, -1) {
		m.ToFNs = math.Inf(1)
	}
}
