package channel

import (
	"math"
	"math/rand"
	"testing"

	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
)

// Property tests over randomized geometries: physical invariants that must
// hold for every placement the campaign generator could produce.

func randomLink(rng *rand.Rand) *Link {
	e := emptyRoom()
	tx := phased.NewArray(geom.V(10+rng.Float64()*30, 10+rng.Float64()*80), rng.Float64()*360-180, rng.Int63())
	rx := phased.NewArray(geom.V(50+rng.Float64()*40, 10+rng.Float64()*80), rng.Float64()*360-180, rng.Int63())
	return NewLink(e, tx, rx)
}

func TestPropertyPathsPhysical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		l := randomLink(rng)
		los := l.Tx.Pos.Dist(l.Rx.Pos)
		for _, p := range l.Paths() {
			if p.Dist < los-1e-6 {
				t.Fatalf("path shorter than the straight line: %v < %v", p.Dist, los)
			}
			if p.DelayNs <= 0 || math.IsNaN(p.DelayNs) {
				t.Fatalf("bad delay %v", p.DelayNs)
			}
			if p.LossDB < FSPLdB(los)-1e-6 {
				t.Fatalf("path loss %v below LOS free-space %v", p.LossDB, FSPLdB(los))
			}
			if math.Abs(p.Depart.Len()-1) > 1e-9 || math.Abs(p.Arrive.Len()-1) > 1e-9 {
				t.Fatal("direction vectors not unit length")
			}
		}
	}
}

func TestPropertyReciprocity(t *testing.T) {
	// Swapping Tx and Rx preserves the multiset of path lengths and losses
	// (channel reciprocity, the property LiBRA's ACK feedback relies on, §7).
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		l := randomLink(rng)
		fwd := l.traceBetween(l.Tx.Pos, l.Rx.Pos, 2)
		rev := l.traceBetween(l.Rx.Pos, l.Tx.Pos, 2)
		if len(fwd) != len(rev) {
			t.Fatalf("path counts differ: %d vs %d", len(fwd), len(rev))
		}
		var df, dr, lf, lr float64
		for k := range fwd {
			df += fwd[k].Dist
			lf += fwd[k].LossDB
			dr += rev[k].Dist
			lr += rev[k].LossDB
		}
		if math.Abs(df-dr) > 1e-6 || math.Abs(lf-lr) > 1e-6 {
			t.Fatalf("reciprocity violated: dist %v/%v loss %v/%v", df, dr, lf, lr)
		}
	}
}

func TestPropertyBlockerNeverHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		l := randomLink(rng)
		tb, rb, clear := l.BestPair()
		// A blocker somewhere on the LOS segment.
		frac := 0.2 + 0.6*rng.Float64()
		at := l.Tx.Pos.Add(l.Rx.Pos.Sub(l.Tx.Pos).Scale(frac))
		l.SetBlockers([]Blocker{DefaultBlocker(at)})
		if blocked := l.SNRdB(tb, rb); blocked > clear+1e-9 {
			t.Fatalf("blocker raised SNR: %v -> %v", clear, blocked)
		}
		_, _, bestBlocked := l.BestPair()
		if bestBlocked > clear+1e-9 {
			t.Fatalf("blocker raised the best pair: %v -> %v", clear, bestBlocked)
		}
	}
}

func TestPropertyInterferenceNeverHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		l := randomLink(rng)
		tb, rb, clear := l.BestPair()
		place := l.Rx.Pos.Add(geom.V(rng.Float64()*4-2, rng.Float64()*4-2))
		l.SetInterferers([]Interferer{{Pos: place, EIRPdBm: rng.Float64() * 20, DutyCycle: 1}})
		if with := l.SNRdB(tb, rb); with > clear+1e-9 {
			t.Fatalf("interference raised SNR: %v -> %v", clear, with)
		}
	}
}

func TestPropertySnapshotConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 25; i++ {
		l := randomLink(rng)
		snap := l.Snapshot()
		for k := 0; k < 8; k++ {
			tb := rng.Intn(phased.NumBeams)
			rb := rng.Intn(phased.NumBeams)
			if math.Abs(snap.SNRdB(tb, rb)-l.SNRdB(tb, rb)) > 1e-9 {
				t.Fatalf("snapshot SNR mismatch at (%d,%d)", tb, rb)
			}
		}
	}
}
