// Package testutil holds small cross-package test support helpers.
//
// The noalloc gate tests (one per package carrying //lint:noalloc
// annotations) use RaceEnabled to skip allocation counting under the race
// detector, whose instrumentation allocates on paths the contract covers.
package testutil
