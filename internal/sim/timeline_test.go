package sim

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/trace"
)

func testPools(t *testing.T) *trace.Pools {
	t.Helper()
	p := trace.NewPools(99)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTimelineBytesMatchRateProfile(t *testing.T) {
	pools := testPools(t)
	rng := rand.New(rand.NewSource(1))
	tl := pools.RandomTimeline(trace.Mixed, rng)
	res := RunTimeline(tl, stdParams(), BAFirst, nil)
	var bytes float64
	var dur time.Duration
	for _, iv := range res.Rate {
		bytes += iv.Bps * iv.Dur.Seconds() / 8
		dur += iv.Dur
	}
	if math.Abs(bytes-res.Bytes) > 1 {
		t.Errorf("profile bytes %v vs result %v", bytes, res.Bytes)
	}
	// The rate profile covers the timeline duration.
	if d := tl.Duration(); dur < d-time.Millisecond || dur > d+time.Millisecond {
		t.Errorf("profile duration %v vs timeline %v", dur, d)
	}
}

func TestTimelineBreaksCounted(t *testing.T) {
	pools := testPools(t)
	rng := rand.New(rand.NewSource(2))
	tl := pools.RandomTimeline(trace.Blockage, rng)
	res := RunTimeline(tl, stdParams(), BAFirst, nil)
	// Alternating clear/blocked segments must break the link repeatedly.
	if res.Breaks < 2 {
		t.Errorf("breaks = %d on a blockage timeline", res.Breaks)
	}
	if res.Breaks > 0 && res.TotalRecoveryDelay <= 0 {
		t.Error("breaks recorded but no recovery delay")
	}
	if res.MeanRecoveryDelay() <= 0 {
		t.Error("mean recovery delay not positive")
	}
}

func TestTimelinePoliciesDiffer(t *testing.T) {
	pools := testPools(t)
	rng := rand.New(rand.NewSource(3))
	p := Params{BAOverhead: 250 * time.Millisecond, FAT: 2 * time.Millisecond}
	var baDelay, raDelay time.Duration
	for i := 0; i < 10; i++ {
		tl := pools.RandomTimeline(trace.Blockage, rng)
		baDelay += RunTimeline(tl, p, BAFirst, nil).TotalRecoveryDelay
		raDelay += RunTimeline(tl, p, RAFirst, nil).TotalRecoveryDelay
	}
	// With 250 ms sweeps, BA First must pay far more recovery delay than
	// RA First when RA alone can restore the link... but under full
	// blockage RA fails and pays both. Either way the totals must differ.
	if baDelay == raDelay {
		t.Error("policies produced identical delays across 10 timelines")
	}
}

func TestTimelineOracleChoosesBetter(t *testing.T) {
	pools := testPools(t)
	rng := rand.New(rand.NewSource(4))
	p := stdParams()
	for i := 0; i < 5; i++ {
		tl := pools.RandomTimeline(trace.Interference, rng)
		oracle := RunTimeline(tl, p, OracleData, nil)
		ba := RunTimeline(tl, p, BAFirst, nil)
		ra := RunTimeline(tl, p, RAFirst, nil)
		best := math.Max(ba.Bytes, ra.Bytes)
		// The greedy per-break oracle is not globally optimal, but it must
		// land in the neighborhood of the better fixed policy.
		if oracle.Bytes < 0.95*best {
			t.Errorf("timeline %d: oracle %v far below best policy %v", i, oracle.Bytes, best)
		}
	}
}

func TestTimelineLiBRAUsesClassifier(t *testing.T) {
	pools := testPools(t)
	rng := rand.New(rand.NewSource(5))
	tl := pools.RandomTimeline(trace.Blockage, rng)
	p := stdParams()
	ba := RunTimeline(tl, p, LiBRA, fixedClassifier{dataset.ActBA})
	want := RunTimeline(tl, p, BAFirst, nil)
	if math.Abs(ba.Bytes-want.Bytes) > 1 {
		t.Error("LiBRA with a BA-always classifier differs from BA First")
	}
}

func TestTimelineEmpty(t *testing.T) {
	res := RunTimeline(&trace.Timeline{}, stdParams(), BAFirst, nil)
	if res.Bytes != 0 || res.Breaks != 0 {
		t.Error("empty timeline produced output")
	}
	if res.MeanRecoveryDelay() != 0 {
		t.Error("empty timeline mean delay")
	}
}

func TestTimelineNonNegativeRates(t *testing.T) {
	pools := testPools(t)
	rng := rand.New(rand.NewSource(6))
	for _, kind := range trace.Kinds {
		tl := pools.RandomTimeline(kind, rng)
		res := RunTimeline(tl, stdParams(), LiBRA, fixedClassifier{dataset.ActRA})
		for _, iv := range res.Rate {
			if iv.Bps < 0 || iv.Dur < 0 {
				t.Fatalf("%v: negative rate interval %+v", kind, iv)
			}
		}
	}
}

func TestMotionTimelineDeliversData(t *testing.T) {
	pools := testPools(t)
	rng := rand.New(rand.NewSource(7))
	tl := pools.RandomTimeline(trace.Motion, rng)
	res := RunTimeline(tl, stdParams(), BAFirst, nil)
	// A walking client in the lobby stays connected most of the time.
	avg := res.Bytes * 8 / tl.Duration().Seconds()
	if avg < 100e6 {
		t.Errorf("motion average throughput = %v Mbps", avg/1e6)
	}
}

// TestRunTimelineContext covers the segment-boundary cancellation contract:
// a pre-canceled context returns the context's error and a zero result,
// while a background context matches the plain entry point exactly.
func TestRunTimelineContext(t *testing.T) {
	pools := testPools(t)
	rng := rand.New(rand.NewSource(3))
	tl := pools.RandomTimeline(trace.Mixed, rng)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunTimelineContext(ctx, tl, stdParams(), BAFirst, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Breaks != 0 || res.Bytes != 0 || len(res.Rate) != 0 {
		t.Fatalf("canceled run returned a partial result: %+v", res)
	}

	want := RunTimeline(tl, stdParams(), BAFirst, nil)
	got, err := RunTimelineContext(context.Background(), tl, stdParams(), BAFirst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bytes != want.Bytes || got.Breaks != want.Breaks || got.TotalRecoveryDelay != want.TotalRecoveryDelay {
		t.Errorf("context run %+v differs from plain %+v", got, want)
	}
}
