package engine

import (
	"time"

	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/phy"
)

// Engine metrics (wall-clock registry; never part of the deterministic
// trace). Counts, not timings: how much multi-AP work this process ran.
var (
	obsEngineRuns = obs.NewCounter("libra_sim_engine_runs_total",
		"multi-AP engine runs started")
	obsEngineEvents = obs.NewCounter("libra_sim_engine_events_total",
		"events dispatched across engine runs")
	obsSlotGrants = obs.NewCounter("libra_sim_slot_grants_total",
		"TDMA slot schedule grants issued by APs")
	obsHandoffs = obs.NewCounter("libra_sim_handoffs_total",
		"station AP handoffs executed")
	obsVerdicts = obs.NewCounter("libra_sim_interference_verdicts_total",
		"inter-AP interference penalty changes applied to a station")
	obsImpairments = obs.NewCounter("libra_sim_impairments_total",
		"impairment (blockage) onsets applied to a station")
)

// Sim-time stamp quanta, mirroring the sim package's conversion so engine
// trace events land on the same frame/slot/codeword grid as LinkSim's.
var (
	frameDur = time.Duration(phy.FrameDuration * float64(time.Second))
	slotDur  = time.Duration(phy.SlotDuration * float64(time.Second))
	cwDur    = slotDur / phy.CodewordsPerSlot
)

// simTime converts elapsed simulated time to a deterministic trace stamp.
func simTime(elapsed time.Duration) obs.SimTime {
	if elapsed < 0 {
		elapsed = 0
	}
	frame := int64(elapsed / frameDur)
	rem := elapsed % frameDur
	slot := int64(rem / slotDur)
	rem -= time.Duration(slot) * slotDur
	return obs.SimTime{Frame: frame, Slot: slot, Codeword: int64(rem / cwDur)}
}
