package engine

import (
	"container/heap"
	"time"
)

// Event kinds dispatched by the engine loop.
type eventKind uint8

const (
	// evSegment advances a station's LinkSim one boundary interval.
	evSegment eventKind = iota
	// evImpairStart applies a drawn SNR penalty to the station's serving
	// link (blockage onset); carries the penalty and its duration, both
	// drawn when the event was pushed.
	evImpairStart
	// evImpairEnd clears the penalty and draws the next impairment cycle.
	evImpairEnd
)

// String names the kind for traces.
func (k eventKind) String() string {
	switch k {
	case evSegment:
		return "segment"
	case evImpairStart:
		return "impair_start"
	case evImpairEnd:
		return "impair_end"
	}
	return "unknown"
}

// event is one scheduled occurrence. Randomness is attached at push time
// (penaltyDB, impairDur), never drawn by the handler.
type event struct {
	at     time.Duration
	entity int    // station ID — the total tie-break order with at and seq
	seq    uint64 // global push counter: stable order for identical (at, entity)
	kind   eventKind

	penaltyDB float64       // evImpairStart: SNR penalty to apply
	impairDur time.Duration // evImpairStart: how long it lasts
}

// eventHeap is a binary min-heap over (at, entity, seq). Pushes happen only
// in the serial phases of the engine loop, so seq assignment — and therefore
// the full ordering — is identical for any worker count.
type eventHeap struct {
	ev  []event
	seq uint64
}

func (h *eventHeap) Len() int { return len(h.ev) }

func (h *eventHeap) Less(i, j int) bool {
	a, b := h.ev[i], h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.entity != b.entity {
		return a.entity < b.entity
	}
	return a.seq < b.seq
}

func (h *eventHeap) Swap(i, j int) { h.ev[i], h.ev[j] = h.ev[j], h.ev[i] }

func (h *eventHeap) Push(x any) { h.ev = append(h.ev, x.(event)) }

func (h *eventHeap) Pop() any {
	old := h.ev
	n := len(old)
	e := old[n-1]
	h.ev = old[:n-1]
	return e
}

// push stamps the event with the next sequence number and enqueues it.
func (h *eventHeap) push(e event) {
	e.seq = h.seq
	h.seq++
	heap.Push(h, e)
}

// popBarrier removes and returns every event sharing the earliest timestamp —
// one synchronization barrier. The slice is ordered by (entity, seq).
func (h *eventHeap) popBarrier() []event {
	if h.Len() == 0 {
		return nil
	}
	at := h.ev[0].at
	var batch []event
	for h.Len() > 0 && h.ev[0].at == at {
		batch = append(batch, heap.Pop(h).(event))
	}
	return batch
}
