package engine

import (
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/phy"
	"github.com/libra-wlan/libra/internal/sim"
)

// StationResult is one station's run summary.
type StationResult struct {
	// Station is the entity ID.
	Station int
	// AP is the serving AP at the end of the run.
	AP int
	// Handoffs counts AP changes.
	Handoffs int
	// FinalMCS and FinalOnBestBeam describe the closing link state.
	FinalMCS        phy.MCS
	FinalOnBestBeam bool
	// Timeline is the full per-station accounting (bytes, breaks, rate
	// profile, recovery delays) in the same shape as a RunTimeline result.
	Timeline sim.TimelineResult
}

// Result is a completed engine run.
type Result struct {
	// Spec is the resolved spec the run executed.
	Spec Spec
	// Stations holds one entry per station, indexed by entity ID.
	Stations []StationResult
	// APMembers is the closing membership count per AP.
	APMembers []int
	// Handoffs and Events aggregate across all stations.
	Handoffs int
	Events   int
	// Digest is the hex SHA-256 over the canonical event trace plus the
	// final accounting — byte-identical for any worker count, so two runs
	// agree iff their digests agree.
	Digest string
}

// Bytes returns the total bytes delivered across all stations.
func (r *Result) Bytes() float64 {
	var b float64
	for i := range r.Stations {
		b += r.Stations[i].Timeline.Bytes
	}
	return b
}

// Breaks returns the total link breaks across all stations.
func (r *Result) Breaks() int {
	n := 0
	for i := range r.Stations {
		n += r.Stations[i].Timeline.Breaks
	}
	return n
}

// Outcomes flattens the run into per-link sim.Outcomes — the currency of the
// dataset and experiments layers, so multi-AP runs drop into the same
// aggregation and reporting paths as the single-link studies.
func (r *Result) Outcomes() []sim.Outcome {
	outs := make([]sim.Outcome, len(r.Stations))
	for i := range r.Stations {
		st := &r.Stations[i]
		o := sim.Outcome{
			Bytes:           st.Timeline.Bytes,
			RecoveryDelay:   st.Timeline.TotalRecoveryDelay,
			FinalMCS:        st.FinalMCS,
			FinalOnBestBeam: st.FinalOnBestBeam,
		}
		for _, act := range st.Timeline.Actions {
			switch act {
			case dataset.ActBA:
				o.UsedBA = true
			case dataset.ActRA:
				o.UsedRA = true
			}
		}
		outs[i] = o
	}
	return outs
}
