// Package engine is the deterministic multi-AP discrete-event simulator: many
// access points and hundreds of stations advance in one simulated environment
// under TDMA slot contention, inter-link interference and AP handoff, each
// station running an adaptation policy through the same sim.LinkSim arithmetic
// as the single-link paths. The event loop is a binary heap keyed on
// (sim-time, entity, push-sequence); per-entity SplitMix64 streams supply all
// randomness, drawn in the serial push phase; nothing reads the wall clock.
// Event traces and the scenario digest are byte-identical for any worker
// count.
package engine

import (
	"fmt"
	"math"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
	"github.com/libra-wlan/libra/internal/sim"
	"github.com/libra-wlan/libra/internal/trace"
)

// Default knobs; a zero Spec field selects the default, a negative value
// disables the mechanism where that makes sense.
const (
	// DefaultInterval is the event boundary spacing: two TDMA frames.
	DefaultInterval = 20 * time.Millisecond
	// DefaultDemandSlots is each station's offered load in slots per frame.
	DefaultDemandSlots = 25
	// DefaultHysteresisDB is the SNR deficit (current link vs best
	// alternative AP) that must persist before a handoff.
	DefaultHysteresisDB = 6
	// DefaultDeficitBoundaries is how many consecutive segment boundaries
	// the deficit must persist ("sustained").
	DefaultDeficitBoundaries = 2
	// DefaultImpairMeanGap / DefaultImpairMeanDur shape the per-station
	// impairment process: exponential gaps between blockage onsets and
	// exponential blockage durations.
	DefaultImpairMeanGap = 300 * time.Millisecond
	DefaultImpairMeanDur = 100 * time.Millisecond
	// DefaultImpairMinDB..DefaultImpairMaxDB is the attenuation range a
	// blockage draws from — human-torso scale at 60 GHz.
	DefaultImpairMinDB = 10
	DefaultImpairMaxDB = 25
	// InterfererEIRPdBm is a co-channel AP's effective radiated power
	// toward a victim receiver when computing interference penalties. The
	// interfering AP beamforms at its own stations, so a random victim
	// sits in its sidelobes: transmit power minus a ~10 dB sidelobe
	// rolloff. Victims near an interfering AP still lose double-digit dB;
	// distant ones a fraction of a dB.
	InterfererEIRPdBm = channel.DefaultTxPowerDBm - 10
)

// Spec declares a multi-AP scenario. Build precomputes the expensive parts
// (ray tracing, snapshots, interference penalties) into an immutable Scenario
// that can be run many times — with different worker counts — cheaply.
type Spec struct {
	// APs and Stations size the deployment.
	APs, Stations int
	// Duration is the simulated time span.
	Duration time.Duration
	// Seed roots every SplitMix64 stream; same seed, same everything.
	Seed uint64
	// Topology picks the floor plan and AP placement: "grid" spreads APs
	// over the building-2 open area, "line" spaces them along the wide
	// corridor. Default "grid".
	Topology string
	// Params and Policy configure each station's adaptation; Classifier is
	// consulted by the LiBRA policy.
	Params     sim.Params
	Policy     sim.Policy
	Classifier core.Classifier
	// Interval is the segment boundary spacing (default DefaultInterval).
	Interval time.Duration
	// DemandSlots caps each station's TDMA grant (default
	// DefaultDemandSlots; phy.SlotsPerFrame means greedy).
	DemandSlots int
	// HysteresisDB and DeficitBoundaries tune the handoff rule; zero
	// selects the defaults, a negative HysteresisDB disables handoff.
	HysteresisDB      float64
	DeficitBoundaries int
	// ImpairMeanGap and ImpairMeanDur shape the blockage process; zero
	// selects the defaults, a negative gap disables impairments.
	ImpairMeanGap time.Duration
	ImpairMeanDur time.Duration
	// ImpairMinDB/ImpairMaxDB bound the drawn attenuation (zero both
	// selects the defaults).
	ImpairMinDB, ImpairMaxDB float64
	// Timelines switches the engine to replay mode: station i replays
	// Timelines[i] segment by segment instead of the ray-traced topology.
	// Replay requires APs == 1 and disables impairments, interference and
	// handoff — it exists so a 1-AP/1-station engine run is bit-identical
	// to the legacy RunTimeline loop, pinning the refactor.
	Timelines []*trace.Timeline
}

// withDefaults resolves zero fields.
func (s Spec) withDefaults() Spec {
	if s.Topology == "" {
		s.Topology = "grid"
	}
	if s.Interval == 0 {
		s.Interval = DefaultInterval
	}
	if s.DemandSlots == 0 {
		s.DemandSlots = DefaultDemandSlots
	}
	if s.HysteresisDB == 0 {
		s.HysteresisDB = DefaultHysteresisDB
	}
	if s.DeficitBoundaries == 0 {
		s.DeficitBoundaries = DefaultDeficitBoundaries
	}
	if s.ImpairMeanGap == 0 {
		s.ImpairMeanGap = DefaultImpairMeanGap
	}
	if s.ImpairMeanDur == 0 {
		s.ImpairMeanDur = DefaultImpairMeanDur
	}
	if s.ImpairMinDB == 0 && s.ImpairMaxDB == 0 {
		s.ImpairMinDB, s.ImpairMaxDB = DefaultImpairMinDB, DefaultImpairMaxDB
	}
	return s
}

// validate rejects malformed specs before any tracing work.
func (s Spec) validate() error {
	if s.APs < 1 {
		return fmt.Errorf("engine: APs %d < 1", s.APs)
	}
	if s.Stations < 1 {
		return fmt.Errorf("engine: Stations %d < 1", s.Stations)
	}
	if err := s.Params.Validate(); err != nil {
		return err
	}
	if s.Interval <= 0 {
		return fmt.Errorf("engine: Interval %v is not positive", s.Interval)
	}
	if s.ImpairMaxDB < s.ImpairMinDB {
		return fmt.Errorf("engine: impairment range [%v, %v] inverted", s.ImpairMinDB, s.ImpairMaxDB)
	}
	if s.Timelines != nil {
		if s.APs != 1 {
			return fmt.Errorf("engine: replay mode requires APs == 1 (got %d)", s.APs)
		}
		if len(s.Timelines) != s.Stations {
			return fmt.Errorf("engine: %d timelines for %d stations", len(s.Timelines), s.Stations)
		}
		return nil
	}
	if s.Duration <= 0 {
		return fmt.Errorf("engine: Duration %v is not positive", s.Duration)
	}
	switch s.Topology {
	case "grid", "line":
	default:
		return fmt.Errorf("engine: unknown topology %q (want grid or line)", s.Topology)
	}
	return nil
}

// Scenario is the immutable, precomputed form of a Spec: frozen channel
// snapshots for every station-AP pair, clear best-pair SNRs for the handoff
// rule, and worst-case interference penalties for every (station, serving,
// interfering) triple. Safe for concurrent reads; an Engine never mutates it,
// so one Scenario can back many runs.
type Scenario struct {
	spec Spec

	env    *env.Environment
	apPos  []geom.Vec
	staPos []geom.Vec
	// slotOffset staggers each AP's TDMA window across the frame.
	slotOffset []int

	// snaps[s][a] is station s's clear channel toward AP a.
	snaps [][]*channel.Snapshot
	// bestSNR[s][a] and bestTx/bestRx are the clear best beam pair.
	bestSNR        [][]float64
	bestTx, bestRx [][]int
	// penaltyDB[s][a][b] is the SNR cost on link s-a when AP b transmits
	// continuously (0 for b == a).
	penaltyDB [][][]float64
	// initialAP[s] is the strongest AP by clear SNR.
	initialAP []int
}

// Spec returns the resolved spec (defaults applied) the scenario was built
// from.
func (sc *Scenario) Spec() Spec { return sc.spec }

// Build validates the spec, lays out the topology, ray-traces every
// station-AP link and freezes the results. This is the expensive step —
// O(Stations x APs) sweeps — and runs once; Engine.Run is cheap after it.
func Build(spec Spec) (*Scenario, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	sc := &Scenario{spec: spec}
	sc.slotOffset = make([]int, spec.APs)
	for a := range sc.slotOffset {
		sc.slotOffset[a] = a * phy.SlotsPerFrame / spec.APs
	}
	if spec.Timelines != nil {
		sc.initialAP = make([]int, spec.Stations)
		return sc, nil
	}

	switch spec.Topology {
	case "line":
		sc.env = env.WideCorridor()
	default:
		sc.env = env.Building2()
	}
	sc.layout()

	center := geom.V(sc.env.Width/2, sc.env.Height/2)
	apArr := make([]*phased.Array, spec.APs)
	for a, p := range sc.apPos {
		apArr[a] = phased.NewArray(p, orientToward(p, center), int64(a+1))
	}

	S, A := spec.Stations, spec.APs
	sc.snaps = make([][]*channel.Snapshot, S)
	sc.bestSNR = make([][]float64, S)
	sc.bestTx = make([][]int, S)
	sc.bestRx = make([][]int, S)
	sc.penaltyDB = make([][][]float64, S)
	sc.initialAP = make([]int, S)
	for s := 0; s < S; s++ {
		pos := sc.staPos[s]
		// The station body points at its nearest AP; beams do the rest.
		near := 0
		for a := 1; a < A; a++ {
			if pos.Sub(sc.apPos[a]).Len() < pos.Sub(sc.apPos[near]).Len() {
				near = a
			}
		}
		rx := phased.NewArray(pos, orientToward(pos, sc.apPos[near]), int64(1000+s))

		sc.snaps[s] = make([]*channel.Snapshot, A)
		sc.bestSNR[s] = make([]float64, A)
		sc.bestTx[s] = make([]int, A)
		sc.bestRx[s] = make([]int, A)
		sc.penaltyDB[s] = make([][]float64, A)
		for a := 0; a < A; a++ {
			l := channel.NewLink(sc.env, apArr[a], rx)
			snap := l.Snapshot()
			tb, rb, snr := snap.BestPair()
			sc.snaps[s][a] = snap
			sc.bestTx[s][a], sc.bestRx[s][a], sc.bestSNR[s][a] = tb, rb, snr
			sc.penaltyDB[s][a] = make([]float64, A)
			for b := 0; b < A; b++ {
				if b == a {
					continue
				}
				intf := l.SnapshotInterfered([]channel.Interferer{{
					Pos: sc.apPos[b], EIRPdBm: InterfererEIRPdBm, DutyCycle: 1,
				}})
				pen := snap.SNRdB(tb, rb) - intf.SNRdB(tb, rb)
				if pen < 0 {
					pen = 0
				}
				sc.penaltyDB[s][a][b] = pen
			}
			if snr > sc.bestSNR[s][sc.initialAP[s]] {
				sc.initialAP[s] = a
			}
		}
	}
	return sc, nil
}

// layout places APs on the topology's pattern and stations from the
// scenario's layout stream.
func (sc *Scenario) layout() {
	spec := sc.spec
	W, H := sc.env.Width, sc.env.Height
	sc.apPos = make([]geom.Vec, spec.APs)
	if spec.Topology == "line" {
		for a := range sc.apPos {
			sc.apPos[a] = geom.V((float64(a)+0.5)*W/float64(spec.APs), H/2)
		}
	} else {
		cols := int(math.Ceil(math.Sqrt(float64(spec.APs))))
		rows := (spec.APs + cols - 1) / cols
		for a := range sc.apPos {
			c, r := a%cols, a/cols
			sc.apPos[a] = geom.V((float64(c)+0.5)*W/float64(cols), (float64(r)+0.5)*H/float64(rows))
		}
	}
	rng := &splitMix64{s: spec.Seed ^ 0xda3e39cb94b95bdb}
	const margin = 1.0
	sc.staPos = make([]geom.Vec, spec.Stations)
	for s := range sc.staPos {
		sc.staPos[s] = geom.V(
			margin+rng.float64()*(W-2*margin),
			margin+rng.float64()*(H-2*margin),
		)
	}
}

// orientToward returns the boresight angle (degrees) from p toward q.
func orientToward(p, q geom.Vec) float64 {
	d := q.Sub(p)
	return math.Atan2(d.Y, d.X) * 180 / math.Pi
}
