package engine

import (
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/phy"
	"github.com/libra-wlan/libra/internal/sim"
)

func smallSpec() Spec {
	return Spec{
		APs: 2, Stations: 8,
		Duration: 200 * time.Millisecond,
		Seed:     42,
		Params:   stdParams(),
		Policy:   sim.BAFirst,
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no APs", func(s *Spec) { s.APs = 0 }},
		{"no stations", func(s *Spec) { s.Stations = 0 }},
		{"no duration", func(s *Spec) { s.Duration = 0 }},
		{"bad topology", func(s *Spec) { s.Topology = "mesh" }},
		{"bad params", func(s *Spec) { s.Params.FAT = 0 }},
		{"inverted impair range", func(s *Spec) { s.ImpairMinDB = 20; s.ImpairMaxDB = 5 }},
	}
	for _, tc := range cases {
		spec := smallSpec()
		tc.mut(&spec)
		if _, err := Build(spec); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	sc, err := Build(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(sc, 1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := New(sc, workers).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Digest != base.Digest {
			t.Fatalf("workers=%d digest %s != workers=1 digest %s", workers, res.Digest, base.Digest)
		}
		if !reflect.DeepEqual(base.Stations, res.Stations) {
			t.Fatalf("workers=%d station results diverge", workers)
		}
	}
	// And re-running the same scenario reproduces itself exactly.
	again, err := New(sc, 1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != base.Digest {
		t.Error("same scenario, same workers, different digest")
	}
}

func TestEngineContention(t *testing.T) {
	// One station per AP vs. four stations per AP: contention must cost
	// throughput per station.
	lone, err := Build(Spec{
		APs: 2, Stations: 2, Duration: 200 * time.Millisecond, Seed: 1,
		Params: stdParams(), Policy: sim.BAFirst,
		ImpairMeanGap: -1, HysteresisDB: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	crowded, err := Build(Spec{
		APs: 2, Stations: 8, Duration: 200 * time.Millisecond, Seed: 1,
		Params: stdParams(), Policy: sim.BAFirst,
		ImpairMeanGap: -1, HysteresisDB: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := New(lone, 1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cr, err := New(crowded, 1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if lr.Bytes()/float64(len(lr.Stations)) <= cr.Bytes()/float64(len(cr.Stations)) {
		t.Errorf("per-station bytes: lone %v <= crowded %v",
			lr.Bytes()/float64(len(lr.Stations)), cr.Bytes()/float64(len(cr.Stations)))
	}
	// Membership is conserved.
	total := 0
	for _, m := range cr.APMembers {
		total += m
	}
	if total != len(cr.Stations) {
		t.Errorf("members %d != stations %d", total, len(cr.Stations))
	}
}

func TestEngineImpairmentsDriveHandoffs(t *testing.T) {
	// Frequent, deep impairments against a low handoff bar: stations must
	// re-home at least once across the run.
	sc, err := Build(Spec{
		APs: 2, Stations: 8,
		Duration: 400 * time.Millisecond, Seed: 3,
		Params: stdParams(), Policy: sim.BAFirst,
		ImpairMeanGap: 80 * time.Millisecond,
		ImpairMeanDur: 150 * time.Millisecond,
		ImpairMinDB:   25, ImpairMaxDB: 40,
		HysteresisDB: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(sc, 4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Handoffs == 0 {
		t.Error("no handoffs under sustained deep impairments")
	}
	if res.Breaks() == 0 {
		t.Error("no link breaks under deep impairments")
	}
}

func TestEngineOutcomes(t *testing.T) {
	sc, err := Build(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(sc, 2).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	outs := res.Outcomes()
	if len(outs) != len(res.Stations) {
		t.Fatalf("%d outcomes for %d stations", len(outs), len(res.Stations))
	}
	for i, o := range outs {
		if o.Bytes != res.Stations[i].Timeline.Bytes {
			t.Errorf("station %d: outcome bytes %v != timeline bytes %v", i, o.Bytes, res.Stations[i].Timeline.Bytes)
		}
		if o.Bytes <= 0 {
			t.Errorf("station %d delivered nothing", i)
		}
		if o.FinalMCS < phy.MinMCS || o.FinalMCS > phy.MaxMCS {
			t.Errorf("station %d: final MCS %v out of range", i, o.FinalMCS)
		}
	}
}

func TestEngineHonorsContext(t *testing.T) {
	sc, err := Build(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(sc, 1).Run(ctx); err == nil {
		t.Error("cancelled context not observed")
	}
}
