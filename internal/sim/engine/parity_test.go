package engine

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/sim"
	"github.com/libra-wlan/libra/internal/trace"
)

// fixedClf always answers the same action.
type fixedClf struct{ act dataset.Action }

func (f fixedClf) Classify([]float64) dataset.Action { return f.act }
func (f fixedClf) Name() string                      { return "fixed" }

func stdParams() sim.Params {
	return sim.Params{
		BAOverhead: 5 * time.Millisecond,
		FAT:        2 * time.Millisecond,
		FlowDur:    time.Second,
	}
}

// A 1-AP/1-station engine run over a recorded timeline must reproduce the
// legacy RunTimeline loop bit for bit — same bytes, same breaks, same rate
// profile, same actions. This is the contract that pins the LinkSim
// extraction underneath both paths.
func TestReplayParityWithRunTimeline(t *testing.T) {
	pools := trace.NewPools(99)
	if err := pools.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []trace.ScenarioKind{trace.Mixed, trace.Blockage, trace.Motion} {
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(100 + seed))
			tl := pools.RandomTimeline(kind, rng)
			legacy := sim.RunTimeline(tl, stdParams(), sim.BAFirst, nil)

			sc, err := Build(Spec{
				APs: 1, Stations: 1,
				Params:    stdParams(),
				Policy:    sim.BAFirst,
				Timelines: []*trace.Timeline{tl},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := New(sc, 1).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(legacy, res.Stations[0].Timeline) {
				t.Errorf("%v seed %d: engine replay diverges from RunTimeline:\nlegacy %+v\nengine %+v",
					kind, seed, legacy, res.Stations[0].Timeline)
			}
		}
	}
}

// Replaying several stations' timelines in one engine run keeps each
// station's result identical to its solo legacy run — stations in replay mode
// do not interact.
func TestReplayParityManyStations(t *testing.T) {
	pools := trace.NewPools(99)
	if err := pools.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 5
	tls := make([]*trace.Timeline, n)
	for i := range tls {
		tls[i] = pools.RandomTimeline(trace.Mixed, rng)
	}
	clf := fixedClf{dataset.ActBA}
	sc, err := Build(Spec{
		APs: 1, Stations: n,
		Params:     stdParams(),
		Policy:     sim.LiBRA,
		Classifier: clf,
		Timelines:  tls,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(sc, 4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, tl := range tls {
		legacy := sim.RunTimeline(tl, stdParams(), sim.LiBRA, clf)
		if !reflect.DeepEqual(legacy, res.Stations[i].Timeline) {
			t.Errorf("station %d diverges from its solo run", i)
		}
	}
}
