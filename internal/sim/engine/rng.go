package engine

import "math"

// SplitMix64 streams give every entity its own deterministic randomness. The
// generator is seeded from (scenario seed, entity ID) only, so a station's
// draw sequence is a pure function of the scenario — independent of worker
// count, scheduling and every other entity. All draws happen in the serial
// event-push phase ("drawn pre-dispatch"): handlers receive their random
// values attached to the event and never touch a generator.
type splitMix64 struct{ s uint64 }

// newStream derives the stream for one entity.
func newStream(seed uint64, entity int) *splitMix64 {
	return &splitMix64{s: seed ^ (0x9e3779b97f4a7c15 * (uint64(entity) + 1))}
}

// next returns the next 64 uniform bits (Steele et al., SplitMix64 finalizer).
func (r *splitMix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *splitMix64) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// expDraw maps a uniform draw to an exponential variate with the given mean,
// clamped away from zero so event times stay strictly increasing.
func expDraw(u, mean float64) float64 {
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	d := -mean * math.Log(1-u)
	if d < 1e-6 {
		d = 1e-6
	}
	return d
}
