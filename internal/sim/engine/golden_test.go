package engine

import (
	"context"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/sim"
)

// goldenSpec is the pinned 4-AP/64-station scenario. The CI sim-smoke job
// runs the same scenario through cmd/libra-sim (-aps 4 -stations 64
// -duration 500ms -seed 1) and greps for goldenDigest, so a change here must
// change both together — and any change to the digest means the engine's
// arithmetic or event order moved, which is exactly what this test exists to
// catch.
func goldenSpec() Spec {
	return Spec{
		APs: 4, Stations: 64,
		Duration: 500 * time.Millisecond,
		Seed:     1,
		Params: sim.Params{
			BAOverhead: 5 * time.Millisecond,
			FAT:        2 * time.Millisecond,
		},
		Policy: sim.BAFirst,
	}
}

const goldenDigest = "874960926038cfd882ce49e973b790cf8c9812a64d3f60227a85e2179ea965c4"

func TestGoldenDigest(t *testing.T) {
	sc, err := Build(goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := New(sc, 1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r8, err := New(sc, 8).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Digest != r8.Digest {
		t.Fatalf("workers=1 digest %s != workers=8 digest %s", r1.Digest, r8.Digest)
	}
	if r1.Digest != goldenDigest {
		t.Errorf("digest %s != pinned %s", r1.Digest, goldenDigest)
	}
	// The scenario must exercise every mechanism, or the digest pins less
	// than it claims.
	if r1.Breaks() == 0 {
		t.Error("golden scenario produced no link breaks")
	}
	if r1.Handoffs == 0 {
		t.Error("golden scenario produced no handoffs")
	}
	t.Logf("events=%d breaks=%d handoffs=%d bytes=%g", r1.Events, r1.Breaks(), r1.Handoffs, r1.Bytes())
}
