package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"runtime"
	"strconv"
	"sync"
	"time"

	"github.com/libra-wlan/libra/internal/adapt"
	"github.com/libra-wlan/libra/internal/mac"
	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/sim"
)

// Engine runs a built Scenario. The loop alternates a serial phase (pop one
// time barrier from the heap, later: apply effects, draw randomness, push
// follow-up events) with a parallel phase (station handlers, partitioned so
// each station's events stay on one worker). Handlers mutate only their own
// station's state and read only pre-barrier shared state; everything that
// writes shared state — AP membership, slot schedules, the digest — happens
// serially in (entity, sequence) order. That split is the whole determinism
// argument: the merged trace and digest depend on the event order, which the
// heap fixes independently of worker count.
type Engine struct {
	sc      *Scenario
	workers int
}

// New returns an engine over sc using the given worker count (<=0 picks
// GOMAXPROCS). The worker count never changes results, only wall time.
func New(sc *Scenario, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{sc: sc, workers: workers}
}

// Workers returns the configured worker count.
func (en *Engine) Workers() int { return en.workers }

// stationState is one station's runtime: mutated only by its own handler
// (parallel phase) or the serial effect phase.
type stationState struct {
	ls       *sim.LinkSim
	stream   *obs.Stream
	ap       int
	impairDB float64
	// intfDB is the interference offset applied to the last segment — a
	// verdict event fires when it changes.
	intfDB float64
	// deficit counts consecutive boundaries below the handoff bar.
	deficit  int
	handoffs int
	// debt is overhead airtime (handoff) charged at the start of the next
	// segment, so simulated time never outruns the event clock.
	debt time.Duration
	// segIdx indexes Timelines[s].Segments in replay mode.
	segIdx int
	rng    *splitMix64
}

// apState is one AP's runtime: only the serial phases touch it.
type apState struct {
	members int
	sched   mac.SlotSchedule
	stream  *obs.Stream
}

// segOut is what a station handler hands back to the serial merge: digest
// lines (appended to the run hash in entity order), follow-up events to push,
// and requested effects.
type segOut struct {
	digest []byte
	pushes []event
	// handoffTo >= 0 asks the serial phase to re-home the station.
	handoffTo int
	// drawImpair asks the serial phase to draw the next impairment cycle.
	drawImpair bool
	verdicts   int
}

// Run executes the scenario to completion. ctx is checked between barriers;
// a completed run is a pure function of the scenario.
func (en *Engine) Run(ctx context.Context) (*Result, error) {
	sc := en.sc
	spec := sc.spec
	S, A := spec.Stations, spec.APs
	replay := spec.Timelines != nil

	obsEngineRuns.Inc()
	tracer := obs.ActiveTracer()
	h := sha256.New()

	// Serial init: streams, link sims, membership, schedules, first events.
	stations := make([]*stationState, S)
	aps := make([]*apState, A)
	for a := 0; a < A; a++ {
		aps[a] = &apState{stream: tracer.Stream("engine/ap", uint64(a))}
	}
	eh := &eventHeap{}
	for s := 0; s < S; s++ {
		st := &stationState{
			stream: tracer.Stream("engine/station", uint64(s)),
			ap:     sc.initialAP[s],
			rng:    newStream(spec.Seed, s),
		}
		p := spec.Params
		p.Trace = st.stream
		st.ls = sim.NewLinkSim(p, spec.Policy, spec.Classifier)
		stations[s] = st
		aps[st.ap].members++
		fmt.Fprintf(h, "init s=%d ap=%d\n", s, st.ap)
		eh.push(event{at: 0, entity: s, kind: evSegment})
		if !replay && spec.ImpairMeanGap > 0 {
			pushImpairCycle(eh, st, s, 0, spec)
		}
	}
	for a := 0; a < A; a++ {
		en.regrant(h, aps, a)
	}

	// Event loop: one barrier per iteration.
	duration := spec.Duration
	groups := make([][]event, 0, S)
	events := 0
	for eh.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batch := eh.popBarrier()
		events += len(batch)

		// Group the barrier's events by station; batch is already in
		// (entity, seq) order.
		groups = groups[:0]
		for i := 0; i < len(batch); {
			j := i
			for j < len(batch) && batch[j].entity == batch[i].entity {
				j++
			}
			groups = append(groups, batch[i:j])
			i = j
		}

		outs := make([]segOut, len(groups))
		if en.workers > 1 && len(groups) > 1 {
			var wg sync.WaitGroup
			next := make(chan int, len(groups))
			for g := range groups {
				next <- g
			}
			close(next)
			w := en.workers
			if w > len(groups) {
				w = len(groups)
			}
			wg.Add(w)
			for i := 0; i < w; i++ {
				go func() {
					defer wg.Done()
					for g := range next {
						outs[g] = en.handleGroup(stations, aps, groups[g], duration)
					}
				}()
			}
			wg.Wait()
		} else {
			for g := range groups {
				outs[g] = en.handleGroup(stations, aps, groups[g], duration)
			}
		}

		// Serial merge in entity order: digest, effects, pushes, draws.
		for g, out := range outs {
			s := groups[g][0].entity
			st := stations[s]
			at := groups[g][0].at
			h.Write(out.digest)
			obsVerdicts.Add(uint64(out.verdicts))
			if out.handoffTo >= 0 {
				en.handoff(h, stations, aps, s, out.handoffTo, at)
			}
			for _, e := range out.pushes {
				eh.push(e)
			}
			if out.drawImpair {
				pushImpairCycle(eh, st, s, at, spec)
			}
		}
	}
	obsEngineEvents.Add(uint64(events))

	// Final accounting lines pin the aggregate results into the digest.
	res := &Result{Spec: spec, Stations: make([]StationResult, S), APMembers: make([]int, A), Events: events}
	for s, st := range stations {
		tl := st.ls.Result()
		tx, rx := st.ls.Beams()
		onBest := !replay && tx == sc.bestTx[s][st.ap] && rx == sc.bestRx[s][st.ap]
		res.Stations[s] = StationResult{
			Station: s, AP: st.ap, Handoffs: st.handoffs,
			FinalMCS: st.ls.MCS(), FinalOnBestBeam: onBest, Timeline: tl,
		}
		res.Handoffs += st.handoffs
		fmt.Fprintf(h, "fin s=%d ap=%d bytes=%s breaks=%d handoffs=%d mcs=%d\n",
			s, st.ap, fm(tl.Bytes), tl.Breaks, st.handoffs, st.ls.MCS())
	}
	for a, ap := range aps {
		res.APMembers[a] = ap.members
	}
	res.Digest = hex.EncodeToString(h.Sum(nil))
	return res, nil
}

// handleGroup runs every event of one station within a barrier, in order.
// It must not touch shared mutable state: schedules and memberships are read
// as of the previous barrier, effects are returned for the serial phase.
func (en *Engine) handleGroup(stations []*stationState, aps []*apState, group []event, duration time.Duration) segOut {
	out := segOut{handoffTo: -1}
	for _, e := range group {
		switch e.kind {
		case evSegment:
			en.handleSegment(stations, aps, e, duration, &out)
		case evImpairStart:
			st := stations[e.entity]
			st.impairDB = e.penaltyDB
			obsImpairments.Inc()
			st.stream.Event(simTime(e.at), "impair_start",
				obs.Ffloat("penalty_db", e.penaltyDB),
				obs.Fint("dur_us", e.impairDur.Microseconds()))
			out.digest = appendLine(out.digest, "impair", e.at, e.entity,
				"db="+fm(e.penaltyDB))
			end := e.at + e.impairDur
			if end < duration {
				out.pushes = append(out.pushes, event{at: end, entity: e.entity, kind: evImpairEnd})
			}
		case evImpairEnd:
			st := stations[e.entity]
			st.impairDB = 0
			st.stream.Event(simTime(e.at), "impair_end")
			out.digest = appendLine(out.digest, "clear", e.at, e.entity, "")
			out.drawImpair = true
		}
	}
	return out
}

// handleSegment advances one station's LinkSim across one boundary interval:
// contention share and interference offset from the pre-barrier schedules,
// pending handoff debt, the segment itself, then the handoff rule.
func (en *Engine) handleSegment(stations []*stationState, aps []*apState, e event, duration time.Duration, out *segOut) {
	sc := en.sc
	spec := sc.spec
	s := e.entity
	st := stations[s]

	if spec.Timelines != nil {
		en.handleReplaySegment(st, e, out)
		return
	}

	a := st.ap
	sched := aps[a].sched
	st.ls.SetShare(sched.Share())

	// Interference: each co-channel AP whose active window overlaps ours
	// costs its precomputed worst-case penalty, scaled by the overlap.
	intf := en.interferenceDB(aps, s, a)
	if intf != st.intfDB {
		out.verdicts++
		st.stream.Event(simTime(e.at), "interference",
			obs.Fint("ap", int64(a)), obs.Ffloat("penalty_db", intf))
		out.digest = appendLine(out.digest, "intf", e.at, s, "db="+fm(intf))
		st.intfDB = intf
	}
	st.ls.SetSNROffsetDB(-(st.impairDB + intf))

	dur := spec.Interval
	if e.at+dur > duration {
		dur = duration - e.at
	}
	// Pay handoff debt first so LinkSim time tracks the event clock.
	if st.debt > 0 {
		pay := st.debt
		if pay > dur {
			pay = dur
		}
		st.ls.ChargeOverhead(pay)
		st.debt -= pay
		dur -= pay
	}
	snap := sc.snaps[s][a]
	if dur > 0 {
		st.ls.Segment(snap, dur)
	}
	out.digest = appendLine(out.digest, "seg", e.at, s,
		"mcs="+strconv.Itoa(int(st.ls.MCS()))+" bytes="+fm(st.ls.Result().Bytes))

	// Handoff rule: sustained SNR deficit against the best alternative AP,
	// compared like for like — the alternative is discounted by the
	// interference it would suffer under the current slot schedules, so a
	// station does not ping-pong toward an AP that looks clean only
	// because its own penalties were ignored.
	if spec.HysteresisDB > 0 && len(aps) > 1 {
		cur := st.ls.CurrentSNRdB(snap)
		alt, altSNR := -1, 0.0
		for b := range aps {
			if b == a {
				continue
			}
			eff := sc.bestSNR[s][b] - en.interferenceDB(aps, s, b)
			if alt < 0 || eff > altSNR {
				alt, altSNR = b, eff
			}
		}
		if altSNR-cur > spec.HysteresisDB {
			st.deficit++
		} else {
			st.deficit = 0
		}
		if st.deficit >= spec.DeficitBoundaries {
			out.handoffTo = alt
		}
	}
	if next := e.at + spec.Interval; next < duration {
		out.pushes = append(out.pushes, event{at: next, entity: s, kind: evSegment})
	}
}

// handleReplaySegment advances one timeline segment (replay mode): the exact
// call sequence of the legacy RunTimeline loop, so the result is
// bit-identical to it.
func (en *Engine) handleReplaySegment(st *stationState, e event, out *segOut) {
	tl := en.sc.spec.Timelines[e.entity]
	if st.segIdx >= len(tl.Segments) {
		return
	}
	seg := tl.Segments[st.segIdx]
	st.segIdx++
	st.ls.Segment(seg.Snap, seg.Dur)
	out.digest = appendLine(out.digest, "seg", e.at, e.entity,
		"mcs="+strconv.Itoa(int(st.ls.MCS()))+" bytes="+fm(st.ls.Result().Bytes))
	if st.segIdx < len(tl.Segments) {
		out.pushes = append(out.pushes, event{at: e.at + seg.Dur, entity: e.entity, kind: evSegment})
	}
}

// interferenceDB sums the SNR penalty station s would suffer when served by
// AP a under the current (pre-barrier) slot schedules: each co-channel AP's
// precomputed worst-case penalty scaled by how much of a's active window it
// overlaps. Iteration is in AP order, so the float sum is deterministic.
func (en *Engine) interferenceDB(aps []*apState, s, a int) float64 {
	sched := aps[a].sched
	if !sched.Active() {
		sched = mac.EqualShare(en.sc.slotOffset[a], 1, en.sc.spec.DemandSlots)
	}
	intf := 0.0
	for b := range aps {
		if b == a || !aps[b].sched.Active() {
			continue
		}
		if ov := sched.Overlap(aps[b].sched); ov > 0 {
			intf += en.sc.penaltyDB[s][a][b] * ov
		}
	}
	return intf
}

// handoff re-homes a station (serial phase): membership, schedules, overhead
// debt, full retraining on the new AP's channel. The impairment is cleared —
// it modeled a blockage on the old AP's path.
func (en *Engine) handoff(h hash.Hash, stations []*stationState, aps []*apState, s, to int, at time.Duration) {
	st := stations[s]
	from := st.ap
	if from == to {
		return
	}
	aps[from].members--
	aps[to].members++
	st.ap = to
	st.deficit = 0
	st.impairDB = 0
	st.intfDB = 0
	st.handoffs++
	st.debt += adapt.HandoffOverhead(en.sc.spec.Params.BAOverhead)
	st.ls.Rebootstrap(en.sc.snaps[s][to])
	obsHandoffs.Inc()
	st.stream.Event(simTime(at), "handoff",
		obs.Fint("from", int64(from)), obs.Fint("to", int64(to)))
	fmt.Fprintf(h, "handoff t=%d s=%d from=%d to=%d\n", at.Microseconds(), s, from, to)
	en.regrant(h, aps, from)
	en.regrant(h, aps, to)
}

// regrant recomputes one AP's slot schedule after a membership change and
// records the grant (serial phase only).
func (en *Engine) regrant(h hash.Hash, aps []*apState, a int) {
	ap := aps[a]
	ap.sched = mac.EqualShare(en.sc.slotOffset[a], ap.members, en.sc.spec.DemandSlots)
	obsSlotGrants.Inc()
	ap.stream.Event(obs.SimTime{}, "grant",
		obs.Fint("members", int64(ap.sched.Members)),
		obs.Fint("granted", int64(ap.sched.Granted)),
		obs.Fint("offset", int64(ap.sched.Offset)))
	fmt.Fprintf(h, "grant ap=%d members=%d granted=%d offset=%d\n",
		a, ap.sched.Members, ap.sched.Granted, ap.sched.Offset)
}

// pushImpairCycle draws the next blockage (gap, attenuation, duration) from
// the station's stream and schedules its onset. Called only from serial
// phases, so the draw order is deterministic.
func pushImpairCycle(eh *eventHeap, st *stationState, s int, from time.Duration, spec Spec) {
	gap := time.Duration(expDraw(st.rng.float64(), float64(spec.ImpairMeanGap)))
	pen := spec.ImpairMinDB + st.rng.float64()*(spec.ImpairMaxDB-spec.ImpairMinDB)
	dur := time.Duration(expDraw(st.rng.float64(), float64(spec.ImpairMeanDur)))
	at := from + gap
	if at >= spec.Duration {
		return
	}
	eh.push(event{at: at, entity: s, kind: evImpairStart, penaltyDB: pen, impairDur: dur})
}

// appendLine appends one canonical digest line: "<kind> t=<us> s=<id> <extra>".
func appendLine(b []byte, kind string, at time.Duration, s int, extra string) []byte {
	b = append(b, kind...)
	b = append(b, " t="...)
	b = strconv.AppendInt(b, at.Microseconds(), 10)
	b = append(b, " s="...)
	b = strconv.AppendInt(b, int64(s), 10)
	if extra != "" {
		b = append(b, ' ')
		b = append(b, extra...)
	}
	b = append(b, '\n')
	return b
}

// fm renders a float with the shortest round-trip representation.
func fm(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
