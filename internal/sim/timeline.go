package sim

import (
	"context"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/phy"
	"github.com/libra-wlan/libra/internal/trace"
)

// RateInterval is a stretch of time at a constant delivery rate; a timeline
// run produces a sequence of them (consumed by the VR player of §8.4).
type RateInterval struct {
	Dur time.Duration
	Bps float64
}

// TimelineResult summarizes one policy run over one timeline.
type TimelineResult struct {
	// Bytes delivered over the whole timeline.
	Bytes float64
	// Breaks is the number of link breaks encountered.
	Breaks int
	// TotalRecoveryDelay sums per-break recovery delays. The paper's
	// Fig. 13 metric is TotalRecoveryDelay / Breaks.
	TotalRecoveryDelay time.Duration
	// Rate is the delivered-rate profile over time.
	Rate []RateInterval
	// Actions records the mechanism executed at each break (BA or RA),
	// in order — the input to the §7 future-work pattern predictor.
	Actions []dataset.Action
}

// MeanRecoveryDelay returns the average per-break recovery delay.
func (r *TimelineResult) MeanRecoveryDelay() time.Duration {
	if r.Breaks == 0 {
		return 0
	}
	return r.TotalRecoveryDelay / time.Duration(r.Breaks)
}

// tlState is the mutable link configuration a policy carries across
// segments.
type tlState struct {
	txBeam, rxBeam int
	mcs            phy.MCS
	prevMeas       channel.Measurement
	prevValid      bool
}

// tableAt builds the per-MCS expected-throughput table for a beam pair on a
// snapshot, shifting the SNR by offsDB when non-zero (the engine's channel
// for impairment and interference penalties; 0 is an exact no-op).
func tableAt(snap *channel.Snapshot, txBeam, rxBeam int, offsDB float64) thTable {
	snr := snap.SNRdB(txBeam, rxBeam)
	if offsDB != 0 {
		snr += offsDB
	}
	var t thTable
	for m := phy.MinMCS; m <= phy.MaxMCS; m++ {
		t[m] = phy.ExpectedThroughput(m, snr)
	}
	return t
}

// RunTimeline simulates one policy over a multi-impairment timeline. clf is
// consulted only by the LiBRA policy.
//
// Deprecated: use Run with Scenario{Timeline: tl}; this wrapper remains for
// source compatibility and panics on parameters Run would reject.
func RunTimeline(tl *trace.Timeline, p Params, pol Policy, clf core.Classifier) TimelineResult {
	res, err := Run(context.Background(), Scenario{Timeline: tl},
		Options{Params: p, Policy: pol, Classifier: clf})
	if err != nil {
		panic(err)
	}
	return res.Timeline
}

// RunTimelineContext is RunTimeline with cooperative cancellation at segment
// boundaries: a canceled ctx abandons the remaining segments and returns
// ctx's error with a zero result. A run that completes is unaffected by ctx
// — the result depends only on the timeline, parameters and classifier.
//
// Deprecated: use Run with Scenario{Timeline: tl}.
func RunTimelineContext(ctx context.Context, tl *trace.Timeline, p Params, pol Policy, clf core.Classifier) (TimelineResult, error) {
	res, err := Run(ctx, Scenario{Timeline: tl},
		Options{Params: p, Policy: pol, Classifier: clf})
	return res.Timeline, err
}

// runTimeline drives a LinkSim over the timeline's segments, checking ctx at
// each segment boundary.
func runTimeline(ctx context.Context, tl *trace.Timeline, p Params, pol Policy, clf core.Classifier) (TimelineResult, error) {
	if len(tl.Segments) == 0 {
		return TimelineResult{}, nil
	}
	ls := NewLinkSim(p, pol, clf)
	for _, seg := range tl.Segments {
		if err := ctx.Err(); err != nil {
			return TimelineResult{}, err
		}
		ls.Segment(seg.Snap, seg.Dur)
	}
	return ls.Result(), nil
}

// bestWorking returns the highest-throughput MCS of a table (falling back to
// MinMCS when nothing works).
func bestWorking(t *thTable) (phy.MCS, float64) {
	best, bestTh := phy.MinMCS, 0.0
	for m := phy.MinMCS; m <= phy.MaxMCS; m++ {
		if t[m] > bestTh {
			best, bestTh = m, t[m]
		}
	}
	return best, bestTh
}

// decideTimeline picks the adaptation action at a break. offsDB shifts every
// SNR evaluation (0 for plain timeline runs).
func decideTimeline(pol Policy, clf core.Classifier, cfg core.Config, snap *channel.Snapshot, st *tlState, cur *thTable, p Params, offsDB float64) dataset.Action {
	switch pol {
	case BAFirst:
		return dataset.ActBA
	case RAFirst:
		return dataset.ActRA
	case OracleData, OracleDelay:
		// Greedy per-break optimum (§8.1: the oracles make optimal
		// decisions only with respect to restoring a link).
		ra := planOutcome(false, snap, st, cur, p, offsDB)
		ba := planOutcome(true, snap, st, cur, p, offsDB)
		if pol == OracleData {
			if ra.Bytes >= ba.Bytes {
				return dataset.ActRA
			}
			return dataset.ActBA
		}
		if ra.RecoveryDelay <= ba.RecoveryDelay {
			return dataset.ActRA
		}
		return dataset.ActBA
	default: // LiBRA
		snr := snap.SNRdB(st.txBeam, st.rxBeam)
		if offsDB != 0 {
			snr += offsDB
		}
		cdr := phy.CDR(st.mcs, snr)
		if cdr < 0.01 || !st.prevValid {
			return core.MissingACKAction(st.mcs, cfg)
		}
		meas := snap.Measure(st.txBeam, st.rxBeam)
		if offsDB != 0 {
			meas.RSSdBm += offsDB
			meas.SNRdB += offsDB
		}
		f := dataset.FeaturizeObserved(st.prevMeas, meas, cdr, st.mcs)
		action := clf.Classify(f[:])
		if action == dataset.ActNA {
			// Misprediction on a broken link: the §7 fallback applies
			// after one lost observation window (charged by caller via
			// applyAdaptation's NA handling).
			return dataset.ActNA
		}
		return action
	}
}

// planOutcome evaluates one branch (BA-first or RA-first) analytically for
// the oracles, using a synthetic entry built from the snapshot tables.
func planOutcome(baFirst bool, snap *channel.Snapshot, st *tlState, cur *thTable, p Params, offsDB float64) Outcome {
	e := &dataset.Entry{InitMCS: st.mcs}
	e.InitBeamTh = *cur
	tb, rb, _ := snap.BestPair()
	e.BestBeamTh = tableAt(snap, tb, rb, offsDB)
	return runPlan(e, paramsForSegment(p), baFirst)
}

// paramsForSegment reuses the entry machinery with a nominal flow window
// long enough to capture the adaptation transient. The oracle's exploratory
// plan evaluations never trace (only the executed branch is an event).
func paramsForSegment(p Params) Params {
	p.FlowDur = 3 * time.Second
	p.Trace = nil
	return p
}

// applyAdaptation executes the chosen action on the timeline state, emitting
// rate intervals for the overheads and probe frames. It returns the recovery
// delay and the mechanism actually executed (an NA misprediction resolves to
// the missing-ACK fallback; a failed RA resolves to BA). offsDB shifts the
// rebuilt throughput tables like every other channel evaluation.
func applyAdaptation(action dataset.Action, snap *channel.Snapshot, st *tlState, cur *thTable, p Params, emit func(time.Duration, float64), remaining *time.Duration, offsDB float64) (time.Duration, dataset.Action) {
	var delay time.Duration
	cfg := p.Config()
	spend := func(d time.Duration, bps float64) {
		if d > *remaining {
			d = *remaining
		}
		emit(d, bps)
		*remaining -= d
	}

	if action == dataset.ActNA {
		// One lost observation window at the broken rate, then fall back.
		wait := 2 * p.FAT
		spend(wait, (*cur)[st.mcs])
		delay += wait
		action = core.MissingACKAction(st.mcs, cfg)
	}

	doRA := func(t *thTable) raOutcome {
		ra := raSearch(t, st.mcs, p.FAT)
		for i := 0; i < ra.probes; i++ {
			m := st.mcs - phy.MCS(i)
			if m < phy.MinMCS {
				break
			}
			spend(p.FAT, (*t)[m])
		}
		return ra
	}

	executed := action
	switch action {
	case dataset.ActBA:
		spend(cfg.BAOverhead, 0)
		delay += cfg.BAOverhead
		tb, rb, _ := snap.BestPair()
		st.txBeam, st.rxBeam = tb, rb
		best := tableAt(snap, tb, rb, offsDB)
		*cur = best
		ra := doRA(&best)
		if ra.found {
			delay += time.Duration(ra.firstWorking) * p.FAT
			st.mcs = ra.mcs
		} else {
			delay = core.Dmax(cfg)
			st.mcs = phy.MinMCS
		}
	default: // RA first
		executed = dataset.ActRA
		ra := doRA(cur)
		if ra.found {
			delay += time.Duration(ra.firstWorking) * p.FAT
			st.mcs = ra.mcs
		} else {
			executed = dataset.ActBA // RA alone could not restore the link
			delay += time.Duration(ra.probes) * p.FAT
			spend(cfg.BAOverhead, 0)
			delay += cfg.BAOverhead
			tb, rb, _ := snap.BestPair()
			st.txBeam, st.rxBeam = tb, rb
			best := tableAt(snap, tb, rb, offsDB)
			*cur = best
			ra2 := doRA(&best)
			if ra2.found {
				delay += time.Duration(ra2.firstWorking) * p.FAT
				st.mcs = ra2.mcs
			} else {
				delay = core.Dmax(cfg)
				st.mcs = phy.MinMCS
			}
		}
	}
	return delay, executed
}
