package sim

import (
	"context"
	"fmt"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/phy"
	"github.com/libra-wlan/libra/internal/trace"
)

// This file is the unified scenario API: one context-first entry point that
// subsumes the historic RunEntry / RunEntryFailover / RunEntryRxInitiated
// trio and the RunTimeline / RunTimelineContext pair. The old names remain
// as thin deprecated wrappers with parity pinned by tests.

// Variant selects a protocol-design ablation of the standard Tx-initiated
// LiBRA evaluation (§7-§8).
type Variant int

const (
	// VariantStandard is the paper's Tx-initiated design.
	VariantStandard Variant = iota
	// VariantFailover replays a break under the MOCA-style failover-beam
	// policy (requires Options.Failover; only entry scenarios).
	VariantFailover
	// VariantRxInitiated replays a break under Rx-initiated LiBRA, which
	// always runs the classifier but pays a signaling exchange per
	// adaptation (requires Options.Classifier; only entry scenarios).
	VariantRxInitiated
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantStandard:
		return "standard"
	case VariantFailover:
		return "failover"
	case VariantRxInitiated:
		return "rx-initiated"
	}
	return "unknown"
}

// Scenario is the input of one policy run: exactly one of the fields is set.
type Scenario struct {
	// Entry replays a single link break from a dataset sample (§8.2).
	Entry *dataset.Entry
	// Timeline replays a multi-segment impairment timeline (§8.3).
	Timeline *trace.Timeline
}

// Options carries everything about a run that is not the channel scenario
// itself: protocol parameters, the policy under evaluation, its classifier,
// and the design variant.
type Options struct {
	// Params is the evaluation grid cell (BA overhead, FAT, flow length).
	Params Params
	// Policy is the adaptation policy under evaluation. Ignored by the
	// failover and Rx-initiated variants, which define their own logic.
	Policy Policy
	// Classifier is consulted by the LiBRA policy and required by the
	// Rx-initiated variant.
	Classifier core.Classifier
	// Variant selects the protocol-design ablation (default standard).
	Variant Variant
	// Failover is the failover beam pair's throughput table, required by
	// VariantFailover (BuildFailoverTable populates it for snapshot-backed
	// scenarios).
	Failover *[phy.NumMCS]float64
}

// Result is the output of Run: Outcome for entry scenarios, Timeline for
// timeline scenarios (the other field stays zero).
type Result struct {
	Outcome  Outcome
	Timeline TimelineResult
}

// Validate rejects non-positive protocol durations up front instead of
// letting them clamp silently deep inside the run loop. Entry scenarios
// additionally need a positive flow duration (timeline scenarios take their
// duration from the segments and ignore FlowDur).
func (p Params) Validate() error {
	if p.BAOverhead <= 0 {
		return fmt.Errorf("sim: BAOverhead %v is not positive", p.BAOverhead)
	}
	if p.FAT <= 0 {
		return fmt.Errorf("sim: FAT %v is not positive", p.FAT)
	}
	if p.FlowDur < 0 {
		return fmt.Errorf("sim: FlowDur %v is negative", p.FlowDur)
	}
	return nil
}

// validate checks the scenario/options combination before any simulation.
func validate(sc Scenario, opt Options) error {
	if (sc.Entry == nil) == (sc.Timeline == nil) {
		return fmt.Errorf("sim: scenario must set exactly one of Entry or Timeline")
	}
	if err := opt.Params.Validate(); err != nil {
		return err
	}
	if sc.Entry != nil && opt.Params.FlowDur <= 0 {
		return fmt.Errorf("sim: entry scenarios need a positive FlowDur (got %v)", opt.Params.FlowDur)
	}
	switch opt.Variant {
	case VariantStandard:
	case VariantFailover:
		if sc.Entry == nil {
			return fmt.Errorf("sim: the failover variant replays entry scenarios only")
		}
		if opt.Failover == nil {
			return fmt.Errorf("sim: the failover variant needs Options.Failover")
		}
	case VariantRxInitiated:
		if sc.Entry == nil {
			return fmt.Errorf("sim: the rx-initiated variant replays entry scenarios only")
		}
		if opt.Classifier == nil {
			return fmt.Errorf("sim: the rx-initiated variant needs Options.Classifier")
		}
	default:
		return fmt.Errorf("sim: unknown variant %d", int(opt.Variant))
	}
	return nil
}

// Run executes one scenario under one set of options. Timeline scenarios
// check ctx at every segment boundary; entry scenarios are short and check
// it only on entry. A run that completes is unaffected by ctx — the result
// depends only on the scenario, options and classifier, never on scheduling
// or the wall clock.
func Run(ctx context.Context, sc Scenario, opt Options) (Result, error) {
	if err := validate(sc, opt); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	var res Result
	if sc.Timeline != nil {
		tl, err := runTimeline(ctx, sc.Timeline, opt.Params, opt.Policy, opt.Classifier)
		if err != nil {
			return Result{}, err
		}
		res.Timeline = tl
		return res, nil
	}
	switch opt.Variant {
	case VariantFailover:
		res.Outcome = runEntryFailover(sc.Entry, opt.Failover, opt.Params)
	case VariantRxInitiated:
		res.Outcome = runEntryRxInitiated(sc.Entry, opt.Params, opt.Classifier)
	default:
		res.Outcome = runEntry(sc.Entry, opt.Params, opt.Policy, opt.Classifier)
	}
	return res, nil
}
