package sim

import (
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
)

// buildFailoverScenario creates an initial state, captures its failover
// pair, applies an impairment, and returns the entry plus the failover
// pair's throughput table at the NEW state.
func buildFailoverScenario(t *testing.T, impair func(*channel.Link)) (*dataset.Entry, *[phy.NumMCS]float64) {
	t.Helper()
	e := env.Lobby()
	tx := phased.NewArray(geom.V(2, 4), 0, 61)
	rx := phased.NewArray(geom.V(8, 4), 180, 62)
	l := channel.NewLink(e, tx, rx)

	snap := l.Snapshot()
	pt, pr, initSNR := snap.BestPair()
	ft, fr, _ := FailoverPair(snap, pt, pr)

	impair(l)
	after := l.Snapshot()
	entry := &dataset.Entry{}
	entry.InitMCS, _ = phy.BestMCS(initSNR)
	snrInit := after.SNRdB(pt, pr)
	bt, br, snrBest := after.BestPair()
	_ = bt
	_ = br
	for m := phy.MinMCS; m <= phy.MaxMCS; m++ {
		entry.InitBeamTh[m] = phy.ExpectedThroughput(m, snrInit)
		entry.BestBeamTh[m] = phy.ExpectedThroughput(m, snrBest)
	}
	var fo [phy.NumMCS]float64
	snrFo := after.SNRdB(ft, fr)
	for m := phy.MinMCS; m <= phy.MaxMCS; m++ {
		fo[m] = phy.ExpectedThroughput(m, snrFo)
	}
	return entry, &fo
}

func TestFailoverSurvivesBlockage(t *testing.T) {
	// A mid-LOS blocker kills the primary but usually not the failover
	// (which points at a wall): the failover policy recovers far faster
	// than a 250 ms sweep.
	entry, fo := buildFailoverScenario(t, func(l *channel.Link) {
		mid := l.Tx.Pos.Add(l.Rx.Pos.Sub(l.Tx.Pos).Scale(0.5))
		l.SetBlockers([]channel.Blocker{channel.DefaultBlocker(mid)})
	})
	p := Params{BAOverhead: 250 * time.Millisecond, FAT: 2 * time.Millisecond, FlowDur: time.Second}
	out := RunEntryFailover(entry, fo, p)
	if !out.UsedRA {
		t.Fatal("failover policy did not search rates")
	}
	if out.UsedBA {
		t.Skip("failover also blocked in this geometry")
	}
	if out.RecoveryDelay >= p.BAOverhead {
		t.Errorf("failover recovery %v not faster than a sweep", out.RecoveryDelay)
	}
}

func TestFailoverFailsUnderAngularDisplacement(t *testing.T) {
	// The paper's critique: after the client turns away, both the primary
	// and the stale failover are misaligned, so the policy pays the
	// failover attempt AND the full sweep.
	entry, fo := buildFailoverScenario(t, func(l *channel.Link) {
		l.RotateRx(180 + 65)
	})
	p := Params{BAOverhead: 5 * time.Millisecond, FAT: 2 * time.Millisecond, FlowDur: time.Second}
	out := RunEntryFailover(entry, fo, p)
	if !out.UsedBA {
		t.Skip("failover survived the rotation in this geometry")
	}
	// It ends up slower than just doing BA first.
	ba := runPlan(entry, p, true)
	if out.RecoveryDelay <= ba.RecoveryDelay {
		t.Errorf("failover %v not slower than BA First %v after rotation",
			out.RecoveryDelay, ba.RecoveryDelay)
	}
}

func TestFailoverPairDiffersFromPrimary(t *testing.T) {
	e := env.Lobby()
	tx := phased.NewArray(geom.V(2, 4), 0, 63)
	rx := phased.NewArray(geom.V(8, 4), 180, 64)
	l := channel.NewLink(e, tx, rx)
	snap := l.Snapshot()
	pt, pr, psnr := snap.BestPair()
	ft, _, fsnr := FailoverPair(snap, pt, pr)
	if ft == pt {
		t.Error("failover shares the primary Tx sector")
	}
	if fsnr > psnr {
		t.Error("failover cannot beat the primary")
	}
}

func TestFailoverStudyShapes(t *testing.T) {
	entry, fo := buildFailoverScenario(t, func(l *channel.Link) {
		l.RotateRx(180 + 65)
	})
	p := Params{BAOverhead: 5 * time.Millisecond, FAT: 2 * time.Millisecond, FlowDur: time.Second}
	f, lb := FailoverStudy([]*dataset.Entry{entry}, []*[phy.NumMCS]float64{fo}, p, fixedClassifier{dataset.ActBA})
	if f == 0 || lb == 0 {
		t.Error("study returned zero delays")
	}
	if a, b := FailoverStudy(nil, nil, p, nil); a != 0 || b != 0 {
		t.Error("empty study should be zero")
	}
}
