package sim

import (
	"math"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/ad"
	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/phy"
)

// tableOf builds a throughput table from (mcs, bps) pairs; others are 0.
func tableOf(pairs map[phy.MCS]float64) thTable {
	var t thTable
	for m, v := range pairs {
		t[m] = v
	}
	return t
}

func stdParams() Params {
	return Params{
		BAOverhead: 5 * time.Millisecond,
		FAT:        2 * time.Millisecond,
		FlowDur:    time.Second,
	}
}

func TestRASearchFindsHighest(t *testing.T) {
	table := tableOf(map[phy.MCS]float64{4: 2e9, 3: 1.5e9, 2: 1.2e9, 1: 0.9e9, 0: 0.3e9})
	out := raSearch(&table, 6, 2*time.Millisecond)
	if !out.found {
		t.Fatal("not found")
	}
	if out.mcs != 4 || out.th != 2e9 {
		t.Errorf("selected %v at %v", out.mcs, out.th)
	}
	// Probes: 6, 5 (dead), 4 (working best), 3 (lower -> stop).
	if out.probes != 4 {
		t.Errorf("probes = %d", out.probes)
	}
	// First working is the third probe.
	if out.firstWorking != 3 {
		t.Errorf("firstWorking = %d", out.firstWorking)
	}
}

func TestRASearchNoneWorking(t *testing.T) {
	table := tableOf(map[phy.MCS]float64{0: 50e6}) // below the 150 Mbps bar
	out := raSearch(&table, phy.MaxMCS, 2*time.Millisecond)
	if out.found {
		t.Fatal("found on a dead table")
	}
	if out.probes != phy.NumMCS {
		t.Errorf("probes = %d, want all %d", out.probes, phy.NumMCS)
	}
}

func TestRASearchBytesAccounting(t *testing.T) {
	fat := 2 * time.Millisecond
	table := tableOf(map[phy.MCS]float64{2: 1e9, 1: 0.8e9})
	out := raSearch(&table, 3, fat)
	// Probes at MCS3 (0), MCS2 (1e9), MCS1 (0.8e9, lower -> stop).
	wantBytes := (0 + 1e9 + 0.8e9) * fat.Seconds() / 8
	if math.Abs(out.searchBytes-wantBytes) > 1 {
		t.Errorf("searchBytes = %v, want %v", out.searchBytes, wantBytes)
	}
}

func TestRASearchStartClamped(t *testing.T) {
	table := tableOf(map[phy.MCS]float64{0: 300e6})
	if out := raSearch(&table, phy.MCS(50), time.Millisecond); !out.found {
		t.Error("clamped start failed")
	}
	if out := raSearch(&table, phy.MCS(-3), time.Millisecond); out.probes != 1 {
		t.Error("negative start should probe MCS0 once")
	}
}

// handEntry builds an entry with a clean, analyzable structure: the initial
// beam supports MCS2 at 1 Gbps; the best beam supports MCS4 at 2 Gbps.
func handEntry() *dataset.Entry {
	e := &dataset.Entry{InitMCS: 4}
	e.InitBeamTh = tableOf(map[phy.MCS]float64{2: 1e9, 1: 0.9e9, 0: 0.3e9})
	e.BestBeamTh = tableOf(map[phy.MCS]float64{4: 2e9, 3: 1.6e9, 2: 1.1e9, 1: 0.9e9, 0: 0.3e9})
	e.Features[5] = 0.2 // CDR nonzero: ACKs still flowing
	return e
}

func TestRunPlanRAFirstAccounting(t *testing.T) {
	e := handEntry()
	p := stdParams()
	out := runPlan(e, p, false)
	// RA path: probes MCS4 (0), MCS3 (0), MCS2 (1e9) <- first working at
	// probe 3, MCS1 (0.9e9 < 1e9) -> stop. Settled at MCS2 on init beam.
	if out.FinalMCS != 2 || out.FinalOnBestBeam {
		t.Errorf("final = %v onBest=%v", out.FinalMCS, out.FinalOnBestBeam)
	}
	if want := 3 * p.FAT; out.RecoveryDelay != want {
		t.Errorf("delay = %v, want %v", out.RecoveryDelay, want)
	}
	// Bytes: 4 probes x 2 ms at (0 + 0 + 1e9 + 0.9e9), then 992 ms at 1e9.
	searchBytes := (1e9 + 0.9e9) * p.FAT.Seconds() / 8
	settleBytes := 1e9 * (p.FlowDur - 4*p.FAT).Seconds() / 8
	want := searchBytes + settleBytes
	if math.Abs(out.Bytes-want) > 1 {
		t.Errorf("bytes = %v, want %v", out.Bytes, want)
	}
	if !out.UsedRA || out.UsedBA {
		t.Error("mechanism flags wrong")
	}
}

func TestRunPlanBAFirstAccounting(t *testing.T) {
	e := handEntry()
	p := stdParams()
	out := runPlan(e, p, true)
	// BA: 5 ms dead air, then RA on best beam finds MCS4 on the first
	// probe, MCS3 lower -> stop. Settled at MCS4 on best beam.
	if out.FinalMCS != 4 || !out.FinalOnBestBeam {
		t.Errorf("final = %v onBest=%v", out.FinalMCS, out.FinalOnBestBeam)
	}
	if want := p.BAOverhead + 1*p.FAT; out.RecoveryDelay != want {
		t.Errorf("delay = %v, want %v", out.RecoveryDelay, want)
	}
	searchBytes := (2e9 + 1.6e9) * p.FAT.Seconds() / 8
	settleBytes := 2e9 * (p.FlowDur - p.BAOverhead - 2*p.FAT).Seconds() / 8
	want := searchBytes + settleBytes
	if math.Abs(out.Bytes-want) > 1 {
		t.Errorf("bytes = %v, want %v", out.Bytes, want)
	}
	if !out.UsedBA || !out.UsedRA {
		t.Error("mechanism flags wrong")
	}
}

func TestRunPlanRAFallsBackToBA(t *testing.T) {
	e := handEntry()
	e.InitBeamTh = thTable{} // initial beam is dead
	p := stdParams()
	out := runPlan(e, p, false)
	if !out.UsedBA {
		t.Error("RA failure did not trigger BA")
	}
	if out.FinalMCS != 4 || !out.FinalOnBestBeam {
		t.Errorf("final = %v", out.FinalMCS)
	}
	// Delay: 5 dead probes (MCS4..0) + BA + 1 probe.
	want := 5*p.FAT + p.BAOverhead + 1*p.FAT
	if out.RecoveryDelay != want {
		t.Errorf("delay = %v, want %v", out.RecoveryDelay, want)
	}
}

func TestRunPlanUnrecoverable(t *testing.T) {
	e := &dataset.Entry{InitMCS: 4}
	p := stdParams()
	out := runPlan(e, p, false)
	if out.Bytes != 0 {
		t.Errorf("dead link delivered %v bytes", out.Bytes)
	}
	if out.RecoveryDelay != core.Dmax(p.Config()) {
		t.Errorf("delay = %v, want Dmax", out.RecoveryDelay)
	}
}

func TestBytesCappedByFlowDuration(t *testing.T) {
	e := handEntry()
	p := stdParams()
	p.FlowDur = 4 * time.Millisecond // flow ends during the RA search
	out := runPlan(e, p, false)
	maxBytes := 2e9 * p.FlowDur.Seconds() / 8
	if out.Bytes > maxBytes {
		t.Errorf("bytes %v exceed flow capacity %v", out.Bytes, maxBytes)
	}
	// Delay still reflects full recovery even past flow end.
	if out.RecoveryDelay != 3*p.FAT {
		t.Errorf("delay = %v", out.RecoveryDelay)
	}
}

func TestOracleDataDominates(t *testing.T) {
	e := handEntry()
	p := stdParams()
	oracle := RunEntry(e, p, OracleData, nil)
	ba := RunEntry(e, p, BAFirst, nil)
	ra := RunEntry(e, p, RAFirst, nil)
	if oracle.Bytes < ba.Bytes || oracle.Bytes < ra.Bytes {
		t.Errorf("oracle %v below policies %v/%v", oracle.Bytes, ba.Bytes, ra.Bytes)
	}
}

func TestOracleDelayDominates(t *testing.T) {
	e := handEntry()
	p := stdParams()
	oracle := RunEntry(e, p, OracleDelay, nil)
	ba := RunEntry(e, p, BAFirst, nil)
	ra := RunEntry(e, p, RAFirst, nil)
	if oracle.RecoveryDelay > ba.RecoveryDelay || oracle.RecoveryDelay > ra.RecoveryDelay {
		t.Errorf("oracle delay %v above policies %v/%v", oracle.RecoveryDelay, ba.RecoveryDelay, ra.RecoveryDelay)
	}
}

// fixedClassifier always answers the same action.
type fixedClassifier struct{ a dataset.Action }

func (f fixedClassifier) Classify([]float64) dataset.Action { return f.a }
func (f fixedClassifier) Name() string                      { return "fixed" }

func TestLiBRAFollowsClassifier(t *testing.T) {
	e := handEntry()
	p := stdParams()
	asBA := RunEntry(e, p, LiBRA, fixedClassifier{dataset.ActBA})
	wantBA := RunEntry(e, p, BAFirst, nil)
	if asBA.Bytes != wantBA.Bytes || asBA.RecoveryDelay != wantBA.RecoveryDelay {
		t.Error("LiBRA(BA) differs from BA First")
	}
	asRA := RunEntry(e, p, LiBRA, fixedClassifier{dataset.ActRA})
	wantRA := RunEntry(e, p, RAFirst, nil)
	if asRA.Bytes != wantRA.Bytes {
		t.Error("LiBRA(RA) differs from RA First")
	}
}

func TestLiBRANAPenalty(t *testing.T) {
	e := handEntry()
	p := stdParams()
	na := RunEntry(e, p, LiBRA, fixedClassifier{dataset.ActNA})
	direct := RunEntry(e, p, LiBRA, fixedClassifier{core.MissingACKAction(e.InitMCS, p.Config())})
	if na.RecoveryDelay <= direct.RecoveryDelay {
		t.Error("NA misprediction should cost recovery delay")
	}
}

func TestLiBRAMissingACKPath(t *testing.T) {
	e := handEntry()
	e.Features[5] = 0   // no CDR observed
	e.InitBeamTh[4] = 0 // and the current MCS is dead
	e.InitBeamTh[2] = 1e9
	p := stdParams()
	p.BAOverhead = 500 * time.Microsecond // cheap BA: missing-ACK rule says BA
	got := RunEntry(e, p, LiBRA, fixedClassifier{dataset.ActRA})
	want := RunEntry(e, p, BAFirst, nil)
	if got.Bytes != want.Bytes {
		t.Error("missing-ACK rule not applied (classifier should be bypassed)")
	}
}

func TestPolicyStrings(t *testing.T) {
	names := map[Policy]string{
		LiBRA: "LiBRA", BAFirst: "BA First", RAFirst: "RA First",
		OracleData: "Oracle-Data", OracleDelay: "Oracle-Delay",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d String = %q", p, p.String())
		}
	}
	if Policy(99).String() != "unknown" {
		t.Error("unknown policy string")
	}
}

func TestParamsConfig(t *testing.T) {
	p := Params{BAOverhead: 250 * time.Millisecond, FAT: 10 * time.Millisecond}
	cfg := p.Config()
	if cfg.Alpha != 0.5 {
		t.Errorf("high-overhead alpha = %v", cfg.Alpha)
	}
	if cfg.BAOverhead != p.BAOverhead || cfg.FAT != p.FAT {
		t.Error("params not propagated")
	}
}

func TestGridConstants(t *testing.T) {
	if len(BAOverheads) != 4 || len(FATs) != 2 || len(FlowDurs) != 2 {
		t.Error("evaluation grid changed (§8.1 uses 4 BA overheads, 2 FATs, 2 flows)")
	}
}

func TestGridMatchesStandardOverheadModels(t *testing.T) {
	// §8.1 derives the four BA overheads from standard timing models: the
	// O(N) quasi-omni SLS at 30 and 3 degree beamwidths, and the O(N^2)
	// directional search at 9 and 7 degrees. The grid constants must stay
	// within 50% of the first-principles models in internal/ad.
	models := []time.Duration{
		ad.SLSOverhead(30), ad.SLSOverhead(3),
		ad.ExhaustiveOverhead(9), ad.ExhaustiveOverhead(7),
	}
	for i, want := range models {
		got := BAOverheads[i]
		ratio := float64(got) / float64(want)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("BAOverheads[%d] = %v, standard model gives %v", i, got, want)
		}
	}
}

func TestRxInitiatedCostsSignaling(t *testing.T) {
	e := handEntry()
	p := stdParams()
	tx := RunEntry(e, p, LiBRA, fixedClassifier{dataset.ActBA})
	rx := RunEntryRxInitiated(e, p, fixedClassifier{dataset.ActBA})
	if rx.RecoveryDelay != tx.RecoveryDelay+RxSignalOverhead {
		t.Errorf("rx delay %v, tx delay %v: signaling not charged", rx.RecoveryDelay, tx.RecoveryDelay)
	}
	if rx.Bytes >= tx.Bytes {
		t.Error("signaling airtime should cost bytes")
	}
}

func TestRxInitiatedSkipsMissingACKRule(t *testing.T) {
	// The Rx always has metrics, so the classifier decides even when the
	// Tx-side would have been blind (CDR 0).
	e := handEntry()
	e.Features[5] = 0
	e.InitBeamTh = thTable{}
	e.InitBeamTh[2] = 1e9 // RA can still work on the init beam at MCS2
	p := stdParams()
	p.BAOverhead = 250 * time.Millisecond
	// Tx-initiated with a missing ACK and high MCS + costly BA: RA rule.
	// Rx-initiated obeys the classifier saying BA.
	rx := RunEntryRxInitiated(e, p, fixedClassifier{dataset.ActBA})
	if !rx.UsedBA {
		t.Error("Rx-initiated ignored the classifier")
	}
}
