// Package sim is the trace-driven evaluation engine of §8: it replays link
// impairments (dataset entries or multi-segment timelines) under the four
// policies the paper compares — LiBRA, "BA First" (the proposal of the
// Qualcomm patent), "RA First" (what COTS devices do), and the two oracles
// Oracle-Data and Oracle-Delay — charging each policy the BA and RA
// overheads of the evaluated protocol parameterization.
package sim

import (
	"context"
	"time"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/phy"
)

// Params is one cell of the evaluation grid (§8.1).
type Params struct {
	// BAOverhead is the beam-training airtime: 0.5 ms and 5 ms model
	// 802.11ad-style O(N) training with 30° and 3° beams; 150 ms and
	// 250 ms model O(N^2) directional training with 9°/7° beams.
	BAOverhead time.Duration
	// FAT is the frame aggregation time per RA probe (2 ms in 802.11ad,
	// 10 ms in 802.11ac/X60).
	FAT time.Duration
	// FlowDur is the data flow duration (0.4 s and 1 s in §8.2).
	FlowDur time.Duration
	// Trace, when non-nil, receives the simulation-time adaptation events
	// of this run (break, classifier verdict, re-beam, RA search, MCS
	// moves), stamped with elapsed simulated time only — never wall time —
	// so the trace bytes are identical for any worker count.
	Trace *obs.Stream
}

// Grid enumerates the BA overhead and FAT combinations of Figs 10-13.
var (
	BAOverheads = []time.Duration{500 * time.Microsecond, 5 * time.Millisecond, 150 * time.Millisecond, 250 * time.Millisecond}
	FATs        = []time.Duration{2 * time.Millisecond, 10 * time.Millisecond}
	FlowDurs    = []time.Duration{400 * time.Millisecond, time.Second}
)

// Config converts Params to a core.Config with the paper's α pairing.
func (p Params) Config() core.Config {
	cfg := core.DefaultConfig()
	cfg.BAOverhead = p.BAOverhead
	cfg.FAT = p.FAT
	cfg.Alpha = core.AlphaFor(p.BAOverhead)
	return cfg
}

// Policy identifies an adaptation policy.
type Policy int

// The compared policies (§8.1).
const (
	LiBRA Policy = iota
	BAFirst
	RAFirst
	OracleData
	OracleDelay
)

// String returns the policy name as the paper prints it.
func (p Policy) String() string {
	switch p {
	case LiBRA:
		return "LiBRA"
	case BAFirst:
		return "BA First"
	case RAFirst:
		return "RA First"
	case OracleData:
		return "Oracle-Data"
	case OracleDelay:
		return "Oracle-Delay"
	}
	return "unknown"
}

// Policies lists the three non-oracle policies in display order.
var Policies = []Policy{BAFirst, RAFirst, LiBRA}

// Outcome is the result of one policy run over one link break.
type Outcome struct {
	// Bytes delivered within the flow duration.
	Bytes float64
	// RecoveryDelay is the time from the break until the first working
	// MCS, capped at Dmax when the link never recovers.
	RecoveryDelay time.Duration
	// FinalMCS and FinalOnBestBeam describe where the policy settled.
	FinalMCS        phy.MCS
	FinalOnBestBeam bool
	// UsedBA and UsedRA report which mechanisms ran.
	UsedBA, UsedRA bool
}

// thTable is a per-MCS expected throughput table (bps).
type thTable = [phy.NumMCS]float64

// working applies the §5.2 working-MCS predicate to a table entry. The CDR
// condition is implied: any MCS whose expected throughput clears 150 Mbps
// has CDR far above 10% at these rates.
func working(th float64) bool { return th > phy.WorkingMinThroughputBps }

// raOutcome describes a downward rate search over a throughput table.
type raOutcome struct {
	found        bool
	mcs          phy.MCS
	th           float64
	probes       int
	searchBytes  float64
	firstWorking int // probes until the first working MCS (recovery point)
}

// raSearch simulates the paper's frame-based RA (§7): probe downward from
// start, one aggregated frame per MCS; settle on the highest-throughput
// working MCS (stopping once throughput starts decreasing past a working
// MCS). Probe frames are data frames, so they deliver bytes.
func raSearch(table *thTable, start phy.MCS, fat time.Duration) raOutcome {
	if start > phy.MaxMCS {
		start = phy.MaxMCS
	}
	if start < phy.MinMCS {
		start = phy.MinMCS
	}
	out := raOutcome{mcs: phy.MinMCS}
	fatSec := fat.Seconds()
	bestTh := 0.0
	bestMCS := phy.MCS(-1)
	for m := start; m >= phy.MinMCS; m-- {
		out.probes++
		th := table[m]
		out.searchBytes += th * fatSec / 8
		if working(th) {
			if !out.found {
				out.found = true
				out.firstWorking = out.probes
			}
			if th > bestTh {
				bestTh, bestMCS = th, m
			}
		}
		if bestMCS >= 0 && th < bestTh {
			break
		}
	}
	if out.found {
		out.mcs, out.th = bestMCS, bestTh
	}
	return out
}

// runPlan executes one adaptation plan (RA first or BA first) over an
// entry's throughput tables and accounts bytes within the flow duration.
func runPlan(e *dataset.Entry, p Params, baFirst bool) Outcome {
	var (
		elapsed time.Duration
		bytes   float64
		out     Outcome
	)
	flow := p.FlowDur
	dmax := core.Dmax(p.Config())
	addBytes := func(b float64, d time.Duration) {
		// Bytes only count within the flow window.
		remaining := flow - elapsed
		if remaining <= 0 {
			return
		}
		if d <= remaining {
			bytes += b
		} else if d > 0 {
			bytes += b * float64(remaining) / float64(d)
		}
		elapsed += d
	}

	recovered := false
	recoverAt := func() {
		if !recovered {
			out.RecoveryDelay = elapsed
			recovered = true
		}
	}
	tr := p.Trace
	traceRA := func(ra *raOutcome) {
		if tr.Enabled() {
			found := "false"
			if ra.found {
				found = "true"
			}
			tr.Event(simTime(elapsed), "ra_search",
				obs.F("found", found), obs.Fint("probes", int64(ra.probes)))
		}
	}

	if baFirst {
		out.UsedBA = true
		if tr.Enabled() {
			tr.Event(simTime(elapsed), "rebeam",
				obs.Ffloat("overhead_s", p.BAOverhead.Seconds()))
		}
		addBytes(0, p.BAOverhead) // control frames only: zero throughput
		ra := raSearch(&e.BestBeamTh, e.InitMCS, p.FAT)
		out.UsedRA = true
		traceRA(&ra)
		if ra.found {
			preRecovery := time.Duration(ra.firstWorking) * p.FAT
			addBytes(partialSearchBytes(&e.BestBeamTh, e.InitMCS, ra.firstWorking, p.FAT), preRecovery)
			recoverAt()
			rest := time.Duration(ra.probes-ra.firstWorking) * p.FAT
			addBytes(ra.searchBytes-partialSearchBytes(&e.BestBeamTh, e.InitMCS, ra.firstWorking, p.FAT), rest)
			out.FinalMCS, out.FinalOnBestBeam = ra.mcs, true
			settle(&bytes, &elapsed, flow, e.BestBeamTh[ra.mcs])
		} else {
			addBytes(ra.searchBytes, time.Duration(ra.probes)*p.FAT)
			out.RecoveryDelay = dmax
			recovered = true
		}
	} else {
		out.UsedRA = true
		ra := raSearch(&e.InitBeamTh, e.InitMCS, p.FAT)
		traceRA(&ra)
		if ra.found {
			preRecovery := time.Duration(ra.firstWorking) * p.FAT
			addBytes(partialSearchBytes(&e.InitBeamTh, e.InitMCS, ra.firstWorking, p.FAT), preRecovery)
			recoverAt()
			rest := time.Duration(ra.probes-ra.firstWorking) * p.FAT
			addBytes(ra.searchBytes-partialSearchBytes(&e.InitBeamTh, e.InitMCS, ra.firstWorking, p.FAT), rest)
			out.FinalMCS, out.FinalOnBestBeam = ra.mcs, false
			settle(&bytes, &elapsed, flow, e.InitBeamTh[ra.mcs])
		} else {
			// RA alone failed: BA, then another RA round (§5.2).
			addBytes(ra.searchBytes, time.Duration(ra.probes)*p.FAT)
			out.UsedBA = true
			if tr.Enabled() {
				tr.Event(simTime(elapsed), "rebeam",
					obs.Ffloat("overhead_s", p.BAOverhead.Seconds()))
			}
			addBytes(0, p.BAOverhead)
			ra2 := raSearch(&e.BestBeamTh, e.InitMCS, p.FAT)
			traceRA(&ra2)
			if ra2.found {
				preRecovery := time.Duration(ra2.firstWorking) * p.FAT
				addBytes(partialSearchBytes(&e.BestBeamTh, e.InitMCS, ra2.firstWorking, p.FAT), preRecovery)
				recoverAt()
				rest := time.Duration(ra2.probes-ra2.firstWorking) * p.FAT
				addBytes(ra2.searchBytes-partialSearchBytes(&e.BestBeamTh, e.InitMCS, ra2.firstWorking, p.FAT), rest)
				out.FinalMCS, out.FinalOnBestBeam = ra2.mcs, true
				settle(&bytes, &elapsed, flow, e.BestBeamTh[ra2.mcs])
			} else {
				addBytes(ra2.searchBytes, time.Duration(ra2.probes)*p.FAT)
				out.RecoveryDelay = dmax
				recovered = true
			}
		}
	}
	if !recovered {
		out.RecoveryDelay = dmax
	}
	if out.RecoveryDelay >= dmax {
		obsRecoveryFailures.Inc()
	}
	if tr.Enabled() {
		t := simTime(out.RecoveryDelay)
		switch {
		case out.RecoveryDelay >= dmax:
			tr.Event(t, "recovery_failed", obs.Fint("mcs", int64(out.FinalMCS)))
		case out.FinalMCS < e.InitMCS:
			tr.Event(t, "mcs_down",
				obs.Fint("from", int64(e.InitMCS)), obs.Fint("to", int64(out.FinalMCS)))
		case out.FinalMCS > e.InitMCS:
			tr.Event(t, "mcs_up",
				obs.Fint("from", int64(e.InitMCS)), obs.Fint("to", int64(out.FinalMCS)))
		default:
			tr.Event(t, "recovered", obs.Fint("mcs", int64(out.FinalMCS)))
		}
	}
	out.Bytes = bytes
	return out
}

// partialSearchBytes returns the bytes delivered by the first n probes of a
// downward search starting at start.
func partialSearchBytes(table *thTable, start phy.MCS, n int, fat time.Duration) float64 {
	fatSec := fat.Seconds()
	var b float64
	for i := 0; i < n; i++ {
		m := start - phy.MCS(i)
		if m < phy.MinMCS {
			break
		}
		b += table[m] * fatSec / 8
	}
	return b
}

// settle accounts the steady-state bytes after adaptation completes.
func settle(bytes *float64, elapsed *time.Duration, flow time.Duration, thBps float64) {
	remaining := flow - *elapsed
	if remaining > 0 {
		*bytes += thBps * remaining.Seconds() / 8
	}
	*elapsed = flow
}

// naPenalty is the extra observation window LiBRA loses when the classifier
// wrongly reports NA on a broken link: metrics persist and the next window
// (2 frames, §7) triggers the missing-ACK rule.
func naPenalty(p Params) time.Duration { return 2 * p.FAT }

// RunEntry simulates one policy over one dataset entry's link break. clf is
// only consulted by the LiBRA policy; pass nil for the others.
//
// Deprecated: use Run with Scenario{Entry: e}; this wrapper remains for
// source compatibility and panics on parameters Run would reject.
func RunEntry(e *dataset.Entry, p Params, pol Policy, clf core.Classifier) Outcome {
	res, err := Run(context.Background(), Scenario{Entry: e},
		Options{Params: p, Policy: pol, Classifier: clf})
	if err != nil {
		panic(err)
	}
	return res.Outcome
}

// runEntry is the single-break core behind Run and the deprecated RunEntry.
func runEntry(e *dataset.Entry, p Params, pol Policy, clf core.Classifier) Outcome {
	if c, ok := obsPolicyRuns[pol]; ok {
		c.Inc()
	}
	tr := p.Trace
	if tr.Enabled() {
		tr.Event(obs.SimTime{}, "break", obs.Fint("init_mcs", int64(e.InitMCS)))
	}
	switch pol {
	case BAFirst:
		return runPlan(e, p, true)
	case RAFirst:
		return runPlan(e, p, false)
	case OracleData, OracleDelay:
		// The oracle explores both plans; the exploratory runs carry no
		// trace (the chosen branch would otherwise appear twice).
		pq := p
		pq.Trace = nil
		ba := runPlan(e, pq, true)
		ra := runPlan(e, pq, false)
		pickRA := ra.Bytes >= ba.Bytes
		if pol == OracleDelay {
			pickRA = ra.RecoveryDelay <= ba.RecoveryDelay
		}
		if tr.Enabled() {
			plan := "ba"
			if pickRA {
				plan = "ra"
			}
			tr.Event(obs.SimTime{}, "oracle_pick", obs.F("plan", plan))
		}
		if pickRA {
			return ra
		}
		return ba
	default: // LiBRA
		cfg := p.Config()
		var action dataset.Action
		if e.Features[5] == 0 && !working(e.InitBeamTh[e.InitMCS]) {
			// No codewords got through: the ACK is missing and the
			// classifier has no metrics (§7 rule).
			action = core.MissingACKAction(e.InitMCS, cfg)
		} else {
			action = clf.Classify(e.FeatureSlice())
		}
		if tr.Enabled() && int(action) < len(actionNames) {
			tr.Event(obs.SimTime{}, "verdict", obs.F("action", actionNames[action]))
		}
		switch action {
		case dataset.ActBA:
			return runPlan(e, p, true)
		case dataset.ActRA:
			return runPlan(e, p, false)
		default:
			// NA on a broken link: lose one observation window at the
			// degraded rate, then apply the missing-ACK rule.
			wait := naPenalty(p)
			out := runPlan(e, p, core.MissingACKAction(e.InitMCS, cfg) == dataset.ActBA)
			out.RecoveryDelay += wait
			stuckBytes := e.InitBeamTh[e.InitMCS] * wait.Seconds() / 8
			total := p.FlowDur.Seconds()
			if total > 0 {
				// The wait consumes flow time at the degraded rate.
				out.Bytes = stuckBytes + out.Bytes*(total-wait.Seconds())/total
			}
			return out
		}
	}
}
