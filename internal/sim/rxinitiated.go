package sim

import (
	"context"
	"time"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
)

// Rx-initiated LiBRA ablation (§7, design issue 3). The paper chooses a
// Tx-initiated, standard-compliant design: PHY metrics ride back on 802.11
// ACKs, and when the ACK is missing the Tx falls back to the coarse
// missing-ACK rule. The rejected alternative is Rx-initiated adaptation:
// the receiver always has fresh metrics (no missing-ACK blind spot, so the
// classifier runs on every break), but must signal the transmitter with new
// control frames, which costs airtime on every adaptation and breaks
// standard compliance.
//
// This file implements that alternative so the design choice can be
// quantified rather than argued.

// RxSignalOverhead is the control exchange an Rx-initiated design spends to
// tell the Tx which mechanism to start: a trigger frame and its ACK at the
// control PHY, plus a SIFS each way.
const RxSignalOverhead = 120 * time.Microsecond

// RunEntryRxInitiated replays one break under Rx-initiated LiBRA: the
// classifier always runs (the Rx measures the broken channel directly), and
// every adaptation is preceded by the Rx->Tx signaling exchange.
//
// Deprecated: use Run with Options{Variant: VariantRxInitiated}; this
// wrapper remains for source compatibility and panics on parameters Run
// would reject.
func RunEntryRxInitiated(e *dataset.Entry, p Params, clf core.Classifier) Outcome {
	res, err := Run(context.Background(), Scenario{Entry: e},
		Options{Params: p, Variant: VariantRxInitiated, Classifier: clf})
	if err != nil {
		panic(err)
	}
	return res.Outcome
}

// runEntryRxInitiated is the Rx-initiated core behind Run.
func runEntryRxInitiated(e *dataset.Entry, p Params, clf core.Classifier) Outcome {
	action := clf.Classify(e.FeatureSlice())
	if action == dataset.ActNA {
		// Same fallback as the Tx-initiated design after a lost window.
		wait := naPenalty(p)
		out := runPlan(e, p, core.MissingACKAction(e.InitMCS, p.Config()) == dataset.ActBA)
		out.RecoveryDelay += wait + RxSignalOverhead
		return out
	}
	out := runPlan(e, p, action == dataset.ActBA)
	out.RecoveryDelay += RxSignalOverhead
	// The signaling exchange occupies the channel before adaptation
	// starts: shift the delivered bytes by the airtime it consumed.
	lost := out.Bytes * RxSignalOverhead.Seconds() / p.FlowDur.Seconds()
	out.Bytes -= lost
	return out
}
