package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/phy"
)

// randomEntry builds an entry with random (but self-consistent) throughput
// tables: the best-beam table dominates the init-beam table entrywise.
func randomEntry(rng *rand.Rand) *dataset.Entry {
	e := &dataset.Entry{InitMCS: phy.MCS(rng.Intn(phy.NumMCS))}
	snrInit := -5 + rng.Float64()*30
	snrBest := snrInit + rng.Float64()*15
	for m := phy.MinMCS; m <= phy.MaxMCS; m++ {
		e.InitBeamTh[m] = phy.ExpectedThroughput(m, snrInit)
		e.BestBeamTh[m] = phy.ExpectedThroughput(m, snrBest)
	}
	e.Features[5] = rng.Float64()
	return e
}

func randomParams(rng *rand.Rand) Params {
	return Params{
		BAOverhead: BAOverheads[rng.Intn(len(BAOverheads))],
		FAT:        FATs[rng.Intn(len(FATs))],
		FlowDur:    FlowDurs[rng.Intn(len(FlowDurs))],
	}
}

// TestPropertyPolicyInvariants checks, over random entries and grid cells:
// bytes are within physical limits, delays within [0, Dmax], and the oracles
// dominate their respective metrics.
func TestPropertyPolicyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		e := randomEntry(rng)
		p := randomParams(rng)
		dmax := core.Dmax(p.Config())
		maxBytes := phy.MaxRateBps() * p.FlowDur.Seconds() / 8

		ba := RunEntry(e, p, BAFirst, nil)
		ra := RunEntry(e, p, RAFirst, nil)
		od := RunEntry(e, p, OracleData, nil)
		odl := RunEntry(e, p, OracleDelay, nil)
		li := RunEntry(e, p, LiBRA, fixedClassifier{dataset.Action(rng.Intn(3))})

		for _, out := range []Outcome{ba, ra, od, odl, li} {
			if out.Bytes < 0 || out.Bytes > maxBytes*1.0001 {
				t.Fatalf("bytes %v outside [0, %v]", out.Bytes, maxBytes)
			}
			if out.RecoveryDelay < 0 || out.RecoveryDelay > dmax+2*p.FAT {
				t.Fatalf("delay %v outside [0, %v]", out.RecoveryDelay, dmax)
			}
		}
		if od.Bytes < ba.Bytes-1e-6 || od.Bytes < ra.Bytes-1e-6 {
			t.Fatal("Oracle-Data dominated by a heuristic")
		}
		if odl.RecoveryDelay > ba.RecoveryDelay || odl.RecoveryDelay > ra.RecoveryDelay {
			t.Fatal("Oracle-Delay dominated by a heuristic")
		}
	}
}

// TestPropertyMoreFlowMoreBytes: extending the flow never reduces bytes.
func TestPropertyMoreFlowMoreBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		e := randomEntry(rng)
		p := randomParams(rng)
		short := p
		short.FlowDur = 400 * time.Millisecond
		long := p
		long.FlowDur = time.Second
		for _, pol := range []Policy{BAFirst, RAFirst} {
			if RunEntry(e, long, pol, nil).Bytes < RunEntry(e, short, pol, nil).Bytes-1e-6 {
				t.Fatalf("longer flow delivered fewer bytes (%v)", pol)
			}
		}
	}
}

// TestPropertyRASearchSound uses testing/quick over random tables.
func TestPropertyRASearchSound(t *testing.T) {
	f := func(seed int64, startRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var table thTable
		for m := range table {
			if rng.Intn(2) == 0 {
				table[m] = rng.Float64() * 4e9
			}
		}
		start := phy.MCS(int(startRaw) % phy.NumMCS)
		out := raSearch(&table, start, 2*time.Millisecond)
		if out.probes < 1 || out.probes > int(start)+1 {
			return false
		}
		if !out.found {
			// Nothing at or below start may be working.
			for m := phy.MinMCS; m <= start; m++ {
				if working(table[m]) {
					return false
				}
			}
			return true
		}
		// The selection is working and is the best among the probed range.
		if !working(table[out.mcs]) || out.mcs > start {
			return false
		}
		if out.firstWorking < 1 || out.firstWorking > out.probes {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
