package sim

import (
	"time"

	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/phy"
)

// Airtime quanta for converting a policy run's elapsed simulated time into
// the (frame, slot, codeword) stamps of the trace layer. These derive from
// the X60 frame structure, so a trace stamp is a pure function of elapsed
// simulation time — never of the wall clock.
var (
	frameDur = time.Duration(phy.FrameDuration * float64(time.Second))
	slotDur  = time.Duration(phy.SlotDuration * float64(time.Second))
	cwDur    = slotDur / phy.CodewordsPerSlot
)

// simTime converts elapsed simulated time to a deterministic trace stamp.
func simTime(elapsed time.Duration) obs.SimTime {
	if elapsed < 0 {
		elapsed = 0
	}
	frame := int64(elapsed / frameDur)
	rem := elapsed % frameDur
	slot := int64(rem / slotDur)
	rem -= time.Duration(slot) * slotDur
	return obs.SimTime{Frame: frame, Slot: slot, Codeword: int64(rem / cwDur)}
}

// actionName renders a dataset action for trace attributes.
var actionNames = [...]string{"ba", "ra", "na"}

// Engine metrics: how many entry runs each policy executed and how the
// adaptations resolved.
var (
	obsPolicyRuns = map[Policy]*obs.Counter{
		LiBRA:       obs.NewCounter(`libra_sim_entry_runs_total{policy="libra"}`, "policy runs per entry"),
		BAFirst:     obs.NewCounter(`libra_sim_entry_runs_total{policy="ba-first"}`, "policy runs per entry"),
		RAFirst:     obs.NewCounter(`libra_sim_entry_runs_total{policy="ra-first"}`, "policy runs per entry"),
		OracleData:  obs.NewCounter(`libra_sim_entry_runs_total{policy="oracle-data"}`, "policy runs per entry"),
		OracleDelay: obs.NewCounter(`libra_sim_entry_runs_total{policy="oracle-delay"}`, "policy runs per entry"),
	}
	obsTimelineBreaks = obs.NewCounter("libra_sim_timeline_breaks_total",
		"link breaks encountered across timeline runs")
	obsRecoveryFailures = obs.NewCounter("libra_sim_recovery_failures_total",
		"adaptations that never restored a working MCS (delay capped at Dmax)")
)
